(* Benchmark and reproduction harness.

   Running `dune exec bench/main.exe` first regenerates every figure and
   table of the paper's evaluation (the same rows/series the paper
   reports, rendered for the terminal), then times each generator and
   the key kernels with Bechamel. `dune exec bench/main.exe -- quick`
   skips the timing pass. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Reproduction pass: print every artifact                             *)
(* ------------------------------------------------------------------ *)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Render one artifact under an [Engine.Stats] phase timer so the stats
   block at the end of the reproduction pass shows wall time per phase. *)
let sect title render =
  hr title;
  print_string (Engine.Stats.timed title render)

let reproduce () =
  sect "FIG3: sum rates vs relay position (paper Fig. 3)" (fun () ->
      Report.render_figure (Bidir.Figures.fig3 ()));
  sect "FIG3-SNR: sum rates vs power (companion sweep)" (fun () ->
      Report.render_figure (Bidir.Figures.fig3_snr ()));
  sect "FIG4A: rate regions at P = 0 dB (paper Fig. 4 top)" (fun () ->
      Report.render_figure (Bidir.Figures.fig4 ~power_db:0. ()));
  sect "FIG4B: rate regions at P = 10 dB (paper Fig. 4 bottom)" (fun () ->
      Report.render_figure (Bidir.Figures.fig4 ~power_db:10. ()));
  sect "TAB-GAP: inner vs outer bounds" (fun () ->
      Report.render_table (Bidir.Figures.gap_table ()));
  sect "TAB-XOVER: protocol crossover powers" (fun () ->
      Report.render_table (Bidir.Figures.crossover_table ()));
  sect "TAB-HBC: HBC points outside both outer bounds" (fun () ->
      Report.render_table (Bidir.Figures.hbc_witness_table ()));
  sect "TAB-CODING-GAIN: coded cooperation vs naive routing (Fig. 1)"
    (fun () -> Report.render_table (Bidir.Figures.coding_gain_table ()));
  sect "TAB-DISCRETE: all-BSC network (DMC evaluation)" (fun () ->
      Report.render_table (Bidir.Figures.discrete_table ()));
  sect "TAB-POWER-BOOST: peak vs average-energy power constraint (ablation)"
    (fun () -> Report.render_table (Bidir.Power_allocation.boost_table ()));
  sect "TAB-ERGODIC: ergodic sum rates under Rayleigh fading (extension)"
    (fun () ->
      Report.render_table
        (Bidir.Ergodic.ergodic_table ~blocks:400 ~powers_db:[ 0.; 10. ] ()));
  sect "FIG-OUTAGE: outage probability vs target rate under fading (extension)"
    (fun () -> Report.render_figure (Bidir.Ergodic.outage_figure ~blocks:300 ()));
  sect "TAB-FD-PENALTY: full duplex vs half duplex (reference point)"
    (fun () -> Report.render_table (Bidir.Fullduplex.penalty_table ()));
  sect "MAP: best protocol over the relay-position x power plane" (fun () ->
      Report.protocol_map ());
  sect "TAB-DELAY: queueing delay vs offered load (extension)" (fun () ->
      Report.render_table
        (Netsim.Traffic.comparison_table ~blocks:1_000 ~power_db:10.
           ~gains:Channel.Gains.paper_fig4 ()));
  sect "SIM-THRU: simulated throughput vs analytic optimum" (fun () ->
      let rows =
        List.map
          (fun protocol ->
            let r =
              Netsim.Runner.run
                (Netsim.Runner.default_config ~protocol ~power_db:10.
                   ~gains:Channel.Gains.paper_fig4 ~blocks:50
                   ~block_symbols:10_000 ())
            in
            let m = r.Netsim.Runner.metrics in
            [ Bidir.Protocol.name protocol;
              Printf.sprintf "%.4f" (Netsim.Metrics.throughput m);
              Printf.sprintf "%.4f" r.Netsim.Runner.analytic_mean_sum_rate;
              string_of_int (Netsim.Metrics.bit_errors m);
            ])
          Bidir.Protocol.all
      in
      Chart.Table.render
        ~headers:[ "protocol"; "simulated"; "analytic"; "undetected errs" ]
        ~rows)

(* ------------------------------------------------------------------ *)
(* Ablation: LP boundary sweep vs naive achievability grid             *)
(* ------------------------------------------------------------------ *)

let paper_scenario =
  Bidir.Gaussian.scenario ~power_db:10. ~gains:Channel.Gains.paper_fig4

let tdbc_bound =
  Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner paper_scenario

(* the alternative the LP sweep replaces: probe a grid of rate pairs *)
let naive_grid_region bound ~cells =
  let corner_a = Bidir.Rate_region.max_ra bound in
  let corner_b = Bidir.Rate_region.max_rb bound in
  let ra_max = corner_a.Bidir.Rate_region.ra in
  let rb_max = corner_b.Bidir.Rate_region.rb in
  let hits = ref 0 in
  for i = 0 to cells - 1 do
    for j = 0 to cells - 1 do
      let ra = ra_max *. float_of_int i /. float_of_int (cells - 1) in
      let rb = rb_max *. float_of_int j /. float_of_int (cells - 1) in
      if Bidir.Rate_region.achievable bound ~ra ~rb then incr hits
    done
  done;
  !hits

let ablation () =
  hr "ABLATION: exact LP boundary sweep vs naive achievability grid";
  let t0 = Unix.gettimeofday () in
  let boundary = Bidir.Rate_region.boundary tdbc_bound in
  let t1 = Unix.gettimeofday () in
  let hits = naive_grid_region tdbc_bound ~cells:30 in
  let t2 = Unix.gettimeofday () in
  Printf.printf
    "LP sweep: %d exact vertices in %.1f ms; 30x30 grid: %d probes inside \
     in %.1f ms (approximate boundary only)\n"
    (List.length boundary)
    (1000. *. (t1 -. t0))
    hits
    (1000. *. (t2 -. t1))

(* ------------------------------------------------------------------ *)
(* Engine: parallel + memoized figure-reproduction pass                 *)
(* ------------------------------------------------------------------ *)

(* The paper-artifact pass split into evaluation (what the engine
   accelerates) and rendering (pure presentation, identical across
   configurations). Runs are timed on evaluation only; the rendered
   output is compared byte-for-byte across configurations. *)
let eval_artifacts () =
  (Bidir.Figures.all_figures (), Bidir.Figures.all_tables ())

let render_artifacts (figs, tabs) =
  String.concat ""
    (List.map Report.render_figure figs @ List.map Report.render_table tabs)

let engine_comparison () =
  hr "ENGINE: parallel sweep pool + LP memoization";
  (* cache-hit demo: the crossover table re-evaluates overlapping
     scenarios (three protocol pairs sampled on the same power grid,
     plus the HBC strictness sweep), so even from a cold cache a large
     fraction of its LP lookups are hits *)
  Engine.Memo.clear_all ();
  Engine.Stats.reset ();
  ignore (Bidir.Figures.crossover_table () : Bidir.Figures.table);
  let s = Engine.Stats.snapshot () in
  Printf.printf
    "crossover_table from cold cache: %d LP solves, %d hits / %d misses \
     (%.1f%% hit rate)\n"
    s.Engine.Stats.lp_solves s.Engine.Stats.cache_hits
    s.Engine.Stats.cache_misses
    (100. *. Engine.Stats.hit_rate s);
  (* best of 3 repetitions per configuration to damp scheduler noise;
     cold configurations clear the cache before every repetition *)
  let run ~domains ~cold =
    Engine.Pool.set_default_domains domains;
    let best = ref infinity and out = ref "" and stats = ref None in
    for _ = 1 to 3 do
      if cold then Engine.Memo.clear_all ();
      Engine.Stats.reset ();
      let t0 = Unix.gettimeofday () in
      let artifacts = eval_artifacts () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then begin
        best := dt;
        out := render_artifacts artifacts;
        stats := Some (Engine.Stats.snapshot ())
      end
    done;
    Engine.Pool.set_default_domains 1;
    (!out, !best, Option.get !stats)
  in
  let describe label dt (s : Engine.Stats.snapshot) =
    Printf.printf "%-46s %8.1f ms  (%d LP solves, %.1f%% hit rate)\n" label
      (1000. *. dt) s.Engine.Stats.lp_solves
      (100. *. Engine.Stats.hit_rate s)
  in
  let out1, t1, s1 = run ~domains:1 ~cold:true in
  let out4c, t4c, s4c = run ~domains:4 ~cold:true in
  (* cache enabled and warm: entries from the previous passes persist *)
  let out1w, t1w, s1w = run ~domains:1 ~cold:false in
  let out4, t4, s4 = run ~domains:4 ~cold:false in
  describe "figure evaluation, 1 domain, cold cache:" t1 s1;
  describe "figure evaluation, 4 domains, cold cache:" t4c s4c;
  describe "figure evaluation, 1 domain, cache enabled:" t1w s1w;
  describe "figure evaluation, 4 domains, cache enabled:" t4 s4;
  let speedup = t1 /. Float.max t4 1e-9 in
  let byte_identical =
    String.equal out1 out4c && String.equal out1 out1w
    && String.equal out1 out4
  in
  Printf.printf "speedup, 4 domains (cache enabled) vs 1 domain: %.1fx\n"
    speedup;
  Printf.printf "rendered outputs byte-identical across engine configs: %b\n"
    byte_identical;
  (* same measurements again, as JSON for BENCH_engine.json *)
  let config label ~domains ~cold dt (s : Engine.Stats.snapshot) =
    Telemetry.Json.Obj
      [ ("label", Telemetry.Json.String label);
        ("domains", Telemetry.Json.Int domains);
        ("cold_cache", Telemetry.Json.Bool cold);
        ("seconds", Telemetry.Json.Float dt);
        ("lp_solves", Telemetry.Json.Int s.Engine.Stats.lp_solves);
        ("hit_rate", Telemetry.Json.Float (Engine.Stats.hit_rate s));
      ]
  in
  Telemetry.Json.Obj
    [ ("configs",
       Telemetry.Json.List
         [ config "1 domain, cold cache" ~domains:1 ~cold:true t1 s1;
           config "4 domains, cold cache" ~domains:4 ~cold:true t4c s4c;
           config "1 domain, warm cache" ~domains:1 ~cold:false t1w s1w;
           config "4 domains, warm cache" ~domains:4 ~cold:false t4 s4;
         ]);
      ("speedup_4_domains_vs_1", Telemetry.Json.Float speedup);
      ("byte_identical", Telemetry.Json.Bool byte_identical);
    ]

(* ------------------------------------------------------------------ *)
(* LP engine: cold Simplex vs warm-start Solver                        *)
(* ------------------------------------------------------------------ *)

(* The same boundary sweep solved twice on the production LP (the TDBC
   inner bound from the ablation): once with a fresh [Simplex.maximize]
   per weight (how sweeps ran before the warm-start engine), once with
   one [Linprog.Solver] reoptimized across the sweep. Pivot counts and
   per-solve latency come from the telemetry registry, so the numbers
   are the same ones `bidir check` gates. *)
let lp_comparison () =
  hr "LP ENGINE: cold Simplex vs warm-start Solver (129-weight sweep)";
  let nvars, constrs = Bidir.Rate_region.lp_constraints tdbc_bound in
  let weights = 129 in
  let objectives =
    List.init weights (fun i ->
        let w = float_of_int i /. float_of_int (weights - 1) in
        let c = Array.make nvars 0. in
        c.(0) <- w;
        c.(1) <- 1. -. w;
        c)
  in
  let pivots = Telemetry.Metrics.counter "linprog.pivots" in
  let solves = Telemetry.Metrics.counter "linprog.solves" in
  let alloc = Telemetry.Metrics.counter "linprog.alloc_bytes" in
  (* allocation accounting on for this section only, so the cold/warm
     allocations-per-solve baseline lands in BENCH_engine.json *)
  Telemetry.Resource.with_enabled true @@ fun () ->
  let measure solve_all =
    Telemetry.Metrics.reset ();
    let lp_seconds = Telemetry.Metrics.histogram "lp.solve_seconds" in
    let t0 = Unix.gettimeofday () in
    let outcomes =
      solve_all (fun f -> Telemetry.Metrics.time lp_seconds f)
    in
    let dt = Unix.gettimeofday () -. t0 in
    let p50, _, p99 = Telemetry.Histogram.percentiles lp_seconds in
    ( outcomes,
      ( Telemetry.Metrics.value pivots,
        Telemetry.Metrics.value solves,
        Telemetry.Metrics.value alloc,
        dt, p50, p99 ) )
  in
  let cold_outcomes,
      (cold_pivots, cold_solves, cold_alloc, cold_dt, cold_p50, cold_p99) =
    measure (fun timed ->
        List.map
          (fun c -> timed (fun () -> Linprog.Simplex.maximize ~c ~constrs))
          objectives)
  in
  let warm_outcomes,
      (warm_pivots, warm_solves, warm_alloc, warm_dt, warm_p50, warm_p99) =
    measure (fun timed ->
        let solver = Linprog.Solver.create ~nvars ~constrs in
        List.map
          (fun c -> timed (fun () -> Linprog.Solver.reoptimize solver ~c))
          objectives)
  in
  let objectives_equal =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Linprog.Simplex.Optimal s1, Linprog.Simplex.Optimal s2 ->
          abs_float (s1.Linprog.Simplex.objective -. s2.Linprog.Simplex.objective)
          <= 1e-9
        | _ -> false)
      cold_outcomes warm_outcomes
  in
  let per_solve alc slv =
    if slv = 0 then 0. else float_of_int alc /. float_of_int slv
  in
  let describe label (piv, slv, alc, dt, p50, p99) =
    Printf.printf
      "%-28s %6d pivots / %3d solves  %7.2f ms  (p50=%.3gs p99=%.3gs per \
       solve, %.0f alloc B/solve)\n"
      label piv slv (1000. *. dt) p50 p99 (per_solve alc slv)
  in
  describe "cold (Simplex.maximize):"
    (cold_pivots, cold_solves, cold_alloc, cold_dt, cold_p50, cold_p99);
  describe "warm (Solver.reoptimize):"
    (warm_pivots, warm_solves, warm_alloc, warm_dt, warm_p50, warm_p99);
  let pivot_reduction =
    float_of_int cold_pivots /. float_of_int (max warm_pivots 1)
  in
  Printf.printf "pivot reduction: %.1fx; objectives agree to 1e-9: %b\n"
    pivot_reduction objectives_equal;
  let variant (piv, slv, alc, dt, p50, p99) =
    Telemetry.Json.Obj
      [ ("pivots", Telemetry.Json.Int piv);
        ("solves", Telemetry.Json.Int slv);
        ("alloc_bytes", Telemetry.Json.Int alc);
        ("alloc_bytes_per_solve", Telemetry.Json.Float (per_solve alc slv));
        ("seconds", Telemetry.Json.Float dt);
        ("solve_seconds_p50", Telemetry.Json.Float p50);
        ("solve_seconds_p99", Telemetry.Json.Float p99);
      ]
  in
  Telemetry.Json.Obj
    [ ("weights", Telemetry.Json.Int weights);
      ("cold",
       variant
         (cold_pivots, cold_solves, cold_alloc, cold_dt, cold_p50, cold_p99));
      ("warm",
       variant
         (warm_pivots, warm_solves, warm_alloc, warm_dt, warm_p50, warm_p99));
      ("pivot_reduction", Telemetry.Json.Float pivot_reduction);
      (* the headline allocations-per-solve number is the warm engine's:
         that is the production path sweeps run on *)
      ("alloc_bytes_per_solve",
       Telemetry.Json.Float (per_solve warm_alloc warm_solves));
      ("objectives_equal", Telemetry.Json.Bool objectives_equal);
    ]

(* ------------------------------------------------------------------ *)
(* Kernel: flat floatarray tableau vs the nested-array engine          *)
(* ------------------------------------------------------------------ *)

(* The warm-start engine as it existed before the flat kernel: a
   [float array array] tableau (one heap block per row, boxed row
   pointers between them), column-major reduced costs rebuilt with
   [Array.init] on every pivot, and a boxed solution record per solve.
   Same algorithm as [Linprog.Solver] — phase 1 once, Dantzig pricing
   with the sticky Bland fallback, identical tolerances — so the only
   thing the comparison measures is the data layout and the
   allocation behaviour. *)
module Nested_solver = struct
  let eps = 1e-9
  let stall_limit = 20

  type t = {
    nvars : int;
    mutable m : int;
    ncols : int;
    tab : float array array; (* m x (ncols + 1), rhs in the last slot *)
    basis : int array;
    first_artificial : int;
    cost : float array; (* ncols slots, the loaded objective *)
    mutable feasible : bool;
  }

  (* column-major over every column (disallowed ones price to
     neg_infinity), one fresh array per pivot — the historical
     scratch discipline *)
  let reduced_costs t ~limit =
    Array.init t.ncols (fun j ->
        if j >= limit then neg_infinity
        else begin
          let r = ref t.cost.(j) in
          for i = 0 to t.m - 1 do
            let cb = t.cost.(t.basis.(i)) in
            if cb <> 0. then r := !r -. (cb *. t.tab.(i).(j))
          done;
          !r
        end)

  let eliminate t ~row ~col =
    let pr = t.tab.(row) in
    let p = pr.(col) in
    for j = 0 to t.ncols do
      pr.(j) <- pr.(j) /. p
    done;
    for i = 0 to t.m - 1 do
      if i <> row then begin
        let f = t.tab.(i).(col) in
        if f <> 0. then begin
          let ri = t.tab.(i) in
          for j = 0 to t.ncols do
            ri.(j) <- ri.(j) -. (f *. pr.(j))
          done
        end
      end
    done;
    t.basis.(row) <- col

  let ratio_leave t ~col =
    let best = ref infinity and leave = ref (-1) in
    for i = 0 to t.m - 1 do
      let a = t.tab.(i).(col) in
      if a > eps then begin
        let r = t.tab.(i).(t.ncols) /. a in
        if
          r < !best -. eps
          || (abs_float (r -. !best) <= eps
              && !leave >= 0
              && t.basis.(i) < t.basis.(!leave))
        then begin
          best := r;
          leave := i
        end
      end
    done;
    (!leave, !leave >= 0 && !best <= eps)

  let run_phase t ~limit =
    let bland = ref false and stall = ref 0 in
    let state = ref 0 and iter = ref 0 in
    while !state = 0 do
      if !iter > 10_000 then failwith "Nested_solver: iteration limit";
      incr iter;
      let reduced = reduced_costs t ~limit in
      let entering = ref (-1) in
      if !bland then begin
        let j = ref 0 in
        while !entering < 0 && !j < limit do
          if reduced.(!j) > eps then entering := !j;
          incr j
        done
      end
      else begin
        let bestv = ref eps in
        for j = 0 to limit - 1 do
          if reduced.(j) > !bestv then begin
            bestv := reduced.(j);
            entering := j
          end
        done
      end;
      if !entering < 0 then state := 1
      else begin
        let leave, degenerate = ratio_leave t ~col:!entering in
        if leave < 0 then state := 2
        else begin
          if degenerate then begin
            incr stall;
            if !stall > stall_limit then bland := true
          end
          else stall := 0;
          eliminate t ~row:leave ~col:!entering
        end
      end
    done;
    !state = 1

  let objective t =
    let acc = ref 0. in
    for i = 0 to t.m - 1 do
      let cb = t.cost.(t.basis.(i)) in
      if cb <> 0. then acc := !acc +. (cb *. t.tab.(i).(t.ncols))
    done;
    !acc

  let create ~nvars ~constrs =
    (* identical normalisation/layout to Linprog (rhs >= 0; slack per
       inequality; artificial per Ge/Eq row) *)
    let normalised =
      List.map
        (fun (c : Linprog.Simplex.constr) ->
          if c.Linprog.Simplex.rhs < 0. then
            Linprog.Simplex.constr
              (Array.map (fun a -> -.a) c.Linprog.Simplex.coeffs)
              (match c.Linprog.Simplex.relation with
              | Linprog.Simplex.Le -> Linprog.Simplex.Ge
              | Linprog.Simplex.Ge -> Linprog.Simplex.Le
              | Linprog.Simplex.Eq -> Linprog.Simplex.Eq)
              (-.c.Linprog.Simplex.rhs)
          else c)
        constrs
    in
    let m = List.length normalised in
    let n_slack =
      List.length
        (List.filter
           (fun c -> c.Linprog.Simplex.relation <> Linprog.Simplex.Eq)
           normalised)
    in
    let first_artificial = nvars + n_slack in
    let n_art =
      List.length
        (List.filter
           (fun c -> c.Linprog.Simplex.relation <> Linprog.Simplex.Le)
           normalised)
    in
    let ncols = first_artificial + n_art in
    let t =
      { nvars;
        m;
        ncols;
        tab = Array.init m (fun _ -> Array.make (ncols + 1) 0.);
        basis = Array.make m 0;
        first_artificial;
        cost = Array.make ncols 0.;
        feasible = false;
      }
    in
    let slack = ref nvars and art = ref first_artificial in
    List.iteri
      (fun i (c : Linprog.Simplex.constr) ->
        Array.blit c.Linprog.Simplex.coeffs 0 t.tab.(i) 0 nvars;
        t.tab.(i).(ncols) <- c.Linprog.Simplex.rhs;
        match c.Linprog.Simplex.relation with
        | Linprog.Simplex.Le ->
          t.tab.(i).(!slack) <- 1.;
          t.basis.(i) <- !slack;
          incr slack
        | Linprog.Simplex.Ge ->
          t.tab.(i).(!slack) <- -1.;
          incr slack;
          t.tab.(i).(!art) <- 1.;
          t.basis.(i) <- !art;
          incr art
        | Linprog.Simplex.Eq ->
          t.tab.(i).(!art) <- 1.;
          t.basis.(i) <- !art;
          incr art)
      normalised;
    (* phase 1 *)
    Array.fill t.cost 0 ncols 0.;
    for j = first_artificial to ncols - 1 do
      t.cost.(j) <- -1.
    done;
    ignore (run_phase t ~limit:ncols : bool);
    if objective t < -.eps then t.feasible <- false
    else begin
      (* drive artificials out of the basis (or drop redundant rows) *)
      let i = ref 0 in
      while !i < t.m do
        if t.basis.(!i) >= first_artificial then begin
          let col = ref (-1) and j = ref 0 in
          while !col < 0 && !j < first_artificial do
            if abs_float t.tab.(!i).(!j) > eps then col := !j;
            incr j
          done;
          if !col >= 0 then begin
            eliminate t ~row:!i ~col:!col;
            incr i
          end
          else begin
            t.tab.(!i) <- t.tab.(t.m - 1);
            t.m <- t.m - 1
          end
        end
        else incr i
      done;
      t.feasible <- true
    end;
    t

  (* warm phase-2 reoptimize, boxed solution like the historical API *)
  let reoptimize t ~c =
    if not t.feasible then failwith "Nested_solver: infeasible";
    Array.fill t.cost 0 t.ncols 0.;
    Array.blit c 0 t.cost 0 t.nvars;
    if not (run_phase t ~limit:t.first_artificial) then
      failwith "Nested_solver: unbounded";
    let x = Array.make t.nvars 0. in
    for i = 0 to t.m - 1 do
      let b = t.basis.(i) in
      if b < t.nvars then x.(b) <- t.tab.(i).(t.ncols)
    done;
    (x, objective t)
end

(* The production TDBC LP swept warm on both engines: same create-once
   instance, same 129 objectives, identical pivot rule. Wall time is
   total over [reps] sweeps; latency percentiles and the
   allocations-per-warm-solve figure come from dedicated unmixed
   passes so timing instrumentation never pollutes the allocation
   measurement (and vice versa). *)
let kernel_comparison () =
  hr "KERNEL: flat floatarray tableau vs nested arrays (129-weight TDBC sweep)";
  let nvars, constrs = Bidir.Rate_region.lp_constraints tdbc_bound in
  let weights = 129 in
  let objectives =
    Array.init weights (fun i ->
        let w = float_of_int i /. float_of_int (weights - 1) in
        let c = Array.make nvars 0. in
        c.(0) <- w;
        c.(1) <- 1. -. w;
        c)
  in
  let reps = 400 in
  let nested = Nested_solver.create ~nvars ~constrs in
  let flat = Linprog.Solver.create ~nvars ~constrs in
  let x = Array.make (nvars + 1) 0. in
  let nested_objs = Array.make weights nan in
  let flat_objs = Array.make weights nan in
  let nested_sweep () =
    for i = 0 to weights - 1 do
      let _, obj = Nested_solver.reoptimize nested ~c:objectives.(i) in
      nested_objs.(i) <- obj
    done
  in
  let flat_sweep () =
    for i = 0 to weights - 1 do
      (match Linprog.Solver.reoptimize_into flat ~c:objectives.(i) ~x with
      | Linprog.Solver.Optimal -> ()
      | Linprog.Solver.Unbounded | Linprog.Solver.Infeasible ->
        failwith "kernel_comparison: non-optimal production LP");
      flat_objs.(i) <- x.(nvars)
    done
  in
  (* warm both engines, and fault in every code path once *)
  nested_sweep ();
  flat_sweep ();
  let time_sweeps sweep =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      sweep ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let nested_dt = time_sweeps nested_sweep in
  let flat_dt = time_sweeps flat_sweep in
  let speedup = nested_dt /. Float.max flat_dt 1e-12 in
  let objectives_equal =
    Array.for_all2
      (fun a b -> abs_float (a -. b) <= 1e-9)
      nested_objs flat_objs
  in
  (* flat warm latency distribution, per solve *)
  Telemetry.Metrics.reset ();
  let lp_seconds = Telemetry.Metrics.histogram "lp.solve_seconds" in
  for i = 0 to weights - 1 do
    Telemetry.Metrics.time lp_seconds (fun () ->
        ignore
          (Linprog.Solver.reoptimize_into flat ~c:objectives.(i) ~x
            : Linprog.Solver.verdict))
  done;
  let p50, _, p99 = Telemetry.Histogram.percentiles lp_seconds in
  (* allocations per warm solve: one Gc pair around a whole untimed
     sweep (the read itself boxes ~a dozen bytes, amortised to zero by
     the integer division over 129 solves) *)
  let b0 = Gc.allocated_bytes () in
  flat_sweep ();
  let alloc_per_warm_solve =
    int_of_float (Float.max 0. (Gc.allocated_bytes () -. b0)) / weights
  in
  Printf.printf "nested arrays:  %8.2f ms/sweep\n" (1000. *. nested_dt);
  Printf.printf "flat kernel:    %8.2f ms/sweep  (%.2fx speedup)\n"
    (1000. *. flat_dt) speedup;
  Printf.printf
    "flat warm solve: p50=%.3gs p99=%.3gs, %d alloc B/solve; objectives \
     agree to 1e-9: %b\n"
    p50 p99 alloc_per_warm_solve objectives_equal;
  Telemetry.Json.Obj
    [ ("weights", Telemetry.Json.Int weights);
      ("reps", Telemetry.Json.Int reps);
      ("nested_seconds_per_sweep", Telemetry.Json.Float nested_dt);
      ("flat_seconds_per_sweep", Telemetry.Json.Float flat_dt);
      ("speedup", Telemetry.Json.Float speedup);
      ("solve_seconds_p50", Telemetry.Json.Float p50);
      ("solve_seconds_p99", Telemetry.Json.Float p99);
      ("alloc_bytes_per_warm_solve", Telemetry.Json.Int alloc_per_warm_solve);
      ("objectives_equal", Telemetry.Json.Bool objectives_equal);
    ]

(* ------------------------------------------------------------------ *)
(* Campaign: sharded Monte-Carlo replication engine                    *)
(* ------------------------------------------------------------------ *)

(* The determinism claim measured, not assumed: the same ergodic
   campaign on 1 and 4 domains must render byte-identical JSON, and its
   mean must agree with the analytic long-run estimate from
   [Bidir.Ergodic] within the two confidence intervals. *)
let campaign_comparison () =
  hr "CAMPAIGN: sharded replication engine (ergodic workload, 48 reps)";
  let replications = 48 in
  let workload () = Campaign.Workloads.ergodic ~blocks_per_rep:120 () in
  let run_with ?on_progress domains =
    (* both runs evaluate identical scenarios (same seed), so the LP
       memo must start cold each time or the second run times cache
       lookups instead of work; the registry reset isolates each run's
       pool-utilization histograms *)
    Engine.Memo.clear_all ();
    Telemetry.Metrics.reset ();
    let t0 = Unix.gettimeofday () in
    let r =
      Campaign.Runner.run
        (Campaign.Runner.default_config ~seed:11 ~domains ~batch:16
           ?on_progress ~replications ())
        (workload ())
    in
    let dt = Unix.gettimeofday () -. t0 in
    (Telemetry.Json.to_string (Campaign.Runner.result_to_json r), r, dt)
  in
  let rendered1, r1, t1 = run_with 1 in
  let rendered4, _, t4 = run_with 4 in
  (* pool utilization of the 4-domain run (the registry was reset at
     its start; the 1-domain run issues no parallel maps): where do the
     4 x wall domain-seconds go, and how even are the chunks? *)
  let busy =
    Telemetry.Histogram.sum
      (Telemetry.Metrics.histogram "engine.pool.busy_seconds")
  in
  let idle =
    Telemetry.Histogram.sum
      (Telemetry.Metrics.histogram "engine.pool.idle_seconds")
  in
  let pool_idle_fraction =
    if busy +. idle <= 0. then 0. else idle /. (busy +. idle)
  in
  let chunk_imbalance =
    Telemetry.Histogram.mean
      (Telemetry.Metrics.histogram "engine.pool.chunk_imbalance")
  in
  (* an installed progress hook makes batch boundaries observable, which
     forces the legacy one-fan-out-per-batch schedule instead of the
     fused single fan-out — the difference is the fan-out amortisation
     the fused path buys (and both must stay byte-identical) *)
  let rendered4b, _, t4b = run_with ~on_progress:(fun _ -> ()) 4 in
  let byte_identical =
    String.equal rendered1 rendered4 && String.equal rendered1 rendered4b
  in
  let speedup = t1 /. Float.max t4 1e-9 in
  let fanout_amortisation = t4b /. Float.max t4 1e-9 in
  let sum_rate = List.assoc "sum_rate" r1.Campaign.Runner.values in
  let campaign_lo, campaign_hi = sum_rate.Campaign.Runner.ci95 in
  let analytic =
    Bidir.Ergodic.ergodic_sum_rate ~blocks:4_000
      (Channel.Fading.create ~rng_seed:55 ~mean:Channel.Gains.paper_fig4 ())
      ~power:(Numerics.Float_utils.db_to_lin 10.)
      Bidir.Protocol.Tdbc
  in
  let analytic_lo, analytic_hi = analytic.Bidir.Ergodic.ci95 in
  (* agreement = the two interval estimates of the same quantity overlap *)
  let within_ci = campaign_lo <= analytic_hi && analytic_lo <= campaign_hi in
  Printf.printf "campaign, 1 domain: %7.1f ms; 4 domains: %7.1f ms (%.1fx)\n"
    (1000. *. t1) (1000. *. t4) speedup;
  Printf.printf
    "4 domains per-batch (progress hook): %7.1f ms (fused fan-out is \
     %.2fx faster)\n"
    (1000. *. t4b) fanout_amortisation;
  Printf.printf
    "4-domain pool: %.1f ms busy / %.1f ms idle (idle fraction %.2f), mean \
     chunk imbalance %.2f\n"
    (1000. *. busy) (1000. *. idle) pool_idle_fraction chunk_imbalance;
  Printf.printf "results byte-identical across domain counts: %b\n"
    byte_identical;
  Printf.printf
    "campaign mean sum rate %.4f [%.4f, %.4f] vs analytic %.4f [%.4f, %.4f] \
     (CIs overlap: %b)\n"
    sum_rate.Campaign.Runner.mean campaign_lo campaign_hi
    analytic.Bidir.Ergodic.mean analytic_lo analytic_hi within_ci;
  Telemetry.Json.Obj
    [ ("replications", Telemetry.Json.Int replications);
      ("seconds_1_domain", Telemetry.Json.Float t1);
      ("seconds_4_domains", Telemetry.Json.Float t4);
      ("seconds_4_domains_per_batch", Telemetry.Json.Float t4b);
      ("campaign_speedup_4_domains", Telemetry.Json.Float speedup);
      ("fanout_amortisation_speedup", Telemetry.Json.Float fanout_amortisation);
      ("pool_busy_seconds_4_domains", Telemetry.Json.Float busy);
      ("pool_idle_seconds_4_domains", Telemetry.Json.Float idle);
      ("pool_idle_fraction", Telemetry.Json.Float pool_idle_fraction);
      ("chunk_imbalance", Telemetry.Json.Float chunk_imbalance);
      ("campaign_byte_identical", Telemetry.Json.Bool byte_identical);
      ("mean_sum_rate", Telemetry.Json.Float sum_rate.Campaign.Runner.mean);
      ("ci95",
       Telemetry.Json.List
         [ Telemetry.Json.Float campaign_lo; Telemetry.Json.Float campaign_hi ]);
      ("analytic_mean", Telemetry.Json.Float analytic.Bidir.Ergodic.mean);
      ("analytic_ci95",
       Telemetry.Json.List
         [ Telemetry.Json.Float analytic_lo; Telemetry.Json.Float analytic_hi ]);
      ("campaign_within_ci", Telemetry.Json.Bool within_ci);
    ]

(* ------------------------------------------------------------------ *)
(* Queue: two-list batch queue vs the old list-append FIFO             *)
(* ------------------------------------------------------------------ *)

(* the FIFO Traffic used before the two-list queue: [@] copies the whole
   queue on every enqueue, so a backed-up horizon costs O(blocks^2) *)
module Append_queue = struct
  type t = { mutable batches : (float * int) list; mutable bits : int }

  let create () = { batches = []; bits = 0 }

  let enqueue q ~arrival ~bits =
    if bits > 0 then begin
      q.batches <- q.batches @ [ (arrival, bits) ];
      q.bits <- q.bits + bits
    end

  let drain q ~budget ~now =
    let rec go budget acc =
      match q.batches with
      | [] -> acc
      | (arrival, bits) :: rest ->
        if bits <= budget then begin
          q.batches <- rest;
          q.bits <- q.bits - bits;
          go (budget - bits) ((now -. arrival) :: acc)
        end
        else begin
          q.batches <- (arrival, bits - budget) :: rest;
          q.bits <- q.bits - budget;
          acc
        end
    in
    go budget []
end

let queue_comparison () =
  hr "QUEUE: two-list batch queue vs list-append FIFO (20k-block horizon)";
  (* the exact per-block arrival trace Traffic.run generates for TDBC at
     the Fig. 4 gains, P = 10 dB, over a 20_000-block horizon — generated
     once per load, replayed through both queue implementations.  Two
     loads: 0.95 (the top of the delay curves; the queue hovers near a
     dozen frames so both FIFOs are cheap and must agree exactly) and
     1.05 (sustained overload: the backlog grows without bound, which is
     where the old [@]-append turns every enqueue into an O(queue) copy
     and the horizon into O(blocks^2)) *)
  let blocks = 20_000 in
  let block_symbols = 1_000 in
  let opt =
    Bidir.Optimize.sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner
      paper_scenario
  in
  let n = float_of_int block_symbols in
  let serve_a = int_of_float (opt.Bidir.Optimize.ra *. n) in
  let serve_b = int_of_float (opt.Bidir.Optimize.rb *. n) in
  let frame_a = max 1 (serve_a / 4) in
  let frame_b = max 1 (serve_b / 4) in
  let make_trace ~seed ~load =
    let rng = Prob.Rng.create ~seed in
    let poisson mean =
      if mean <= 0. then 0
      else begin
        let l = exp (-.mean) in
        let rec go k p =
          let p = p *. Prob.Rng.float rng in
          if p > l && k < 100_000 then go (k + 1) p else k
        in
        go 0 1.
      end
    in
    let offer mean_serve frame =
      if mean_serve = 0 then 0.
      else load *. float_of_int mean_serve /. float_of_int frame
    in
    let offer_a = offer serve_a frame_a and offer_b = offer serve_b frame_b in
    Array.init blocks (fun _ -> (poisson offer_a, poisson offer_b))
  in
  (* both replays produce (sojourns in completion order, leftover bits):
     comparing them end-to-end is the behavioural-equivalence check *)
  let replay trace ~create ~enqueue ~drain ~bits () =
    let qa = create () and qb = create () in
    let delays = ref [] in
    Array.iteri
      (fun block (frames_a, frames_b) ->
        let now = float_of_int block in
        for _ = 1 to frames_a do
          enqueue qa ~arrival:now ~bits:frame_a
        done;
        for _ = 1 to frames_b do
          enqueue qb ~arrival:now ~bits:frame_b
        done;
        let done_a = drain qa ~budget:serve_a ~now:(now +. 1.) in
        let done_b = drain qb ~budget:serve_b ~now:(now +. 1.) in
        delays := List.rev_append done_a !delays;
        delays := List.rev_append done_b !delays)
      trace;
    (List.rev !delays, bits qa + bits qb)
  in
  let time_best ~reps f =
    let best = ref infinity and out = ref None in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then begin
        best := dt;
        out := Some r
      end
    done;
    (Option.get !out, !best)
  in
  let compare_at ~label ~load ~reps =
    let trace = make_trace ~seed:97 ~load in
    let append_result, append_dt =
      time_best ~reps
        (replay trace ~create:Append_queue.create
           ~enqueue:Append_queue.enqueue ~drain:Append_queue.drain
           ~bits:(fun (q : Append_queue.t) -> q.Append_queue.bits))
    in
    let batch_result, batch_dt =
      time_best ~reps
        (replay trace ~create:Netsim.Batch_queue.create
           ~enqueue:Netsim.Batch_queue.enqueue
           ~drain:Netsim.Batch_queue.drain ~bits:Netsim.Batch_queue.bits)
    in
    let results_equal = append_result = batch_result in
    let speedup = append_dt /. Float.max batch_dt 1e-9 in
    let delivered, leftover = batch_result in
    Printf.printf
      "%s (load %.2f): %d completions, %d bits left queued\n" label load
      (List.length delivered) leftover;
    Printf.printf "  list-append FIFO:   %8.1f ms\n" (1000. *. append_dt);
    Printf.printf "  two-list queue:     %8.1f ms\n" (1000. *. batch_dt);
    Printf.printf "  speedup %.1fx; identical completions and backlog: %b\n"
      speedup results_equal;
    ( speedup,
      results_equal,
      Telemetry.Json.Obj
        [ ("load", Telemetry.Json.Float load);
          ("completions", Telemetry.Json.Int (List.length delivered));
          ("leftover_bits", Telemetry.Json.Int leftover);
          ("append_seconds", Telemetry.Json.Float append_dt);
          ("two_list_seconds", Telemetry.Json.Float batch_dt);
          ("speedup", Telemetry.Json.Float speedup);
          ("results_equal", Telemetry.Json.Bool results_equal);
        ] )
  in
  let _stable_speedup, stable_equal, stable_json =
    compare_at ~label:"near-capacity replay" ~load:0.95 ~reps:3
  in
  (* a single rep suffices under overload: the gap is orders of
     magnitude, not noise *)
  let overload_speedup, overload_equal, overload_json =
    compare_at ~label:"sustained-overload replay" ~load:1.05 ~reps:1
  in
  Telemetry.Json.Obj
    [ ("blocks", Telemetry.Json.Int blocks);
      ("near_capacity", stable_json);
      ("overload", overload_json);
      ("queue_speedup", Telemetry.Json.Float overload_speedup);
      ( "queue_results_equal",
        Telemetry.Json.Bool (stable_equal && overload_equal) );
    ]

(* ------------------------------------------------------------------ *)
(* Network: multi-pair relay assignment, greedy vs LP                  *)
(* ------------------------------------------------------------------ *)

(* The assignment layer swept over network size: for each K the rate
   table is evaluated once (the dominant cost, fanned across the pool)
   and then both allocators run on the same table, so the greedy-vs-LP
   gap and the pivot budget are measured on identical inputs. The
   headline keys (sum rate, pivots, gap at the largest K) feed the
   trajectory line. *)
let network_comparison () =
  hr "NETWORK: relay assignment, greedy vs fractional-matching LP";
  let relays = 3 and seed = 23 in
  let sweep =
    List.map
      (fun pairs ->
        let scenario = Network.Scenario.random ~pairs ~relays ~seed () in
        let t0 = Unix.gettimeofday () in
        let table = Network.Assign.rate_table scenario in
        let t1 = Unix.gettimeofday () in
        let greedy = Network.Assign.solve_table Network.Assign.Greedy table in
        let lp = Network.Assign.solve_table Network.Assign.Lp table in
        let t2 = Unix.gettimeofday () in
        let gap =
          if lp.Network.Assign.sum_rate <= 0. then 0.
          else
            (lp.Network.Assign.sum_rate -. greedy.Network.Assign.sum_rate)
            /. lp.Network.Assign.sum_rate
        in
        Printf.printf
          "K=%4d R=%d: greedy %8.3f, LP %8.3f bits/use (gap %+5.2f%%, %3d \
           pivots); table %7.1f ms, assign %5.1f ms\n"
          pairs relays greedy.Network.Assign.sum_rate
          lp.Network.Assign.sum_rate (100. *. gap)
          lp.Network.Assign.assignment_pivots
          (1000. *. (t1 -. t0))
          (1000. *. (t2 -. t1));
        ( pairs, greedy, lp, gap, t1 -. t0, t2 -. t1 ))
      [ 8; 32; 128 ]
  in
  let point (pairs, greedy, lp, gap, table_dt, assign_dt) =
    Telemetry.Json.Obj
      [ ("pairs", Telemetry.Json.Int pairs);
        ("relays", Telemetry.Json.Int relays);
        ( "greedy_sum_rate",
          Telemetry.Json.Float greedy.Network.Assign.sum_rate );
        ("lp_sum_rate", Telemetry.Json.Float lp.Network.Assign.sum_rate);
        ("greedy_lp_gap", Telemetry.Json.Float gap);
        ( "assignment_pivots",
          Telemetry.Json.Int lp.Network.Assign.assignment_pivots );
        ("table_seconds", Telemetry.Json.Float table_dt);
        ("assign_seconds", Telemetry.Json.Float assign_dt);
      ]
  in
  let _, _, last_lp, last_gap, _, _ =
    List.nth sweep (List.length sweep - 1)
  in
  Telemetry.Json.Obj
    [ ("seed", Telemetry.Json.Int seed);
      ("sweep", Telemetry.Json.List (List.map point sweep));
      ( "network_sum_rate",
        Telemetry.Json.Float last_lp.Network.Assign.sum_rate );
      ( "network_assignment_pivots",
        Telemetry.Json.Int last_lp.Network.Assign.assignment_pivots );
      ("network_greedy_lp_gap", Telemetry.Json.Float last_gap);
    ]

(* ------------------------------------------------------------------ *)
(* Serve: batched query service, cold vs warm cache                    *)
(* ------------------------------------------------------------------ *)

(* The serving plane's admission cache measured in-process: the full
   served scenario grid evaluated twice through
   [Serve.Service.respond_batch] — once against cleared memo tables
   (every query runs its LPs on the pool), once fully warm (every
   query is a rendered-response cache hit). The ratio is the headline
   the daemon's steady state rides on; identical response bytes across
   the two passes gate the cache against staleness. *)
let serve_comparison () =
  hr "SERVE: batched query service, cold vs warm cache";
  let pool =
    Serve.Scenarios.pool Serve.Query.Sumrate
    @ Serve.Scenarios.pool Serve.Query.Select
    @ Serve.Scenarios.pool Serve.Query.Region
  in
  let n = List.length pool in
  Engine.Memo.clear_all ();
  let t0 = Unix.gettimeofday () in
  let cold = Serve.Service.respond_batch pool in
  let t1 = Unix.gettimeofday () in
  let warm = Serve.Service.respond_batch pool in
  let t2 = Unix.gettimeofday () in
  let cold_dt = t1 -. t0 and warm_dt = t2 -. t1 in
  let identical = List.for_all2 String.equal cold warm in
  let speedup = if warm_dt > 0. then cold_dt /. warm_dt else 0. in
  Printf.printf
    "%d queries: cold %7.2f ms, warm %7.3f ms (speedup %6.1fx, responses %s)\n"
    n (1000. *. cold_dt) (1000. *. warm_dt) speedup
    (if identical then "identical" else "DIFFER");
  Telemetry.Json.Obj
    [ ("queries", Telemetry.Json.Int n);
      ("cold_seconds", Telemetry.Json.Float cold_dt);
      ("warm_seconds", Telemetry.Json.Float warm_dt);
      ("serve_cache_speedup", Telemetry.Json.Float speedup);
      ( "serve_warm_qps",
        Telemetry.Json.Float
          (if warm_dt > 0. then float_of_int n /. warm_dt else 0.) );
      ("serve_responses_identical", Telemetry.Json.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                     *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let tests =
  [ Test.make ~name:"fig3 (9-point sweep)"
      (stage (fun () -> ignore (Bidir.Figures.fig3 ~samples:9 ())));
    Test.make ~name:"fig4a region (P=0dB)"
      (stage (fun () -> ignore (Bidir.Figures.fig4 ~power_db:0. ())));
    Test.make ~name:"fig4b region (P=10dB)"
      (stage (fun () -> ignore (Bidir.Figures.fig4 ~power_db:10. ())));
    Test.make ~name:"gap table"
      (stage (fun () -> ignore (Bidir.Figures.gap_table ())));
    Test.make ~name:"crossover table"
      (stage (fun () -> ignore (Bidir.Figures.crossover_table ())));
    Test.make ~name:"hbc witness table"
      (stage (fun () -> ignore (Bidir.Figures.hbc_witness_table ())));
    Test.make ~name:"kernel: one sum-rate LP (HBC)"
      (stage (fun () ->
           ignore
             (Bidir.Optimize.sum_rate Bidir.Protocol.Hbc Bidir.Bound.Inner
                paper_scenario)));
    Test.make ~name:"kernel: TDBC boundary sweep (65 LPs)"
      (stage (fun () -> ignore (Bidir.Rate_region.boundary tdbc_bound)));
    Test.make ~name:"ablation: naive 30x30 grid region"
      (stage (fun () -> ignore (naive_grid_region tdbc_bound ~cells:30)));
    Test.make ~name:"kernel: Blahut-Arimoto (BSC 0.1)"
      (stage (fun () ->
           ignore (Infotheory.Blahut.capacity (Infotheory.Channels.bsc 0.1))));
    (let net =
       Bidir.Discrete.bsc_network ~p_ab:0.15 ~p_ar:0.05 ~p_br:0.02 ~p_mac:0.05
     in
     Test.make ~name:"kernel: discrete bounds (BSC net)"
       (stage (fun () ->
            let ins = Bidir.Discrete.uniform_inputs net in
            ignore
              (Bidir.Rate_region.max_sum_rate
                 (Bidir.Discrete.bounds Bidir.Protocol.Hbc Bidir.Bound.Inner
                    net ins)))));
    Test.make ~name:"netsim: 5 blocks x 1000 symbols (TDBC)"
      (stage (fun () ->
           ignore
             (Netsim.Runner.run
                (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc
                   ~power_db:10. ~gains:Channel.Gains.paper_fig4 ~blocks:5
                   ~block_symbols:1_000 ()))));
    Test.make ~name:"netsim: detailed event-driven (5 blocks, TDBC)"
      (stage (fun () ->
           ignore
             (Netsim.Detailed.run
                (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc
                   ~power_db:10. ~gains:Channel.Gains.paper_fig4 ~blocks:5
                   ~block_symbols:1_000 ()))));
    Test.make ~name:"kernel: ergodic rate (100 fading blocks)"
      (stage (fun () ->
           let fading =
             Channel.Fading.create ~rng_seed:3 ~mean:Channel.Gains.paper_fig4 ()
           in
           ignore
             (Bidir.Ergodic.ergodic_sum_rate ~blocks:100 fading ~power:10.
                Bidir.Protocol.Mabc)));
    Test.make ~name:"ablation: avg-energy power allocation (TDBC)"
      (stage (fun () ->
           ignore
             (Bidir.Power_allocation.sum_rate ~resolution:12 ~refinements:2
                Bidir.Protocol.Tdbc paper_scenario
                Bidir.Power_allocation.Average_energy)));
    Test.make ~name:"fd penalty table"
      (stage (fun () -> ignore (Bidir.Fullduplex.penalty_table ())));
    Test.make ~name:"coding gain table"
      (stage (fun () -> ignore (Bidir.Figures.coding_gain_table ())));
    Test.make ~name:"outage figure (80 blocks)"
      (stage (fun () ->
           ignore (Bidir.Ergodic.outage_figure ~blocks:80 ~samples:5 ())));
    Test.make ~name:"delay table (400 blocks)"
      (stage (fun () ->
           ignore
             (Netsim.Traffic.comparison_table ~offered:[ 2.5 ] ~blocks:400
                ~power_db:10. ~gains:Channel.Gains.paper_fig4 ())));
    Test.make ~name:"protocol map (9x5)"
      (stage (fun () -> ignore (Report.protocol_map ~positions:9 ~powers:5 ())));
    Test.make ~name:"kernel: proportional-fair point (HBC)"
      (stage
         (let b =
            Bidir.Gaussian.bounds Bidir.Protocol.Hbc Bidir.Bound.Inner
              paper_scenario
          in
          fun () -> ignore (Bidir.Rate_region.max_product b)));
  ]

let run_benchmarks () =
  hr "BECHAMEL TIMINGS (one benchmark per experiment / kernel)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols_result acc ->
            let ns =
              match Analyze.OLS.estimates ols_result with
              | Some [ est ] -> est
              | Some _ | None -> Float.nan
            in
            let rendered =
              if Float.is_nan ns then "n/a"
              else if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
              else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
              else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
              else Printf.sprintf "%.0f ns" ns
            in
            [ name; rendered ] :: acc)
          analyzed [])
      tests
  in
  print_string (Chart.Table.render ~headers:[ "benchmark"; "time/run" ] ~rows)

(* ------------------------------------------------------------------ *)
(* Machine-readable trajectory: BENCH_engine.json                      *)
(* ------------------------------------------------------------------ *)

let bench_json_path = "BENCH_engine.json"

(* One JSON document per bench run: the reproduction pass's counters,
   phase wall times and full telemetry registry (histograms with
   p50/p90/p99), plus the engine-comparison timings. Tracking these
   files across commits gives the performance trajectory of the repo. *)
let write_bench_json ~repro_stats ~repro_telemetry ~comparison ~lp ~kernel
    ~serve =
  let s : Engine.Stats.snapshot = repro_stats in
  let json =
    Telemetry.Json.Obj
      [ ("schema", Telemetry.Json.String "bidir-bench-engine/1");
        ("reproduction",
         Telemetry.Json.Obj
           [ ("lp_solves", Telemetry.Json.Int s.Engine.Stats.lp_solves);
             ("cache_hits", Telemetry.Json.Int s.Engine.Stats.cache_hits);
             ("cache_misses", Telemetry.Json.Int s.Engine.Stats.cache_misses);
             ("pool_tasks", Telemetry.Json.Int s.Engine.Stats.pool_tasks);
             ("hit_rate", Telemetry.Json.Float (Engine.Stats.hit_rate s));
             ("phase_seconds",
              Telemetry.Json.Obj
                (List.map
                   (fun (label, secs) -> (label, Telemetry.Json.Float secs))
                   s.Engine.Stats.phases));
             ("telemetry", repro_telemetry);
           ]);
        ("engine_comparison", comparison);
        ("lp_comparison", lp);
        ("kernel_comparison", kernel);
        ("serve_comparison", serve);
      ]
  in
  let oc = open_out bench_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Telemetry.Json.to_string_pretty json));
  Printf.printf "\nwrote %s\n" bench_json_path

let campaign_json_path = "BENCH_campaign.json"

(* Campaign + queue numbers in their own document: the two subsystems
   this bench gates for byte-identical parallelism and for the
   amortised-O(1) queue replacement. *)
let write_campaign_json ~campaign ~queue =
  let json =
    Telemetry.Json.Obj
      [ ("schema", Telemetry.Json.String "bidir-bench-campaign/1");
        ("campaign", campaign);
        ("queue", queue);
      ]
  in
  let oc = open_out campaign_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Telemetry.Json.to_string_pretty json));
  Printf.printf "\nwrote %s\n" campaign_json_path

let network_json_path = "BENCH_network.json"

(* Network-layer numbers in their own document: the greedy-vs-LP
   assignment sweep this bench tracks for the multi-pair extension. *)
let write_network_json ~network =
  let json =
    Telemetry.Json.Obj
      [ ("schema", Telemetry.Json.String "bidir-bench-network/1");
        ("network", network);
      ]
  in
  let oc = open_out network_json_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Telemetry.Json.to_string_pretty json));
  Printf.printf "\nwrote %s\n" network_json_path

(* ------------------------------------------------------------------ *)
(* Baseline snapshot + trajectory                                      *)
(* ------------------------------------------------------------------ *)

let snapshot_path = "BENCH_snapshot.json"
let trajectory_path = "BENCH_trajectory.jsonl"

(* One compact JSON line per bench run, appended (never overwritten):
   every counter, count+mean per histogram, and the headline engine
   numbers. Reading the file back gives the repo's performance
   trajectory across commits; the full-fidelity baseline for `bidir
   check` style diffing lives in BENCH_snapshot.json. *)
let append_trajectory ~(snapshot : Telemetry.Snapshot.t) ~comparison ~lp
    ~kernel ~campaign ~queue ~network ~serve =
  let hist_summary h =
    Telemetry.Json.Obj
      [ ("count", Telemetry.Json.Int (Telemetry.Histogram.count h));
        ("mean", Telemetry.Json.Float (Telemetry.Histogram.mean h));
      ]
  in
  let carry key =
    match Telemetry.Json.member key comparison with
    | Some v -> [ (key, v) ]
    | None -> []
  in
  let line =
    Telemetry.Json.Obj
      ([ ("schema", Telemetry.Json.String "bidir-trajectory/1");
         ("ts", Telemetry.Json.Float (Unix.gettimeofday ()));
         ("label", Telemetry.Json.String snapshot.Telemetry.Snapshot.label);
         ("counters",
          Telemetry.Json.Obj
            (List.map
               (fun (n, v) -> (n, Telemetry.Json.Int v))
               snapshot.Telemetry.Snapshot.counters));
         ("histograms",
          Telemetry.Json.Obj
            (List.map
               (fun (n, h) -> (n, hist_summary h))
               snapshot.Telemetry.Snapshot.histograms));
       ]
      @ carry "speedup_4_domains_vs_1"
      @ carry "byte_identical"
      @
      (* headline warm-start LP numbers, prefixed for the flat line *)
      List.concat_map
        (fun key ->
          match Telemetry.Json.member key lp with
          | Some v -> [ ("lp_" ^ key, v) ]
          | None -> [])
        [ "pivot_reduction"; "objectives_equal" ]
      @
      (* resource-attribution baselines for the kernel/campaign PRs,
         unprefixed (the issue-facing key names) *)
      List.concat_map
        (fun key ->
          match Telemetry.Json.member key lp with
          | Some v -> [ (key, v) ]
          | None -> [])
        [ "alloc_bytes_per_solve" ]
      @
      (* flat-kernel headline numbers, prefixed except the issue-facing
         allocation key *)
      List.concat_map
        (fun (key, out) ->
          match Telemetry.Json.member key kernel with
          | Some v -> [ (out, v) ]
          | None -> [])
        [ ("speedup", "kernel_speedup");
          ("objectives_equal", "kernel_objectives_equal");
          ("alloc_bytes_per_warm_solve", "alloc_bytes_per_warm_solve") ]
      @ List.concat_map
          (fun key ->
            match Telemetry.Json.member key campaign with
            | Some v -> [ (key, v) ]
            | None -> [])
          [ "campaign_speedup_4_domains"; "fanout_amortisation_speedup";
            "campaign_byte_identical"; "campaign_within_ci";
            "pool_idle_fraction"; "chunk_imbalance" ]
      @ List.concat_map
          (fun key ->
            match Telemetry.Json.member key queue with
            | Some v -> [ (key, v) ]
            | None -> [])
          [ "queue_speedup"; "queue_results_equal" ]
      @ List.concat_map
          (fun key ->
            match Telemetry.Json.member key network with
            | Some v -> [ (key, v) ]
            | None -> [])
          [ "network_sum_rate"; "network_assignment_pivots";
            "network_greedy_lp_gap" ]
      @ List.concat_map
          (fun key ->
            match Telemetry.Json.member key serve with
            | Some v -> [ (key, v) ]
            | None -> [])
          [ "serve_cache_speedup"; "serve_warm_qps";
            "serve_responses_identical" ])
  in
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 trajectory_path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Telemetry.Json.to_string line ^ "\n"));
  Printf.printf "appended %s\n" trajectory_path

let () =
  let quick = Array.exists (fun a -> a = "quick") Sys.argv in
  reproduce ();
  hr "ENGINE STATS: reproduction pass";
  let repro_stats = Engine.Stats.snapshot () in
  print_string (Engine.Stats.to_string repro_stats);
  (* capture the registry before ablation/comparison reset it *)
  let repro_telemetry = Telemetry.Metrics.to_json () in
  let repro_snapshot =
    Telemetry.Snapshot.capture ~label:"bench:reproduction" ()
  in
  Telemetry.Snapshot.save snapshot_path repro_snapshot;
  Printf.printf "wrote %s\n" snapshot_path;
  ablation ();
  let comparison = engine_comparison () in
  let lp = lp_comparison () in
  let kernel = kernel_comparison () in
  let campaign = campaign_comparison () in
  let queue = queue_comparison () in
  let network = network_comparison () in
  let serve = serve_comparison () in
  write_bench_json ~repro_stats ~repro_telemetry ~comparison ~lp ~kernel
    ~serve;
  write_campaign_json ~campaign ~queue;
  write_network_json ~network;
  append_trajectory ~snapshot:repro_snapshot ~comparison ~lp ~kernel ~campaign
    ~queue ~network ~serve;
  if not quick then begin
    (* time the real kernels, not cache lookups *)
    Engine.Memo.with_enabled false run_benchmarks
  end
