(* The `bidir` command-line tool: reproduce the paper's figures and
   tables, query rate regions, and run packet-level simulations. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let power_arg =
  let doc = "Per-node transmit power P in dB." in
  Arg.(value & opt float 10. & info [ "P"; "power" ] ~docv:"DB" ~doc)

let gains_args =
  let gab =
    Arg.(value & opt float 0. & info [ "gab" ] ~docv:"DB" ~doc:"Gain of the a-b link (dB).")
  in
  let gar =
    Arg.(value & opt float 5. & info [ "gar" ] ~docv:"DB" ~doc:"Gain of the a-r link (dB).")
  in
  let gbr =
    Arg.(value & opt float 7. & info [ "gbr" ] ~docv:"DB" ~doc:"Gain of the b-r link (dB).")
  in
  let combine g_ab g_ar g_br = Channel.Gains.of_db ~g_ab ~g_ar ~g_br in
  Term.(const combine $ gab $ gar $ gbr)

let protocol_arg =
  let parse s =
    match Bidir.Protocol.of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown protocol %S (dt|mabc|tdbc|hbc)" s))
  in
  let print fmt p = Format.fprintf fmt "%s" (Bidir.Protocol.name p) in
  let protocol_converter = Arg.conv (parse, print) in
  Arg.(value & opt protocol_converter Bidir.Protocol.Tdbc
       & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc:"Protocol: dt, mabc, tdbc or hbc.")

let kind_arg =
  let doc = "Evaluate the outer (converse) bound instead of the achievable region." in
  let outer = Arg.(value & flag & info [ "outer" ] ~doc) in
  Term.(const (fun o -> if o then Bidir.Bound.Outer else Bidir.Bound.Inner) $ outer)

(* Engine knobs: every evaluation command takes [--domains N] (parallel
   LP sweeps; results are bit-identical for any N), [--stats] (print
   LP-solve and cache counters to stderr when done), [--trace FILE]
   (record spans and write a Chrome trace), [--metrics FILE] (dump
   the full telemetry registry as JSON), [--live FILE] (stream
   bidir-live/1 heartbeats while running; tail with `bidir top`) and
   [--slo SPEC] (SLO watchdog thresholds evaluated at every
   heartbeat). *)
type engine_opts = {
  domains : int;
  stats : bool;
  trace : string option;
  metrics : string option;
  resource : bool;
  live : string option;
  live_interval : float;
  slo : string list;
  log_level : string;
}

let engine_args ?(default_domains = 1) () =
  let domains =
    Arg.(value & opt int default_domains
         & info [ "domains" ] ~docv:"N"
             ~doc:(Printf.sprintf
                     "Evaluate LP sweeps on $(docv) parallel domains \
                      (default %d; the output is identical for any \
                      value)." default_domains))
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print engine statistics (LP solves, cache hit rate, \
                   per-phase wall time) to stderr on exit.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Record hierarchical spans and write a Chrome \
                   trace-event JSON file on exit; load it in Perfetto \
                   (ui.perfetto.dev) or chrome://tracing.")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write every telemetry counter and histogram \
                   (count/sum/p50/p90/p99) as JSON to $(docv) on exit.")
  in
  let resource =
    Arg.(value & flag
         & info [ "resource" ]
             ~doc:"Track GC/allocation attribution during the run: the \
                   gc.* counters and linprog.alloc_bytes populate in \
                   $(b,--metrics)/$(b,--stats), and spans recorded under \
                   $(b,--trace) carry per-span GC deltas. Observation \
                   only — results are unchanged.")
  in
  let live =
    Arg.(value & opt (some string) None
         & info [ "live" ] ~docv:"FILE"
             ~doc:"Stream live telemetry (bidir-live/1 JSONL heartbeats: \
                   progress, counter deltas, histogram digests, log \
                   records) to $(docv) while running; follow it with \
                   $(b,bidir top) $(docv). Observation only — outputs \
                   are byte-identical with or without it.")
  in
  let live_interval =
    Arg.(value & opt float 0.
         & info [ "live-interval" ] ~docv:"SECONDS"
             ~doc:"Minimum seconds between live heartbeats (default 0: \
                   emit one at every progress pulse).")
  in
  let slo =
    Arg.(value & opt_all string []
         & info [ "slo" ] ~docv:"METRIC:STAT:WARN[:ERROR]"
             ~doc:"SLO watchdog threshold, checked at every live \
                   heartbeat: log a warning (error) record when STAT of \
                   METRIC exceeds WARN (ERROR). STAT is one of value, \
                   sum, mean, count, p50, p90, p99. Repeatable.")
  in
  let log_level =
    Arg.(value & opt string "info"
         & info [ "log-level" ] ~docv:"LEVEL"
             ~doc:"Minimum structured-log level captured into the live \
                   stream: debug, info, warn or error (default info).")
  in
  Term.(const (fun domains stats trace metrics resource live live_interval
                   slo log_level ->
            { domains; stats; trace; metrics; resource; live; live_interval;
              slo; log_level })
        $ domains $ stats $ trace $ metrics $ resource $ live $ live_interval
        $ slo $ log_level)

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let with_engine opts f =
  if opts.domains < 1 then begin
    Printf.eprintf "--domains must be >= 1\n";
    exit 2
  end;
  Engine.Pool.set_default_domains opts.domains;
  Engine.Stats.reset ();
  (match Telemetry.Stream.level_of_name opts.log_level with
  | Some lvl -> Telemetry.Log.set_level lvl
  | None ->
    Printf.eprintf "--log-level: unknown level %S (expected debug, info, \
                    warn or error)\n" opts.log_level;
    exit 2);
  let slos =
    List.map
      (fun spec ->
        match Telemetry.Log.parse_slo spec with
        | Ok slo -> slo
        | Error msg ->
          Printf.eprintf "--slo %s: %s\n" spec msg;
          exit 2)
      opts.slo
  in
  if slos <> [] then Telemetry.Log.set_slos slos;
  if opts.trace <> None then Telemetry.Span.start ();
  if opts.resource then Telemetry.Resource.set_enabled true;
  (match opts.live with
  | None -> ()
  | Some path -> Telemetry.Stream.open_live ~interval:opts.live_interval path);
  let f = if opts.resource then fun () -> Telemetry.Resource.account f else f in
  Fun.protect
    ~finally:(fun () ->
      (match opts.live with
      | None -> ()
      | Some path ->
        Telemetry.Stream.close_live ();
        Printf.eprintf "live: wrote %s\n" path);
      (match opts.trace with
      | None -> ()
      | Some path ->
        Telemetry.Span.stop ();
        write_file path
          (Telemetry.Sink.chrome_trace_string (Telemetry.Span.events ()));
        Printf.eprintf "trace: wrote %s\n" path);
      (match opts.metrics with
      | None -> ()
      | Some path ->
        write_file path
          (Telemetry.Json.to_string_pretty (Telemetry.Metrics.to_json ()));
        Printf.eprintf "metrics: wrote %s\n" path);
      if opts.stats then
        prerr_string (Engine.Stats.to_string (Engine.Stats.snapshot ())))
    f

(* ------------------------------------------------------------------ *)
(* figures                                                             *)
(* ------------------------------------------------------------------ *)

let figures_cmd =
  let id_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"ID"
             ~doc:"Artifact id: fig3, fig3-snr, fig4a, fig4b, gap, crossover, \
                   hbc-witness, coding-gain, discrete, ergodic, or 'all' \
                   (default).")
  in
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of terminal rendering.")
  in
  let svg_arg =
    Arg.(value & flag & info [ "svg" ] ~doc:"Emit a standalone SVG document (figures only).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Write each artifact to its own file under DIR (svg for \
                   figures when --svg, txt/csv otherwise) instead of stdout.")
  in
  let run engine id csv svg out =
    with_engine engine @@ fun () ->
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let write name ext content =
      match out with
      | None ->
        print_string content;
        print_newline ()
      | Some dir ->
        let path = Filename.concat dir (name ^ "." ^ ext) in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content);
        Printf.printf "wrote %s\n" path
    in
    let figure (f : Bidir.Figures.figure) =
      if svg then write f.Bidir.Figures.id "svg" (Report.figure_svg f)
      else if csv then write f.Bidir.Figures.id "csv" (Report.figure_csv f)
      else write f.Bidir.Figures.id "txt" (Report.render_figure f)
    in
    let table (t : Bidir.Figures.table) =
      if csv then write t.Bidir.Figures.table_id "csv" (Report.table_csv t)
      else write t.Bidir.Figures.table_id "txt" (Report.render_table t)
    in
    let emit_string name s = write name "txt" s in
    let rec one = function
      | "fig3" -> figure (Bidir.Figures.fig3 ())
      | "fig3-snr" -> figure (Bidir.Figures.fig3_snr ())
      | "fig4a" -> figure (Bidir.Figures.fig4 ~power_db:0. ())
      | "fig4b" -> figure (Bidir.Figures.fig4 ~power_db:10. ())
      | "gap" -> table (Bidir.Figures.gap_table ())
      | "crossover" -> table (Bidir.Figures.crossover_table ())
      | "hbc-witness" -> table (Bidir.Figures.hbc_witness_table ())
      | "discrete" -> table (Bidir.Figures.discrete_table ())
      | "map" -> emit_string "map" (Report.protocol_map ())
      | "fd-penalty" -> table (Bidir.Fullduplex.penalty_table ())
      | "delay" ->
        table
          (Netsim.Traffic.comparison_table ~power_db:10.
             ~gains:Channel.Gains.paper_fig4 ())
      | "coding-gain" -> table (Bidir.Figures.coding_gain_table ())
      | "power-boost" -> table (Bidir.Power_allocation.boost_table ())
      | "ergodic" -> table (Bidir.Ergodic.ergodic_table ())
      | "outage" -> figure (Bidir.Ergodic.outage_figure ())
      | "all" ->
        (* same artifacts in the same order as before, but each one runs
           under its own phase timer so `--stats` (and `--metrics`)
           report per-artifact wall time; with --live each completed
           artifact also emits a progress event and a heartbeat pulse *)
        let total = 11 and completed = ref 0 in
        let t0 = Unix.gettimeofday () in
        let step id f =
          Engine.Stats.timed ("artifact:" ^ id) f;
          incr completed;
          if Telemetry.Stream.enabled () then begin
            let elapsed = Unix.gettimeofday () -. t0 in
            let rate =
              if elapsed > 0. then float_of_int !completed /. elapsed else 0.
            in
            let eta_seconds =
              if rate > 0. then Some (float_of_int (total - !completed) /. rate)
              else None
            in
            Telemetry.Stream.note_progress ~name:"figures"
              ~completed:!completed ~total ~rate ?eta_seconds ()
          end;
          Telemetry.Stream.pulse_live ()
        in
        List.iter
          (fun id -> step id (fun () -> one id))
          [ "fig3"; "fig3-snr"; "fig4a"; "fig4b"; "gap"; "crossover";
            "hbc-witness"; "coding-gain"; "discrete" ];
        step "ergodic" (fun () ->
            table (Bidir.Ergodic.ergodic_table ~blocks:400 ()));
        step "map" (fun () -> emit_string "map" (Report.protocol_map ()))
      | other ->
        Printf.eprintf "unknown artifact id %S\n" other;
        exit 2
    in
    one (Option.value ~default:"all" id)
  in
  let doc = "Regenerate the paper's figures and tables." in
  Cmd.v (Cmd.info "figures" ~doc)
    Term.(const run $ engine_args () $ id_arg $ csv_arg $ svg_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* sumrate                                                             *)
(* ------------------------------------------------------------------ *)

let sumrate_cmd =
  let run engine power_db gains kind =
    with_engine engine @@ fun () ->
    let s = Bidir.Gaussian.scenario ~power_db ~gains in
    let rows =
      List.map
        (fun r ->
          let b = Bidir.Gaussian.bounds r.Bidir.Optimize.protocol kind s in
          let binding =
            Bidir.Rate_region.binding_terms ~eps:1e-6 b
              { Bidir.Rate_region.ra = r.Bidir.Optimize.ra;
                rb = r.Bidir.Optimize.rb;
                deltas = r.Bidir.Optimize.deltas;
              }
          in
          [ Bidir.Protocol.name r.Bidir.Optimize.protocol;
            Printf.sprintf "%.4f" r.Bidir.Optimize.sum_rate;
            Printf.sprintf "%.4f" r.Bidir.Optimize.ra;
            Printf.sprintf "%.4f" r.Bidir.Optimize.rb;
            String.concat " "
              (Array.to_list
                 (Array.map (Printf.sprintf "%.3f") r.Bidir.Optimize.deltas));
            String.concat "; "
              (List.map (fun (t : Bidir.Bound.term) -> t.Bidir.Bound.label) binding);
          ])
        (Bidir.Optimize.all_sum_rates kind s)
    in
    Printf.printf "Optimal sum rates, %s bound, P = %g dB, %s\n\n"
      (Bidir.Bound.kind_name kind) power_db
      (Format.asprintf "%a" Channel.Gains.pp gains);
    print_string
      (Chart.Table.render
         ~headers:
           [ "protocol"; "sum rate"; "Ra"; "Rb"; "durations";
             "binding constraints" ]
         ~rows)
  in
  let doc = "Optimal sum rates of all protocols on one channel." in
  Cmd.v (Cmd.info "sumrate" ~doc)
    Term.(const run $ engine_args () $ power_arg $ gains_args $ kind_arg)

(* ------------------------------------------------------------------ *)
(* region                                                              *)
(* ------------------------------------------------------------------ *)

let region_cmd =
  let run engine power_db gains protocol kind =
    with_engine engine @@ fun () ->
    let s = Bidir.Gaussian.scenario ~power_db ~gains in
    let b = Bidir.Gaussian.bounds protocol kind s in
    let pts = Bidir.Rate_region.boundary b in
    Printf.printf "%s %s region boundary, P = %g dB (%d vertices):\n"
      (Bidir.Protocol.name protocol)
      (Bidir.Bound.kind_name kind) power_db (List.length pts);
    List.iter
      (fun (p : Numerics.Vec2.t) ->
        Printf.printf "  Ra=%.4f Rb=%.4f\n" p.Numerics.Vec2.x p.Numerics.Vec2.y)
      pts;
    Printf.printf "area: %.4f\n\n" (Bidir.Rate_region.area b);
    let series =
      [ { Chart.Line_chart.label =
            Bidir.Protocol.name protocol ^ " " ^ Bidir.Bound.kind_name kind;
          points =
            List.map
              (fun (p : Numerics.Vec2.t) ->
                (p.Numerics.Vec2.x, p.Numerics.Vec2.y))
              pts;
        }
      ]
    in
    let config =
      { Chart.Line_chart.default_config with
        Chart.Line_chart.xlabel = "Ra (bits/use)";
        ylabel = "Rb (bits/use)";
      }
    in
    print_string (Chart.Line_chart.render_xy ~config series)
  in
  let doc = "Trace one protocol's rate-region boundary." in
  Cmd.v (Cmd.info "region" ~doc)
    Term.(const run $ engine_args () $ power_arg $ gains_args $ protocol_arg
          $ kind_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let blocks_arg =
    Arg.(value & opt int 200 & info [ "blocks" ] ~docv:"N" ~doc:"Number of protocol blocks.")
  in
  let fading_arg =
    Arg.(value & flag & info [ "fading" ] ~doc:"Rayleigh block fading (mean = given gains).")
  in
  let fixed_arg =
    Arg.(value & flag
         & info [ "fixed" ]
             ~doc:"Fix the schedule to the mean-gain optimum instead of adapting per block.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let detailed_arg =
    Arg.(value & flag
         & info [ "detailed" ]
             ~doc:"Use the fully event-driven simulator (explicit radio \
                   medium) instead of the block-level one.")
  in
  let run engine power_db gains protocol blocks fading fixed seed detailed =
    with_engine engine @@ fun () ->
    let base =
      Netsim.Runner.default_config ~protocol ~power_db ~gains ~blocks ~seed ()
    in
    let cfg =
      { base with
        Netsim.Runner.fading =
          (if fading then Channel.Fading.create ~rng_seed:seed ~mean:gains ()
           else Channel.Fading.static gains);
        mode =
          (if fixed then begin
             let s = Bidir.Gaussian.scenario ~power_db ~gains in
             let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
             Netsim.Runner.Fixed
               { deltas = opt.Bidir.Optimize.deltas;
                 ra = opt.Bidir.Optimize.ra;
                 rb = opt.Bidir.Optimize.rb;
               }
           end
           else Netsim.Runner.Adaptive { backoff = 0. });
      }
    in
    let r = if detailed then Netsim.Detailed.run cfg else Netsim.Runner.run cfg in
    let m = r.Netsim.Runner.metrics in
    Printf.printf "%s, %s channel, %s schedule, %s simulator, %d blocks:\n"
      (Bidir.Protocol.name protocol)
      (if fading then "fading" else "static")
      (if fixed then "fixed" else "adaptive")
      (if detailed then "event-driven" else "block-level")
      blocks;
    Printf.printf "  throughput          %.4f bits/use\n" (Netsim.Metrics.throughput m);
    Printf.printf "  analytic optimum    %.4f bits/use (mean over blocks)\n"
      r.Netsim.Runner.analytic_mean_sum_rate;
    Printf.printf "  outage rate         %.2f%%\n" (100. *. Netsim.Metrics.outage_rate m);
    Printf.printf "  delivered bits      %d\n" (Netsim.Metrics.delivered_bits m);
    Printf.printf "  undetected errors   %d\n" (Netsim.Metrics.bit_errors m);
    (match Netsim.Metrics.phase_outages m with
    | [] -> ()
    | outages ->
      Printf.printf "  outages by phase    %s\n"
        (String.concat ", "
           (List.map (fun (ph, n) -> Printf.sprintf "ph%d:%d" ph n) outages)))
  in
  let doc = "Run the packet-level simulator." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ engine_args () $ power_arg $ gains_args $ protocol_arg
          $ blocks_arg $ fading_arg $ fixed_arg $ seed_arg $ detailed_arg)

(* ------------------------------------------------------------------ *)
(* select                                                              *)
(* ------------------------------------------------------------------ *)

let select_cmd =
  let positions_arg =
    Arg.(value & opt (list float) [ 0.25; 0.5; 0.75 ]
         & info [ "positions" ] ~docv:"D1,D2,..."
             ~doc:"Candidate relay positions on the a-b segment.")
  in
  let exponent_arg =
    Arg.(value & opt float 3. & info [ "alpha" ] ~docv:"A" ~doc:"Path-loss exponent.")
  in
  let run engine power_db positions exponent =
    with_engine engine @@ fun () ->
    let pl = Channel.Pathloss.make ~exponent () in
    let cands = Bidir.Relay_selection.candidates_on_line pl ~positions in
    let power = Numerics.Float_utils.db_to_lin power_db in
    let rows =
      List.map
        (fun cand ->
          let c = Bidir.Relay_selection.best ~power [ cand ] in
          [ cand.Bidir.Relay_selection.relay_id;
            Bidir.Protocol.name c.Bidir.Relay_selection.protocol;
            Printf.sprintf "%.4f" c.Bidir.Relay_selection.sum_rate;
          ])
        cands
    in
    print_string
      (Chart.Table.render
         ~headers:[ "candidate"; "best protocol"; "sum rate" ]
         ~rows);
    let best = Bidir.Relay_selection.best ~power cands in
    Printf.printf "\nselected: %s with %s (%.4f bits/use)\n"
      best.Bidir.Relay_selection.relay.Bidir.Relay_selection.relay_id
      (Bidir.Protocol.name best.Bidir.Relay_selection.protocol)
      best.Bidir.Relay_selection.sum_rate;
    let sel, fixed = Bidir.Relay_selection.selection_gain ~power cands in
    Printf.printf
      "under fading: opportunistic selection %.4f vs fixed first candidate \
       %.4f (+%.1f%%)\n"
      sel fixed
      (100. *. ((sel /. fixed) -. 1.))
  in
  let doc = "Choose the best relay among candidates on the a-b line." in
  Cmd.v (Cmd.info "select" ~doc)
    Term.(const run $ engine_args () $ power_arg $ positions_arg
          $ exponent_arg)

(* ------------------------------------------------------------------ *)
(* arq                                                                 *)
(* ------------------------------------------------------------------ *)

let arq_cmd =
  let backoff_arg =
    Arg.(value & opt float 0.3
         & info [ "backoff" ] ~docv:"F"
             ~doc:"Rate backoff fraction relative to the mean-gain optimum.")
  in
  let messages_arg =
    Arg.(value & opt int 300 & info [ "messages" ] ~docv:"N" ~doc:"Message pairs.")
  in
  let retries_arg =
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"K" ~doc:"Retry budget per pair.")
  in
  let run engine power_db gains protocol backoff messages max_retries =
    with_engine engine @@ fun () ->
    let s = Bidir.Gaussian.scenario ~power_db ~gains in
    let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
    let r =
      Netsim.Arq.run
        { Netsim.Arq.protocol;
          power = Numerics.Float_utils.db_to_lin power_db;
          fading = Channel.Fading.create ~rng_seed:17 ~mean:gains ();
          deltas = opt.Bidir.Optimize.deltas;
          ra = opt.Bidir.Optimize.ra *. (1. -. backoff);
          rb = opt.Bidir.Optimize.rb *. (1. -. backoff);
          block_symbols = 2_000;
          messages;
          max_retries;
          seed = 23;
        }
    in
    Printf.printf "%s + ARQ under Rayleigh fading (backoff %.0f%%):\n"
      (Bidir.Protocol.name protocol) (100. *. backoff);
    Printf.printf "  delivered pairs   %d / %d\n" r.Netsim.Arq.delivered_pairs messages;
    Printf.printf "  dropped pairs     %d\n" r.Netsim.Arq.dropped_pairs;
    Printf.printf "  goodput           %.4f bits/use\n" r.Netsim.Arq.goodput;
    Printf.printf "  attempts/pair     %.2f (max %d)\n" r.Netsim.Arq.mean_attempts
      r.Netsim.Arq.max_attempts_seen;
    Printf.printf "  blocks consumed   %d\n" r.Netsim.Arq.total_blocks
  in
  let doc = "Fixed-rate schedule with stop-and-wait ARQ under fading." in
  Cmd.v (Cmd.info "arq" ~doc)
    Term.(const run $ engine_args () $ power_arg $ gains_args $ protocol_arg
          $ backoff_arg $ messages_arg $ retries_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd =
  let lo_arg = Arg.(value & opt float (-10.) & info [ "from" ] ~docv:"DB" ~doc:"Sweep start (dB).") in
  let hi_arg = Arg.(value & opt float 25. & info [ "to" ] ~docv:"DB" ~doc:"Sweep end (dB).") in
  let steps_arg = Arg.(value & opt int 15 & info [ "steps" ] ~docv:"N" ~doc:"Sweep points.") in
  let run engine gains lo hi steps =
    with_engine engine @@ fun () ->
    let rows =
      Array.to_list
        (Array.map
           (fun power_db ->
             let s = Bidir.Gaussian.scenario ~power_db ~gains in
             let rates = Bidir.Optimize.all_sum_rates Bidir.Bound.Inner s in
             let best = Bidir.Optimize.best_protocol Bidir.Bound.Inner s in
             Printf.sprintf "%7.2f" power_db
             :: List.map
                  (fun r -> Printf.sprintf "%.4f" r.Bidir.Optimize.sum_rate)
                  rates
             @ [ Bidir.Protocol.name best.Bidir.Optimize.protocol ])
           (Numerics.Float_utils.linspace lo hi steps))
    in
    print_string
      (Chart.Table.render
         ~headers:[ "P (dB)"; "DT"; "NAIVE"; "MABC"; "TDBC"; "HBC"; "best" ]
         ~rows);
    print_newline ();
    let crossings =
      Bidir.Optimize.crossover_powers_db ~lo_db:lo ~hi_db:hi
        (Bidir.Protocol.Mabc, Bidir.Protocol.Tdbc)
        ~gains Bidir.Bound.Inner
    in
    match crossings with
    | [] -> print_endline "no MABC/TDBC crossover in the sweep range"
    | xs ->
      Printf.printf "MABC/TDBC crossover at: %s\n"
        (String.concat ", " (List.map (Printf.sprintf "%.2f dB") xs))
  in
  let doc = "Sweep transmit power and report per-protocol sum rates." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ engine_args () $ gains_args $ lo_arg $ hi_arg
          $ steps_arg)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let workload_arg =
    Arg.(value & opt string "figures"
         & info [ "workload" ] ~docv:"W"
             ~doc:"Workload to run under the profiler: $(b,figures) (a \
                   reduced figure pass plus a short event-driven \
                   simulation), $(b,sweep) (a power sweep of every \
                   protocol), $(b,netsim) (the event-driven simulator \
                   alone), $(b,campaign) (a sharded Monte-Carlo ergodic \
                   campaign fanned across the domain pool), or \
                   $(b,network) (a multi-pair rate table plus LP and \
                   greedy relay assignment).")
  in
  let flame_arg =
    Arg.(value & opt (some string) None
         & info [ "flame" ] ~docv:"FILE"
             ~doc:"Write a collapsed-stack flamegraph (span-path lines \
                   weighted by self-time microseconds) to $(docv); \
                   enables span collection even without $(b,--trace). \
                   Render with flamegraph.pl or load into speedscope.")
  in
  let focus_arg =
    Arg.(value & opt (some string) None
         & info [ "focus" ] ~docv:"NAME"
             ~doc:"Restrict the flamegraph and self-time report to \
                   span paths containing $(docv), re-rooted at its \
                   first occurrence.")
  in
  let run engine workload flame focus =
    with_engine engine @@ fun () ->
    (* resource attribution is the point of profiling: always on here *)
    Telemetry.Resource.set_enabled true;
    if flame <> None && not (Telemetry.Span.enabled ()) then
      Telemetry.Span.start ();
    let netsim blocks =
      ignore
        (Netsim.Detailed.run
           (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc
              ~power_db:10. ~gains:Channel.Gains.paper_fig4 ~blocks
              ~block_symbols:1_000 ()))
    in
    Telemetry.Resource.account (fun () ->
        match workload with
        | "figures" ->
          (* touches every instrumented layer: pool fan-out, LP solves,
             memo caches, figure spans, then the discrete-event loop *)
          Engine.Stats.timed "profile:figures" (fun () ->
              ignore (Bidir.Figures.fig3 ~samples:9 ());
              ignore (Bidir.Figures.fig4 ~power_db:0. ());
              ignore (Bidir.Figures.gap_table ()));
          Engine.Stats.timed "profile:netsim" (fun () -> netsim 20)
        | "sweep" ->
          Engine.Stats.timed "profile:sweep" (fun () ->
              Array.iter
                (fun power_db ->
                  let s =
                    Bidir.Gaussian.scenario ~power_db
                      ~gains:Channel.Gains.paper_fig4
                  in
                  ignore (Bidir.Optimize.all_sum_rates Bidir.Bound.Inner s))
                (Numerics.Float_utils.linspace (-10.) 25. 36))
        | "netsim" ->
          Engine.Stats.timed "profile:netsim" (fun () -> netsim 200)
        | "campaign" ->
          (* exercises the pool utilization accounting: batches of
             replications fan across [--domains] domains, so
             engine.pool.busy/idle_seconds and
             campaign.pool_idle_seconds populate *)
          Engine.Stats.timed "profile:campaign" (fun () ->
              ignore
                (Campaign.Runner.run
                   (Campaign.Runner.default_config ~seed:11
                      ~domains:engine.domains ~batch:12 ~replications:48 ())
                   (Campaign.Workloads.ergodic ~blocks_per_rep:60 ())
                  : Campaign.Runner.result))
        | "network" ->
          Engine.Stats.timed "profile:network" (fun () ->
              let scenario =
                Network.Scenario.random ~pairs:48 ~relays:3 ~seed:19 ()
              in
              let table = Network.Assign.rate_table scenario in
              ignore
                (Network.Assign.solve_table Network.Assign.Lp table
                  : Network.Assign.solution);
              ignore
                (Network.Assign.solve_table Network.Assign.Greedy table
                  : Network.Assign.solution))
        | other ->
          Printf.eprintf
            "unknown workload %S (figures|sweep|netsim|campaign|network)\n"
            other;
          exit 2);
    if Telemetry.Span.enabled () then begin
      let t = Telemetry.Analyze.analyze (Telemetry.Span.events ()) in
      (match flame with
      | Some path ->
        write_file path (Telemetry.Analyze.collapsed ?focus t);
        Printf.eprintf "flame: wrote %s\n" path
      | None -> ());
      print_string (Telemetry.Analyze.report ?focus ~top:10 t)
    end;
    print_string (Telemetry.Metrics.to_text ())
  in
  let doc =
    "Run an instrumented workload and report telemetry (counters, \
     histogram percentiles, GC/allocation attribution, a self-time \
     table; optionally a Chrome trace and a collapsed-stack flamegraph)."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ engine_args ~default_domains:2 () $ workload_arg
          $ flame_arg $ focus_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let workload_arg =
    Arg.(value & opt string "ergodic"
         & info [ "workload" ] ~docv:"W"
             ~doc:(Printf.sprintf "Replication workload: %s."
                     (String.concat ", " Campaign.Workloads.names)))
  in
  let replications_arg =
    Arg.(value & opt int 200
         & info [ "n"; "replications" ] ~docv:"N"
             ~doc:"Target number of replications.")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Root of the replication substream tree; together with \
                   the workload it fully determines the output.")
  in
  let batch_arg =
    Arg.(value & opt int 32
         & info [ "batch" ] ~docv:"K"
             ~doc:"Replications per scheduling round (checkpoint and \
                   stopping-rule granularity). Independent of \
                   $(b,--domains), so checkpoints and early stops do not \
                   depend on the parallelism either.")
  in
  let ci_target_arg =
    Arg.(value & opt (some float) None
         & info [ "ci-target" ] ~docv:"W"
             ~doc:"Stop early once every value metric's 95% confidence \
                   half-width is at most $(docv) (checked at batch \
                   boundaries).")
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write a resumable JSON checkpoint to $(docv) after \
                   every batch.")
  in
  let resume_arg =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Load $(b,--checkpoint) and continue from its completed \
                   count; the final result is byte-identical to an \
                   uninterrupted run.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the result JSON to $(docv) instead of stdout.")
  in
  let run engine workload replications seed batch ci_target checkpoint resume
      out =
    with_engine engine @@ fun () ->
    match Campaign.Workloads.by_name workload with
    | None ->
      Printf.eprintf "unknown workload %S (%s)\n" workload
        (String.concat "|" Campaign.Workloads.names);
      exit 2
    | Some make ->
      let cfg =
        { Campaign.Runner.seed;
          replications;
          domains = engine.domains;
          batch;
          checkpoint;
          resume;
          ci_target;
          on_progress = None;
        }
      in
      let result =
        try Campaign.Runner.run cfg (make ())
        with Invalid_argument msg ->
          Printf.eprintf "campaign: %s\n" msg;
          exit 2
      in
      let rendered =
        Telemetry.Json.to_string_pretty
          (Campaign.Runner.result_to_json result)
        ^ "\n"
      in
      (match out with
      | None -> print_string rendered
      | Some path ->
        write_file path rendered;
        Printf.eprintf "campaign: wrote %s\n" path)
  in
  let doc =
    "Run a sharded Monte-Carlo replication campaign over a netsim \
     workload."
  in
  let man =
    [ `S Manpage.s_description;
      `P "Fans $(b,--replications) independent replications of the chosen \
          workload across $(b,--domains) worker domains. Replication \
          $(i,i) always draws from the $(i,i)-th substream of a fixed \
          RNG split tree rooted at $(b,--seed), and results merge in \
          replication order, so the output is byte-identical for every \
          domain count — parallelism changes wall time only.";
      `P "With $(b,--checkpoint) the campaign can be interrupted and \
          resumed ($(b,--resume)) without changing the result; with \
          $(b,--ci-target) it stops as soon as every metric's 95% \
          confidence interval is tight enough.";
    ]
  in
  Cmd.v (Cmd.info "campaign" ~doc ~man)
    Term.(const run $ engine_args () $ workload_arg $ replications_arg
          $ seed_arg $ batch_arg $ ci_target_arg $ checkpoint_arg
          $ resume_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* network                                                             *)
(* ------------------------------------------------------------------ *)

let network_cmd =
  let pairs_arg =
    Arg.(value & opt int 16
         & info [ "pairs" ] ~docv:"K"
             ~doc:"Number of terminal pairs in the random topology.")
  in
  let relays_arg =
    Arg.(value & opt int 3
         & info [ "relays" ] ~docv:"R"
             ~doc:"Number of shared candidate relays.")
  in
  let assign_arg =
    let parse s =
      match Network.Assign.strategy_of_string s with
      | Some st -> Ok st
      | None -> Error (`Msg (Printf.sprintf "unknown strategy %S (greedy|lp)" s))
    in
    let print fmt st =
      Format.fprintf fmt "%s" (Network.Assign.strategy_name st)
    in
    Arg.(value & opt (conv (parse, print)) Network.Assign.Lp
         & info [ "assign" ] ~docv:"STRATEGY"
             ~doc:"Airtime assignment: $(b,greedy) (independent per-pair \
                   selection, equal split per relay) or $(b,lp) (the \
                   coupled fractional-matching LP).")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Topology seed; together with --pairs/--relays it fully \
                   determines the scenario and hence the output.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the solution JSON to $(docv) (deterministic: \
                   byte-identical for any --domains).")
  in
  let run engine pairs relays strategy seed out =
    with_engine engine @@ fun () ->
    if pairs < 1 || relays < 1 then begin
      Printf.eprintf "--pairs and --relays must be >= 1\n";
      exit 2
    end;
    let scenario = Network.Scenario.random ~pairs ~relays ~seed () in
    (* three coarse live-progress stages: the rate table dominates the
       wall time (pairs * relays * protocols rate-region solves) *)
    let stage completed =
      Telemetry.Stream.note_progress ~name:"network" ~completed ~total:3 ();
      Telemetry.Stream.pulse_live ()
    in
    let table = Network.Assign.rate_table scenario in
    stage 1;
    let solution = Network.Assign.solve_table strategy table in
    stage 2;
    (* the greedy baseline reuses the evaluated table, so reporting the
       coordination gap costs no further rate-region LPs *)
    let greedy =
      match strategy with
      | Network.Assign.Greedy -> solution
      | Network.Assign.Lp ->
        Network.Assign.solve_table Network.Assign.Greedy table
    in
    stage 3;
    Printf.printf
      "network: %d pairs, %d relays, seed %d, %s assignment\n" pairs relays
      seed
      (Network.Assign.strategy_name strategy);
    if pairs <= 24 then begin
      let rows =
        List.map
          (fun (l : Network.Assign.link) ->
            [ l.Network.Assign.pair_id;
              l.Network.Assign.relay_id;
              Bidir.Protocol.name l.Network.Assign.protocol;
              Printf.sprintf "%.4f" l.Network.Assign.standalone;
              Printf.sprintf "%.3f" l.Network.Assign.share;
              Printf.sprintf "%.4f" l.Network.Assign.rate;
            ])
          solution.Network.Assign.links
      in
      print_string
        (Chart.Table.render
           ~headers:[ "pair"; "relay"; "protocol"; "standalone"; "share";
                      "rate" ]
           ~rows)
    end;
    let rates = List.map snd solution.Network.Assign.per_pair in
    let served = List.filter (fun r -> r > 1e-9) rates in
    Printf.printf "aggregate sum rate  %.4f bits/use\n"
      solution.Network.Assign.sum_rate;
    Printf.printf "pairs served        %d / %d\n" (List.length served) pairs;
    Printf.printf "mean pair rate      %.4f bits/use\n"
      (solution.Network.Assign.sum_rate /. float_of_int pairs);
    (match strategy with
    | Network.Assign.Greedy -> ()
    | Network.Assign.Lp ->
      Printf.printf
        "greedy baseline     %.4f bits/use (LP gains %+.2f%%); %d \
         assignment pivots\n"
        greedy.Network.Assign.sum_rate
        (100.
        *. ((solution.Network.Assign.sum_rate
             /. Float.max greedy.Network.Assign.sum_rate 1e-12)
           -. 1.))
        solution.Network.Assign.assignment_pivots);
    match out with
    | None -> ()
    | Some path ->
      let json =
        Telemetry.Json.Obj
          [ ("schema", Telemetry.Json.String "bidir-network/1");
            ("pairs", Telemetry.Json.Int pairs);
            ("relays", Telemetry.Json.Int relays);
            ("seed", Telemetry.Json.Int seed);
            ("greedy_sum_rate",
             Telemetry.Json.Float greedy.Network.Assign.sum_rate);
            ("solution", Network.Assign.to_json solution);
          ]
      in
      write_file path (Telemetry.Json.to_string_pretty json ^ "\n");
      Printf.eprintf "network: wrote %s\n" path
  in
  let doc =
    "Solve relay assignment and airtime scheduling on a random K-pair, \
     R-relay topology."
  in
  let man =
    [ `S Manpage.s_description;
      `P "Draws a deterministic random topology ($(b,--seed)), evaluates \
          the standalone optimal sum rate of every (pair, relay, protocol) \
          triple with the single-pair machinery (fanned across \
          $(b,--domains); byte-identical for any count), and allocates \
          relay airtime either greedily or by the coupled assignment LP. \
          See docs/NETWORK.md for the model.";
    ]
  in
  Cmd.v (Cmd.info "network" ~doc ~man)
    Term.(const run $ engine_args () $ pairs_arg $ relays_arg $ assign_arg
          $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

(* The gate's workload must be deterministic so counters diff exactly:
   one domain (no pool-chunk nondeterminism), cold caches, a fresh
   registry, fixed seeds. It touches every instrumented layer — LP
   solves and pivots, memo caches, figure evaluation, the event-driven
   simulator — in a few seconds. *)
let check_workload () =
  Engine.Pool.set_default_domains 1;
  Engine.Memo.clear_all ();
  Telemetry.Metrics.reset ();
  (* resource tracking on: linprog.alloc_bytes is deterministic for
     this single-domain workload, so the allocation budget gates
     one-sided exactly like the pivot budget (the noisy gc.* process
     totals are Ignored by the policy) *)
  Telemetry.Resource.set_enabled true;
  (* stream to a throwaway live file so the telemetry.stream.* counters
     are exercised and gated: the campaign leg below runs 4 batches, so
     exactly 4 progress events and 5 heartbeats (one per batch plus the
     closing flush) — and a zero drop budget — are part of the baseline *)
  let live_tmp = Filename.temp_file "bidir-check-live" ".jsonl" in
  Telemetry.Stream.open_live ~interval:0. live_tmp;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Stream.close_live ();
      try Sys.remove live_tmp with Sys_error _ -> ())
  @@ fun () ->
  Telemetry.Resource.account @@ fun () ->
  Engine.Stats.timed "check:figures" (fun () ->
      ignore (Bidir.Figures.fig3 ~samples:9 () : Bidir.Figures.figure);
      ignore (Bidir.Figures.fig4 ~power_db:0. () : Bidir.Figures.figure);
      ignore (Bidir.Figures.gap_table () : Bidir.Figures.table));
  Engine.Stats.timed "check:netsim" (fun () ->
      ignore
        (Netsim.Detailed.run
           (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc
              ~power_db:10. ~gains:Channel.Gains.paper_fig4 ~blocks:20
              ~block_symbols:1_000 ())
          : Netsim.Runner.result));
  (* a smoke campaign over the outage workload: gates the replication
     count and the merged delivery/outage counters exactly *)
  Engine.Stats.timed "check:campaign" (fun () ->
      ignore
        (Campaign.Runner.run
           (Campaign.Runner.default_config ~seed:7 ~batch:16 ~replications:64
              ())
           (Campaign.Workloads.runner ~blocks_per_rep:10 ~block_symbols:400 ())
          : Campaign.Runner.result));
  (* a fixed multi-pair network solve: gates the assignment-LP pivot
     budget (network.assignment_pivots, one-sided) and the per-pair
     sum-rate histogram exactly *)
  Engine.Stats.timed "check:network" (fun () ->
      let scenario = Network.Scenario.random ~pairs:12 ~relays:3 ~seed:5 () in
      let table = Network.Assign.rate_table scenario in
      ignore
        (Network.Assign.solve_table Network.Assign.Lp table
          : Network.Assign.solution);
      ignore
        (Network.Assign.solve_table Network.Assign.Greedy table
          : Network.Assign.solution));
  (* the serving layer's admission path: a fixed 16-query pool fed
     twice in batches of 8 — the first pass is all cache misses, the
     second all hits — so serve.requests (32), serve.cache_hits (16),
     serve.cache_misses (16) and the batch-size histogram gate
     exactly, while serve.request_seconds stays in the wall-time
     band *)
  Engine.Stats.timed "check:serve" (fun () ->
      let pool = Serve.Scenarios.check_pool () in
      let rec batches = function
        | [] -> []
        | qs ->
          let rec take n = function
            | x :: rest when n > 0 ->
              let h, t = take (n - 1) rest in
              (x :: h, t)
            | rest -> ([], rest)
          in
          let batch, rest = take 8 qs in
          batch :: batches rest
      in
      List.iter
        (fun batch ->
          ignore (Serve.Service.respond_batch batch : string list))
        (batches (pool @ pool)))

let check_cmd =
  let against_arg =
    Arg.(required & opt (some string) None
         & info [ "against" ] ~docv:"FILE"
             ~doc:"Baseline snapshot to diff against (written by a \
                   previous $(b,--update) run, or by $(b,bench)).")
  in
  let tolerance_arg =
    Arg.(value & opt float 50.
         & info [ "tolerance" ] ~docv:"PCT"
             ~doc:"Relative band (percent) allowed on the mean of \
                   wall-time histograms. Deterministic counters always \
                   compare exactly.")
  in
  let update_arg =
    Arg.(value & flag
         & info [ "update" ]
             ~doc:"Overwrite $(b,--against) FILE with this run's \
                   snapshot instead of diffing (accept the current \
                   behaviour as the new baseline).")
  in
  let report_arg =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Also write the regression report as JSON to $(docv).")
  in
  let label_arg =
    Arg.(value & opt string "check"
         & info [ "label" ] ~docv:"LABEL"
             ~doc:"Label recorded in the captured snapshot.")
  in
  let run against tolerance update report label =
    if tolerance < 0. then begin
      Printf.eprintf "--tolerance must be >= 0\n";
      exit 2
    end;
    check_workload ();
    let current = Telemetry.Snapshot.capture ~label () in
    if update then begin
      Telemetry.Snapshot.save against current;
      Printf.printf "check: wrote baseline %s (%d counters, %d histograms)\n"
        against
        (List.length current.Telemetry.Snapshot.counters)
        (List.length current.Telemetry.Snapshot.histograms)
    end
    else
      match Telemetry.Snapshot.load against with
      | Error m ->
        Printf.eprintf
          "check: cannot load baseline %s: %s\n\
           (run `bidir check --against %s --update` to create it)\n"
          against m against;
        exit 2
      | Ok base ->
        let policy =
          Telemetry.Snapshot.default_policy ~tolerance:(tolerance /. 100.) ()
        in
        let d = Telemetry.Snapshot.diff ~policy base current in
        print_string (Report.Regression.render_text d);
        (match report with
        | None -> ()
        | Some path ->
          write_file path
            (Telemetry.Json.to_string_pretty (Report.Regression.to_json d));
          Printf.eprintf "check: wrote %s\n" path);
        if not (Telemetry.Snapshot.ok d) then exit 1
  in
  let doc =
    "Replay the deterministic reproduction workload and diff its \
     telemetry snapshot against a baseline (the regression gate)."
  in
  let man =
    [ `S Manpage.s_description;
      `P "Runs a fixed instrumented workload (figure sweeps, LP solves, \
          memo caches, the event-driven simulator; one domain, cold \
          caches), captures the full metrics registry, and structurally \
          diffs it against the baseline snapshot in $(b,--against).";
      `P "Deterministic counters (LP solves, memo hits/misses, simulator \
          events) and value histograms must match exactly — drift there \
          is a correctness signal. Resource budgets (linprog.pivots, \
          linprog.refactor_eliminations, network.assignment_pivots, \
          linprog.alloc_bytes, and the campaign.pool_idle_seconds \
          histogram) gate one-sided: staying at or under the baseline \
          passes, so an improvement needs no baseline refresh, while a \
          regression fails the gate. Wall-time histograms \
          (lp.solve_seconds, phase.*, engine.pool.*_seconds) only need \
          an identical sample count and a mean within $(b,--tolerance) \
          percent; the gc.* process totals are ignored.";
      `P "The workload also streams to a throwaway live file, so the \
          telemetry.stream.* counters are part of the baseline: event \
          and heartbeat counts compare exactly, and \
          telemetry.stream.dropped_events gates one-sided with a zero \
          budget — the check workload must never drop a live event. The \
          heartbeat-timing histogram (telemetry.stream.flush_seconds) \
          is ignored.";
      `P "Exits 0 when the diff has no violations, 1 on regression, 2 on \
          usage or IO errors.";
    ]
  in
  Cmd.v (Cmd.info "check" ~doc ~man)
    Term.(const run $ against_arg $ tolerance_arg $ update_arg $ report_arg
          $ label_arg)

(* ------------------------------------------------------------------ *)
(* serve / loadgen                                                     *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR"
             ~doc:"Bind address (default 127.0.0.1).")
  in
  let port_arg =
    Arg.(value & opt int 8090
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port to listen on; 0 picks an ephemeral port \
                   (default 8090).")
  in
  let port_file_arg =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Write the bound port to $(docv) once listening — how \
                   scripts discover an ephemeral $(b,--port) 0.")
  in
  let batch_arg =
    Arg.(value & opt int 64
         & info [ "batch-max" ] ~docv:"N"
             ~doc:"Admit at most $(docv) queries per pool batch \
                   (default 64).")
  in
  let max_requests_arg =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after answering $(docv) query requests (for \
                   bounded smoke runs).")
  in
  let no_shutdown_arg =
    Arg.(value & flag
         & info [ "no-shutdown-endpoint" ]
             ~doc:"Do not serve POST /shutdown (run until killed or \
                   $(b,--max-requests)).")
  in
  let run engine host port port_file batch_max max_requests no_shutdown =
    with_engine engine @@ fun () ->
    if batch_max < 1 then begin
      Printf.eprintf "--batch-max must be >= 1\n";
      exit 2
    end;
    Engine.Pool.prewarm ();
    ignore
      (Serve.Server.run
         { Serve.Server.host; port; port_file; batch_max; max_requests;
           allow_shutdown = not no_shutdown; quiet = false }
        : int)
  in
  let doc = "Run the long-lived HTTP query-serving daemon." in
  let man =
    [ `S Manpage.s_description;
      `P "Serves rate-region, protocol-selection and sum-rate queries \
          as JSON over a dependency-free HTTP/1.1 loop. Queries are \
          admitted through a memo-backed response cache; the misses of \
          each round are deduplicated and evaluated in one \
          $(b,--domains)-wide pool batch on warm per-domain LP solver \
          slots, so the steady-state path allocates near zero.";
      `P "Endpoints: GET /v1/sumrate, /v1/select, /v1/region (URL \
          parameters power_db, g_ab, g_ar, g_br, bound, protocol, \
          weights), POST /v1/query (same fields as a JSON body with \
          \"kind\"), GET /healthz, GET /metrics, POST /shutdown. \
          Responses are pure functions of the query — no timestamps, \
          floats quantized at 1e-6 — so identical queries are \
          byte-identical at any domain count.";
      `P "Observability rides the engine flags: $(b,--metrics) dumps \
          the serve.* counters and latency histogram on exit, \
          $(b,--live) streams them for $(b,bidir top), $(b,--trace) \
          records the batch spans. See docs/SERVING.md.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run $ engine_args () $ host_arg $ port_arg $ port_file_arg
          $ batch_arg $ max_requests_arg $ no_shutdown_arg)

let loadgen_cmd =
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port_arg =
    Arg.(value & opt int 8090
         & info [ "port" ] ~docv:"PORT" ~doc:"Daemon port (default 8090).")
  in
  let port_file_arg =
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE"
             ~doc:"Read the port from $(docv) (written by $(b,bidir \
                   serve --port-file)); polls until the file appears.")
  in
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N"
             ~doc:"Concurrent client domains (default 4).")
  in
  let requests_arg =
    Arg.(value & opt int 200
         & info [ "n"; "requests" ] ~docv:"N"
             ~doc:"Total requests across all clients (default 200).")
  in
  let rate_arg =
    Arg.(value & opt float 0.
         & info [ "rate" ] ~docv:"QPS"
             ~doc:"Aggregate Poisson arrival rate in requests/second; \
                   0 (default) runs a closed loop as fast as the daemon \
                   answers.")
  in
  let mix_arg =
    Arg.(value & opt string "sumrate=3,select=2,region=1"
         & info [ "mix" ] ~docv:"SPEC"
             ~doc:"Query-kind mix, e.g. sumrate=3,select=2,region=1.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Traffic seed: equal seeds replay the identical \
                   request stream (default 1).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_serve.json"
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the bidir-bench-serve/1 report to $(docv) \
                   (default BENCH_serve.json).")
  in
  let dump_arg =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE"
             ~doc:"Dump every (query key, response body) pair as JSONL \
                   in client-major order — byte-stable for a given \
                   seed, so CI can diff runs against daemons at \
                   different $(b,--domains).")
  in
  let shutdown_arg =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"POST /shutdown to the daemon when done.")
  in
  let no_trajectory_arg =
    Arg.(value & flag
         & info [ "no-trajectory" ]
             ~doc:"Do not append a bidir-trajectory/1 line to \
                   BENCH_trajectory.jsonl.")
  in
  let connect_timeout_arg =
    Arg.(value & opt float 10.
         & info [ "connect-timeout" ] ~docv:"SECONDS"
             ~doc:"How long to retry the first connect while the \
                   daemon starts (default 10).")
  in
  let read_port_file path timeout =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      let port =
        match open_in path with
        | exception Sys_error _ -> None
        | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match input_line ic with
              | line -> int_of_string_opt (String.trim line)
              | exception End_of_file -> None)
      in
      match port with
      | Some p -> p
      | None ->
        if Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.05;
          go ()
        end
        else begin
          Printf.eprintf "loadgen: no port in %s after %.0fs\n" path timeout;
          exit 2
        end
    in
    go ()
  in
  let run host port port_file clients requests rate mix seed out dump
      shutdown no_trajectory connect_timeout =
    let mix =
      match Serve.Scenarios.mix_of_string mix with
      | Ok m -> m
      | Error e ->
        Printf.eprintf "--mix: %s\n" e;
        exit 2
    in
    let port =
      match port_file with
      | Some path -> read_port_file path connect_timeout
      | None -> port
    in
    let cfg =
      { Serve.Loadgen.host; port; clients; requests; rate; mix; seed;
        connect_timeout; dump; shutdown }
    in
    let r = Serve.Loadgen.run cfg in
    write_file out
      (Telemetry.Json.to_string_pretty (Serve.Loadgen.result_to_json cfg r)
       ^ "\n");
    if not no_trajectory then begin
      let line =
        Telemetry.Json.Obj
          [ ("schema", Telemetry.Json.String "bidir-trajectory/1");
            ("ts", Telemetry.Json.Float (Unix.gettimeofday ()));
            ("label", Telemetry.Json.String "loadgen");
            ("serve_qps", Telemetry.Json.Float r.Serve.Loadgen.qps);
            ("serve_p50", Telemetry.Json.Float r.Serve.Loadgen.p50);
            ("serve_p90", Telemetry.Json.Float r.Serve.Loadgen.p90);
            ("serve_p99", Telemetry.Json.Float r.Serve.Loadgen.p99);
            ("serve_ok", Telemetry.Json.Int r.Serve.Loadgen.ok);
            ("serve_failed", Telemetry.Json.Int r.Serve.Loadgen.failed);
            ( "server",
              Telemetry.Json.Obj
                (List.map
                   (fun (k, v) -> (k, Telemetry.Json.Int v))
                   r.Serve.Loadgen.server_counters) );
          ]
      in
      let oc =
        open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_trajectory.jsonl"
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Telemetry.Json.to_string line ^ "\n"))
    end;
    Printf.printf
      "loadgen: %d ok, %d failed — %.1f req/s, p50 %.2f ms, p99 %.2f ms\n"
      r.Serve.Loadgen.ok r.Serve.Loadgen.failed r.Serve.Loadgen.qps
      (1e3 *. r.Serve.Loadgen.p50)
      (1e3 *. r.Serve.Loadgen.p99);
    Printf.printf "loadgen: wrote %s\n" out;
    if r.Serve.Loadgen.failed > 0 then exit 1
  in
  let doc = "Replay deterministic synthetic traffic against bidir serve." in
  let man =
    [ `S Manpage.s_description;
      `P "Spawns $(b,--clients) keep-alive HTTP clients that replay a \
          seeded query stream drawn from $(b,--mix) (alternating GET \
          and POST framing), measures client-observed latency, fetches \
          the daemon's serve.* counters from /metrics, and writes \
          queries/sec plus p50/p90/p99 to $(b,--out) and the \
          BENCH_trajectory.jsonl line.";
      `P "Exits 1 when any request failed, so CI smoke runs assert \
          zero failures by exit code.";
    ]
  in
  Cmd.v (Cmd.info "loadgen" ~doc ~man)
    Term.(const run $ host_arg $ port_arg $ port_file_arg $ clients_arg
          $ requests_arg $ rate_arg $ mix_arg $ seed_arg $ out_arg $ dump_arg
          $ shutdown_arg $ no_trajectory_arg $ connect_timeout_arg)

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

let top_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Live telemetry file written by a run with \
                   $(b,--live) $(docv).")
  in
  let once_arg =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Render a single frame from the file's current \
                   contents and exit (deterministic: frames depend only \
                   on the file, never on the wall clock).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the frame as JSON instead of text (with \
                   $(b,--once): a single machine-readable state dump).")
  in
  let refresh_arg =
    Arg.(value & opt float 1.0
         & info [ "refresh" ] ~docv:"SECONDS"
             ~doc:"Polling interval in follow mode (default 1.0).")
  in
  let render st json =
    if json then
      Telemetry.Json.to_string_pretty (Telemetry.Live.to_json st) ^ "\n"
    else Telemetry.Live.render st
  in
  let read_once path json =
    match open_in_bin path with
    | exception Sys_error msg ->
      Printf.eprintf "top: %s\n" msg;
      exit 2
    | ic ->
      let st = Telemetry.Live.create () in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              Telemetry.Live.feed_line st (input_line ic)
            done
          with End_of_file -> ());
      if Telemetry.Live.records st = 0 then begin
        Printf.eprintf "top: %s contains no bidir-live records\n" path;
        exit 2
      end;
      print_string (render st json)
  in
  (* Follow mode: poll the file by byte offset, feeding whole appended
     lines into the reader state. The file is append-only, so a plain
     offset tail is exact; a partial trailing line is buffered until its
     newline arrives. *)
  let follow path json refresh =
    let st = Telemetry.Live.create () in
    let offset = ref 0 and partial = Buffer.create 256 in
    let missing_notice = ref false in
    let poll () =
      match open_in_bin path with
      | exception Sys_error _ ->
        if not !missing_notice then begin
          missing_notice := true;
          Printf.printf "top: waiting for %s …\n%!" path
        end
      | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let len = in_channel_length ic in
            if len > !offset then begin
              seek_in ic !offset;
              let chunk = really_input_string ic (len - !offset) in
              offset := len;
              String.iter
                (fun c ->
                  if c = '\n' then begin
                    Telemetry.Live.feed_line st (Buffer.contents partial);
                    Buffer.clear partial
                  end
                  else Buffer.add_char partial c)
                chunk
            end);
        print_string "\027[H\027[2J";
        print_string (render st json);
        flush stdout
    in
    poll ();
    while not (Telemetry.Live.finished st) do
      Unix.sleepf refresh;
      poll ()
    done
  in
  let run file once json refresh =
    if refresh <= 0. then begin
      Printf.eprintf "--refresh must be > 0\n";
      exit 2
    end;
    if once then read_once file json else follow file json refresh
  in
  let doc = "Tail a live telemetry file and render a refreshing dashboard." in
  let man =
    [ `S Manpage.s_description;
      `P "Reads the bidir-live/1 JSONL stream that a concurrent run \
          ($(b,bidir campaign --live), $(b,bidir figures all --live), \
          $(b,bidir network --live)) appends to, and renders progress, \
          throughput, confidence-interval width, ETA, latency digests, \
          pool utilization and recent warnings, refreshing every \
          $(b,--refresh) seconds until the writer's final record \
          arrives.";
      `P "$(b,--once) renders exactly one frame from the file's current \
          contents and exits — the frame is a pure function of the file \
          bytes, so it is usable (and diffable) in CI.";
    ]
  in
  Cmd.v (Cmd.info "top" ~doc ~man)
    Term.(const run $ file_arg $ once_arg $ json_arg $ refresh_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc =
    "performance bounds for bidirectional coded cooperation protocols \
     (Kim, Mitran, Tarokh)"
  in
  let info = Cmd.info "bidir" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ figures_cmd; sumrate_cmd; region_cmd; simulate_cmd; sweep_cmd;
      select_cmd; arq_cmd; profile_cmd; campaign_cmd; network_cmd; serve_cmd;
      loadgen_cmd; top_cmd; check_cmd ]

let () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  exit (Cmd.eval main_cmd)
