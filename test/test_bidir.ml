(* Tests for the core library: protocols, bounds, rate regions,
   optimisation, discrete evaluation, figure generators. *)

let check_float ?(eps = 1e-7) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let paper_gains = Channel.Gains.paper_fig4
let scen ~power_db = Bidir.Gaussian.scenario ~power_db ~gains:paper_gains

let sum_rate p kind s =
  (Bidir.Optimize.sum_rate p kind s).Bidir.Optimize.sum_rate

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_names () =
  Alcotest.(check (list string)) "names"
    [ "DT"; "NAIVE"; "MABC"; "TDBC"; "HBC" ]
    (List.map Bidir.Protocol.name Bidir.Protocol.all);
  List.iter
    (fun p ->
      Alcotest.(check bool) "round trip" true
        (Bidir.Protocol.of_string (Bidir.Protocol.name p) = Some p))
    Bidir.Protocol.all;
  Alcotest.(check bool) "unknown" true (Bidir.Protocol.of_string "xyz" = None)

let test_protocol_phases () =
  Alcotest.(check (list int)) "phase counts" [ 2; 4; 2; 3; 4 ]
    (List.map Bidir.Protocol.num_phases Bidir.Protocol.all);
  Alcotest.(check string) "MABC phase 1" "a,b -> r (MAC)"
    (Bidir.Protocol.phase_description Bidir.Protocol.Mabc 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Protocol.phase_description: phase out of range")
    (fun () -> ignore (Bidir.Protocol.phase_description Bidir.Protocol.Dt 3))

(* ------------------------------------------------------------------ *)
(* Bound                                                               *)
(* ------------------------------------------------------------------ *)

let test_bound_validation () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Bound.make: per-phase coefficient arity mismatch")
    (fun () ->
      ignore
        (Bidir.Bound.make ~protocol:Bidir.Protocol.Dt
           ~bound_kind:Bidir.Bound.Inner ~num_phases:2
           ~terms:[ Bidir.Bound.term ~ca:1. ~cb:0. [| 1. |] ]))

let test_bound_satisfied () =
  let b =
    Bidir.Bound.make ~protocol:Bidir.Protocol.Dt ~bound_kind:Bidir.Bound.Inner
      ~num_phases:2
      ~terms:
        [ Bidir.Bound.term ~ca:1. ~cb:0. [| 2.; 0. |];
          Bidir.Bound.term ~ca:0. ~cb:1. [| 0.; 3. |];
        ]
  in
  let deltas = [| 0.5; 0.5 |] in
  Alcotest.(check bool) "inside" true
    (Bidir.Bound.satisfied b ~deltas ~ra:1. ~rb:1.5);
  Alcotest.(check bool) "ra too big" false
    (Bidir.Bound.satisfied b ~deltas ~ra:1.1 ~rb:1.);
  Alcotest.check_raises "bad durations"
    (Invalid_argument "Bound.satisfied: durations must sum to 1") (fun () ->
      ignore (Bidir.Bound.satisfied b ~deltas:[| 0.4; 0.4 |] ~ra:0. ~rb:0.))

(* ------------------------------------------------------------------ *)
(* Gaussian link rates                                                 *)
(* ------------------------------------------------------------------ *)

let test_link_rates_values () =
  (* P = 0 dB, gains 0/5/7 dB: c_ab = log2 2 = 1 *)
  let r = Bidir.Gaussian.link_rates (scen ~power_db:0.) in
  check_float "c_ab" 1. r.Bidir.Gaussian.c_ab;
  check_float ~eps:1e-6 "c_ar"
    (Numerics.Float_utils.log2 (1. +. Numerics.Float_utils.db_to_lin 5.))
    r.Bidir.Gaussian.c_ar;
  Alcotest.(check bool) "mac > each" true
    (r.Bidir.Gaussian.c_mac > r.Bidir.Gaussian.c_br
     && r.Bidir.Gaussian.c_mac > r.Bidir.Gaussian.c_ar);
  Alcotest.(check bool) "joint > single" true
    (r.Bidir.Gaussian.c_a_rb > r.Bidir.Gaussian.c_ar)

let test_scenario_db_vs_lin () =
  let s1 = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let s2 = Bidir.Gaussian.scenario_lin ~power:10. ~gains:paper_gains in
  check_float "same power" s1.Bidir.Gaussian.power s2.Bidir.Gaussian.power

(* ------------------------------------------------------------------ *)
(* Rate regions: hand-checkable LP                                      *)
(* ------------------------------------------------------------------ *)

(* A hand-built MABC-shaped system: individual rates 2 d1 / 3 d2 and a
   MAC sum of 3 d1. Optimal sum rate is 2 at d1 = 2/3 (see the linprog
   test of the same LP). *)
let hand_mi =
  { Bidir.Templates.ab = 0.1;
    ba = 0.1;
    ar = 2.;
    br = 2.;
    ra = 3.;
    rb = 3.;
    mac_a = 2.;
    mac_b = 2.;
    mac_sum = 3.;
    a_rb = 2.05;
    b_ra = 2.05;
  }

let test_hand_mabc_sum_rate () =
  let b = Bidir.Templates.mabc Bidir.Bound.Inner hand_mi in
  let r = Bidir.Rate_region.max_sum_rate b in
  check_float "sum rate" 2. (Bidir.Rate_region.sum r);
  check_float ~eps:1e-6 "d1" (2. /. 3.) r.Bidir.Rate_region.deltas.(0);
  check_float ~eps:1e-6 "durations sum to 1" 1.
    (Numerics.Float_utils.sum r.Bidir.Rate_region.deltas)

let test_hand_dt_region () =
  let b = Bidir.Templates.dt hand_mi in
  (* Ra <= 0.1 d1, Rb <= 0.1 d2: sum rate = 0.1 regardless of split *)
  let r = Bidir.Rate_region.max_sum_rate b in
  check_float "dt sum" 0.1 (Bidir.Rate_region.sum r);
  let ra = Bidir.Rate_region.max_ra b in
  check_float "dt max ra" 0.1 ra.Bidir.Rate_region.ra;
  check_float ~eps:1e-5 "rb zero at corner" 0. ra.Bidir.Rate_region.rb

let test_achievable_probe () =
  let b = Bidir.Templates.mabc Bidir.Bound.Inner hand_mi in
  Alcotest.(check bool) "optimum achievable" true
    (Bidir.Rate_region.achievable b ~ra:1. ~rb:1.);
  Alcotest.(check bool) "outside" false
    (Bidir.Rate_region.achievable b ~ra:1.3 ~rb:1.3);
  Alcotest.(check bool) "origin" true (Bidir.Rate_region.achievable b ~ra:0. ~rb:0.);
  Alcotest.(check bool) "negative" false
    (Bidir.Rate_region.achievable b ~ra:(-0.1) ~rb:0.)

let test_boundary_on_region () =
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner
      (scen ~power_db:10.) in
  let pts = Bidir.Rate_region.boundary b in
  Alcotest.(check bool) "several vertices" true (List.length pts >= 2);
  List.iter
    (fun (p : Numerics.Vec2.t) ->
      Alcotest.(check bool) "boundary achievable" true
        (Bidir.Rate_region.achievable b ~ra:p.Numerics.Vec2.x
           ~rb:p.Numerics.Vec2.y))
    pts

let test_polygon_convex () =
  List.iter
    (fun p ->
      let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner (scen ~power_db:10.) in
      let poly = Bidir.Rate_region.polygon b in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " polygon convex")
        true
        (Numerics.Hull.is_convex_ccw poly))
    Bidir.Protocol.all

let test_optimum_satisfies_bound () =
  List.iter
    (fun p ->
      let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner (scen ~power_db:10.) in
      let r = Bidir.Rate_region.max_sum_rate b in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " optimum feasible")
        true
        (Bidir.Bound.satisfied b ~deltas:r.Bidir.Rate_region.deltas
           ~ra:r.Bidir.Rate_region.ra ~rb:r.Bidir.Rate_region.rb))
    Bidir.Protocol.all

(* ------------------------------------------------------------------ *)
(* Structural containments from the paper                              *)
(* ------------------------------------------------------------------ *)

let region p kind s = Bidir.Gaussian.bounds p kind s

let test_mabc_capacity_inner_equals_outer () =
  let s = scen ~power_db:10. in
  let inner = region Bidir.Protocol.Mabc Bidir.Bound.Inner s in
  let outer = region Bidir.Protocol.Mabc Bidir.Bound.Outer s in
  Alcotest.(check bool) "inner contains outer" true
    (Bidir.Rate_region.contains_region inner outer);
  Alcotest.(check bool) "outer contains inner" true
    (Bidir.Rate_region.contains_region outer inner)

let test_inner_subset_outer () =
  List.iter
    (fun power_db ->
      let s = scen ~power_db in
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Printf.sprintf "%s inner in outer at %g dB" (Bidir.Protocol.name p)
               power_db)
            true
            (Bidir.Rate_region.contains_region
               (region p Bidir.Bound.Outer s)
               (region p Bidir.Bound.Inner s)))
        Bidir.Protocol.all)
    [ 0.; 10. ]

let test_hbc_contains_mabc_and_tdbc () =
  (* MABC (d1 = d2 = 0) and TDBC (d3 = 0) are special cases of HBC *)
  List.iter
    (fun power_db ->
      let s = scen ~power_db in
      let hbc = region Bidir.Protocol.Hbc Bidir.Bound.Inner s in
      Alcotest.(check bool) "HBC contains MABC" true
        (Bidir.Rate_region.contains_region hbc
           (region Bidir.Protocol.Mabc Bidir.Bound.Inner s));
      Alcotest.(check bool) "HBC contains TDBC" true
        (Bidir.Rate_region.contains_region hbc
           (region Bidir.Protocol.Tdbc Bidir.Bound.Inner s)))
    [ -5.; 0.; 10.; 20. ]

let test_tdbc_contains_dt () =
  (* with G_ar, G_br >= G_ab, dropping the relay (d3 = 0) reduces TDBC to DT *)
  let s = scen ~power_db:10. in
  Alcotest.(check bool) "TDBC contains DT" true
    (Bidir.Rate_region.contains_region
       (region Bidir.Protocol.Tdbc Bidir.Bound.Inner s)
       (region Bidir.Protocol.Dt Bidir.Bound.Inner s))

let test_relay_free_outer_relaxes () =
  let s = scen ~power_db:10. in
  List.iter
    (fun p ->
      let full = region p Bidir.Bound.Outer s in
      let relaxed = Bidir.Gaussian.relay_free_outer p s in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " relaxed contains full")
        true
        (Bidir.Rate_region.contains_region relaxed full))
    Bidir.Protocol.relayed

let test_sum_rate_monotone_in_power () =
  List.iter
    (fun p ->
      let low = sum_rate p Bidir.Bound.Inner (scen ~power_db:0.) in
      let high = sum_rate p Bidir.Bound.Inner (scen ~power_db:10.) in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " monotone in P")
        true (high > low))
    Bidir.Protocol.all

(* ------------------------------------------------------------------ *)
(* The paper's headline numerical findings                              *)
(* ------------------------------------------------------------------ *)

let test_mabc_beats_tdbc_low_snr () =
  let s = scen ~power_db:0. in
  Alcotest.(check bool) "MABC > TDBC at 0 dB" true
    (sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s
     > sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s)

let test_tdbc_beats_mabc_high_snr () =
  let s = scen ~power_db:10. in
  Alcotest.(check bool) "TDBC > MABC at 10 dB" true
    (sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s
     > sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s)

let test_region_domination_low_and_high () =
  (* Fig. 4: the MABC region dominates at 0 dB (larger area, larger sum
     rate — TDBC still reaches further along the axes where the direct
     link plus side information carries one-directional traffic), and
     the ordering flips by 10 dB. *)
  let area p s = Bidir.Rate_region.area (region p Bidir.Bound.Inner s) in
  let s0 = scen ~power_db:(-5.) in
  Alcotest.(check bool) "-5 dB: MABC area > TDBC area" true
    (area Bidir.Protocol.Mabc s0 > area Bidir.Protocol.Tdbc s0);
  let s10 = scen ~power_db:10. in
  Alcotest.(check bool) "10 dB: TDBC area > MABC area" true
    (area Bidir.Protocol.Tdbc s10 > area Bidir.Protocol.Mabc s10);
  Alcotest.(check bool) "10 dB: TDBC not inside MABC" false
    (Bidir.Rate_region.contains_region
       (region Bidir.Protocol.Mabc Bidir.Bound.Inner s10)
       (region Bidir.Protocol.Tdbc Bidir.Bound.Inner s10))

let test_hbc_strictly_better_somewhere () =
  (* Fig. 3's headline: HBC does not reduce to MABC or TDBC in general *)
  let s = scen ~power_db:0. in
  let hbc = sum_rate Bidir.Protocol.Hbc Bidir.Bound.Inner s in
  let mabc = sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s in
  let tdbc = sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s in
  Alcotest.(check bool) "HBC strictly better" true
    (hbc > Float.max mabc tdbc +. 1e-6)

let test_hbc_outside_both_outer_bounds () =
  (* Section IV: some achievable HBC pairs are outside the outer bounds
     of both other protocols *)
  List.iter
    (fun power_db ->
      match Bidir.Optimize.hbc_strict_advantage (scen ~power_db) with
      | Some (ra, rb, margin) ->
        Alcotest.(check bool) "positive rates" true (ra > 0. && rb > 0.);
        Alcotest.(check bool) "positive margin" true (margin > 0.)
      | None ->
        Alcotest.failf "expected an HBC witness at %g dB" power_db)
    [ 0.; 10. ]

let test_crossover_exists () =
  let xs =
    Bidir.Optimize.crossover_powers_db
      (Bidir.Protocol.Mabc, Bidir.Protocol.Tdbc)
      ~gains:paper_gains Bidir.Bound.Inner
  in
  Alcotest.(check bool) "at least one crossover" true (List.length xs >= 1);
  List.iter
    (fun x ->
      Alcotest.(check bool) "in range" true (x > -10. && x < 25.);
      (* verify it is a genuine crossing *)
      let diff power_db =
        let s = scen ~power_db in
        sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s
        -. sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s
      in
      Alcotest.(check bool) "sign change" true
        (diff (x -. 0.5) *. diff (x +. 0.5) < 0.))
    xs

let test_best_protocol () =
  let low = Bidir.Optimize.best_protocol Bidir.Bound.Inner (scen ~power_db:(-5.)) in
  Alcotest.(check bool) "low SNR winner is MABC or HBC" true
    (low.Bidir.Optimize.protocol = Bidir.Protocol.Mabc
     || low.Bidir.Optimize.protocol = Bidir.Protocol.Hbc);
  let high = Bidir.Optimize.best_protocol Bidir.Bound.Inner (scen ~power_db:15.) in
  Alcotest.(check bool) "high SNR winner is TDBC or HBC" true
    (high.Bidir.Optimize.protocol = Bidir.Protocol.Tdbc
     || high.Bidir.Optimize.protocol = Bidir.Protocol.Hbc)

let test_symmetry_swap () =
  (* swapping the terminals mirrors the region across the diagonal *)
  let s = scen ~power_db:10. in
  let swapped =
    Bidir.Gaussian.scenario ~power_db:10.
      ~gains:(Channel.Gains.swap_terminals paper_gains)
  in
  List.iter
    (fun p ->
      let r = Bidir.Rate_region.max_ra (region p Bidir.Bound.Inner s) in
      let r' =
        Bidir.Rate_region.max_rb
          (Bidir.Gaussian.bounds p Bidir.Bound.Inner swapped)
      in
      check_float ~eps:1e-6
        (Bidir.Protocol.name p ^ " swap symmetry")
        r.Bidir.Rate_region.ra r'.Bidir.Rate_region.rb)
    Bidir.Protocol.all

(* ------------------------------------------------------------------ *)
(* Discrete evaluation                                                 *)
(* ------------------------------------------------------------------ *)

let test_discrete_noiseless () =
  let net = Bidir.Discrete.bsc_network ~p_ab:0. ~p_ar:0. ~p_br:0. ~p_mac:0. in
  let ins = Bidir.Discrete.uniform_inputs net in
  (* TDBC with all unit-capacity links: sum rate 1 (d1 = d2 = 1/2) *)
  let tdbc = Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net ins in
  check_float "tdbc noiseless sum" 1.
    (Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate tdbc));
  (* MABC through the XOR MAC: relay gets 1 bit/use of the pair; sum
     constraint R <= d1, individual broadcast R <= d2 each: optimum 2/3 *)
  let mabc = Bidir.Discrete.bounds Bidir.Protocol.Mabc Bidir.Bound.Inner net ins in
  check_float ~eps:1e-6 "mabc noiseless sum" (2. /. 3.)
    (Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate mabc))

let test_discrete_noise_hurts () =
  let ins net = Bidir.Discrete.uniform_inputs net in
  let sum p_noise =
    let net =
      Bidir.Discrete.bsc_network ~p_ab:p_noise ~p_ar:p_noise ~p_br:p_noise
        ~p_mac:p_noise
    in
    Bidir.Rate_region.sum
      (Bidir.Rate_region.max_sum_rate
         (Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net
            (ins net)))
  in
  Alcotest.(check bool) "monotone in noise" true
    (sum 0.01 > sum 0.05 && sum 0.05 > sum 0.2)

let test_discrete_mi_values_sane () =
  let net = Bidir.Discrete.bsc_network ~p_ab:0.2 ~p_ar:0.05 ~p_br:0.05 ~p_mac:0.1 in
  let m = Bidir.Discrete.mi_values net (Bidir.Discrete.uniform_inputs net) in
  check_float ~eps:1e-9 "ab = 1 - H(0.2)"
    (1. -. Infotheory.Info.binary_entropy 0.2) m.Bidir.Templates.ab;
  check_float ~eps:1e-9 "mac_sum = 1 - H(0.1)"
    (1. -. Infotheory.Info.binary_entropy 0.1) m.Bidir.Templates.mac_sum;
  Alcotest.(check bool) "joint observation helps" true
    (m.Bidir.Templates.a_rb > m.Bidir.Templates.ar)

let test_discrete_optimized_inputs () =
  let net = Bidir.Discrete.bsc_network ~p_ab:0.3 ~p_ar:0.1 ~p_br:0.05 ~p_mac:0.1 in
  let uniform_sum =
    Bidir.Rate_region.sum
      (Bidir.Rate_region.max_sum_rate
         (Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net
            (Bidir.Discrete.uniform_inputs net)))
  in
  let best, _ =
    Bidir.Discrete.max_sum_rate_binary ~grid:7 Bidir.Protocol.Tdbc
      Bidir.Bound.Inner net
  in
  Alcotest.(check bool) "optimised >= uniform" true (best >= uniform_sum -. 1e-9)

let test_discrete_alphabet_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Discrete.make: MAC alphabets do not match the links")
    (fun () ->
      ignore
        (Bidir.Discrete.make
           ~ch_ab:(Infotheory.Channels.bsc 0.1)
           ~ch_ar:(Infotheory.Channels.bsc 0.1)
           ~ch_br:(Infotheory.Channels.bsc 0.1)
           ~mac_r:
             (Infotheory.Mac.create
                (Array.init 3 (fun _ ->
                     Array.init 2 (fun _ -> [| 0.5; 0.5 |]))))))

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_fig3_shape () =
  let f = Bidir.Figures.fig3 ~samples:9 () in
  Alcotest.(check int) "five series" 5 (List.length f.Bidir.Figures.series);
  List.iter
    (fun s ->
      Alcotest.(check int) "nine points" 9
        (List.length s.Bidir.Figures.points))
    f.Bidir.Figures.series;
  (* HBC >= max(MABC, TDBC) pointwise *)
  let by_label l =
    List.find (fun s -> s.Bidir.Figures.label = l) f.Bidir.Figures.series
  in
  let hbc = (by_label "HBC").Bidir.Figures.points in
  let mabc = (by_label "MABC").Bidir.Figures.points in
  let tdbc = (by_label "TDBC").Bidir.Figures.points in
  List.iteri
    (fun i (_, h) ->
      let _, m = List.nth mabc i and _, t = List.nth tdbc i in
      Alcotest.(check bool) "HBC dominates" true (h >= Float.max m t -. 1e-9))
    hbc

let test_fig4_regions_nonempty () =
  let f = Bidir.Figures.fig4 ~power_db:10. () in
  Alcotest.(check int) "six series" 6 (List.length f.Bidir.Figures.series);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Bidir.Figures.label ^ " non-empty")
        true
        (List.length s.Bidir.Figures.points >= 1))
    f.Bidir.Figures.series

let test_gap_table_small_gaps () =
  let t = Bidir.Figures.gap_table () in
  Alcotest.(check int) "rows" 8 (List.length t.Bidir.Figures.rows);
  (* parse the inner/outer columns and confirm inner <= outer *)
  List.iter
    (fun row ->
      match row with
      | [ _; _; inner; outer; _ ] ->
        Alcotest.(check bool) "inner <= outer" true
          (float_of_string inner <= float_of_string outer +. 1e-9)
      | _ -> Alcotest.fail "unexpected row shape")
    t.Bidir.Figures.rows

let test_crossover_table () =
  let t = Bidir.Figures.crossover_table () in
  Alcotest.(check int) "rows" 4 (List.length t.Bidir.Figures.rows);
  match t.Bidir.Figures.rows with
  | (_ :: mabc_tdbc :: _) :: _ ->
    Alcotest.(check bool) "MABC/TDBC crossover found" true
      (mabc_tdbc <> "none in [-10, 25] dB")
  | _ -> Alcotest.fail "unexpected table shape"

let test_discrete_table () =
  let t = Bidir.Figures.discrete_table ~p_range:[ 0.05 ] () in
  Alcotest.(check int) "four relay protocols" 4 (List.length t.Bidir.Figures.rows)

(* ------------------------------------------------------------------ *)
(* The naive four-phase routing baseline (Fig. 1(ii))                  *)
(* ------------------------------------------------------------------ *)

let test_naive_hand_check () =
  (* unit-capacity hops: Ra <= min(d1, d2), Rb <= min(d3, d4):
     sum rate 1/2 at the uniform split *)
  let mi =
    { Bidir.Templates.ab = 0.2;
      ba = 0.2;
      ar = 1.;
      br = 1.;
      ra = 1.;
      rb = 1.;
      mac_a = 1.;
      mac_b = 1.;
      mac_sum = 1.;
      a_rb = 1.1;
      b_ra = 1.1;
    }
  in
  let b = Bidir.Templates.naive mi in
  check_float ~eps:1e-6 "sum 1/2" 0.5
    (Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate b))

let test_coded_beats_naive () =
  (* MABC merges the two uplinks into a MAC and the two downlinks into
     one XOR broadcast: it must dominate the routing strawman *)
  List.iter
    (fun power_db ->
      let s = scen ~power_db in
      let naive = sum_rate Bidir.Protocol.Naive Bidir.Bound.Inner s in
      Alcotest.(check bool) "MABC > NAIVE" true
        (sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s > naive);
      Alcotest.(check bool) "TDBC > NAIVE" true
        (sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s > naive))
    [ -5.; 0.; 10.; 20. ]

let test_naive_beats_dt_when_direct_link_weak () =
  (* the classic case for relaying: a deep shadow on the direct link *)
  let gains = Channel.Gains.of_db ~g_ab:(-15.) ~g_ar:5. ~g_br:7. in
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains in
  Alcotest.(check bool) "NAIVE > DT under shadowing" true
    (sum_rate Bidir.Protocol.Naive Bidir.Bound.Inner s
     > sum_rate Bidir.Protocol.Dt Bidir.Bound.Inner s);
  (* ... and the opposite at the paper's strong direct link *)
  let s' = scen ~power_db:10. in
  Alcotest.(check bool) "DT > NAIVE at Fig. 4 gains" true
    (sum_rate Bidir.Protocol.Dt Bidir.Bound.Inner s'
     > sum_rate Bidir.Protocol.Naive Bidir.Bound.Inner s')

let test_coding_gain_table_shape () =
  let t = Bidir.Figures.coding_gain_table ~powers_db:[ 0.; 10. ] () in
  Alcotest.(check int) "two rows" 2 (List.length t.Bidir.Figures.rows);
  List.iter
    (fun row ->
      match row with
      | [ _; _; naive; best; _ ] ->
        Alcotest.(check bool) "coded beats naive" true
          (float_of_string best > float_of_string naive)
      | _ -> Alcotest.fail "unexpected row shape")
    t.Bidir.Figures.rows

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let scenario_gen =
  (* random valid scenario honouring the paper's gain ordering *)
  QCheck.(
    map
      (fun ((p_db, ab_db), (d_ar, d_br)) ->
        let ar_db = ab_db +. d_ar in
        let br_db = ar_db +. d_br in
        Bidir.Gaussian.scenario ~power_db:p_db
          ~gains:(Channel.Gains.of_db ~g_ab:ab_db ~g_ar:ar_db ~g_br:br_db))
      (pair
         (pair (float_range (-10.) 20.) (float_range (-5.) 5.))
         (pair (float_range 0. 10.) (float_range 0. 10.))))

let prop_hbc_dominates =
  QCheck.Test.make ~count:60 ~name:"HBC sum rate >= MABC and TDBC" scenario_gen
    (fun s ->
      let h = sum_rate Bidir.Protocol.Hbc Bidir.Bound.Inner s in
      h >= sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s -. 1e-7
      && h >= sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s -. 1e-7)

let prop_inner_le_outer =
  QCheck.Test.make ~count:60 ~name:"inner sum rate <= outer sum rate"
    scenario_gen (fun s ->
      List.for_all
        (fun p ->
          sum_rate p Bidir.Bound.Inner s
          <= sum_rate p Bidir.Bound.Outer s +. 1e-7)
        Bidir.Protocol.all)

let prop_deltas_simplex =
  QCheck.Test.make ~count:60 ~name:"optimal durations lie on the simplex"
    scenario_gen (fun s ->
      List.for_all
        (fun p ->
          let r = Bidir.Optimize.sum_rate p Bidir.Bound.Inner s in
          let total = Numerics.Float_utils.sum r.Bidir.Optimize.deltas in
          abs_float (total -. 1.) < 1e-6
          && Array.for_all (fun d -> d >= -1e-9) r.Bidir.Optimize.deltas)
        Bidir.Protocol.all)

let prop_sum_consistent =
  QCheck.Test.make ~count:60 ~name:"sum_rate = ra + rb" scenario_gen (fun s ->
      List.for_all
        (fun p ->
          let r = Bidir.Optimize.sum_rate p Bidir.Bound.Inner s in
          abs_float
            (r.Bidir.Optimize.sum_rate
             -. (r.Bidir.Optimize.ra +. r.Bidir.Optimize.rb))
          < 1e-9)
        Bidir.Protocol.all)

let prop_region_scales_down =
  QCheck.Test.make ~count:40 ~name:"scaled-down optimum stays achievable"
    QCheck.(pair scenario_gen (float_range 0.1 0.95))
    (fun (s, k) ->
      List.for_all
        (fun p ->
          let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
          let r = Bidir.Rate_region.max_sum_rate b in
          Bidir.Rate_region.achievable b
            ~ra:(k *. r.Bidir.Rate_region.ra)
            ~rb:(k *. r.Bidir.Rate_region.rb))
        Bidir.Protocol.all)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hbc_dominates;
      prop_inner_le_outer;
      prop_deltas_simplex;
      prop_sum_consistent;
      prop_region_scales_down;
    ]

let suites =
  [ ( "bidir.protocol",
      [ Alcotest.test_case "names" `Quick test_protocol_names;
        Alcotest.test_case "phases" `Quick test_protocol_phases;
      ] );
    ( "bidir.bound",
      [ Alcotest.test_case "validation" `Quick test_bound_validation;
        Alcotest.test_case "satisfied" `Quick test_bound_satisfied;
      ] );
    ( "bidir.gaussian",
      [ Alcotest.test_case "link rates" `Quick test_link_rates_values;
        Alcotest.test_case "dB vs linear" `Quick test_scenario_db_vs_lin;
      ] );
    ( "bidir.rate_region",
      [ Alcotest.test_case "hand MABC sum rate" `Quick test_hand_mabc_sum_rate;
        Alcotest.test_case "hand DT region" `Quick test_hand_dt_region;
        Alcotest.test_case "achievable probe" `Quick test_achievable_probe;
        Alcotest.test_case "boundary points achievable" `Quick test_boundary_on_region;
        Alcotest.test_case "polygons convex" `Quick test_polygon_convex;
        Alcotest.test_case "optimum satisfies bound" `Quick test_optimum_satisfies_bound;
      ] );
    ( "bidir.containments",
      [ Alcotest.test_case "MABC capacity (Thm 2)" `Quick test_mabc_capacity_inner_equals_outer;
        Alcotest.test_case "inner in outer" `Quick test_inner_subset_outer;
        Alcotest.test_case "HBC contains MABC, TDBC" `Quick test_hbc_contains_mabc_and_tdbc;
        Alcotest.test_case "TDBC contains DT" `Quick test_tdbc_contains_dt;
        Alcotest.test_case "relay-free outer relaxes" `Quick test_relay_free_outer_relaxes;
        Alcotest.test_case "monotone in power" `Quick test_sum_rate_monotone_in_power;
      ] );
    ( "bidir.paper_findings",
      [ Alcotest.test_case "MABC wins low SNR" `Quick test_mabc_beats_tdbc_low_snr;
        Alcotest.test_case "TDBC wins high SNR" `Quick test_tdbc_beats_mabc_high_snr;
        Alcotest.test_case "region domination flips" `Quick test_region_domination_low_and_high;
        Alcotest.test_case "HBC strictly better" `Quick test_hbc_strictly_better_somewhere;
        Alcotest.test_case "HBC outside both outers" `Quick test_hbc_outside_both_outer_bounds;
        Alcotest.test_case "crossover exists" `Quick test_crossover_exists;
        Alcotest.test_case "best protocol" `Quick test_best_protocol;
        Alcotest.test_case "terminal swap symmetry" `Quick test_symmetry_swap;
      ] );
    ( "bidir.naive",
      [ Alcotest.test_case "hand check" `Quick test_naive_hand_check;
        Alcotest.test_case "coded beats naive" `Quick test_coded_beats_naive;
        Alcotest.test_case "naive vs DT" `Quick test_naive_beats_dt_when_direct_link_weak;
        Alcotest.test_case "coding gain table" `Quick test_coding_gain_table_shape;
      ] );
    ( "bidir.discrete",
      [ Alcotest.test_case "noiseless" `Quick test_discrete_noiseless;
        Alcotest.test_case "noise hurts" `Quick test_discrete_noise_hurts;
        Alcotest.test_case "MI values" `Quick test_discrete_mi_values_sane;
        Alcotest.test_case "optimised inputs" `Slow test_discrete_optimized_inputs;
        Alcotest.test_case "alphabet mismatch" `Quick test_discrete_alphabet_mismatch;
      ] );
    ( "bidir.figures",
      [ Alcotest.test_case "fig3 shape" `Quick test_fig3_shape;
        Alcotest.test_case "fig4 regions" `Quick test_fig4_regions_nonempty;
        Alcotest.test_case "gap table" `Quick test_gap_table_small_gaps;
        Alcotest.test_case "crossover table" `Quick test_crossover_table;
        Alcotest.test_case "discrete table" `Quick test_discrete_table;
      ] );
    ("bidir.properties", qcheck_cases);
  ]

let test_binding_terms () =
  (* the sum-rate optimum always sits on at least one constraint, and
     for MABC at the paper gains the relay-decoding MAC cut binds *)
  let s = scen ~power_db:10. in
  List.iter
    (fun p ->
      let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
      let r = Bidir.Rate_region.max_sum_rate b in
      let binding = Bidir.Rate_region.binding_terms ~eps:1e-6 b r in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " optimum on boundary")
        true
        (List.length binding >= 1))
    Bidir.Protocol.all;
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Mabc Bidir.Bound.Inner s in
  let r = Bidir.Rate_region.max_sum_rate b in
  let labels =
    List.map
      (fun (t : Bidir.Bound.term) -> t.Bidir.Bound.label)
      (Bidir.Rate_region.binding_terms ~eps:1e-6 b r)
  in
  Alcotest.(check bool) "MABC: relay MAC cut binds" true
    (List.mem "S4: relay decodes both" labels)


let suites =
  suites
  @ [ ("bidir.binding",
       [ Alcotest.test_case "binding terms" `Quick test_binding_terms ])
    ]

let test_boundary_with_schedules () =
  let s = scen ~power_db:10. in
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner s in
  let frontier = Bidir.Rate_region.boundary_with_schedules b in
  Alcotest.(check bool) "several points" true (List.length frontier >= 2);
  List.iter
    (fun (r : Bidir.Rate_region.opt_result) ->
      (* every schedule lives on the simplex and supports its rates *)
      Alcotest.(check bool) "simplex" true
        (abs_float (Numerics.Float_utils.sum r.Bidir.Rate_region.deltas -. 1.)
         < 1e-6);
      Alcotest.(check bool) "feasible at its own schedule" true
        (Bidir.Bound.satisfied b ~deltas:r.Bidir.Rate_region.deltas
           ~ra:r.Bidir.Rate_region.ra ~rb:r.Bidir.Rate_region.rb))
    frontier;
  (* ordered by Ra *)
  let ras = List.map (fun r -> r.Bidir.Rate_region.ra) frontier in
  Alcotest.(check bool) "sorted" true (List.sort compare ras = ras)

let test_bec_network () =
  (* BEC(e) capacity is 1 - e: the TDBC sum rate on a symmetric erasure
     network matches the closed form, as in the BSC test *)
  let e = 0.2 in
  let net = Bidir.Discrete.bec_network ~e_ab:e ~e_ar:e ~e_br:e ~e_mac:e in
  let b =
    Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net
      (Bidir.Discrete.uniform_inputs net)
  in
  Alcotest.(check (float 1e-6)) "sum = 1 - e" (1. -. e)
    (Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate b))

let test_quaternary_network () =
  let net = Bidir.Discrete.quaternary_network ~p:0.05 in
  let ins = Bidir.Discrete.uniform_inputs net in
  let sum p =
    Bidir.Rate_region.sum
      (Bidir.Rate_region.max_sum_rate
         (Bidir.Discrete.bounds p Bidir.Bound.Inner net ins))
  in
  (* 4-ary links carry up to 2 bits/use; rates land between 1 and 2 and
     respect the usual protocol ordering *)
  Alcotest.(check bool) "TDBC in (1, 2)" true (sum Bidir.Protocol.Tdbc > 1. && sum Bidir.Protocol.Tdbc < 2.);
  Alcotest.(check bool) "HBC >= TDBC" true
    (sum Bidir.Protocol.Hbc >= sum Bidir.Protocol.Tdbc -. 1e-9);
  Alcotest.(check bool) "HBC >= MABC" true
    (sum Bidir.Protocol.Hbc >= sum Bidir.Protocol.Mabc -. 1e-9)

let suites =
  suites
  @ [ ( "bidir.more_regions",
        [ Alcotest.test_case "boundary with schedules" `Quick
            test_boundary_with_schedules;
          Alcotest.test_case "bec network" `Quick test_bec_network;
          Alcotest.test_case "quaternary network" `Quick test_quaternary_network;
        ] )
    ]
