(* Tests for the sharded Monte-Carlo campaign runner: the determinism
   contract (byte-identical results across domain counts and across
   checkpoint/resume), the sequential stopping rule, config validation,
   and the cross-check that a campaign over the ergodic workload agrees
   with [Bidir.Ergodic]'s analytic long-run estimate. *)

module R = Campaign.Runner
module W = Campaign.Workloads
module J = Telemetry.Json

let render result = J.to_string (R.result_to_json result)

(* A cheap synthetic workload: a few RNG draws per replication, so the
   determinism tests exercise the sharding machinery rather than the
   simulator. The values have known population moments (standard
   normals), which the stopping-rule test leans on. *)
let synthetic =
  {
    R.name = "synthetic";
    replicate =
      (fun ~rep:_ ~rng ->
        let x = Prob.Dist.standard_normal rng in
        let y =
          Prob.Dist.standard_normal rng +. Prob.Dist.standard_normal rng
        in
        {
          R.values = [ ("x", x); ("y", y) ];
          counts = [ ("draws", 3) ];
        });
  }

let with_temp_checkpoint f =
  let path = Filename.temp_file "campaign_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts                                    *)
(* ------------------------------------------------------------------ *)

let test_domains_byte_identical () =
  let run domains =
    render
      (R.run
         (R.default_config ~seed:23 ~domains ~batch:8 ~replications:24 ())
         (W.ergodic ~blocks_per_rep:30 ()))
  in
  let one = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d matches domains=1" domains)
        one (run domains))
    [ 2; 8 ]

(* The batch size sets checkpoint granularity only: any batch size must
   merge to the same result because accumulation is sequential in
   replication order. *)
let test_batch_size_invariant () =
  let run batch =
    render
      (R.run
         (R.default_config ~seed:5 ~batch ~replications:20 ())
         synthetic)
  in
  let baseline = run 32 in
  List.iter
    (fun batch ->
      Alcotest.(check string)
        (Printf.sprintf "batch=%d matches batch=32" batch)
        baseline (run batch))
    [ 1; 7; 20 ]

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)
(* ------------------------------------------------------------------ *)

let test_resume_byte_identical () =
  with_temp_checkpoint (fun path ->
      let fresh =
        R.run (R.default_config ~seed:9 ~batch:5 ~replications:24 ()) synthetic
      in
      let partial =
        R.run
          (R.default_config ~seed:9 ~batch:5 ~checkpoint:path
             ~replications:10 ())
          synthetic
      in
      Alcotest.(check int) "partial run completed" 10 partial.R.completed;
      let resumed =
        R.run
          (R.default_config ~seed:9 ~batch:5 ~checkpoint:path ~resume:true
             ~domains:3 ~replications:24 ())
          synthetic
      in
      Alcotest.(check string) "resumed result matches uninterrupted run"
        (render fresh) (render resumed))

let test_resume_rejects_mismatched_seed () =
  with_temp_checkpoint (fun path ->
      ignore
        (R.run
           (R.default_config ~seed:9 ~checkpoint:path ~replications:8 ())
           synthetic
          : R.result);
      match
        R.run
          (R.default_config ~seed:10 ~checkpoint:path ~resume:true
             ~replications:8 ())
          synthetic
      with
      | (_ : R.result) -> Alcotest.fail "seed mismatch accepted"
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "error names the seed" true
          (String.length msg > 0))

(* ------------------------------------------------------------------ *)
(* Stopping rule                                                       *)
(* ------------------------------------------------------------------ *)

let test_stopping_rule_stops_early () =
  let result =
    R.run
      (R.default_config ~seed:3 ~batch:8 ~ci_target:10. ~replications:400 ())
      synthetic
  in
  Alcotest.(check bool) "stopped early" true result.R.stopped_early;
  Alcotest.(check bool) "at least the minimum replications" true
    (result.R.completed >= 8);
  Alcotest.(check bool) "fewer than the target" true
    (result.R.completed < 400);
  (* counters reflect the replications actually run, not the target *)
  Alcotest.(check int) "draw counter matches completed count"
    (3 * result.R.completed)
    (List.assoc "draws" result.R.counters)

let test_tight_target_runs_to_completion () =
  let result =
    R.run
      (R.default_config ~seed:3 ~batch:8 ~ci_target:1e-9 ~replications:16 ())
      synthetic
  in
  Alcotest.(check bool) "did not stop early" false result.R.stopped_early;
  Alcotest.(check int) "ran every replication" 16 result.R.completed

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_config_validation () =
  let invalid msg cfg =
    match ignore (R.run cfg synthetic : R.result) with
    | () -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "zero replications" (R.default_config ~replications:0 ());
  invalid "zero batch" (R.default_config ~batch:0 ~replications:4 ());
  invalid "zero domains" (R.default_config ~domains:0 ~replications:4 ());
  invalid "resume without checkpoint"
    (R.default_config ~resume:true ~replications:4 ());
  invalid "non-positive ci target"
    (R.default_config ~ci_target:0. ~replications:4 ())

(* ------------------------------------------------------------------ *)
(* Summaries and the ergodic cross-check                               *)
(* ------------------------------------------------------------------ *)

let test_summary_shape () =
  let result =
    R.run (R.default_config ~seed:1 ~replications:64 ()) synthetic
  in
  let x = List.assoc "x" result.R.values in
  Alcotest.(check int) "per-metric count" 64 x.R.count;
  let lo, hi = x.R.ci95 in
  Alcotest.(check bool) "mean inside its own CI" true
    (lo <= x.R.mean && x.R.mean <= hi);
  Alcotest.(check bool) "quantiles ordered" true
    (x.R.min <= x.R.p50 && x.R.p50 <= x.R.p90 && x.R.p90 <= x.R.p99
   && x.R.p99 <= x.R.max);
  (* 64 standard-normal means: the CI should comfortably cover 0 *)
  Alcotest.(check bool) "standard-normal mean near zero" true
    (lo <= 0. && 0. <= hi)

(* The campaign estimate and [Bidir.Ergodic]'s direct long-run estimate
   target the same expectation, so their 95% intervals must overlap. *)
let test_ergodic_cross_check () =
  let result =
    R.run
      (R.default_config ~seed:17 ~batch:8 ~replications:24 ())
      (W.ergodic ~blocks_per_rep:60 ())
  in
  let sum_rate = List.assoc "sum_rate" result.R.values in
  let campaign_lo, campaign_hi = sum_rate.R.ci95 in
  let analytic =
    Bidir.Ergodic.ergodic_sum_rate ~blocks:2_000
      (Channel.Fading.create ~rng_seed:77 ~mean:Channel.Gains.paper_fig4 ())
      ~power:(Numerics.Float_utils.db_to_lin 10.)
      Bidir.Protocol.Tdbc
  in
  let analytic_lo, analytic_hi = analytic.Bidir.Ergodic.ci95 in
  Alcotest.(check bool)
    (Printf.sprintf "campaign [%g, %g] overlaps analytic [%g, %g]"
       campaign_lo campaign_hi analytic_lo analytic_hi)
    true
    (campaign_lo <= analytic_hi && analytic_lo <= campaign_hi);
  Alcotest.(check int) "block counter merged exactly" (24 * 60)
    (List.assoc "blocks" result.R.counters)

(* ------------------------------------------------------------------ *)
(* Progress hook and live streaming                                    *)
(* ------------------------------------------------------------------ *)

let test_progress_hook () =
  let seen = ref [] in
  let result =
    R.run
      (R.default_config ~seed:5 ~batch:16
         ~on_progress:(fun p -> seen := p :: !seen)
         ~replications:64 ())
      synthetic
  in
  let calls = List.rev !seen in
  Alcotest.(check int) "one call per batch" 4 (List.length calls);
  Alcotest.(check (list int)) "completed counts at batch boundaries"
    [ 16; 32; 48; 64 ]
    (List.map (fun (p : R.progress) -> p.R.completed) calls);
  List.iter
    (fun (p : R.progress) ->
      Alcotest.(check int) "target" 64 p.R.target;
      Alcotest.(check bool) "elapsed >= 0" true (p.R.elapsed_seconds >= 0.);
      Alcotest.(check bool) "rate >= 0" true (p.R.rate >= 0.);
      Alcotest.(check (option (float 1e-9))) "no ci target configured" None
        p.R.ci_target)
    calls;
  (* elapsed is monotone across batches, and the last ETA is zero *)
  ignore
    (List.fold_left
       (fun prev (p : R.progress) ->
         Alcotest.(check bool) "elapsed monotone" true
           (p.R.elapsed_seconds >= prev);
         p.R.elapsed_seconds)
       0. calls
      : float);
  (match (List.nth calls 3).R.eta_seconds with
  | Some eta -> Alcotest.(check (float 1e-9)) "final eta" 0. eta
  | None -> Alcotest.fail "final progress lacks an eta");
  Alcotest.(check int) "hook is observation-only" 64 result.R.completed

(* The fused single-fan-out path (no hook, no checkpoint, no stopping
   rule, streaming off) must produce the same bytes as the per-batch
   path, at any domain count. *)
let test_fused_path_byte_identical () =
  let run ?on_progress domains =
    render
      (R.run
         (R.default_config ~seed:23 ~domains ~batch:8 ?on_progress
            ~replications:24 ())
         (W.ergodic ~blocks_per_rep:30 ()))
  in
  let fused = run 1 in
  Alcotest.(check string) "per-batch (hook) matches fused, 1 domain" fused
    (run ~on_progress:(fun _ -> ()) 1);
  Alcotest.(check string) "per-batch (hook) matches fused, 4 domains" fused
    (run ~on_progress:(fun _ -> ()) 4);
  Alcotest.(check string) "fused, 4 domains" fused (run 4)

(* Live streaming on: the runner emits per-batch progress events and
   heartbeats into the live file without changing the result. *)
let test_streaming_byte_identical () =
  let path = Filename.temp_file "campaign_live" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let run () =
    render
      (R.run (R.default_config ~seed:7 ~batch:16 ~replications:32 ())
         synthetic)
  in
  let off = run () in
  ignore (Telemetry.Stream.drain () : Telemetry.Stream.event list);
  Telemetry.Stream.open_live ~interval:0. path;
  let on = Fun.protect ~finally:Telemetry.Stream.close_live run in
  Alcotest.(check string) "streaming is observation-only" off on;
  let st = Telemetry.Live.create () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          Telemetry.Live.feed_line st (input_line ic)
        done
      with End_of_file -> ());
  Alcotest.(check (option string)) "live schema" (Some "bidir-live/1")
    (Telemetry.Live.schema st);
  Alcotest.(check bool) "one heartbeat per batch plus the close" true
    (Telemetry.Live.heartbeats st >= 3);
  Alcotest.(check bool) "monotone" true (Telemetry.Live.monotone st);
  Alcotest.(check bool) "finished" true (Telemetry.Live.finished st);
  match Telemetry.Live.progress st with
  | Some p ->
    Alcotest.(check string) "progress stream name" "campaign:synthetic"
      p.Telemetry.Live.pr_name;
    Alcotest.(check int) "ran to completion" 32
      p.Telemetry.Live.pr_completed
  | None -> Alcotest.fail "no progress in the live file"

let suites =
  [ ( "campaign.determinism",
      [ Alcotest.test_case "byte-identical across domains" `Quick
          test_domains_byte_identical;
        Alcotest.test_case "batch size does not change results" `Quick
          test_batch_size_invariant;
        Alcotest.test_case "checkpoint/resume matches uninterrupted run"
          `Quick test_resume_byte_identical;
        Alcotest.test_case "resume refuses mismatched seed" `Quick
          test_resume_rejects_mismatched_seed;
      ] );
    ( "campaign.runner",
      [ Alcotest.test_case "stopping rule stops early" `Quick
          test_stopping_rule_stops_early;
        Alcotest.test_case "tight target runs to completion" `Quick
          test_tight_target_runs_to_completion;
        Alcotest.test_case "config validation" `Quick test_config_validation;
        Alcotest.test_case "summary shape" `Quick test_summary_shape;
        Alcotest.test_case "ergodic campaign matches analytic estimate"
          `Quick test_ergodic_cross_check;
      ] );
    ( "campaign.progress",
      [ Alcotest.test_case "hook fires at batch boundaries" `Quick
          test_progress_hook;
        Alcotest.test_case "fused fan-out matches per-batch, domains 1/4"
          `Quick test_fused_path_byte_identical;
        Alcotest.test_case "live streaming is observation-only" `Quick
          test_streaming_byte_identical;
      ] );
  ]
