(* Tests for the PRNG and distribution sampling. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_determinism () =
  let r1 = Prob.Rng.create ~seed:42 in
  let r2 = Prob.Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prob.Rng.next_int64 r1)
      (Prob.Rng.next_int64 r2)
  done

let test_different_seeds () =
  let r1 = Prob.Rng.create ~seed:1 in
  let r2 = Prob.Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Prob.Rng.next_int64 r1 = Prob.Rng.next_int64 r2)

let test_copy_independent () =
  let r = Prob.Rng.create ~seed:7 in
  let c = Prob.Rng.copy r in
  let a = Prob.Rng.next_int64 r in
  let b = Prob.Rng.next_int64 c in
  Alcotest.(check int64) "copy replays" a b

let test_split_distinct () =
  let r = Prob.Rng.create ~seed:7 in
  let s = Prob.Rng.split r in
  Alcotest.(check bool) "split differs from parent" false
    (Prob.Rng.next_int64 r = Prob.Rng.next_int64 s)

(* Regression for the shared-gamma split bug: every stream used to share
   the golden gamma, so two streams whose states ever coincided stayed
   identical forever. With per-stream gammas from [mixGamma], sibling
   streams and parent/child prefixes must stay collision-free (any
   positionwise equality over 1e4 draws has probability ~2^-64 per
   position, so zero matches is the overwhelmingly likely outcome for a
   correct splitter — and the broken one collides everywhere). *)
let prop_split_streams_diverge =
  QCheck.Test.make ~count:20
    ~name:"split: sibling and parent/child prefixes don't collide (1e4 draws)"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let parent = Prob.Rng.create ~seed in
      let c1 = Prob.Rng.split parent in
      let c2 = Prob.Rng.split parent in
      let grandchild = Prob.Rng.split (Prob.Rng.copy c1) in
      let n = 10_000 in
      let draw r = Array.init n (fun _ -> Prob.Rng.next_int64 r) in
      let ac1 = draw c1 and ac2 = draw c2 in
      let ag = draw grandchild and ap = draw parent in
      let collisions x y =
        let c = ref 0 in
        for i = 0 to n - 1 do
          if x.(i) = y.(i) then incr c
        done;
        !c
      in
      collisions ac1 ac2 = 0 && collisions ap ac1 = 0
      && collisions ap ac2 = 0 && collisions ag ac1 = 0)

let test_float_range_bounds () =
  let r = Prob.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Prob.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_int_bounds () =
  let r = Prob.Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let x = Prob.Rng.int r 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_int_invalid () =
  let r = Prob.Rng.create ~seed:4 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prob.Rng.int r 0))

let test_int_uniformity () =
  let r = Prob.Rng.create ~seed:5 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let k = Prob.Rng.int r 4 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "frequency near 1/4" true
        (abs_float (frac -. 0.25) < 0.02))
    counts

let test_bernoulli_frequency () =
  let r = Prob.Rng.create ~seed:6 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prob.Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (abs_float (frac -. 0.3) < 0.01)

let sample_stats ~n f =
  let r = Prob.Rng.create ~seed:99 in
  Numerics.Stats.summarize (Array.init n (fun _ -> f r))

let test_normal_moments () =
  let s = sample_stats ~n:100_000 (fun r -> Prob.Dist.normal r ~mean:2. ~std:3.) in
  Alcotest.(check bool) "mean near 2" true (abs_float (s.Numerics.Stats.mean -. 2.) < 0.05);
  Alcotest.(check bool) "std near 3" true (abs_float (s.Numerics.Stats.std -. 3.) < 0.05)

let test_exponential_moments () =
  let s = sample_stats ~n:100_000 (fun r -> Prob.Dist.exponential r ~rate:2.) in
  Alcotest.(check bool) "mean near 0.5" true
    (abs_float (s.Numerics.Stats.mean -. 0.5) < 0.01);
  Alcotest.(check bool) "all positive" true (s.Numerics.Stats.min > 0.)

let test_exponential_power_gain () =
  (* mean power of the fading gain must match the requested mean *)
  let s =
    sample_stats ~n:100_000 (fun r -> Prob.Dist.exponential_power_gain r ~mean:3.)
  in
  Alcotest.(check bool) "mean near 3" true
    (abs_float (s.Numerics.Stats.mean -. 3.) < 0.08)

let test_complex_normal_power () =
  let r = Prob.Rng.create ~seed:11 in
  let n = 100_000 in
  let powers =
    Array.init n (fun _ ->
        let re, im = Prob.Dist.complex_normal r ~variance:2. in
        (re *. re) +. (im *. im))
  in
  let s = Numerics.Stats.summarize powers in
  Alcotest.(check bool) "E|h|^2 near 2" true
    (abs_float (s.Numerics.Stats.mean -. 2.) < 0.05)

let test_rayleigh_moments () =
  (* Rayleigh(sigma) mean = sigma sqrt(pi/2) *)
  let s = sample_stats ~n:100_000 (fun r -> Prob.Dist.rayleigh r ~sigma:1.5) in
  let expected = 1.5 *. sqrt (Float.pi /. 2.) in
  Alcotest.(check bool) "mean matches" true
    (abs_float (s.Numerics.Stats.mean -. expected) < 0.02)

let test_uniform_int_bounds () =
  let r = Prob.Rng.create ~seed:12 in
  for _ = 1 to 1000 do
    let x = Prob.Dist.uniform_int r ~lo:3 ~hi:9 in
    Alcotest.(check bool) "in [3,9]" true (x >= 3 && x <= 9)
  done

let test_invalid_args () =
  let r = Prob.Rng.create ~seed:13 in
  Alcotest.check_raises "exp rate" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Prob.Dist.exponential r ~rate:0.));
  Alcotest.check_raises "rayleigh sigma" (Invalid_argument "Dist.rayleigh: sigma must be positive")
    (fun () -> ignore (Prob.Dist.rayleigh r ~sigma:(-1.)));
  Alcotest.check_raises "uniform_int" (Invalid_argument "Dist.uniform_int: hi < lo")
    (fun () -> ignore (Prob.Dist.uniform_int r ~lo:2 ~hi:1))

let test_normal_tail_fraction () =
  (* ~5% of standard normal samples beyond +-1.96 *)
  let r = Prob.Rng.create ~seed:21 in
  let n = 100_000 in
  let out = ref 0 in
  for _ = 1 to n do
    if abs_float (Prob.Dist.standard_normal r) > 1.959964 then incr out
  done;
  let frac = float_of_int !out /. float_of_int n in
  Alcotest.(check bool) "tail ~5%" true (abs_float (frac -. 0.05) < 0.005)

let suites =
  [ ( "prob.rng",
      [ Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "different seeds" `Quick test_different_seeds;
        Alcotest.test_case "copy replays" `Quick test_copy_independent;
        Alcotest.test_case "split distinct" `Quick test_split_distinct;
        Alcotest.test_case "float bounds" `Quick test_float_range_bounds;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int invalid" `Quick test_int_invalid;
        Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
        Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
        QCheck_alcotest.to_alcotest prop_split_streams_diverge;
      ] );
    ( "prob.dist",
      [ Alcotest.test_case "normal moments" `Quick test_normal_moments;
        Alcotest.test_case "exponential moments" `Quick test_exponential_moments;
        Alcotest.test_case "fading power gain" `Quick test_exponential_power_gain;
        Alcotest.test_case "complex normal power" `Quick test_complex_normal_power;
        Alcotest.test_case "rayleigh moments" `Quick test_rayleigh_moments;
        Alcotest.test_case "uniform int bounds" `Quick test_uniform_int_bounds;
        Alcotest.test_case "invalid args" `Quick test_invalid_args;
        Alcotest.test_case "normal tails" `Quick test_normal_tail_fraction;
      ] );
  ]

let _ = check_float
