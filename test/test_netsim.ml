(* Tests for the discrete-event simulator. *)

let paper_gains = Channel.Gains.paper_fig4

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_queue_order () =
  let q = Netsim.Event_queue.create () in
  Netsim.Event_queue.push q ~time:3. "c";
  Netsim.Event_queue.push q ~time:1. "a";
  Netsim.Event_queue.push q ~time:2. "b";
  let drain () =
    let rec loop acc =
      match Netsim.Event_queue.pop q with
      | None -> List.rev acc
      | Some (_, x) -> loop (x :: acc)
    in
    loop []
  in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (drain ())

let test_queue_fifo_ties () =
  let q = Netsim.Event_queue.create () in
  for i = 0 to 9 do
    Netsim.Event_queue.push q ~time:5. i
  done;
  let rec drain acc =
    match Netsim.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, x) -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "insertion order on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (drain [])

let test_queue_interleaved () =
  let q = Netsim.Event_queue.create () in
  let rng = Prob.Rng.create ~seed:1 in
  let times = Array.init 500 (fun _ -> Prob.Rng.float rng) in
  Array.iter (fun t -> Netsim.Event_queue.push q ~time:t t) times;
  let rec drain last n =
    match Netsim.Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
      Alcotest.(check bool) "non-decreasing" true (t >= last);
      drain t (n + 1)
  in
  Alcotest.(check int) "all drained" 500 (drain neg_infinity 0)

(* A popped payload must be collectable even while the queue lives on:
   the heap array retains entry records in vacated slots (and [grow]
   duplicates a filler entry), so [pop] has to clear the payload field.
   Watch one payload through a weak pointer and force a full GC. *)
let test_queue_pop_releases_payload () =
  let q = Netsim.Event_queue.create () in
  let w = Weak.create 1 in
  (* boxed payload allocated in a helper so the test frame holds no
     strong reference after the call *)
  let push_tracked () =
    let payload = ref 42 in
    Weak.set w 0 (Some payload);
    Netsim.Event_queue.push q ~time:1. payload
  in
  push_tracked ();
  (* keep the queue non-trivial: later events stay pending, forcing the
     popped entry's old slots to stick around inside the live heap *)
  for i = 2 to 9 do
    Netsim.Event_queue.push q ~time:(float_of_int i) (ref i)
  done;
  (* pop in its own frame so no stack slot of this function keeps the
     payload reachable when the GC runs below *)
  let pop_and_check () =
    match Netsim.Event_queue.pop q with
    | Some (t, p) ->
      Alcotest.(check (float 0.)) "popped first" 1. t;
      Alcotest.(check int) "payload intact" 42 !p
    | None -> Alcotest.fail "queue was non-empty"
  in
  pop_and_check ();
  Alcotest.(check int) "rest still queued" 8 (Netsim.Event_queue.size q);
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected (not pinned by queue)"
    true
    (Weak.get w 0 = None);
  (* the queue still works after the clear *)
  match Netsim.Event_queue.pop q with
  | Some (t, _) -> Alcotest.(check (float 0.)) "next event" 2. t
  | None -> Alcotest.fail "remaining events lost"

let test_queue_size_and_nan () =
  let q = Netsim.Event_queue.create () in
  Alcotest.(check bool) "empty" true (Netsim.Event_queue.is_empty q);
  Netsim.Event_queue.push q ~time:1. ();
  Alcotest.(check int) "size" 1 (Netsim.Event_queue.size q);
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Netsim.Event_queue.push q ~time:Float.nan ())

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_clock () =
  let e = Netsim.Engine.create () in
  let trace = ref [] in
  Netsim.Engine.schedule_at e ~time:2. (fun () ->
      trace := ("ev2", Netsim.Engine.now e) :: !trace);
  Netsim.Engine.schedule_at e ~time:1. (fun () ->
      trace := ("ev1", Netsim.Engine.now e) :: !trace;
      (* handlers may schedule more events *)
      Netsim.Engine.schedule_after e ~delay:0.5 (fun () ->
          trace := ("ev1.5", Netsim.Engine.now e) :: !trace));
  Netsim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "ev1"; "ev1.5"; "ev2" ]
    (List.rev_map fst !trace);
  Alcotest.(check (float 1e-12)) "final clock" 2. (Netsim.Engine.now e)

let test_engine_until () =
  let e = Netsim.Engine.create () in
  let fired = ref 0 in
  List.iter
    (fun t -> Netsim.Engine.schedule_at e ~time:t (fun () -> incr fired))
    [ 1.; 2.; 3.; 4. ];
  Netsim.Engine.run ~until:2.5 e;
  Alcotest.(check int) "two fired" 2 !fired;
  Alcotest.(check int) "two pending" 2 (Netsim.Engine.pending e);
  Netsim.Engine.run e;
  Alcotest.(check int) "all fired" 4 !fired

let test_engine_past_rejected () =
  let e = Netsim.Engine.create () in
  Netsim.Engine.schedule_at e ~time:5. (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
          Netsim.Engine.schedule_at e ~time:1. (fun () -> ())));
  Netsim.Engine.run e

(* ------------------------------------------------------------------ *)
(* Phy                                                                 *)
(* ------------------------------------------------------------------ *)

let test_phy_p2p () =
  (* C(1 * 3) = 2 bits *)
  Alcotest.(check bool) "under" true (Netsim.Phy.p2p_success ~power:1. ~gain:3. ~rate:1.9);
  Alcotest.(check bool) "at" true (Netsim.Phy.p2p_success ~power:1. ~gain:3. ~rate:2.);
  Alcotest.(check bool) "over" false (Netsim.Phy.p2p_success ~power:1. ~gain:3. ~rate:2.1);
  Alcotest.(check bool) "zero rate always ok" true
    (Netsim.Phy.p2p_success ~power:0. ~gain:0. ~rate:0.)

let test_phy_mac_pentagon () =
  (* gains 3 and 3 at power 1: individual 2 bits, sum C(6) = 2.807 *)
  let ok r1 r2 = Netsim.Phy.mac_success ~power:1. ~gain1:3. ~gain2:3. ~rate1:r1 ~rate2:r2 in
  Alcotest.(check bool) "corner" true (ok 2. 0.8);
  Alcotest.(check bool) "sum violated" false (ok 1.5 1.5);
  Alcotest.(check bool) "individual violated" false (ok 2.1 0.1);
  Alcotest.(check bool) "inside" true (ok 1.4 1.4)

let test_phy_combined () =
  Alcotest.(check bool) "accumulates" true
    (Netsim.Phy.combined_success ~parts:[ (0.5, 1.); (0.25, 2.) ] ~rate:1.);
  Alcotest.(check bool) "insufficient" false
    (Netsim.Phy.combined_success ~parts:[ (0.5, 1.); (0.25, 2.) ] ~rate:1.01)

(* ------------------------------------------------------------------ *)
(* Packet                                                              *)
(* ------------------------------------------------------------------ *)

let test_packet_round_trip () =
  let rng = Prob.Rng.create ~seed:3 in
  let payload = Coding.Bitvec.random rng 120 in
  let pkt = Netsim.Packet.fresh ~src:Netsim.Packet.A ~seq:0 payload in
  Alcotest.(check int) "payload bits" 120 (Netsim.Packet.payload_bits pkt);
  match Netsim.Packet.verify pkt with
  | Some w -> Alcotest.(check bool) "clean" true (Coding.Bitvec.equal w payload)
  | None -> Alcotest.fail "clean packet failed CRC"

let test_packet_corruption_detected () =
  let rng = Prob.Rng.create ~seed:4 in
  for seq = 0 to 30 do
    let payload = Coding.Bitvec.random rng 80 in
    let pkt = Netsim.Packet.fresh ~src:Netsim.Packet.B ~seq payload in
    match Netsim.Packet.verify (Netsim.Packet.corrupt rng pkt) with
    | Some w ->
      (* CRC collision is possible but must not silently change bits *)
      Alcotest.(check bool) "collision preserves payload" true
        (Coding.Bitvec.equal w payload)
    | None -> ()
  done

let test_packet_xor () =
  let rng = Prob.Rng.create ~seed:5 in
  let wa = Coding.Bitvec.random rng 64 and wb = Coding.Bitvec.random rng 64 in
  let pa = Netsim.Packet.fresh ~src:Netsim.Packet.A ~seq:1 wa in
  let pb = Netsim.Packet.fresh ~src:Netsim.Packet.B ~seq:1 wb in
  let pr = Netsim.Packet.xor_payloads pa pb ~src:Netsim.Packet.R ~seq:1 in
  match Netsim.Packet.verify pr with
  | None -> Alcotest.fail "relay packet failed CRC"
  | Some wr ->
    Alcotest.(check bool) "xor correct" true
      (Coding.Bitvec.equal wr (Coding.Bitvec.xor wa wb))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_accounting () =
  let m = Netsim.Metrics.create () in
  Netsim.Metrics.record_block m ~symbols:1000 ~bits_a:500 ~bits_b:300
    ~delivered_a:true ~delivered_b:false;
  Netsim.Metrics.record_block m ~symbols:1000 ~bits_a:500 ~bits_b:300
    ~delivered_a:true ~delivered_b:true;
  Alcotest.(check int) "blocks" 2 (Netsim.Metrics.blocks m);
  Alcotest.(check int) "delivered" 1300 (Netsim.Metrics.delivered_bits m);
  Alcotest.(check int) "offered" 1600 (Netsim.Metrics.offered_bits m);
  Alcotest.(check (float 1e-9)) "throughput" 0.65 (Netsim.Metrics.throughput m);
  Alcotest.(check (float 1e-9)) "outage rate" 0.25 (Netsim.Metrics.outage_rate m);
  Netsim.Metrics.record_phase_outage m ~phase:2;
  Netsim.Metrics.record_phase_outage m ~phase:2;
  Alcotest.(check (list (pair int int))) "phase outages" [ (2, 2) ]
    (Netsim.Metrics.phase_outages m)

(* ------------------------------------------------------------------ *)
(* Runner: the headline verification                                   *)
(* ------------------------------------------------------------------ *)

let run_static protocol power_db =
  Netsim.Runner.run
    (Netsim.Runner.default_config ~protocol ~power_db ~gains:paper_gains
       ~blocks:20 ~block_symbols:20_000 ())

let test_adaptive_matches_analytic () =
  (* static channel + per-block optimal schedule: measured throughput
     equals the analytic optimal sum rate up to integer-bit flooring *)
  List.iter
    (fun protocol ->
      let r = run_static protocol 10. in
      let measured = Netsim.Metrics.throughput r.Netsim.Runner.metrics in
      let analytic = r.Netsim.Runner.analytic_mean_sum_rate in
      Alcotest.(check bool)
        (Bidir.Protocol.name protocol ^ " throughput ~= analytic")
        true
        (abs_float (measured -. analytic) < 2e-4);
      Alcotest.(check int)
        (Bidir.Protocol.name protocol ^ " zero bit errors")
        0
        (Netsim.Metrics.bit_errors r.Netsim.Runner.metrics);
      Alcotest.(check (float 1e-9))
        (Bidir.Protocol.name protocol ^ " zero outage")
        0.
        (Netsim.Metrics.outage_rate r.Netsim.Runner.metrics))
    Bidir.Protocol.all

let test_simulated_ordering_matches_paper () =
  (* the protocol ordering survives the trip through the simulator *)
  let thr p power_db =
    Netsim.Metrics.throughput (run_static p power_db).Netsim.Runner.metrics
  in
  Alcotest.(check bool) "low SNR: MABC > TDBC" true
    (thr Bidir.Protocol.Mabc 0. > thr Bidir.Protocol.Tdbc 0.);
  Alcotest.(check bool) "high SNR: TDBC > MABC" true
    (thr Bidir.Protocol.Tdbc 10. > thr Bidir.Protocol.Mabc 10.);
  Alcotest.(check bool) "HBC >= MABC at 0dB" true
    (thr Bidir.Protocol.Hbc 0. >= thr Bidir.Protocol.Mabc 0. -. 1e-4)

let test_decode_outcome_consistent_with_bounds () =
  (* adaptive zero-backoff schedules must be decodable: the simulator's
     success logic agrees with the inner-bound feasibility *)
  let gains = paper_gains in
  List.iter
    (fun protocol ->
      let r =
        Netsim.Runner.run
          (Netsim.Runner.default_config ~protocol ~power_db:5. ~gains
             ~blocks:10 ~block_symbols:5_000 ())
      in
      Alcotest.(check (float 1e-9)) "no outage" 0.
        (Netsim.Metrics.outage_rate r.Netsim.Runner.metrics))
    Bidir.Protocol.all

let test_backoff_under_fading_reduces_outage () =
  let fading seed = Channel.Fading.create ~rng_seed:seed ~mean:paper_gains () in
  let base =
    Netsim.Runner.default_config ~protocol:Bidir.Protocol.Mabc ~power_db:10.
      ~gains:paper_gains ~blocks:200 ~block_symbols:1_000 ()
  in
  (* adaptive with full CSI never misses, even under fading *)
  let adaptive =
    Netsim.Runner.run { base with Netsim.Runner.fading = fading 7 }
  in
  Alcotest.(check (float 1e-9)) "adaptive: no outage" 0.
    (Netsim.Metrics.outage_rate adaptive.Netsim.Runner.metrics);
  (* a fixed mean-gain schedule misses often; it delivers less *)
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let opt = Bidir.Optimize.sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s in
  let fixed =
    Netsim.Runner.run
      { base with
        Netsim.Runner.fading = fading 7;
        mode =
          Netsim.Runner.Fixed
            { deltas = opt.Bidir.Optimize.deltas;
              ra = opt.Bidir.Optimize.ra;
              rb = opt.Bidir.Optimize.rb;
            };
      }
  in
  Alcotest.(check bool) "fixed schedule suffers outage" true
    (Netsim.Metrics.outage_rate fixed.Netsim.Runner.metrics > 0.2);
  Alcotest.(check bool) "adaptive delivers more" true
    (Netsim.Metrics.throughput adaptive.Netsim.Runner.metrics
     > Netsim.Metrics.throughput fixed.Netsim.Runner.metrics)

let test_runner_determinism () =
  let run () =
    Netsim.Metrics.throughput
      (Netsim.Runner.run
         (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Tdbc
            ~power_db:10. ~gains:paper_gains ~blocks:10 ~block_symbols:1_000 ()))
        .Netsim.Runner.metrics
  in
  Alcotest.(check (float 0.)) "identical reruns" (run ()) (run ())

let test_runner_validation () =
  let base =
    Netsim.Runner.default_config ~protocol:Bidir.Protocol.Mabc ~power_db:0.
      ~gains:paper_gains ()
  in
  Alcotest.check_raises "tiny blocks"
    (Invalid_argument "Runner: block_symbols must be at least 100") (fun () ->
      ignore (Netsim.Runner.run { base with Netsim.Runner.block_symbols = 10 }));
  Alcotest.check_raises "bad backoff"
    (Invalid_argument "Runner: backoff must be in [0, 1)") (fun () ->
      ignore
        (Netsim.Runner.run
           { base with Netsim.Runner.mode = Netsim.Runner.Adaptive { backoff = 1. } }));
  Alcotest.check_raises "schedule arity"
    (Invalid_argument "Runner: schedule arity does not match the protocol")
    (fun () ->
      ignore
        (Netsim.Runner.run
           { base with
             Netsim.Runner.mode =
               Netsim.Runner.Fixed { deltas = [| 1. |]; ra = 0.1; rb = 0.1 };
           }))

let test_elapsed_symbols () =
  let r =
    Netsim.Runner.run
      (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Dt ~power_db:0.
         ~gains:paper_gains ~blocks:5 ~block_symbols:1_000 ())
  in
  Alcotest.(check (float 1e-9)) "5 blocks x 1000" 5_000.
    r.Netsim.Runner.elapsed_symbols

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_throughput_below_analytic =
  QCheck.Test.make ~count:20
    ~name:"measured throughput never exceeds the analytic optimum"
    QCheck.(pair (float_range (-5.) 15.) (int_range 0 4))
    (fun (power_db, pidx) ->
      let protocol = List.nth Bidir.Protocol.all pidx in
      let r =
        Netsim.Runner.run
          (Netsim.Runner.default_config ~protocol ~power_db ~gains:paper_gains
             ~blocks:5 ~block_symbols:2_000 ())
      in
      Netsim.Metrics.throughput r.Netsim.Runner.metrics
      <= r.Netsim.Runner.analytic_mean_sum_rate +. 1e-9)

let prop_queue_heap_invariant =
  QCheck.Test.make ~count:100 ~name:"queue pops in sorted order"
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0. 1000.))
    (fun times ->
      let q = Netsim.Event_queue.create () in
      List.iter (fun t -> Netsim.Event_queue.push q ~time:t t) times;
      let rec drain last =
        match Netsim.Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_throughput_below_analytic; prop_queue_heap_invariant ]

let suites =
  [ ( "netsim.event_queue",
      [ Alcotest.test_case "order" `Quick test_queue_order;
        Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
        Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
        Alcotest.test_case "size and nan" `Quick test_queue_size_and_nan;
        Alcotest.test_case "pop releases payload" `Quick
          test_queue_pop_releases_payload;
      ] );
    ( "netsim.engine",
      [ Alcotest.test_case "clock" `Quick test_engine_clock;
        Alcotest.test_case "until" `Quick test_engine_until;
        Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
      ] );
    ( "netsim.phy",
      [ Alcotest.test_case "p2p" `Quick test_phy_p2p;
        Alcotest.test_case "mac pentagon" `Quick test_phy_mac_pentagon;
        Alcotest.test_case "combined" `Quick test_phy_combined;
      ] );
    ( "netsim.packet",
      [ Alcotest.test_case "round trip" `Quick test_packet_round_trip;
        Alcotest.test_case "corruption detected" `Quick test_packet_corruption_detected;
        Alcotest.test_case "relay xor" `Quick test_packet_xor;
      ] );
    ( "netsim.metrics",
      [ Alcotest.test_case "accounting" `Quick test_metrics_accounting ] );
    ( "netsim.runner",
      [ Alcotest.test_case "adaptive = analytic" `Quick test_adaptive_matches_analytic;
        Alcotest.test_case "ordering matches paper" `Quick test_simulated_ordering_matches_paper;
        Alcotest.test_case "consistent with bounds" `Quick test_decode_outcome_consistent_with_bounds;
        Alcotest.test_case "fading: adaptive vs fixed" `Quick test_backoff_under_fading_reduces_outage;
        Alcotest.test_case "determinism" `Quick test_runner_determinism;
        Alcotest.test_case "validation" `Quick test_runner_validation;
        Alcotest.test_case "virtual clock" `Quick test_elapsed_symbols;
      ] );
    ("netsim.properties", qcheck_cases);
  ]
