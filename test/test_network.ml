(* Property tests pinning the multi-pair network layer to the
   single-pair theory: the K = 1, R = 1 degeneracy must reproduce
   [Bidir.Optimize] byte-for-byte, every chosen (pair, relay) system
   must keep its inner region inside its outer, and the assignment LP
   must be monotone in the resources (relays, power) and never below
   the greedy feasible point. Plus the determinism contract for the
   network campaign workload (domain counts, batch splits,
   checkpoint/resume) and the property backfill for
   [Bidir.Relay_selection]. *)

module N = Network
module RS = Bidir.Relay_selection
module R = Campaign.Runner
module W = Campaign.Workloads
module J = Telemetry.Json

let gains_gen =
  QCheck.(
    triple (float_range 0. 10.) (float_range 0. 10.) (float_range 0. 10.))

let gains_of (g_ab, g_ar, g_br) = Channel.Gains.of_db ~g_ab ~g_ar ~g_br

(* ------------------------------------------------------------------ *)
(* Degeneracy: K = 1, R = 1 is the seed theory                         *)
(* ------------------------------------------------------------------ *)

let single_pair ~power ~gains =
  N.Scenario.make ~relay_ids:[| "r00" |]
    ~pairs:
      [ { N.Scenario.pair_id = "p0000";
          power;
          candidates = [| { RS.relay_id = "r00"; gains } |];
        }
      ]

(* Byte-identical, not merely close: the degenerate network passes
   through the same memoized [Optimize.sum_rate] and grants the single
   pair a share of exactly 1.0, so every float must be [=] to the
   single-pair result — under both allocation strategies. *)
let prop_degenerate_matches_optimize =
  QCheck.Test.make ~count:200
    ~name:"K=1/R=1 reproduces Optimize.sum_rate byte-for-byte (per protocol)"
    QCheck.(pair (float_range (-5.) 15.) gains_gen)
    (fun (power_db, g) ->
      let gains = gains_of g in
      let power = Numerics.Float_utils.db_to_lin power_db in
      let sc = single_pair ~power ~gains in
      List.for_all
        (fun protocol ->
          let reference =
            Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner
              (Bidir.Gaussian.scenario_lin ~power ~gains)
          in
          let table = N.Assign.rate_table ~protocols:[ protocol ] sc in
          let choice = table.N.Assign.choices.(0).(0) in
          choice.RS.sum_rate = reference.Bidir.Optimize.sum_rate
          && choice.RS.deltas = reference.Bidir.Optimize.deltas
          && List.for_all
               (fun strategy ->
                 let sol = N.Assign.solve_table strategy table in
                 sol.N.Assign.sum_rate = reference.Bidir.Optimize.sum_rate
                 && sol.N.Assign.per_pair
                    = [ ("p0000", reference.Bidir.Optimize.sum_rate) ]
                 &&
                 match sol.N.Assign.links with
                 | [ l ] ->
                   l.N.Assign.share = 1.
                   && l.N.Assign.rate = reference.Bidir.Optimize.sum_rate
                   && String.equal l.N.Assign.relay_id "r00"
                   && Bidir.Protocol.equal l.N.Assign.protocol protocol
                 | _ -> false)
               [ N.Assign.Greedy; N.Assign.Lp ])
        Bidir.Protocol.coded)

(* ------------------------------------------------------------------ *)
(* Per-pair bound sanity on random topologies                          *)
(* ------------------------------------------------------------------ *)

let prop_inner_within_outer_per_pair =
  QCheck.Test.make ~count:6
    ~name:"every (pair, relay) system keeps inner region inside outer"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sc = N.Scenario.random ~pairs:3 ~relays:2 ~seed () in
      let table = N.Assign.rate_table sc in
      let ok = ref true in
      Array.iteri
        (fun k row ->
          let power = sc.N.Scenario.pairs.(k).N.Scenario.power in
          Array.iter
            (fun (choice : RS.choice) ->
              let s =
                Bidir.Gaussian.scenario_lin ~power
                  ~gains:choice.RS.relay.RS.gains
              in
              let p = choice.RS.protocol in
              let inner = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
              let outer = Bidir.Gaussian.bounds p Bidir.Bound.Outer s in
              if not (Bidir.Rate_region.contains_region ~weights:9 outer inner)
              then ok := false)
            row)
        table.N.Assign.choices;
      !ok)

(* ------------------------------------------------------------------ *)
(* Assignment LP: monotonicity and dominance                          *)
(* ------------------------------------------------------------------ *)

(* more relays can only grow the feasible polytope *)
let prop_sum_rate_monotone_in_relays =
  QCheck.Test.make ~count:6 ~name:"LP sum rate monotone in relay count"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sc = N.Scenario.random ~pairs:4 ~relays:3 ~seed () in
      let rate keep =
        (N.Assign.solve N.Assign.Lp (N.Scenario.restrict_relays sc ~keep))
          .N.Assign.sum_rate
      in
      let r1 = rate 1 and r2 = rate 2 and r3 = rate 3 in
      r1 <= r2 +. 1e-9 && r2 <= r3 +. 1e-9)

(* more power grows every standalone rate, hence every LP coefficient *)
let prop_sum_rate_monotone_in_power =
  QCheck.Test.make ~count:6 ~name:"LP sum rate monotone in power"
    QCheck.(pair (int_range 0 10_000) (float_range 1.2 4.))
    (fun (seed, factor) ->
      let sc = N.Scenario.random ~pairs:4 ~relays:2 ~seed () in
      let rate s = (N.Assign.solve N.Assign.Lp s).N.Assign.sum_rate in
      rate sc <= rate (N.Scenario.scale_power sc ~factor) +. 1e-9)

(* the greedy allocation is a feasible point of the assignment LP, and
   both must respect the unit-airtime rows *)
let prop_lp_dominates_greedy =
  QCheck.Test.make ~count:8
    ~name:"LP sum rate >= greedy; airtime constraints respected"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sc = N.Scenario.random ~pairs:5 ~relays:2 ~seed () in
      let table = N.Assign.rate_table sc in
      let greedy = N.Assign.solve_table N.Assign.Greedy table in
      let lp = N.Assign.solve_table N.Assign.Lp table in
      let airtime_ok (sol : N.Assign.solution) =
        let by f =
          let tbl = Hashtbl.create 8 in
          List.iter
            (fun (l : N.Assign.link) ->
              let key = f l in
              let prev = Option.value ~default:0. (Hashtbl.find_opt tbl key) in
              Hashtbl.replace tbl key (prev +. l.N.Assign.share))
            sol.N.Assign.links;
          Hashtbl.fold (fun _ v acc -> acc && v <= 1. +. 1e-9) tbl true
        in
        List.for_all
          (fun (l : N.Assign.link) ->
            l.N.Assign.share > 0. && l.N.Assign.share <= 1. +. 1e-9)
          sol.N.Assign.links
        && by (fun l -> l.N.Assign.pair_id)
        && by (fun l -> l.N.Assign.relay_id)
      in
      lp.N.Assign.sum_rate >= greedy.N.Assign.sum_rate -. 1e-9
      && airtime_ok greedy && airtime_ok lp)

(* ------------------------------------------------------------------ *)
(* Campaign workload determinism                                       *)
(* ------------------------------------------------------------------ *)

let render result = J.to_string (R.result_to_json result)

let test_campaign_domains_byte_identical () =
  let run domains =
    render
      (R.run
         (R.default_config ~seed:41 ~domains ~batch:4 ~replications:12 ())
         (W.network ~pairs:5 ~relays:2 ()))
  in
  let one = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "domains=%d matches domains=1" domains)
        one (run domains))
    [ 2; 8 ]

let test_campaign_batch_invariant () =
  let run batch =
    render
      (R.run
         (R.default_config ~seed:13 ~batch ~replications:10 ())
         (W.network ~pairs:4 ~relays:2 ()))
  in
  let baseline = run 32 in
  List.iter
    (fun batch ->
      Alcotest.(check string)
        (Printf.sprintf "batch=%d matches batch=32" batch)
        baseline (run batch))
    [ 1; 5; 10 ]

let with_temp_checkpoint f =
  let path = Filename.temp_file "network_ckpt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_campaign_resume_byte_identical () =
  with_temp_checkpoint (fun path ->
      let workload () = W.network ~pairs:4 ~relays:2 () in
      let fresh =
        R.run
          (R.default_config ~seed:29 ~batch:3 ~replications:12 ())
          (workload ())
      in
      let partial =
        R.run
          (R.default_config ~seed:29 ~batch:3 ~checkpoint:path
             ~replications:6 ())
          (workload ())
      in
      Alcotest.(check int) "partial run completed" 6 partial.R.completed;
      let resumed =
        R.run
          (R.default_config ~seed:29 ~batch:3 ~checkpoint:path ~resume:true
             ~domains:3 ~replications:12 ())
          (workload ())
      in
      Alcotest.(check string) "resumed result matches uninterrupted run"
        (render fresh) (render resumed))

(* the LP never loses to greedy, so the workload's gap metric is a
   non-negative mean with merged counters *)
let test_campaign_gap_non_negative () =
  let result =
    R.run
      (R.default_config ~seed:7 ~batch:4 ~replications:8 ())
      (W.network ~pairs:5 ~relays:2 ())
  in
  let gap = List.assoc "greedy_gap" result.R.values in
  Alcotest.(check bool) "mean greedy gap >= 0" true (gap.R.mean >= -1e-12);
  Alcotest.(check int) "pairs counter merged" (8 * 5)
    (List.assoc "pairs" result.R.counters);
  Alcotest.(check int) "relays counter merged" (8 * 2)
    (List.assoc "relays" result.R.counters)

(* ------------------------------------------------------------------ *)
(* Relay_selection backfill                                            *)
(* ------------------------------------------------------------------ *)

let cands_of gains_list =
  List.mapi
    (fun i g -> { RS.relay_id = Printf.sprintf "c%02d" i; gains = gains_of g })
    gains_list

let prop_best_matches_brute_force =
  QCheck.Test.make ~count:40
    ~name:"best equals the brute-force max over (candidate, protocol)"
    QCheck.(
      pair (float_range (-5.) 15.)
        (list_of_size Gen.(int_range 1 4) gains_gen))
    (fun (power_db, gains_list) ->
      let power = Numerics.Float_utils.db_to_lin power_db in
      let cands = cands_of gains_list in
      let best = RS.best ~power cands in
      let brute =
        List.fold_left
          (fun acc (cand : RS.candidate) ->
            List.fold_left
              (fun acc p ->
                Float.max acc
                  (Bidir.Optimize.sum_rate p Bidir.Bound.Inner
                     (Bidir.Gaussian.scenario_lin ~power ~gains:cand.RS.gains))
                    .Bidir.Optimize.sum_rate)
              acc Bidir.Protocol.all)
          neg_infinity cands
      in
      Float.abs (best.RS.sum_rate -. brute) <= 1e-12)

let prop_best_tie_keeps_earlier =
  QCheck.Test.make ~count:30
    ~name:"duplicated candidates: the earlier copy wins every tie"
    QCheck.(
      pair (float_range (-5.) 15.)
        (list_of_size Gen.(int_range 1 3) gains_gen))
    (fun (power_db, gains_list) ->
      let power = Numerics.Float_utils.db_to_lin power_db in
      let cands = cands_of gains_list in
      let best = RS.best ~power cands in
      (* append an exact copy of every candidate under a fresh id: no
         duplicate is strictly better, so the winner must not move *)
      let dup =
        List.map (fun c -> { c with RS.relay_id = c.RS.relay_id ^ "'" }) cands
      in
      let best2 = RS.best ~power (cands @ dup) in
      String.equal best2.RS.relay.RS.relay_id best.RS.relay.RS.relay_id
      && best2.RS.sum_rate = best.RS.sum_rate)

let test_best_empty_raises () =
  (match RS.best ~power:10. [] with
  | (_ : RS.choice) -> Alcotest.fail "empty candidate list accepted"
  | exception Invalid_argument _ -> ());
  let cand =
    { RS.relay_id = "r"; gains = Channel.Gains.of_db ~g_ab:1. ~g_ar:2. ~g_br:3. }
  in
  match RS.best ~protocols:[] ~power:10. [ cand ] with
  | (_ : RS.choice) -> Alcotest.fail "empty protocol list accepted"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Scenario validation                                                 *)
(* ------------------------------------------------------------------ *)

let test_scenario_validation () =
  let cand id = { RS.relay_id = id; gains = gains_of (1., 2., 3.) } in
  let pair ?(power = 10.) candidates =
    { N.Scenario.pair_id = "p0000"; power; candidates }
  in
  let invalid msg f =
    match ignore (f () : N.Scenario.t) with
    | () -> Alcotest.failf "%s: expected Invalid_argument" msg
    | exception Invalid_argument _ -> ()
  in
  invalid "no relays" (fun () ->
      N.Scenario.make ~relay_ids:[||] ~pairs:[ pair [||] ]);
  invalid "no pairs" (fun () ->
      N.Scenario.make ~relay_ids:[| "r00" |] ~pairs:[]);
  invalid "candidate count mismatch" (fun () ->
      N.Scenario.make ~relay_ids:[| "r00"; "r01" |]
        ~pairs:[ pair [| cand "r00" |] ]);
  invalid "candidate id mismatch" (fun () ->
      N.Scenario.make ~relay_ids:[| "r00" |] ~pairs:[ pair [| cand "r01" |] ]);
  invalid "non-positive power" (fun () ->
      N.Scenario.make ~relay_ids:[| "r00" |]
        ~pairs:[ pair ~power:0. [| cand "r00" |] ]);
  let sc = N.Scenario.random ~pairs:3 ~relays:2 ~seed:1 () in
  invalid "restrict_relays keep=0" (fun () ->
      N.Scenario.restrict_relays sc ~keep:0);
  invalid "restrict_relays keep too large" (fun () ->
      N.Scenario.restrict_relays sc ~keep:3);
  invalid "scale_power factor=0" (fun () ->
      N.Scenario.scale_power sc ~factor:0.);
  (* equal seeds give byte-identical topologies *)
  let again = N.Scenario.random ~pairs:3 ~relays:2 ~seed:1 () in
  Alcotest.(check bool) "random scenario deterministic in seed" true
    (sc = again)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_degenerate_matches_optimize;
      prop_inner_within_outer_per_pair;
      prop_sum_rate_monotone_in_relays;
      prop_sum_rate_monotone_in_power;
      prop_lp_dominates_greedy;
      prop_best_matches_brute_force;
      prop_best_tie_keeps_earlier;
    ]

let suites =
  [ ("network.properties", qcheck_cases);
    ( "network.campaign",
      [ Alcotest.test_case "byte-identical across domains" `Quick
          test_campaign_domains_byte_identical;
        Alcotest.test_case "batch size does not change results" `Quick
          test_campaign_batch_invariant;
        Alcotest.test_case "checkpoint/resume matches uninterrupted run"
          `Quick test_campaign_resume_byte_identical;
        Alcotest.test_case "greedy gap non-negative, counters merged" `Quick
          test_campaign_gap_non_negative;
      ] );
    ( "network.validation",
      [ Alcotest.test_case "relay_selection empty inputs raise" `Quick
          test_best_empty_raises;
        Alcotest.test_case "scenario validation" `Quick
          test_scenario_validation;
      ] );
  ]
