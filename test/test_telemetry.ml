(* Tests for the telemetry subsystem: log-bucket histograms, the
   metrics registry, the JSON emitter/parser, hierarchical spans and
   the Chrome-trace sink — including the guarantee that the span set a
   workload produces is independent of the pool's domain count. *)

module H = Telemetry.Histogram
module J = Telemetry.Json

let feq = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Histogram edge cases                                                *)
(* ------------------------------------------------------------------ *)

let test_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  feq "sum" 0. (H.sum h);
  feq "mean" 0. (H.mean h);
  let p50, p90, p99 = H.percentiles h in
  feq "p50" 0. p50;
  feq "p90" 0. p90;
  feq "p99" 0. p99

let test_hist_single_sample () =
  let h = H.create () in
  H.observe h 0.0123;
  (* estimates are clamped to [min, max], so one sample reports exactly *)
  let p50, p90, p99 = H.percentiles h in
  feq "p50" 0.0123 p50;
  feq "p90" 0.0123 p90;
  feq "p99" 0.0123 p99;
  feq "mean" 0.0123 (H.mean h);
  feq "min" 0.0123 (H.min_value h);
  feq "max" 0.0123 (H.max_value h)

let test_hist_bucket_boundaries () =
  let h = H.create ~lo:1. ~growth:2. ~buckets:8 () in
  (* below lo: underflow bucket 0 *)
  Alcotest.(check int) "underflow" 0 (H.bucket_index h 0.5);
  (* exact boundaries land in the bucket they open *)
  Alcotest.(check int) "at lo" 1 (H.bucket_index h 1.);
  Alcotest.(check int) "at 2" 2 (H.bucket_index h 2.);
  Alcotest.(check int) "at 4" 3 (H.bucket_index h 4.);
  Alcotest.(check int) "just under 2" 1 (H.bucket_index h 1.9999);
  (* far beyond the range: overflow bucket *)
  Alcotest.(check int) "overflow" (H.num_buckets h - 1)
    (H.bucket_index h 1e12);
  (* the documented invariant at every index *)
  List.iter
    (fun v ->
      let i = H.bucket_index h v in
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "lower_bound <= %g" v)
          true
          (H.bucket_lower_bound h i <= v);
      if i < H.num_buckets h - 1 then
        Alcotest.(check bool)
          (Printf.sprintf "%g < next lower_bound" v)
          true
          (v < H.bucket_lower_bound h (i + 1)))
    [ 0.1; 1.; 1.5; 2.; 3.9999; 4.; 60.; 64.; 100. ]

let test_hist_quantile_resolution () =
  let h = H.create ~lo:1e-3 ~growth:2. ~buckets:64 () in
  List.iter (H.observe h) [ 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1.; 1.; 100. ];
  let p50 = H.quantile h 0.5 in
  (* within one growth factor of the true median *)
  Alcotest.(check bool) "p50 near 1" true (p50 >= 0.5 && p50 <= 2.);
  let p99 = H.quantile h 0.99 in
  Alcotest.(check bool) "p99 near 100" true (p99 >= 50. && p99 <= 100.)

(* Invalid and sub-lo samples: counted in the underflow bucket, clamped
   so they never distort sum/min/quantiles (the documented rule). *)
let test_hist_underflow_clamp () =
  let h = H.create ~lo:1. ~growth:2. ~buckets:8 () in
  H.observe h Float.nan;
  H.observe h (-3.);
  H.observe h Float.infinity;
  H.observe h Float.neg_infinity;
  Alcotest.(check int) "all counted" 4 (H.count h);
  Alcotest.(check int) "all in underflow" 4 (H.underflow_count h);
  feq "sum stays finite" 0. (H.sum h);
  feq "mean stays finite" 0. (H.mean h);
  feq "min clamped to 0" 0. (H.min_value h);
  feq "max clamped to 0" 0. (H.max_value h);
  let p50, _, p99 = H.percentiles h in
  feq "p50 not distorted" 0. p50;
  feq "p99 not distorted" 0. p99;
  (* a genuine sub-lo sample keeps its true value in min/sum *)
  let g = H.create ~lo:1. ~growth:2. ~buckets:8 () in
  H.observe g 0.25;
  H.observe g 2.;
  Alcotest.(check int) "one underflow" 1 (H.underflow_count g);
  feq "true min kept" 0.25 (H.min_value g);
  feq "true sum kept" 2.25 (H.sum g);
  (* quantile estimates for the underflow bucket clamp to observed min *)
  Alcotest.(check bool) "quantile within [min, max]" true
    (let q = H.quantile g 0.25 in
     q >= 0.25 && q <= 2.)

let test_hist_state_roundtrip () =
  let h = H.create ~lo:1e-3 ~growth:2. ~buckets:16 () in
  List.iter (H.observe h) [ 0.5; 0.002; 7.; 7.; 1e9; -1. ];
  let j = H.to_json_state h in
  (* through the emitter and parser, as snapshots do *)
  match Result.bind (J.parse (J.to_string j)) H.of_json_state with
  | Error m -> Alcotest.failf "state roundtrip: %s" m
  | Ok h' ->
    Alcotest.(check bool) "same geometry" true (H.same_geometry h h');
    Alcotest.(check (array int)) "buckets" (H.bucket_counts h)
      (H.bucket_counts h');
    Alcotest.(check int) "count" (H.count h) (H.count h');
    feq "sum" (H.sum h) (H.sum h');
    feq "min" (H.min_value h) (H.min_value h');
    feq "max" (H.max_value h) (H.max_value h')

let test_hist_merge_exact () =
  let a = H.create () and b = H.create () in
  List.iter (H.observe a) [ 1.; 2.; 3. ];
  List.iter (H.observe b) [ 10.; 0.5 ];
  let m = H.merge a b in
  Alcotest.(check int) "count" 5 (H.count m);
  feq "min" 0.5 (H.min_value m);
  feq "max" 10. (H.max_value m);
  let direct = H.create () in
  List.iter (H.observe direct) [ 1.; 2.; 3.; 10.; 0.5 ];
  Alcotest.(check (array int)) "bucket-wise" (H.bucket_counts direct)
    (H.bucket_counts m)

let test_hist_merge_geometry_mismatch () =
  let a = H.create ~lo:1. () and b = H.create ~lo:2. () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Histogram.merge: geometry mismatch") (fun () ->
      ignore (H.merge a b))

let merge_associative =
  (* small rationals so min/max/bucket counts are all exact *)
  let sample = QCheck.(list (map (fun n -> float_of_int n /. 7.) small_nat)) in
  QCheck.Test.make ~count:200 ~name:"histogram merge is associative"
    (QCheck.triple sample sample sample)
    (fun (xs, ys, zs) ->
      let mk vs =
        let h = H.create () in
        List.iter (H.observe h) vs;
        h
      in
      let a = mk xs and b = mk ys and c = mk zs in
      let l = H.merge (H.merge a b) c and r = H.merge a (H.merge b c) in
      H.bucket_counts l = H.bucket_counts r
      && H.count l = H.count r
      && H.min_value l = H.min_value r
      && H.max_value l = H.max_value r)

(* [observe_int] is the allocation-free path the LP engine feeds pivot
   counts through; it must be indistinguishable from observing the
   same value as a float through every accessor (integer counts are
   float-exact far past any realistic pivot total). *)
let observe_int_matches_observe =
  let sample = QCheck.(list (int_bound 5000)) in
  QCheck.Test.make ~count:300 ~name:"observe_int equals observe on ints"
    sample (fun ns ->
      let hi = H.create ~lo:1. ~growth:2. ~buckets:24 () in
      let hf = H.create ~lo:1. ~growth:2. ~buckets:24 () in
      List.iter (H.observe_int hi) ns;
      List.iter (fun n -> H.observe hf (float_of_int n)) ns;
      H.bucket_counts hi = H.bucket_counts hf
      && H.count hi = H.count hf
      && H.sum hi = H.sum hf
      && H.min_value hi = H.min_value hf
      && H.max_value hi = H.max_value hf
      && H.percentiles hi = H.percentiles hf
      && J.to_string (H.to_json_state hi) = J.to_string (H.to_json_state hf))

let test_observe_int_mixed () =
  (* int and float observations interleave on one histogram; negatives
     clamp to zero exactly like [observe] *)
  let h = H.create ~lo:1. ~growth:2. ~buckets:24 () in
  H.observe_int h 3;
  H.observe h 0.5;
  H.observe_int h (-2);
  Alcotest.(check int) "count" 3 (H.count h);
  feq "sum" 3.5 (H.sum h);
  feq "min" 0. (H.min_value h);
  feq "max" 3. (H.max_value h);
  let h' = H.copy h in
  Alcotest.(check int) "copy carries int cells" (H.count h) (H.count h');
  feq "copy sum" (H.sum h) (H.sum h');
  H.reset h;
  Alcotest.(check int) "reset clears int cells" 0 (H.count h);
  feq "reset sum" 0. (H.sum h)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  let c = Telemetry.Metrics.counter "test.registry.counter" in
  let before = Telemetry.Metrics.value c in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.add c 2;
  Alcotest.(check int) "incremented" (before + 3) (Telemetry.Metrics.value c);
  (* same name resolves to the same cell *)
  let c' = Telemetry.Metrics.counter "test.registry.counter" in
  Telemetry.Metrics.incr c';
  Alcotest.(check int) "shared" (before + 4) (Telemetry.Metrics.value c);
  (* kind clash is a programming error *)
  (try
     ignore (Telemetry.Metrics.histogram "test.registry.counter");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let h = Telemetry.Metrics.histogram "test.registry.hist" in
  Telemetry.Metrics.observe h 1.;
  Alcotest.(check bool) "registered" true
    (List.mem_assoc "test.registry.hist" (Telemetry.Metrics.histograms ()))

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("a", J.Int 42);
        ("b", J.Float 1.5);
        ("c", J.String "he\"llo\n\t\\world");
        ("d", J.List [ J.Bool true; J.Bool false; J.Null ]);
        ("e", J.Obj [ ("nested", J.List [ J.Int (-7); J.Float 1e-9 ]) ]);
        ("f", J.List []);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "compact" true (J.equal v v')
  | Error m -> Alcotest.failf "compact parse: %s" m);
  match J.parse (J.to_string_pretty v) with
  | Ok v' -> Alcotest.(check bool) "pretty" true (J.equal v v')
  | Error m -> Alcotest.failf "pretty parse: %s" m

let test_json_parse_standard () =
  (match J.parse "  [1, 2.5e2, \"\\u0041\", true, null] " with
  | Ok (J.List [ J.Int 1; J.Float 250.; J.String "A"; J.Bool true; J.Null ])
    ->
    ()
  | Ok other -> Alcotest.failf "unexpected value: %s" (J.to_string other)
  | Error m -> Alcotest.failf "parse: %s" m);
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "expected parse failure on %S" s
      | Error _ -> ())
    [ "{"; "tru"; "1.2.3"; "[1,]"; "\"unterminated"; "{\"a\" 1}"; "" ]

let test_json_nonfinite () =
  Alcotest.(check string) "nan" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string)
    "inf" "null"
    (J.to_string (J.Float Float.infinity))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_disabled_is_free () =
  (* not started: no events are collected *)
  let r = Telemetry.Span.with_span "untracked" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check bool) "no event" true
    (not
       (List.exists
          (fun e -> e.Telemetry.Span.name = "untracked")
          (Telemetry.Span.events ())))

let test_span_nesting () =
  Telemetry.Span.start ();
  Telemetry.Span.with_span "outer" (fun () ->
      Telemetry.Span.with_span "inner" (fun () -> ()));
  Telemetry.Span.stop ();
  let evs = Telemetry.Span.events () in
  let find n = List.find (fun e -> e.Telemetry.Span.name = n) evs in
  Alcotest.(check int) "two events" 2 (List.length evs);
  Alcotest.(check string) "outer at root" "" (find "outer").Telemetry.Span.parent;
  Alcotest.(check string)
    "inner nested" "outer"
    (find "inner").Telemetry.Span.parent;
  Alcotest.(check bool) "inner within outer" true
    ((find "inner").Telemetry.Span.ts >= (find "outer").Telemetry.Span.ts)

exception Boom

(* The Fun.protect path: a raising [f] must still record its span and
   restore the parent stack, so later spans nest correctly. *)
let test_span_exception_records_and_restores () =
  Telemetry.Span.start ();
  Telemetry.Span.with_span "outer" (fun () ->
      (try
         Telemetry.Span.with_span "failing" (fun () -> raise Boom)
       with Boom -> ());
      Alcotest.(check (list string))
        "stack restored after raise" [ "outer" ]
        (Telemetry.Span.context ());
      Telemetry.Span.with_span "after" (fun () -> ()));
  Telemetry.Span.stop ();
  Alcotest.(check (list string)) "stack empty at root" []
    (Telemetry.Span.context ());
  let evs = Telemetry.Span.events () in
  let find n = List.find (fun e -> e.Telemetry.Span.name = n) evs in
  Alcotest.(check string)
    "raising span recorded with its parent" "outer"
    (find "failing").Telemetry.Span.parent;
  Alcotest.(check string)
    "later sibling sees the right parent" "outer"
    (find "after").Telemetry.Span.parent

(* ------------------------------------------------------------------ *)
(* Chrome trace: well-formed, and deterministic across domain counts   *)
(* ------------------------------------------------------------------ *)

(* A real instrumented workload: one figure sweep from a cold cache.
   Every memo key is distinct per pool item, so the spans fired inside
   compute thunks are the same set however the pool schedules them. *)
let trace_of_run ~domains =
  Engine.Memo.clear_all ();
  Engine.Pool.set_default_domains domains;
  Telemetry.Span.start ();
  ignore (Bidir.Figures.fig3 ~samples:9 ());
  Telemetry.Span.stop ();
  Engine.Pool.set_default_domains 1;
  Telemetry.Span.events ()

let test_chrome_trace_wellformed () =
  let evs = trace_of_run ~domains:1 in
  let s = Telemetry.Sink.chrome_trace_string evs in
  match J.parse s with
  | Error m -> Alcotest.failf "trace JSON does not parse: %s" m
  | Ok j -> (
    match J.member "traceEvents" j with
    | Some (J.List events) ->
      Alcotest.(check bool) "has events" true (events <> []);
      List.iter
        (fun e ->
          List.iter
            (fun field ->
              if J.member field e = None then
                Alcotest.failf "event missing %S: %s" field (J.to_string e))
            [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          match J.member "ph" e with
          | Some (J.String "X") -> ()
          | _ -> Alcotest.fail "ph must be \"X\"")
        events
    | _ -> Alcotest.fail "no traceEvents array")

(* Pool-management spans (cat "pool") describe scheduling, which depends
   on the chunk count; everything else must match exactly. *)
let span_multiset evs =
  List.filter (fun e -> e.Telemetry.Span.cat <> "pool") evs
  |> List.map (fun e -> e.Telemetry.Span.name)
  |> List.sort compare

let test_trace_deterministic_across_domains () =
  let seq = span_multiset (trace_of_run ~domains:1) in
  let par = span_multiset (trace_of_run ~domains:4) in
  Alcotest.(check bool) "nonempty" true (seq <> []);
  Alcotest.(check (list string)) "same spans modulo scheduling" seq par

(* ------------------------------------------------------------------ *)
(* Netsim metrics on the shared histogram type                         *)
(* ------------------------------------------------------------------ *)

let test_netsim_block_bits () =
  let m = Netsim.Metrics.create () in
  Netsim.Metrics.record_block m ~symbols:100 ~bits_a:500 ~bits_b:300
    ~delivered_a:true ~delivered_b:true;
  Netsim.Metrics.record_block m ~symbols:100 ~bits_a:500 ~bits_b:300
    ~delivered_a:false ~delivered_b:false;
  let h = Netsim.Metrics.block_bits_histogram m in
  Alcotest.(check int) "one sample per block" 2 (Telemetry.Histogram.count h);
  feq "max is full delivery" 800. (Telemetry.Histogram.max_value h);
  feq "min is total outage" 0. (Telemetry.Histogram.min_value h)

let test_netsim_metrics_merge () =
  let mk delivered =
    let m = Netsim.Metrics.create () in
    Netsim.Metrics.record_block m ~symbols:50 ~bits_a:100 ~bits_b:100
      ~delivered_a:delivered ~delivered_b:delivered;
    if not delivered then Netsim.Metrics.record_phase_outage m ~phase:1;
    m
  in
  let merged = Netsim.Metrics.merge (mk true) (mk false) in
  Alcotest.(check int) "blocks" 2 (Netsim.Metrics.blocks merged);
  Alcotest.(check int) "symbols" 100 (Netsim.Metrics.symbols merged);
  Alcotest.(check int) "delivered" 200 (Netsim.Metrics.delivered_bits merged);
  Alcotest.(check (list (pair int int)))
    "outages" [ (1, 1) ]
    (Netsim.Metrics.phase_outages merged);
  Alcotest.(check int) "histogram carried" 2
    (Telemetry.Histogram.count (Netsim.Metrics.block_bits_histogram merged))

(* ------------------------------------------------------------------ *)
(* Resource accounting                                                 *)
(* ------------------------------------------------------------------ *)

(* allocate enough to be visible through any GC state *)
let churn () =
  let junk = ref [] in
  for i = 0 to 2_000 do
    junk := Array.make 16 (float_of_int i) :: !junk
  done;
  ignore (Sys.opaque_identity !junk)

let test_resource_delta_monotone () =
  let s0 = Telemetry.Resource.sample () in
  churn ();
  let d1 = Telemetry.Resource.delta_since s0 in
  Alcotest.(check bool) "minor words grew" true
    (d1.Telemetry.Resource.minor_words > 0.);
  Alcotest.(check bool) "alloc bytes grew" true
    (d1.Telemetry.Resource.alloc_bytes > 0.);
  Alcotest.(check bool) "no negative fields" true
    (d1.Telemetry.Resource.major_words >= 0.
    && d1.Telemetry.Resource.promoted_words >= 0.
    && d1.Telemetry.Resource.minor_collections >= 0
    && d1.Telemetry.Resource.major_collections >= 0);
  churn ();
  (* the runtime counters are cumulative, so a later delta from the
     same sample dominates an earlier one *)
  let d2 = Telemetry.Resource.delta_since s0 in
  Alcotest.(check bool) "monotone minor words" true
    (d2.Telemetry.Resource.minor_words >= d1.Telemetry.Resource.minor_words);
  Alcotest.(check bool) "monotone alloc bytes" true
    (d2.Telemetry.Resource.alloc_bytes >= d1.Telemetry.Resource.alloc_bytes);
  Alcotest.(check bool) "monotone collections" true
    (d2.Telemetry.Resource.minor_collections
     >= d1.Telemetry.Resource.minor_collections
    && d2.Telemetry.Resource.major_collections
       >= d1.Telemetry.Resource.major_collections)

let test_resource_account_counters () =
  let minor = Telemetry.Metrics.counter "gc.minor_words" in
  let bytes = Telemetry.Metrics.counter "gc.alloc_bytes" in
  let m0 = Telemetry.Metrics.value minor in
  let b0 = Telemetry.Metrics.value bytes in
  let r = Telemetry.Resource.account (fun () -> churn (); 42) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "gc.minor_words accumulated" true
    (Telemetry.Metrics.value minor > m0);
  Alcotest.(check bool) "gc.alloc_bytes accumulated" true
    (Telemetry.Metrics.value bytes > b0)

let test_resource_span_args () =
  Telemetry.Resource.with_enabled true (fun () ->
      Telemetry.Span.start ();
      Telemetry.Span.with_span "alloc-span" churn;
      Telemetry.Span.stop ());
  let ev =
    List.find
      (fun e -> e.Telemetry.Span.name = "alloc-span")
      (Telemetry.Span.events ())
  in
  let arg k = List.assoc_opt k ev.Telemetry.Span.args in
  (match arg "gc.minor_words" with
  | Some (J.Float w) ->
    Alcotest.(check bool) "span minor words positive" true (w > 0.)
  | _ -> Alcotest.fail "span lacks gc.minor_words arg");
  (match arg "gc.alloc_bytes" with
  | Some (J.Float b) ->
    Alcotest.(check bool) "span alloc bytes positive" true (b > 0.)
  | _ -> Alcotest.fail "span lacks gc.alloc_bytes arg");
  (* with tracking off, spans stay lean *)
  Telemetry.Span.start ();
  Telemetry.Span.with_span "lean-span" churn;
  Telemetry.Span.stop ();
  let lean =
    List.find
      (fun e -> e.Telemetry.Span.name = "lean-span")
      (Telemetry.Span.events ())
  in
  Alcotest.(check bool) "no gc args when disabled" true
    (List.assoc_opt "gc.minor_words" lean.Telemetry.Span.args = None)

(* ------------------------------------------------------------------ *)
(* Span analyzer: self time, flamegraph export                         *)
(* ------------------------------------------------------------------ *)

let spin seconds =
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < seconds do
    ignore (Sys.opaque_identity 0)
  done

(* On a single-domain trace self time telescopes: every child interval
   is contained in (and counted against) its parent, so the sum of self
   times equals the summed root durations up to float addition noise. *)
let test_self_time_conservation () =
  Telemetry.Span.start ();
  Telemetry.Span.with_span "root" (fun () ->
      spin 0.004;
      Telemetry.Span.with_span "a" (fun () ->
          spin 0.003;
          Telemetry.Span.with_span "a1" (fun () -> spin 0.002));
      Telemetry.Span.with_span "b" (fun () -> spin 0.003));
  Telemetry.Span.stop ();
  let t = Telemetry.Analyze.analyze (Telemetry.Span.events ()) in
  let total = Telemetry.Analyze.total_self t in
  let root = Telemetry.Analyze.root_dur t in
  Alcotest.(check bool) "root has duration" true (root > 0.005);
  Alcotest.(check bool)
    (Printf.sprintf "self times telescope (total %.6f vs root %.6f)" total
       root)
    true
    (Float.abs (total -. root) <= 1e-6);
  (* every instance got a positive-or-zero self share *)
  List.iter
    (fun nd ->
      Alcotest.(check bool) "self >= 0" true (nd.Telemetry.Analyze.self >= 0.))
    (Telemetry.Analyze.nodes t)

let test_collapsed_stacks_wellformed () =
  Telemetry.Span.start ();
  Telemetry.Span.with_span "top" (fun () ->
      spin 0.002;
      Telemetry.Span.with_span "mid" (fun () ->
          spin 0.002;
          Telemetry.Span.with_span "leaf" (fun () -> spin 0.002)));
  Telemetry.Span.stop ();
  let t = Telemetry.Analyze.analyze (Telemetry.Span.events ()) in
  let out = Telemetry.Analyze.collapsed t in
  Alcotest.(check bool) "non-empty" true (String.length out > 0);
  let recorded =
    List.map (String.concat ";") (Telemetry.Analyze.paths t)
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.failf "malformed collapsed line %S" line
      | Some i ->
        let path = String.sub line 0 i in
        let weight =
          String.sub line (i + 1) (String.length line - i - 1)
        in
        Alcotest.(check bool)
          (Printf.sprintf "weight %S is a positive int" weight)
          true
          (match int_of_string_opt weight with
          | Some w -> w > 0
          | None -> false);
        Alcotest.(check bool)
          (Printf.sprintf "path %S is a recorded span path" path)
          true
          (List.mem path recorded))
    lines;
  (* focus re-roots at the named span and drops unrelated paths *)
  let focused = Telemetry.Analyze.collapsed ~focus:"mid" t in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        Alcotest.(check bool)
          (Printf.sprintf "focused line %S starts at mid" line)
          true
          (String.length line >= 3 && String.sub line 0 3 = "mid"))
    (String.split_on_char '\n' (String.trim focused))

(* Random span trees: whatever the nesting (including repeated names,
   which stress parent-instance matching), the reconstructed path set
   must be prefix-closed and self times must telescope within the
   root total. *)
type span_tree = T of int * span_tree list

let gen_span_tree =
  QCheck.Gen.(
    sized_size (int_bound 10) @@ fix (fun self n ->
        map2
          (fun label kids -> T (label, kids))
          (int_bound 4)
          (if n <= 0 then return []
           else list_size (int_bound 3) (self (n / 2)))))

let arbitrary_span_tree =
  let rec print (T (l, kids)) =
    Printf.sprintf "T(%d,[%s])" l (String.concat ";" (List.map print kids))
  in
  QCheck.make ~print gen_span_tree

let analyzer_paths_prefix_closed =
  QCheck.Test.make ~count:100 ~name:"analyzer paths are prefix-closed"
    arbitrary_span_tree (fun tree ->
      Telemetry.Span.start ();
      (* each span spins long enough that nested starts are separated by
         more than the analyzer's containment slack — instantaneous
         spans with colliding timestamps are unattributable in any
         trace format, not something the heuristic should untangle *)
      let rec exec (T (label, kids)) =
        Telemetry.Span.with_span ("s" ^ string_of_int label) (fun () ->
            spin 5e-5;
            List.iter exec kids)
      in
      exec tree;
      Telemetry.Span.stop ();
      let t = Telemetry.Analyze.analyze (Telemetry.Span.events ()) in
      let paths = Telemetry.Analyze.paths t in
      let rec prefixes = function
        | [] | [ _ ] -> []
        | x :: rest ->
          [ x ] :: List.map (fun p -> x :: p) (prefixes rest)
      in
      List.for_all
        (fun p -> List.for_all (fun pre -> List.mem pre paths) (prefixes p))
        paths
      && Telemetry.Analyze.total_self t
         <= Telemetry.Analyze.root_dur t +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Resource tracking is observation-only                               *)
(* ------------------------------------------------------------------ *)

(* The invariant the whole layer rests on: enabling GC/allocation
   tracking changes nothing about computed results, at any domain
   count. Rendered figure text is the full value surface. *)
let test_resource_byte_identity () =
  let render ~resource ~domains =
    Engine.Memo.clear_all ();
    Engine.Pool.set_default_domains domains;
    Telemetry.Resource.set_enabled resource;
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Resource.set_enabled false;
        Engine.Pool.set_default_domains 1)
      (fun () -> Report.render_figure (Bidir.Figures.fig3 ~samples:9 ()))
  in
  let off1 = render ~resource:false ~domains:1 in
  let on1 = render ~resource:true ~domains:1 in
  let on4 = render ~resource:true ~domains:4 in
  let off4 = render ~resource:false ~domains:4 in
  Alcotest.(check string) "tracking on = off (1 domain)" off1 on1;
  Alcotest.(check string) "tracking on: 4 domains = 1 domain" on1 on4;
  Alcotest.(check string) "tracking off: 4 domains = 1 domain" off1 off4

(* ------------------------------------------------------------------ *)
(* JSON: full escape set, surrogate pairs, exponents                    *)
(* ------------------------------------------------------------------ *)

let test_json_escapes () =
  (* a surrogate pair decodes to one astral code point (U+1F600) *)
  (match J.parse "\"\\uD83D\\uDE00\"" with
  | Ok (J.String s) ->
    Alcotest.(check string) "astral plane" "\xf0\x9f\x98\x80" s
  | Ok other -> Alcotest.failf "unexpected: %s" (J.to_string other)
  | Error m -> Alcotest.failf "surrogate pair: %s" m);
  (* the remaining simple escapes *)
  (match J.parse "\"\\b\\f\\/\\r\"" with
  | Ok (J.String s) -> Alcotest.(check string) "simple escapes" "\b\x0c/\r" s
  | _ -> Alcotest.fail "simple escapes");
  (* a lone high surrogate is tolerated (kept as its own code point)
     rather than failing the whole live file *)
  (match J.parse "\"a\\uD800b\"" with
  | Ok (J.String s) ->
    Alcotest.(check bool) "lone surrogate tolerated" true
      (String.length s > 2)
  | _ -> Alcotest.fail "lone surrogate");
  (* exponents in every spelling *)
  List.iter
    (fun (src, expect) ->
      match J.parse src with
      | Ok (J.Float f) -> feq src expect f
      | Ok (J.Int i) -> feq src expect (float_of_int i)
      | _ -> Alcotest.failf "number %s" src)
    [ ("1e3", 1000.); ("2.5E-2", 0.025); ("-1.25e+2", -125.);
      ("0.0001", 0.0001) ];
  (* malformed escapes and numbers fail cleanly *)
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "expected failure on %S" s
      | Error _ -> ())
    [ "\"\\u12\""; "\"\\u1_23\""; "\"\\q\""; "+1"; ".5"; "1e"; "-" ]

(* parse . print = id on arbitrary values: what live files rely on. *)
let json_gen =
  let open QCheck.Gen in
  (* printable-plus-escapes strings; keep them short *)
  let str =
    string_size ~gen:
      (oneof [ char_range 'a' 'z'; return '"'; return '\\'; return '\n';
               return '\t'; return '\xc3' ])
      (int_bound 8)
  in
  (* finite floats that round-trip: dyadic rationals scaled by 2^k *)
  let fin_float =
    map2 (fun m k -> ldexp (float_of_int m) (k - 20))
      (int_range (-10000) 10000) (int_bound 40)
  in
  sized_size (int_bound 4) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ return J.Null; map (fun b -> J.Bool b) bool;
            map (fun i -> J.Int i) int; map (fun f -> J.Float f) fin_float;
            map (fun s -> J.String s) str ]
      else
        oneof
          [ map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2)));
            map (fun kvs -> J.Obj kvs)
              (list_size (int_bound 4) (pair str (self (n / 2)))) ])

let json_roundtrip_prop =
  QCheck.Test.make ~count:500 ~name:"JSON parse . print = id"
    (QCheck.make ~print:J.to_string json_gen)
    (fun v ->
      match (J.parse (J.to_string v), J.parse (J.to_string_pretty v)) with
      | Ok c, Ok p -> J.equal v c && J.equal v p
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Stream: ring semantics, overflow accounting, concurrent producers    *)
(* ------------------------------------------------------------------ *)

module S = Telemetry.Stream

let counter_event i =
  S.Counter_delta { cd_t = 0.; cd_name = "test.stream.ev"; cd_delta = i }

let delta_of = function
  | S.Counter_delta { cd_delta; _ } -> cd_delta
  | _ -> Alcotest.fail "expected Counter_delta"

let test_stream_disabled_noop () =
  ignore (S.drain () : S.event list);
  S.with_enabled false (fun () ->
      let d0 = S.dropped_events () in
      Alcotest.(check bool) "emit refused" false (S.emit (counter_event 0));
      S.note_progress ~name:"x" ~completed:1 ~total:2 ();
      Alcotest.(check int) "nothing buffered" 0 (List.length (S.drain ()));
      Alcotest.(check int) "nothing counted as dropped" d0
        (S.dropped_events ()))

let test_stream_fifo_and_overflow () =
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let d0 = S.dropped_events () in
      let extra = 100 in
      let accepted = ref 0 in
      for i = 0 to S.capacity + extra - 1 do
        if S.emit (counter_event i) then incr accepted
      done;
      Alcotest.(check int) "ring accepts exactly its capacity" S.capacity
        !accepted;
      Alcotest.(check int) "drops counted" extra (S.dropped_events () - d0);
      let evs = S.drain () in
      Alcotest.(check int) "drain returns the ring" S.capacity
        (List.length evs);
      (* FIFO: the oldest [capacity] events, in emission order *)
      List.iteri
        (fun i ev -> Alcotest.(check int) "order" i (delta_of ev))
        evs;
      (* and the ring is usable again after a full drain *)
      Alcotest.(check bool) "accepts after drain" true
        (S.emit (counter_event 0));
      ignore (S.drain () : S.event list))

let test_stream_concurrent_producers () =
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let d0 = S.dropped_events () in
      let producers = 4 and per = 500 in
      let mk p =
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore
                (S.emit
                   (S.Counter_delta
                      { cd_t = 0.;
                        cd_name = "p" ^ string_of_int p;
                        cd_delta = i;
                      }))
            done)
      in
      let doms = List.init producers mk in
      List.iter Domain.join doms;
      let evs = S.drain () in
      Alcotest.(check int) "under capacity: nothing dropped" 0
        (S.dropped_events () - d0);
      Alcotest.(check int) "all received" (producers * per)
        (List.length evs);
      (* per-producer FIFO: each producer's events appear in its own
         emission order, however the interleaving went *)
      for p = 0 to producers - 1 do
        let name = "p" ^ string_of_int p in
        let mine =
          List.filter_map
            (function
              | S.Counter_delta { cd_name; cd_delta; _ }
                when cd_name = name ->
                Some cd_delta
              | _ -> None)
            evs
        in
        Alcotest.(check (list int))
          (name ^ " in order")
          (List.init per Fun.id) mine
      done)

let test_stream_concurrent_overflow () =
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let d0 = S.dropped_events () in
      let producers = 4 in
      let per = (S.capacity / producers) + 1_000 in
      let doms =
        List.init producers (fun p ->
            Domain.spawn (fun () ->
                for i = 0 to per - 1 do
                  ignore
                    (S.emit
                       (S.Counter_delta
                          { cd_t = 0.;
                            cd_name = "q" ^ string_of_int p;
                            cd_delta = i;
                          }))
                done))
      in
      List.iter Domain.join doms;
      let received = List.length (S.drain ()) in
      let dropped = S.dropped_events () - d0 in
      (* conservation: every emitted event was either buffered or
         counted as dropped, never silently lost *)
      Alcotest.(check int) "received + dropped = pushed" (producers * per)
        (received + dropped);
      Alcotest.(check bool) "ring filled" true (received <= S.capacity);
      Alcotest.(check bool) "some drops happened" true (dropped > 0))

(* ------------------------------------------------------------------ *)
(* Writer + Live reader: a run's live file round-trips                  *)
(* ------------------------------------------------------------------ *)

module L = Telemetry.Live

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_live_file_roundtrip () =
  let path = Filename.temp_file "bidir-test-live" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let w = S.Writer.create ~path () in
      S.note_progress ~name:"unit" ~completed:1 ~total:2 ~rate:10.
        ~eta_seconds:0.1 ();
      S.Writer.pulse w;
      S.note_progress ~name:"unit" ~completed:2 ~total:2 ~rate:10.
        ~eta_seconds:0. ();
      S.Writer.pulse w;
      S.Writer.close w;
      S.Writer.close w (* idempotent *));
  let st = L.create () in
  List.iter (L.feed_line st) (read_lines path);
  Alcotest.(check (option string)) "schema" (Some "bidir-live/1")
    (L.schema st);
  Alcotest.(check int) "no parse errors" 0 (L.parse_errors st);
  Alcotest.(check bool) "at least two heartbeats" true (L.heartbeats st >= 2);
  Alcotest.(check bool) "finished" true (L.finished st);
  Alcotest.(check bool) "monotone" true (L.monotone st);
  Alcotest.(check int) "no drops" 0 (L.dropped st);
  (match L.progress st with
  | Some p ->
    Alcotest.(check int) "latest completed" 2 p.L.pr_completed;
    Alcotest.(check int) "total" 2 p.L.pr_total
  | None -> Alcotest.fail "no progress survived the round trip");
  (* the frame is a pure function of the file *)
  Alcotest.(check string) "render deterministic" (L.render st) (L.render st);
  match J.parse (J.to_string (L.to_json st)) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "to_json not parseable: %s" m

let test_live_monotone_violation () =
  let st = L.create () in
  L.feed_string st
    "{\"schema\":\"bidir-live/1\",\"record\":\"start\",\"t\":1.0,\"interval\":0.0}\n\
     {\"record\":\"progress\",\"t\":2.0,\"name\":\"x\",\"completed\":5,\"total\":9,\"rate\":1.0,\"ci\":null,\"ci_target\":null,\"eta\":null}\n\
     {\"record\":\"progress\",\"t\":3.0,\"name\":\"x\",\"completed\":3,\"total\":9,\"rate\":1.0,\"ci\":null,\"ci_target\":null,\"eta\":null}\n";
  Alcotest.(check bool) "regressing progress flagged" false (L.monotone st);
  let st2 = L.create () in
  L.feed_string st2
    "{\"record\":\"heartbeat\",\"t\":1.0,\"seq\":2,\"counters\":{},\"histograms\":{}}\n\
     {\"record\":\"heartbeat\",\"t\":2.0,\"seq\":2,\"counters\":{},\"histograms\":{}}\n";
  Alcotest.(check bool) "non-increasing seq flagged" false (L.monotone st2);
  (* garbage lines count as parse errors without killing the fold *)
  let st3 = L.create () in
  L.feed_string st3 "not json at all\n{\"record\":\"heartbeat\",\"t\":1.0,\"seq\":1,\"counters\":{\"c\":2},\"histograms\":{}}\n";
  Alcotest.(check int) "parse error counted" 1 (L.parse_errors st3);
  Alcotest.(check (list (pair string int))) "later lines still folded"
    [ ("c", 2) ] (L.counters st3)

let test_live_strict_required_fields () =
  (* a record missing a required field (or carrying it ill-typed) is a
     parse error and is skipped whole — no field silently defaults,
     no partial state mutation *)
  let cases =
    [ "{\"record\":\"progress\",\"t\":2.0,\"name\":\"x\",\"total\":9,\"rate\":1.0}";
      "{\"record\":\"progress\",\"t\":2.0,\"name\":\"x\",\"completed\":5,\"rate\":1.0}";
      "{\"record\":\"progress\",\"t\":2.0,\"name\":\"x\",\"completed\":\"5\",\"total\":9}";
      "{\"record\":\"counter\",\"t\":2.0,\"name\":\"c\"}";
      "{\"record\":\"counter\",\"t\":2.0,\"delta\":3}";
      "{\"record\":\"digest\",\"t\":2.0,\"name\":\"d\",\"sum\":1.0}";
      "{\"record\":\"heartbeat\",\"t\":2.0,\"counters\":{\"c\":7},\"histograms\":{}}";
      "{\"record\":\"final\",\"t\":2.0}";
      "{\"t\":2.0,\"seq\":3}";
      "{\"record\":7,\"t\":2.0}";
    ]
  in
  let st = L.create () in
  List.iter (L.feed_line st) cases;
  Alcotest.(check int) "every malformed record counted"
    (List.length cases) (L.parse_errors st);
  Alcotest.(check int) "none folded" 0 (L.records st);
  Alcotest.(check (list (pair string int))) "no counter leaked" []
    (L.counters st);
  Alcotest.(check bool) "no progress leaked" true (L.progress st = None);
  Alcotest.(check bool) "not finished" false (L.finished st);
  Alcotest.(check int) "no heartbeat" 0 (L.heartbeats st);
  Alcotest.(check (float 0.)) "last_t untouched by skipped records" 0.
    (L.last_t st);
  (* a heartbeat with one malformed embedded digest must not
     half-apply: neither its seq, nor its counters, nor the valid
     digests next to the bad one *)
  let st2 = L.create () in
  L.feed_line st2
    "{\"record\":\"heartbeat\",\"t\":1.0,\"seq\":1,\"counters\":{\"c\":7},\"histograms\":{\"good\":{\"count\":2,\"sum\":1.0},\"bad\":{\"sum\":1.0}}}";
  Alcotest.(check int) "bad embedded digest is one parse error" 1
    (L.parse_errors st2);
  Alcotest.(check int) "heartbeat not half-applied" 0 (L.heartbeats st2);
  Alcotest.(check (list (pair string int))) "counters not half-applied" []
    (L.counters st2);
  Alcotest.(check int) "digests not half-applied" 0
    (List.length (L.digests st2));
  (* valid records around the bad ones still fold *)
  let st3 = L.create () in
  L.feed_string st3
    "{\"record\":\"counter\",\"t\":1.0,\"name\":\"c\",\"delta\":2}\n\
     {\"record\":\"counter\",\"t\":2.0,\"name\":\"c\"}\n\
     {\"record\":\"counter\",\"t\":3.0,\"name\":\"c\",\"delta\":3}\n";
  Alcotest.(check int) "one parse error" 1 (L.parse_errors st3);
  Alcotest.(check (list (pair string int))) "valid deltas accumulated"
    [ ("c", 5) ] (L.counters st3);
  (* unknown record kinds remain forward-compatible no-ops *)
  let st4 = L.create () in
  L.feed_line st4 "{\"record\":\"hologram\",\"t\":1.0}";
  Alcotest.(check int) "unknown kind is not an error" 0 (L.parse_errors st4);
  Alcotest.(check int) "unknown kind still counts as a record" 1
    (L.records st4)

let test_live_warning_ring_bounded () =
  (* 10k warn records fold in linear time into the bounded ring; the
     reader sees the newest 8, newest first *)
  let n = 10_000 in
  let st = L.create () in
  for i = 1 to n do
    L.feed_line st
      (Printf.sprintf
         "{\"record\":\"log\",\"t\":%d.0,\"level\":\"warn\",\"msg\":\"w%d\"}" i
         i)
  done;
  Alcotest.(check int) "all records folded" n (L.records st);
  Alcotest.(check int) "no parse errors" 0 (L.parse_errors st);
  let ws = L.warnings st in
  Alcotest.(check int) "ring keeps 8" 8 (List.length ws);
  List.iteri
    (fun i (t, level, msg) ->
      Alcotest.(check string) "newest first" (Printf.sprintf "w%d" (n - i)) msg;
      Alcotest.(check (float 0.)) "timestamp kept" (float_of_int (n - i)) t;
      Alcotest.(check string) "level kept" "warn" level)
    ws;
  (* info-level logs never enter the ring *)
  L.feed_line st "{\"record\":\"log\",\"t\":99999.0,\"level\":\"info\",\"msg\":\"quiet\"}";
  (match L.warnings st with
  | (_, _, msg) :: _ ->
    Alcotest.(check string) "info log not ringed" (Printf.sprintf "w%d" n) msg
  | [] -> Alcotest.fail "ring unexpectedly empty");
  (* a part-filled ring reports only what it holds *)
  let st2 = L.create () in
  L.feed_line st2 "{\"record\":\"log\",\"t\":1.0,\"level\":\"error\",\"msg\":\"only\"}";
  Alcotest.(check int) "single warning" 1 (List.length (L.warnings st2))

(* ------------------------------------------------------------------ *)
(* Log: levels, rate limiting, span path, SLO watchdog                  *)
(* ------------------------------------------------------------------ *)

module Lg = Telemetry.Log

(* every Log test silences the stderr sink and restores defaults *)
let with_quiet_log f =
  Lg.set_stderr None;
  Fun.protect
    ~finally:(fun () ->
      Lg.set_stderr (Some Lg.Warn);
      Lg.set_level Lg.Info;
      Lg.set_slos [])
    f

let drain_logs () =
  List.filter_map
    (function S.Log r -> Some r | _ -> None)
    (S.drain ())

let test_log_levels_and_span () =
  with_quiet_log @@ fun () ->
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      (* below the minimum level: discarded at the callsite *)
      Lg.set_level Lg.Warn;
      Lg.info "should not appear %d" 1;
      Alcotest.(check int) "info below min level" 0
        (List.length (drain_logs ()));
      Lg.set_level Lg.Info;
      (* the record carries the current span path *)
      Telemetry.Span.start ();
      Telemetry.Span.with_span "a" (fun () ->
          Telemetry.Span.with_span "b" (fun () -> Lg.warn "deep"));
      Telemetry.Span.stop ();
      match drain_logs () with
      | [ r ] ->
        Alcotest.(check string) "message" "deep" r.S.l_msg;
        Alcotest.(check string) "root-first span path" "a/b" r.S.l_span;
        Alcotest.(check string) "level" "warn" (S.level_name r.S.l_level)
      | l -> Alcotest.failf "expected one record, got %d" (List.length l))

let test_log_rate_limit () =
  with_quiet_log @@ fun () ->
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let sup = Telemetry.Metrics.counter "telemetry.log.suppressed" in
      let s0 = Telemetry.Metrics.value sup in
      for i = 0 to 9 do
        Lg.info ~rate:3600. ~key:"rate-limit-test" "repeat %d" i
      done;
      Alcotest.(check int) "one emitted" 1 (List.length (drain_logs ()));
      Alcotest.(check int) "nine suppressed" 9
        (Telemetry.Metrics.value sup - s0);
      (* a different key is not throttled by the first *)
      Lg.info ~rate:3600. ~key:"rate-limit-other" "other";
      Alcotest.(check int) "distinct key emitted" 1
        (List.length (drain_logs ())))

let test_slo_parse () =
  (match Lg.parse_slo "lp.solve_seconds:p99:0.05:0.5" with
  | Ok s ->
    Alcotest.(check string) "metric" "lp.solve_seconds" s.Lg.slo_metric;
    Alcotest.(check string) "stat" "p99" (Lg.stat_name s.Lg.slo_stat);
    feq "warn" 0.05 s.Lg.slo_warn;
    Alcotest.(check (option (float 1e-9))) "error" (Some 0.5) s.Lg.slo_error
  | Error m -> Alcotest.failf "parse_slo: %s" m);
  (match Lg.parse_slo "campaign.pool_idle_seconds:sum:5" with
  | Ok s -> Alcotest.(check (option (float 1e-9))) "no error level" None
              s.Lg.slo_error
  | Error m -> Alcotest.failf "parse_slo: %s" m);
  List.iter
    (fun spec ->
      match Lg.parse_slo spec with
      | Ok _ -> Alcotest.failf "expected failure on %S" spec
      | Error _ -> ())
    [ ""; "metric"; "metric:p99"; "metric:nostat:1"; "metric:p99:notafloat" ]

let test_slo_watchdog_transitions () =
  with_quiet_log @@ fun () ->
  S.with_enabled true (fun () ->
      ignore (S.drain () : S.event list);
      let h = Telemetry.Metrics.histogram "test.slo.watch_hist" in
      Lg.set_slos
        [ { Lg.slo_metric = "test.slo.watch_hist"; slo_stat = Lg.Mean;
            slo_warn = 5.; slo_error = Some 100. } ];
      (* empty metric: skipped, no records *)
      Lg.watch ();
      Alcotest.(check int) "empty metric skipped" 0
        (List.length (drain_logs ()));
      (* breach: exactly one warn on the transition, silence while the
         breach persists *)
      Telemetry.Metrics.observe h 10.;
      Lg.watch ();
      (match drain_logs () with
      | [ r ] ->
        Alcotest.(check string) "warn on breach" "warn"
          (S.level_name r.S.l_level)
      | l -> Alcotest.failf "expected one warn, got %d" (List.length l));
      Lg.watch ();
      Alcotest.(check int) "no repeat while breached" 0
        (List.length (drain_logs ()));
      (* escalation to the error threshold logs once more *)
      Telemetry.Metrics.observe h 1_000.;
      Lg.watch ();
      (match drain_logs () with
      | [ r ] ->
        Alcotest.(check string) "error on escalation" "error"
          (S.level_name r.S.l_level)
      | l -> Alcotest.failf "expected one error, got %d" (List.length l));
      (* recovery: drag the mean back under the warn threshold *)
      for _ = 1 to 1_000 do Telemetry.Metrics.observe h 0. done;
      Lg.watch ();
      match drain_logs () with
      | [ r ] ->
        Alcotest.(check string) "info on recovery" "info"
          (S.level_name r.S.l_level)
      | l -> Alcotest.failf "expected one recovery record, got %d"
               (List.length l))

(* ------------------------------------------------------------------ *)
(* Analyze on adversarial traces                                        *)
(* ------------------------------------------------------------------ *)

let mk_event ?(cat = "t") ?(tid = 0) ?(parent = "") ~ts ~dur name =
  { Telemetry.Span.name; cat; ts; dur; tid; parent; args = [] }

let analyze_invariants t =
  let paths = Telemetry.Analyze.paths t in
  let rec prefixes = function
    | [] | [ _ ] -> []
    | x :: rest -> [ x ] :: List.map (fun p -> x :: p) (prefixes rest)
  in
  List.for_all
    (fun p -> List.for_all (fun pre -> List.mem pre paths) (prefixes p))
    paths
  && List.for_all
       (fun nd -> nd.Telemetry.Analyze.self >= 0.)
       (Telemetry.Analyze.nodes t)

let test_analyze_equal_start_times () =
  (* parent and child starting on the same timestamp (a zero-cost
     prologue): containment must still resolve parent-before-child *)
  let evs =
    [ mk_event ~ts:0. ~dur:1.0 "root";
      mk_event ~ts:0. ~dur:0.6 ~parent:"root" "child";
      mk_event ~ts:0. ~dur:0.2 ~parent:"child" "grandchild";
    ]
  in
  let t = Telemetry.Analyze.analyze evs in
  Alcotest.(check bool) "invariants hold" true (analyze_invariants t);
  Alcotest.(check bool) "nested path recovered" true
    (List.mem [ "root"; "child"; "grandchild" ] (Telemetry.Analyze.paths t))

let test_analyze_zero_duration_spans () =
  let evs =
    [ mk_event ~ts:0. ~dur:1.0 "root";
      mk_event ~ts:0.5 ~dur:0. ~parent:"root" "marker";
      mk_event ~ts:0.5 ~dur:0. ~parent:"marker" "submarker";
    ]
  in
  let t = Telemetry.Analyze.analyze evs in
  Alcotest.(check bool) "invariants hold" true (analyze_invariants t);
  Alcotest.(check bool) "zero-duration span kept" true
    (List.mem [ "root"; "marker" ] (Telemetry.Analyze.paths t));
  Alcotest.(check bool) "self times within root" true
    (Telemetry.Analyze.total_self t
     <= Telemetry.Analyze.root_dur t +. 1e-6)

let test_analyze_dropped_parent () =
  (* an overflow-dropped parent: the child names a span that never made
     it into the trace, so it must fall back to a root rather than
     crash or vanish *)
  let evs =
    [ mk_event ~ts:0. ~dur:1.0 "root";
      mk_event ~ts:2.0 ~dur:0.5 ~parent:"lost" "orphan";
    ]
  in
  let t = Telemetry.Analyze.analyze evs in
  Alcotest.(check bool) "invariants hold" true (analyze_invariants t);
  Alcotest.(check bool) "orphan surfaces as a root path" true
    (List.exists
       (fun p -> List.mem "orphan" p)
       (Telemetry.Analyze.paths t))

let test_analyze_mutual_parents () =
  (* a cycle two spans naming each other as parent must not loop the
     path reconstruction *)
  let evs =
    [ mk_event ~ts:0. ~dur:1.0 ~parent:"b" "a";
      mk_event ~ts:0.1 ~dur:0.5 ~parent:"a" "b";
    ]
  in
  let t = Telemetry.Analyze.analyze evs in
  Alcotest.(check bool) "terminates with invariants" true
    (analyze_invariants t);
  Alcotest.(check bool) "both spans attributed" true
    (List.length (Telemetry.Analyze.nodes t) >= 2)

(* ------------------------------------------------------------------ *)

let suites =
  [ ( "telemetry.histogram",
      [ Alcotest.test_case "empty" `Quick test_hist_empty;
        Alcotest.test_case "single sample is exact" `Quick
          test_hist_single_sample;
        Alcotest.test_case "bucket boundaries" `Quick
          test_hist_bucket_boundaries;
        Alcotest.test_case "quantile resolution" `Quick
          test_hist_quantile_resolution;
        Alcotest.test_case "underflow clamp" `Quick test_hist_underflow_clamp;
        Alcotest.test_case "full-state JSON roundtrip" `Quick
          test_hist_state_roundtrip;
        Alcotest.test_case "merge equals direct observation" `Quick
          test_hist_merge_exact;
        Alcotest.test_case "merge rejects geometry mismatch" `Quick
          test_hist_merge_geometry_mismatch;
        QCheck_alcotest.to_alcotest merge_associative;
        QCheck_alcotest.to_alcotest observe_int_matches_observe;
        Alcotest.test_case "observe_int mixes with observe" `Quick
          test_observe_int_mixed;
      ] );
    ( "telemetry.metrics",
      [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
    ( "telemetry.json",
      [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "standard inputs" `Quick test_json_parse_standard;
        Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        Alcotest.test_case "escapes, surrogate pairs, exponents" `Quick
          test_json_escapes;
        QCheck_alcotest.to_alcotest json_roundtrip_prop;
      ] );
    ( "telemetry.stream",
      [ Alcotest.test_case "disabled emit is a no-op" `Quick
          test_stream_disabled_noop;
        Alcotest.test_case "FIFO order, overflow drops counted" `Quick
          test_stream_fifo_and_overflow;
        Alcotest.test_case "concurrent producers, per-producer order" `Quick
          test_stream_concurrent_producers;
        Alcotest.test_case "concurrent overflow conserves events" `Quick
          test_stream_concurrent_overflow;
      ] );
    ( "telemetry.live",
      [ Alcotest.test_case "writer file round-trips through the reader"
          `Quick test_live_file_roundtrip;
        Alcotest.test_case "monotonicity violations and garbage flagged"
          `Quick test_live_monotone_violation;
        Alcotest.test_case "missing required fields are parse errors"
          `Quick test_live_strict_required_fields;
        Alcotest.test_case "warning ring bounded at 10k warnings" `Quick
          test_live_warning_ring_bounded;
      ] );
    ( "telemetry.log",
      [ Alcotest.test_case "levels and span path" `Quick
          test_log_levels_and_span;
        Alcotest.test_case "per-callsite rate limiting" `Quick
          test_log_rate_limit;
        Alcotest.test_case "SLO spec parsing" `Quick test_slo_parse;
        Alcotest.test_case "SLO watchdog logs transitions only" `Quick
          test_slo_watchdog_transitions;
      ] );
    ( "telemetry.span",
      [ Alcotest.test_case "disabled collects nothing" `Quick
          test_span_disabled_is_free;
        Alcotest.test_case "nesting" `Quick test_span_nesting;
        Alcotest.test_case "exception records span, restores stack" `Quick
          test_span_exception_records_and_restores;
      ] );
    ( "telemetry.trace",
      [ Alcotest.test_case "chrome trace well-formed" `Quick
          test_chrome_trace_wellformed;
        Alcotest.test_case "span set independent of domain count" `Quick
          test_trace_deterministic_across_domains;
      ] );
    ( "telemetry.netsim-metrics",
      [ Alcotest.test_case "block bits histogram" `Quick
          test_netsim_block_bits;
        Alcotest.test_case "merge" `Quick test_netsim_metrics_merge;
      ] );
    ( "telemetry.resource",
      [ Alcotest.test_case "GC deltas are monotone" `Quick
          test_resource_delta_monotone;
        Alcotest.test_case "account feeds gc.* counters" `Quick
          test_resource_account_counters;
        Alcotest.test_case "spans carry GC deltas when enabled" `Quick
          test_resource_span_args;
        Alcotest.test_case "tracking is observation-only (domains 1/4)"
          `Quick test_resource_byte_identity;
      ] );
    ( "telemetry.analyze",
      [ Alcotest.test_case "self times telescope to root wall time" `Quick
          test_self_time_conservation;
        Alcotest.test_case "collapsed stacks well-formed, focus re-roots"
          `Quick test_collapsed_stacks_wellformed;
        QCheck_alcotest.to_alcotest analyzer_paths_prefix_closed;
        Alcotest.test_case "equal start times" `Quick
          test_analyze_equal_start_times;
        Alcotest.test_case "zero-duration spans" `Quick
          test_analyze_zero_duration_spans;
        Alcotest.test_case "overflow-dropped parent falls back to root"
          `Quick test_analyze_dropped_parent;
        Alcotest.test_case "mutual parent cycle terminates" `Quick
          test_analyze_mutual_parents;
      ] );
  ]
