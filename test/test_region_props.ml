(* Property tests for rate-region geometry on random Gaussian
   scenarios. Gains are drawn in dB and sorted into the paper's
   standing ordering g_ab <= g_ar <= g_br; powers span the range the
   figures actually sweep. *)

let scenario_gen =
  QCheck.(
    map
      (fun (power_db, (d1, d2, d3)) ->
        let g1, g2, g3 =
          match List.sort compare [ d1; d2; d3 ] with
          | [ a; b; c ] -> (a, b, c)
          | _ -> assert false
        in
        Bidir.Gaussian.scenario ~power_db
          ~gains:(Channel.Gains.of_db ~g_ab:g1 ~g_ar:g2 ~g_br:g3))
      (pair (float_range (-5.) 15.)
         (triple (float_range 0. 10.) (float_range 0. 10.)
            (float_range 0. 10.))))

let all_systems =
  List.concat_map
    (fun p -> [ (p, Bidir.Bound.Inner); (p, Bidir.Bound.Outer) ])
    Bidir.Protocol.all

let prop_max_sum_rate_achievable =
  QCheck.Test.make ~count:40 ~name:"max_sum_rate point is achievable"
    scenario_gen (fun s ->
      List.for_all
        (fun (p, kind) ->
          let b = Bidir.Gaussian.bounds p kind s in
          let r = Bidir.Rate_region.max_sum_rate b in
          Bidir.Rate_region.achievable b ~ra:r.Bidir.Rate_region.ra
            ~rb:r.Bidir.Rate_region.rb)
        all_systems)

let prop_inner_contained_in_outer =
  QCheck.Test.make ~count:25 ~name:"inner region inside outer region"
    scenario_gen (fun s ->
      List.for_all
        (fun p ->
          let inner = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
          let outer = Bidir.Gaussian.bounds p Bidir.Bound.Outer s in
          Bidir.Rate_region.contains_region ~weights:9 outer inner)
        [ Bidir.Protocol.Mabc; Bidir.Protocol.Tdbc; Bidir.Protocol.Hbc ])

let prop_area_monotone_in_power =
  (* more transmit power can only enlarge an achievable-rate region *)
  QCheck.Test.make ~count:25 ~name:"area monotone in power"
    QCheck.(pair scenario_gen (float_range 0.5 6.))
    (fun (s, extra_db) ->
      let louder =
        let db = 10. *. log10 s.Bidir.Gaussian.power in
        Bidir.Gaussian.scenario ~power_db:(db +. extra_db)
          ~gains:s.Bidir.Gaussian.gains
      in
      List.for_all
        (fun (p, kind) ->
          let a_lo =
            Bidir.Rate_region.area ~weights:9 (Bidir.Gaussian.bounds p kind s)
          in
          let a_hi =
            Bidir.Rate_region.area ~weights:9
              (Bidir.Gaussian.bounds p kind louder)
          in
          a_hi >= a_lo -. 1e-9)
        all_systems)

let suites =
  [ ( "bidir.region_props",
      List.map QCheck_alcotest.to_alcotest
        [ prop_max_sum_rate_achievable;
          prop_inner_contained_in_outer;
          prop_area_monotone_in_power;
        ] );
  ]
