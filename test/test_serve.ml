(* Tests for the serving plane: HTTP framing, query parsing, the
   memo-backed batch service, and an end-to-end socket smoke against a
   daemon running in another domain. *)

module Http = Serve.Http
module Query = Serve.Query
module Json = Telemetry.Json

(* ------------------------------------------------------------------ *)
(* HTTP framing                                                        *)
(* ------------------------------------------------------------------ *)

let test_http_parse_get () =
  let raw =
    "GET /v1/sumrate?power_db=10&g_ab=0&protocol=TDBC HTTP/1.1\r\n\
     Host: localhost\r\n\
     \r\n"
  in
  match Http.parse raw with
  | Http.Complete (r, consumed) ->
    Alcotest.(check string) "meth" "GET" r.Http.meth;
    Alcotest.(check string) "path" "/v1/sumrate" r.Http.path;
    Alcotest.(check (list (pair string string)))
      "params"
      [ ("power_db", "10"); ("g_ab", "0"); ("protocol", "TDBC") ]
      r.Http.params;
    Alcotest.(check string) "body" "" r.Http.body;
    Alcotest.(check int) "consumed everything" (String.length raw) consumed;
    Alcotest.(check (option string))
      "header lookup is case-insensitive" (Some "localhost")
      (Http.header r "HOST");
    Alcotest.(check bool) "keep-alive by default" false (Http.wants_close r)
  | Http.Incomplete -> Alcotest.fail "incomplete"
  | Http.Invalid m -> Alcotest.failf "invalid: %s" m

let test_http_parse_post_body () =
  let body = "{\"kind\":\"select\",\"power_db\":5}" in
  let raw =
    Printf.sprintf
      "POST /v1/query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  match Http.parse raw with
  | Http.Complete (r, consumed) ->
    Alcotest.(check string) "meth" "POST" r.Http.meth;
    Alcotest.(check string) "body" body r.Http.body;
    Alcotest.(check int) "consumed" (String.length raw) consumed
  | _ -> Alcotest.fail "expected complete request"

let test_http_pipelined () =
  let one = "GET /healthz HTTP/1.1\r\n\r\n" in
  let raw = one ^ "GET /metrics HTTP/1.1\r\n\r\n" in
  match Http.parse raw with
  | Http.Complete (r, consumed) ->
    Alcotest.(check string) "first request" "/healthz" r.Http.path;
    Alcotest.(check int) "consumed only the first" (String.length one)
      consumed;
    let rest = String.sub raw consumed (String.length raw - consumed) in
    (match Http.parse rest with
    | Http.Complete (r2, _) ->
      Alcotest.(check string) "second request" "/metrics" r2.Http.path
    | _ -> Alcotest.fail "second request did not parse")
  | _ -> Alcotest.fail "first request did not parse"

let test_http_incomplete_and_invalid () =
  (match Http.parse "GET /x HTTP/1.1\r\nHost: a" with
  | Http.Incomplete -> ()
  | _ -> Alcotest.fail "truncated head should be Incomplete");
  (match
     Http.parse "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
   with
  | Http.Incomplete -> ()
  | _ -> Alcotest.fail "short body should be Incomplete");
  (match Http.parse "FETCH\r\n\r\n" with
  | Http.Invalid _ -> ()
  | _ -> Alcotest.fail "bad request line should be Invalid");
  (match Http.parse "GET /x HTTP/2.0\r\n\r\n" with
  | Http.Invalid _ -> ()
  | _ -> Alcotest.fail "unsupported version should be Invalid");
  match
    Http.parse ~max_body:8
      "POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789"
  with
  | Http.Invalid _ -> ()
  | _ -> Alcotest.fail "oversized body should be Invalid"

let test_http_url_decode () =
  Alcotest.(check string)
    "percent and plus" "a b+c%" (Http.url_decode "a%20b%2Bc%25");
  Alcotest.(check string) "plus is space" "a b" (Http.url_decode "a+b")

let test_http_response_roundtrip () =
  let body = "{\"x\":1}" in
  let raw = Http.response body in
  Alcotest.(check bool) "status line" true
    (String.length raw > 15 && String.sub raw 0 15 = "HTTP/1.1 200 OK");
  let has_len =
    Printf.sprintf "Content-Length: %d" (String.length body)
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "content-length header" true (contains raw has_len);
  Alcotest.(check bool) "body at the end" true
    (String.sub raw (String.length raw - String.length body)
       (String.length body)
    = body)

(* ------------------------------------------------------------------ *)
(* Query parsing and evaluation                                        *)
(* ------------------------------------------------------------------ *)

let get_exn = function
  | Ok q -> q
  | Error e -> Alcotest.failf "unexpected query error: %s" e

let test_query_params_roundtrip () =
  let q =
    get_exn
      (Query.of_params ~kind:"region"
         [ ("power_db", "5");
           ("g_ab", "1");
           ("g_ar", "4");
           ("g_br", "6");
           ("bound", "outer");
           ("protocol", "MABC");
           ("weights", "17");
         ])
  in
  (* the JSON echo round-trips to the same canonical key *)
  let q2 = get_exn (Query.of_json (Query.to_json q)) in
  Alcotest.(check string) "params/json same key" (Query.key q) (Query.key q2)

let test_query_defaults_and_validation () =
  let q = get_exn (Query.of_params ~kind:"sumrate" []) in
  let dflt = get_exn (Query.make ~kind:Query.Sumrate ()) in
  Alcotest.(check string) "defaults" (Query.key dflt) (Query.key q);
  let expect_error = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected a validation error"
  in
  expect_error (Query.of_params ~kind:"sumrate" [ ("power_db", "999") ]);
  expect_error (Query.of_params ~kind:"sumrate" [ ("power_db", "lots") ]);
  expect_error (Query.of_params ~kind:"sumrate" [ ("volume", "11") ]);
  expect_error (Query.of_params ~kind:"region" []);
  (* region requires a protocol *)
  expect_error (Query.of_params ~kind:"dance" []);
  expect_error
    (Query.of_json (Json.Obj [ ("power_db", Json.Int 1) ]) (* no kind *))

let test_query_eval_deterministic () =
  (* same query, same bytes — including through a cleared cache *)
  let q = get_exn (Query.make ~kind:Query.Select ~power_db:5. ()) in
  let a = Json.to_string (Query.eval q) in
  Engine.Memo.clear_all ();
  let b = Json.to_string (Query.eval q) in
  Alcotest.(check string) "eval byte-stable across cache clears" a b

(* ------------------------------------------------------------------ *)
(* Service: memo-backed batching                                       *)
(* ------------------------------------------------------------------ *)

let hits () = Telemetry.Metrics.value (Telemetry.Metrics.counter "serve.cache_hits")
let misses () = Telemetry.Metrics.value (Telemetry.Metrics.counter "serve.cache_misses")

let test_service_cache_and_batches () =
  Engine.Memo.clear_all ();
  let q1 = get_exn (Query.make ~kind:Query.Sumrate ~power_db:0. ()) in
  let q2 = get_exn (Query.make ~kind:Query.Sumrate ~power_db:10. ()) in
  let h0 = hits () and m0 = misses () in
  (* a batch with an internal duplicate: the duplicate is neither a
     hit nor a miss, and both copies get the same body *)
  (match Serve.Service.respond_batch [ q1; q2; q1 ] with
  | [ b1; b2; b3 ] ->
    Alcotest.(check string) "duplicate shares the body" b1 b3;
    Alcotest.(check bool) "distinct queries differ" true (b1 <> b2)
  | l -> Alcotest.failf "expected 3 bodies, got %d" (List.length l));
  Alcotest.(check int) "no hits on a cold cache" 0 (hits () - h0);
  Alcotest.(check int) "two unique misses" 2 (misses () - m0);
  (* the same batch again: all hits, same bytes *)
  let again = Serve.Service.respond_batch [ q1; q2; q1 ] in
  Alcotest.(check int) "three hits when warm" 3 (hits () - h0);
  Alcotest.(check int) "no new misses" 2 (misses () - m0);
  Alcotest.(check (list string))
    "warm bytes equal cold bytes" (Serve.Service.respond_batch [ q1; q2; q1 ])
    again;
  Alcotest.(check bool) "cache populated" true (Serve.Service.cache_length () >= 2);
  (* single-query front door agrees with the batch *)
  Alcotest.(check string) "respond = respond_batch head"
    (List.nth again 0) (Serve.Service.respond q1)

let test_service_batch_matches_sequential () =
  Engine.Memo.clear_all ();
  let pool = Serve.Scenarios.check_pool () in
  let batched = Serve.Service.respond_batch pool in
  Engine.Memo.clear_all ();
  let sequential = List.map Serve.Service.respond pool in
  Alcotest.(check (list string)) "batched = sequential" sequential batched

let test_service_envelope_shape () =
  let q = get_exn (Query.make ~kind:Query.Sumrate ()) in
  match Json.parse (Serve.Service.respond q) with
  | Error m -> Alcotest.failf "body is not JSON: %s" m
  | Ok j ->
    Alcotest.(check bool) "schema tag" true
      (Json.member "schema" j = Some (Json.String "bidir-serve/1"));
    Alcotest.(check bool) "query echo present" true
      (Json.member "query" j <> None);
    Alcotest.(check bool) "result present" true (Json.member "result" j <> None)

let test_scenarios_pick_deterministic () =
  let keys seed =
    let rng = Prob.Rng.create ~seed in
    List.init 50 (fun _ ->
        Query.key (Serve.Scenarios.pick rng Serve.Scenarios.default_mix))
  in
  Alcotest.(check (list string)) "same seed, same stream" (keys 7) (keys 7);
  Alcotest.(check bool) "different seeds diverge" true (keys 7 <> keys 8)

(* ------------------------------------------------------------------ *)
(* End-to-end: daemon in a domain, raw socket client                   *)
(* ------------------------------------------------------------------ *)

let recv_response sock buf =
  (* read until the Content-Length promise is met *)
  let chunk = Bytes.create 4096 in
  let rec go acc =
    match
      let marker = "\r\n\r\n" in
      let rec find i =
        if i + 4 > String.length acc then None
        else if String.sub acc i 4 = marker then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some head_end ->
      let head = String.sub acc 0 head_end in
      let len =
        List.fold_left
          (fun acc line ->
            match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.sub line 0 i)
                   = "content-length" ->
              int_of_string
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
            | _ -> acc)
          0
          (String.split_on_char '\n' head)
      in
      let need = head_end + 4 + len in
      if String.length acc >= need then (
        let body = String.sub acc (head_end + 4) len in
        let leftover =
          String.sub acc need (String.length acc - need)
        in
        buf := leftover;
        (head, body))
      else begin
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n = 0 then Alcotest.fail "connection closed mid-response";
        go (acc ^ Bytes.sub_string chunk 0 n)
      end
    | None ->
      let n = Unix.read sock chunk 0 (Bytes.length chunk) in
      if n = 0 then Alcotest.fail "connection closed mid-head";
      go (acc ^ Bytes.sub_string chunk 0 n)
  in
  go !buf

let send_all sock s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write sock b off (Bytes.length b - off))
  in
  go 0

let test_server_end_to_end () =
  let port_file = Filename.temp_file "bidir-test-serve" ".port" in
  Sys.remove port_file;
  let daemon =
    Domain.spawn (fun () ->
        Serve.Server.run
          { Serve.Server.default_config with
            port = 0;
            port_file = Some port_file;
            quiet = true;
          })
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove port_file with Sys_error _ -> ())
  @@ fun () ->
  (* wait for the daemon to publish its ephemeral port *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec read_port () =
    match
      let ic = open_in port_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> int_of_string (String.trim (input_line ic)))
    with
    | port -> port
    | exception _ ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "daemon never wrote its port file"
      else begin
        Unix.sleepf 0.02;
        read_port ()
      end
  in
  let port = read_port () in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let buf = ref "" in
  (* healthz *)
  send_all sock "GET /healthz HTTP/1.1\r\n\r\n";
  let head, body = recv_response sock buf in
  Alcotest.(check bool) "healthz 200" true
    (String.length head >= 12 && String.sub head 9 3 = "200");
  (match Json.parse body with
  | Ok j -> Alcotest.(check bool) "healthz ok flag" true
              (Json.member "ok" j = Some (Json.Bool true))
  | Error m -> Alcotest.failf "healthz body: %s" m);
  (* two pipelined queries: a GET and the equivalent POST must answer
     in order, with byte-identical result objects *)
  let post_body = "{\"kind\":\"sumrate\",\"power_db\":5,\"protocol\":\"TDBC\"}" in
  send_all sock
    ("GET /v1/sumrate?power_db=5&protocol=TDBC HTTP/1.1\r\n\r\n"
    ^ Printf.sprintf "POST /v1/query HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        (String.length post_body) post_body);
  let _, body_get = recv_response sock buf in
  let _, body_post = recv_response sock buf in
  Alcotest.(check string) "GET and POST framing agree" body_get body_post;
  (* a malformed query is a 400, not a closed connection *)
  send_all sock "GET /v1/sumrate?power_db=lots HTTP/1.1\r\n\r\n";
  let head, _ = recv_response sock buf in
  Alcotest.(check bool) "bad query is 400" true (String.sub head 9 3 = "400");
  send_all sock "GET /nowhere HTTP/1.1\r\n\r\n";
  let head, _ = recv_response sock buf in
  Alcotest.(check bool) "unknown path is 404" true (String.sub head 9 3 = "404");
  (* shutdown: daemon answers, then exits; it served 2 query requests *)
  send_all sock "POST /shutdown HTTP/1.1\r\n\r\n";
  let head, _ = recv_response sock buf in
  Alcotest.(check bool) "shutdown 200" true (String.sub head 9 3 = "200");
  let served = Domain.join daemon in
  Alcotest.(check int) "query requests served" 2 served

let suites =
  [ ( "serve.http",
      [ Alcotest.test_case "GET with params" `Quick test_http_parse_get;
        Alcotest.test_case "POST with body" `Quick test_http_parse_post_body;
        Alcotest.test_case "pipelined requests" `Quick test_http_pipelined;
        Alcotest.test_case "incomplete and invalid" `Quick
          test_http_incomplete_and_invalid;
        Alcotest.test_case "url decoding" `Quick test_http_url_decode;
        Alcotest.test_case "response serialization" `Quick
          test_http_response_roundtrip;
      ] );
    ( "serve.query",
      [ Alcotest.test_case "params/json round-trip" `Quick
          test_query_params_roundtrip;
        Alcotest.test_case "defaults and validation" `Quick
          test_query_defaults_and_validation;
        Alcotest.test_case "eval byte-stable" `Quick
          test_query_eval_deterministic;
      ] );
    ( "serve.service",
      [ Alcotest.test_case "cache hits, duplicates, batches" `Quick
          test_service_cache_and_batches;
        Alcotest.test_case "batched equals sequential" `Quick
          test_service_batch_matches_sequential;
        Alcotest.test_case "envelope shape" `Quick test_service_envelope_shape;
        Alcotest.test_case "scenario pick deterministic" `Quick
          test_scenarios_pick_deterministic;
      ] );
    ( "serve.daemon",
      [ Alcotest.test_case "end-to-end over a socket" `Quick
          test_server_end_to_end;
      ] );
  ]
