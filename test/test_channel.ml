(* Tests for the Gaussian channel model. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_awgn_c () =
  check_float "C(0)" 0. (Channel.Awgn.c 0.);
  check_float "C(1)" 1. (Channel.Awgn.c 1.);
  check_float "C(3)" 2. (Channel.Awgn.c 3.);
  check_float "C(15)" 4. (Channel.Awgn.c 15.)

let test_awgn_c_inv () =
  List.iter
    (fun r -> check_float ~eps:1e-9 "c_inv round trip" r (Channel.Awgn.c (Channel.Awgn.c_inv r)))
    [ 0.; 0.5; 1.; 3.7 ]

let test_awgn_mac_sum () =
  check_float "mac_sum" (Channel.Awgn.c 7.) (Channel.Awgn.mac_sum 3. 4.)

let test_awgn_invalid () =
  Alcotest.check_raises "negative snr" (Invalid_argument "Awgn.c: negative SNR")
    (fun () -> ignore (Channel.Awgn.c (-1.)))

let test_gains_db () =
  let g = Channel.Gains.of_db ~g_ab:0. ~g_ar:10. ~g_br:20. in
  check_float "ab" 1. g.Channel.Gains.g_ab;
  check_float "ar" 10. g.Channel.Gains.g_ar;
  check_float "br" 100. g.Channel.Gains.g_br;
  let ab, ar, br = Channel.Gains.to_db g in
  check_float "ab db" 0. ab;
  check_float "ar db" 10. ar;
  check_float "br db" 20. br

let test_gains_paper_fig4 () =
  let g = Channel.Gains.paper_fig4 in
  Alcotest.(check bool) "paper ordering" true
    (Channel.Gains.satisfies_paper_ordering g);
  let ab, ar, br = Channel.Gains.to_db g in
  check_float ~eps:1e-9 "ab" 0. ab;
  check_float ~eps:1e-9 "ar" 5. ar;
  check_float ~eps:1e-9 "br" 7. br

let test_gains_swap () =
  let g = Channel.Gains.of_db ~g_ab:0. ~g_ar:5. ~g_br:7. in
  let s = Channel.Gains.swap_terminals g in
  check_float "swapped ar" g.Channel.Gains.g_br s.Channel.Gains.g_ar;
  check_float "swapped br" g.Channel.Gains.g_ar s.Channel.Gains.g_br;
  check_float "ab unchanged" g.Channel.Gains.g_ab s.Channel.Gains.g_ab

let test_gains_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Gains.make: negative power gain")
    (fun () -> ignore (Channel.Gains.make ~g_ab:(-1.) ~g_ar:1. ~g_br:1.))

let test_pathloss_midpoint () =
  let pl = Channel.Pathloss.make ~exponent:3. () in
  let g = Channel.Pathloss.gains_on_line pl ~relay_position:0.5 in
  (* 0.5^-3 = 8 -> ~9.03 dB *)
  check_float ~eps:1e-6 "ar" 8. g.Channel.Gains.g_ar;
  check_float ~eps:1e-6 "br" 8. g.Channel.Gains.g_br;
  check_float ~eps:1e-6 "ab" 1. g.Channel.Gains.g_ab;
  check_float ~eps:1e-6 "midpoint db" (Numerics.Float_utils.lin_to_db 8.)
    (Channel.Pathloss.midpoint_gain_db pl)

let test_pathloss_asymmetric () =
  let pl = Channel.Pathloss.make ~exponent:2. () in
  let g = Channel.Pathloss.gains_on_line pl ~relay_position:0.25 in
  check_float ~eps:1e-9 "ar" 16. g.Channel.Gains.g_ar;
  check_float ~eps:1e-9 "br" (1. /. (0.75 ** 2.)) g.Channel.Gains.g_br

let test_pathloss_planar_matches_line () =
  let pl = Channel.Pathloss.make ~exponent:3. () in
  let on_line = Channel.Pathloss.gains_on_line pl ~relay_position:0.3 in
  let planar = Channel.Pathloss.gains_at pl ~relay_xy:(0.3, 0.) in
  check_float ~eps:1e-9 "ar" on_line.Channel.Gains.g_ar planar.Channel.Gains.g_ar;
  check_float ~eps:1e-9 "br" on_line.Channel.Gains.g_br planar.Channel.Gains.g_br

let test_pathloss_offline_weaker () =
  (* moving the relay off the segment weakens both relay links *)
  let pl = Channel.Pathloss.make ~exponent:3. () in
  let on_line = Channel.Pathloss.gains_at pl ~relay_xy:(0.5, 0.) in
  let off = Channel.Pathloss.gains_at pl ~relay_xy:(0.5, 0.4) in
  Alcotest.(check bool) "ar weaker" true
    (off.Channel.Gains.g_ar < on_line.Channel.Gains.g_ar);
  Alcotest.(check bool) "br weaker" true
    (off.Channel.Gains.g_br < on_line.Channel.Gains.g_br)

let test_pathloss_invalid () =
  let pl = Channel.Pathloss.make ~exponent:3. () in
  Alcotest.check_raises "relay at terminal"
    (Invalid_argument "Pathloss.gains_on_line: relay must lie strictly between a and b")
    (fun () -> ignore (Channel.Pathloss.gains_on_line pl ~relay_position:0.))

let test_fading_static () =
  let g = Channel.Gains.paper_fig4 in
  let f = Channel.Fading.static g in
  for _ = 1 to 5 do
    let d = Channel.Fading.draw f in
    check_float "static ab" g.Channel.Gains.g_ab d.Channel.Gains.g_ab;
    check_float "static ar" g.Channel.Gains.g_ar d.Channel.Gains.g_ar
  done

let test_fading_mean_power () =
  let mean = Channel.Gains.of_db ~g_ab:0. ~g_ar:5. ~g_br:7. in
  let f = Channel.Fading.create ~rng_seed:7 ~mean () in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. (Channel.Fading.draw f).Channel.Gains.g_ar
  done;
  let avg = !acc /. float_of_int n in
  Alcotest.(check bool) "mean matches path loss" true
    (abs_float (avg -. mean.Channel.Gains.g_ar) /. mean.Channel.Gains.g_ar < 0.03)

let test_fading_expected_over_blocks () =
  let mean = Channel.Gains.of_db ~g_ab:0. ~g_ar:0. ~g_br:0. in
  let f = Channel.Fading.create ~rng_seed:11 ~mean () in
  (* ergodic direct-link rate E[C(G)] for exp(1) gain at P=1:
     E[log2(1+G)] = e * E1(1) / ln 2 ~ 0.8578 bits *)
  let avg =
    Channel.Fading.expected_over_blocks f ~blocks:200_000 (fun g ->
        Channel.Awgn.c g.Channel.Gains.g_ab)
  in
  Alcotest.(check bool) "ergodic rate near 0.8578" true
    (abs_float (avg -. 0.8578) < 0.01)

let test_fading_deterministic_seed () =
  let mean = Channel.Gains.paper_fig4 in
  let f1 = Channel.Fading.create ~rng_seed:3 ~mean () in
  let f2 = Channel.Fading.create ~rng_seed:3 ~mean () in
  for _ = 1 to 20 do
    let a = Channel.Fading.draw f1 and b = Channel.Fading.draw f2 in
    check_float "same draw" a.Channel.Gains.g_br b.Channel.Gains.g_br
  done

let prop_pathloss_monotone =
  QCheck.Test.make ~count:100
    ~name:"closer relay position strengthens the a-r link"
    QCheck.(pair (float_range 0.05 0.45) (float_range 2. 4.))
    (fun (d, alpha) ->
      let pl = Channel.Pathloss.make ~exponent:alpha () in
      let near = Channel.Pathloss.gains_on_line pl ~relay_position:d in
      let far = Channel.Pathloss.gains_on_line pl ~relay_position:(d +. 0.5) in
      near.Channel.Gains.g_ar > far.Channel.Gains.g_ar
      && near.Channel.Gains.g_br < far.Channel.Gains.g_br)

let prop_awgn_c_monotone =
  QCheck.Test.make ~count:100 ~name:"C is increasing and concave-ish"
    QCheck.(pair (float_range 0. 50.) (float_range 0.01 10.))
    (fun (x, d) ->
      let c = Channel.Awgn.c in
      c (x +. d) > c x && c (x +. d) -. c x <= c d +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pathloss_monotone; prop_awgn_c_monotone ]

let suites =
  [ ( "channel.awgn",
      [ Alcotest.test_case "C values" `Quick test_awgn_c;
        Alcotest.test_case "C inverse" `Quick test_awgn_c_inv;
        Alcotest.test_case "MAC sum" `Quick test_awgn_mac_sum;
        Alcotest.test_case "invalid" `Quick test_awgn_invalid;
      ] );
    ( "channel.gains",
      [ Alcotest.test_case "dB round trip" `Quick test_gains_db;
        Alcotest.test_case "paper fig4" `Quick test_gains_paper_fig4;
        Alcotest.test_case "swap terminals" `Quick test_gains_swap;
        Alcotest.test_case "invalid" `Quick test_gains_invalid;
      ] );
    ( "channel.pathloss",
      [ Alcotest.test_case "midpoint" `Quick test_pathloss_midpoint;
        Alcotest.test_case "asymmetric" `Quick test_pathloss_asymmetric;
        Alcotest.test_case "planar = line" `Quick test_pathloss_planar_matches_line;
        Alcotest.test_case "off-line weaker" `Quick test_pathloss_offline_weaker;
        Alcotest.test_case "invalid" `Quick test_pathloss_invalid;
      ] );
    ( "channel.fading",
      [ Alcotest.test_case "static" `Quick test_fading_static;
        Alcotest.test_case "mean power" `Quick test_fading_mean_power;
        Alcotest.test_case "ergodic average" `Slow test_fading_expected_over_blocks;
        Alcotest.test_case "deterministic seed" `Quick test_fading_deterministic_seed;
      ] );
    ("channel.properties", qcheck_cases);
  ]
