(* Tests for the extension modules: ergodic/fading analysis, relay
   selection, and the proportional-fair operating point. *)

let check_float ?(eps = 1e-7) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let paper_gains = Channel.Gains.paper_fig4

(* ------------------------------------------------------------------ *)
(* Ergodic                                                             *)
(* ------------------------------------------------------------------ *)

let test_ergodic_static_equals_instantaneous () =
  (* a static "fading" process has zero variance: the ergodic rate is
     exactly the single-shot optimum *)
  let fading = Channel.Fading.static paper_gains in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let e =
    Bidir.Ergodic.ergodic_sum_rate ~blocks:10 fading ~power Bidir.Protocol.Tdbc
  in
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let expected =
    (Bidir.Optimize.sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s)
      .Bidir.Optimize.sum_rate
  in
  check_float ~eps:1e-9 "static ergodic = instantaneous" expected
    e.Bidir.Ergodic.mean;
  let lo, hi = e.Bidir.Ergodic.ci95 in
  check_float ~eps:1e-9 "zero-width CI (lo)" expected lo;
  check_float ~eps:1e-9 "zero-width CI (hi)" expected hi

let test_ergodic_below_mean_gain_rate () =
  (* Jensen: E[optimal sum rate over fading] < optimum at the mean gains
     (the per-protocol optimum is concave-ish in the gains at these
     operating points; validated empirically here) *)
  let fading = Channel.Fading.create ~rng_seed:3 ~mean:paper_gains () in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let e =
    Bidir.Ergodic.ergodic_sum_rate ~blocks:3000 fading ~power
      Bidir.Protocol.Mabc
  in
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let at_mean =
    (Bidir.Optimize.sum_rate Bidir.Protocol.Mabc Bidir.Bound.Inner s)
      .Bidir.Optimize.sum_rate
  in
  Alcotest.(check bool) "ergodic < rate at mean gains" true
    (e.Bidir.Ergodic.mean < at_mean)

let test_ergodic_hbc_dominates () =
  let power = Numerics.Float_utils.db_to_lin 5. in
  let rate p seed =
    let fading = Channel.Fading.create ~rng_seed:seed ~mean:paper_gains () in
    (Bidir.Ergodic.ergodic_sum_rate ~blocks:400 fading ~power p)
      .Bidir.Ergodic.mean
  in
  (* same seed -> same fading sample path for each protocol *)
  Alcotest.(check bool) "HBC >= MABC" true
    (rate Bidir.Protocol.Hbc 9 >= rate Bidir.Protocol.Mabc 9 -. 1e-9);
  Alcotest.(check bool) "HBC >= TDBC" true
    (rate Bidir.Protocol.Hbc 9 >= rate Bidir.Protocol.Tdbc 9 -. 1e-9)

let test_outage_probability_monotone () =
  let fading = Channel.Fading.create ~rng_seed:5 ~mean:paper_gains () in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let outage r =
    (Bidir.Ergodic.outage_probability ~blocks:600 fading ~power
       Bidir.Protocol.Tdbc ~ra:r ~rb:r)
      .Bidir.Ergodic.mean
  in
  let o_small = outage 0.2 and o_big = outage 2.0 in
  Alcotest.(check bool) "higher target -> more outage" true (o_small < o_big);
  check_float ~eps:1e-9 "zero rate never fails" 0. (outage 0.)

let test_epsilon_outage_rate () =
  let fading = Channel.Fading.create ~rng_seed:7 ~mean:paper_gains () in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let r10 =
    Bidir.Ergodic.epsilon_outage_sum_rate ~blocks:400 fading ~power
      Bidir.Protocol.Tdbc ~epsilon:0.1
  in
  let r50 =
    Bidir.Ergodic.epsilon_outage_sum_rate ~blocks:400 fading ~power
      Bidir.Protocol.Tdbc ~epsilon:0.5
  in
  Alcotest.(check bool) "positive" true (r10 > 0.);
  Alcotest.(check bool) "looser epsilon buys rate" true (r50 > r10)

let test_ergodic_table_shape () =
  let t = Bidir.Ergodic.ergodic_table ~blocks:50 ~powers_db:[ 0. ] () in
  Alcotest.(check int) "5 protocols x 1 power" 5
    (List.length t.Bidir.Figures.rows)

(* ------------------------------------------------------------------ *)
(* Relay_selection                                                     *)
(* ------------------------------------------------------------------ *)

let pl = Channel.Pathloss.make ~exponent:3. ()

let test_candidates_on_line () =
  let cands =
    Bidir.Relay_selection.candidates_on_line pl ~positions:[ 0.25; 0.5; 0.75 ]
  in
  Alcotest.(check int) "three" 3 (List.length cands);
  match cands with
  | first :: _ ->
    Alcotest.(check string) "id" "r@0.25"
      first.Bidir.Relay_selection.relay_id
  | [] -> Alcotest.fail "no candidates"

let test_best_beats_each_candidate () =
  let cands =
    Bidir.Relay_selection.candidates_on_line pl
      ~positions:[ 0.2; 0.4; 0.6; 0.8 ]
  in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let best = Bidir.Relay_selection.best ~power cands in
  List.iter
    (fun cand ->
      let single = Bidir.Relay_selection.best ~power [ cand ] in
      Alcotest.(check bool) "best >= every single" true
        (best.Bidir.Relay_selection.sum_rate
         >= single.Bidir.Relay_selection.sum_rate -. 1e-9))
    cands

let test_best_protocol_restriction () =
  let cands = Bidir.Relay_selection.candidates_on_line pl ~positions:[ 0.5 ] in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let only_mabc =
    Bidir.Relay_selection.best ~protocols:[ Bidir.Protocol.Mabc ] ~power cands
  in
  Alcotest.(check bool) "restricted to MABC" true
    (only_mabc.Bidir.Relay_selection.protocol = Bidir.Protocol.Mabc);
  let free = Bidir.Relay_selection.best ~power cands in
  Alcotest.(check bool) "free choice at least as good" true
    (free.Bidir.Relay_selection.sum_rate
     >= only_mabc.Bidir.Relay_selection.sum_rate -. 1e-9)

let test_best_empty () =
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Relay_selection.best: no candidates") (fun () ->
      ignore (Bidir.Relay_selection.best ~power:1. []))

let test_selection_gain () =
  let cands =
    Bidir.Relay_selection.candidates_on_line pl ~positions:[ 0.3; 0.5; 0.7 ]
  in
  let power = Numerics.Float_utils.db_to_lin 10. in
  let with_selection, fixed =
    Bidir.Relay_selection.selection_gain ~blocks:200 ~power cands
  in
  Alcotest.(check bool) "selection >= fixed" true
    (with_selection >= fixed -. 1e-9);
  Alcotest.(check bool) "both positive" true (fixed > 0.)

(* ------------------------------------------------------------------ *)
(* Proportional fairness                                               *)
(* ------------------------------------------------------------------ *)

let test_max_product_on_symmetric_region () =
  (* symmetric bound system: PF point must sit on the diagonal *)
  let mi =
    { Bidir.Templates.ab = 1.;
      ba = 1.;
      ar = 2.;
      br = 2.;
      ra = 2.;
      rb = 2.;
      mac_a = 2.;
      mac_b = 2.;
      mac_sum = 3.;
      a_rb = 2.2;
      b_ra = 2.2;
    }
  in
  let b = Bidir.Templates.mabc Bidir.Bound.Inner mi in
  let pf = Bidir.Rate_region.max_product b in
  check_float ~eps:1e-4 "diagonal" pf.Numerics.Vec2.x pf.Numerics.Vec2.y

let test_max_product_dominates_vertices () =
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  List.iter
    (fun p ->
      let b = Bidir.Gaussian.bounds p Bidir.Bound.Inner s in
      let pf = Bidir.Rate_region.max_product b in
      let pf_product = pf.Numerics.Vec2.x *. pf.Numerics.Vec2.y in
      List.iter
        (fun (v : Numerics.Vec2.t) ->
          Alcotest.(check bool)
            (Bidir.Protocol.name p ^ " PF >= vertex product")
            true
            (pf_product >= (v.Numerics.Vec2.x *. v.Numerics.Vec2.y) -. 1e-9))
        (Bidir.Rate_region.boundary b);
      (* and the PF point itself is achievable *)
      Alcotest.(check bool) "PF point achievable" true
        (Bidir.Rate_region.achievable b ~ra:pf.Numerics.Vec2.x
           ~rb:pf.Numerics.Vec2.y))
    Bidir.Protocol.all

let test_max_product_beats_sum_corner_products () =
  (* the PF point's product is at least that of the sum-rate optimum *)
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner s in
  let sum = Bidir.Rate_region.max_sum_rate b in
  let pf = Bidir.Rate_region.max_product b in
  Alcotest.(check bool) "pf product >= sum-point product" true
    (pf.Numerics.Vec2.x *. pf.Numerics.Vec2.y
     >= (sum.Bidir.Rate_region.ra *. sum.Bidir.Rate_region.rb) -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_pf_achievable =
  QCheck.Test.make ~count:40 ~name:"PF point always achievable"
    QCheck.(pair (float_range (-5.) 15.) (int_range 0 4))
    (fun (power_db, pidx) ->
      let protocol = List.nth Bidir.Protocol.all pidx in
      let s = Bidir.Gaussian.scenario ~power_db ~gains:paper_gains in
      let b = Bidir.Gaussian.bounds protocol Bidir.Bound.Inner s in
      let pf = Bidir.Rate_region.max_product b in
      Bidir.Rate_region.achievable b ~ra:pf.Numerics.Vec2.x
        ~rb:pf.Numerics.Vec2.y)

let prop_selection_monotone_in_candidates =
  QCheck.Test.make ~count:20 ~name:"more candidates never hurt selection"
    QCheck.(float_range 0. 15.)
    (fun power_db ->
      let power = Numerics.Float_utils.db_to_lin power_db in
      let few = Bidir.Relay_selection.candidates_on_line pl ~positions:[ 0.5 ] in
      let many =
        Bidir.Relay_selection.candidates_on_line pl
          ~positions:[ 0.5; 0.3; 0.7 ]
      in
      (Bidir.Relay_selection.best ~power many).Bidir.Relay_selection.sum_rate
      >= (Bidir.Relay_selection.best ~power few).Bidir.Relay_selection.sum_rate
         -. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pf_achievable; prop_selection_monotone_in_candidates ]

let suites =
  [ ( "bidir.ergodic",
      [ Alcotest.test_case "static = instantaneous" `Quick
          test_ergodic_static_equals_instantaneous;
        Alcotest.test_case "below mean-gain rate" `Slow
          test_ergodic_below_mean_gain_rate;
        Alcotest.test_case "HBC dominates" `Quick test_ergodic_hbc_dominates;
        Alcotest.test_case "outage monotone" `Quick
          test_outage_probability_monotone;
        Alcotest.test_case "epsilon-outage rate" `Slow test_epsilon_outage_rate;
        Alcotest.test_case "table shape" `Quick test_ergodic_table_shape;
      ] );
    ( "bidir.relay_selection",
      [ Alcotest.test_case "candidates on line" `Quick test_candidates_on_line;
        Alcotest.test_case "best beats singles" `Quick
          test_best_beats_each_candidate;
        Alcotest.test_case "protocol restriction" `Quick
          test_best_protocol_restriction;
        Alcotest.test_case "empty" `Quick test_best_empty;
        Alcotest.test_case "selection gain" `Quick test_selection_gain;
      ] );
    ( "bidir.proportional_fair",
      [ Alcotest.test_case "symmetric diagonal" `Quick
          test_max_product_on_symmetric_region;
        Alcotest.test_case "dominates vertices" `Quick
          test_max_product_dominates_vertices;
        Alcotest.test_case "beats sum corner" `Quick
          test_max_product_beats_sum_corner_products;
      ] );
    ("bidir.extensions.properties", qcheck_cases);
  ]

(* ------------------------------------------------------------------ *)
(* Power allocation                                                    *)
(* ------------------------------------------------------------------ *)

let scen10 = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains

let test_peak_matches_lp () =
  (* under the paper's peak constraint the grid search must land within
     a small tolerance of the exact LP optimum *)
  List.iter
    (fun p ->
      let lp =
        (Bidir.Optimize.sum_rate p Bidir.Bound.Inner scen10)
          .Bidir.Optimize.sum_rate
      in
      let grid =
        Bidir.Power_allocation.sum_rate p scen10 Bidir.Power_allocation.Peak
      in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " grid close to LP")
        true
        (abs_float (grid.Bidir.Power_allocation.sum_rate -. lp) /. lp < 0.005
         && grid.Bidir.Power_allocation.sum_rate <= lp +. 1e-9))
    Bidir.Protocol.all

let test_energy_banking_helps () =
  List.iter
    (fun p ->
      let peak =
        Bidir.Power_allocation.sum_rate p scen10 Bidir.Power_allocation.Peak
      in
      let avg =
        Bidir.Power_allocation.sum_rate p scen10
          Bidir.Power_allocation.Average_energy
      in
      Alcotest.(check bool)
        (Bidir.Protocol.name p ^ " banking never hurts")
        true
        (avg.Bidir.Power_allocation.sum_rate
         >= peak.Bidir.Power_allocation.sum_rate -. 1e-6))
    Bidir.Protocol.all;
  (* and strictly helps where nodes are idle part of the block *)
  let peak =
    Bidir.Power_allocation.sum_rate Bidir.Protocol.Tdbc scen10
      Bidir.Power_allocation.Peak
  in
  let avg =
    Bidir.Power_allocation.sum_rate Bidir.Protocol.Tdbc scen10
      Bidir.Power_allocation.Average_energy
  in
  Alcotest.(check bool) "strict gain for TDBC" true
    (avg.Bidir.Power_allocation.sum_rate
     > peak.Bidir.Power_allocation.sum_rate +. 0.1)

let test_power_boost_consistency () =
  (* the boosted node powers satisfy the average-energy budget *)
  let r =
    Bidir.Power_allocation.sum_rate Bidir.Protocol.Mabc scen10
      Bidir.Power_allocation.Average_energy
  in
  let pa, pb, pr = r.Bidir.Power_allocation.node_powers in
  let d = r.Bidir.Power_allocation.deltas in
  (* MABC: terminals active in phase 1, relay in phase 2 *)
  Alcotest.(check (float 1e-6)) "a's energy = P" scen10.Bidir.Gaussian.power
    (pa *. d.(0));
  Alcotest.(check (float 1e-6)) "b's energy = P" scen10.Bidir.Gaussian.power
    (pb *. d.(0));
  Alcotest.(check (float 1e-6)) "r's energy = P" scen10.Bidir.Gaussian.power
    (pr *. d.(1))

let test_boost_table_shape () =
  let t = Bidir.Power_allocation.boost_table ~powers_db:[ 10. ] () in
  Alcotest.(check int) "relayed protocols" 4 (List.length t.Bidir.Figures.rows)

let power_allocation_cases =
  [ Alcotest.test_case "peak matches LP" `Quick test_peak_matches_lp;
    Alcotest.test_case "banking helps" `Quick test_energy_banking_helps;
    Alcotest.test_case "energy budget respected" `Quick test_power_boost_consistency;
    Alcotest.test_case "boost table" `Slow test_boost_table_shape;
  ]

let suites = suites @ [ ("bidir.power_allocation", power_allocation_cases) ]

(* ------------------------------------------------------------------ *)
(* Time sharing (|Q| > 1)                                              *)
(* ------------------------------------------------------------------ *)

let test_union_contains_parts () =
  let s0 = Bidir.Gaussian.scenario ~power_db:0. ~gains:paper_gains in
  let b_mabc = Bidir.Gaussian.bounds Bidir.Protocol.Mabc Bidir.Bound.Inner s0 in
  let b_tdbc = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner s0 in
  let union = Bidir.Rate_region.union_polygon [ b_mabc; b_tdbc ] in
  List.iter
    (fun b ->
      List.iter
        (fun (p : Numerics.Vec2.t) ->
          Alcotest.(check bool) "part vertex inside union" true
            (Numerics.Polygon.contains union p))
        (Bidir.Rate_region.boundary b))
    [ b_mabc; b_tdbc ];
  Alcotest.(check bool) "union is convex" true
    (Numerics.Hull.is_convex_ccw union)

let test_discrete_time_sharing_helps () =
  (* an asymmetric BSC network: time sharing between two asymmetric
     input tuples can beat each single tuple's region somewhere *)
  let net = Bidir.Discrete.bsc_network ~p_ab:0.25 ~p_ar:0.02 ~p_br:0.3 ~p_mac:0.1 in
  let ins q =
    { Bidir.Discrete.p_a = Infotheory.Pmf.binary q;
      p_b = Infotheory.Pmf.binary (1. -. q);
      p_r = Infotheory.Pmf.binary 0.5;
    }
  in
  let shared =
    Bidir.Discrete.time_shared_region Bidir.Protocol.Tdbc Bidir.Bound.Inner net
      [ ins 0.5; ins 0.2; ins 0.8 ]
  in
  let single =
    Bidir.Rate_region.polygon
      (Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net (ins 0.5))
  in
  (* the shared region contains the single region everywhere *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "single inside shared" true
        (Numerics.Polygon.contains shared p))
    single;
  Alcotest.(check bool) "shared at least as large" true
    (Numerics.Polygon.area shared >= Numerics.Polygon.area single -. 1e-9)

let time_sharing_cases =
  [ Alcotest.test_case "union contains parts" `Quick test_union_contains_parts;
    Alcotest.test_case "discrete time sharing" `Quick test_discrete_time_sharing_helps;
  ]

let suites = suites @ [ ("bidir.time_sharing", time_sharing_cases) ]

(* ------------------------------------------------------------------ *)
(* Full duplex reference                                               *)
(* ------------------------------------------------------------------ *)

let test_fd_dominates_half_duplex () =
  List.iter
    (fun power_db ->
      let s = Bidir.Gaussian.scenario ~power_db ~gains:paper_gains in
      let fd = Bidir.Fullduplex.sum_rate s in
      List.iter
        (fun p ->
          let hd =
            (Bidir.Optimize.sum_rate p Bidir.Bound.Inner s)
              .Bidir.Optimize.sum_rate
          in
          Alcotest.(check bool)
            (Printf.sprintf "FD >= %s at %g dB" (Bidir.Protocol.name p)
               power_db)
            true (fd >= hd -. 1e-9))
        Bidir.Protocol.relayed)
    [ -5.; 0.; 10.; 20. ]

let test_fd_hand_value () =
  (* symmetric unit-capacity links: Ra <= 1, Rb <= 1, sum <= C(2P G):
     at P G = 1 each: sum = C(2) = log2 3 *)
  let gains = Channel.Gains.make ~g_ab:0.1 ~g_ar:1. ~g_br:1. in
  let s = Bidir.Gaussian.scenario_lin ~power:1. ~gains in
  Alcotest.(check (float 1e-9)) "sum = log2 3"
    (Numerics.Float_utils.log2 3.)
    (Bidir.Fullduplex.sum_rate s)

let test_fd_penalty_table () =
  let t = Bidir.Fullduplex.penalty_table ~powers_db:[ 0.; 10. ] () in
  Alcotest.(check int) "rows" 2 (List.length t.Bidir.Figures.rows);
  List.iter
    (fun row ->
      match row with
      | [ _; fd; _; _ ] ->
        Alcotest.(check bool) "fd positive" true (float_of_string fd > 0.)
      | _ -> Alcotest.fail "row shape")
    t.Bidir.Figures.rows

let fullduplex_cases =
  [ Alcotest.test_case "FD dominates HD" `Quick test_fd_dominates_half_duplex;
    Alcotest.test_case "hand value" `Quick test_fd_hand_value;
    Alcotest.test_case "penalty table" `Quick test_fd_penalty_table;
  ]

let suites = suites @ [ ("bidir.fullduplex", fullduplex_cases) ]

let test_outage_figure () =
  let f = Bidir.Ergodic.outage_figure ~blocks:80 ~samples:5 () in
  Alcotest.(check int) "five series" 5 (List.length f.Bidir.Figures.series);
  (* every curve is non-decreasing in the target and within [0, 1] *)
  List.iter
    (fun (s : Bidir.Figures.series) ->
      let ys = List.map snd s.Bidir.Figures.points in
      List.iter
        (fun y ->
          Alcotest.(check bool) "probability range" true (y >= 0. && y <= 1.))
        ys;
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 0.08 && non_decreasing rest
        | _ -> true
      in
      (* allow small Monte-Carlo wiggle *)
      Alcotest.(check bool)
        (s.Bidir.Figures.label ^ " roughly monotone")
        true (non_decreasing ys))
    f.Bidir.Figures.series

let suites =
  suites
  @ [ ("bidir.outage_figure",
       [ Alcotest.test_case "shape and monotonicity" `Quick test_outage_figure ])
    ]

(* ------------------------------------------------------------------ *)
(* Extension-wide properties                                           *)
(* ------------------------------------------------------------------ *)

let random_scenario_gen =
  QCheck.(
    map
      (fun ((p_db, ab_db), (d_ar, d_br)) ->
        let ar_db = ab_db +. d_ar in
        let br_db = ar_db +. d_br in
        Bidir.Gaussian.scenario ~power_db:p_db
          ~gains:(Channel.Gains.of_db ~g_ab:ab_db ~g_ar:ar_db ~g_br:br_db))
      (pair
         (pair (float_range (-8.) 18.) (float_range (-5.) 5.))
         (pair (float_range 0. 8.) (float_range 0. 8.))))

let prop_energy_banking_never_hurts =
  QCheck.Test.make ~count:25 ~name:"average-energy >= peak everywhere"
    QCheck.(pair random_scenario_gen (int_range 0 4))
    (fun (s, pidx) ->
      let protocol = List.nth Bidir.Protocol.all pidx in
      let peak =
        Bidir.Power_allocation.sum_rate ~resolution:10 ~refinements:1 protocol
          s Bidir.Power_allocation.Peak
      in
      let avg =
        Bidir.Power_allocation.sum_rate ~resolution:10 ~refinements:1 protocol
          s Bidir.Power_allocation.Average_energy
      in
      avg.Bidir.Power_allocation.sum_rate
      >= peak.Bidir.Power_allocation.sum_rate -. 1e-6)

let prop_fd_dominates =
  QCheck.Test.make ~count:40 ~name:"full duplex >= every half-duplex protocol"
    random_scenario_gen (fun s ->
      let fd = Bidir.Fullduplex.sum_rate s in
      List.for_all
        (fun p ->
          fd
          >= (Bidir.Optimize.sum_rate p Bidir.Bound.Inner s)
               .Bidir.Optimize.sum_rate
             -. 1e-7)
        Bidir.Protocol.relayed)

let prop_union_contains_parts =
  QCheck.Test.make ~count:25 ~name:"union polygon contains its parts"
    random_scenario_gen (fun s ->
      let parts =
        List.map
          (fun p -> Bidir.Gaussian.bounds p Bidir.Bound.Inner s)
          [ Bidir.Protocol.Mabc; Bidir.Protocol.Tdbc ]
      in
      let union = Bidir.Rate_region.union_polygon parts in
      List.for_all
        (fun b ->
          List.for_all
            (fun (v : Numerics.Vec2.t) -> Numerics.Polygon.contains union v)
            (Bidir.Rate_region.boundary b))
        parts)

let prop_traffic_utilisation_bounded =
  QCheck.Test.make ~count:15 ~name:"traffic utilisation in [0, 1]"
    QCheck.(pair (float_range 0.1 1.3) (int_range 0 4))
    (fun (load, pidx) ->
      let r =
        Netsim.Traffic.run
          { Netsim.Traffic.protocol = List.nth Bidir.Protocol.all pidx;
            power = Numerics.Float_utils.db_to_lin 10.;
            gains = paper_gains;
            load;
            block_symbols = 500;
            blocks = 200;
            seed = pidx + 1;
          }
      in
      r.Netsim.Traffic.utilisation >= 0.
      && r.Netsim.Traffic.utilisation <= 1.0 +. 1e-9
      && r.Netsim.Traffic.carried_bits <= r.Netsim.Traffic.offered_bits)

let prop_ergodic_ci_brackets_mean =
  QCheck.Test.make ~count:10 ~name:"ergodic CI brackets the mean"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let fading = Channel.Fading.create ~rng_seed:seed ~mean:paper_gains () in
      let e =
        Bidir.Ergodic.ergodic_sum_rate ~blocks:100 fading ~power:5.
          Bidir.Protocol.Mabc
      in
      let lo, hi = e.Bidir.Ergodic.ci95 in
      lo <= e.Bidir.Ergodic.mean && e.Bidir.Ergodic.mean <= hi)

let suites =
  suites
  @ [ ( "bidir.extension_properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_energy_banking_never_hurts;
            prop_fd_dominates;
            prop_union_contains_parts;
            prop_traffic_utilisation_bounded;
            prop_ergodic_ci_brackets_mean;
          ] )
    ]
