(* Cross-library integration tests: theory <-> simulator <-> report. *)

let paper_gains = Channel.Gains.paper_fig4

(* ------------------------------------------------------------------ *)
(* Inner bound <-> simulator decode logic                              *)
(* ------------------------------------------------------------------ *)

(* If a rate pair satisfies the inner bound at some schedule, the
   simulator must deliver both messages at that schedule (the converse
   can fail: the simulator's direct-link fallback can rescue pairs the
   relay-decoding bound rejects). *)
let prop_bound_satisfied_implies_delivery =
  QCheck.Test.make ~count:150 ~name:"inner bound satisfied => decode succeeds"
    QCheck.(quad (float_range (-5.) 15.) (int_range 0 4)
              (pair (float_range 0. 1.) (float_range 0. 1.))
              (pair (float_range 0.05 0.95) (float_range 0.05 0.95)))
    (fun (power_db, pidx, (ka, kb), (w1, w2)) ->
      let protocol = List.nth Bidir.Protocol.all pidx in
      let s = Bidir.Gaussian.scenario ~power_db ~gains:paper_gains in
      let b = Bidir.Gaussian.bounds protocol Bidir.Bound.Inner s in
      (* a random feasible schedule from two stick-breaking weights *)
      let l = Bidir.Protocol.num_phases protocol in
      let deltas =
        match l with
        | 2 -> [| w1; 1. -. w1 |]
        | 3 -> [| w1 *. w2; w1 *. (1. -. w2); 1. -. w1 |]
        | 4 ->
          [| w1 *. w2;
             w1 *. (1. -. w2);
             (1. -. w1) *. w2;
             (1. -. w1) *. (1. -. w2);
          |]
        | _ -> assert false (* protocols have 2-4 phases *)
      in
      (* scale a boundary point into the fixed-schedule region *)
      let r = Bidir.Rate_region.max_sum_rate b in
      let ra = ka *. r.Bidir.Rate_region.ra in
      let rb = kb *. r.Bidir.Rate_region.rb in
      let satisfied = Bidir.Bound.satisfied b ~deltas ~ra ~rb in
      if not satisfied then true (* implication trivially holds *)
      else begin
        let outcome =
          Netsim.Runner.decode_outcome protocol ~power:s.Bidir.Gaussian.power
            ~gains:paper_gains ~deltas ~ra ~rb
        in
        outcome.Netsim.Runner.b_gets_a && outcome.Netsim.Runner.a_gets_b
      end)

(* the simulator's per-protocol decode logic must agree between the
   block-level and the event-driven implementations on arbitrary fixed
   schedules under fading *)
let test_runner_detailed_agree_random_schedules () =
  let rng = Prob.Rng.create ~seed:77 in
  for _ = 1 to 12 do
    let protocol =
      List.nth Bidir.Protocol.all (Prob.Rng.int rng 5)
    in
    let l = Bidir.Protocol.num_phases protocol in
    let raw = Array.init l (fun _ -> 0.1 +. Prob.Rng.float rng) in
    let total = Numerics.Float_utils.sum raw in
    let deltas = Array.map (fun v -> v /. total) raw in
    let ra = 0.3 +. Prob.Rng.float rng and rb = 0.3 +. Prob.Rng.float rng in
    let seed = Prob.Rng.int rng 10_000 in
    let mk () =
      { (Netsim.Runner.default_config ~protocol ~power_db:8.
           ~gains:paper_gains ~blocks:60 ~block_symbols:500 ())
        with
        Netsim.Runner.fading =
          Channel.Fading.create ~rng_seed:seed ~mean:paper_gains ();
        mode = Netsim.Runner.Fixed { deltas; ra; rb };
        block_symbols = 500;
      }
    in
    let r1 = Netsim.Runner.run (mk ()) in
    let r2 = Netsim.Detailed.run (mk ()) in
    Alcotest.(check int)
      (Bidir.Protocol.name protocol ^ " same delivered bits")
      (Netsim.Metrics.delivered_bits r1.Netsim.Runner.metrics)
      (Netsim.Metrics.delivered_bits r2.Netsim.Runner.metrics)
  done

(* ------------------------------------------------------------------ *)
(* Figures <-> direct computation                                      *)
(* ------------------------------------------------------------------ *)

let test_fig3_snr_matches_optimize () =
  let f = Bidir.Figures.fig3_snr ~samples:5 () in
  let tdbc =
    List.find (fun s -> s.Bidir.Figures.label = "TDBC") f.Bidir.Figures.series
  in
  List.iter
    (fun (power_db, y) ->
      let s = Bidir.Gaussian.scenario ~power_db ~gains:paper_gains in
      let expected =
        (Bidir.Optimize.sum_rate Bidir.Protocol.Tdbc Bidir.Bound.Inner s)
          .Bidir.Optimize.sum_rate
      in
      Alcotest.(check (float 1e-9)) "series point = direct optimum" expected y)
    tdbc.Bidir.Figures.points

let test_fig4_vertices_achievable () =
  let f = Bidir.Figures.fig4 ~power_db:10. () in
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let hbc_inner =
    List.find (fun x -> x.Bidir.Figures.label = "HBC inner") f.Bidir.Figures.series
  in
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Hbc Bidir.Bound.Inner s in
  List.iter
    (fun (ra, rb) ->
      Alcotest.(check bool) "series vertex achievable" true
        (Bidir.Rate_region.achievable b ~ra ~rb))
    hbc_inner.Bidir.Figures.points

let test_csv_round_trip_values () =
  (* csv rows re-parse to the original series values *)
  let f = Bidir.Figures.fig3_snr ~samples:4 () in
  let csv = Report.figure_csv f in
  let lines = String.split_on_char '\n' csv in
  let data_lines =
    List.filter (fun l -> l <> "" && l <> "series,x,y") lines
  in
  Alcotest.(check int) "row count" (5 * 4) (List.length data_lines);
  let parsed =
    List.map
      (fun l ->
        match String.split_on_char ',' l with
        | [ label; x; y ] -> (label, float_of_string x, float_of_string y)
        | _ -> Alcotest.fail ("bad csv line: " ^ l))
      data_lines
  in
  List.iter
    (fun (series : Bidir.Figures.series) ->
      List.iter
        (fun (x, y) ->
          Alcotest.(check bool) "value present" true
            (List.exists
               (fun (l, x', y') ->
                 l = series.Bidir.Figures.label
                 && abs_float (x -. x') < 1e-5
                 && abs_float (y -. y') < 1e-5)
               parsed))
        series.Bidir.Figures.points)
    f.Bidir.Figures.series

(* ------------------------------------------------------------------ *)
(* Discrete evaluation <-> infotheory                                  *)
(* ------------------------------------------------------------------ *)

let test_discrete_tdbc_matches_formula () =
  (* symmetric BSC network: the TDBC sum rate has a closed form.
     With all links BSC(p) and uniform inputs, every MI is c = 1 - H(p);
     constraints Ra <= d1 c, Ra <= (d1 + d3) c, ... reduce to the
     two-hop split sum = c (relay decode binds; side info covers the
     rest), i.e. max over d of min(d1, d2) pattern -> sum rate = c. *)
  let p = 0.08 in
  let c = 1. -. Infotheory.Info.binary_entropy p in
  let net = Bidir.Discrete.bsc_network ~p_ab:p ~p_ar:p ~p_br:p ~p_mac:p in
  let b =
    Bidir.Discrete.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner net
      (Bidir.Discrete.uniform_inputs net)
  in
  Alcotest.(check (float 1e-6)) "sum rate = 1 - H(p)" c
    (Bidir.Rate_region.sum (Bidir.Rate_region.max_sum_rate b))

let test_pnc_linearity_through_stack () =
  (* the property the coded_exchange example relies on: a noisy XOR MAC
     observation of two convolutional codewords decodes to the XOR of
     the messages when the noise is light *)
  let code = Coding.Convolutional.k3_rate_half () in
  let rng = Prob.Rng.create ~seed:404 in
  for _ = 1 to 20 do
    let wa = Coding.Bitvec.random rng 48 in
    let wb = Coding.Bitvec.random rng 48 in
    let superposed =
      Coding.Bitvec.xor
        (Coding.Convolutional.encode code wa)
        (Coding.Convolutional.encode code wb)
    in
    (* one channel flip *)
    let i = Prob.Rng.int rng (Coding.Bitvec.length superposed) in
    Coding.Bitvec.set superposed i (not (Coding.Bitvec.get superposed i));
    let wr = Coding.Convolutional.decode code superposed in
    Alcotest.(check bool) "relay decodes the XOR" true
      (Coding.Bitvec.equal wr (Coding.Bitvec.xor wa wb))
  done

(* ------------------------------------------------------------------ *)
(* ARQ <-> outage probability                                          *)
(* ------------------------------------------------------------------ *)

let test_arq_attempts_match_outage () =
  (* mean ARQ attempts for a delivered pair ~ 1 / (1 - p_out) where
     p_out is the analytic pair-outage probability of the fixed rates *)
  let protocol = Bidir.Protocol.Mabc in
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
  let backoff = 0.4 in
  let ra = opt.Bidir.Optimize.ra *. (1. -. backoff) in
  let rb = opt.Bidir.Optimize.rb *. (1. -. backoff) in
  (* analytic-ish: Monte-Carlo outage of the fixed schedule *)
  let fading seed = Channel.Fading.create ~rng_seed:seed ~mean:paper_gains () in
  let f = fading 31 in
  let outs = ref 0 in
  let trials = 4000 in
  for _ = 1 to trials do
    let gains = Channel.Fading.draw f in
    let o =
      Netsim.Runner.decode_outcome protocol ~power:s.Bidir.Gaussian.power
        ~gains ~deltas:opt.Bidir.Optimize.deltas ~ra ~rb
    in
    if not (o.Netsim.Runner.b_gets_a && o.Netsim.Runner.a_gets_b) then incr outs
  done;
  let p_out = float_of_int !outs /. float_of_int trials in
  let r =
    Netsim.Arq.run
      { Netsim.Arq.protocol;
        power = s.Bidir.Gaussian.power;
        fading = fading 32;
        deltas = opt.Bidir.Optimize.deltas;
        ra;
        rb;
        block_symbols = 500;
        messages = 1500;
        max_retries = 30;
        seed = 33;
      }
  in
  let expected = 1. /. (1. -. p_out) in
  Alcotest.(check bool)
    (Printf.sprintf "attempts %.3f ~ geometric mean %.3f"
       r.Netsim.Arq.mean_attempts expected)
    true
    (abs_float (r.Netsim.Arq.mean_attempts -. expected) /. expected < 0.1)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_bound_satisfied_implies_delivery ]

let suites =
  [ ( "integration",
      [ Alcotest.test_case "runner = detailed on random schedules" `Quick
          test_runner_detailed_agree_random_schedules;
        Alcotest.test_case "fig3-snr = Optimize" `Quick test_fig3_snr_matches_optimize;
        Alcotest.test_case "fig4 vertices achievable" `Quick test_fig4_vertices_achievable;
        Alcotest.test_case "csv round trip" `Quick test_csv_round_trip_values;
        Alcotest.test_case "discrete TDBC closed form" `Quick
          test_discrete_tdbc_matches_formula;
        Alcotest.test_case "PNC linearity" `Quick test_pnc_linearity_through_stack;
        Alcotest.test_case "ARQ attempts ~ geometric" `Slow
          test_arq_attempts_match_outage;
      ]
      @ qcheck_cases );
  ]
