(* Tests for the numerics substrate. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Float_utils                                                         *)
(* ------------------------------------------------------------------ *)

let test_log2 () =
  check_float "log2 8" 3. (Numerics.Float_utils.log2 8.);
  check_float "log2 1" 0. (Numerics.Float_utils.log2 1.);
  check_float "log2 sqrt2" 0.5 (Numerics.Float_utils.log2 (sqrt 2.))

let test_db_round_trip () =
  List.iter
    (fun d ->
      check_float ~eps:1e-9 "db round trip" d
        (Numerics.Float_utils.lin_to_db (Numerics.Float_utils.db_to_lin d)))
    [ -20.; -3.; 0.; 5.; 10.; 17.3 ]

let test_db_values () =
  check_float "0 dB" 1. (Numerics.Float_utils.db_to_lin 0.);
  check_float "10 dB" 10. (Numerics.Float_utils.db_to_lin 10.);
  check_float "20 dB" 100. (Numerics.Float_utils.db_to_lin 20.)

let test_lin_to_db_invalid () =
  Alcotest.check_raises "non-positive" (Invalid_argument
    "Float_utils.lin_to_db: non-positive ratio") (fun () ->
      ignore (Numerics.Float_utils.lin_to_db 0.))

let test_clamp () =
  check_float "below" 1. (Numerics.Float_utils.clamp ~lo:1. ~hi:2. 0.);
  check_float "above" 2. (Numerics.Float_utils.clamp ~lo:1. ~hi:2. 3.);
  check_float "inside" 1.5 (Numerics.Float_utils.clamp ~lo:1. ~hi:2. 1.5)

let test_linspace () =
  let a = Numerics.Float_utils.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_float "first" 0. a.(0);
  check_float "last" 1. a.(4);
  check_float "middle" 0.5 a.(2)

let test_logspace () =
  let a = Numerics.Float_utils.logspace 0. 2. 3 in
  check_float "first" 1. a.(0);
  check_float "mid" 10. a.(1);
  check_float "last" 100. a.(2)

let test_kahan_sum () =
  (* adding many tiny values to a large one: naive sum loses them *)
  let a = Array.make 10_000_001 1e-8 in
  a.(0) <- 1e8;
  check_float ~eps:1e-6 "kahan" (1e8 +. 0.1) (Numerics.Float_utils.sum a)

let test_max_by () =
  Alcotest.(check int) "max_by" 9
    (Numerics.Float_utils.max_by float_of_int [ 3; 9; 1; 7 ])

let test_fold_range () =
  Alcotest.(check int) "sum 0..9" 45
    (Numerics.Float_utils.fold_range 10 ~init:0 ~f:( + ))

(* ------------------------------------------------------------------ *)
(* Special                                                             *)
(* ------------------------------------------------------------------ *)

let test_erf_values () =
  check_float ~eps:1e-6 "erf 0" 0. (Numerics.Special.erf 0.);
  check_float ~eps:1e-6 "erf 1" 0.8427007929 (Numerics.Special.erf 1.);
  check_float ~eps:1e-6 "erf -1" (-0.8427007929) (Numerics.Special.erf (-1.));
  check_float ~eps:1e-6 "erf 2" 0.9953222650 (Numerics.Special.erf 2.)

let test_q_function () =
  check_float ~eps:1e-6 "Q(0)" 0.5 (Numerics.Special.q_function 0.);
  check_float ~eps:1e-6 "Q(1.644853)" 0.05
    (Numerics.Special.q_function 1.6448536269);
  check_float ~eps:1e-7 "Q(3)" 0.0013498980
    (Numerics.Special.q_function 3.)

let test_inv_q () =
  List.iter
    (fun p ->
      check_float ~eps:1e-6 "inv_q round trip" p
        (Numerics.Special.q_function (Numerics.Special.inv_q p)))
    [ 0.01; 0.05; 0.3; 0.5; 0.9; 0.99 ]

let test_gaussian_cdf_symmetry () =
  List.iter
    (fun x ->
      check_float ~eps:1e-7 "cdf(-x) = 1 - cdf(x)"
        (1. -. Numerics.Special.gaussian_cdf x)
        (Numerics.Special.gaussian_cdf (-.x)))
    [ 0.3; 1.; 2.5 ]

(* ------------------------------------------------------------------ *)
(* Root                                                                *)
(* ------------------------------------------------------------------ *)

let test_bisect () =
  let r = Numerics.Root.bisect ~f:(fun x -> (x *. x) -. 2.) 0. 2. in
  check_float ~eps:1e-8 "sqrt 2" (sqrt 2.) r

let test_brent () =
  let r = Numerics.Root.brent ~f:(fun x -> cos x -. x) 0. 1. in
  check_float ~eps:1e-9 "dottie number" 0.7390851332151607 r

let test_brent_linear () =
  let r = Numerics.Root.brent ~f:(fun x -> (3. *. x) -. 6.) 0. 10. in
  check_float ~eps:1e-9 "linear root" 2. r

let test_crossings () =
  let roots =
    Numerics.Root.crossings ~f:sin ~lo:1. ~hi:7. ~samples:100
  in
  Alcotest.(check int) "two roots of sin on [1,7]" 2 (List.length roots);
  (match roots with
  | [ r1; r2 ] ->
    check_float ~eps:1e-8 "pi" Float.pi r1;
    check_float ~eps:1e-8 "2pi" (2. *. Float.pi) r2
  | _ -> Alcotest.fail "expected exactly two roots")

let test_bisect_bad_bracket () =
  Alcotest.check_raises "no bracket"
    (Invalid_argument "Root.bisect: endpoints do not bracket a root")
    (fun () -> ignore (Numerics.Root.bisect ~f:(fun x -> x +. 10.) 0. 1.))

(* ------------------------------------------------------------------ *)
(* Optimize1d                                                          *)
(* ------------------------------------------------------------------ *)

let test_golden_max () =
  let x, v =
    Numerics.Optimize1d.golden_max ~f:(fun x -> -.((x -. 0.3) ** 2.)) 0. 1.
  in
  check_float ~eps:1e-6 "argmax" 0.3 x;
  check_float ~eps:1e-9 "max" 0. v

let test_golden_min () =
  let x, v = Numerics.Optimize1d.golden_min ~f:(fun x -> (x -. 2.) ** 2.) 0. 5. in
  check_float ~eps:1e-6 "argmin" 2. x;
  check_float ~eps:1e-9 "min" 0. v

let test_grid_max_multimodal () =
  (* two bumps; the global maximum is the right one *)
  let f x = exp (-.((x -. 0.2) ** 2.) /. 0.001) +. (2. *. exp (-.((x -. 0.8) ** 2.) /. 0.001)) in
  let x, _ = Numerics.Optimize1d.grid_max ~lo:0. ~hi:1. ~samples:101 f in
  check_float ~eps:1e-4 "global argmax" 0.8 x

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summarize () =
  let s = Numerics.Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. s.Numerics.Stats.mean;
  check_float ~eps:1e-9 "variance" (32. /. 7.) s.Numerics.Stats.variance;
  check_float "min" 2. s.Numerics.Stats.min;
  check_float "max" 9. s.Numerics.Stats.max

let test_quantile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Numerics.Stats.median a);
  check_float "q0" 1. (Numerics.Stats.quantile a 0.);
  check_float "q1" 5. (Numerics.Stats.quantile a 1.);
  check_float "q25" 2. (Numerics.Stats.quantile a 0.25)

let test_histogram () =
  let h = Numerics.Stats.histogram ~bins:2 [| 0.; 0.1; 0.9; 1. |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 4 total

let test_ci_contains_mean () =
  let a = Array.init 1000 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Numerics.Stats.confidence_interval_95 a in
  Alcotest.(check bool) "mean in CI" true (lo <= 4.5 && 4.5 <= hi)

(* ------------------------------------------------------------------ *)
(* Geometry: Vec2 / Hull / Polygon                                     *)
(* ------------------------------------------------------------------ *)

let v = Numerics.Vec2.make

let test_vec2_ops () =
  let a = v 1. 2. and b = v 3. 4. in
  check_float "dot" 11. (Numerics.Vec2.dot a b);
  check_float "cross" (-2.) (Numerics.Vec2.cross a b);
  check_float "dist" (2. *. sqrt 2.) (Numerics.Vec2.dist a b);
  Alcotest.(check bool) "lerp midpoint" true
    (Numerics.Vec2.equal (v 2. 3.) (Numerics.Vec2.lerp a b 0.5))

let test_hull_square () =
  let pts =
    [ v 0. 0.; v 1. 0.; v 1. 1.; v 0. 1.; v 0.5 0.5; v 0.2 0.8 ]
  in
  let hull = Numerics.Hull.convex_hull pts in
  Alcotest.(check int) "square hull has 4 vertices" 4 (List.length hull);
  Alcotest.(check bool) "hull is ccw-convex" true
    (Numerics.Hull.is_convex_ccw hull)

let test_hull_collinear () =
  let pts = [ v 0. 0.; v 1. 1.; v 2. 2.; v 3. 3. ] in
  let hull = Numerics.Hull.convex_hull pts in
  Alcotest.(check int) "collinear -> 2 extremes" 2 (List.length hull)

let test_hull_duplicates () =
  let pts = [ v 0. 0.; v 0. 0.; v 1. 0.; v 1. 0.; v 0. 1. ] in
  let hull = Numerics.Hull.convex_hull pts in
  Alcotest.(check int) "triangle" 3 (List.length hull)

let test_polygon_area () =
  let square = [ v 0. 0.; v 2. 0.; v 2. 2.; v 0. 2. ] in
  check_float "square area" 4. (Numerics.Polygon.area square);
  let triangle = [ v 0. 0.; v 1. 0.; v 0. 1. ] in
  check_float "triangle area" 0.5 (Numerics.Polygon.area triangle)

let test_polygon_contains () =
  let square = [ v 0. 0.; v 2. 0.; v 2. 2.; v 0. 2. ] in
  Alcotest.(check bool) "inside" true (Numerics.Polygon.contains square (v 1. 1.));
  Alcotest.(check bool) "boundary" true (Numerics.Polygon.contains square (v 2. 1.));
  Alcotest.(check bool) "outside" false
    (Numerics.Polygon.contains square (v 2.1 1.))

(* regression: a clockwise vertex list used to report every interior
   point as outside *)
let test_polygon_contains_clockwise () =
  let cw_square = [ v 0. 2.; v 2. 2.; v 2. 0.; v 0. 0. ] in
  Alcotest.(check bool) "cw inside" true
    (Numerics.Polygon.contains cw_square (v 1. 1.));
  Alcotest.(check bool) "cw boundary" true
    (Numerics.Polygon.contains cw_square (v 2. 1.));
  Alcotest.(check bool) "cw outside" false
    (Numerics.Polygon.contains cw_square (v 2.1 1.));
  check_float "cw area" 4. (Numerics.Polygon.area cw_square);
  check_float "cw distance" 1.
    (Numerics.Polygon.distance_to_boundary cw_square (v 1. 1.))

let test_down_closure () =
  let region = Numerics.Polygon.down_closure [ v 1. 2.; v 2. 1. ] in
  Alcotest.(check bool) "origin inside" true
    (Numerics.Polygon.contains region (v 0. 0.));
  Alcotest.(check bool) "projection inside" true
    (Numerics.Polygon.contains region (v 1. 0.));
  Alcotest.(check bool) "time-share midpoint inside" true
    (Numerics.Polygon.contains region (v 1.5 1.5))

let test_distance_to_boundary () =
  let square = [ v 0. 0.; v 2. 0.; v 2. 2.; v 0. 2. ] in
  check_float "center" 1. (Numerics.Polygon.distance_to_boundary square (v 1. 1.));
  check_float "outside point" 1.
    (Numerics.Polygon.distance_to_boundary square (v 3. 1.))

(* ------------------------------------------------------------------ *)
(* Interp                                                              *)
(* ------------------------------------------------------------------ *)

let test_interp () =
  let f = Numerics.Interp.of_samples [ (0., 0.); (1., 2.); (2., 0.) ] in
  check_float "node" 2. (Numerics.Interp.eval f 1.);
  check_float "between" 1. (Numerics.Interp.eval f 0.5);
  check_float "extrapolate" (-2.) (Numerics.Interp.eval f 3.)

let test_tabulate () =
  let f = Numerics.Interp.tabulate ~f:(fun x -> x *. x) ~lo:0. ~hi:2. ~samples:200 in
  check_float ~eps:1e-3 "x^2 at 1.37" (1.37 ** 2.) (Numerics.Interp.eval f 1.37)

(* ------------------------------------------------------------------ *)
(* Matrix                                                              *)
(* ------------------------------------------------------------------ *)

let test_matrix_solve () =
  let a = Numerics.Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  match Numerics.Matrix.solve a [| 5.; 10. |] with
  | None -> Alcotest.fail "unexpected singular"
  | Some x ->
    check_float ~eps:1e-9 "x0" 1. x.(0);
    check_float ~eps:1e-9 "x1" 3. x.(1)

let test_matrix_singular () =
  let a = Numerics.Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "singular" true (Numerics.Matrix.solve a [| 1.; 2. |] = None)

let test_matrix_mul_identity () =
  let a = Numerics.Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let i = Numerics.Matrix.identity 2 in
  let p = Numerics.Matrix.mul a i in
  check_float "1,1" 4. (Numerics.Matrix.get p 1 1);
  check_float "0,1" 2. (Numerics.Matrix.get p 0 1)

(* ------------------------------------------------------------------ *)
(* Integrate                                                           *)
(* ------------------------------------------------------------------ *)

let test_simpson () =
  let v = Numerics.Integrate.simpson ~f:sin ~lo:0. ~hi:Float.pi ~n:100 in
  check_float ~eps:1e-6 "int sin" 2. v

let test_adaptive () =
  let v = Numerics.Integrate.adaptive_simpson ~lo:0. ~hi:10. (fun x -> exp (-.x)) in
  check_float ~eps:1e-8 "int exp" (1. -. exp (-10.)) v

let test_trapezoid () =
  let v = Numerics.Integrate.trapezoid ~f:(fun x -> x) ~lo:0. ~hi:1. ~n:10 in
  check_float ~eps:1e-12 "linear exact" 0.5 v

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let pts_gen =
  QCheck.(
    list_of_size Gen.(int_range 3 40)
      (pair (float_bound_exclusive 10.) (float_bound_exclusive 10.)))

let prop_hull_contains_all =
  QCheck.Test.make ~count:200 ~name:"hull contains all input points" pts_gen
    (fun pts ->
      let pts = List.map (fun (x, y) -> v x y) pts in
      let hull = Numerics.Hull.convex_hull pts in
      match hull with
      | [] | [ _ ] | [ _; _ ] -> true
      | _ -> List.for_all (Numerics.Polygon.contains hull) pts)

let prop_hull_idempotent =
  QCheck.Test.make ~count:200 ~name:"hull of hull = hull" pts_gen (fun pts ->
      let pts = List.map (fun (x, y) -> v x y) pts in
      let h1 = Numerics.Hull.convex_hull pts in
      let h2 = Numerics.Hull.convex_hull h1 in
      List.length h1 = List.length h2)

let prop_hull_convex =
  QCheck.Test.make ~count:200 ~name:"hull is convex ccw" pts_gen (fun pts ->
      let pts = List.map (fun (x, y) -> v x y) pts in
      Numerics.Hull.is_convex_ccw (Numerics.Hull.convex_hull pts))

let prop_clamp_in_range =
  QCheck.Test.make ~count:200 ~name:"clamp lands inside"
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.)
              (float_range (-100.) 100.))
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let c = Numerics.Float_utils.clamp ~lo ~hi x in
      lo <= c && c <= hi)

let prop_quantile_monotone =
  QCheck.Test.make ~count:100 ~name:"quantile is monotone in p"
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-50.) 50.))
    (fun xs ->
      let a = Array.of_list xs in
      let q25 = Numerics.Stats.quantile a 0.25 in
      let q50 = Numerics.Stats.quantile a 0.5 in
      let q75 = Numerics.Stats.quantile a 0.75 in
      q25 <= q50 && q50 <= q75)

let prop_polygon_orientation_invariant =
  QCheck.Test.make ~count:200
    ~name:"contains/area/distance agree on CCW and CW windings"
    QCheck.(
      pair pts_gen
        (pair (float_bound_exclusive 12.) (float_bound_exclusive 12.)))
    (fun (pts, (px, py)) ->
      let pts = List.map (fun (x, y) -> v x y) pts in
      let hull = Numerics.Hull.convex_hull pts in
      match hull with
      | [] | [ _ ] | [ _; _ ] -> true
      | _ ->
        let cw = List.rev hull in
        let p = v px py in
        Numerics.Polygon.contains hull p = Numerics.Polygon.contains cw p
        && abs_float (Numerics.Polygon.area hull -. Numerics.Polygon.area cw)
           < 1e-9
        && abs_float
             (Numerics.Polygon.distance_to_boundary hull p
              -. Numerics.Polygon.distance_to_boundary cw p)
           < 1e-9)

let prop_brent_finds_root =
  QCheck.Test.make ~count:100 ~name:"brent solves monotone cubic"
    QCheck.(float_range 0.1 50.)
    (fun c ->
      (* f(x) = x^3 + x - c is strictly increasing with a unique root *)
      let f x = (x ** 3.) +. x -. c in
      let r = Numerics.Root.brent ~f 0. 10. in
      abs_float (f r) < 1e-6)

let prop_erf_odd =
  QCheck.Test.make ~count:100 ~name:"erf is odd"
    QCheck.(float_range (-4.) 4.)
    (fun x ->
      abs_float (Numerics.Special.erf x +. Numerics.Special.erf (-.x)) < 1e-6)

let prop_summarize_bounds =
  QCheck.Test.make ~count:100 ~name:"min <= mean <= max"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-50.) 50.))
    (fun xs ->
      let s = Numerics.Stats.summarize (Array.of_list xs) in
      s.Numerics.Stats.min <= s.Numerics.Stats.mean +. 1e-9
      && s.Numerics.Stats.mean <= s.Numerics.Stats.max +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_hull_contains_all;
      prop_hull_idempotent;
      prop_hull_convex;
      prop_clamp_in_range;
      prop_quantile_monotone;
      prop_polygon_orientation_invariant;
      prop_brent_finds_root;
      prop_erf_odd;
      prop_summarize_bounds;
    ]

let suites =
  [ ( "numerics.float_utils",
      [ Alcotest.test_case "log2" `Quick test_log2;
        Alcotest.test_case "db round trip" `Quick test_db_round_trip;
        Alcotest.test_case "db values" `Quick test_db_values;
        Alcotest.test_case "lin_to_db invalid" `Quick test_lin_to_db_invalid;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "linspace" `Quick test_linspace;
        Alcotest.test_case "logspace" `Quick test_logspace;
        Alcotest.test_case "kahan sum" `Quick test_kahan_sum;
        Alcotest.test_case "max_by" `Quick test_max_by;
        Alcotest.test_case "fold_range" `Quick test_fold_range;
      ] );
    ( "numerics.special",
      [ Alcotest.test_case "erf values" `Quick test_erf_values;
        Alcotest.test_case "q function" `Quick test_q_function;
        Alcotest.test_case "inverse q" `Quick test_inv_q;
        Alcotest.test_case "cdf symmetry" `Quick test_gaussian_cdf_symmetry;
      ] );
    ( "numerics.root",
      [ Alcotest.test_case "bisect" `Quick test_bisect;
        Alcotest.test_case "brent" `Quick test_brent;
        Alcotest.test_case "brent linear" `Quick test_brent_linear;
        Alcotest.test_case "crossings" `Quick test_crossings;
        Alcotest.test_case "bad bracket" `Quick test_bisect_bad_bracket;
      ] );
    ( "numerics.optimize1d",
      [ Alcotest.test_case "golden max" `Quick test_golden_max;
        Alcotest.test_case "golden min" `Quick test_golden_min;
        Alcotest.test_case "grid max multimodal" `Quick test_grid_max_multimodal;
      ] );
    ( "numerics.stats",
      [ Alcotest.test_case "summarize" `Quick test_summarize;
        Alcotest.test_case "quantile" `Quick test_quantile;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "confidence interval" `Quick test_ci_contains_mean;
      ] );
    ( "numerics.geometry",
      [ Alcotest.test_case "vec2 ops" `Quick test_vec2_ops;
        Alcotest.test_case "hull square" `Quick test_hull_square;
        Alcotest.test_case "hull collinear" `Quick test_hull_collinear;
        Alcotest.test_case "hull duplicates" `Quick test_hull_duplicates;
        Alcotest.test_case "polygon area" `Quick test_polygon_area;
        Alcotest.test_case "polygon contains" `Quick test_polygon_contains;
        Alcotest.test_case "polygon contains clockwise" `Quick
          test_polygon_contains_clockwise;
        Alcotest.test_case "down closure" `Quick test_down_closure;
        Alcotest.test_case "distance to boundary" `Quick test_distance_to_boundary;
      ] );
    ( "numerics.interp",
      [ Alcotest.test_case "interp" `Quick test_interp;
        Alcotest.test_case "tabulate" `Quick test_tabulate;
      ] );
    ( "numerics.matrix",
      [ Alcotest.test_case "solve" `Quick test_matrix_solve;
        Alcotest.test_case "singular" `Quick test_matrix_singular;
        Alcotest.test_case "mul identity" `Quick test_matrix_mul_identity;
      ] );
    ( "numerics.integrate",
      [ Alcotest.test_case "simpson" `Quick test_simpson;
        Alcotest.test_case "adaptive" `Quick test_adaptive;
        Alcotest.test_case "trapezoid" `Quick test_trapezoid;
      ] );
    ("numerics.properties", qcheck_cases);
  ]
