(* Tests for the terminal plotting and table rendering library. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Canvas                                                              *)
(* ------------------------------------------------------------------ *)

let test_canvas_plot_get () =
  let c = Chart.Canvas.create ~width:10 ~height:5 in
  Chart.Canvas.plot c ~x:3 ~y:2 '*';
  Alcotest.(check char) "get" '*' (Chart.Canvas.get c ~x:3 ~y:2);
  Alcotest.(check char) "blank elsewhere" ' ' (Chart.Canvas.get c ~x:4 ~y:2)

let test_canvas_clipping () =
  let c = Chart.Canvas.create ~width:4 ~height:4 in
  (* out-of-range plots are silently ignored *)
  Chart.Canvas.plot c ~x:(-1) ~y:0 'x';
  Chart.Canvas.plot c ~x:0 ~y:99 'x';
  Alcotest.(check char) "oob get blank" ' ' (Chart.Canvas.get c ~x:(-1) ~y:0)

let test_canvas_origin_is_bottom_left () =
  let c = Chart.Canvas.create ~width:3 ~height:2 in
  Chart.Canvas.plot c ~x:0 ~y:0 'b';
  Chart.Canvas.plot c ~x:0 ~y:1 't';
  let rendered = Chart.Canvas.render c in
  (match String.split_on_char '\n' rendered with
  | [ top; bottom ] ->
    Alcotest.(check char) "top row" 't' top.[0];
    Alcotest.(check char) "bottom row" 'b' bottom.[0]
  | _ -> Alcotest.fail "expected two rows")

let test_canvas_lines () =
  let c = Chart.Canvas.create ~width:5 ~height:5 in
  Chart.Canvas.line c ~x0:0 ~y0:0 ~x1:4 ~y1:4 '.';
  for i = 0 to 4 do
    Alcotest.(check char) "diagonal" '.' (Chart.Canvas.get c ~x:i ~y:i)
  done;
  let c2 = Chart.Canvas.create ~width:5 ~height:5 in
  Chart.Canvas.hline c2 ~y:2 '-';
  Chart.Canvas.vline c2 ~x:2 '|';
  Alcotest.(check char) "hline" '-' (Chart.Canvas.get c2 ~x:0 ~y:2);
  Alcotest.(check char) "vline" '|' (Chart.Canvas.get c2 ~x:2 ~y:0)

let test_canvas_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Canvas.create: empty canvas")
    (fun () -> ignore (Chart.Canvas.create ~width:0 ~height:3))

(* ------------------------------------------------------------------ *)
(* Line_chart                                                          *)
(* ------------------------------------------------------------------ *)

let series label points = { Chart.Line_chart.label; points }

let test_line_chart_renders () =
  let out =
    Chart.Line_chart.render
      [ series "rising" [ (0., 0.); (1., 1.); (2., 4.) ];
        series "flat" [ (0., 2.); (2., 2.) ];
      ]
  in
  Alcotest.(check bool) "legend has labels" true (contains ~needle:"rising" out);
  Alcotest.(check bool) "markers present" true (contains ~needle:"*" out);
  Alcotest.(check bool) "second marker" true (contains ~needle:"+" out)

let test_line_chart_empty () =
  Alcotest.(check string) "placeholder" "(no data)" (Chart.Line_chart.render []);
  Alcotest.(check string) "empty series" "(no data)"
    (Chart.Line_chart.render [ series "void" [] ])

let test_line_chart_single_point () =
  (* degenerate range must not divide by zero *)
  let out = Chart.Line_chart.render [ series "dot" [ (1., 1.) ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_line_chart_zero_origin () =
  let cfg =
    { Chart.Line_chart.default_config with Chart.Line_chart.width = 30; height = 8 }
  in
  let out =
    Chart.Line_chart.render_xy ~config:cfg [ series "s" [ (5., 5.); (6., 6.) ] ]
  in
  (* the zero-anchored frame must show 0.000 on both axes *)
  Alcotest.(check bool) "y axis from zero" true (contains ~needle:"0.000" out)

let test_line_chart_title_labels () =
  let cfg =
    { Chart.Line_chart.default_config with
      Chart.Line_chart.title = "My Title";
      xlabel = "the x";
      ylabel = "the y";
    }
  in
  let out = Chart.Line_chart.render ~config:cfg [ series "s" [ (0., 0.); (1., 1.) ] ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle out))
    [ "My Title"; "the x"; "the y" ]

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_alignment () =
  let out =
    Chart.Table.render ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22222" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: _ ->
    Alcotest.(check bool) "header" true (contains ~needle:"name" header);
    Alcotest.(check bool) "rule dashes" true (contains ~needle:"----" rule)
  | _ -> Alcotest.fail "too few lines");
  (* all non-empty lines have equal width (column alignment) *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  (match widths with
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
  | [] -> Alcotest.fail "no lines")

let test_table_short_rows_padded () =
  let out = Chart.Table.render ~headers:[ "a"; "b" ] ~rows:[ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (contains ~needle:"only" out)

let test_table_long_row_rejected () =
  Alcotest.check_raises "too long"
    (Invalid_argument "Table: row longer than header") (fun () ->
      ignore (Chart.Table.render ~headers:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_markdown_table () =
  let out =
    Chart.Table.render_markdown ~headers:[ "h1"; "h2" ] ~rows:[ [ "x"; "y" ] ]
  in
  Alcotest.(check bool) "pipes" true (contains ~needle:"| x | y |" out);
  Alcotest.(check bool) "separator" true (contains ~needle:"| --- | --- |" out)

let test_csv_escaping () =
  let out =
    Chart.Table.render_csv ~headers:[ "plain"; "tricky" ]
      ~rows:[ [ "v"; "a,b \"quoted\"" ] ]
  in
  Alcotest.(check bool) "field quoted" true
    (contains ~needle:"\"a,b \"\"quoted\"\"\"" out)

let test_csv_round_shape () =
  let out = Chart.Table.render_csv ~headers:[ "x"; "y" ] ~rows:[ [ "1"; "2" ] ] in
  Alcotest.(check string) "exact" "x,y\n1,2\n" out

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_figure () =
  let fig = Bidir.Figures.fig3 ~samples:5 () in
  let out = Report.render_figure fig in
  Alcotest.(check bool) "has id" true (contains ~needle:"[fig3]" out);
  Alcotest.(check bool) "has HBC legend" true (contains ~needle:"HBC" out)

let test_report_table () =
  let out = Report.render_table (Bidir.Figures.gap_table ()) in
  Alcotest.(check bool) "has title" true (contains ~needle:"[gap]" out);
  Alcotest.(check bool) "has TDBC rows" true (contains ~needle:"TDBC" out)

let test_report_csv () =
  let fig = Bidir.Figures.fig3 ~samples:3 () in
  let csv = Report.figure_csv fig in
  (match String.split_on_char '\n' csv with
  | header :: _ -> Alcotest.(check string) "header" "series,x,y" header
  | [] -> Alcotest.fail "empty csv");
  (* 5 protocols x 3 samples + header + trailing newline *)
  Alcotest.(check int) "row count" 17
    (List.length (String.split_on_char '\n' csv))

let suites =
  [ ( "chart.canvas",
      [ Alcotest.test_case "plot/get" `Quick test_canvas_plot_get;
        Alcotest.test_case "clipping" `Quick test_canvas_clipping;
        Alcotest.test_case "origin bottom-left" `Quick test_canvas_origin_is_bottom_left;
        Alcotest.test_case "lines" `Quick test_canvas_lines;
        Alcotest.test_case "invalid" `Quick test_canvas_invalid;
      ] );
    ( "chart.line_chart",
      [ Alcotest.test_case "renders" `Quick test_line_chart_renders;
        Alcotest.test_case "empty" `Quick test_line_chart_empty;
        Alcotest.test_case "single point" `Quick test_line_chart_single_point;
        Alcotest.test_case "zero origin" `Quick test_line_chart_zero_origin;
        Alcotest.test_case "title and labels" `Quick test_line_chart_title_labels;
      ] );
    ( "chart.table",
      [ Alcotest.test_case "alignment" `Quick test_table_alignment;
        Alcotest.test_case "short rows padded" `Quick test_table_short_rows_padded;
        Alcotest.test_case "long row rejected" `Quick test_table_long_row_rejected;
        Alcotest.test_case "markdown" `Quick test_markdown_table;
        Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
        Alcotest.test_case "csv shape" `Quick test_csv_round_shape;
      ] );
    ( "report",
      [ Alcotest.test_case "figure" `Quick test_report_figure;
        Alcotest.test_case "table" `Quick test_report_table;
        Alcotest.test_case "csv" `Quick test_report_csv;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Heatmap                                                             *)
(* ------------------------------------------------------------------ *)

let test_heatmap_render () =
  let map =
    Chart.Heatmap.tabulate
      ~f:(fun ~x ~y -> x +. y > 1.)
      ~glyph:(fun b -> if b then '#' else '.')
      ~x_axis:[| 0.; 0.5; 1. |] ~y_axis:[| 0.; 1. |] ~title:"halves"
      ~xlabel:"x" ~ylabel:"y"
      ~legend:[ ('#', "above"); ('.', "below") ]
  in
  let out = Chart.Heatmap.render map in
  Alcotest.(check bool) "title" true (contains ~needle:"halves" out);
  Alcotest.(check bool) "legend" true (contains ~needle:"# above" out);
  Alcotest.(check bool) "both glyphs" true
    (contains ~needle:"#" out && contains ~needle:"." out)

let test_heatmap_orientation () =
  (* row 0 is the bottom: a map marking only the lowest row must show
     its glyph on the LAST rendered grid line *)
  let map =
    Chart.Heatmap.tabulate
      ~f:(fun ~x:_ ~y -> y < 0.5)
      ~glyph:(fun b -> if b then 'b' else '-')
      ~x_axis:[| 0.; 1. |] ~y_axis:[| 0.; 1. |] ~title:"" ~xlabel:""
      ~ylabel:"" ~legend:[]
  in
  let out = Chart.Heatmap.render map in
  let grid_lines =
    List.filter (fun l -> contains ~needle:"|" l)
      (String.split_on_char '\n' out)
  in
  (match grid_lines with
  | [ top; bottom ] ->
    Alcotest.(check bool) "top has no b" false (contains ~needle:"b" top);
    Alcotest.(check bool) "bottom has b" true (contains ~needle:"b" bottom)
  | _ -> Alcotest.fail "expected two grid rows")

let test_heatmap_invalid () =
  let bad =
    { Chart.Heatmap.cells = [| [| 0 |] |];
      glyph = (fun _ -> 'x');
      x_axis = [| 0.; 1. |];
      y_axis = [| 0. |];
      title = "";
      xlabel = "";
      ylabel = "";
      legend = [];
    }
  in
  Alcotest.check_raises "ragged"
    (Invalid_argument "Heatmap: column count does not match the x axis")
    (fun () -> ignore (Chart.Heatmap.render bad))

let test_protocol_map () =
  let out = Report.protocol_map ~positions:9 ~powers:5 () in
  Alcotest.(check bool) "legend names TDBC" true (contains ~needle:"T TDBC" out);
  (* at these parameters both MABC and TDBC regimes appear *)
  Alcotest.(check bool) "M appears" true (contains ~needle:"M" out);
  Alcotest.(check bool) "T appears" true (contains ~needle:"T" out)

let heatmap_cases =
  [ Alcotest.test_case "render" `Quick test_heatmap_render;
    Alcotest.test_case "orientation" `Quick test_heatmap_orientation;
    Alcotest.test_case "invalid" `Quick test_heatmap_invalid;
    Alcotest.test_case "protocol map" `Quick test_protocol_map;
  ]

let suites = suites @ [ ("chart.heatmap", heatmap_cases) ]

(* ------------------------------------------------------------------ *)
(* Svg                                                                 *)
(* ------------------------------------------------------------------ *)

let count_needle ~needle haystack =
  let nl = String.length needle in
  let rec go i acc =
    if i + nl > String.length haystack then acc
    else if String.sub haystack i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_document () =
  let out =
    Chart.Svg.render
      [ series "one" [ (0., 0.); (1., 1.) ];
        series "two" [ (0., 1.); (1., 0.) ];
      ]
  in
  Alcotest.(check bool) "svg root" true (contains ~needle:"<svg" out);
  Alcotest.(check bool) "closes" true (contains ~needle:"</svg>" out);
  Alcotest.(check int) "one polyline per series" 2
    (count_needle ~needle:"<polyline" out);
  Alcotest.(check int) "markers" 4 (count_needle ~needle:"<circle" out);
  Alcotest.(check bool) "legend" true (contains ~needle:">two<" out)

let test_svg_empty () =
  let out = Chart.Svg.render [] in
  Alcotest.(check bool) "valid" true (contains ~needle:"<svg" out);
  Alcotest.(check bool) "note" true (contains ~needle:"no data" out)

let test_svg_escaping () =
  let out = Chart.Svg.render [ series "a<&>b" [ (0., 0.); (1., 1.) ] ] in
  Alcotest.(check bool) "escaped" true (contains ~needle:"a&lt;&amp;&gt;b" out);
  Alcotest.(check bool) "no raw" false (contains ~needle:"a<&>b" out)

let test_svg_write_file () =
  let path = Filename.temp_file "bidir_test" ".svg" in
  Chart.Svg.write_file ~path [ series "s" [ (0., 0.); (2., 4.) ] ];
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 200)

let test_report_svg () =
  let out = Report.figure_svg (Bidir.Figures.fig3_snr ~samples:4 ()) in
  Alcotest.(check int) "five protocol polylines" 5
    (count_needle ~needle:"<polyline" out);
  Alcotest.(check bool) "axis label" true (contains ~needle:"P (dB)" out)

let svg_cases =
  [ Alcotest.test_case "document" `Quick test_svg_document;
    Alcotest.test_case "empty" `Quick test_svg_empty;
    Alcotest.test_case "escaping" `Quick test_svg_escaping;
    Alcotest.test_case "write file" `Quick test_svg_write_file;
    Alcotest.test_case "report svg" `Quick test_report_svg;
  ]

let suites = suites @ [ ("chart.svg", svg_cases) ]
