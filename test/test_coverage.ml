(* Coverage sweep: small behaviours of the public API not exercised by
   the main suites — pretty-printers, edge cases, reference vectors. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

(* ------------------------------------------------------------------ *)
(* Numerics odds and ends                                              *)
(* ------------------------------------------------------------------ *)

let test_interp_domain () =
  let f = Numerics.Interp.of_samples [ (1., 0.); (2., 5.); (4., 1.) ] in
  let lo, hi = Numerics.Interp.domain f in
  check_float "lo" 1. lo;
  check_float "hi" 4. hi;
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Interp.of_samples: abscissae must be strictly increasing")
    (fun () -> ignore (Numerics.Interp.of_samples [ (1., 0.); (1., 1.) ]))

let test_simpson_odd_panels () =
  (* odd n is rounded up internally; result still converges *)
  let v = Numerics.Integrate.simpson ~f:(fun x -> x *. x) ~lo:0. ~hi:1. ~n:7 in
  check_float ~eps:1e-6 "x^2 integral" (1. /. 3.) v

let test_histogram_single_value () =
  let h = Numerics.Stats.histogram ~bins:4 [| 2.; 2.; 2. |] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all binned despite zero range" 3 total

let test_vec2_pp () =
  Alcotest.(check string) "pp" "(1.5, -2)"
    (Format.asprintf "%a" Numerics.Vec2.pp (Numerics.Vec2.make 1.5 (-2.)))

let test_matrix_pp_and_row () =
  let m = Numerics.Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let out = Format.asprintf "%a" Numerics.Matrix.pp m in
  Alcotest.(check bool) "pp shows entries" true (contains ~needle:"3.0000" out);
  Alcotest.(check (array (float 0.))) "row copy" [| 3.; 4. |]
    (Numerics.Matrix.row m 1);
  let t = Numerics.Matrix.transpose m in
  check_float "transpose" 2. (Numerics.Matrix.get t 1 0);
  Alcotest.(check (array (float 1e-12))) "mul_vec" [| 5.; 11. |]
    (Numerics.Matrix.mul_vec m [| 1.; 2. |])

let test_gaussian_pdf_normalises () =
  let mass =
    Numerics.Integrate.adaptive_simpson ~lo:(-8.) ~hi:8.
      Numerics.Special.gaussian_pdf
  in
  check_float ~eps:1e-6 "unit mass" 1. mass

let test_root_zero_endpoint () =
  check_float "f(lo) = 0 returns lo" 2.
    (Numerics.Root.bisect ~f:(fun x -> x -. 2.) 2. 5.);
  check_float "brent hits endpoint" 5.
    (Numerics.Root.brent ~f:(fun x -> x -. 5.) 2. 5.)

(* ------------------------------------------------------------------ *)
(* Linprog model details                                               *)
(* ------------------------------------------------------------------ *)

let test_model_metadata () =
  let m = Linprog.Model.create () in
  let x = Linprog.Model.variable m "alpha" in
  let y = Linprog.Model.variable m "beta" in
  Alcotest.(check string) "first name" "alpha" (Linprog.Model.var_name m x);
  Alcotest.(check string) "second name" "beta" (Linprog.Model.var_name m y)

let test_simplex_ge_only () =
  (* min x s.t. x >= 3 *)
  match
    Linprog.Simplex.minimize ~c:[| 1. |]
      ~constrs:[ Linprog.Simplex.constr [| 1. |] Linprog.Simplex.Ge 3. ]
  with
  | Linprog.Simplex.Optimal s ->
    check_float ~eps:1e-9 "min at bound" 3. s.Linprog.Simplex.objective
  | _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Infotheory odds and ends                                            *)
(* ------------------------------------------------------------------ *)

let test_pmf_pp () =
  let out = Format.asprintf "%a" Infotheory.Pmf.pp (Infotheory.Pmf.binary 0.25) in
  Alcotest.(check bool) "shows probabilities" true
    (contains ~needle:"0.7500" out && contains ~needle:"0.2500" out)

let test_z_channel_matrix () =
  let z = Infotheory.Channels.z_channel 0.3 in
  check_float "0 stays 0" 1. (Infotheory.Dmc.transition z 0 0);
  check_float "1 flips w.p. 0.3" 0.3 (Infotheory.Dmc.transition z 1 0);
  (* matrix returns a copy: mutating it must not affect the channel *)
  let m = Infotheory.Dmc.matrix z in
  m.(0).(0) <- 0.;
  check_float "defensive copy" 1. (Infotheory.Dmc.transition z 0 0)

let test_blahut_iterations_reported () =
  let r = Infotheory.Blahut.capacity (Infotheory.Channels.z_channel 0.5) in
  Alcotest.(check bool) "iterated at least once" true
    (r.Infotheory.Blahut.iterations >= 1)

let test_mac_adder_of_dmc_pair () =
  (* deterministic AND-combining through a noiseless channel *)
  let mac =
    Infotheory.Mac.of_dmc_pair ~combine:(fun a b -> a land b)
      (Infotheory.Channels.noiseless 2)
  in
  let u = Infotheory.Pmf.uniform 2 in
  let t = Infotheory.Mac.rate_terms mac u u in
  (* Y = X1 AND X2: I(X1,X2;Y) = H(Y) = H(1/4) *)
  check_float ~eps:1e-9 "joint = H(1/4)"
    (Infotheory.Info.binary_entropy 0.25)
    t.Infotheory.Mac.i_joint

(* ------------------------------------------------------------------ *)
(* Prob / Channel                                                      *)
(* ------------------------------------------------------------------ *)

let test_rng_float_range () =
  let rng = Prob.Rng.create ~seed:99 in
  for _ = 1 to 200 do
    let x = Prob.Rng.float_range rng ~lo:2. ~hi:5. in
    Alcotest.(check bool) "in range" true (x >= 2. && x < 5.)
  done

let test_awgn_c_inv_invalid () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Awgn.c_inv: negative rate") (fun () ->
      ignore (Channel.Awgn.c_inv (-1.)))

let test_fading_mean_accessor () =
  let g = Channel.Gains.paper_fig4 in
  let f = Channel.Fading.create ~mean:g () in
  Alcotest.(check (float 0.)) "mean preserved" g.Channel.Gains.g_ar
    (Channel.Fading.mean f).Channel.Gains.g_ar

let test_pathloss_gains_at_vertical () =
  (* relay directly above the midpoint: symmetric relay links *)
  let pl = Channel.Pathloss.make ~exponent:2. () in
  let g = Channel.Pathloss.gains_at pl ~relay_xy:(0.5, 0.5) in
  check_float ~eps:1e-12 "symmetric" g.Channel.Gains.g_ar g.Channel.Gains.g_br

(* ------------------------------------------------------------------ *)
(* Coding reference vectors                                            *)
(* ------------------------------------------------------------------ *)

let test_crc32_check_value () =
  (* the standard CRC-32 check: crc32("123456789") = 0xCBF43926,
     bytes fed LSB-first as the reflected algorithm specifies *)
  let s = "123456789" in
  let bits = Coding.Bitvec.create (8 * String.length s) in
  String.iteri
    (fun i c ->
      let b = Char.code c in
      for j = 0 to 7 do
        if (b lsr j) land 1 = 1 then Coding.Bitvec.set bits ((8 * i) + j) true
      done)
    s;
  Alcotest.(check int32) "check value" 0xCBF43926l (Coding.Crc.crc32 bits)

let test_bitvec_of_int_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Bitvec.of_int: negative")
    (fun () -> ignore (Coding.Bitvec.of_int ~width:4 (-1)));
  Alcotest.check_raises "sub oob" (Invalid_argument "Bitvec.sub: out of bounds")
    (fun () -> ignore (Coding.Bitvec.sub (Coding.Bitvec.create 4) ~pos:2 ~len:3))

let test_gf2_augment_shape () =
  let a = Coding.Gf2_matrix.identity 2 in
  let b = Coding.Gf2_matrix.create ~rows:2 ~cols:3 in
  let c = Coding.Gf2_matrix.augment a b in
  Alcotest.(check int) "cols" 5 (Coding.Gf2_matrix.cols c);
  Alcotest.(check bool) "left part" true (Coding.Gf2_matrix.get c 1 1);
  Alcotest.(check bool) "right part zero" false (Coding.Gf2_matrix.get c 1 4)

let test_repetition_min_distance () =
  Alcotest.(check int) "d = n" 7
    (Coding.Linear_code.min_distance (Coding.Linear_code.repetition 7))

(* ------------------------------------------------------------------ *)
(* Netsim / Bidir surfaces                                             *)
(* ------------------------------------------------------------------ *)

let test_node_names () =
  Alcotest.(check (list string)) "names" [ "a"; "b"; "r" ]
    (List.map Netsim.Packet.node_name [ Netsim.Packet.A; Netsim.Packet.B; Netsim.Packet.R ])

let test_engine_step () =
  let e = Netsim.Engine.create () in
  let hits = ref 0 in
  Netsim.Engine.schedule_at e ~time:1. (fun () -> incr hits);
  Netsim.Engine.schedule_at e ~time:2. (fun () -> incr hits);
  Alcotest.(check bool) "first step" true (Netsim.Engine.step e);
  Alcotest.(check int) "one fired" 1 !hits;
  Alcotest.(check bool) "second step" true (Netsim.Engine.step e);
  Alcotest.(check bool) "exhausted" false (Netsim.Engine.step e)

let test_metrics_pp () =
  let m = Netsim.Metrics.create () in
  Netsim.Metrics.record_block m ~symbols:100 ~bits_a:10 ~bits_b:10
    ~delivered_a:true ~delivered_b:true;
  let out = Format.asprintf "%a" Netsim.Metrics.pp m in
  Alcotest.(check bool) "mentions throughput" true (contains ~needle:"throughput" out)

let test_bound_pp () =
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:Channel.Gains.paper_fig4 in
  let b = Bidir.Gaussian.bounds Bidir.Protocol.Tdbc Bidir.Bound.Inner s in
  let out = Format.asprintf "%a" Bidir.Bound.pp b in
  Alcotest.(check bool) "header" true (contains ~needle:"TDBC inner bound" out);
  Alcotest.(check bool) "labels" true (contains ~needle:"side info" out);
  Alcotest.(check bool) "durations" true (contains ~needle:"d3" out)

let test_phase_descriptions_complete () =
  List.iter
    (fun p ->
      for l = 1 to Bidir.Protocol.num_phases p do
        Alcotest.(check bool)
          (Printf.sprintf "%s phase %d described" (Bidir.Protocol.name p) l)
          true
          (String.length (Bidir.Protocol.phase_description p l) > 0)
      done)
    Bidir.Protocol.all

let test_relay_free_outer_drops_sum () =
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:Channel.Gains.paper_fig4 in
  List.iter
    (fun p ->
      let full = Bidir.Gaussian.bounds p Bidir.Bound.Outer s in
      let relaxed = Bidir.Gaussian.relay_free_outer p s in
      let sums (b : Bidir.Bound.t) =
        List.length
          (List.filter
             (fun (t : Bidir.Bound.term) -> t.Bidir.Bound.ca > 0. && t.Bidir.Bound.cb > 0.)
             b.Bidir.Bound.terms)
      in
      Alcotest.(check int)
        (Bidir.Protocol.name p ^ " no sum terms left")
        0 (sums relaxed);
      Alcotest.(check bool) "fewer or equal terms" true
        (List.length relaxed.Bidir.Bound.terms <= List.length full.Bidir.Bound.terms))
    Bidir.Protocol.relayed

let test_runner_phase_attribution () =
  (* force a phase-1 (relay) outage for MABC: rates far above capacity *)
  let gains = Channel.Gains.paper_fig4 in
  let cfg =
    { (Netsim.Runner.default_config ~protocol:Bidir.Protocol.Mabc ~power_db:0.
         ~gains ~blocks:5 ~block_symbols:500 ())
      with
      Netsim.Runner.mode =
        Netsim.Runner.Fixed { deltas = [| 0.5; 0.5 |]; ra = 5.; rb = 5. };
    }
  in
  let r = Netsim.Runner.run cfg in
  (match Netsim.Metrics.phase_outages r.Netsim.Runner.metrics with
  | [ (1, 5) ] -> ()
  | other ->
    Alcotest.failf "expected 5 phase-1 outages, got %s"
      (String.concat ", "
         (List.map (fun (p, c) -> Printf.sprintf "ph%d:%d" p c) other)))

let suites =
  [ ( "coverage.numerics",
      [ Alcotest.test_case "interp domain" `Quick test_interp_domain;
        Alcotest.test_case "simpson odd panels" `Quick test_simpson_odd_panels;
        Alcotest.test_case "histogram single value" `Quick test_histogram_single_value;
        Alcotest.test_case "vec2 pp" `Quick test_vec2_pp;
        Alcotest.test_case "matrix pp/row/mul" `Quick test_matrix_pp_and_row;
        Alcotest.test_case "gaussian pdf mass" `Quick test_gaussian_pdf_normalises;
        Alcotest.test_case "root zero endpoints" `Quick test_root_zero_endpoint;
      ] );
    ( "coverage.linprog",
      [ Alcotest.test_case "model metadata" `Quick test_model_metadata;
        Alcotest.test_case "ge-only system" `Quick test_simplex_ge_only;
      ] );
    ( "coverage.infotheory",
      [ Alcotest.test_case "pmf pp" `Quick test_pmf_pp;
        Alcotest.test_case "z channel" `Quick test_z_channel_matrix;
        Alcotest.test_case "blahut iterations" `Quick test_blahut_iterations_reported;
        Alcotest.test_case "AND mac" `Quick test_mac_adder_of_dmc_pair;
      ] );
    ( "coverage.prob_channel",
      [ Alcotest.test_case "float range" `Quick test_rng_float_range;
        Alcotest.test_case "c_inv invalid" `Quick test_awgn_c_inv_invalid;
        Alcotest.test_case "fading mean" `Quick test_fading_mean_accessor;
        Alcotest.test_case "planar symmetric" `Quick test_pathloss_gains_at_vertical;
      ] );
    ( "coverage.coding",
      [ Alcotest.test_case "crc32 check value" `Quick test_crc32_check_value;
        Alcotest.test_case "bitvec invalid" `Quick test_bitvec_of_int_invalid;
        Alcotest.test_case "gf2 augment" `Quick test_gf2_augment_shape;
        Alcotest.test_case "repetition distance" `Quick test_repetition_min_distance;
      ] );
    ( "coverage.netsim_bidir",
      [ Alcotest.test_case "node names" `Quick test_node_names;
        Alcotest.test_case "engine step" `Quick test_engine_step;
        Alcotest.test_case "metrics pp" `Quick test_metrics_pp;
        Alcotest.test_case "bound pp" `Quick test_bound_pp;
        Alcotest.test_case "phase descriptions" `Quick test_phase_descriptions_complete;
        Alcotest.test_case "relay-free outer" `Quick test_relay_free_outer_drops_sum;
        Alcotest.test_case "phase attribution" `Quick test_runner_phase_attribution;
      ] );
  ]
