(* Tests for Telemetry.Snapshot: capture/persist round-trips, the
   diff's tolerance policy (exact counters vs banded wall-time
   histograms), and the regression-report rendering. *)

module S = Telemetry.Snapshot
module H = Telemetry.Histogram
module J = Telemetry.Json

(* The metrics registry is process-global and shared with every other
   suite, so tests mint fresh metric names instead of resetting it. *)
let fresh =
  let n = ref 0 in
  fun kind ->
    incr n;
    Printf.sprintf "test.snapshot.%s.%d" kind !n

let roundtrip snap =
  match S.of_string (J.to_string_pretty (S.to_json snap)) with
  | Ok s -> s
  | Error m -> Alcotest.failf "snapshot roundtrip: %s" m

let find_cmp d metric =
  match
    List.find_opt (fun c -> c.S.metric = metric) d.S.comparisons
  with
  | Some c -> c
  | None -> Alcotest.failf "metric %S not in diff" metric

(* A synthetic snapshot: no registry involved, so both sides of a diff
   are fully under the test's control. *)
let snap histograms counters =
  { S.label = "synthetic"; created_at = 0.; counters; histograms }

let hist_of values =
  let h = H.create ~lo:1e-6 ~growth:2. ~buckets:64 () in
  List.iter (H.observe h) values;
  h

(* ------------------------------------------------------------------ *)
(* Capture → JSON → parse → self-diff is empty                         *)
(* ------------------------------------------------------------------ *)

let test_capture_roundtrip_empty_diff () =
  let c = Telemetry.Metrics.counter (fresh "counter") in
  Telemetry.Metrics.add c 17;
  let h = Telemetry.Metrics.histogram (fresh "hist") in
  List.iter (Telemetry.Metrics.observe h) [ 0.1; 2.5; 0.004 ];
  let captured = S.capture ~label:"roundtrip" () in
  let reloaded = roundtrip captured in
  Alcotest.(check string) "label" "roundtrip" reloaded.S.label;
  let d = S.diff captured reloaded in
  Alcotest.(check bool) "identical" true (S.identical d);
  Alcotest.(check bool) "ok" true (S.ok d);
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun c -> c.S.metric) (S.violations d))

(* Captures are point-in-time: mutating the live registry afterwards
   must not change the snapshot. *)
let test_capture_is_a_copy () =
  let name = fresh "hist" in
  let h = Telemetry.Metrics.histogram name in
  Telemetry.Metrics.observe h 1.;
  let captured = S.capture () in
  Telemetry.Metrics.observe h 100.;
  let in_snap = List.assoc name captured.S.histograms in
  Alcotest.(check int) "count frozen" 1 (H.count in_snap)

let qcheck_roundtrip =
  let gen = QCheck.(pair (int_bound 10_000) (small_list float)) in
  QCheck.Test.make ~count:100
    ~name:"snapshot capture -> JSON -> parse self-diff is empty" gen
    (fun (v, floats) ->
      let c = Telemetry.Metrics.counter (fresh "qc_counter") in
      Telemetry.Metrics.add c v;
      let h = Telemetry.Metrics.histogram (fresh "qc_hist") in
      List.iter (Telemetry.Metrics.observe h) floats;
      let captured = S.capture () in
      match S.of_string (J.to_string_pretty (S.to_json captured)) with
      | Error _ -> false
      | Ok reloaded ->
        let d = S.diff captured reloaded in
        S.identical d && S.ok d)

(* ------------------------------------------------------------------ *)
(* Deliberate perturbations are flagged                                *)
(* ------------------------------------------------------------------ *)

let test_counter_perturbation_flagged () =
  let name = fresh "counter" in
  let c = Telemetry.Metrics.counter name in
  Telemetry.Metrics.add c 42;
  let base = S.capture () in
  let perturbed =
    { base with
      S.counters =
        List.map
          (fun (n, v) -> if n = name then (n, v + 1) else (n, v))
          base.S.counters;
    }
  in
  let d = S.diff base perturbed in
  Alcotest.(check bool) "violates" false (S.ok d);
  let cmp = find_cmp d name in
  Alcotest.(check bool) "drift status" true (cmp.S.status = S.Drift);
  Alcotest.(check bool) "named in violations" true
    (List.exists (fun c -> c.S.metric = name) (S.violations d))

let test_missing_and_new_metrics () =
  let name = fresh "counter" in
  ignore (Telemetry.Metrics.counter name : Telemetry.Metrics.counter);
  let full = S.capture () in
  let without =
    { full with S.counters = List.remove_assoc name full.S.counters }
  in
  (* metric vanished: violation *)
  let gone = S.diff full without in
  Alcotest.(check bool) "missing violates" false (S.ok gone);
  Alcotest.(check bool) "missing status" true
    ((find_cmp gone name).S.status = S.Missing);
  (* metric appeared: reported but allowed *)
  let appeared = S.diff without full in
  Alcotest.(check bool) "new is ok" true (S.ok appeared);
  Alcotest.(check bool) "new status" true
    ((find_cmp appeared name).S.status = S.New)

(* ------------------------------------------------------------------ *)
(* Tolerance policy on histograms                                      *)
(* ------------------------------------------------------------------ *)

let test_time_band_policy () =
  let name = "x.fake_seconds" in
  let base = snap [ (name, hist_of [ 0.010 ]) ] [] in
  let close = snap [ (name, hist_of [ 0.011 ]) ] [] in
  (* +10% mean: inside a 50% band, outside a 0.1% band *)
  let lax = S.diff ~policy:(S.default_policy ~tolerance:0.5 ()) base close in
  Alcotest.(check bool) "within band passes" true (S.ok lax);
  Alcotest.(check bool) "within-band status" true
    ((find_cmp lax name).S.status = S.Within_band);
  let strict =
    S.diff ~policy:(S.default_policy ~tolerance:0.001 ()) base close
  in
  Alcotest.(check bool) "outside band fails" false (S.ok strict);
  (* a sample-count change under Time_band is structural drift however
     generous the band *)
  let twice = snap [ (name, hist_of [ 0.010; 0.010 ]) ] [] in
  let d = S.diff ~policy:(S.default_policy ~tolerance:100. ()) base twice in
  Alcotest.(check bool) "count change fails" false (S.ok d)

let test_exact_histogram_distribution () =
  let name = "x.depth" in
  let base = snap [ (name, hist_of [ 1.; 2. ]) ] [] in
  let same = snap [ (name, hist_of [ 1.; 2. ]) ] [] in
  let moved = snap [ (name, hist_of [ 1.; 3. ]) ] [] in
  Alcotest.(check bool) "identical distributions pass" true
    (S.identical (S.diff base same));
  let d = S.diff base moved in
  Alcotest.(check bool) "moved sample fails" false (S.ok d);
  Alcotest.(check bool) "drift status" true
    ((find_cmp d name).S.status = S.Drift)

(* ------------------------------------------------------------------ *)
(* Resource budgets: one-sided counters and histograms, ignored gc.*   *)
(* ------------------------------------------------------------------ *)

let test_alloc_budget_one_sided () =
  let name = "linprog.alloc_bytes" in
  let base = snap [] [ (name, 1_000_000) ] in
  let improved = snap [] [ (name, 900_000) ] in
  let regressed = snap [] [ (name, 1_000_001) ] in
  let d = S.diff base improved in
  Alcotest.(check bool) "allocating less passes" true (S.ok d);
  Alcotest.(check bool) "improvement is within-band" true
    ((find_cmp d name).S.status = S.Within_band);
  let d = S.diff base regressed in
  Alcotest.(check bool) "allocating more fails" false (S.ok d);
  Alcotest.(check bool) "regression is drift" true
    ((find_cmp d name).S.status = S.Drift)

let test_gc_counters_ignored () =
  let name = "gc.minor_words" in
  let base = snap [] [ (name, 5_000_000) ] in
  let moved = snap [] [ (name, 9_999_999) ] in
  let d = S.diff base moved in
  Alcotest.(check bool) "gc totals never gate" true (S.ok d);
  Alcotest.(check bool) "rule is Ignore" true
    ((find_cmp d name).S.rule = S.Ignore)

let test_pool_idle_budget_histogram () =
  let name = "campaign.pool_idle_seconds" in
  let base = snap [ (name, hist_of [ 0.2; 0.2 ]) ] [] in
  (* less idle time, different sample count: still passes — the gate is
     one-sided on the sum, not count-exact like a Time_band *)
  let improved = snap [ (name, hist_of [ 0.1 ]) ] [] in
  let d = S.diff base improved in
  Alcotest.(check bool) "less idle passes" true (S.ok d);
  Alcotest.(check bool) "improvement is within-band" true
    ((find_cmp d name).S.status = S.Within_band);
  (* within the 50% slack: allowed *)
  let noisy = snap [ (name, hist_of [ 0.2; 0.25 ]) ] [] in
  Alcotest.(check bool) "scheduler noise within slack passes" true
    (S.ok (S.diff base noisy));
  (* well past the slack: regression *)
  let regressed = snap [ (name, hist_of [ 0.5; 0.5 ]) ] [] in
  let d = S.diff base regressed in
  Alcotest.(check bool) "much more idle fails" false (S.ok d);
  Alcotest.(check bool) "regression is drift" true
    ((find_cmp d name).S.status = S.Drift);
  (* both empty (the 1-domain check workload): clean match *)
  let empty = snap [ (name, hist_of []) ] [] in
  let empty' = snap [ (name, hist_of []) ] [] in
  Alcotest.(check bool) "empty vs empty matches" true
    (S.identical (S.diff empty empty'))

let test_chunk_imbalance_ignored () =
  let name = "engine.pool.chunk_imbalance" in
  let base = snap [ (name, hist_of [ 1.1; 1.4 ]) ] [] in
  let moved = snap [ (name, hist_of [ 3.9 ]) ] [] in
  Alcotest.(check bool) "imbalance ratio never gates" true
    (S.ok (S.diff base moved))

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let test_report_names_offender () =
  let base = snap [] [ ("a.total", 5); ("b.total", 7) ] in
  let cur = snap [] [ ("a.total", 5); ("b.total", 9) ] in
  let d = S.diff base cur in
  let text = Report.Regression.render_text d in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "text names the metric" true (contains text "b.total");
  Alcotest.(check bool) "summary says REGRESSION" true
    (contains text "REGRESSION");
  let json = Report.Regression.to_json d in
  (match J.member "ok" json with
  | Some (J.Bool false) -> ()
  | _ -> Alcotest.fail "report JSON must carry ok=false");
  match J.member "violations" json with
  | Some (J.Int 1) -> ()
  | _ -> Alcotest.fail "report JSON must count 1 violation"

let suites =
  [ ( "telemetry.snapshot",
      [ Alcotest.test_case "capture/JSON roundtrip self-diff empty" `Quick
          test_capture_roundtrip_empty_diff;
        Alcotest.test_case "capture is a point-in-time copy" `Quick
          test_capture_is_a_copy;
        QCheck_alcotest.to_alcotest qcheck_roundtrip;
        Alcotest.test_case "perturbed counter flagged" `Quick
          test_counter_perturbation_flagged;
        Alcotest.test_case "missing vs new metrics" `Quick
          test_missing_and_new_metrics;
        Alcotest.test_case "time-band tolerance" `Quick test_time_band_policy;
        Alcotest.test_case "exact histogram distribution" `Quick
          test_exact_histogram_distribution;
        Alcotest.test_case "alloc budget gates one-sided" `Quick
          test_alloc_budget_one_sided;
        Alcotest.test_case "gc.* counters ignored" `Quick
          test_gc_counters_ignored;
        Alcotest.test_case "pool idle budget histogram" `Quick
          test_pool_idle_budget_histogram;
        Alcotest.test_case "chunk imbalance ignored" `Quick
          test_chunk_imbalance_ignored;
        Alcotest.test_case "report names the offender" `Quick
          test_report_names_offender;
      ] );
  ]
