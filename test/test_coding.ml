(* Tests for GF(2) coding: bit vectors, matrices, codes, CRC, XOR relay. *)

let bv = Coding.Bitvec.of_string

let check_bv msg expected actual =
  Alcotest.(check string) msg (Coding.Bitvec.to_string expected)
    (Coding.Bitvec.to_string actual)

(* ------------------------------------------------------------------ *)
(* Bitvec                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitvec_basic () =
  let v = Coding.Bitvec.create 10 in
  Alcotest.(check int) "length" 10 (Coding.Bitvec.length v);
  Alcotest.(check bool) "zero init" false (Coding.Bitvec.get v 3);
  Coding.Bitvec.set v 3 true;
  Alcotest.(check bool) "set" true (Coding.Bitvec.get v 3);
  Coding.Bitvec.set v 3 false;
  Alcotest.(check bool) "clear" false (Coding.Bitvec.get v 3)

let test_bitvec_string_round_trip () =
  let s = "0110100111010001" in
  Alcotest.(check string) "round trip" s
    (Coding.Bitvec.to_string (Coding.Bitvec.of_string s))

let test_bitvec_xor () =
  check_bv "xor" (bv "0110") (Coding.Bitvec.xor (bv "0101") (bv "0011"));
  let a = bv "1100" in
  Coding.Bitvec.xor_into ~dst:a (bv "1010");
  check_bv "xor_into" (bv "0110") a

let test_bitvec_xor_self_is_zero () =
  let a = bv "101101" in
  check_bv "self xor" (bv "000000") (Coding.Bitvec.xor a a)

let test_bitvec_weight () =
  Alcotest.(check int) "weight" 3 (Coding.Bitvec.weight (bv "0110100"));
  Alcotest.(check int) "weight empty" 0 (Coding.Bitvec.weight (Coding.Bitvec.create 0));
  Alcotest.(check int) "distance" 2
    (Coding.Bitvec.hamming_distance (bv "1100") (bv "1010"))

let test_bitvec_int_round_trip () =
  List.iter
    (fun n ->
      Alcotest.(check int) "round trip" n
        (Coding.Bitvec.to_int (Coding.Bitvec.of_int ~width:10 n)))
    [ 0; 1; 5; 123; 1023 ]

let test_bitvec_append_sub () =
  let v = Coding.Bitvec.append (bv "101") (bv "01") in
  check_bv "append" (bv "10101") v;
  check_bv "sub" (bv "010") (Coding.Bitvec.sub v ~pos:1 ~len:3)

let test_bitvec_bounds () =
  let v = Coding.Bitvec.create 4 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Coding.Bitvec.get v 4));
  Alcotest.check_raises "xor mismatch"
    (Invalid_argument "Bitvec.xor_into: length mismatch") (fun () ->
      ignore (Coding.Bitvec.xor v (Coding.Bitvec.create 5)))

let test_bitvec_random_deterministic () =
  let r1 = Prob.Rng.create ~seed:5 and r2 = Prob.Rng.create ~seed:5 in
  check_bv "same stream" (Coding.Bitvec.random r1 64) (Coding.Bitvec.random r2 64)

(* ------------------------------------------------------------------ *)
(* Gf2_matrix                                                          *)
(* ------------------------------------------------------------------ *)

let test_gf2_identity () =
  let i3 = Coding.Gf2_matrix.identity 3 in
  let v = bv "101" in
  check_bv "I v = v" v (Coding.Gf2_matrix.mul_vec i3 v);
  Alcotest.(check int) "rank" 3 (Coding.Gf2_matrix.rank i3)

let test_gf2_mul () =
  (* [[1 1][0 1]] * [[1 0][1 1]] = [[0 1][1 1]] *)
  let a = Coding.Gf2_matrix.init ~rows:2 ~cols:2 (fun i j -> (i, j) <> (1, 0)) in
  let b = Coding.Gf2_matrix.init ~rows:2 ~cols:2 (fun i j -> (i, j) <> (0, 1)) in
  let c = Coding.Gf2_matrix.mul a b in
  Alcotest.(check bool) "c00" false (Coding.Gf2_matrix.get c 0 0);
  Alcotest.(check bool) "c01" true (Coding.Gf2_matrix.get c 0 1);
  Alcotest.(check bool) "c10" true (Coding.Gf2_matrix.get c 1 0);
  Alcotest.(check bool) "c11" true (Coding.Gf2_matrix.get c 1 1)

let test_gf2_rank_deficient () =
  (* two equal rows *)
  let m = Coding.Gf2_matrix.init ~rows:2 ~cols:3 (fun _ j -> j < 2) in
  Alcotest.(check int) "rank 1" 1 (Coding.Gf2_matrix.rank m)

let test_gf2_inverse () =
  let rng = Prob.Rng.create ~seed:9 in
  for _ = 1 to 10 do
    let m = Coding.Gf2_matrix.random_full_rank rng ~rows:6 ~cols:6 in
    match Coding.Gf2_matrix.inverse m with
    | None -> Alcotest.fail "full-rank square matrix must invert"
    | Some inv ->
      let p = Coding.Gf2_matrix.mul m inv in
      Alcotest.(check bool) "m * m^-1 = I" true
        (Coding.Gf2_matrix.equal p (Coding.Gf2_matrix.identity 6))
  done

let test_gf2_inverse_singular () =
  let m = Coding.Gf2_matrix.create ~rows:2 ~cols:2 in
  Alcotest.(check bool) "singular" true (Coding.Gf2_matrix.inverse m = None)

let test_gf2_solve () =
  let rng = Prob.Rng.create ~seed:10 in
  for _ = 1 to 10 do
    let m = Coding.Gf2_matrix.random_full_rank rng ~rows:5 ~cols:8 in
    let x = Coding.Bitvec.random rng 8 in
    let b = Coding.Gf2_matrix.mul_vec m x in
    match Coding.Gf2_matrix.solve m b with
    | None -> Alcotest.fail "consistent system must solve"
    | Some x' -> check_bv "solution valid" b (Coding.Gf2_matrix.mul_vec m x')
  done

let test_gf2_solve_inconsistent () =
  (* rows: [1 0], [1 0]; rhs (0, 1) is inconsistent *)
  let m = Coding.Gf2_matrix.init ~rows:2 ~cols:2 (fun _ j -> j = 0) in
  let b = bv "01" in
  Alcotest.(check bool) "inconsistent" true (Coding.Gf2_matrix.solve m b = None)

let test_gf2_transpose () =
  let m = Coding.Gf2_matrix.init ~rows:2 ~cols:3 (fun i j -> i = 0 && j = 2) in
  let t = Coding.Gf2_matrix.transpose m in
  Alcotest.(check int) "rows" 3 (Coding.Gf2_matrix.rows t);
  Alcotest.(check bool) "moved" true (Coding.Gf2_matrix.get t 2 0)

(* ------------------------------------------------------------------ *)
(* Linear_code                                                         *)
(* ------------------------------------------------------------------ *)

let test_hamming_distance3 () =
  let c = Coding.Linear_code.hamming_7_4 () in
  Alcotest.(check int) "k" 4 (Coding.Linear_code.k c);
  Alcotest.(check int) "n" 7 (Coding.Linear_code.n c);
  Alcotest.(check int) "min distance" 3 (Coding.Linear_code.min_distance c)

let test_hamming_corrects_single_error () =
  let c = Coding.Linear_code.hamming_7_4 () in
  let rng = Prob.Rng.create ~seed:123 in
  for _ = 1 to 50 do
    let msg = Coding.Bitvec.random rng 4 in
    let cw = Coding.Linear_code.encode c msg in
    let pos = Prob.Rng.int rng 7 in
    let corrupted = Coding.Bitvec.copy cw in
    Coding.Bitvec.set corrupted pos (not (Coding.Bitvec.get corrupted pos));
    check_bv "corrected" msg (Coding.Linear_code.decode_nearest c corrupted)
  done

let test_repetition () =
  let c = Coding.Linear_code.repetition 5 in
  check_bv "encode 1" (bv "11111") (Coding.Linear_code.encode c (bv "1"));
  check_bv "majority decode" (bv "1")
    (Coding.Linear_code.decode_nearest c (bv "11010"))

let test_decode_exact () =
  let rng = Prob.Rng.create ~seed:77 in
  let c = Coding.Linear_code.random rng ~k:5 ~n:10 in
  let msg = Coding.Bitvec.random rng 5 in
  let cw = Coding.Linear_code.encode c msg in
  (match Coding.Linear_code.decode_exact c cw with
  | Some m -> check_bv "recovered" msg m
  | None -> Alcotest.fail "exact decode of clean codeword failed");
  (* corrupting one bit of a distance >= 2 code word must not decode
     exactly to a valid message-codeword pair *)
  let corrupted = Coding.Bitvec.copy cw in
  Coding.Bitvec.set corrupted 0 (not (Coding.Bitvec.get corrupted 0));
  match Coding.Linear_code.decode_exact c corrupted with
  | Some m ->
    (* possible only if corrupted happens to be another codeword *)
    Alcotest.(check bool) "decodes to different message" false
      (Coding.Bitvec.equal m msg)
  | None -> ()

let test_systematic_prefix () =
  let rng = Prob.Rng.create ~seed:31 in
  let c = Coding.Linear_code.systematic_random rng ~k:4 ~n:9 in
  let msg = bv "1011" in
  let cw = Coding.Linear_code.encode c msg in
  check_bv "systematic prefix" msg (Coding.Bitvec.sub cw ~pos:0 ~len:4)

let test_code_rate () =
  let c = Coding.Linear_code.hamming_7_4 () in
  Alcotest.(check (float 1e-9)) "rate" (4. /. 7.) (Coding.Linear_code.rate c)

(* ------------------------------------------------------------------ *)
(* Crc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_crc_detects_flip () =
  let rng = Prob.Rng.create ~seed:55 in
  for _ = 1 to 50 do
    let payload = Coding.Bitvec.random rng 64 in
    let pkt = Coding.Crc.append_crc16 payload in
    (match Coding.Crc.check_crc16 pkt with
    | Some p -> check_bv "clean passes" payload p
    | None -> Alcotest.fail "clean packet rejected");
    let pos = Prob.Rng.int rng (Coding.Bitvec.length pkt) in
    let bad = Coding.Bitvec.copy pkt in
    Coding.Bitvec.set bad pos (not (Coding.Bitvec.get bad pos));
    match Coding.Crc.check_crc16 bad with
    | Some _ -> Alcotest.fail "single-bit corruption must be detected"
    | None -> ()
  done

let test_crc_stability () =
  (* pinned values guard against accidental algorithm changes *)
  let v = Coding.Bitvec.of_string "10110100" in
  Alcotest.(check int) "crc16 pinned" (Coding.Crc.crc16 v) (Coding.Crc.crc16 v);
  let v2 = Coding.Bitvec.of_string "10110101" in
  Alcotest.(check bool) "different payloads differ" true
    (Coding.Crc.crc16 v <> Coding.Crc.crc16 v2);
  Alcotest.(check bool) "crc32 differs too" true
    (Coding.Crc.crc32 v <> Coding.Crc.crc32 v2)

(* ------------------------------------------------------------------ *)
(* Xor_relay                                                           *)
(* ------------------------------------------------------------------ *)

let test_xor_relay_round_trip () =
  let wa = bv "10110" and wb = bv "01101" in
  let wr = Coding.Xor_relay.combine wa wb in
  check_bv "a recovers wb" wb (Coding.Xor_relay.recover ~own:wa ~relay:wr);
  check_bv "b recovers wa" wa (Coding.Xor_relay.recover ~own:wb ~relay:wr)

let test_xor_relay_unequal_lengths () =
  (* the group L = Z_2^max(...) from the paper: shorter message padded *)
  let wa = bv "1011" and wb = bv "10" in
  let wr = Coding.Xor_relay.combine wa wb in
  Alcotest.(check int) "relay word length" 4 (Coding.Bitvec.length wr);
  check_bv "b recovers wa (full length)" wa
    (Coding.Xor_relay.recover ~own:wb ~relay:wr);
  check_bv "a recovers wb (truncated)" wb
    (Coding.Xor_relay.recover_exact ~own:wa ~relay:wr ~expected_len:2)

let prop_xor_relay_round_trip =
  QCheck.Test.make ~count:200 ~name:"xor relay round trip (random lengths)"
    QCheck.(pair (pair small_nat small_nat) int)
    (fun ((la, lb), seed) ->
      let rng = Prob.Rng.create ~seed in
      let wa = Coding.Bitvec.random rng (la + 1) in
      let wb = Coding.Bitvec.random rng (lb + 1) in
      let wr = Coding.Xor_relay.combine wa wb in
      let wa' = Coding.Xor_relay.recover_exact ~own:wb ~relay:wr
          ~expected_len:(Coding.Bitvec.length wa) in
      let wb' = Coding.Xor_relay.recover_exact ~own:wa ~relay:wr
          ~expected_len:(Coding.Bitvec.length wb) in
      Coding.Bitvec.equal wa wa' && Coding.Bitvec.equal wb wb')

let prop_encode_linear =
  QCheck.Test.make ~count:100 ~name:"encoding is linear: E(u+v) = E(u)+E(v)"
    QCheck.int (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let c = Coding.Linear_code.random rng ~k:6 ~n:12 in
      let u = Coding.Bitvec.random rng 6 and v = Coding.Bitvec.random rng 6 in
      let lhs = Coding.Linear_code.encode c (Coding.Bitvec.xor u v) in
      let rhs =
        Coding.Bitvec.xor (Coding.Linear_code.encode c u)
          (Coding.Linear_code.encode c v)
      in
      Coding.Bitvec.equal lhs rhs)

let prop_rank_bounds =
  QCheck.Test.make ~count:100 ~name:"0 <= rank <= min(rows, cols)"
    QCheck.(triple int (int_range 1 8) (int_range 1 8))
    (fun (seed, r, c) ->
      let rng = Prob.Rng.create ~seed in
      let m = Coding.Gf2_matrix.random rng ~rows:r ~cols:c in
      let rk = Coding.Gf2_matrix.rank m in
      rk >= 0 && rk <= min r c)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_xor_relay_round_trip; prop_encode_linear; prop_rank_bounds ]

let suites =
  [ ( "coding.bitvec",
      [ Alcotest.test_case "basic" `Quick test_bitvec_basic;
        Alcotest.test_case "string round trip" `Quick test_bitvec_string_round_trip;
        Alcotest.test_case "xor" `Quick test_bitvec_xor;
        Alcotest.test_case "self xor" `Quick test_bitvec_xor_self_is_zero;
        Alcotest.test_case "weight" `Quick test_bitvec_weight;
        Alcotest.test_case "int round trip" `Quick test_bitvec_int_round_trip;
        Alcotest.test_case "append/sub" `Quick test_bitvec_append_sub;
        Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
        Alcotest.test_case "random deterministic" `Quick test_bitvec_random_deterministic;
      ] );
    ( "coding.gf2_matrix",
      [ Alcotest.test_case "identity" `Quick test_gf2_identity;
        Alcotest.test_case "mul" `Quick test_gf2_mul;
        Alcotest.test_case "rank deficient" `Quick test_gf2_rank_deficient;
        Alcotest.test_case "inverse" `Quick test_gf2_inverse;
        Alcotest.test_case "singular" `Quick test_gf2_inverse_singular;
        Alcotest.test_case "solve" `Quick test_gf2_solve;
        Alcotest.test_case "inconsistent" `Quick test_gf2_solve_inconsistent;
        Alcotest.test_case "transpose" `Quick test_gf2_transpose;
      ] );
    ( "coding.linear_code",
      [ Alcotest.test_case "hamming d=3" `Quick test_hamming_distance3;
        Alcotest.test_case "hamming corrects 1 error" `Quick test_hamming_corrects_single_error;
        Alcotest.test_case "repetition" `Quick test_repetition;
        Alcotest.test_case "decode exact" `Quick test_decode_exact;
        Alcotest.test_case "systematic prefix" `Quick test_systematic_prefix;
        Alcotest.test_case "rate" `Quick test_code_rate;
      ] );
    ( "coding.crc",
      [ Alcotest.test_case "detects bit flips" `Quick test_crc_detects_flip;
        Alcotest.test_case "stability" `Quick test_crc_stability;
      ] );
    ( "coding.xor_relay",
      [ Alcotest.test_case "round trip" `Quick test_xor_relay_round_trip;
        Alcotest.test_case "unequal lengths" `Quick test_xor_relay_unequal_lengths;
      ] );
    ("coding.properties", qcheck_cases);
  ]

(* ------------------------------------------------------------------ *)
(* Convolutional / Viterbi                                             *)
(* ------------------------------------------------------------------ *)

let test_conv_round_trip () =
  let code = Coding.Convolutional.k3_rate_half () in
  let rng = Prob.Rng.create ~seed:42 in
  for _ = 1 to 30 do
    let msg = Coding.Bitvec.random rng 40 in
    let cw = Coding.Convolutional.encode code msg in
    Alcotest.(check int) "codeword length" ((40 + 2) * 2)
      (Coding.Bitvec.length cw);
    check_bv "round trip" msg (Coding.Convolutional.decode code cw)
  done

let test_conv_known_vector () =
  (* (7,5) code, input 1011 (+ 2 flush zeros): standard textbook vector *)
  let code = Coding.Convolutional.k3_rate_half () in
  let cw = Coding.Convolutional.encode code (bv "1011") in
  (* derived by hand from the trellis: states 00->10->01->10->11->01->00 *)
  Alcotest.(check int) "length" 12 (Coding.Bitvec.length cw);
  check_bv "decodes back" (bv "1011") (Coding.Convolutional.decode code cw)

let test_conv_corrects_errors () =
  let code = Coding.Convolutional.k3_rate_half () in
  let rng = Prob.Rng.create ~seed:9 in
  for _ = 1 to 30 do
    let msg = Coding.Bitvec.random rng 64 in
    let cw = Coding.Convolutional.encode code msg in
    (* two flips far apart: inside the free-distance budget *)
    let bad = Coding.Bitvec.copy cw in
    Coding.Bitvec.set bad 7 (not (Coding.Bitvec.get bad 7));
    Coding.Bitvec.set bad 90 (not (Coding.Bitvec.get bad 90));
    check_bv "corrected" msg (Coding.Convolutional.decode code bad)
  done

let test_conv_k7_ber_gain () =
  (* K = 7 over BSC(0.02): the decoded BER must be well under the raw
     channel BER *)
  let code = Coding.Convolutional.k7_rate_half () in
  let rng = Prob.Rng.create ~seed:5 in
  let errors = ref 0 and bits = ref 0 in
  for _ = 1 to 40 do
    let msg = Coding.Bitvec.random rng 96 in
    let noisy = Coding.Convolutional.encode code msg in
    for i = 0 to Coding.Bitvec.length noisy - 1 do
      if Prob.Rng.bernoulli rng ~p:0.02 then
        Coding.Bitvec.set noisy i (not (Coding.Bitvec.get noisy i))
    done;
    errors := !errors
              + Coding.Bitvec.hamming_distance msg
                  (Coding.Convolutional.decode code noisy);
    bits := !bits + 96
  done;
  let ber = float_of_int !errors /. float_of_int !bits in
  Alcotest.(check bool) "ber << channel ber" true (ber < 0.002)

let test_conv_rate () =
  let code = Coding.Convolutional.k3_rate_half () in
  Alcotest.(check (float 1e-9)) "rate with tail" (100. /. 204.)
    (Coding.Convolutional.rate code ~message_bits:100);
  Alcotest.(check int) "streams" 2 (Coding.Convolutional.num_streams code);
  Alcotest.(check int) "constraint length" 3
    (Coding.Convolutional.constraint_length code)

let test_conv_invalid () =
  Alcotest.check_raises "no generators"
    (Invalid_argument "Convolutional.create: no generators") (fun () ->
      ignore (Coding.Convolutional.create ~constraint_length:3 ~generators:[]));
  Alcotest.check_raises "mask range"
    (Invalid_argument "Convolutional.create: generator mask out of range")
    (fun () ->
      ignore (Coding.Convolutional.create ~constraint_length:3 ~generators:[ 8 ]));
  let code = Coding.Convolutional.k3_rate_half () in
  Alcotest.check_raises "bad length"
    (Invalid_argument "Convolutional.decode: length not a multiple of the streams")
    (fun () -> ignore (Coding.Convolutional.decode code (bv "101")))

let prop_conv_linear =
  QCheck.Test.make ~count:100
    ~name:"convolutional encoding is linear (PNC property)" QCheck.int
    (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let code = Coding.Convolutional.k3_rate_half () in
      let u = Coding.Bitvec.random rng 32 and v = Coding.Bitvec.random rng 32 in
      Coding.Bitvec.equal
        (Coding.Convolutional.encode code (Coding.Bitvec.xor u v))
        (Coding.Bitvec.xor
           (Coding.Convolutional.encode code u)
           (Coding.Convolutional.encode code v)))

let prop_conv_ml_matches_exhaustive =
  QCheck.Test.make ~count:30
    ~name:"Viterbi = exhaustive ML on short messages"
    QCheck.(pair int (int_range 0 20))
    (fun (seed, flips) ->
      let rng = Prob.Rng.create ~seed in
      let code = Coding.Convolutional.k3_rate_half () in
      let len = 6 in
      let msg = Coding.Bitvec.random rng len in
      let noisy = Coding.Convolutional.encode code msg in
      for _ = 1 to flips mod 5 do
        let i = Prob.Rng.int rng (Coding.Bitvec.length noisy) in
        Coding.Bitvec.set noisy i (not (Coding.Bitvec.get noisy i))
      done;
      let viterbi = Coding.Convolutional.decode code noisy in
      (* exhaustive minimum-distance over all 2^len messages *)
      let best = ref (Coding.Bitvec.create len) and best_d = ref max_int in
      for m = 0 to (1 lsl len) - 1 do
        let cand = Coding.Bitvec.of_int ~width:len m in
        let d =
          Coding.Bitvec.hamming_distance
            (Coding.Convolutional.encode code cand)
            noisy
        in
        if d < !best_d then begin
          best := cand;
          best_d := d
        end
      done;
      (* metrics must agree (the argmin may differ on ties) *)
      Coding.Bitvec.hamming_distance
        (Coding.Convolutional.encode code viterbi)
        noisy
      = !best_d)

let convolutional_cases =
  [ Alcotest.test_case "round trip" `Quick test_conv_round_trip;
    Alcotest.test_case "known vector" `Quick test_conv_known_vector;
    Alcotest.test_case "corrects errors" `Quick test_conv_corrects_errors;
    Alcotest.test_case "K=7 BER gain" `Quick test_conv_k7_ber_gain;
    Alcotest.test_case "rate" `Quick test_conv_rate;
    Alcotest.test_case "invalid" `Quick test_conv_invalid;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_conv_linear; prop_conv_ml_matches_exhaustive ]

let suites = suites @ [ ("coding.convolutional", convolutional_cases) ]

(* ------------------------------------------------------------------ *)
(* Binning (Slepian-Wolf / TDBC relay operation)                       *)
(* ------------------------------------------------------------------ *)

let erase_random rng w count =
  (* side information with [count] random erasures *)
  let n = Coding.Bitvec.length w in
  let side = Array.init n (fun i -> Some (Coding.Bitvec.get w i)) in
  let erased = ref 0 in
  while !erased < count do
    let i = Prob.Rng.int rng n in
    if side.(i) <> None then begin
      side.(i) <- None;
      incr erased
    end
  done;
  side

let test_binning_recovers_erasures () =
  let rng = Prob.Rng.create ~seed:61 in
  let scheme = Coding.Binning.create rng ~message_bits:64 ~bin_bits:12 in
  let failures = ref 0 in
  for _ = 1 to 40 do
    let w = Coding.Bitvec.random rng 64 in
    let idx = Coding.Binning.bin scheme w in
    (* 8 erasures vs a 12-bit bin: resolvable w.h.p. *)
    let side = erase_random rng w 8 in
    match Coding.Binning.decode scheme ~bin_index:idx ~side_info:side with
    | Some w' ->
      Alcotest.(check bool) "exact recovery" true (Coding.Bitvec.equal w w')
    | None -> incr failures
  done;
  (* dependent-column failures are rare at this margin *)
  Alcotest.(check bool) "few unresolvable draws" true (!failures <= 2)

let test_binning_too_many_erasures () =
  let rng = Prob.Rng.create ~seed:62 in
  let scheme = Coding.Binning.create rng ~message_bits:32 ~bin_bits:6 in
  let w = Coding.Bitvec.random rng 32 in
  let idx = Coding.Binning.bin scheme w in
  let side = erase_random rng w 10 in
  Alcotest.(check bool) "unresolvable" true
    (Coding.Binning.decode scheme ~bin_index:idx ~side_info:side = None)

let test_binning_detects_inconsistency () =
  let rng = Prob.Rng.create ~seed:63 in
  let scheme = Coding.Binning.create rng ~message_bits:32 ~bin_bits:8 in
  let w = Coding.Bitvec.random rng 32 in
  let idx = Coding.Binning.bin scheme w in
  (* no erasures but a flipped known bit: must be rejected *)
  let side = Array.init 32 (fun i -> Some (Coding.Bitvec.get w i)) in
  side.(3) <- Some (not (Coding.Bitvec.get w 3));
  Alcotest.(check bool) "inconsistent side info rejected" true
    (Coding.Binning.decode scheme ~bin_index:idx ~side_info:side = None)

let test_binning_tdbc_pipeline () =
  (* the full TDBC relay operation: relay broadcasts the XOR of the two
     bin indices; b cancels bin(wb) and decodes wa against the direct
     side information it overheard *)
  let rng = Prob.Rng.create ~seed:64 in
  let scheme = Coding.Binning.create rng ~message_bits:48 ~bin_bits:10 in
  for _ = 1 to 20 do
    let wa = Coding.Bitvec.random rng 48 in
    let wb = Coding.Bitvec.random rng 48 in
    let relay_word =
      Coding.Binning.xor_bins scheme
        (Coding.Binning.bin scheme wa)
        (Coding.Binning.bin scheme wb)
    in
    (* b's view: the relay word, its own message, and side information
       about wa with 6 erasures *)
    let bin_wa = Coding.Binning.xor_bins scheme relay_word (Coding.Binning.bin scheme wb) in
    let side = erase_random rng wa 6 in
    match Coding.Binning.decode scheme ~bin_index:bin_wa ~side_info:side with
    | Some w -> Alcotest.(check bool) "b recovers wa" true (Coding.Bitvec.equal w wa)
    | None -> () (* rare dependent columns *)
  done

let prop_bin_linearity =
  QCheck.Test.make ~count:100 ~name:"bin(u xor v) = bin u xor bin v"
    QCheck.int (fun seed ->
      let rng = Prob.Rng.create ~seed in
      let scheme = Coding.Binning.create rng ~message_bits:24 ~bin_bits:8 in
      let u = Coding.Bitvec.random rng 24 and v = Coding.Bitvec.random rng 24 in
      Coding.Bitvec.equal
        (Coding.Binning.bin scheme (Coding.Bitvec.xor u v))
        (Coding.Binning.xor_bins scheme
           (Coding.Binning.bin scheme u)
           (Coding.Binning.bin scheme v)))

let binning_cases =
  [ Alcotest.test_case "recovers erasures" `Quick test_binning_recovers_erasures;
    Alcotest.test_case "too many erasures" `Quick test_binning_too_many_erasures;
    Alcotest.test_case "detects inconsistency" `Quick test_binning_detects_inconsistency;
    Alcotest.test_case "TDBC pipeline" `Quick test_binning_tdbc_pipeline;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_bin_linearity ]

let suites = suites @ [ ("coding.binning", binning_cases) ]
