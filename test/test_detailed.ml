(* Tests for the fine-grained simulator: radio medium, node decode
   state, detailed runner (cross-validated against the block runner),
   and the ARQ layer. *)

let paper_gains = Channel.Gains.paper_fig4

(* ------------------------------------------------------------------ *)
(* Radio                                                               *)
(* ------------------------------------------------------------------ *)

let mk_radio () =
  let engine = Netsim.Engine.create () in
  let radio = Netsim.Radio.create engine ~power:10. ~gains:paper_gains in
  (engine, radio)

let dummy_packet src =
  Netsim.Packet.fresh ~src ~seq:0 (Coding.Bitvec.of_string "1010")

let tx src =
  { Netsim.Radio.tx_src = src;
    tx_packet = dummy_packet src;
    tx_rate = 1.;
  }

let test_radio_delivers_to_listeners () =
  let engine, radio = mk_radio () in
  let got = ref [] in
  List.iter
    (fun node ->
      Netsim.Radio.set_receiver radio node (fun r ->
          got := (node, r) :: !got))
    [ Netsim.Packet.A; Netsim.Packet.B; Netsim.Packet.R ];
  Netsim.Radio.phase radio ~start:0. ~duration:100.
    ~transmissions:[ tx Netsim.Packet.A ];
  Netsim.Engine.run engine;
  (* a transmitted: only b and r listen *)
  Alcotest.(check int) "two receptions" 2 (List.length !got);
  Alcotest.(check bool) "a heard nothing (half-duplex)" false
    (List.mem_assoc Netsim.Packet.A !got);
  let r_reception = List.assoc Netsim.Packet.R !got in
  Alcotest.(check int) "one source heard" 1
    (List.length r_reception.Netsim.Radio.heard);
  (* snr at the relay = P * G_ar *)
  (match r_reception.Netsim.Radio.heard with
  | [ h ] ->
    Alcotest.(check (float 1e-9)) "snr"
      (10. *. paper_gains.Channel.Gains.g_ar)
      h.Netsim.Radio.snr
  | _ -> Alcotest.fail "expected exactly one heard entry")

let test_radio_mac_superposition () =
  let engine, radio = mk_radio () in
  let seen = ref None in
  Netsim.Radio.set_receiver radio Netsim.Packet.R (fun r -> seen := Some r);
  Netsim.Radio.phase radio ~start:0. ~duration:50.
    ~transmissions:[ tx Netsim.Packet.A; tx Netsim.Packet.B ];
  Netsim.Engine.run engine;
  match !seen with
  | None -> Alcotest.fail "relay heard nothing"
  | Some r ->
    Alcotest.(check int) "two sources" 2 (List.length r.Netsim.Radio.heard);
    Alcotest.(check (float 1e-9)) "superposed snr"
      (10. *. (paper_gains.Channel.Gains.g_ar +. paper_gains.Channel.Gains.g_br))
      r.Netsim.Radio.total_snr

let test_radio_half_duplex_violation () =
  let engine, radio = mk_radio () in
  Netsim.Radio.phase radio ~start:0. ~duration:10.
    ~transmissions:[ tx Netsim.Packet.A; tx Netsim.Packet.A ];
  Alcotest.check_raises "double tx"
    (Failure "Radio: node transmitting twice in one phase (half-duplex)")
    (fun () -> Netsim.Engine.run engine)

let test_radio_overlap_violation () =
  let engine, radio = mk_radio () in
  Netsim.Radio.phase radio ~start:0. ~duration:10.
    ~transmissions:[ tx Netsim.Packet.A ];
  Netsim.Radio.phase radio ~start:5. ~duration:10.
    ~transmissions:[ tx Netsim.Packet.B ];
  Alcotest.check_raises "overlap"
    (Failure "Radio: phase scheduled while another is on the air") (fun () ->
      Netsim.Engine.run engine)

let test_radio_sequential_ok () =
  let engine, radio = mk_radio () in
  let count = ref 0 in
  Netsim.Radio.set_receiver radio Netsim.Packet.R (fun _ -> incr count);
  Netsim.Radio.phase radio ~start:0. ~duration:10.
    ~transmissions:[ tx Netsim.Packet.A ];
  Netsim.Radio.phase radio ~start:10. ~duration:10.
    ~transmissions:[ tx Netsim.Packet.B ];
  Netsim.Engine.run engine;
  Alcotest.(check int) "both phases heard" 2 !count;
  Alcotest.(check (float 1e-9)) "busy horizon" 20. (Netsim.Radio.busy_until radio)

(* ------------------------------------------------------------------ *)
(* Node                                                                *)
(* ------------------------------------------------------------------ *)

let reception ~listener ~duration ~heard ~total_snr =
  { Netsim.Radio.listener;
    phase_start = 0.;
    phase_duration = duration;
    heard;
    total_snr;
  }

let test_node_budget_accumulation () =
  let node = Netsim.Node.create Netsim.Packet.R ~block_symbols:1000 in
  let h snr =
    { Netsim.Radio.from = Netsim.Packet.A;
      packet = dummy_packet Netsim.Packet.A;
      rate = 1.;
      snr;
    }
  in
  (* two phases of 250 symbols each at SNR 3 (C = 2 bits/use):
     budget = 2 * 0.25 * 2 = 1 bit per block use *)
  Netsim.Node.observe node
    (reception ~listener:Netsim.Packet.R ~duration:250. ~heard:[ h 3. ]
       ~total_snr:3.);
  Netsim.Node.observe node
    (reception ~listener:Netsim.Packet.R ~duration:250. ~heard:[ h 3. ]
       ~total_snr:3.);
  Alcotest.(check (float 1e-9)) "budget" 1.
    (Netsim.Node.budget node Netsim.Packet.A);
  Alcotest.(check bool) "decodes at 1" true
    (Netsim.Node.can_decode node ~src:Netsim.Packet.A ~rate:1.);
  Alcotest.(check bool) "fails at 1.01" false
    (Netsim.Node.can_decode node ~src:Netsim.Packet.A ~rate:1.01);
  Netsim.Node.reset node;
  Alcotest.(check (float 1e-9)) "reset" 0.
    (Netsim.Node.budget node Netsim.Packet.A)

let test_node_joint_budget () =
  let node = Netsim.Node.create Netsim.Packet.R ~block_symbols:1000 in
  let h src snr =
    { Netsim.Radio.from = src; packet = dummy_packet src; rate = 1.; snr }
  in
  (* MAC phase: full block, snrs 3 and 3, superposed 6 *)
  Netsim.Node.observe node
    (reception ~listener:Netsim.Packet.R ~duration:1000.
       ~heard:[ h Netsim.Packet.A 3.; h Netsim.Packet.B 3. ]
       ~total_snr:6.);
  Alcotest.(check (float 1e-9)) "individual A" 2.
    (Netsim.Node.budget node Netsim.Packet.A);
  Alcotest.(check (float 1e-9)) "joint" (Numerics.Float_utils.log2 7.)
    (Netsim.Node.joint_budget node);
  Alcotest.(check bool) "pair inside pentagon" true
    (Netsim.Node.relay_can_decode_both node ~ra:1.4 ~rb:1.4);
  Alcotest.(check bool) "pair outside sum" false
    (Netsim.Node.relay_can_decode_both node ~ra:1.5 ~rb:1.5)

(* ------------------------------------------------------------------ *)
(* Detailed vs Runner cross-validation                                 *)
(* ------------------------------------------------------------------ *)

let test_detailed_matches_runner_static () =
  List.iter
    (fun protocol ->
      let cfg =
        Netsim.Runner.default_config ~protocol ~power_db:10.
          ~gains:paper_gains ~blocks:10 ~block_symbols:5_000 ()
      in
      let r1 = Netsim.Runner.run cfg in
      let r2 = Netsim.Detailed.run cfg in
      Alcotest.(check (float 1e-12))
        (Bidir.Protocol.name protocol ^ " same throughput")
        (Netsim.Metrics.throughput r1.Netsim.Runner.metrics)
        (Netsim.Metrics.throughput r2.Netsim.Runner.metrics);
      Alcotest.(check int)
        (Bidir.Protocol.name protocol ^ " zero errors")
        0
        (Netsim.Metrics.bit_errors r2.Netsim.Runner.metrics))
    Bidir.Protocol.all

let test_detailed_matches_runner_fading_fixed () =
  (* identical fading seeds -> block-identical outage decisions *)
  List.iter
    (fun protocol ->
      let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
      let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
      let mk () =
        { (Netsim.Runner.default_config ~protocol ~power_db:10.
             ~gains:paper_gains ~blocks:300 ~block_symbols:1_000 ())
          with
          Netsim.Runner.fading =
            Channel.Fading.create ~rng_seed:13 ~mean:paper_gains ();
          mode =
            Netsim.Runner.Fixed
              { deltas = opt.Bidir.Optimize.deltas;
                ra = opt.Bidir.Optimize.ra *. 0.5;
                rb = opt.Bidir.Optimize.rb *. 0.5;
              };
        }
      in
      let r1 = Netsim.Runner.run (mk ()) in
      let r2 = Netsim.Detailed.run (mk ()) in
      Alcotest.(check (float 1e-12))
        (Bidir.Protocol.name protocol ^ " same outage rate")
        (Netsim.Metrics.outage_rate r1.Netsim.Runner.metrics)
        (Netsim.Metrics.outage_rate r2.Netsim.Runner.metrics);
      Alcotest.(check int)
        (Bidir.Protocol.name protocol ^ " same delivered bits")
        (Netsim.Metrics.delivered_bits r1.Netsim.Runner.metrics)
        (Netsim.Metrics.delivered_bits r2.Netsim.Runner.metrics))
    Bidir.Protocol.all

let test_detailed_clock () =
  let cfg =
    Netsim.Runner.default_config ~protocol:Bidir.Protocol.Hbc ~power_db:5.
      ~gains:paper_gains ~blocks:4 ~block_symbols:1_000 ()
  in
  let r = Netsim.Detailed.run cfg in
  Alcotest.(check (float 1e-6)) "ends at blocks * n" 4_000.
    r.Netsim.Runner.elapsed_symbols

(* ------------------------------------------------------------------ *)
(* ARQ                                                                 *)
(* ------------------------------------------------------------------ *)

let arq_config ?(messages = 100) ?(max_retries = 4) ~backoff protocol =
  let s = Bidir.Gaussian.scenario ~power_db:10. ~gains:paper_gains in
  let opt = Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner s in
  { Netsim.Arq.protocol;
    power = Numerics.Float_utils.db_to_lin 10.;
    fading = Channel.Fading.create ~rng_seed:21 ~mean:paper_gains ();
    deltas = opt.Bidir.Optimize.deltas;
    ra = opt.Bidir.Optimize.ra *. (1. -. backoff);
    rb = opt.Bidir.Optimize.rb *. (1. -. backoff);
    block_symbols = 1_000;
    messages;
    max_retries;
    seed = 5;
  }

let test_arq_static_no_retries () =
  (* static channel at the exact optimum: every pair lands first try *)
  let cfg =
    { (arq_config ~backoff:0. Bidir.Protocol.Tdbc) with
      Netsim.Arq.fading = Channel.Fading.static paper_gains;
    }
  in
  let r = Netsim.Arq.run cfg in
  Alcotest.(check int) "all delivered" 100 r.Netsim.Arq.delivered_pairs;
  Alcotest.(check int) "no drops" 0 r.Netsim.Arq.dropped_pairs;
  Alcotest.(check (float 1e-9)) "one attempt each" 1. r.Netsim.Arq.mean_attempts;
  Alcotest.(check int) "blocks = messages" 100 r.Netsim.Arq.total_blocks

let test_arq_fading_recovers () =
  let aggressive = Netsim.Arq.run (arq_config ~backoff:0.2 Bidir.Protocol.Mabc) in
  Alcotest.(check bool) "some retries happened" true
    (aggressive.Netsim.Arq.total_blocks > 100);
  Alcotest.(check bool) "most pairs eventually delivered" true
    (aggressive.Netsim.Arq.delivered_pairs > 60);
  Alcotest.(check bool) "attempts tracked" true
    (aggressive.Netsim.Arq.mean_attempts >= 1.)

let test_arq_backoff_tradeoff () =
  (* backing off the rate reduces retries *)
  let r_low = Netsim.Arq.run (arq_config ~backoff:0.7 Bidir.Protocol.Tdbc) in
  let r_high = Netsim.Arq.run (arq_config ~backoff:0.1 Bidir.Protocol.Tdbc) in
  Alcotest.(check bool) "lower rate -> fewer attempts" true
    (r_low.Netsim.Arq.mean_attempts <= r_high.Netsim.Arq.mean_attempts)

let test_arq_validation () =
  let cfg = arq_config ~backoff:0. Bidir.Protocol.Tdbc in
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Arq: schedule arity does not match the protocol")
    (fun () ->
      ignore (Netsim.Arq.run { cfg with Netsim.Arq.deltas = [| 1. |] }));
  Alcotest.check_raises "no messages"
    (Invalid_argument "Arq: messages must be positive") (fun () ->
      ignore (Netsim.Arq.run { cfg with Netsim.Arq.messages = 0 }))

let prop_arq_goodput_bounded =
  QCheck.Test.make ~count:15 ~name:"ARQ goodput <= offered rate"
    QCheck.(pair (float_range 0. 0.8) (int_range 0 3))
    (fun (backoff, retries) ->
      let cfg =
        { (arq_config ~messages:40 ~max_retries:retries ~backoff
             Bidir.Protocol.Tdbc)
          with Netsim.Arq.seed = retries + 1;
        }
      in
      let r = Netsim.Arq.run cfg in
      r.Netsim.Arq.goodput <= cfg.Netsim.Arq.ra +. cfg.Netsim.Arq.rb +. 1e-9
      && r.Netsim.Arq.delivered_pairs + r.Netsim.Arq.dropped_pairs
         = cfg.Netsim.Arq.messages)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_arq_goodput_bounded ]

let suites =
  [ ( "netsim.radio",
      [ Alcotest.test_case "delivers to listeners" `Quick
          test_radio_delivers_to_listeners;
        Alcotest.test_case "MAC superposition" `Quick test_radio_mac_superposition;
        Alcotest.test_case "half-duplex violation" `Quick
          test_radio_half_duplex_violation;
        Alcotest.test_case "overlap violation" `Quick test_radio_overlap_violation;
        Alcotest.test_case "sequential phases" `Quick test_radio_sequential_ok;
      ] );
    ( "netsim.node",
      [ Alcotest.test_case "budget accumulation" `Quick
          test_node_budget_accumulation;
        Alcotest.test_case "joint budget" `Quick test_node_joint_budget;
      ] );
    ( "netsim.detailed",
      [ Alcotest.test_case "matches runner (static)" `Quick
          test_detailed_matches_runner_static;
        Alcotest.test_case "matches runner (fading, fixed)" `Quick
          test_detailed_matches_runner_fading_fixed;
        Alcotest.test_case "virtual clock" `Quick test_detailed_clock;
      ] );
    ( "netsim.arq",
      [ Alcotest.test_case "static: no retries" `Quick test_arq_static_no_retries;
        Alcotest.test_case "fading: recovers" `Quick test_arq_fading_recovers;
        Alcotest.test_case "backoff tradeoff" `Quick test_arq_backoff_tradeoff;
        Alcotest.test_case "validation" `Quick test_arq_validation;
      ] );
    ("netsim.arq.properties", qcheck_cases);
  ]

(* ------------------------------------------------------------------ *)
(* Traffic / queueing                                                  *)
(* ------------------------------------------------------------------ *)

let traffic_config ?(load = 0.5) protocol =
  { Netsim.Traffic.protocol;
    power = Numerics.Float_utils.db_to_lin 10.;
    gains = paper_gains;
    load;
    block_symbols = 1_000;
    blocks = 1_500;
    seed = 9;
  }

let test_traffic_light_load () =
  let r = Netsim.Traffic.run (traffic_config ~load:0.3 Bidir.Protocol.Tdbc) in
  (* light load: most arrivals served in the next block *)
  Alcotest.(check bool) "delay near one block" true
    (r.Netsim.Traffic.mean_delay_blocks < 1.1);
  Alcotest.(check bool) "nearly everything carried" true
    (float_of_int r.Netsim.Traffic.carried_bits
     /. float_of_int (max 1 r.Netsim.Traffic.offered_bits)
     > 0.99);
  Alcotest.(check bool) "utilisation ~ load" true
    (abs_float (r.Netsim.Traffic.utilisation -. 0.3) < 0.05)

let test_traffic_delay_grows_with_load () =
  let d load =
    (Netsim.Traffic.run (traffic_config ~load Bidir.Protocol.Mabc))
      .Netsim.Traffic.mean_delay_blocks
  in
  let d50 = d 0.5 and d95 = d 0.95 in
  Alcotest.(check bool) "delay grows" true (d95 > d50 +. 0.5);
  Alcotest.(check bool) "p95 >= mean" true
    (let r = Netsim.Traffic.run (traffic_config ~load:0.9 Bidir.Protocol.Mabc) in
     r.Netsim.Traffic.p95_delay_blocks
     >= r.Netsim.Traffic.mean_delay_blocks -. 1e-9)

let test_traffic_overload_queues () =
  let r = Netsim.Traffic.run (traffic_config ~load:1.4 Bidir.Protocol.Dt) in
  (* 40% overload: a macroscopic backlog remains *)
  Alcotest.(check bool) "backlog" true
    (r.Netsim.Traffic.offered_bits - r.Netsim.Traffic.carried_bits
     > r.Netsim.Traffic.offered_bits / 10);
  Alcotest.(check bool) "queue high-water positive" true
    (r.Netsim.Traffic.max_queue_bits > 0)

let test_traffic_validation () =
  Alcotest.check_raises "bad load"
    (Invalid_argument "Traffic.run: load must be positive") (fun () ->
      ignore (Netsim.Traffic.run (traffic_config ~load:0. Bidir.Protocol.Dt)))

(* Exact hand-computed trace through the batch queue, covering partial
   service, multi-batch completion and the front/back rotation. *)
let test_batch_queue_hand_trace () =
  let q = Netsim.Batch_queue.create () in
  Netsim.Batch_queue.enqueue q ~arrival:0. ~bits:30;
  Netsim.Batch_queue.enqueue q ~arrival:0. ~bits:20;
  Alcotest.(check int) "50 bits queued" 50 (Netsim.Batch_queue.bits q);
  Alcotest.(check int) "2 batches" 2 (Netsim.Batch_queue.length q);
  (* budget 40 at t=1: first batch (30) completes with sojourn 1, the
     second is served 10 of 20 bits — no completion *)
  Alcotest.(check (list (float 1e-12))) "first drain" [ 1. ]
    (Netsim.Batch_queue.drain q ~budget:40 ~now:1.);
  Alcotest.(check int) "10 bits remain" 10 (Netsim.Batch_queue.bits q);
  Netsim.Batch_queue.enqueue q ~arrival:1. ~bits:5;
  (* budget 40 at t=2: the partially-served batch (arrival 0, sojourn 2)
     then the new one (arrival 1, sojourn 1) both complete; the most
     recent completion is listed first *)
  Alcotest.(check (list (float 1e-12))) "second drain" [ 1.; 2. ]
    (Netsim.Batch_queue.drain q ~budget:40 ~now:2.);
  Alcotest.(check bool) "empty" true (Netsim.Batch_queue.is_empty q);
  Alcotest.(check (list (float 1e-12))) "drain on empty" []
    (Netsim.Batch_queue.drain q ~budget:10 ~now:3.);
  (* zero budget performs no partial service *)
  Netsim.Batch_queue.enqueue q ~arrival:3. ~bits:7;
  Alcotest.(check (list (float 1e-12))) "zero budget" []
    (Netsim.Batch_queue.drain q ~budget:0 ~now:4.);
  Alcotest.(check int) "untouched" 7 (Netsim.Batch_queue.bits q)

(* The two-list queue must be observationally identical to the original
   list-append FIFO: replay one random op sequence through both. *)
let test_batch_queue_matches_list_reference () =
  (* the seed implementation, verbatim *)
  let module Ref = struct
    type t = { mutable batches : (float * int) list; mutable bits : int }

    let create () = { batches = []; bits = 0 }

    let enqueue q ~arrival ~bits =
      if bits > 0 then begin
        q.batches <- q.batches @ [ (arrival, bits) ];
        q.bits <- q.bits + bits
      end

    let drain q ~budget ~now =
      let rec go budget acc =
        match q.batches with
        | [] -> acc
        | (arrival, bits) :: rest ->
          if bits <= budget then begin
            q.batches <- rest;
            q.bits <- q.bits - bits;
            go (budget - bits) ((now -. arrival) :: acc)
          end
          else begin
            q.batches <- (arrival, bits - budget) :: rest;
            q.bits <- q.bits - budget;
            acc
          end
      in
      go budget []
  end in
  let rng = Prob.Rng.create ~seed:31 in
  let q = Netsim.Batch_queue.create () and r = Ref.create () in
  for block = 0 to 499 do
    let now = float_of_int block in
    for _ = 1 to Prob.Rng.int rng 6 do
      let bits = Prob.Rng.int rng 120 in
      Netsim.Batch_queue.enqueue q ~arrival:now ~bits;
      Ref.enqueue r ~arrival:now ~bits
    done;
    let budget = Prob.Rng.int rng 260 in
    let dq = Netsim.Batch_queue.drain q ~budget ~now:(now +. 1.) in
    let dr = Ref.drain r ~budget ~now:(now +. 1.) in
    Alcotest.(check (list (float 0.)))
      (Printf.sprintf "block %d completions" block)
      dr dq;
    Alcotest.(check int)
      (Printf.sprintf "block %d bits" block)
      r.Ref.bits (Netsim.Batch_queue.bits q)
  done

(* Overload regression: at load 0.95 over 20k blocks the old O(n)
   list-append enqueue made this run quadratic; with the two-list queue
   it completes well inside the alcotest budget. *)
let test_traffic_overload_horizon_completes () =
  let r =
    Netsim.Traffic.run
      { (traffic_config ~load:0.95 Bidir.Protocol.Tdbc) with
        Netsim.Traffic.blocks = 20_000;
      }
  in
  Alcotest.(check bool) "something carried" true
    (r.Netsim.Traffic.carried_bits > 0)

(* The reported peak backlog must be the pre-service maximum. Under
   sustained overload the backlog at the last block, just after its
   arrivals, is (still-queued bits) + (the full service both directions
   consume in that block) — so the high-water mark is at least that.
   The old post-drain sampling reported exactly the still-queued bits
   and fails this bound. *)
let test_traffic_peak_sampled_before_service () =
  let cfg = { (traffic_config ~load:1.5 Bidir.Protocol.Tdbc) with
              Netsim.Traffic.blocks = 2_000 } in
  let r = Netsim.Traffic.run cfg in
  (* recompute the per-block service exactly as [run] derives it *)
  let s =
    Bidir.Gaussian.scenario_lin ~power:cfg.Netsim.Traffic.power
      ~gains:cfg.Netsim.Traffic.gains
  in
  let opt =
    Bidir.Optimize.sum_rate cfg.Netsim.Traffic.protocol Bidir.Bound.Inner s
  in
  let n = float_of_int cfg.Netsim.Traffic.block_symbols in
  let serve_a = int_of_float (opt.Bidir.Optimize.ra *. n) in
  let serve_b = int_of_float (opt.Bidir.Optimize.rb *. n) in
  let backlog = r.Netsim.Traffic.offered_bits - r.Netsim.Traffic.carried_bits in
  Alcotest.(check bool) "peak >= final backlog + last block's service" true
    (r.Netsim.Traffic.max_queue_bits >= backlog + serve_a + serve_b)

let test_traffic_comparison_table () =
  let t =
    Netsim.Traffic.comparison_table ~offered:[ 2.5; 4.2 ] ~blocks:400
      ~power_db:10. ~gains:paper_gains ()
  in
  Alcotest.(check int) "two rows" 2 (List.length t.Bidir.Figures.rows);
  (* at 4.2 bits/use only TDBC and HBC survive at these gains *)
  match t.Bidir.Figures.rows with
  | [ _; [ _; dt; naive; mabc; tdbc; hbc ] ] ->
    Alcotest.(check string) "DT overloaded" "overload" dt;
    Alcotest.(check string) "NAIVE overloaded" "overload" naive;
    Alcotest.(check string) "MABC overloaded" "overload" mabc;
    Alcotest.(check bool) "TDBC carries it" true (tdbc <> "overload");
    Alcotest.(check bool) "HBC carries it" true (hbc <> "overload")
  | _ -> Alcotest.fail "unexpected table shape"

let traffic_cases =
  [ Alcotest.test_case "light load" `Quick test_traffic_light_load;
    Alcotest.test_case "delay grows with load" `Quick test_traffic_delay_grows_with_load;
    Alcotest.test_case "overload queues" `Quick test_traffic_overload_queues;
    Alcotest.test_case "validation" `Quick test_traffic_validation;
    Alcotest.test_case "comparison table" `Quick test_traffic_comparison_table;
    Alcotest.test_case "batch queue hand trace" `Quick test_batch_queue_hand_trace;
    Alcotest.test_case "batch queue = list reference" `Quick
      test_batch_queue_matches_list_reference;
    Alcotest.test_case "20k-block overload completes" `Quick
      test_traffic_overload_horizon_completes;
    Alcotest.test_case "peak sampled before service" `Quick
      test_traffic_peak_sampled_before_service;
  ]

let suites = suites @ [ ("netsim.traffic", traffic_cases) ]
