(* Tests for the engine subsystem: deterministic pool mapping,
   memoization semantics, and end-to-end invariance of figure output
   under domain count and cache state. *)

let int_list = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_matches_list_map () =
  let items = List.init 37 Fun.id in
  let f x = (x * x) - (3 * x) in
  let expected = List.map f items in
  List.iter
    (fun domains ->
      Alcotest.check int_list
        (Printf.sprintf "domains=%d" domains)
        expected
        (Engine.Pool.map ~domains f items))
    [ 1; 2; 4 ]

let test_pool_empty_and_singleton () =
  Alcotest.check int_list "empty" [] (Engine.Pool.map ~domains:4 succ []);
  Alcotest.check int_list "singleton" [ 8 ]
    (Engine.Pool.map ~domains:4 succ [ 7 ])

let test_pool_more_domains_than_items () =
  let items = [ 1; 2; 3 ] in
  Alcotest.check int_list "d > n" (List.map succ items)
    (Engine.Pool.map ~domains:16 succ items)

exception Boom of int

let test_pool_propagates_exception () =
  List.iter
    (fun domains ->
      match
        Engine.Pool.map ~domains
          (fun x -> if x = 11 then raise (Boom x) else x)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 11 -> ())
    [ 1; 2; 4 ]

let test_pool_nested_map () =
  (* an [f] that itself maps must run inline in the worker, not
     deadlock the pool *)
  let result =
    Engine.Pool.map ~domains:2
      (fun x -> List.fold_left ( + ) 0 (Engine.Pool.map ~domains:2 (( * ) x) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.check int_list "nested" [ 6; 12; 18; 24 ] result

let test_pool_rejects_bad_domains () =
  Alcotest.check_raises "domains = 0"
    (Invalid_argument "Engine.Pool.map: domains < 1") (fun () ->
      ignore (Engine.Pool.map ~domains:0 succ [ 1 ]))

let test_pool_concurrent_overlapping_maps () =
  (* two caller domains issuing overlapping map_array calls against
     the shared worker pool: results must be correct for both, and the
     utilization accounting must stay sane (no negative queue-wait or
     busy observations from racing clocks) *)
  let n = 1_000 in
  let input = Array.init n Fun.id in
  let caller mult () =
    Array.init 10 (fun _ ->
        Engine.Pool.map_array ~domains:2 (fun x -> mult * x) input)
  in
  let d1 = Domain.spawn (caller 3) in
  let d2 = Domain.spawn (caller 5) in
  let check mult rounds =
    Array.iter
      (fun out ->
        Alcotest.(check int) "length" n (Array.length out);
        Array.iteri
          (fun i y ->
            if y <> mult * i then
              Alcotest.failf "slot %d: expected %d, got %d" i (mult * i) y)
          out)
      rounds
  in
  check 3 (Domain.join d1);
  check 5 (Domain.join d2);
  List.iter
    (fun name ->
      match List.assoc_opt name (Telemetry.Metrics.histograms ()) with
      | None -> ()
      | Some h ->
        if Telemetry.Histogram.count h > 0 then
          Alcotest.(check bool) (name ^ " observations non-negative") true
            (Telemetry.Histogram.min_value h >= 0.))
    [ "engine.pool.queue_wait_seconds"; "engine.pool.busy_seconds";
      "engine.pool.idle_seconds"; "engine.pool.chunk_seconds" ]

(* ------------------------------------------------------------------ *)
(* Memo                                                                *)
(* ------------------------------------------------------------------ *)

let test_memo_computes_once () =
  let t : (int, int) Engine.Memo.t = Engine.Memo.create () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    42
  in
  Alcotest.(check int) "first" 42 (Engine.Memo.find_or_add t 1 compute);
  Alcotest.(check int) "second" 42 (Engine.Memo.find_or_add t 1 compute);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "length" 1 (Engine.Memo.length t);
  Engine.Memo.clear t;
  Alcotest.(check int) "cleared" 0 (Engine.Memo.length t)

let test_memo_disabled_recomputes () =
  let t : (int, int) Engine.Memo.t = Engine.Memo.create () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    7
  in
  Engine.Memo.with_enabled false (fun () ->
      ignore (Engine.Memo.find_or_add t 1 compute);
      ignore (Engine.Memo.find_or_add t 1 compute));
  Alcotest.(check int) "computed twice when disabled" 2 !calls;
  Alcotest.(check int) "nothing stored" 0 (Engine.Memo.length t);
  Alcotest.(check bool) "switch restored" true (Engine.Memo.enabled ())

let test_memo_exception_stores_nothing () =
  let t : (int, int) Engine.Memo.t = Engine.Memo.create () in
  (match Engine.Memo.find_or_add t 1 (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "nothing stored" 0 (Engine.Memo.length t)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism                                              *)
(* ------------------------------------------------------------------ *)

let series_points (f : Bidir.Figures.figure) =
  List.concat_map (fun s -> s.Bidir.Figures.points) f.Bidir.Figures.series

let check_same_points msg ps qs =
  Alcotest.(check int) (msg ^ ": length") (List.length ps) (List.length qs);
  List.iter2
    (fun (x1, y1) (x2, y2) ->
      Alcotest.(check (float 0.)) (msg ^ ": x") x1 x2;
      Alcotest.(check (float 0.)) (msg ^ ": y") y1 y2)
    ps qs

let with_domains domains f =
  Engine.Pool.set_default_domains domains;
  Fun.protect ~finally:(fun () -> Engine.Pool.set_default_domains 1) f

let test_fig3_identical_across_domains () =
  let run domains =
    with_domains domains (fun () ->
        series_points (Bidir.Figures.fig3 ~samples:9 ()))
  in
  let base = run 1 in
  (* bit-identical, hence the zero tolerance in [check_same_points] *)
  check_same_points "domains 1 vs 2" base (run 2);
  check_same_points "domains 1 vs 4" base (run 4)

(* fig4 is the LP-heavy artifact: every series is a rate-region
   boundary, so this drives the flat-kernel solver, the warm
   [reoptimize_into] slots and the flat dedup buffers end to end. The
   byte-identity contract is on the RENDERED artifacts (what `figures
   all --out` writes and CI diffs across domain counts): raw vertex
   coordinates may differ in the last few ulps between warm-start
   sequences, but the published txt/csv bytes must not. *)
let test_fig4_identical_across_domains () =
  let run domains =
    with_domains domains (fun () ->
        Bidir.Rate_region.clear_cache ();
        let f = Bidir.Figures.fig4 ~power_db:10. () in
        (Report.render_figure f, Report.figure_csv f))
  in
  let txt1, csv1 = run 1 in
  let txt4, csv4 = run 4 in
  Alcotest.(check string) "fig4 txt domains 1 vs 4" txt1 txt4;
  Alcotest.(check string) "fig4 csv domains 1 vs 4" csv1 csv4

let test_cache_on_off_agree () =
  let points enabled =
    Engine.Memo.with_enabled enabled (fun () ->
        series_points (Bidir.Figures.fig3 ~samples:9 ()))
  in
  let on = points true and off = points false in
  Alcotest.(check int) "length" (List.length on) (List.length off);
  List.iter2
    (fun (x1, y1) (x2, y2) ->
      Alcotest.(check (float 1e-12)) "x" x1 x2;
      Alcotest.(check (float 1e-12)) "y" y1 y2)
    on off

let test_crossover_hits_cache () =
  Engine.Memo.clear_all ();
  Engine.Stats.reset ();
  ignore (Bidir.Figures.crossover_table () : Bidir.Figures.table);
  let s = Engine.Stats.snapshot () in
  Alcotest.(check bool)
    "nonzero hit rate" true
    (s.Engine.Stats.cache_hits > 0)

let suites =
  [ ( "engine.pool",
      [ Alcotest.test_case "matches List.map" `Quick test_pool_matches_list_map;
        Alcotest.test_case "empty / singleton" `Quick test_pool_empty_and_singleton;
        Alcotest.test_case "more domains than items" `Quick test_pool_more_domains_than_items;
        Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
        Alcotest.test_case "nested map" `Quick test_pool_nested_map;
        Alcotest.test_case "rejects domains < 1" `Quick test_pool_rejects_bad_domains;
        Alcotest.test_case "concurrent overlapping maps" `Quick
          test_pool_concurrent_overlapping_maps;
      ] );
    ( "engine.memo",
      [ Alcotest.test_case "computes once" `Quick test_memo_computes_once;
        Alcotest.test_case "disabled recomputes" `Quick test_memo_disabled_recomputes;
        Alcotest.test_case "exception stores nothing" `Quick test_memo_exception_stores_nothing;
      ] );
    ( "engine.determinism",
      [ Alcotest.test_case "fig3 identical across domains" `Quick test_fig3_identical_across_domains;
        Alcotest.test_case "fig4 identical across domains" `Quick test_fig4_identical_across_domains;
        Alcotest.test_case "cache on/off agree" `Quick test_cache_on_off_agree;
        Alcotest.test_case "crossover_table hits cache" `Quick test_crossover_hits_cache;
      ] );
  ]
