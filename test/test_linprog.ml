(* Tests for the simplex LP solver. *)

let check_float ?(eps = 1e-7) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let solve_max c constrs = Linprog.Simplex.maximize ~c ~constrs

let expect_optimal = function
  | Linprog.Simplex.Optimal s -> s
  | Linprog.Simplex.Unbounded -> Alcotest.fail "unexpected: unbounded"
  | Linprog.Simplex.Infeasible -> Alcotest.fail "unexpected: infeasible"

let le = Linprog.Simplex.Le
let ge = Linprog.Simplex.Ge
let eq = Linprog.Simplex.Eq
let c_ = Linprog.Simplex.constr

(* ------------------------------------------------------------------ *)
(* Textbook instances                                                  *)
(* ------------------------------------------------------------------ *)

let test_basic_2d () =
  (* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), obj 36 *)
  let s =
    expect_optimal
      (solve_max [| 3.; 5. |]
         [ c_ [| 1.; 0. |] le 4.;
           c_ [| 0.; 2. |] le 12.;
           c_ [| 3.; 2. |] le 18.;
         ])
  in
  check_float "objective" 36. s.Linprog.Simplex.objective;
  check_float "x" 2. s.Linprog.Simplex.x.(0);
  check_float "y" 6. s.Linprog.Simplex.x.(1)

let test_equality_constraint () =
  (* max x + y s.t. x + y = 5, x <= 3 -> obj 5 *)
  let s =
    expect_optimal
      (solve_max [| 1.; 1. |]
         [ c_ [| 1.; 1. |] eq 5.; c_ [| 1.; 0. |] le 3. ])
  in
  check_float "objective" 5. s.Linprog.Simplex.objective

let test_ge_constraint () =
  (* min x + 2y s.t. x + y >= 4, x <= 3, y <= 3 -> (3, 1), obj 5 *)
  let s =
    match
      Linprog.Simplex.minimize ~c:[| 1.; 2. |]
        ~constrs:
          [ c_ [| 1.; 1. |] ge 4.;
            c_ [| 1.; 0. |] le 3.;
            c_ [| 0.; 1. |] le 3.;
          ]
    with
    | Linprog.Simplex.Optimal s -> s
    | _ -> Alcotest.fail "expected optimal"
  in
  check_float "objective" 5. s.Linprog.Simplex.objective;
  check_float "x" 3. s.Linprog.Simplex.x.(0);
  check_float "y" 1. s.Linprog.Simplex.x.(1)

let test_unbounded () =
  match solve_max [| 1.; 0. |] [ c_ [| 0.; 1. |] le 1. ] with
  | Linprog.Simplex.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_infeasible () =
  match
    solve_max [| 1. |] [ c_ [| 1. |] le 1.; c_ [| 1. |] ge 2. ]
  with
  | Linprog.Simplex.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_negative_rhs () =
  (* -x <= -2 means x >= 2; max -x -> x = 2 *)
  let s = expect_optimal (solve_max [| -1. |] [ c_ [| -1. |] le (-2.) ]) in
  check_float "objective" (-2.) s.Linprog.Simplex.objective

let test_degenerate () =
  (* degenerate vertex: three constraints meet at (1,1) *)
  let s =
    expect_optimal
      (solve_max [| 1.; 1. |]
         [ c_ [| 1.; 0. |] le 1.;
           c_ [| 0.; 1. |] le 1.;
           c_ [| 1.; 1. |] le 2.;
         ])
  in
  check_float "objective" 2. s.Linprog.Simplex.objective

let test_redundant_equalities () =
  (* duplicated equality rows exercise the redundant-row drop *)
  let s =
    expect_optimal
      (solve_max [| 1.; 1. |]
         [ c_ [| 1.; 1. |] eq 3.;
           c_ [| 1.; 1. |] eq 3.;
           c_ [| 1.; 0. |] le 2.;
         ])
  in
  check_float "objective" 3. s.Linprog.Simplex.objective

let test_zero_objective () =
  let s = expect_optimal (solve_max [| 0.; 0. |] [ c_ [| 1.; 1. |] le 1. ]) in
  check_float "objective" 0. s.Linprog.Simplex.objective

let test_feasible () =
  Alcotest.(check bool) "feasible" true
    (Linprog.Simplex.feasible ~nvars:2 ~constrs:[ c_ [| 1.; 1. |] le 1. ]);
  Alcotest.(check bool) "infeasible" false
    (Linprog.Simplex.feasible ~nvars:1
       ~constrs:[ c_ [| 1. |] le 1.; c_ [| 1. |] ge 2. ])

let test_klee_minty_3 () =
  (* Klee-Minty cube in 3 dimensions: optimum is 5^3 / ... classic form:
     max 100x1 + 10x2 + x3
     s.t. x1 <= 1; 20x1 + x2 <= 100; 200x1 + 20x2 + x3 <= 10000
     optimum 10000 at (0, 0, 10000) *)
  let s =
    expect_optimal
      (solve_max [| 100.; 10.; 1. |]
         [ c_ [| 1.; 0.; 0. |] le 1.;
           c_ [| 20.; 1.; 0. |] le 100.;
           c_ [| 200.; 20.; 1. |] le 10000.;
         ])
  in
  check_float "objective" 10000. s.Linprog.Simplex.objective

let test_phase_duration_shape () =
  (* the exact LP shape used for MABC rate regions:
     max Ra + Rb s.t. Ra <= 2 d1, Ra <= 3 d2, Rb <= 2 d1, Rb <= 3 d2,
     Ra + Rb <= 3 d1, d1 + d2 = 1.
     Substituting: optimal d1 solves 3 d1 = 2 * 3 (1 - d1)... the binding
     constraints are Ra+Rb <= 3 d1 and Ra,Rb <= 3 d2 each. Sum rate =
     min(3 d1, 6 (1 - d1) capped by per-user 2 d1 each: Ra+Rb <= 4 d1).
     max over d1 of min(3 d1, 4 d1, 6(1-d1)) -> 3 d1 = 6 - 6 d1 ->
     d1 = 2/3, sum = 2. *)
  let s =
    expect_optimal
      (solve_max
         [| 1.; 1.; 0.; 0. |] (* Ra Rb d1 d2 *)
         [ c_ [| 1.; 0.; -2.; 0. |] le 0.;
           c_ [| 1.; 0.; 0.; -3. |] le 0.;
           c_ [| 0.; 1.; -2.; 0. |] le 0.;
           c_ [| 0.; 1.; 0.; -3. |] le 0.;
           c_ [| 1.; 1.; -3.; 0. |] le 0.;
           c_ [| 0.; 0.; 1.; 1. |] eq 1.;
         ])
  in
  check_float "sum rate" 2. s.Linprog.Simplex.objective;
  check_float "d1" (2. /. 3.) s.Linprog.Simplex.x.(2)

(* ------------------------------------------------------------------ *)
(* Model layer                                                         *)
(* ------------------------------------------------------------------ *)

let test_model_basic () =
  let m = Linprog.Model.create () in
  let x = Linprog.Model.variable m "x" in
  let y = Linprog.Model.variable m "y" in
  Linprog.Model.add m ~name:"cap_x" [ (x, 1.) ] `Le 4.;
  Linprog.Model.add m ~name:"cap_y" [ (y, 2.) ] `Le 12.;
  Linprog.Model.add m ~name:"mix" [ (x, 3.); (y, 2.) ] `Le 18.;
  Linprog.Model.objective m [ (x, 3.); (y, 5.) ];
  (match Linprog.Model.solve m with
  | Ok sol ->
    check_float "objective" 36. (Linprog.Model.objective_value sol);
    check_float "x" 2. (Linprog.Model.value sol x);
    check_float "y" 6. (Linprog.Model.value sol y)
  | Error _ -> Alcotest.fail "expected optimal");
  Alcotest.(check int) "vars" 2 (Linprog.Model.num_vars m);
  Alcotest.(check int) "constraints" 3 (Linprog.Model.num_constraints m);
  Alcotest.(check string) "name" "x" (Linprog.Model.var_name m x)

let test_model_duplicate_name () =
  let m = Linprog.Model.create () in
  let _ = Linprog.Model.variable m "x" in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Model.variable: duplicate variable name x") (fun () ->
      ignore (Linprog.Model.variable m "x"))

let test_model_repeated_terms () =
  (* x + x <= 2 must mean 2x <= 2 *)
  let m = Linprog.Model.create () in
  let x = Linprog.Model.variable m "x" in
  Linprog.Model.add m ~name:"double" [ (x, 1.); (x, 1.) ] `Le 2.;
  Linprog.Model.objective m [ (x, 1.) ];
  match Linprog.Model.solve m with
  | Ok sol -> check_float "x" 1. (Linprog.Model.value sol x)
  | Error _ -> Alcotest.fail "expected optimal"

let test_model_infeasible () =
  let m = Linprog.Model.create () in
  let x = Linprog.Model.variable m "x" in
  Linprog.Model.add m ~name:"lo" [ (x, 1.) ] `Ge 2.;
  Linprog.Model.add m ~name:"hi" [ (x, 1.) ] `Le 1.;
  Linprog.Model.objective m [ (x, 1.) ];
  match Linprog.Model.solve m with
  | Error `Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_model_solve_min () =
  let m = Linprog.Model.create () in
  let x = Linprog.Model.variable m "x" in
  let y = Linprog.Model.variable m "y" in
  Linprog.Model.add m ~name:"cover" [ (x, 1.); (y, 1.) ] `Ge 4.;
  Linprog.Model.add m ~name:"cap_x" [ (x, 1.) ] `Le 3.;
  Linprog.Model.add m ~name:"cap_y" [ (y, 1.) ] `Le 3.;
  Linprog.Model.objective m [ (x, 1.); (y, 2.) ];
  match Linprog.Model.solve_min m with
  | Ok sol -> check_float "objective" 5. (Linprog.Model.objective_value sol)
  | Error _ -> Alcotest.fail "expected optimal"

(* ------------------------------------------------------------------ *)
(* Properties: cross-check against brute-force vertex enumeration      *)
(* ------------------------------------------------------------------ *)

(* For 2-variable LPs with <= constraints (plus x,y >= 0 and generous
   box bounds to keep things bounded), enumerate all candidate vertices
   as intersections of constraint pairs and take the best feasible one. *)
let brute_force_2d c constrs =
  let lines =
    (* each constraint as (a, b, rhs): a x + b y <= rhs *)
    List.map
      (fun ct ->
        (ct.Linprog.Simplex.coeffs.(0), ct.Linprog.Simplex.coeffs.(1),
         ct.Linprog.Simplex.rhs))
      constrs
    @ [ (-1., 0., 0.); (0., -1., 0.) ]
  in
  let feasible (x, y) =
    x >= -1e-7 && y >= -1e-7
    && List.for_all (fun (a, b, r) -> (a *. x) +. (b *. y) <= r +. 1e-6) lines
  in
  let candidates = ref [] in
  let n = List.length lines in
  let arr = Array.of_list lines in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a1, b1, r1 = arr.(i) and a2, b2, r2 = arr.(j) in
      let det = (a1 *. b2) -. (a2 *. b1) in
      if abs_float det > 1e-9 then begin
        let x = ((r1 *. b2) -. (r2 *. b1)) /. det in
        let y = ((a1 *. r2) -. (a2 *. r1)) /. det in
        if feasible (x, y) then candidates := (x, y) :: !candidates
      end
    done
  done;
  match !candidates with
  | [] -> None
  | pts ->
    Some
      (List.fold_left
         (fun acc (x, y) -> Float.max acc ((c.(0) *. x) +. (c.(1) *. y)))
         neg_infinity pts)

let lp_2d_gen =
  (* random bounded-feasible 2-D LP: positive coefficients guarantee
     boundedness, rhs > 0 guarantees feasibility (origin works) *)
  QCheck.(
    pair
      (pair (float_range 0.1 5.) (float_range 0.1 5.))
      (list_of_size Gen.(int_range 1 6)
         (triple (float_range 0.1 5.) (float_range 0.1 5.)
            (float_range 0.5 20.))))

let prop_simplex_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"simplex = vertex enumeration (2D)"
    lp_2d_gen (fun ((c1, c2), rows) ->
      let constrs =
        List.map (fun (a, b, r) -> c_ [| a; b |] le r) rows
      in
      let c = [| c1; c2 |] in
      match (solve_max c constrs, brute_force_2d c constrs) with
      | Linprog.Simplex.Optimal s, Some best ->
        abs_float (s.Linprog.Simplex.objective -. best) < 1e-5
      | Linprog.Simplex.Optimal _, None -> false
      | _, _ -> false)

let prop_solution_is_feasible =
  QCheck.Test.make ~count:300 ~name:"optimal point satisfies constraints"
    lp_2d_gen (fun ((c1, c2), rows) ->
      let constrs = List.map (fun (a, b, r) -> c_ [| a; b |] le r) rows in
      match solve_max [| c1; c2 |] constrs with
      | Linprog.Simplex.Optimal s ->
        let x = s.Linprog.Simplex.x in
        x.(0) >= -1e-7 && x.(1) >= -1e-7
        && List.for_all
             (fun (a, b, r) -> (a *. x.(0)) +. (b *. x.(1)) <= r +. 1e-6)
             rows
      | _ -> false)

let prop_duality_bound =
  (* weak duality sanity: scaling the objective scales the optimum *)
  QCheck.Test.make ~count:100 ~name:"objective scaling" lp_2d_gen
    (fun ((c1, c2), rows) ->
      let constrs = List.map (fun (a, b, r) -> c_ [| a; b |] le r) rows in
      match
        (solve_max [| c1; c2 |] constrs, solve_max [| 2. *. c1; 2. *. c2 |] constrs)
      with
      | Linprog.Simplex.Optimal s1, Linprog.Simplex.Optimal s2 ->
        abs_float ((2. *. s1.Linprog.Simplex.objective) -. s2.Linprog.Simplex.objective)
        < 1e-5
      | _ -> false)

(* Mixed Le/Ge systems: rows a x + b y (<=|>=) r with a, b > 0 and
   r > 0. Le rows keep the system bounded near the origin; Ge rows can
   push it infeasible, which is exactly the regime where [feasible] and
   [maximize] must agree on the verdict. *)
let lp_mixed_gen =
  QCheck.(
    pair
      (pair (float_range 0.1 5.) (float_range 0.1 5.))
      (list_of_size Gen.(int_range 2 6)
         (quad bool (float_range 0.1 5.) (float_range 0.1 5.)
            (float_range 0.5 20.))))

let mixed_constrs rows =
  List.map
    (fun (is_ge, a, b, r) -> c_ [| a; b |] (if is_ge then ge else le) r)
    rows

let prop_feasible_agrees_with_maximize =
  QCheck.Test.make ~count:300 ~name:"feasible agrees with maximize status"
    lp_mixed_gen (fun ((c1, c2), rows) ->
      let constrs = mixed_constrs rows in
      let f = Linprog.Simplex.feasible ~constrs ~nvars:2 in
      match solve_max [| c1; c2 |] constrs with
      | Linprog.Simplex.Optimal _ | Linprog.Simplex.Unbounded -> f
      | Linprog.Simplex.Infeasible -> not f)

let prop_duplicate_rows_invariant =
  QCheck.Test.make ~count:300 ~name:"duplicating a constraint keeps optimum"
    lp_2d_gen (fun ((c1, c2), rows) ->
      let constrs = List.map (fun (a, b, r) -> c_ [| a; b |] le r) rows in
      let doubled = constrs @ constrs in
      match
        (solve_max [| c1; c2 |] constrs, solve_max [| c1; c2 |] doubled)
      with
      | Linprog.Simplex.Optimal s1, Linprog.Simplex.Optimal s2 ->
        abs_float
          (s1.Linprog.Simplex.objective -. s2.Linprog.Simplex.objective)
        < 1e-6
      | _ -> false)

let prop_scaled_rows_invariant =
  (* scaling a row a x <= r to k a x <= k r (k > 0) describes the same
     half-plane, so the optimum must not move *)
  QCheck.Test.make ~count:300 ~name:"scaling a constraint keeps optimum"
    QCheck.(pair lp_2d_gen (float_range 0.2 10.))
    (fun (((c1, c2), rows), k) ->
      let constrs = List.map (fun (a, b, r) -> c_ [| a; b |] le r) rows in
      let scaled =
        List.map (fun (a, b, r) -> c_ [| k *. a; k *. b |] le (k *. r)) rows
      in
      match
        (solve_max [| c1; c2 |] constrs, solve_max [| c1; c2 |] scaled)
      with
      | Linprog.Simplex.Optimal s1, Linprog.Simplex.Optimal s2 ->
        abs_float
          (s1.Linprog.Simplex.objective -. s2.Linprog.Simplex.objective)
        < 1e-5
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Warm-start solver vs the cold reference                             *)
(* ------------------------------------------------------------------ *)

(* Outcome classes must match; optimal objectives must agree to 1e-9
   (relative — the two engines reach the optimum through different
   pivot sequences, so only roundoff separates them). The optimal
   *points* may legitimately differ on a degenerate face. *)
let same_outcome a b =
  match (a, b) with
  | Linprog.Simplex.Optimal s1, Linprog.Simplex.Optimal s2 ->
    let o1 = s1.Linprog.Simplex.objective
    and o2 = s2.Linprog.Simplex.objective in
    abs_float (o1 -. o2) <= 1e-9 *. (1. +. Float.max (abs_float o1) (abs_float o2))
  | Linprog.Simplex.Unbounded, Linprog.Simplex.Unbounded -> true
  | Linprog.Simplex.Infeasible, Linprog.Simplex.Infeasible -> true
  | _ -> false

(* lp_mixed_gen spans all three outcome classes: Le-only systems are
   bounded-feasible, Ge rows can make them infeasible, and Ge-only
   systems are unbounded above for a positive objective. *)
let prop_solver_matches_simplex =
  QCheck.Test.make ~count:500
    ~name:"Solver.reoptimize = Simplex.maximize (mixed Le/Ge)"
    lp_mixed_gen (fun ((c1, c2), rows) ->
      let constrs = mixed_constrs rows in
      let c = [| c1; c2 |] in
      let solver = Linprog.Solver.create ~nvars:2 ~constrs in
      same_outcome (Linprog.Solver.reoptimize solver ~c) (solve_max c constrs))

let objective_seq_gen =
  QCheck.(
    pair lp_mixed_gen
      (list_of_size Gen.(int_range 1 8)
         (pair (float_range (-5.) 5.) (float_range (-5.) 5.))))

let prop_solver_objective_sequence =
  (* one instance, many objectives: every warm-started solve in the
     sequence must match a fresh cold solve of the same LP, including
     sign flips that turn an unbounded direction on and off *)
  QCheck.Test.make ~count:200
    ~name:"warm-started objective sweep matches fresh cold solves"
    objective_seq_gen (fun (((c1, c2), rows), cs) ->
      let constrs = mixed_constrs rows in
      let solver = Linprog.Solver.create ~nvars:2 ~constrs in
      List.for_all
        (fun (a, b) ->
          let c = [| a; b |] in
          same_outcome
            (Linprog.Solver.reoptimize solver ~c)
            (solve_max c constrs))
        ((c1, c2) :: cs))

(* Two systems sharing a structural shape (row count and relations), so
   [rebuild] attempts to carry the optimal basis of the first across to
   the second. *)
let lp_paired_gen =
  QCheck.(
    pair
      (pair (float_range 0.1 5.) (float_range 0.1 5.))
      (list_of_size Gen.(int_range 2 6)
         (pair
            (quad bool (float_range 0.1 5.) (float_range 0.1 5.)
               (float_range 0.5 20.))
            (triple (float_range 0.1 5.) (float_range 0.1 5.)
               (float_range 0.5 20.)))))

let prop_solver_rebuild_matches_fresh =
  QCheck.Test.make ~count:300
    ~name:"rebuild (basis carry) matches a fresh cold solve"
    lp_paired_gen (fun ((c1, c2), rows) ->
      let rows1 = List.map fst rows in
      let rows2 =
        List.map (fun ((is_ge, _, _, _), (a, b, r)) -> (is_ge, a, b, r)) rows
      in
      let constrs2 = mixed_constrs rows2 in
      let c = [| c1; c2 |] in
      let solver =
        Linprog.Solver.create ~nvars:2 ~constrs:(mixed_constrs rows1)
      in
      (* establish an optimal basis on system 1 so the rebuild has
         something to carry (create alone only leaves a phase-1 basis) *)
      ignore (Linprog.Solver.reoptimize solver ~c);
      Linprog.Solver.rebuild solver ~constrs:constrs2;
      same_outcome (Linprog.Solver.reoptimize solver ~c)
        (solve_max c constrs2)
      && Bool.equal
           (Linprog.Solver.feasible solver)
           (Linprog.Simplex.feasible ~nvars:2 ~constrs:constrs2))

(* ------------------------------------------------------------------ *)
(* Solver stress: basis carry across a long structurally-similar sweep *)
(* ------------------------------------------------------------------ *)

(* One solver instance carried across 120 LPs that share a structural
   shape (same variable count, row count and relations, perturbed
   coefficients) — the pattern the rate-table sweeps produce. Every
   warm outcome must match a fresh cold [Simplex.maximize] to 1e-9 and
   the whole warm sweep must stay within the cold pivot budget (the
   point of carrying the basis). *)
let test_solver_stress_basis_carry () =
  let nvars = 6 and nrows = 8 and systems = 120 in
  let rng = Prob.Rng.create ~seed:2024 in
  let fresh_system () =
    List.init nrows (fun _ ->
        let coeffs =
          Array.init nvars (fun _ -> Prob.Rng.float_range rng ~lo:0.1 ~hi:2.)
        in
        c_ coeffs le (Prob.Rng.float_range rng ~lo:1. ~hi:5.))
  in
  let objective () =
    Array.init nvars (fun _ -> Prob.Rng.float_range rng ~lo:0.1 ~hi:1.)
  in
  let instances =
    List.init systems (fun _ ->
        let constrs = fresh_system () in
        (constrs, objective ()))
  in
  let pivots = Telemetry.Metrics.counter "linprog.pivots" in
  let measure f =
    let before = Telemetry.Metrics.value pivots in
    let r = f () in
    (r, Telemetry.Metrics.value pivots - before)
  in
  let cold_objs, cold_pivots =
    measure (fun () ->
        List.map
          (fun (constrs, c) ->
            (expect_optimal (solve_max c constrs)).Linprog.Simplex.objective)
          instances)
  in
  let warm_objs, warm_pivots =
    measure (fun () ->
        let solver =
          Linprog.Solver.create ~nvars ~constrs:(fst (List.hd instances))
        in
        List.map
          (fun (constrs, c) ->
            Linprog.Solver.rebuild solver ~constrs;
            (expect_optimal (Linprog.Solver.reoptimize solver ~c))
              .Linprog.Simplex.objective)
          instances)
  in
  List.iteri
    (fun i (cold, warm) ->
      let tol = 1e-9 *. Float.max 1. (Float.abs cold) in
      if Float.abs (cold -. warm) > tol then
        Alcotest.failf "system %d: cold %.12g vs warm %.12g" i cold warm)
    (List.combine cold_objs warm_objs);
  Alcotest.(check bool)
    (Printf.sprintf "warm sweep pivots (%d) within cold budget (%d)"
       warm_pivots cold_pivots)
    true
    (warm_pivots <= cold_pivots)

(* ------------------------------------------------------------------ *)
(* Flat-kernel zero-allocation API: reoptimize_into                    *)
(* ------------------------------------------------------------------ *)

(* The into-API against the cold reference, across all three outcome
   classes (objective lands in x.(nvars)). *)
let prop_reoptimize_into_matches_simplex =
  QCheck.Test.make ~count:500
    ~name:"Solver.reoptimize_into = Simplex.maximize (mixed Le/Ge)"
    lp_mixed_gen (fun ((c1, c2), rows) ->
      let constrs = mixed_constrs rows in
      let c = [| c1; c2 |] in
      let solver = Linprog.Solver.create ~nvars:2 ~constrs in
      let x = Array.make 3 0. in
      match (Linprog.Solver.reoptimize_into solver ~c ~x, solve_max c constrs)
      with
      | Linprog.Solver.Optimal, Linprog.Simplex.Optimal s ->
        let o1 = x.(2) and o2 = s.Linprog.Simplex.objective in
        abs_float (o1 -. o2)
        <= 1e-9 *. (1. +. Float.max (abs_float o1) (abs_float o2))
      | Linprog.Solver.Unbounded, Linprog.Simplex.Unbounded -> true
      | Linprog.Solver.Infeasible, Linprog.Simplex.Infeasible -> true
      | _ -> false)

(* Warm sweep: the into-API and the allocating API run the same kernel
   pivot path, so they must agree bitwise — verdicts, solution vector
   and objective — on every solve of the sequence. *)
let prop_reoptimize_into_matches_reoptimize =
  QCheck.Test.make ~count:200
    ~name:"warm reoptimize_into sweep = reoptimize sweep (bitwise)"
    objective_seq_gen (fun (((c1, c2), rows), cs) ->
      let constrs = mixed_constrs rows in
      let s_into = Linprog.Solver.create ~nvars:2 ~constrs in
      let s_ref = Linprog.Solver.create ~nvars:2 ~constrs in
      let x = Array.make 3 0. in
      List.for_all
        (fun (a, b) ->
          let c = [| a; b |] in
          match
            ( Linprog.Solver.reoptimize_into s_into ~c ~x,
              Linprog.Solver.reoptimize s_ref ~c )
          with
          | Linprog.Solver.Optimal, Linprog.Simplex.Optimal s ->
            x.(2) = s.Linprog.Simplex.objective
            && x.(0) = s.Linprog.Simplex.x.(0)
            && x.(1) = s.Linprog.Simplex.x.(1)
          | Linprog.Solver.Unbounded, Linprog.Simplex.Unbounded -> true
          | Linprog.Solver.Infeasible, Linprog.Simplex.Infeasible -> true
          | _ -> false)
        ((c1, c2) :: cs))

(* The headline property of the flat kernel: a warm [reoptimize_into]
   allocates zero words — tableau, scratch, pricing, telemetry and the
   solution hand-off all live in preallocated buffers. The only
   allowance is the boxing inside [Gc.allocated_bytes] itself (~a
   dozen bytes for the measurement pair), so the budget is under two
   words PER SWEEP, not per solve — a single heap block anywhere on
   the warm path of any of the 64 solves fails it (the historical
   nested-array engine allocated ~59 B/solve). *)
let test_reoptimize_into_zero_alloc () =
  let nvars = 5 and nrows = 7 and n = 64 in
  let rng = Prob.Rng.create ~seed:99 in
  let constrs =
    List.init nrows (fun _ ->
        let coeffs =
          Array.init nvars (fun _ -> Prob.Rng.float_range rng ~lo:0.1 ~hi:2.)
        in
        c_ coeffs le (Prob.Rng.float_range rng ~lo:1. ~hi:5.))
  in
  let objectives =
    Array.init n (fun _ ->
        Array.init nvars (fun _ -> Prob.Rng.float_range rng ~lo:0.1 ~hi:1.))
  in
  let solver = Linprog.Solver.create ~nvars ~constrs in
  let x = Array.make (nvars + 1) 0. in
  (* warm pass: settle the basis, fault in every code path *)
  for i = 0 to n - 1 do
    ignore (Linprog.Solver.reoptimize_into solver ~c:objectives.(i) ~x)
  done;
  let b0 = Gc.allocated_bytes () in
  for i = 0 to n - 1 do
    ignore (Linprog.Solver.reoptimize_into solver ~c:objectives.(i) ~x)
  done;
  let delta = Gc.allocated_bytes () -. b0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f bytes allocated across %d warm solves" delta n)
    true (delta < 32.)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simplex_matches_brute_force;
      prop_solution_is_feasible;
      prop_duality_bound;
      prop_feasible_agrees_with_maximize;
      prop_duplicate_rows_invariant;
      prop_scaled_rows_invariant;
      prop_solver_matches_simplex;
      prop_solver_objective_sequence;
      prop_solver_rebuild_matches_fresh;
      prop_reoptimize_into_matches_simplex;
      prop_reoptimize_into_matches_reoptimize;
    ]

let suites =
  [ ( "linprog.simplex",
      [ Alcotest.test_case "basic 2d" `Quick test_basic_2d;
        Alcotest.test_case "equality" `Quick test_equality_constraint;
        Alcotest.test_case "ge constraint" `Quick test_ge_constraint;
        Alcotest.test_case "unbounded" `Quick test_unbounded;
        Alcotest.test_case "infeasible" `Quick test_infeasible;
        Alcotest.test_case "negative rhs" `Quick test_negative_rhs;
        Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
        Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
        Alcotest.test_case "zero objective" `Quick test_zero_objective;
        Alcotest.test_case "feasibility probe" `Quick test_feasible;
        Alcotest.test_case "klee-minty 3" `Quick test_klee_minty_3;
        Alcotest.test_case "phase-duration LP shape" `Quick test_phase_duration_shape;
      ] );
    ( "linprog.model",
      [ Alcotest.test_case "basic" `Quick test_model_basic;
        Alcotest.test_case "duplicate name" `Quick test_model_duplicate_name;
        Alcotest.test_case "repeated terms" `Quick test_model_repeated_terms;
        Alcotest.test_case "infeasible" `Quick test_model_infeasible;
        Alcotest.test_case "solve min" `Quick test_model_solve_min;
      ] );
    ( "linprog.solver",
      [ Alcotest.test_case "120-system basis-carry stress" `Quick
          test_solver_stress_basis_carry;
        Alcotest.test_case "warm reoptimize_into allocates zero words" `Quick
          test_reoptimize_into_zero_alloc;
      ] );
    ("linprog.properties", qcheck_cases);
  ]
