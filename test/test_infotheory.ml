(* Tests for the discrete information-theory library. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Pmf                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pmf_uniform () =
  let p = Infotheory.Pmf.uniform 4 in
  check_float "prob" 0.25 (Infotheory.Pmf.prob p 2);
  check_float "entropy" 2. (Infotheory.Pmf.entropy p)

let test_pmf_deterministic () =
  let p = Infotheory.Pmf.deterministic ~size:5 3 in
  check_float "point mass" 1. (Infotheory.Pmf.prob p 3);
  check_float "entropy zero" 0. (Infotheory.Pmf.entropy p)

let test_pmf_binary () =
  let p = Infotheory.Pmf.binary 0.3 in
  check_float "p0" 0.7 (Infotheory.Pmf.prob p 0);
  check_float "p1" 0.3 (Infotheory.Pmf.prob p 1)

let test_pmf_invalid () =
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Pmf.of_array: probabilities do not sum to 1")
    (fun () -> ignore (Infotheory.Pmf.of_array [| 0.5; 0.4 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pmf.of_weights: negative weight") (fun () ->
      ignore (Infotheory.Pmf.of_weights [| -0.1; 1.1 |]))

let test_pmf_product () =
  let p = Infotheory.Pmf.binary 0.5 in
  let q = Infotheory.Pmf.binary 0.25 in
  let j = Infotheory.Pmf.product p q in
  Alcotest.(check int) "size" 4 (Infotheory.Pmf.size j);
  check_float "p(0,1)" 0.125 (Infotheory.Pmf.prob j 1);
  check_float "entropy adds" (Infotheory.Pmf.entropy p +. Infotheory.Pmf.entropy q)
    (Infotheory.Pmf.entropy j)

let test_pmf_expected () =
  let p = Infotheory.Pmf.of_array [| 0.5; 0.5 |] in
  check_float "expectation" 0.5 (Infotheory.Pmf.expected p float_of_int)

let test_tv_distance () =
  let p = Infotheory.Pmf.binary 0. and q = Infotheory.Pmf.binary 1. in
  check_float "disjoint" 1. (Infotheory.Pmf.tv_distance p q);
  check_float "self" 0. (Infotheory.Pmf.tv_distance p p)

(* ------------------------------------------------------------------ *)
(* Info                                                                *)
(* ------------------------------------------------------------------ *)

let test_binary_entropy () =
  check_float "H(0.5)" 1. (Infotheory.Info.binary_entropy 0.5);
  check_float "H(0)" 0. (Infotheory.Info.binary_entropy 0.);
  check_float "H(1)" 0. (Infotheory.Info.binary_entropy 1.);
  check_float ~eps:1e-6 "H(0.11)" 0.4999157 (Infotheory.Info.binary_entropy 0.11)

let test_kl () =
  let p = Infotheory.Pmf.binary 0.5 and q = Infotheory.Pmf.binary 0.25 in
  (* D(p||q) = 0.5 log(0.5/0.75) + 0.5 log(0.5/0.25) *)
  let expected = (0.5 *. Numerics.Float_utils.log2 (0.5 /. 0.75))
                 +. (0.5 *. Numerics.Float_utils.log2 (0.5 /. 0.25)) in
  check_float "kl" expected (Infotheory.Info.kl_divergence p q);
  check_float "kl self" 0. (Infotheory.Info.kl_divergence p p);
  Alcotest.(check bool) "kl infinite" true
    (Float.is_integer (Infotheory.Info.kl_divergence (Infotheory.Pmf.binary 1.)
                         (Infotheory.Pmf.binary 0.)) = false
     || Infotheory.Info.kl_divergence (Infotheory.Pmf.binary 1.)
          (Infotheory.Pmf.binary 0.) = infinity)

let test_mutual_information_independent () =
  (* independent joint: I = 0 *)
  let j = [| [| 0.25; 0.25 |]; [| 0.25; 0.25 |] |] in
  check_float "independent" 0. (Infotheory.Info.mutual_information j)

let test_mutual_information_perfect () =
  (* Y = X uniform: I = 1 bit *)
  let j = [| [| 0.5; 0. |]; [| 0.; 0.5 |] |] in
  check_float "perfect" 1. (Infotheory.Info.mutual_information j)

let test_marginals () =
  let j = [| [| 0.1; 0.2 |]; [| 0.3; 0.4 |] |] in
  Infotheory.Info.validate_joint j;
  let mx = Infotheory.Info.marginal_x j in
  let my = Infotheory.Info.marginal_y j in
  check_float ~eps:1e-12 "mx0" 0.3 mx.(0);
  check_float ~eps:1e-12 "my0" 0.4 my.(0);
  check_float ~eps:1e-12 "my1" 0.6 my.(1)

(* ------------------------------------------------------------------ *)
(* Dmc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_bsc_mi () =
  (* uniform input on BSC(p): I = 1 - H(p) *)
  let ch = Infotheory.Channels.bsc 0.11 in
  let i = Infotheory.Dmc.mutual_information ch (Infotheory.Pmf.uniform 2) in
  check_float ~eps:1e-9 "1 - H(0.11)"
    (1. -. Infotheory.Info.binary_entropy 0.11) i

let test_bec_capacity_formula () =
  (* uniform input on BEC(e): I = 1 - e *)
  let ch = Infotheory.Channels.bec 0.4 in
  let i = Infotheory.Dmc.mutual_information ch (Infotheory.Pmf.uniform 2) in
  check_float ~eps:1e-9 "1 - e" 0.6 i

let test_noiseless () =
  let ch = Infotheory.Channels.noiseless 4 in
  let i = Infotheory.Dmc.mutual_information ch (Infotheory.Pmf.uniform 4) in
  check_float "2 bits" 2. i

let test_cascade_bsc () =
  (* two BSC(p) in cascade = BSC(2p(1-p)) *)
  let p = 0.1 in
  let ch = Infotheory.Dmc.cascade (Infotheory.Channels.bsc p) (Infotheory.Channels.bsc p) in
  let expected = 2. *. p *. (1. -. p) in
  check_float ~eps:1e-12 "crossover" expected (Infotheory.Dmc.transition ch 0 1)

let test_output_dist () =
  let ch = Infotheory.Channels.bsc 0.2 in
  let out = Infotheory.Dmc.output_dist ch (Infotheory.Pmf.binary 1.) in
  check_float "P(y=0)" 0.2 (Infotheory.Pmf.prob out 0);
  check_float "P(y=1)" 0.8 (Infotheory.Pmf.prob out 1)

let test_sample_with () =
  let ch = Infotheory.Channels.bsc 0.25 in
  Alcotest.(check int) "low u keeps symbol" 0
    (Infotheory.Dmc.sample_with ch ~u:0.5 0);
  Alcotest.(check int) "high u flips" 1
    (Infotheory.Dmc.sample_with ch ~u:0.9 0)

let test_dmc_invalid () =
  Alcotest.check_raises "bad row"
    (Invalid_argument "Dmc.create: row does not sum to 1") (fun () ->
      ignore (Infotheory.Dmc.create [| [| 0.5; 0.4 |] |]))

(* ------------------------------------------------------------------ *)
(* Blahut-Arimoto                                                      *)
(* ------------------------------------------------------------------ *)

let test_blahut_bsc () =
  let r = Infotheory.Blahut.capacity (Infotheory.Channels.bsc 0.11) in
  check_float ~eps:1e-7 "C = 1 - H(p)"
    (1. -. Infotheory.Info.binary_entropy 0.11)
    r.Infotheory.Blahut.capacity;
  check_float ~eps:1e-4 "uniform input" 0.5
    (Infotheory.Pmf.prob r.Infotheory.Blahut.input 0)

let test_blahut_bec () =
  let r = Infotheory.Blahut.capacity (Infotheory.Channels.bec 0.3) in
  check_float ~eps:1e-7 "C = 1 - e" 0.7 r.Infotheory.Blahut.capacity

let test_blahut_z_channel () =
  (* Z-channel with p = 0.5: known capacity log2(5/4) ~ 0.3219 with
     optimal input P(X=1) = 2/5 *)
  let r = Infotheory.Blahut.capacity (Infotheory.Channels.z_channel 0.5) in
  check_float ~eps:1e-6 "C(Z, 0.5)" (Numerics.Float_utils.log2 1.25)
    r.Infotheory.Blahut.capacity;
  check_float ~eps:1e-4 "optimal input" 0.4
    (Infotheory.Pmf.prob r.Infotheory.Blahut.input 1)

let test_blahut_noiseless () =
  let r = Infotheory.Blahut.capacity (Infotheory.Channels.noiseless 8) in
  check_float ~eps:1e-7 "3 bits" 3. r.Infotheory.Blahut.capacity

let test_biawgn_capacity_sandwich () =
  (* quantised BIAWGN capacity must be below the Shannon AWGN capacity
     and above the hard-decision BSC capacity *)
  let snr = 1.0 in
  let soft = Infotheory.Blahut.capacity
      (Infotheory.Channels.binary_input_awgn ~snr ~levels:64) in
  let hard = Infotheory.Blahut.capacity (Infotheory.Channels.bsc_of_snr ~snr) in
  let shannon = 0.5 *. Numerics.Float_utils.log2 (1. +. snr) in
  Alcotest.(check bool) "hard < soft" true
    (hard.Infotheory.Blahut.capacity < soft.Infotheory.Blahut.capacity);
  Alcotest.(check bool) "soft < shannon" true
    (soft.Infotheory.Blahut.capacity < shannon);
  Alcotest.(check bool) "soft < 1 bit" true
    (soft.Infotheory.Blahut.capacity < 1.)

(* ------------------------------------------------------------------ *)
(* Mac                                                                 *)
(* ------------------------------------------------------------------ *)

let binary_adder_mac () =
  (* Y = X1 + X2 over {0,1,2}, noiseless: the classic binary adder MAC *)
  Infotheory.Mac.create
    (Array.init 2 (fun x1 ->
         Array.init 2 (fun x2 ->
             Array.init 3 (fun y -> if y = x1 + x2 then 1. else 0.))))

let test_adder_mac_terms () =
  let mac = binary_adder_mac () in
  let u = Infotheory.Pmf.uniform 2 in
  let t = Infotheory.Mac.rate_terms mac u u in
  (* I(X1;Y|X2) = H(X1) = 1; I(X1,X2;Y) = H(Y) = 1.5 *)
  check_float "I1|2" 1. t.Infotheory.Mac.i1_given_2;
  check_float "I2|1" 1. t.Infotheory.Mac.i2_given_1;
  check_float "I12" 1.5 t.Infotheory.Mac.i_joint

let test_adder_mac_region () =
  let mac = binary_adder_mac () in
  let u = Infotheory.Pmf.uniform 2 in
  let t = Infotheory.Mac.rate_terms mac u u in
  Alcotest.(check bool) "corner in" true (Infotheory.Mac.in_region t 1. 0.5);
  Alcotest.(check bool) "symmetric in" true
    (Infotheory.Mac.in_region t 0.75 0.75);
  Alcotest.(check bool) "sum too big" false
    (Infotheory.Mac.in_region t 1. 0.6)

let test_xor_mac_degenerate () =
  (* Y = X1 xor X2 noiseless: each user alone cannot be resolved without
     the other, but conditioned on X2 user 1 is perfect *)
  let mac =
    Infotheory.Mac.of_dmc_pair ~combine:(fun a b -> a lxor b)
      (Infotheory.Channels.noiseless 2)
  in
  let u = Infotheory.Pmf.uniform 2 in
  let t = Infotheory.Mac.rate_terms mac u u in
  check_float "I1|2 perfect" 1. t.Infotheory.Mac.i1_given_2;
  check_float "sum limited to 1" 1. t.Infotheory.Mac.i_joint

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let pmf_gen n =
  QCheck.(
    map
      (fun ws ->
        let a = Array.of_list ws in
        Infotheory.Pmf.of_weights (Array.map (fun w -> w +. 1e-6) a))
      (list_of_size (QCheck.Gen.return n) (float_range 0.001 10.)))

let prop_entropy_bounds =
  QCheck.Test.make ~count:200 ~name:"0 <= H(p) <= log2 n" (pmf_gen 5)
    (fun p ->
      let h = Infotheory.Pmf.entropy p in
      h >= -1e-12 && h <= Numerics.Float_utils.log2 5. +. 1e-12)

let prop_kl_nonneg =
  QCheck.Test.make ~count:200 ~name:"KL divergence >= 0"
    QCheck.(pair (pmf_gen 4) (pmf_gen 4))
    (fun (p, q) -> Infotheory.Info.kl_divergence p q >= -1e-9)

let prop_mi_nonneg_bsc =
  QCheck.Test.make ~count:200 ~name:"I(X;Y) >= 0 on random BSC/input"
    QCheck.(pair (float_range 0.01 0.99) (float_range 0.01 0.99))
    (fun (p, q) ->
      let ch = Infotheory.Channels.bsc p in
      Infotheory.Dmc.mutual_information ch (Infotheory.Pmf.binary q) >= -1e-9)

let prop_blahut_at_least_uniform =
  QCheck.Test.make ~count:50 ~name:"capacity >= uniform-input rate"
    QCheck.(float_range 0.01 0.49)
    (fun p ->
      let ch = Infotheory.Channels.bsc p in
      let c = (Infotheory.Blahut.capacity ch).Infotheory.Blahut.capacity in
      let u = Infotheory.Dmc.mutual_information ch (Infotheory.Pmf.uniform 2) in
      c >= u -. 1e-7)

let prop_data_processing =
  QCheck.Test.make ~count:100 ~name:"cascade cannot increase information"
    QCheck.(triple (float_range 0.01 0.49) (float_range 0.01 0.49)
              (float_range 0.05 0.95))
    (fun (p1, p2, q) ->
      let ch1 = Infotheory.Channels.bsc p1 in
      let ch12 = Infotheory.Dmc.cascade ch1 (Infotheory.Channels.bsc p2) in
      let input = Infotheory.Pmf.binary q in
      Infotheory.Dmc.mutual_information ch12 input
      <= Infotheory.Dmc.mutual_information ch1 input +. 1e-9)

let prop_mac_sum_dominates =
  QCheck.Test.make ~count:100 ~name:"MAC: I12 <= I1|2 + I2|1 and both <= I12 hold"
    QCheck.(pair (float_range 0.05 0.95) (float_range 0.05 0.95))
    (fun (q1, q2) ->
      let mac = binary_adder_mac () in
      let t =
        Infotheory.Mac.rate_terms mac (Infotheory.Pmf.binary q1)
          (Infotheory.Pmf.binary q2)
      in
      (* standard MAC inequalities for independent inputs *)
      t.Infotheory.Mac.i1_given_2 <= t.Infotheory.Mac.i_joint +. 1e-9
      && t.Infotheory.Mac.i2_given_1 <= t.Infotheory.Mac.i_joint +. 1e-9
      && t.Infotheory.Mac.i_joint
         <= t.Infotheory.Mac.i1_given_2 +. t.Infotheory.Mac.i2_given_1 +. 1e-9)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_entropy_bounds;
      prop_kl_nonneg;
      prop_mi_nonneg_bsc;
      prop_blahut_at_least_uniform;
      prop_data_processing;
      prop_mac_sum_dominates;
    ]

let suites =
  [ ( "infotheory.pmf",
      [ Alcotest.test_case "uniform" `Quick test_pmf_uniform;
        Alcotest.test_case "deterministic" `Quick test_pmf_deterministic;
        Alcotest.test_case "binary" `Quick test_pmf_binary;
        Alcotest.test_case "invalid" `Quick test_pmf_invalid;
        Alcotest.test_case "product" `Quick test_pmf_product;
        Alcotest.test_case "expected" `Quick test_pmf_expected;
        Alcotest.test_case "tv distance" `Quick test_tv_distance;
      ] );
    ( "infotheory.info",
      [ Alcotest.test_case "binary entropy" `Quick test_binary_entropy;
        Alcotest.test_case "kl divergence" `Quick test_kl;
        Alcotest.test_case "MI independent" `Quick test_mutual_information_independent;
        Alcotest.test_case "MI perfect" `Quick test_mutual_information_perfect;
        Alcotest.test_case "marginals" `Quick test_marginals;
      ] );
    ( "infotheory.dmc",
      [ Alcotest.test_case "bsc MI" `Quick test_bsc_mi;
        Alcotest.test_case "bec MI" `Quick test_bec_capacity_formula;
        Alcotest.test_case "noiseless" `Quick test_noiseless;
        Alcotest.test_case "cascade bsc" `Quick test_cascade_bsc;
        Alcotest.test_case "output dist" `Quick test_output_dist;
        Alcotest.test_case "sample_with" `Quick test_sample_with;
        Alcotest.test_case "invalid" `Quick test_dmc_invalid;
      ] );
    ( "infotheory.blahut",
      [ Alcotest.test_case "bsc capacity" `Quick test_blahut_bsc;
        Alcotest.test_case "bec capacity" `Quick test_blahut_bec;
        Alcotest.test_case "z-channel capacity" `Quick test_blahut_z_channel;
        Alcotest.test_case "noiseless capacity" `Quick test_blahut_noiseless;
        Alcotest.test_case "biawgn sandwich" `Quick test_biawgn_capacity_sandwich;
      ] );
    ( "infotheory.mac",
      [ Alcotest.test_case "adder terms" `Quick test_adder_mac_terms;
        Alcotest.test_case "adder region" `Quick test_adder_mac_region;
        Alcotest.test_case "xor mac" `Quick test_xor_mac_degenerate;
      ] );
    ("infotheory.properties", qcheck_cases);
  ]
