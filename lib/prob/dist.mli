(** Sampling from the distributions used by the channel model. *)

val normal : Rng.t -> mean:float -> std:float -> float
(** Gaussian sample via the Box–Muller transform. *)

val standard_normal : Rng.t -> float

val complex_normal : Rng.t -> variance:float -> float * float
(** Circularly-symmetric complex Gaussian: real and imaginary parts are
    independent N(0, variance/2), so the squared magnitude has mean
    [variance]. This models a quasi-static Rayleigh-fading channel gain. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1/rate]). *)

val rayleigh : Rng.t -> sigma:float -> float
(** Rayleigh with scale [sigma]; the magnitude of a complex normal with
    per-component std [sigma]. *)

val exponential_power_gain : Rng.t -> mean:float -> float
(** Squared magnitude of a Rayleigh-fading gain with mean power [mean]
    — i.e. an exponential with mean [mean]. This is the distribution of
    [G_ij] in the paper's quasi-static fading model. *)

val uniform_int : Rng.t -> lo:int -> hi:int -> int
(** Uniform integer in [[lo, hi]] inclusive. *)
