(** Deterministic pseudo-random number generation (splitmix64).

    Experiments must be reproducible run-to-run, so all randomness in the
    code base flows through an explicit generator state seeded by the
    caller — never through the global [Random] module. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t] by two
    draws. The child gets its own state {e and} its own odd additive
    constant (SplitMix64's [mixGamma] applied to a second parent draw),
    so a child stream whose state happens to coincide with another
    stream's still diverges on the next step — the property per-shard
    Monte-Carlo substreams rely on. Useful for giving each simulated
    node or campaign replication its own stream. *)

val copy : t -> t

val next_int64 : t -> int64
(** Raw 64 uniformly random bits. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform float in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); requires [n > 0]. *)

val bool : t -> bool
val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is true with probability [p]. *)
