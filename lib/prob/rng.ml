(* SplitMix64 (Steele, Lea, Flood, OOPSLA 2014): full 2^64 period per
   stream, passes BigCrush, and supports stream splitting. Each
   generator carries its own additive constant ("gamma"); [create]
   always uses the golden-ratio gamma so seeded sequences are stable
   across versions, while [split] derives a fresh odd gamma for the
   child so two streams whose states ever coincide still diverge. *)

type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed; gamma = golden_gamma }

let copy t = { state = t.state; gamma = t.gamma }

(* splitmix64 output mix *)
let next_int64 t =
  t.state <- Int64.add t.state t.gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount64 x =
  let c = ref 0 in
  let x = ref x in
  while !x <> 0L do
    x := Int64.logand !x (Int64.sub !x 1L);
    incr c
  done;
  !c

(* The published mixGamma: a MurmurHash3-finalizer variant forced odd,
   with a guard that the constant has at least 24 bit transitions so the
   Weyl sequence it drives is well mixed. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor (Int64.logxor z (Int64.shift_right_logical z 33)) 1L in
  if popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) < 24 then
    Int64.logxor z 0xAAAAAAAAAAAAAAAAL
  else z

let split t =
  let seed_bits = next_int64 t in
  let gamma_bits = next_int64 t in
  { state = seed_bits; gamma = mix_gamma gamma_bits }

let float t =
  (* top 53 bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub bits v > Int64.sub Int64.max_int (Int64.sub n64 1L) then
      draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p = float t < p
