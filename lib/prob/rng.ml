type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step (Steele, Lea, Flood 2014): full 2^64 period, passes
   BigCrush, and trivially supports stream splitting. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed_bits = next_int64 t in
  { state = seed_bits }

let float t =
  (* top 53 bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection sampling to avoid modulo bias *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let bits = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub bits v > Int64.sub Int64.max_int (Int64.sub n64 1L) then
      draw ()
    else Int64.to_int v
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t ~p = float t < p
