let two_pi = 2. *. Float.pi

let standard_normal rng =
  (* Box-Muller; u1 must be strictly positive for the log *)
  let rec positive_uniform () =
    let u = Rng.float rng in
    if u > 0. then u else positive_uniform ()
  in
  let u1 = positive_uniform () in
  let u2 = Rng.float rng in
  sqrt (-2. *. log u1) *. cos (two_pi *. u2)

let normal rng ~mean ~std = mean +. (std *. standard_normal rng)

let complex_normal rng ~variance =
  let std = sqrt (variance /. 2.) in
  (normal rng ~mean:0. ~std, normal rng ~mean:0. ~std)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  let rec positive_uniform () =
    let u = Rng.float rng in
    if u > 0. then u else positive_uniform ()
  in
  -.log (positive_uniform ()) /. rate

let rayleigh rng ~sigma =
  if sigma <= 0. then invalid_arg "Dist.rayleigh: sigma must be positive";
  let re, im = complex_normal rng ~variance:(2. *. sigma *. sigma) in
  sqrt ((re *. re) +. (im *. im))

let exponential_power_gain rng ~mean =
  if mean <= 0. then
    invalid_arg "Dist.exponential_power_gain: mean must be positive";
  exponential rng ~rate:(1. /. mean)

let uniform_int rng ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_int: hi < lo";
  lo + Rng.int rng (hi - lo + 1)
