(** Two-user discrete memoryless multiple-access channels.

    The relay's receive phase in the MABC and HBC protocols is a MAC from
    terminals [a] and [b]; its achievable rate region for independent
    inputs is characterised by the three standard mutual-information
    terms computed here. *)

type t

val create : float array array array -> t
(** [create w] where [w.(x1).(x2).(y) = P(Y=y | X1=x1, X2=x2)]. Every row
    must be a pmf; raises [Invalid_argument] otherwise. *)

val of_dmc_pair : combine:(int -> int -> int) -> Dmc.t -> t
(** [of_dmc_pair ~combine ch] builds the deterministic-combining MAC in
    which the pair [(x1, x2)] is mapped to the single input
    [combine x1 x2] of the point-to-point channel [ch]: a convenient
    model of two binary transmitters whose symbols interact (e.g. XOR for
    a noiseless-superposition caricature). The input alphabets are both
    assumed binary. *)

val num_inputs1 : t -> int
val num_inputs2 : t -> int
val num_outputs : t -> int

type terms = {
  i1_given_2 : float;  (** I(X1; Y | X2) *)
  i2_given_1 : float;  (** I(X2; Y | X1) *)
  i_joint : float;     (** I(X1, X2; Y) *)
}

val rate_terms : t -> Pmf.t -> Pmf.t -> terms
(** [rate_terms mac p1 p2] evaluates the MAC pentagon corner terms for
    independent inputs [X1 ~ p1], [X2 ~ p2]. *)

val in_region : terms -> float -> float -> bool
(** [in_region terms r1 r2] tests membership of the rate pair in the MAC
    pentagon [r1 <= I1, r2 <= I2, r1+r2 <= I12] (closed, with a 1e-12
    tolerance). *)
