(** Standard channel constructors. *)

val bsc : float -> Dmc.t
(** Binary symmetric channel with crossover probability [p]. *)

val bec : float -> Dmc.t
(** Binary erasure channel with erasure probability [e]; output symbol 2
    is the erasure. *)

val z_channel : float -> Dmc.t
(** Z-channel: 0 is received perfectly, 1 flips to 0 with probability [p]. *)

val noiseless : int -> Dmc.t
(** Identity channel over an alphabet of the given size. *)

val binary_input_awgn : snr:float -> levels:int -> Dmc.t
(** BPSK (amplitudes [+-sqrt snr]) in real unit-variance Gaussian noise,
    output quantised to [levels] uniform bins; tail bins absorb the rest
    of the line. [snr] is the per-real-dimension SNR [a^2 / sigma^2].
    Capacity converges to the true BIAWGN capacity (which is upper
    bounded by the real-AWGN capacity [0.5 log2 (1 + snr)]) as [levels]
    grows. *)

val bsc_of_snr : snr:float -> Dmc.t
(** Hard-decision version of {!binary_input_awgn}: a BSC with crossover
    [Q(sqrt snr)] (same normalisation, amplitude [sqrt snr] in unit
    noise). Always worse than the soft-output channel. *)
