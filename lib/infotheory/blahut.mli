(** Blahut–Arimoto computation of discrete channel capacity. *)

type result = {
  capacity : float;        (** channel capacity in bits per use *)
  input : Pmf.t;           (** capacity-achieving input distribution *)
  iterations : int;        (** iterations until convergence *)
}

val capacity : ?tol:float -> ?max_iter:int -> Dmc.t -> result
(** [capacity ch] runs the Blahut–Arimoto alternating maximisation until
    the capacity bracket (difference between the upper and lower capacity
    estimates) falls below [tol] (default 1e-9 bits). *)
