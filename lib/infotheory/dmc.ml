type t = { w : float array array; nx : int; ny : int }

let create w =
  let nx = Array.length w in
  if nx = 0 then invalid_arg "Dmc.create: no inputs";
  let ny = Array.length w.(0) in
  if ny = 0 then invalid_arg "Dmc.create: no outputs";
  Array.iter
    (fun row ->
      if Array.length row <> ny then invalid_arg "Dmc.create: ragged matrix";
      Array.iter
        (fun p ->
          if p < 0. || Float.is_nan p then
            invalid_arg "Dmc.create: negative transition probability")
        row;
      if
        not
          (Numerics.Float_utils.approx_equal ~eps:1e-9
             (Numerics.Float_utils.sum row) 1.)
      then invalid_arg "Dmc.create: row does not sum to 1")
    w;
  { w = Array.map Array.copy w; nx; ny }

let num_inputs t = t.nx
let num_outputs t = t.ny
let transition t x y = t.w.(x).(y)
let matrix t = Array.map Array.copy t.w

let joint t px =
  if Pmf.size px <> t.nx then invalid_arg "Dmc.joint: input size mismatch";
  Array.init t.nx (fun x ->
      let p = Pmf.prob px x in
      Array.map (fun w -> p *. w) t.w.(x))

let output_dist t px = Pmf.of_weights (Info.marginal_y (joint t px))

let mutual_information t px = Info.mutual_information (joint t px)

let cascade t1 t2 =
  if t1.ny <> t2.nx then invalid_arg "Dmc.cascade: alphabet mismatch";
  create
    (Array.init t1.nx (fun x ->
         Array.init t2.ny (fun z ->
             let acc = ref 0. in
             for y = 0 to t1.ny - 1 do
               acc := !acc +. (t1.w.(x).(y) *. t2.w.(y).(z))
             done;
             !acc)))

let sample_with t ~u x =
  if x < 0 || x >= t.nx then invalid_arg "Dmc.sample_with: bad input symbol";
  let row = t.w.(x) in
  let rec scan y acc =
    if y = t.ny - 1 then y
    else
      let acc = acc +. row.(y) in
      if u < acc then y else scan (y + 1) acc
  in
  scan 0 0.
