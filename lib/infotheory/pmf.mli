(** Finite probability mass functions. All information quantities in this
    library are measured in bits. *)

type t
(** An immutable pmf over [{0, ..., n-1}]. *)

val of_array : float array -> t
(** Validates: entries non-negative and summing to 1 within 1e-9, then
    renormalises exactly. Raises [Invalid_argument] otherwise. *)

val of_weights : float array -> t
(** Like {!of_array} but accepts any non-negative weights with positive
    sum and normalises them. *)

val uniform : int -> t
val deterministic : size:int -> int -> t
(** Point mass at the given symbol. *)

val binary : float -> t
(** [binary p] is the Bernoulli pmf [(1-p, p)]; requires [0 <= p <= 1]. *)

val size : t -> int
val prob : t -> int -> float
val to_array : t -> float array

val entropy : t -> float
(** Shannon entropy in bits; [0 log 0 = 0]. *)

val expected : t -> (int -> float) -> float

val product : t -> t -> t
(** [product p q] is the independent joint pmf over the product alphabet,
    indexed row-major ([i * size q + j]). *)

val tv_distance : t -> t -> float
(** Total-variation distance between pmfs of equal size. *)

val pp : Format.formatter -> t -> unit
