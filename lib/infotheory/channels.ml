let bsc p =
  if p < 0. || p > 1. then invalid_arg "Channels.bsc: p outside [0,1]";
  Dmc.create [| [| 1. -. p; p |]; [| p; 1. -. p |] |]

let bec e =
  if e < 0. || e > 1. then invalid_arg "Channels.bec: e outside [0,1]";
  Dmc.create [| [| 1. -. e; 0.; e |]; [| 0.; 1. -. e; e |] |]

let z_channel p =
  if p < 0. || p > 1. then invalid_arg "Channels.z_channel: p outside [0,1]";
  Dmc.create [| [| 1.; 0. |]; [| p; 1. -. p |] |]

let noiseless n =
  Dmc.create
    (Array.init n (fun x -> Array.init n (fun y -> if x = y then 1. else 0.)))

let binary_input_awgn ~snr ~levels =
  if snr <= 0. then invalid_arg "Channels.binary_input_awgn: snr <= 0";
  if levels < 2 then invalid_arg "Channels.binary_input_awgn: levels < 2";
  (* BPSK amplitudes +-sqrt(snr) in unit-variance noise *)
  let a = sqrt snr in
  let lo = -.a -. 5. and hi = a +. 5. in
  let width = (hi -. lo) /. float_of_int levels in
  let cell_prob mean k =
    (* P(Y in bin k | X with mean), bins clipped to capture the tails *)
    let left = lo +. (float_of_int k *. width) in
    let right = left +. width in
    let cdf x = Numerics.Special.gaussian_cdf (x -. mean) in
    let pl = if k = 0 then 0. else cdf left in
    let pr = if k = levels - 1 then 1. else cdf right in
    Float.max 0. (pr -. pl)
  in
  Dmc.create
    [| Array.init levels (cell_prob a); Array.init levels (cell_prob (-.a)) |]

let bsc_of_snr ~snr =
  if snr <= 0. then invalid_arg "Channels.bsc_of_snr: snr <= 0";
  bsc (Numerics.Special.q_function (sqrt snr))
