type t = { w : float array array array; n1 : int; n2 : int; ny : int }

let create w =
  let n1 = Array.length w in
  if n1 = 0 then invalid_arg "Mac.create: no inputs for user 1";
  let n2 = Array.length w.(0) in
  if n2 = 0 then invalid_arg "Mac.create: no inputs for user 2";
  let ny = Array.length w.(0).(0) in
  Array.iter
    (fun plane ->
      if Array.length plane <> n2 then invalid_arg "Mac.create: ragged";
      Array.iter
        (fun row ->
          if Array.length row <> ny then invalid_arg "Mac.create: ragged";
          if
            not
              (Numerics.Float_utils.approx_equal ~eps:1e-9
                 (Numerics.Float_utils.sum row) 1.)
          then invalid_arg "Mac.create: row does not sum to 1";
          Array.iter
            (fun p ->
              if p < 0. then invalid_arg "Mac.create: negative probability")
            row)
        plane)
    w;
  { w = Array.map (Array.map Array.copy) w; n1; n2; ny }

let of_dmc_pair ~combine ch =
  let ny = Dmc.num_outputs ch in
  create
    (Array.init 2 (fun x1 ->
         Array.init 2 (fun x2 ->
             let x = combine x1 x2 in
             Array.init ny (fun y -> Dmc.transition ch x y))))

let num_inputs1 t = t.n1
let num_inputs2 t = t.n2
let num_outputs t = t.ny

type terms = { i1_given_2 : float; i2_given_1 : float; i_joint : float }

let rate_terms t p1 p2 =
  if Pmf.size p1 <> t.n1 || Pmf.size p2 <> t.n2 then
    invalid_arg "Mac.rate_terms: input size mismatch";
  (* I(X1,X2; Y): treat the input pair as one variable *)
  let joint_pair =
    Array.init (t.n1 * t.n2) (fun k ->
        let x1 = k / t.n2 and x2 = k mod t.n2 in
        let p = Pmf.prob p1 x1 *. Pmf.prob p2 x2 in
        Array.map (fun w -> p *. w) t.w.(x1).(x2))
  in
  let i_joint = Info.mutual_information joint_pair in
  (* I(X1; Y | X2) = sum_x2 p(x2) I(X1; Y | X2=x2) *)
  let cond_mi ~fix_second =
    let n_fixed = if fix_second then t.n2 else t.n1 in
    let p_fixed = if fix_second then p2 else p1 in
    let acc = ref 0. in
    for xf = 0 to n_fixed - 1 do
      let pf = Pmf.prob p_fixed xf in
      if pf > 0. then begin
        let n_free = if fix_second then t.n1 else t.n2 in
        let p_free = if fix_second then p1 else p2 in
        let j =
          Array.init n_free (fun xv ->
              let w = if fix_second then t.w.(xv).(xf) else t.w.(xf).(xv) in
              Array.map (fun p -> Pmf.prob p_free xv *. p) w)
        in
        acc := !acc +. (pf *. Info.mutual_information j)
      end
    done;
    !acc
  in
  { i1_given_2 = cond_mi ~fix_second:true;
    i2_given_1 = cond_mi ~fix_second:false;
    i_joint;
  }

let in_region terms r1 r2 =
  let eps = 1e-12 in
  r1 <= terms.i1_given_2 +. eps
  && r2 <= terms.i2_given_1 +. eps
  && r1 +. r2 <= terms.i_joint +. eps
