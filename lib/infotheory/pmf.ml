type t = float array

let of_weights w =
  if Array.length w = 0 then invalid_arg "Pmf.of_weights: empty";
  Array.iter
    (fun p -> if p < 0. || Float.is_nan p then invalid_arg "Pmf.of_weights: negative weight")
    w;
  let total = Numerics.Float_utils.sum w in
  if total <= 0. then invalid_arg "Pmf.of_weights: zero total";
  Array.map (fun p -> p /. total) w

let of_array a =
  let total = Numerics.Float_utils.sum a in
  if not (Numerics.Float_utils.approx_equal ~eps:1e-9 total 1.) then
    invalid_arg "Pmf.of_array: probabilities do not sum to 1";
  of_weights a

let uniform n =
  if n <= 0 then invalid_arg "Pmf.uniform: empty alphabet";
  Array.make n (1. /. float_of_int n)

let deterministic ~size i =
  if i < 0 || i >= size then invalid_arg "Pmf.deterministic: out of range";
  Array.init size (fun j -> if j = i then 1. else 0.)

let binary p =
  if p < 0. || p > 1. then invalid_arg "Pmf.binary: p outside [0,1]";
  [| 1. -. p; p |]

let size = Array.length
let prob t i = t.(i)
let to_array = Array.copy

let entropy t =
  let acc = ref 0. in
  Array.iter
    (fun p -> if p > 0. then acc := !acc -. (p *. Numerics.Float_utils.log2 p))
    t;
  !acc

let expected t f =
  let acc = ref 0. in
  Array.iteri (fun i p -> acc := !acc +. (p *. f i)) t;
  !acc

let product p q =
  let nq = Array.length q in
  Array.init (Array.length p * nq) (fun k -> p.(k / nq) *. q.(k mod nq))

let tv_distance p q =
  if Array.length p <> Array.length q then
    invalid_arg "Pmf.tv_distance: size mismatch";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. abs_float (pi -. q.(i))) p;
  !acc /. 2.

let pp fmt t =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.4f" p)
    t;
  Format.fprintf fmt "]"
