type result = { capacity : float; input : Pmf.t; iterations : int }

let log2 = Numerics.Float_utils.log2

(* Classic Blahut-Arimoto with the Arimoto capacity bracket: at each
   iteration, for current input p compute
     d(x) = D( W(.|x) || q ) where q is the output distribution;
   then C_low = sum p(x) d(x) <= C <= max_x d(x), and the update is
   p(x) <- p(x) 2^{d(x)} / Z. *)
let capacity ?(tol = 1e-9) ?(max_iter = 10_000) ch =
  let nx = Dmc.num_inputs ch and ny = Dmc.num_outputs ch in
  let w = Dmc.matrix ch in
  let p = ref (Pmf.to_array (Pmf.uniform nx)) in
  let d = Array.make nx 0. in
  let rec iterate it =
    let q = Array.make ny 0. in
    Array.iteri
      (fun x px ->
        if px > 0. then
          Array.iteri (fun y wxy -> q.(y) <- q.(y) +. (px *. wxy)) w.(x))
      !p;
    for x = 0 to nx - 1 do
      let acc = ref 0. in
      for y = 0 to ny - 1 do
        let wxy = w.(x).(y) in
        if wxy > 0. then acc := !acc +. (wxy *. log2 (wxy /. q.(y)))
      done;
      d.(x) <- !acc
    done;
    let c_low = ref 0. and c_high = ref neg_infinity in
    Array.iteri
      (fun x px ->
        c_low := !c_low +. (px *. d.(x));
        if d.(x) > !c_high then c_high := d.(x))
      !p;
    if !c_high -. !c_low <= tol || it >= max_iter then
      { capacity = !c_low; input = Pmf.of_weights !p; iterations = it }
    else begin
      let next = Array.mapi (fun x px -> px *. (2. ** d.(x))) !p in
      let z = Numerics.Float_utils.sum next in
      p := Array.map (fun v -> v /. z) next;
      iterate (it + 1)
    end
  in
  iterate 1
