(** Entropies and mutual information of finite joint distributions.
    Joint distributions are given as matrices [j.(x).(y) = P(X=x, Y=y)]. *)

val binary_entropy : float -> float
(** [binary_entropy p] is [H(p) = -p log p - (1-p) log (1-p)] in bits. *)

val entropy : float array -> float
(** Entropy of an unnormalised-checked pmf given as a raw array (the
    caller guarantees it sums to 1; zero entries are fine). *)

val kl_divergence : Pmf.t -> Pmf.t -> float
(** [kl_divergence p q] in bits; [infinity] when the support of [p] is not
    contained in the support of [q]. *)

val joint_entropy : float array array -> float

val marginal_x : float array array -> float array
val marginal_y : float array array -> float array

val mutual_information : float array array -> float
(** [mutual_information j] is [I(X;Y)] of the joint pmf [j]. *)

val conditional_entropy_y_given_x : float array array -> float
(** [H(Y|X)]. *)

val validate_joint : float array array -> unit
(** Checks non-negativity and total mass 1 within 1e-6; raises
    [Invalid_argument] otherwise. *)
