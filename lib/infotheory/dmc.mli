(** Discrete memoryless point-to-point channels.

    A channel is a stochastic matrix [w.(x).(y) = P(Y=y | X=x)]. *)

type t

val create : float array array -> t
(** Validates that every row is a pmf. Raises [Invalid_argument]
    otherwise. *)

val num_inputs : t -> int
val num_outputs : t -> int
val transition : t -> int -> int -> float
val matrix : t -> float array array
(** Returns a copy of the transition matrix. *)

val joint : t -> Pmf.t -> float array array
(** [joint ch px] is the joint pmf [P(x) W(y|x)]. *)

val output_dist : t -> Pmf.t -> Pmf.t

val mutual_information : t -> Pmf.t -> float
(** [I(X;Y)] for the given input distribution, in bits. *)

val cascade : t -> t -> t
(** [cascade ch1 ch2] is the channel obtained by feeding [ch1]'s output
    into [ch2]; requires matching alphabet sizes. *)

val sample_with : t -> u:float -> int -> int
(** [sample_with ch ~u x] draws an output symbol for input [x] by
    inverting the row CDF at [u], where [u] is a uniform [0,1) variate
    supplied by the caller (keeps this library free of RNG dependencies). *)
