let log2 = Numerics.Float_utils.log2

let binary_entropy p =
  if p < 0. || p > 1. then invalid_arg "Info.binary_entropy: p outside [0,1]";
  let term x = if x > 0. then -.x *. log2 x else 0. in
  term p +. term (1. -. p)

let entropy a =
  let acc = ref 0. in
  Array.iter (fun p -> if p > 0. then acc := !acc -. (p *. log2 p)) a;
  !acc

let kl_divergence p q =
  if Pmf.size p <> Pmf.size q then invalid_arg "Info.kl_divergence: size mismatch";
  let acc = ref 0. in
  for i = 0 to Pmf.size p - 1 do
    let pi = Pmf.prob p i and qi = Pmf.prob q i in
    if pi > 0. then
      if qi > 0. then acc := !acc +. (pi *. log2 (pi /. qi))
      else acc := infinity
  done;
  !acc

let validate_joint j =
  let total = ref 0. in
  Array.iter
    (Array.iter (fun p ->
         if p < 0. || Float.is_nan p then
           invalid_arg "Info.validate_joint: negative entry";
         total := !total +. p))
    j;
  if not (Numerics.Float_utils.approx_equal ~eps:1e-6 !total 1.) then
    invalid_arg "Info.validate_joint: mass is not 1"

let joint_entropy j =
  let acc = ref 0. in
  Array.iter
    (Array.iter (fun p -> if p > 0. then acc := !acc -. (p *. log2 p)))
    j;
  !acc

let marginal_x j = Array.map (fun row -> Numerics.Float_utils.sum row) j

let marginal_y j =
  let ny = Array.length j.(0) in
  let m = Array.make ny 0. in
  Array.iter (fun row -> Array.iteri (fun y p -> m.(y) <- m.(y) +. p) row) j;
  m

let mutual_information j =
  entropy (marginal_x j) +. entropy (marginal_y j) -. joint_entropy j

let conditional_entropy_y_given_x j = joint_entropy j -. entropy (marginal_x j)
