let c x =
  if x < 0. then invalid_arg "Awgn.c: negative SNR";
  Numerics.Float_utils.log2 (1. +. x)

let c_inv r =
  if r < 0. then invalid_arg "Awgn.c_inv: negative rate";
  (2. ** r) -. 1.

let mac_sum s1 s2 = c (s1 +. s2)

let snr ~power ~gain =
  if power < 0. || gain < 0. then invalid_arg "Awgn.snr: negative argument";
  power *. gain
