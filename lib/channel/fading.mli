(** Quasi-static Rayleigh block fading.

    The paper's Gaussian section models each [g_ij] as a combination of
    path loss (mean) and quasi-static fading: the gain is constant over a
    protocol block and i.i.d. across blocks. All nodes have full CSI
    within a block, so per-block rates are the instantaneous bound
    evaluated at the realised gains. *)

type t
(** A fading process over the three links of the network. *)

val create : ?rng_seed:int -> mean:Gains.t -> unit -> t
(** Rayleigh fading with per-link mean power given by [mean]; the
    realised power gains are exponential with those means. *)

val static : Gains.t -> t
(** No fading: every block sees exactly the given gains. *)

val draw : t -> Gains.t
(** Sample the gains for the next block (advances the process state). *)

val mean : t -> Gains.t

val expected_over_blocks : t -> blocks:int -> (Gains.t -> float) -> float
(** [expected_over_blocks t ~blocks f] is the Monte-Carlo average of [f]
    over [blocks] independent draws (the long-run average rate of a
    full-CSI adaptive scheme). *)
