(** Path-loss geometry for relay placement studies.

    Nodes a and b sit a unit distance apart; the relay sits on (or off)
    the segment between them. Power gains follow the standard power law
    [G = d^(-alpha)], normalised so the direct a–b link has the gain
    [g_ab_ref] (the paper's sweeps fix [G_ab = 0 dB]). *)

type t = {
  exponent : float;   (** path-loss exponent alpha, typically 2..4 *)
  g_ab_ref : float;   (** linear gain of the unit-length a-b link *)
}

val make : ?g_ab_ref_db:float -> exponent:float -> unit -> t
(** [g_ab_ref_db] defaults to 0 dB. Requires [exponent > 0]. *)

val gains_on_line : t -> relay_position:float -> Gains.t
(** [gains_on_line pl ~relay_position:d] places the relay at distance
    [d] from a and [1 - d] from b on the segment; requires
    [0 < d < 1]. Gains: [g_ar = g_ab_ref * d^-alpha],
    [g_br = g_ab_ref * (1-d)^-alpha]. *)

val gains_at : t -> relay_xy:float * float -> Gains.t
(** Relay at arbitrary planar coordinates, with a at (0,0), b at (1,0).
    The relay must not coincide with a terminal. *)

val midpoint_gain_db : t -> float
(** Gain (dB) of a terminal-relay link when the relay is at the midpoint
    — handy as a sanity check: [alpha * 3.01 dB] above [g_ab_ref]. *)
