(** Power gains of the three links of the bidirectional relay channel.

    [g_ij = |h_ij|^2] combines path loss and fading as in Section IV of
    the paper; links are reciprocal ([g_ij = g_ji]), so three numbers
    describe the network: terminal-terminal [g_ab], terminal-relay
    [g_ar] and [g_br]. *)

type t = {
  g_ab : float;  (** direct link a <-> b, linear power gain *)
  g_ar : float;  (** link a <-> r *)
  g_br : float;  (** link b <-> r *)
}

val make : g_ab:float -> g_ar:float -> g_br:float -> t
(** Validates non-negativity. *)

val of_db : g_ab:float -> g_ar:float -> g_br:float -> t
(** Gains given in dB. *)

val to_db : t -> float * float * float
(** [(g_ab, g_ar, g_br)] in dB. *)

val paper_fig4 : t
(** The gain triple used in the paper's Fig. 4:
    [g_ab = 0 dB, g_ar = 5 dB, g_br = 7 dB] (satisfying the paper's
    standing assumption [g_ab <= g_ar <= g_br]). *)

val satisfies_paper_ordering : t -> bool
(** The paper's "interesting case": [g_ab <= g_ar <= g_br]. *)

val swap_terminals : t -> t
(** Exchange the roles of a and b. *)

val pp : Format.formatter -> t -> unit
