(** AWGN rate formulas (complex baseband, unit noise power).

    Throughout the Gaussian evaluation the paper uses
    [C(x) = log2 (1 + x)] — the capacity of a complex AWGN channel at
    receive SNR [x] — with each node transmitting at power [P] per phase
    and unit-power circularly-symmetric noise. *)

val c : float -> float
(** [c x = log2 (1 + x)]; requires [x >= 0]. *)

val c_inv : float -> float
(** [c_inv r] is the SNR needed for rate [r]: [2^r - 1]. *)

val mac_sum : float -> float -> float
(** [mac_sum s1 s2 = C (s1 + s2)] — the two-user Gaussian MAC sum-rate
    bound at receive SNRs [s1] and [s2]. *)

val snr : power:float -> gain:float -> float
(** [snr ~power ~gain] is the receive SNR [power * gain] (unit noise). *)
