type kind = Static | Rayleigh of Prob.Rng.t

type t = { kind : kind; mean : Gains.t }

let create ?(rng_seed = 0x5EED) ~mean () =
  { kind = Rayleigh (Prob.Rng.create ~seed:rng_seed); mean }

let static gains = { kind = Static; mean = gains }

let draw t =
  match t.kind with
  | Static -> t.mean
  | Rayleigh rng ->
    let sample mean_power =
      if mean_power = 0. then 0.
      else Prob.Dist.exponential_power_gain rng ~mean:mean_power
    in
    Gains.make
      ~g_ab:(sample t.mean.Gains.g_ab)
      ~g_ar:(sample t.mean.Gains.g_ar)
      ~g_br:(sample t.mean.Gains.g_br)

let mean t = t.mean

let expected_over_blocks t ~blocks f =
  if blocks <= 0 then invalid_arg "Fading.expected_over_blocks: blocks <= 0";
  let acc = ref 0. in
  for _ = 1 to blocks do
    acc := !acc +. f (draw t)
  done;
  !acc /. float_of_int blocks
