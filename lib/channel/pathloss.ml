type t = { exponent : float; g_ab_ref : float }

let make ?(g_ab_ref_db = 0.) ~exponent () =
  if exponent <= 0. then invalid_arg "Pathloss.make: exponent must be positive";
  { exponent; g_ab_ref = Numerics.Float_utils.db_to_lin g_ab_ref_db }

let gain_of_distance t d =
  if d <= 0. then invalid_arg "Pathloss: zero distance";
  t.g_ab_ref *. (d ** -.t.exponent)

let gains_on_line t ~relay_position =
  if relay_position <= 0. || relay_position >= 1. then
    invalid_arg "Pathloss.gains_on_line: relay must lie strictly between a and b";
  Gains.make ~g_ab:t.g_ab_ref
    ~g_ar:(gain_of_distance t relay_position)
    ~g_br:(gain_of_distance t (1. -. relay_position))

let gains_at t ~relay_xy:(x, y) =
  let da = sqrt ((x *. x) +. (y *. y)) in
  let db = sqrt (((x -. 1.) *. (x -. 1.)) +. (y *. y)) in
  Gains.make ~g_ab:t.g_ab_ref ~g_ar:(gain_of_distance t da)
    ~g_br:(gain_of_distance t db)

let midpoint_gain_db t =
  Numerics.Float_utils.lin_to_db (gain_of_distance t 0.5)
