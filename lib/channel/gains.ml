type t = { g_ab : float; g_ar : float; g_br : float }

let make ~g_ab ~g_ar ~g_br =
  if g_ab < 0. || g_ar < 0. || g_br < 0. then
    invalid_arg "Gains.make: negative power gain";
  { g_ab; g_ar; g_br }

let of_db ~g_ab ~g_ar ~g_br =
  let lin = Numerics.Float_utils.db_to_lin in
  { g_ab = lin g_ab; g_ar = lin g_ar; g_br = lin g_br }

let to_db t =
  let db = Numerics.Float_utils.lin_to_db in
  (db t.g_ab, db t.g_ar, db t.g_br)

let paper_fig4 = of_db ~g_ab:0. ~g_ar:5. ~g_br:7.

let satisfies_paper_ordering t = t.g_ab <= t.g_ar && t.g_ar <= t.g_br

let swap_terminals t = { t with g_ar = t.g_br; g_br = t.g_ar }

let pp fmt t =
  let ab, ar, br = to_db t in
  Format.fprintf fmt "{Gab=%.1fdB Gar=%.1fdB Gbr=%.1fdB}" ab ar br
