(** The admission path between the HTTP front end and the evaluation
    stack: every query goes through a process-wide memo-backed response
    cache; the misses of a batch are deduplicated and fanned across
    {!Engine.Pool} in one [map_array]; the computed bodies are stored
    back so repeated queries are answered without touching a solver.

    Metrics (in the {!Telemetry.Metrics} registry, so they reach
    [--metrics] dumps, [--live] heartbeats and [bidir check]
    snapshots):
    - [serve.requests] — queries admitted (batch members included)
    - [serve.cache_hits] / [serve.cache_misses] — admission-probe
      outcomes; misses count unique evaluated queries, so duplicates
      inside one batch count neither as hits nor misses
    - [serve.batch_size] — histogram of admitted batch sizes

    The cache participates in {!Engine.Memo.clear_all}, so "cold
    cache" workloads ([bidir check]) stay cold through the serving
    layer too. *)

val respond : Query.t -> string
(** Answer one query: the compact-JSON response body
    ([bidir-serve/1] envelope with the canonical query echo and the
    result object). *)

val respond_batch : Query.t list -> string list
(** Answer a batch, one body per query in order. Cache hits are
    answered from the memo; the unique misses are evaluated in a
    single pool fan-out. Evaluation failures render as an
    [{"error": ...}] envelope rather than raising, so one poisoned
    query cannot take down a batch. *)

val cache_length : unit -> int
(** Entries currently in the response cache. *)
