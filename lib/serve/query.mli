(** The serving layer's query language: a small closed set of
    questions about the bidirectional relay channel, with a canonical
    cache key and a deterministic JSON answer.

    A query is a pure function of its parameters — answers carry no
    timestamps and every float is quantized to 1e-6 before rendering
    (well above the 1e-7 vertex dedup tolerance, far below any rate of
    interest) — so the same query always renders byte-identical bytes,
    whatever the domain count or warm-solver history. That is the
    contract the response cache and the cross-domain CI smoke rely
    on. *)

type kind =
  | Sumrate  (** optimal sum rate, one protocol or all *)
  | Select   (** best protocol at the operating point *)
  | Region   (** achievable-region boundary sweep + area *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

type t = private {
  kind : kind;
  power_db : float;
  gains_db : float * float * float;  (** (g_ab, g_ar, g_br) in dB *)
  bound : Bidir.Bound.kind;
  protocol : Bidir.Protocol.t option;
      (** [Sumrate]: restrict to one protocol ([None] = all five).
          [Region]: the protocol to sweep (required). Ignored by
          [Select]. *)
  weights : int;  (** [Region] sweep resolution *)
}

val make :
  kind:kind ->
  ?power_db:float ->
  ?gains_db:float * float * float ->
  ?bound:Bidir.Bound.kind ->
  ?protocol:Bidir.Protocol.t ->
  ?weights:int ->
  unit ->
  (t, string) result
(** Validated constructor. Defaults: 10 dB transmit power, the paper's
    Fig. 4 gains (0, 5, 7) dB, inner bound, 33 weights. Rejects
    non-finite or out-of-range parameters ([-60, 60] dB, weights in
    [3, 513]) and a [Region] query without a protocol. *)

val key : t -> string
(** Canonical cache key: kind, bound, protocol, weights and the
    %.17g-rendered parameters — injective on distinct queries. *)

val to_json : t -> Telemetry.Json.t
(** Canonical echo of the query (used in the response envelope). *)

val of_params : kind:string -> (string * string) list -> (t, string) result
(** Build from URL query parameters ([power_db], [g_ab], [g_ar],
    [g_br], [bound], [protocol], [weights]); unknown keys are
    rejected. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Build from a POST body object; same fields plus ["kind"]. *)

val eval : t -> Telemetry.Json.t
(** Answer the query (the ["result"] object of the response
    envelope). Runs LP solves via [Bidir.Optimize] / [Bidir.Rate_region],
    which reuse per-(LP shape, domain) warm solver slots — the
    steady-state path allocates near zero beyond the rendered JSON. *)
