(** Deterministic query pools for synthetic traffic, in the style of
    [Campaign.Workloads]: named mixes over a fixed grid of operating
    points, so a seeded load generator replays the exact same request
    stream run after run. *)

val pool : Query.kind -> Query.t list
(** The fixed query pool for one kind: a grid of transmit powers and
    gain triples (sum-rate and selection queries over all bounds and
    protocols; region sweeps at modest resolution). Never empty. *)

val check_pool : unit -> Query.t list
(** The small fixed pool behind the [check:serve] leg: 16 distinct
    cheap queries, so two passes produce exactly 16 misses then 16
    hits whatever the machine. *)

type mix = (Query.kind * int) list
(** Weighted query-kind mix; weights are relative integers. *)

val default_mix : mix
(** [sumrate=3, select=2, region=1]. *)

val mix_of_string : string -> (mix, string) result
(** Parse ["sumrate=3,select=2,region=1"]-style specs (kinds may be
    omitted; at least one weight must be positive). *)

val mix_to_string : mix -> string

val pick : Prob.Rng.t -> mix -> Query.t
(** Draw a query: kind by mix weight, then uniform over that kind's
    {!pool}. *)
