module Json = Telemetry.Json

let requests_c = Telemetry.Metrics.counter "serve.requests"
let cache_hits_c = Telemetry.Metrics.counter "serve.cache_hits"
let cache_misses_c = Telemetry.Metrics.counter "serve.cache_misses"

let batch_size_h =
  Telemetry.Metrics.histogram ~lo:1. ~growth:1.02 ~buckets:256
    "serve.batch_size"

(* Response cache: canonical query key -> rendered body. Unnamed so it
   reports through the serve.* counters above rather than doubling
   them as memo.* pairs; registered like every memo table, so
   [Engine.Memo.clear_all] empties it. *)
let cache : (string, string) Engine.Memo.t = Engine.Memo.create ~size:1024 ()

let cache_length () = Engine.Memo.length cache

let envelope q result =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.String "bidir-serve/1");
         ("query", Query.to_json q);
         result;
       ])

let eval_body q =
  match Query.eval q with
  | result -> envelope q ("result", result)
  | exception e ->
    envelope q ("error", Json.String (Printexc.to_string e))

let respond_batch qs =
  let n = List.length qs in
  if n = 0 then []
  else begin
    Telemetry.Metrics.add requests_c n;
    Telemetry.Metrics.observe_int batch_size_h n;
    (* admission: one cache probe per query *)
    let probed =
      List.map
        (fun q ->
          let k = Query.key q in
          (k, q, Engine.Memo.find_opt cache k))
        qs
    in
    let hits =
      List.length (List.filter (fun (_, _, r) -> r <> None) probed)
    in
    Telemetry.Metrics.add cache_hits_c hits;
    (* unique misses in first-seen order; duplicates within the batch
       ride the first occurrence's evaluation *)
    let seen = Hashtbl.create 16 in
    let misses =
      List.filter_map
        (fun (k, q, r) ->
          match r with
          | Some _ -> None
          | None ->
            if Hashtbl.mem seen k then None
            else begin
              Hashtbl.add seen k ();
              Some (k, q)
            end)
        probed
    in
    Telemetry.Metrics.add cache_misses_c (List.length misses);
    let miss_arr = Array.of_list misses in
    let bodies = Engine.Pool.map_array (fun (_, q) -> eval_body q) miss_arr in
    (* [fresh] also serves duplicates when the memo switch is off and
       [put] is a no-op *)
    let fresh = Hashtbl.create 16 in
    Array.iteri
      (fun i (k, _) ->
        Engine.Memo.put cache k bodies.(i);
        Hashtbl.replace fresh k bodies.(i))
      miss_arr;
    List.map
      (fun (k, q, r) ->
        match r with
        | Some body -> body
        | None -> (
          match Hashtbl.find_opt fresh k with
          | Some body -> body
          | None ->
            (* unreachable: every miss key was evaluated above *)
            eval_body q))
      probed
  end

let respond q = List.hd (respond_batch [ q ])
