module Json = Telemetry.Json

type kind = Sumrate | Select | Region

let kind_name = function
  | Sumrate -> "sumrate"
  | Select -> "select"
  | Region -> "region"

let kind_of_string = function
  | "sumrate" -> Some Sumrate
  | "select" -> Some Select
  | "region" -> Some Region
  | _ -> None

type t = {
  kind : kind;
  power_db : float;
  gains_db : float * float * float;
  bound : Bidir.Bound.kind;
  protocol : Bidir.Protocol.t option;
  weights : int;
}

let db_ok x = Float.is_finite x && x >= -60. && x <= 60.

let make ~kind ?(power_db = 10.) ?(gains_db = (0., 5., 7.))
    ?(bound = Bidir.Bound.Inner) ?protocol ?(weights = 33) () =
  let g_ab, g_ar, g_br = gains_db in
  if not (db_ok power_db) then Error "power_db out of range [-60, 60] dB"
  else if not (db_ok g_ab && db_ok g_ar && db_ok g_br) then
    Error "gains out of range [-60, 60] dB"
  else if weights < 3 || weights > 513 then
    Error "weights out of range [3, 513]"
  else if kind = Region && protocol = None then
    Error "region query requires a protocol"
  else Ok { kind; power_db; gains_db; bound; protocol; weights }

let bound_name = function Bidir.Bound.Inner -> "inner" | Bidir.Bound.Outer -> "outer"

let bound_of_string = function
  | "inner" -> Some Bidir.Bound.Inner
  | "outer" -> Some Bidir.Bound.Outer
  | _ -> None

let key q =
  let g_ab, g_ar, g_br = q.gains_db in
  Printf.sprintf "%s|%s|%s|%d|%.17g|%.17g|%.17g|%.17g" (kind_name q.kind)
    (bound_name q.bound)
    (match q.protocol with Some p -> Bidir.Protocol.name p | None -> "-")
    q.weights q.power_db g_ab g_ar g_br

(* ------------------------------------------------------------------ *)
(* JSON / parameter parsing                                            *)
(* ------------------------------------------------------------------ *)

let to_json q =
  let g_ab, g_ar, g_br = q.gains_db in
  Json.Obj
    [ ("kind", Json.String (kind_name q.kind));
      ("power_db", Json.Float q.power_db);
      ("g_ab", Json.Float g_ab);
      ("g_ar", Json.Float g_ar);
      ("g_br", Json.Float g_br);
      ("bound", Json.String (bound_name q.bound));
      ( "protocol",
        match q.protocol with
        | Some p -> Json.String (Bidir.Protocol.name p)
        | None -> Json.Null );
      ("weights", Json.Int q.weights);
    ]

(* Both front doors (URL parameters and JSON bodies) funnel through the
   same field-by-field builder so they accept exactly the same
   queries. [get] returns the raw string for a field, or None. *)
let build ~kind ~(get : string -> (string, string) result option) =
  let ( let* ) = Result.bind in
  let float_field name dflt =
    match get name with
    | None -> Ok dflt
    | Some (Error e) -> Error e
    | Some (Ok s) -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "%s: not a number: %s" name s))
  in
  let int_field name dflt =
    match get name with
    | None -> Ok dflt
    | Some (Error e) -> Error e
    | Some (Ok s) -> (
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "%s: not an integer: %s" name s))
  in
  let* kind =
    match kind_of_string kind with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown query kind: %s" kind)
  in
  let* power_db = float_field "power_db" 10. in
  let* g_ab = float_field "g_ab" 0. in
  let* g_ar = float_field "g_ar" 5. in
  let* g_br = float_field "g_br" 7. in
  let* bound =
    match get "bound" with
    | None -> Ok Bidir.Bound.Inner
    | Some (Error e) -> Error e
    | Some (Ok s) -> (
      match bound_of_string s with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "bound: expected inner|outer, got %s" s))
  in
  let* protocol =
    match get "protocol" with
    | None -> Ok None
    | Some (Error e) -> Error e
    | Some (Ok s) -> (
      match Bidir.Protocol.of_string s with
      | Some p -> Ok (Some p)
      | None -> Error (Printf.sprintf "unknown protocol: %s" s))
  in
  let* weights = int_field "weights" 33 in
  make ~kind ~power_db ~gains_db:(g_ab, g_ar, g_br) ~bound ?protocol ~weights
    ()

let known_fields =
  [ "kind"; "power_db"; "g_ab"; "g_ar"; "g_br"; "bound"; "protocol"; "weights" ]

let of_params ~kind params =
  match
    List.find_opt (fun (k, _) -> not (List.mem k known_fields)) params
  with
  | Some (k, _) -> Error (Printf.sprintf "unknown parameter: %s" k)
  | None ->
    build ~kind ~get:(fun name ->
        Option.map (fun v -> Ok v) (List.assoc_opt name params))

let of_json j =
  match j with
  | Json.Obj fields -> (
    match
      List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
    with
    | Some (k, _) -> Error (Printf.sprintf "unknown field: %s" k)
    | None -> (
      let get name =
        match List.assoc_opt name fields with
        | None | Some Json.Null -> None
        | Some (Json.String s) -> Some (Ok s)
        | Some (Json.Int i) -> Some (Ok (string_of_int i))
        | Some (Json.Float f) -> Some (Ok (Printf.sprintf "%.17g" f))
        | Some _ -> Some (Error (Printf.sprintf "%s: unsupported type" name))
      in
      match get "kind" with
      | Some (Ok kind) -> build ~kind ~get
      | Some (Error e) -> Error e
      | None -> Error "missing field: kind"))
  | _ -> Error "query body must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Quantize to 1e-6 before rendering: coarse enough to absorb the
   ulp-level path dependence of warm LP solves (vertex dedup tolerance
   is 1e-7), fine enough for any rate in bits/use. [+. 0.] folds -0.
   into 0. so the sign never leaks into the rendering. *)
let q6 x = Json.Float ((Float.round (x *. 1e6) /. 1e6) +. 0.)

let scenario q =
  let g_ab, g_ar, g_br = q.gains_db in
  Bidir.Gaussian.scenario ~power_db:q.power_db
    ~gains:(Channel.Gains.of_db ~g_ab ~g_ar ~g_br)

let result_json (r : Bidir.Optimize.sum_rate_result) =
  Json.Obj
    [ ("protocol", Json.String (Bidir.Protocol.name r.protocol));
      ("bound", Json.String (bound_name r.bound_kind));
      ("sum_rate", q6 r.sum_rate);
      ("ra", q6 r.ra);
      ("rb", q6 r.rb);
      ("deltas", Json.List (Array.to_list (Array.map q6 r.deltas)));
    ]

let eval q =
  let scen = scenario q in
  match q.kind with
  | Sumrate -> (
    match q.protocol with
    | Some p -> result_json (Bidir.Optimize.sum_rate p q.bound scen)
    | None ->
      Json.Obj
        [ ( "results",
            Json.List
              (List.map result_json (Bidir.Optimize.all_sum_rates q.bound scen))
          );
        ])
  | Select ->
    let all = Bidir.Optimize.all_sum_rates q.bound scen in
    (* [Optimize.best_protocol]'s tie rule — earlier in [Protocol.all]
       wins unless strictly beaten — applied to the QUANTIZED sum
       rates: two protocols whose optima differ only by warm-solve ulp
       noise must select the same winner on every run, or the response
       bytes would depend on the daemon's history *)
    let quant x = Float.round (x *. 1e6) /. 1e6 in
    let best =
      List.fold_left
        (fun acc (r : Bidir.Optimize.sum_rate_result) ->
          if quant r.sum_rate > quant acc.Bidir.Optimize.sum_rate then r
          else acc)
        (List.hd all) (List.tl all)
    in
    Json.Obj
      [ ("best", result_json best);
        ( "sum_rates",
          Json.Obj
            (List.map
               (fun (r : Bidir.Optimize.sum_rate_result) ->
                 (Bidir.Protocol.name r.protocol, q6 r.sum_rate))
               all) );
      ]
  | Region ->
    let p = Option.get q.protocol in
    let bound = Bidir.Gaussian.bounds p q.bound scen in
    let vertices = Bidir.Rate_region.boundary ~weights:q.weights bound in
    let area = Bidir.Rate_region.area ~weights:q.weights bound in
    Json.Obj
      [ ("protocol", Json.String (Bidir.Protocol.name p));
        ("bound", Json.String (bound_name q.bound));
        ("weights", Json.Int q.weights);
        ("area", q6 area);
        ( "vertices",
          Json.List
            (List.map
               (fun (v : Numerics.Vec2.t) -> Json.List [ q6 v.x; q6 v.y ])
               vertices) );
      ]
