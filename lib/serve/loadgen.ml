module Json = Telemetry.Json

type config = {
  host : string;
  port : int;
  clients : int;
  requests : int;
  rate : float;
  mix : Scenarios.mix;
  seed : int;
  connect_timeout : float;
  dump : string option;
  shutdown : bool;
}

let default_config =
  { host = "127.0.0.1";
    port = 8090;
    clients = 4;
    requests = 200;
    rate = 0.;
    mix = Scenarios.default_mix;
    seed = 1;
    connect_timeout = 10.;
    dump = None;
    shutdown = false;
  }

type result = {
  sent : int;
  ok : int;
  failed : int;
  wall_seconds : float;
  qps : float;
  p50 : float;
  p90 : float;
  p99 : float;
  server_counters : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* A tiny blocking HTTP/1.1 client                                     *)
(* ------------------------------------------------------------------ *)

type client = { fd : Unix.file_descr; mutable leftover : string }

let connect ~host ~port ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; leftover = "" }
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.05;
        go ()
      end
      else failwith (Printf.sprintf "connect %s:%d: timed out" host port)
  in
  go ()

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

(* Read one response off the connection: status code and body.
   Keep-alive framing via Content-Length (which our server always
   sends). *)
let read_response c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf c.leftover;
  c.leftover <- "";
  let chunk = Bytes.create 65536 in
  let head_end = ref (find_sub (Buffer.contents buf) "\r\n\r\n" 0) in
  while !head_end = None do
    let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
    if n = 0 then failwith "connection closed mid-response";
    Buffer.add_subbytes buf chunk 0 n;
    head_end := find_sub (Buffer.contents buf) "\r\n\r\n" 0
  done;
  let data = Buffer.contents buf in
  let he = Option.get !head_end in
  let head = String.sub data 0 he in
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string (String.trim code)
    | _ -> failwith "bad status line"
  in
  let content_length =
    let lines = String.split_on_char '\n' head in
    let rec find = function
      | [] -> failwith "no content-length"
      | l :: rest -> (
        match String.index_opt l ':' with
        | Some i
          when String.lowercase_ascii (String.trim (String.sub l 0 i))
               = "content-length" ->
          int_of_string
            (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
        | _ -> find rest)
    in
    find lines
  in
  let body_start = he + 4 in
  let buf2 = Buffer.create (content_length + 16) in
  Buffer.add_substring buf2 data body_start (String.length data - body_start);
  while Buffer.length buf2 < content_length do
    let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
    if n = 0 then failwith "connection closed mid-body";
    Buffer.add_subbytes buf2 chunk 0 n
  done;
  let rest = Buffer.contents buf2 in
  let body = String.sub rest 0 content_length in
  c.leftover <- String.sub rest content_length (String.length rest - content_length);
  (status, body)

let request c req_string =
  let n = String.length req_string in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write_substring c.fd req_string !pos (n - !pos)
  done;
  read_response c

(* Alternate the two front doors so both stay exercised: even request
   indices go as GET with URL parameters, odd as POST /v1/query with a
   JSON body. Both render the same canonical query. *)
let request_string ~host i (q : Query.t) =
  if i mod 2 = 0 then begin
    let g_ab, g_ar, g_br = q.gains_db in
    let target =
      Printf.sprintf
        "/v1/%s?power_db=%.17g&g_ab=%.17g&g_ar=%.17g&g_br=%.17g&bound=%s&weights=%d%s"
        (Query.kind_name q.kind) q.power_db g_ab g_ar g_br
        (match q.bound with Bidir.Bound.Inner -> "inner" | Bidir.Bound.Outer -> "outer")
        q.weights
        (match q.protocol with
        | Some p -> "&protocol=" ^ Bidir.Protocol.name p
        | None -> "")
    in
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s\r\n\r\n" target host
  end
  else
    let body = Json.to_string (Query.to_json q) in
    Printf.sprintf
      "POST /v1/query HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s"
      host (String.length body) body

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

type client_out = {
  co_ok : int;
  co_failed : int;
  co_log : (string * string) array;  (* query key, response body; "" = failed *)
}

let client_run cfg ~index ~count ~rng ~latency () =
  let per_client_rate =
    if cfg.rate > 0. then cfg.rate /. float_of_int cfg.clients else 0.
  in
  let log = Array.make count ("", "") in
  let ok = ref 0 and failed = ref 0 in
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> c
    | None ->
      let c = connect ~host:cfg.host ~port:cfg.port ~timeout:cfg.connect_timeout in
      conn := Some c;
      c
  in
  for i = 0 to count - 1 do
    if per_client_rate > 0. then begin
      let u = Prob.Rng.float rng in
      Unix.sleepf (-.Float.log (1. -. u) /. per_client_rate)
    end;
    let q = Scenarios.pick rng cfg.mix in
    let key = Query.key q in
    match
      let c = get_conn () in
      let t0 = Unix.gettimeofday () in
      let status, body = request c (request_string ~host:cfg.host i q) in
      let dt = Unix.gettimeofday () -. t0 in
      (status, body, dt)
    with
    | 200, body, dt ->
      Telemetry.Histogram.observe latency dt;
      log.(i) <- (key, body);
      incr ok
    | _, _, _ ->
      log.(i) <- (key, "");
      incr failed
    | exception _ ->
      (* drop the connection and let the next request redial *)
      Option.iter disconnect !conn;
      conn := None;
      log.(i) <- (key, "");
      incr failed
  done;
  Option.iter disconnect !conn;
  ignore index;
  { co_ok = !ok; co_failed = !failed; co_log = log }

let fetch_server_counters cfg =
  match
    let c = connect ~host:cfg.host ~port:cfg.port ~timeout:cfg.connect_timeout in
    let _, body =
      request c
        (Printf.sprintf "GET /metrics HTTP/1.1\r\nHost: %s\r\n\r\n" cfg.host)
    in
    disconnect c;
    Json.parse body
  with
  | Ok j -> (
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Int n
            when String.length k >= 6 && String.sub k 0 6 = "serve." ->
            Some (k, n)
          | _ -> None)
        fields
    | _ -> [])
  | Error _ | (exception _) -> []

let post_shutdown cfg =
  match
    let c = connect ~host:cfg.host ~port:cfg.port ~timeout:cfg.connect_timeout in
    let r =
      request c
        (Printf.sprintf
           "POST /shutdown HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\n\r\n"
           cfg.host)
    in
    disconnect c;
    r
  with
  | _ -> ()
  | exception _ -> ()

let write_dump path (outs : client_out array) =
  let oc = open_out path in
  Array.iteri
    (fun client out ->
      Array.iteri
        (fun i (key, body) ->
          Printf.fprintf oc
            "{\"client\":%d,\"i\":%d,\"key\":%s,\"response\":%s}\n" client i
            (Json.to_string (Json.String key))
            (if body = "" then "null" else body))
        out.co_log)
    outs;
  close_out oc

let run cfg =
  if cfg.clients < 1 then invalid_arg "Serve.Loadgen.run: clients < 1";
  if cfg.requests < 0 then invalid_arg "Serve.Loadgen.run: requests < 0";
  let root = Prob.Rng.create ~seed:cfg.seed in
  let latency = Telemetry.Histogram.create () in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init cfg.clients (fun i ->
        let rng = Prob.Rng.split root in
        let count =
          (cfg.requests / cfg.clients)
          + if i < cfg.requests mod cfg.clients then 1 else 0
        in
        Domain.spawn (client_run cfg ~index:i ~count ~rng ~latency))
  in
  let outs = Array.of_list (List.map Domain.join domains) in
  let wall = Unix.gettimeofday () -. t0 in
  let server_counters = fetch_server_counters cfg in
  Option.iter (fun path -> write_dump path outs) cfg.dump;
  if cfg.shutdown then post_shutdown cfg;
  let ok = Array.fold_left (fun s o -> s + o.co_ok) 0 outs in
  let failed = Array.fold_left (fun s o -> s + o.co_failed) 0 outs in
  let p50, p90, p99 = Telemetry.Histogram.percentiles latency in
  { sent = ok + failed;
    ok;
    failed;
    wall_seconds = wall;
    qps = (if wall > 0. then float_of_int ok /. wall else 0.);
    p50;
    p90;
    p99;
    server_counters;
  }

let result_to_json cfg r =
  Json.Obj
    [ ("schema", Json.String "bidir-bench-serve/1");
      ( "config",
        Json.Obj
          [ ("host", Json.String cfg.host);
            ("port", Json.Int cfg.port);
            ("clients", Json.Int cfg.clients);
            ("requests", Json.Int cfg.requests);
            ("rate", Json.Float cfg.rate);
            ("mix", Json.String (Scenarios.mix_to_string cfg.mix));
            ("seed", Json.Int cfg.seed);
          ] );
      ("sent", Json.Int r.sent);
      ("ok", Json.Int r.ok);
      ("failed", Json.Int r.failed);
      ("wall_seconds", Json.Float r.wall_seconds);
      ("qps", Json.Float r.qps);
      ("latency_seconds",
       Json.Obj
         [ ("p50", Json.Float r.p50);
           ("p90", Json.Float r.p90);
           ("p99", Json.Float r.p99);
         ]);
      ( "server",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.server_counters)
      );
    ]
