(** The [bidir serve] daemon: a single-threaded [select] loop over
    keep-alive connections, hand-rolled on [Unix] with no external
    dependencies. Parallelism lives below, not in the socket plane:
    each loop round collects every request its ready connections have
    pipelined, answers the control endpoints inline, and hands the
    query endpoints to {!Service.respond_batch} — cache hits are free,
    the unique misses fan across {!Engine.Pool} onto warm per-domain
    LP solver slots.

    Endpoints:
    - [GET /v1/sumrate], [GET /v1/select], [GET /v1/region] — query
      parameters as in {!Query.of_params}; also accept POST with the
      same parameters in a JSON body.
    - [POST /v1/query] — JSON body with an explicit ["kind"] field.
    - [GET /healthz] — liveness + request count.
    - [GET /metrics] — the full {!Telemetry.Metrics} registry as JSON.
    - [POST /shutdown] — answer, flush, exit the loop (when enabled).

    Observability: [serve.connections] and [serve.http_errors]
    counters, per-request wall time in [serve.request_seconds], and —
    when [--live] streaming is on — progress records under the name
    ["serve"] so [bidir top] can watch a running daemon. *)

type config = {
  host : string;  (** bind address, e.g. "127.0.0.1" *)
  port : int;  (** 0 picks an ephemeral port *)
  port_file : string option;
      (** write the bound port as a single decimal line (how scripts
          find an ephemeral port) *)
  batch_max : int;  (** admit at most this many queries per batch *)
  max_requests : int option;
      (** stop after answering this many query requests *)
  allow_shutdown : bool;  (** serve [POST /shutdown] *)
  quiet : bool;  (** suppress the stderr banner *)
}

val default_config : config
(** 127.0.0.1:8090, batch 64, no request cap, shutdown enabled. *)

val run : config -> int
(** Bind, serve until [/shutdown] or the request cap, tear down every
    connection; returns the number of query requests answered. *)
