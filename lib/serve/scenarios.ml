let ok = function Ok q -> q | Error e -> invalid_arg ("Serve.Scenarios: " ^ e)

(* The grid: powers spanning the MABC-vs-TDBC crossover, the paper's
   Fig. 4 gains plus two perturbations keeping g_ab <= g_ar <= g_br.
   All triples are strictly asymmetric (g_ar < g_br): a symmetric
   relay (g_ar = g_br) makes the sum-rate LP degenerate — the
   ra/rb-swapped schedules tie exactly — and which optimal vertex a
   warm solve lands on depends on basis history, which would break the
   byte-stable response contract. *)
let powers = [ -5.; 0.; 5.; 10.; 15.; 20. ]
let gains = [ (0., 5., 7.); (0., 3., 5.); (2., 6., 9.) ]

let sumrate_pool =
  lazy
    (List.concat_map
       (fun power_db ->
         List.concat_map
           (fun gains_db ->
             List.map
               (fun (protocol, bound) ->
                 ok
                   (Query.make ~kind:Query.Sumrate ~power_db ~gains_db ~bound
                      ?protocol ()))
               [ (None, Bidir.Bound.Inner);
                 (Some Bidir.Protocol.Mabc, Bidir.Bound.Inner);
                 (Some Bidir.Protocol.Tdbc, Bidir.Bound.Inner);
                 (Some Bidir.Protocol.Tdbc, Bidir.Bound.Outer);
               ])
           gains)
       powers)

let select_pool =
  lazy
    (List.concat_map
       (fun power_db ->
         List.map
           (fun gains_db ->
             ok
               (Query.make ~kind:Query.Select ~power_db ~gains_db
                  ~bound:Bidir.Bound.Inner ()))
           gains)
       powers)

let region_pool =
  lazy
    (List.concat_map
       (fun power_db ->
         List.concat_map
           (fun gains_db ->
             List.map
               (fun (protocol, bound) ->
                 ok
                   (Query.make ~kind:Query.Region ~power_db ~gains_db ~bound
                      ~protocol ~weights:33 ()))
               [ (Bidir.Protocol.Mabc, Bidir.Bound.Inner);
                 (Bidir.Protocol.Tdbc, Bidir.Bound.Inner);
               ])
           [ (0., 5., 7.); (0., 3., 5.) ])
       [ 0.; 10.; 20. ])

let pool = function
  | Query.Sumrate -> Lazy.force sumrate_pool
  | Query.Select -> Lazy.force select_pool
  | Query.Region -> Lazy.force region_pool

let check_pool () =
  List.concat_map
    (fun power_db ->
      [ ok (Query.make ~kind:Query.Sumrate ~power_db ());
        ok
          (Query.make ~kind:Query.Sumrate ~power_db
             ~protocol:Bidir.Protocol.Tdbc ());
        ok (Query.make ~kind:Query.Select ~power_db ());
        ok
          (Query.make ~kind:Query.Region ~power_db
             ~protocol:Bidir.Protocol.Tdbc ~weights:17 ());
      ])
    [ 0.; 5.; 10.; 15. ]

type mix = (Query.kind * int) list

let default_mix = [ (Query.Sumrate, 3); (Query.Select, 2); (Query.Region, 1) ]

let mix_to_string mix =
  String.concat ","
    (List.map (fun (k, w) -> Printf.sprintf "%s=%d" (Query.kind_name k) w) mix)

let mix_of_string s =
  let parts = String.split_on_char ',' (String.trim s) in
  let rec go acc = function
    | [] ->
      let acc = List.rev acc in
      if List.exists (fun (_, w) -> w > 0) acc then Ok acc
      else Error "mix has no positive weight"
    | part :: rest -> (
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "bad mix component: %s" part)
      | Some i -> (
        let name = String.trim (String.sub part 0 i) in
        let w = String.trim (String.sub part (i + 1) (String.length part - i - 1)) in
        match (Query.kind_of_string name, int_of_string_opt w) with
        | Some kind, Some w when w >= 0 -> go ((kind, w) :: acc) rest
        | None, _ -> Error (Printf.sprintf "unknown query kind: %s" name)
        | _, _ -> Error (Printf.sprintf "bad weight: %s" part)))
  in
  go [] parts

let pick rng mix =
  let total = List.fold_left (fun s (_, w) -> s + max 0 w) 0 mix in
  if total <= 0 then invalid_arg "Serve.Scenarios.pick: empty mix";
  let r = Prob.Rng.int rng total in
  let rec choose r = function
    | [] -> assert false
    | (k, w) :: rest -> if r < max 0 w then k else choose (r - max 0 w) rest
  in
  let kind = choose r mix in
  let p = pool kind in
  List.nth p (Prob.Rng.int rng (List.length p))
