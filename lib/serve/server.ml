module Json = Telemetry.Json

type config = {
  host : string;
  port : int;
  port_file : string option;
  batch_max : int;
  max_requests : int option;
  allow_shutdown : bool;
  quiet : bool;
}

let default_config =
  { host = "127.0.0.1";
    port = 8090;
    port_file = None;
    batch_max = 64;
    max_requests = None;
    allow_shutdown = true;
    quiet = false;
  }

let connections_c = Telemetry.Metrics.counter "serve.connections"
let http_errors_c = Telemetry.Metrics.counter "serve.http_errors"
let request_seconds_h = Telemetry.Metrics.histogram "serve.request_seconds"

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable alive : bool;
}

(* What one parsed request resolves to before the batch round. *)
type payload =
  | Query of Query.t
  | Immediate of int * string  (* status, body *)
  | Shutdown_req

type item = {
  it_conn : conn;
  it_t0 : float;
  it_payload : payload;
  it_close : bool;
}

let write_all c s =
  let n = String.length s in
  let pos = ref 0 in
  (try
     while !pos < n do
       pos := !pos + Unix.write_substring c.fd s !pos (n - !pos)
     done
   with Unix.Unix_error _ -> c.alive <- false)

(* marking only: the fd is closed exactly once, when the dead
   connection is pruned at the end of the round (or at teardown) *)
let close_conn c = c.alive <- false

let bad_request msg =
  Json.to_string
    (Json.Obj
       [ ("schema", Json.String "bidir-serve/1");
         ("error", Json.String msg);
       ])

let health served =
  Json.to_string
    (Json.Obj [ ("ok", Json.Bool true); ("requests", Json.Int served) ])

(* Resolve one parsed request to a payload. Query endpoints accept GET
   parameters or a JSON body carrying the same fields. *)
let route cfg ~served (req : Http.request) =
  let query_of kind =
    let parsed =
      if req.body = "" then Query.of_params ~kind req.params
      else
        match Json.parse req.body with
        | Ok (Json.Obj fields) ->
          Query.of_json
            (Json.Obj
               (("kind", Json.String kind) :: List.remove_assoc "kind" fields))
        | Ok _ -> Error "query body must be a JSON object"
        | Error e -> Error ("body: " ^ e)
    in
    match parsed with
    | Ok q -> Query q
    | Error e ->
      Telemetry.Metrics.incr http_errors_c;
      Immediate (400, bad_request e)
  in
  match (req.meth, req.path) with
  | ("GET" | "POST"), "/v1/sumrate" -> query_of "sumrate"
  | ("GET" | "POST"), "/v1/select" -> query_of "select"
  | ("GET" | "POST"), "/v1/region" -> query_of "region"
  | "POST", "/v1/query" -> (
    match Json.parse req.body with
    | Ok j -> (
      match Query.of_json j with
      | Ok q -> Query q
      | Error e ->
        Telemetry.Metrics.incr http_errors_c;
        Immediate (400, bad_request e))
    | Error e ->
      Telemetry.Metrics.incr http_errors_c;
      Immediate (400, bad_request ("body: " ^ e)))
  | "GET", "/healthz" -> Immediate (200, health served)
  | "GET", "/metrics" -> Immediate (200, Json.to_string (Telemetry.Metrics.to_json ()))
  | "POST", "/shutdown" when cfg.allow_shutdown -> Shutdown_req
  | _, _ ->
    Telemetry.Metrics.incr http_errors_c;
    Immediate (404, bad_request ("no such endpoint: " ^ req.meth ^ " " ^ req.path))

let write_port_file path port =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "%d\n" port;
  close_out oc;
  Sys.rename tmp path

let chunks k xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let run cfg =
  (* a client hanging up mid-response must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen srv 128;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Option.iter (fun path -> write_port_file path port) cfg.port_file;
  if not cfg.quiet then
    Printf.eprintf "serve: listening on http://%s:%d\n%!" cfg.host port;
  let conns : conn list ref = ref [] in
  let served = ref 0 in
  let stop = ref false in
  let t_start = Unix.gettimeofday () in
  let read_buf = Bytes.create 65536 in
  (* read what a ready connection has, then parse every complete
     pipelined request off the front of its buffer *)
  let drain_conn c =
    let items = ref [] in
    (match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> close_conn c
    | n -> Buffer.add_subbytes c.buf read_buf 0 n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c);
    let progress = ref c.alive in
    while !progress do
      progress := false;
      let data = Buffer.contents c.buf in
      match Http.parse data with
      | Http.Incomplete -> ()
      | Http.Invalid msg ->
        Telemetry.Metrics.incr http_errors_c;
        write_all c (Http.response ~status:400 ~close:true (bad_request msg));
        close_conn c
      | Http.Complete (req, consumed) ->
        Buffer.clear c.buf;
        Buffer.add_substring c.buf data consumed (String.length data - consumed);
        let payload = route cfg ~served:!served req in
        items :=
          { it_conn = c;
            it_t0 = Unix.gettimeofday ();
            it_payload = payload;
            it_close = Http.wants_close req;
          }
          :: !items;
        progress := c.alive
    done;
    List.rev !items
  in
  while not !stop do
    let fds = srv :: List.map (fun c -> c.fd) !conns in
    let ready =
      match Unix.select fds [] [] 0.25 with
      | r, _, _ -> r
      | exception Unix.Unix_error (EINTR, _, _) -> []
    in
    if List.mem srv ready then begin
      match Unix.accept srv with
      | fd, _ ->
        if List.length !conns >= 256 then
          (* over the select budget: shed the newcomer *)
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Telemetry.Metrics.incr connections_c;
          conns := { fd; buf = Buffer.create 1024; alive = true } :: !conns
        end
      | exception Unix.Unix_error _ -> ()
    end;
    let items =
      List.concat_map
        (fun c -> if List.mem c.fd ready then drain_conn c else [])
        (List.rev !conns)
    in
    (* answer the unique query misses of this round in pool batches *)
    let queries =
      List.mapi (fun i it -> (i, it)) items
      |> List.filter_map (fun (i, it) ->
             match it.it_payload with Query q -> Some (i, q) | _ -> None)
    in
    let answers = Hashtbl.create 16 in
    List.iter
      (fun chunk ->
        let bodies = Service.respond_batch (List.map snd chunk) in
        List.iter2
          (fun (i, _) body -> Hashtbl.replace answers i body)
          chunk bodies)
      (chunks cfg.batch_max queries);
    List.iteri
      (fun i it ->
        let status, body =
          match it.it_payload with
          | Query _ ->
            incr served;
            (200, Hashtbl.find answers i)
          | Immediate (status, body) -> (status, body)
          | Shutdown_req ->
            stop := true;
            (200, Json.to_string (Json.Obj [ ("ok", Json.Bool true) ]))
        in
        if it.it_conn.alive then begin
          write_all it.it_conn
            (Http.response ~status ~close:it.it_close body);
          Telemetry.Metrics.observe request_seconds_h
            (Float.max 0. (Unix.gettimeofday () -. it.it_t0));
          if it.it_close then close_conn it.it_conn
        end)
      items;
    let dead, live = List.partition (fun c -> not c.alive) !conns in
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      dead;
    conns := live;
    (match cfg.max_requests with
    | Some cap when !served >= cap -> stop := true
    | _ -> ());
    let elapsed = Unix.gettimeofday () -. t_start in
    Telemetry.Stream.note_progress ~name:"serve" ~completed:!served
      ~total:(Option.value ~default:0 cfg.max_requests)
      ~rate:(if elapsed > 0. then float_of_int !served /. elapsed else 0.)
      ();
    Telemetry.Stream.pulse_live ()
  done;
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  if not cfg.quiet then
    Printf.eprintf "serve: done, %d queries answered\n%!" !served;
  !served
