(** Deterministic synthetic traffic against a running daemon: N client
    domains replay a seeded query stream (kind mix from
    {!Scenarios}, alternating GET and POST framing) over keep-alive
    connections, measure per-request wall latency into one shared
    lock-free histogram, and optionally dump every (query key,
    response body) pair in client-major order — a byte-stable artifact
    CI diffs across server domain counts.

    Reported queries/sec and percentiles land in [BENCH_serve.json]
    (schema [bidir-bench-serve/1]) and the trajectory line via the
    CLI wrapper. *)

type config = {
  host : string;
  port : int;
  clients : int;  (** concurrent client domains *)
  requests : int;  (** total requests across all clients *)
  rate : float;
      (** aggregate target arrival rate in req/s; 0 = closed loop *)
  mix : Scenarios.mix;
  seed : int;
  connect_timeout : float;
      (** seconds to retry the initial connect (daemon startup race) *)
  dump : string option;
      (** write one JSONL line per request: client, index, query key,
          raw response body *)
  shutdown : bool;  (** POST /shutdown when done *)
}

val default_config : config
(** 127.0.0.1:8090, 4 clients, 200 requests, closed loop,
    {!Scenarios.default_mix}, seed 1, 10 s connect window. *)

type result = {
  sent : int;
  ok : int;  (** HTTP 200 with a parseable body *)
  failed : int;
  wall_seconds : float;
  qps : float;  (** ok / wall *)
  p50 : float;  (** client-observed request latency, seconds *)
  p90 : float;
  p99 : float;
  server_counters : (string * int) list;
      (** the daemon's [serve.*] counters fetched from [/metrics]
          after the run; empty if the fetch failed *)
}

val run : config -> result

val result_to_json : config -> result -> Telemetry.Json.t
(** The [bidir-bench-serve/1] document. *)
