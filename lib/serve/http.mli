(** Minimal HTTP/1.1 framing — just enough for the serving daemon and
    its load generator, hand-rolled over strings in the style of
    {!Telemetry.Json}: no external dependencies, a parser for exactly
    what the serializer emits plus what standard clients send.

    Supports request pipelining (parse consumes one request from the
    front of a connection buffer and reports the byte count), keep-alive
    negotiation, and bounded header/body sizes so a misbehaving client
    cannot balloon a connection buffer. *)

type request = {
  meth : string;  (** verb, uppercased by the client convention *)
  path : string;  (** request-target before ['?'] *)
  params : (string * string) list;
      (** decoded query parameters, in order of appearance *)
  version : string;  (** ["HTTP/1.1"] *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type parse_result =
  | Complete of request * int
      (** a full request and the bytes it consumed from the buffer *)
  | Incomplete  (** valid prefix; read more bytes *)
  | Invalid of string  (** protocol violation; close the connection *)

val parse : ?max_head:int -> ?max_body:int -> string -> parse_result
(** Parse one request from the front of [s]. Defaults: 16 KiB header
    block, 64 KiB body. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val wants_close : request -> bool
(** [Connection: close], or HTTP/1.0 without [Connection: keep-alive]. *)

val response :
  ?status:int ->
  ?content_type:string ->
  ?close:bool ->
  string ->
  string
(** Serialize a full response (status line, [Content-Length], optional
    [Connection: close], blank line, body). Default status 200,
    content type [application/json]. *)

val status_reason : int -> string

val url_decode : string -> string
(** Percent- and [+]-decoding for query parameter names and values. *)
