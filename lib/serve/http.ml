type request = {
  meth : string;
  path : string;
  params : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

type parse_result = Complete of request * int | Incomplete | Invalid of string

let status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char b ' '
    | '%' when !i + 2 < n -> (
      match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
      | Some hi, Some lo ->
        Buffer.add_char b (Char.chr ((hi * 16) + lo));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_params q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | Some i ->
               Some
                 ( url_decode (String.sub kv 0 i),
                   url_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
             | None -> Some (url_decode kv, ""))

(* index of the first "\r\n\r\n" in s, searched in O(n) *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
    Some
      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse ?(max_head = 16 * 1024) ?(max_body = 64 * 1024) s =
  match find_head_end s with
  | None ->
    if String.length s > max_head then Invalid "header block too large"
    else Incomplete
  | Some head_end -> (
    if head_end > max_head then Invalid "header block too large"
    else
      let head = String.sub s 0 head_end in
      match String.split_on_char '\n' head with
      | [] -> Invalid "empty request"
      | req_line :: header_lines -> (
        let req_line = String.trim req_line in
        match String.split_on_char ' ' req_line with
        | [ meth; target; version ]
          when version = "HTTP/1.1" || version = "HTTP/1.0" -> (
          let headers =
            List.filter_map
              (fun l -> parse_header_line (String.trim l))
              header_lines
          in
          let path, params =
            match String.index_opt target '?' with
            | Some i ->
              ( String.sub target 0 i,
                parse_params
                  (String.sub target (i + 1) (String.length target - i - 1))
              )
            | None -> (target, [])
          in
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Ok 0
            | Some v -> (
              match int_of_string_opt (String.trim v) with
              | Some n when n >= 0 -> Ok n
              | _ -> Error ("bad content-length: " ^ v))
          in
          match content_length with
          | Error e -> Invalid e
          | Ok len ->
            if len > max_body then Invalid "body too large"
            else
              let body_start = head_end + 4 in
              if String.length s < body_start + len then Incomplete
              else
                Complete
                  ( { meth;
                      path;
                      params;
                      version;
                      headers;
                      body = String.sub s body_start len;
                    },
                    body_start + len ))
        | _ -> Invalid ("bad request line: " ^ req_line)))

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

let wants_close req =
  match Option.map String.lowercase_ascii (header req "connection") with
  | Some "close" -> true
  | Some "keep-alive" -> false
  | _ -> req.version = "HTTP/1.0"

let response ?(status = 200) ?(content_type = "application/json") ?(close = false)
    body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n%s\r\n%s"
    status (status_reason status) content_type (String.length body)
    (if close then "Connection: close\r\n" else "")
    body
