(** Flat row-major simplex tableau kernel.

    The shared numeric core of {!Simplex} (cold reference) and
    {!Solver} (warm-start engine): one contiguous unboxed [floatarray]
    holds the m x (ncols + 1) tableau (right-hand side in the last
    column), and every hot operation — elimination, pricing, ratio
    test, reduced costs — walks it with [unsafe_get]/[unsafe_set] over
    precomputed row offsets. No operation below allocates; all scratch
    ([reduced], [cost], [basis], [allowed]) is owned by the kernel and
    reused across solves, which is what makes the solver's warm
    [reoptimize_into] path allocation-free.

    The arithmetic is operation-for-operation identical to the
    historical nested [float array array] implementation, so pivot
    sequences and solutions are bit-for-bit unchanged — the flat layout
    only changes memory behaviour, never results.

    A kernel is mutable scratch, not a value: callers own exactly one
    per solver/tableau and must not share it across domains (see the
    ownership contract in docs/ENGINE.md). Index arguments are not
    bounds-checked; every [row]/[col] must come from loops bounded by
    [nrows]/[ncols]. *)

type t

val eps : float
(** Pivot/pricing tolerance shared by both solvers (1e-9). *)

val create : nrows:int -> ncols:int -> t
(** Fresh kernel sized for an [nrows] x [ncols] system (plus the rhs
    column), zero-filled, all columns allowed. *)

val resize : t -> nrows:int -> ncols:int -> unit
(** Set the active geometry, reallocating backing buffers only when
    the new system exceeds current capacity. Contents are unspecified
    afterwards; reload via {!clear} and {!set}. *)

val nrows : t -> int
val ncols : t -> int

val clear : t -> unit
(** Zero the active tableau region. *)

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
(** Element access; column [ncols] is the right-hand side. *)

val rhs : t -> int -> float
(** [rhs t i] = [get t i (ncols t)]. *)

val basis : t -> int -> int
val set_basis : t -> int -> int -> unit
(** The column currently basic in a row. *)

val allow_all : t -> unit
val bar_from : t -> int -> unit
(** [bar_from t j0] forbids columns [j0 .. ncols-1] from entering the
    basis (artificials in phase 2). *)

val load_cost : t -> float array -> int -> unit
(** [load_cost t c n]: objective [c] over the first [n] (structural)
    columns, zero elsewhere. *)

val load_phase1_cost : t -> first_artificial:int -> unit
(** The phase-1 objective: -1 on every artificial column. *)

val compute_reduced : t -> unit
(** Reduced costs of every column against the loaded cost, into the
    kernel's scratch; disallowed columns price to [neg_infinity].
    Row-major accumulation, bit-identical to the column-major
    reference. *)

val price_bland : t -> int
(** Lowest-index column with reduced cost > eps; -1 when optimal. *)

val price_dantzig : t -> int
(** Most positive reduced cost (lowest index on ties); -1 when
    optimal. *)

val ratio_leave : t -> col:int -> int
(** Minimum-ratio leaving row for entering column [col] (lowest basis
    index among ties); -1 when the column is unbounded. Records
    whether the winning ratio was degenerate — see {!degenerate}. *)

val degenerate : t -> bool
(** Whether the last {!ratio_leave} selected a (numerically) zero
    ratio — the stall signal for the solver's Dantzig-to-Bland
    fallback. *)

val eliminate : t -> row:int -> col:int -> unit
(** Gauss-Jordan pivot on (row, col): scales the pivot row, eliminates
    [col] from every other row, makes [col] basic in [row]. Element
    updates are accounted in the [linprog.kernel_row_ops] counter. *)

val objective_into : t -> float array -> int -> unit
(** Objective value of the current basic solution, written to
    [dst.(at)] (a float return would box on the warm path). *)

val objective : t -> float
(** Boxing convenience for cold paths. *)

val solution_into : t -> nvars:int -> x:float array -> unit
(** Basic solution over the [nvars] structural variables into a
    caller-owned buffer (zero-filled first; negative zeros
    normalised). *)

val drop_row : t -> int -> unit
(** Drop redundant row [i], moving the last active row into its slot. *)
