(** Two-phase primal simplex for dense linear programs.

    Problems are stated over non-negative variables [x >= 0]:
    maximise [c . x] subject to a list of linear constraints, each of the
    form [a . x (<= | >= | =) b]. The implementation uses Bland's
    anti-cycling rule throughout, so it terminates on every input; the
    LPs arising from rate-region computations are tiny (fewer than ten
    variables), so no effort is spent on sparsity.

    {b Thread-safety contract:} the solver is pure and re-entrant. All
    tableau state is allocated per call, input [coeffs] arrays are
    copied into the tableau (never mutated), and the module holds no
    result-affecting global mutable state — so any number of domains
    may call {!maximize}, {!minimize} and {!feasible} concurrently, and
    a given input always produces the same output bit-for-bit. The
    parallel sweep engine ([Engine.Pool] / [Rate_region]) relies on
    both properties; see [docs/ENGINE.md].

    {b Telemetry:} every solve updates the [linprog.solves] and
    [linprog.pivots] counters and the [linprog.pivots_per_solve]
    histogram in {!Telemetry.Metrics}. These are atomic, write-only
    observations and never influence the solution path.

    This module is the cold-start reference implementation: every call
    pays for tableau construction and phase 1. Sweeps that solve many
    objectives over one constraint system should use {!Solver}, the
    warm-start engine checked against this module by the QCheck
    suite. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** one coefficient per variable *)
  relation : relation;
  rhs : float;
}

type solution = {
  x : float array;       (** optimal assignment, one entry per variable *)
  objective : float;     (** value of [c . x] at the optimum *)
}

type outcome = Optimal of solution | Unbounded | Infeasible

val constr : float array -> relation -> float -> constr
(** Convenience constructor. *)

val maximize : c:float array -> constrs:constr list -> outcome
(** [maximize ~c ~constrs] solves the LP. All constraint coefficient
    arrays must have the same length as [c]; raises [Invalid_argument]
    otherwise. *)

val minimize : c:float array -> constrs:constr list -> outcome
(** [minimize ~c ~constrs] minimises [c . x]; the reported [objective] is
    the minimum (not its negation). *)

val feasible : constrs:constr list -> nvars:int -> bool
(** [feasible ~constrs ~nvars] decides whether the constraint system has
    any non-negative solution (phase 1 only). *)
