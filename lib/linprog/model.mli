(** A small modelling layer over {!Simplex} with named variables.

    Example: maximise the bidirectional sum rate over phase durations.
    {[
      let m = Model.create () in
      let ra = Model.variable m "Ra" and d1 = Model.variable m "d1" in
      Model.add m ~name:"cut" [ (ra, 1.); (d1, -2.5) ] `Le 0.;
      Model.objective m [ (ra, 1.) ];
      match Model.solve m with
      | Ok sol -> Model.value sol ra
      | Error _ -> ...
    ]} *)

type t
type var
type solution

type failure = [ `Unbounded | `Infeasible ]

val create : unit -> t

val variable : t -> string -> var
(** [variable m name] registers a fresh non-negative variable. Names must
    be unique within a model; raises [Invalid_argument] otherwise. *)

val add : t -> name:string -> (var * float) list -> [ `Le | `Ge | `Eq ] ->
  float -> unit
(** [add m ~name terms rel rhs] adds the constraint
    [sum (coeff * var) rel rhs]. Repeated variables in [terms] have their
    coefficients summed. *)

val objective : t -> (var * float) list -> unit
(** Sets the linear objective (to be maximised). Replaces any previous
    objective. *)

val solve : t -> (solution, failure) result
val solve_min : t -> (solution, failure) result

val value : solution -> var -> float
val objective_value : solution -> float

val var_name : t -> var -> string
val num_vars : t -> int
val num_constraints : t -> int
