(* Flat row-major simplex tableau kernel.

   One contiguous [floatarray] holds the whole m x (ncols + 1) tableau
   (the right-hand side lives in the last column of each row), so the
   elimination, pricing and ratio-test loops walk a single unboxed
   buffer with [unsafe_get]/[unsafe_set] over precomputed row offsets —
   no per-row pointer chase, no bounds checks, and no allocation
   anywhere in the hot operations. The kernel owns every scratch buffer
   a phase needs ([reduced], [cost], [basis], [allowed]); [resize]
   grows them geometrically-never-shrinks, so reloading a system of the
   same shape touches no allocator at all.

   The arithmetic is kept operation-for-operation identical to the
   historical nested-array implementation ([Simplex]'s and [Solver]'s
   pre-flat tableaux): eliminations scale then subtract in the same
   order, and reduced costs are accumulated per column in ascending row
   order, so pivot sequences — and therefore every figure and solver
   output — are bit-for-bit unchanged.

   Safety invariants for the unsafe accesses (maintained by [resize]):
     length a       >= nrows * stride,   stride = ncols + 1
     length basis   >= nrows
     length allowed >= ncols
     length reduced >= ncols,   length cost >= ncols
   and every [row]/[col] argument comes from a loop bounded by
   [nrows]/[ncols]. *)

type t = {
  mutable nrows : int;        (* active rows; rows may be dropped *)
  mutable ncols : int;        (* structural + slack + artificial *)
  mutable stride : int;       (* ncols + 1: rhs at column ncols *)
  mutable a : floatarray;     (* row-major tableau, nrows x stride *)
  mutable basis : int array;  (* basis.(i): column basic in row i *)
  mutable allowed : bool array; (* columns permitted to enter *)
  mutable reduced : floatarray; (* reduced-cost scratch *)
  mutable cost : floatarray;    (* current objective over all columns *)
  mutable degenerate : bool;  (* last ratio test hit a zero ratio *)
}

let eps = 1e-9

(* Element updates spent in elimination loops (each is one multiply +
   one subtract, or one divide on the pivot row): a deterministic flops
   proxy for the kernel, counted once per elimination so the hot loop
   itself stays allocation- and atomic-free. *)
let row_ops_counter = Telemetry.Metrics.counter "linprog.kernel_row_ops"

let create ~nrows ~ncols =
  let stride = ncols + 1 in
  { nrows;
    ncols;
    stride;
    a = Float.Array.make (max 1 (nrows * stride)) 0.;
    basis = Array.make (max 1 nrows) 0;
    allowed = Array.make (max 1 ncols) true;
    reduced = Float.Array.make (max 1 ncols) 0.;
    cost = Float.Array.make (max 1 ncols) 0.;
    degenerate = false;
  }

(* Set the active geometry, growing backing buffers only when the new
   system does not fit the current capacity. Contents are unspecified
   afterwards — callers reload via [clear]/[set]. *)
let resize t ~nrows ~ncols =
  let stride = ncols + 1 in
  if nrows * stride > Float.Array.length t.a then
    t.a <- Float.Array.make (nrows * stride) 0.;
  if nrows > Array.length t.basis then t.basis <- Array.make nrows 0;
  if ncols > Array.length t.allowed then begin
    t.allowed <- Array.make ncols true;
    t.reduced <- Float.Array.make ncols 0.;
    t.cost <- Float.Array.make ncols 0.
  end;
  t.nrows <- nrows;
  t.ncols <- ncols;
  t.stride <- stride

let nrows t = t.nrows
let ncols t = t.ncols

let clear t = Float.Array.fill t.a 0 (t.nrows * t.stride) 0.

let get t i j = Float.Array.unsafe_get t.a ((i * t.stride) + j)
let set t i j v = Float.Array.unsafe_set t.a ((i * t.stride) + j) v
let rhs t i = get t i t.ncols

let basis t i = Array.unsafe_get t.basis i
let set_basis t i b = Array.unsafe_set t.basis i b

let allow_all t = Array.fill t.allowed 0 t.ncols true

let bar_from t j0 =
  for j = j0 to t.ncols - 1 do
    Array.unsafe_set t.allowed j false
  done

(* Load objective coefficients: the first [n] columns from [c], the
   rest (slacks, artificials) zero. *)
let load_cost t c n =
  Float.Array.fill t.cost 0 t.ncols 0.;
  for j = 0 to n - 1 do
    Float.Array.unsafe_set t.cost j (Array.unsafe_get c j)
  done

(* Phase-1 objective: maximise -(sum of artificial columns). *)
let load_phase1_cost t ~first_artificial =
  Float.Array.fill t.cost 0 t.ncols 0.;
  for j = first_artificial to t.ncols - 1 do
    Float.Array.unsafe_set t.cost j (-1.)
  done

(* r_j = c_j - c_B . B^-1 A_j for every column, into [reduced].
   Row-major accumulation: initialise with c_j, then stream each row
   once, subtracting cb * a(i, j) across the row. Per column this
   performs the identical operation sequence (ascending i) as the
   column-major reference loop, so the results are bit-identical —
   while touching the tableau in cache order. Disallowed columns price
   to -inf so they can never enter. *)
let compute_reduced t =
  let n = t.ncols in
  let red = t.reduced and cost = t.cost and a = t.a in
  for j = 0 to n - 1 do
    Float.Array.unsafe_set red j (Float.Array.unsafe_get cost j)
  done;
  for i = 0 to t.nrows - 1 do
    let cb = Float.Array.unsafe_get cost (Array.unsafe_get t.basis i) in
    if cb <> 0. then begin
      let off = i * t.stride in
      for j = 0 to n - 1 do
        Float.Array.unsafe_set red j
          (Float.Array.unsafe_get red j
          -. (cb *. Float.Array.unsafe_get a (off + j)))
      done
    end
  done;
  for j = 0 to n - 1 do
    if not (Array.unsafe_get t.allowed j) then
      Float.Array.unsafe_set red j neg_infinity
  done

(* Bland: lowest-index column with positive reduced cost; -1 = optimal. *)
let price_bland t =
  let n = t.ncols and red = t.reduced in
  let j = ref 0 and found = ref (-1) in
  while !found < 0 && !j < n do
    if Float.Array.unsafe_get red !j > eps then found := !j;
    incr j
  done;
  !found

(* Dantzig: most positive reduced cost, lowest index on ties. *)
let price_dantzig t =
  let n = t.ncols and red = t.reduced in
  let best = ref eps and entering = ref (-1) in
  for j = 0 to n - 1 do
    let r = Float.Array.unsafe_get red j in
    if r > !best then begin
      best := r;
      entering := j
    end
  done;
  !entering

(* Minimum-ratio leaving row for an entering [col]; lowest basis index
   among ties; -1 = unbounded. Sets [degenerate] when the winning ratio
   is (numerically) zero. *)
let ratio_leave t ~col =
  let a = t.a and stride = t.stride and rhs_col = t.ncols in
  let leave = ref (-1) and best = ref infinity in
  for i = 0 to t.nrows - 1 do
    let off = i * stride in
    let ai = Float.Array.unsafe_get a (off + col) in
    if ai > eps then begin
      let ratio = Float.Array.unsafe_get a (off + rhs_col) /. ai in
      if
        ratio < !best -. eps
        || (abs_float (ratio -. !best) <= eps
           && !leave >= 0
           && Array.unsafe_get t.basis i < Array.unsafe_get t.basis !leave)
      then begin
        best := ratio;
        leave := i
      end
    end
  done;
  t.degenerate <- !leave >= 0 && !best <= eps;
  !leave

let degenerate t = t.degenerate

(* Gauss-Jordan elimination on the pivot (row, col): scale the pivot
   row, subtract it from every other row with a non-zero entry in
   [col], and make [col] basic in [row]. Identical arithmetic (and
   operation order) to the historical nested implementation. *)
let eliminate t ~row ~col =
  let a = t.a and stride = t.stride and ncols = t.ncols in
  let roff = row * stride in
  let p = Float.Array.unsafe_get a (roff + col) in
  for j = 0 to ncols do
    Float.Array.unsafe_set a (roff + j)
      (Float.Array.unsafe_get a (roff + j) /. p)
  done;
  let touched = ref 1 in
  for i = 0 to t.nrows - 1 do
    if i <> row then begin
      let off = i * stride in
      let factor = Float.Array.unsafe_get a (off + col) in
      if factor <> 0. then begin
        incr touched;
        for j = 0 to ncols do
          Float.Array.unsafe_set a (off + j)
            (Float.Array.unsafe_get a (off + j)
            -. (factor *. Float.Array.unsafe_get a (roff + j)))
        done
      end
    end
  done;
  Array.unsafe_set t.basis row col;
  Telemetry.Metrics.add row_ops_counter (!touched * stride)

(* Objective of the current basic solution, written into [dst.(at)]
   rather than returned: a float return would box across the module
   boundary, and this runs on the allocation-free warm path. *)
let objective_into t dst at =
  let a = t.a and cost = t.cost and stride = t.stride and rhs_col = t.ncols in
  let acc = ref 0. in
  for i = 0 to t.nrows - 1 do
    let cb = Float.Array.unsafe_get cost (Array.unsafe_get t.basis i) in
    if cb <> 0. then
      acc := !acc +. (cb *. Float.Array.unsafe_get a ((i * stride) + rhs_col))
  done;
  Array.unsafe_set dst at !acc

(* Boxing convenience for cold paths (phase-1 feasibility check). *)
let objective t =
  let b = [| 0. |] in
  objective_into t b 0;
  b.(0)

(* Basic solution over the structural variables, into a caller-owned
   buffer. IEEE negative zeros are normalised so downstream rendering
   never prints "-0" (same policy as the warm solver always had). *)
let solution_into t ~nvars ~x =
  Array.fill x 0 nvars 0.;
  let a = t.a and stride = t.stride and rhs_col = t.ncols in
  for i = 0 to t.nrows - 1 do
    let b = Array.unsafe_get t.basis i in
    if b < nvars then begin
      let v = Float.Array.unsafe_get a ((i * stride) + rhs_col) in
      Array.unsafe_set x b (if v = 0. then 0. else v)
    end
  done

(* Drop redundant row [i] by moving the last active row into its slot
   (value copy — same observable effect as the old row-pointer swap). *)
let drop_row t i =
  let last = t.nrows - 1 in
  if i < last then begin
    Float.Array.blit t.a (last * t.stride) t.a (i * t.stride) t.stride;
    t.basis.(i) <- t.basis.(last)
  end;
  t.nrows <- last
