(* Reusable warm-start simplex engine.

   [Simplex] is the cold-start reference: one call builds a tableau,
   runs phase 1, solves, and throws everything away. A [Solver.t]
   instead owns its tableau (and every scratch buffer) for as long as
   the caller keeps it: the constraint system is loaded once, phase 1
   establishes a feasible basis once, and each [reoptimize ~c] restarts
   phase 2 from the basis the previous solve ended on — feasibility is
   invariant under objective changes, so phase 1 never re-runs on a
   pure objective sweep. [rebuild] swaps in a new constraint system in
   place; when the new system has the same structural shape the old
   optimal basis is refactorised against the fresh coefficients and, if
   it verifies feasible, phase 1 is skipped there too.

   Pricing is Dantzig's rule (most positive reduced cost) for speed,
   with an automatic, sticky fallback to Bland's rule after a run of
   degenerate pivots — Bland cannot cycle, so termination is
   unconditional. All scratch lives in the solver: no per-iteration
   allocation (cf. the [Array.init] in the reference implementation).

   A solver is deliberately NOT re-entrant: it mutates itself on every
   call. Give each domain its own instance (the rate-region layer keys
   instances per domain via [Domain.DLS]); see docs/ENGINE.md. *)

type relation = Simplex.relation = Le | Ge | Eq

let eps = 1e-9

(* Pivot elements this small are treated as singular when refactorising
   a carried basis; below [rhs_tol] a refactorised right-hand side is
   considered infeasible rather than merely degenerate noise. *)
let singular_tol = 1e-7
let rhs_tol = 1e-10

(* Shared with [Simplex] (the registry returns the same handles). *)
let solves_counter = Telemetry.Metrics.counter "linprog.solves"
let pivots_counter = Telemetry.Metrics.counter "linprog.pivots"

let pivots_per_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_solve"

(* Warm-start telemetry: solves that started from a previously optimal
   basis, solves where that let us skip phase 1 entirely, their pivot
   distribution, and the row eliminations spent refactorising carried
   bases (basis factorisation work, not simplex iterations — kept in
   its own counter so the pivot totals stay honest). *)
let warm_solves_counter = Telemetry.Metrics.counter "linprog.warm_solves"
let phase1_skipped_counter = Telemetry.Metrics.counter "linprog.phase1_skipped"

let pivots_per_warm_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_warm_solve"

let refactor_counter = Telemetry.Metrics.counter "linprog.refactor_eliminations"

(* Bytes allocated inside LP entry points while Telemetry.Resource is
   enabled; [linprog.alloc_bytes / linprog.solves] is the per-solve
   allocation footprint. Shared with Simplex.maximize. *)
let alloc_bytes_counter = Telemetry.Metrics.counter "linprog.alloc_bytes"

let record_alloc b0 =
  Telemetry.Metrics.add alloc_bytes_counter
    (int_of_float (Float.max 0. (Gc.allocated_bytes () -. b0)))

type status = Sat | Unsat

type t = {
  nvars : int;
  (* geometry of the currently loaded (normalised) system *)
  mutable m : int;                 (* constraint rows as loaded *)
  mutable nrows : int;             (* active rows (redundant rows drop) *)
  mutable ncols : int;
  mutable first_artificial : int;
  mutable shape : int array;       (* per-row normalised relation tag *)
  (* tableau + preallocated scratch, grown on demand by [rebuild] *)
  mutable rows : float array array; (* m x (ncols + 1), rhs in last col *)
  mutable basis : int array;
  mutable allowed : bool array;
  mutable reduced : float array;
  mutable cost : float array;
  mutable saved_basis : int array; (* scratch for basis carry *)
  mutable row_done : bool array;   (* scratch for refactorisation *)
  (* solve-to-solve state *)
  mutable status : status;
  mutable pending_pivots : int;    (* pivots since the last recorded solve *)
  mutable warm_next : bool;        (* next solve starts from a prior basis *)
  mutable skip1_next : bool;       (* ... and phase 1 was skipped for it *)
  stall_limit : int;
}

let nvars t = t.nvars

(* ------------------------------------------------------------------ *)
(* Tableau construction                                                *)
(* ------------------------------------------------------------------ *)

let rel_tag = function Le -> 0 | Ge -> 1 | Eq -> 2

let normalise nvars constrs =
  List.map
    (fun (c : Simplex.constr) ->
      if Array.length c.Simplex.coeffs <> nvars then
        invalid_arg "Linprog.Solver: constraint arity mismatch";
      if c.Simplex.rhs < 0. then
        { Simplex.coeffs = Array.map (fun a -> -.a) c.Simplex.coeffs;
          relation =
            (match c.Simplex.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          rhs = -.c.Simplex.rhs;
        }
      else c)
    constrs

let layout nvars normalised =
  let m = List.length normalised in
  let n_slack =
    List.length (List.filter (fun c -> c.Simplex.relation <> Eq) normalised)
  in
  let first_artificial = nvars + n_slack in
  let n_art =
    List.length (List.filter (fun c -> c.Simplex.relation <> Le) normalised)
  in
  (m, first_artificial, first_artificial + n_art)

(* (Re)load the tableau with [normalised], starting every non-basic
   slack/artificial row from the standard phase-1 basis. Arrays must
   already be sized for the system's layout. *)
let fill t normalised =
  let ncols = t.ncols in
  Array.iteri
    (fun i r ->
      if i < t.m then Array.fill r 0 (ncols + 1) 0.)
    t.rows;
  let slack = ref t.nvars and art = ref t.first_artificial in
  List.iteri
    (fun i (c : Simplex.constr) ->
      let r = t.rows.(i) in
      Array.blit c.Simplex.coeffs 0 r 0 t.nvars;
      r.(ncols) <- c.Simplex.rhs;
      t.shape.(i) <- rel_tag c.Simplex.relation;
      (match c.Simplex.relation with
      | Le ->
        r.(!slack) <- 1.;
        t.basis.(i) <- !slack;
        incr slack
      | Ge ->
        r.(!slack) <- -1.;
        incr slack;
        r.(!art) <- 1.;
        t.basis.(i) <- !art;
        incr art
      | Eq ->
        r.(!art) <- 1.;
        t.basis.(i) <- !art;
        incr art))
    normalised;
  t.nrows <- t.m;
  Array.fill t.allowed 0 ncols true

(* ------------------------------------------------------------------ *)
(* Pivoting                                                            *)
(* ------------------------------------------------------------------ *)

(* Identical arithmetic to [Simplex.pivot]; only the accounting differs
   (pivots accumulate until the next recorded solve). *)
let eliminate t ~row ~col =
  let r = t.rows.(row) in
  let p = r.(col) in
  for j = 0 to t.ncols do
    r.(j) <- r.(j) /. p
  done;
  for i = 0 to t.nrows - 1 do
    if i <> row then begin
      let factor = t.rows.(i).(col) in
      if factor <> 0. then
        for j = 0 to t.ncols do
          t.rows.(i).(j) <- t.rows.(i).(j) -. (factor *. r.(j))
        done
    end
  done;
  t.basis.(row) <- col

let pivot t ~row ~col =
  t.pending_pivots <- t.pending_pivots + 1;
  eliminate t ~row ~col

let compute_reduced t cost =
  for j = 0 to t.ncols - 1 do
    t.reduced.(j) <-
      (if not t.allowed.(j) then neg_infinity
       else begin
         let acc = ref cost.(j) in
         for i = 0 to t.nrows - 1 do
           let cb = cost.(t.basis.(i)) in
           if cb <> 0. then acc := !acc -. (cb *. t.rows.(i).(j))
         done;
         !acc
       end)
  done

(* One simplex phase from the current basis. Entering column: Dantzig
   (largest reduced cost, lowest index on ties) until [stall_limit]
   consecutive degenerate pivots, then Bland (lowest eligible index) for
   the rest of the phase — Bland cannot cycle, so the phase terminates.
   Leaving row: minimum ratio, lowest basis index among ties (same rule
   as the reference implementation). *)
let run_phase t cost =
  let bland = ref false and stall = ref 0 in
  let rec loop iter =
    if iter > 10_000 then failwith "Linprog.Solver: iteration limit exceeded";
    compute_reduced t cost;
    let r = t.reduced in
    let entering = ref (-1) in
    if !bland then (
      try
        for j = 0 to t.ncols - 1 do
          if r.(j) > eps then begin
            entering := j;
            raise Exit
          end
        done
      with Exit -> ())
    else begin
      let best = ref eps in
      for j = 0 to t.ncols - 1 do
        if r.(j) > !best then begin
          best := r.(j);
          entering := j
        end
      done
    end;
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leave = ref (-1) and best = ref infinity in
      for i = 0 to t.nrows - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(t.ncols) /. a in
          if
            ratio < !best -. eps
            || (abs_float (ratio -. !best) <= eps
               && !leave >= 0
               && t.basis.(i) < t.basis.(!leave))
          then begin
            best := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        if !best <= eps then begin
          incr stall;
          if !stall > t.stall_limit then bland := true
        end
        else stall := 0;
        pivot t ~row:!leave ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let objective_value t cost =
  let acc = ref 0. in
  for i = 0 to t.nrows - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then acc := !acc +. (cb *. t.rows.(i).(t.ncols))
  done;
  !acc

let drop_row t i =
  if i < t.nrows - 1 then begin
    t.rows.(i) <- t.rows.(t.nrows - 1);
    t.basis.(i) <- t.basis.(t.nrows - 1)
  end;
  t.nrows <- t.nrows - 1

let drive_out_artificials t =
  let fa = t.first_artificial in
  let i = ref 0 in
  while !i < t.nrows do
    if t.basis.(!i) >= fa then begin
      let col = ref (-1) in
      (try
         for j = 0 to fa - 1 do
           if abs_float t.rows.(!i).(j) > eps then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then begin
        pivot t ~row:!i ~col:!col;
        incr i
      end
      else drop_row t !i
    end
    else incr i
  done

(* Phase 1 from the standard artificial basis already loaded by [fill]:
   maximise -(sum of artificials), then drive surviving artificials out
   of the basis and bar them from re-entering. *)
let phase1 t =
  Array.fill t.cost 0 t.ncols 0.;
  for j = t.first_artificial to t.ncols - 1 do
    t.cost.(j) <- -1.
  done;
  (match run_phase t t.cost with
  | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
  | `Optimal -> ());
  if objective_value t t.cost < -.eps then t.status <- Unsat
  else begin
    drive_out_artificials t;
    for j = t.first_artificial to t.ncols - 1 do
      t.allowed.(j) <- false
    done;
    t.status <- Sat
  end

(* ------------------------------------------------------------------ *)
(* Construction and in-place rebuild                                   *)
(* ------------------------------------------------------------------ *)

let create_impl ~nvars ~constrs =
  if nvars <= 0 then invalid_arg "Linprog.Solver.create: nvars <= 0";
  let normalised = normalise nvars constrs in
  let m, first_artificial, ncols = layout nvars normalised in
  let t =
    { nvars;
      m;
      nrows = m;
      ncols;
      first_artificial;
      shape = Array.make m 0;
      rows = Array.make_matrix m (ncols + 1) 0.;
      basis = Array.make m 0;
      allowed = Array.make ncols true;
      reduced = Array.make ncols 0.;
      cost = Array.make ncols 0.;
      saved_basis = Array.make m 0;
      row_done = Array.make m false;
      status = Sat;
      pending_pivots = 0;
      warm_next = false;
      skip1_next = false;
      stall_limit = 20;
    }
  in
  fill t normalised;
  phase1 t;
  t

(* Refactorise the carried basis against freshly loaded rows: classic
   Gauss-Jordan with full pivoting restricted to the carried columns.
   Row eliminations here are basis factorisation, not simplex
   iterations — they count into [linprog.refactor_eliminations], never
   [linprog.pivots]. Returns false on a (near-)singular basis. *)
let refactor_basis t =
  let m = t.m in
  Array.fill t.row_done 0 m false;
  let ok = ref true in
  for step = 0 to m - 1 do
    if !ok then begin
      (* unconsumed rows: [row_done] is false; unconsumed carried
         columns: slots [step .. m-1] of [saved_basis] *)
      let best = ref singular_tol and br = ref (-1) and bc = ref (-1) in
      for i = 0 to m - 1 do
        if not t.row_done.(i) then
          for k = step to m - 1 do
            let a = abs_float t.rows.(i).(t.saved_basis.(k)) in
            if a > !best then begin
              best := a;
              br := i;
              bc := k
            end
          done
      done;
      if !br < 0 then ok := false
      else begin
        Telemetry.Metrics.incr refactor_counter;
        eliminate t ~row:!br ~col:t.saved_basis.(!bc);
        t.row_done.(!br) <- true;
        let tmp = t.saved_basis.(!bc) in
        t.saved_basis.(!bc) <- t.saved_basis.(step);
        t.saved_basis.(step) <- tmp
      end
    end
  done;
  !ok

let rebuild_impl t ~constrs =
  let normalised = normalise t.nvars constrs in
  let m, first_artificial, ncols = layout t.nvars normalised in
  let same_shape =
    t.status = Sat && t.nrows = t.m && m = t.m
    && first_artificial = t.first_artificial
    && ncols = t.ncols
    && List.for_all2
         (fun (c : Simplex.constr) i -> rel_tag c.Simplex.relation = t.shape.(i))
         normalised
         (List.init m Fun.id)
  in
  (* a carried basis never contains artificials (drive-out guarantees
     it while nrows = m), so it is a carry candidate whenever the
     column layout is unchanged *)
  let carry = same_shape in
  if carry then Array.blit t.basis 0 t.saved_basis 0 m;
  if m <> t.m || ncols <> t.ncols then begin
    t.rows <- Array.make_matrix m (ncols + 1) 0.;
    t.basis <- Array.make m 0;
    t.allowed <- Array.make (max 1 ncols) true;
    t.reduced <- Array.make (max 1 ncols) 0.;
    t.cost <- Array.make (max 1 ncols) 0.;
    t.shape <- Array.make m 0;
    t.saved_basis <- Array.make m 0;
    t.row_done <- Array.make m false
  end;
  t.m <- m;
  t.ncols <- ncols;
  t.first_artificial <- first_artificial;
  fill t normalised;
  let carried =
    carry
    && refactor_basis t
    &&
    let feas = ref true in
    for i = 0 to t.nrows - 1 do
      if t.rows.(i).(t.ncols) < -.rhs_tol then feas := false
    done;
    !feas
  in
  if carried then begin
    (* the carried basis is feasible for the new system: phase 1 is
       unnecessary, artificials stay barred *)
    for j = t.first_artificial to t.ncols - 1 do
      t.allowed.(j) <- false
    done;
    t.status <- Sat;
    t.warm_next <- true;
    t.skip1_next <- true
  end
  else begin
    if carry then fill t normalised (* refactorisation clobbered the rows *);
    phase1 t;
    t.warm_next <- false;
    t.skip1_next <- false
  end

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

let record_solve t =
  Telemetry.Metrics.incr solves_counter;
  Telemetry.Metrics.add pivots_counter t.pending_pivots;
  Telemetry.Metrics.observe pivots_per_solve (float_of_int t.pending_pivots);
  if t.warm_next then begin
    Telemetry.Metrics.incr warm_solves_counter;
    Telemetry.Metrics.observe pivots_per_warm_solve
      (float_of_int t.pending_pivots)
  end;
  if t.skip1_next then Telemetry.Metrics.incr phase1_skipped_counter;
  t.pending_pivots <- 0;
  (* anything solved on this instance from here on starts from the
     basis the solve above ended on *)
  t.warm_next <- true;
  t.skip1_next <- true

(* IEEE negative zeros can surface in basic-variable values when a
   pivot path approaches a vertex coordinate from below; normalise them
   so downstream rendering never prints "-0". *)
let clean v = if v = 0. then 0. else v

let reoptimize_impl t ~c =
  if Array.length c <> t.nvars then
    invalid_arg "Linprog.Solver.reoptimize: objective arity mismatch";
  match t.status with
  | Unsat ->
    record_solve t;
    Simplex.Infeasible
  | Sat ->
    Array.fill t.cost 0 t.ncols 0.;
    Array.blit c 0 t.cost 0 t.nvars;
    (match run_phase t t.cost with
    | `Unbounded ->
      record_solve t;
      Simplex.Unbounded
    | `Optimal ->
      let x = Array.make t.nvars 0. in
      for i = 0 to t.nrows - 1 do
        if t.basis.(i) < t.nvars then
          x.(t.basis.(i)) <- clean t.rows.(i).(t.ncols)
      done;
      let objective = clean (objective_value t t.cost) in
      record_solve t;
      Simplex.Optimal { Simplex.x; objective })

(* Allocation-accounting wrappers around the entry points. The
   disabled path is the plain call — one atomic load, no closure. *)
let create ~nvars ~constrs =
  if not (Telemetry.Resource.enabled ()) then create_impl ~nvars ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> create_impl ~nvars ~constrs)
  end

let rebuild t ~constrs =
  if not (Telemetry.Resource.enabled ()) then rebuild_impl t ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> rebuild_impl t ~constrs)
  end

let reoptimize t ~c =
  if not (Telemetry.Resource.enabled ()) then reoptimize_impl t ~c
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> reoptimize_impl t ~c)
  end

let solve_many t cs = List.map (fun c -> reoptimize t ~c) cs

let feasible t =
  let sat = t.status = Sat in
  record_solve t;
  sat
