(* Reusable warm-start simplex engine.

   [Simplex] is the cold-start reference: one call builds a tableau,
   runs phase 1, solves, and throws everything away. A [Solver.t]
   instead owns its tableau (and every scratch buffer) for as long as
   the caller keeps it: the constraint system is loaded once, phase 1
   establishes a feasible basis once, and each [reoptimize ~c] restarts
   phase 2 from the basis the previous solve ended on — feasibility is
   invariant under objective changes, so phase 1 never re-runs on a
   pure objective sweep. [rebuild] swaps in a new constraint system in
   place; when the new system has the same structural shape the old
   optimal basis is refactorised against the fresh coefficients and, if
   it verifies feasible, phase 1 is skipped there too.

   The numeric core is [Kernel]: a single flat row-major [floatarray]
   tableau with allocation-free elimination/pricing/ratio loops. On top
   of it this module keeps only the solve-to-solve state machine
   (phases, basis carry, telemetry). [reoptimize] preserves the
   original allocating API; [reoptimize_into] is the zero-allocation
   variant — solution and objective land in a caller-owned buffer and a
   warm solve allocates zero words, which the [linprog.alloc_bytes]
   budget in `bidir check` pins.

   Pricing is Dantzig's rule (most positive reduced cost) for speed,
   with an automatic, sticky fallback to Bland's rule after a run of
   degenerate pivots — Bland cannot cycle, so termination is
   unconditional.

   A solver is deliberately NOT re-entrant: it mutates itself on every
   call. Give each domain its own instance (the rate-region layer keys
   instances per domain via [Domain.DLS]); see docs/ENGINE.md. *)

type relation = Simplex.relation = Le | Ge | Eq

let eps = 1e-9

(* Pivot elements this small are treated as singular when refactorising
   a carried basis; below [rhs_tol] a refactorised right-hand side is
   considered infeasible rather than merely degenerate noise. *)
let singular_tol = 1e-7
let rhs_tol = 1e-10

(* Shared with [Simplex] (the registry returns the same handles). *)
let solves_counter = Telemetry.Metrics.counter "linprog.solves"
let pivots_counter = Telemetry.Metrics.counter "linprog.pivots"

let pivots_per_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_solve"

(* Warm-start telemetry: solves that started from a previously optimal
   basis, solves where that let us skip phase 1 entirely, their pivot
   distribution, and the row eliminations spent refactorising carried
   bases (basis factorisation work, not simplex iterations — kept in
   its own counter so the pivot totals stay honest). *)
let warm_solves_counter = Telemetry.Metrics.counter "linprog.warm_solves"
let phase1_skipped_counter = Telemetry.Metrics.counter "linprog.phase1_skipped"

let pivots_per_warm_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_warm_solve"

let refactor_counter = Telemetry.Metrics.counter "linprog.refactor_eliminations"

(* Bytes allocated inside LP entry points while Telemetry.Resource is
   enabled; [linprog.alloc_bytes / linprog.solves] is the per-solve
   allocation footprint. Shared with Simplex.maximize. *)
let alloc_bytes_counter = Telemetry.Metrics.counter "linprog.alloc_bytes"

let record_alloc b0 =
  Telemetry.Metrics.add alloc_bytes_counter
    (int_of_float (Float.max 0. (Gc.allocated_bytes () -. b0)))

type status = Sat | Unsat

type verdict = Optimal | Unbounded | Infeasible

type t = {
  nvars : int;
  (* geometry of the currently loaded (normalised) system *)
  mutable m : int;                 (* constraint rows as loaded *)
  mutable first_artificial : int;
  mutable shape : int array;       (* per-row normalised relation tag *)
  (* the flat tableau + all pricing scratch (grown on demand) *)
  k : Kernel.t;
  mutable saved_basis : int array; (* scratch for basis carry *)
  mutable row_done : bool array;   (* scratch for refactorisation *)
  (* solve-to-solve state *)
  mutable status : status;
  mutable pending_pivots : int;    (* pivots since the last recorded solve *)
  mutable warm_next : bool;        (* next solve starts from a prior basis *)
  mutable skip1_next : bool;       (* ... and phase 1 was skipped for it *)
  stall_limit : int;
}

let nvars t = t.nvars

(* ------------------------------------------------------------------ *)
(* Tableau construction                                                *)
(* ------------------------------------------------------------------ *)

let rel_tag = function Le -> 0 | Ge -> 1 | Eq -> 2

let normalise nvars constrs =
  List.map
    (fun (c : Simplex.constr) ->
      if Array.length c.Simplex.coeffs <> nvars then
        invalid_arg "Linprog.Solver: constraint arity mismatch";
      if c.Simplex.rhs < 0. then
        { Simplex.coeffs = Array.map (fun a -> -.a) c.Simplex.coeffs;
          relation =
            (match c.Simplex.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
          rhs = -.c.Simplex.rhs;
        }
      else c)
    constrs

let layout nvars normalised =
  let m = List.length normalised in
  let n_slack =
    List.length (List.filter (fun c -> c.Simplex.relation <> Eq) normalised)
  in
  let first_artificial = nvars + n_slack in
  let n_art =
    List.length (List.filter (fun c -> c.Simplex.relation <> Le) normalised)
  in
  (m, first_artificial, first_artificial + n_art)

(* (Re)load the kernel with [normalised] at geometry (t.m, ncols),
   starting every row from the standard phase-1 basis. *)
let fill t normalised ncols =
  let k = t.k in
  Kernel.resize k ~nrows:t.m ~ncols;
  Kernel.clear k;
  let slack = ref t.nvars and art = ref t.first_artificial in
  List.iteri
    (fun i (c : Simplex.constr) ->
      for j = 0 to t.nvars - 1 do
        Kernel.set k i j c.Simplex.coeffs.(j)
      done;
      Kernel.set k i ncols c.Simplex.rhs;
      t.shape.(i) <- rel_tag c.Simplex.relation;
      (match c.Simplex.relation with
      | Le ->
        Kernel.set k i !slack 1.;
        Kernel.set_basis k i !slack;
        incr slack
      | Ge ->
        Kernel.set k i !slack (-1.);
        incr slack;
        Kernel.set k i !art 1.;
        Kernel.set_basis k i !art;
        incr art
      | Eq ->
        Kernel.set k i !art 1.;
        Kernel.set_basis k i !art;
        incr art))
    normalised;
  Kernel.allow_all k

(* ------------------------------------------------------------------ *)
(* Pivoting                                                            *)
(* ------------------------------------------------------------------ *)

let pivot t ~row ~col =
  t.pending_pivots <- t.pending_pivots + 1;
  Kernel.eliminate t.k ~row ~col

(* One simplex phase from the current basis against the kernel's loaded
   cost. Entering column: Dantzig (largest reduced cost, lowest index on
   ties) until [stall_limit] consecutive degenerate pivots, then Bland
   (lowest eligible index) for the rest of the phase — Bland cannot
   cycle, so the phase terminates. Leaving row: minimum ratio, lowest
   basis index among ties (same rule as the reference implementation). *)
(* Iterative (no local recursive closure: a closure plus the refs it
   captures would be the only heap blocks left on the warm path).
   State: 0 = running, 1 = optimal, 2 = unbounded. *)
let run_phase t =
  let k = t.k in
  let bland = ref false and stall = ref 0 in
  let state = ref 0 and iter = ref 0 in
  while !state = 0 do
    if !iter > 10_000 then failwith "Linprog.Solver: iteration limit exceeded";
    incr iter;
    Kernel.compute_reduced k;
    let entering =
      if !bland then Kernel.price_bland k else Kernel.price_dantzig k
    in
    if entering < 0 then state := 1
    else begin
      let leave = Kernel.ratio_leave k ~col:entering in
      if leave < 0 then state := 2
      else begin
        if Kernel.degenerate k then begin
          incr stall;
          if !stall > t.stall_limit then bland := true
        end
        else stall := 0;
        pivot t ~row:leave ~col:entering
      end
    end
  done;
  if !state = 1 then `Optimal else `Unbounded

let drive_out_artificials t =
  let k = t.k in
  let fa = t.first_artificial in
  let i = ref 0 in
  while !i < Kernel.nrows k do
    if Kernel.basis k !i >= fa then begin
      let col = ref (-1) and j = ref 0 in
      while !col < 0 && !j < fa do
        if abs_float (Kernel.get k !i !j) > eps then col := !j;
        incr j
      done;
      if !col >= 0 then begin
        pivot t ~row:!i ~col:!col;
        incr i
      end
      else Kernel.drop_row k !i
    end
    else incr i
  done

(* Phase 1 from the standard artificial basis already loaded by [fill]:
   maximise -(sum of artificials), then drive surviving artificials out
   of the basis and bar them from re-entering. *)
let phase1 t =
  Kernel.load_phase1_cost t.k ~first_artificial:t.first_artificial;
  (match run_phase t with
  | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
  | `Optimal -> ());
  if Kernel.objective t.k < -.eps then t.status <- Unsat
  else begin
    drive_out_artificials t;
    Kernel.bar_from t.k t.first_artificial;
    t.status <- Sat
  end

(* ------------------------------------------------------------------ *)
(* Construction and in-place rebuild                                   *)
(* ------------------------------------------------------------------ *)

let create_impl ~nvars ~constrs =
  if nvars <= 0 then invalid_arg "Linprog.Solver.create: nvars <= 0";
  let normalised = normalise nvars constrs in
  let m, first_artificial, ncols = layout nvars normalised in
  let t =
    { nvars;
      m;
      first_artificial;
      shape = Array.make m 0;
      k = Kernel.create ~nrows:m ~ncols;
      saved_basis = Array.make m 0;
      row_done = Array.make m false;
      status = Sat;
      pending_pivots = 0;
      warm_next = false;
      skip1_next = false;
      stall_limit = 20;
    }
  in
  fill t normalised ncols;
  phase1 t;
  t

(* Refactorise the carried basis against freshly loaded rows: classic
   Gauss-Jordan with full pivoting restricted to the carried columns.
   Row eliminations here are basis factorisation, not simplex
   iterations — they count into [linprog.refactor_eliminations], never
   [linprog.pivots]. Returns false on a (near-)singular basis. *)
let refactor_basis t =
  let k = t.k in
  let m = t.m in
  Array.fill t.row_done 0 m false;
  let ok = ref true in
  for step = 0 to m - 1 do
    if !ok then begin
      (* unconsumed rows: [row_done] is false; unconsumed carried
         columns: slots [step .. m-1] of [saved_basis] *)
      let best = ref singular_tol and br = ref (-1) and bc = ref (-1) in
      for i = 0 to m - 1 do
        if not t.row_done.(i) then
          for c = step to m - 1 do
            let a = abs_float (Kernel.get k i t.saved_basis.(c)) in
            if a > !best then begin
              best := a;
              br := i;
              bc := c
            end
          done
      done;
      if !br < 0 then ok := false
      else begin
        Telemetry.Metrics.incr refactor_counter;
        Kernel.eliminate k ~row:!br ~col:t.saved_basis.(!bc);
        t.row_done.(!br) <- true;
        let tmp = t.saved_basis.(!bc) in
        t.saved_basis.(!bc) <- t.saved_basis.(step);
        t.saved_basis.(step) <- tmp
      end
    end
  done;
  !ok

let rebuild_impl t ~constrs =
  let normalised = normalise t.nvars constrs in
  let m, first_artificial, ncols = layout t.nvars normalised in
  let same_shape =
    t.status = Sat
    && Kernel.nrows t.k = t.m
    && m = t.m
    && first_artificial = t.first_artificial
    && ncols = Kernel.ncols t.k
    && List.for_all2
         (fun (c : Simplex.constr) i -> rel_tag c.Simplex.relation = t.shape.(i))
         normalised
         (List.init m Fun.id)
  in
  (* a carried basis never contains artificials (drive-out guarantees
     it while nrows = m), so it is a carry candidate whenever the
     column layout is unchanged *)
  let carry = same_shape in
  if carry then
    for i = 0 to m - 1 do
      t.saved_basis.(i) <- Kernel.basis t.k i
    done;
  if m <> t.m then begin
    t.shape <- Array.make m 0;
    t.saved_basis <- Array.make m 0;
    t.row_done <- Array.make m false
  end;
  t.m <- m;
  t.first_artificial <- first_artificial;
  fill t normalised ncols;
  let carried =
    carry
    && refactor_basis t
    &&
    let feas = ref true in
    for i = 0 to Kernel.nrows t.k - 1 do
      if Kernel.rhs t.k i < -.rhs_tol then feas := false
    done;
    !feas
  in
  if carried then begin
    (* the carried basis is feasible for the new system: phase 1 is
       unnecessary, artificials stay barred *)
    Kernel.bar_from t.k t.first_artificial;
    t.status <- Sat;
    t.warm_next <- true;
    t.skip1_next <- true
  end
  else begin
    if carry then fill t normalised ncols (* refactorisation clobbered the rows *);
    phase1 t;
    t.warm_next <- false;
    t.skip1_next <- false
  end

(* ------------------------------------------------------------------ *)
(* Solving                                                             *)
(* ------------------------------------------------------------------ *)

(* Counters plus the per-solve pivot distributions. [observe_int] keeps
   this allocation-free, so recording rides inside the zero-alloc warm
   path without widening its footprint. *)
let record_solve t =
  Telemetry.Metrics.incr solves_counter;
  Telemetry.Metrics.add pivots_counter t.pending_pivots;
  Telemetry.Metrics.observe_int pivots_per_solve t.pending_pivots;
  if t.warm_next then begin
    Telemetry.Metrics.incr warm_solves_counter;
    Telemetry.Metrics.observe_int pivots_per_warm_solve t.pending_pivots
  end;
  if t.skip1_next then Telemetry.Metrics.incr phase1_skipped_counter;
  t.pending_pivots <- 0;
  (* anything solved on this instance from here on starts from the
     basis the solve above ended on *)
  t.warm_next <- true;
  t.skip1_next <- true

(* IEEE negative zeros can surface in basic-variable values when a
   pivot path approaches a vertex coordinate from below; normalise them
   so downstream rendering never prints "-0". ([Kernel.solution_into]
   applies the same policy to the solution vector.) *)
let clean v = if v = 0. then 0. else v

let reoptimize_impl t ~c =
  if Array.length c <> t.nvars then
    invalid_arg "Linprog.Solver.reoptimize: objective arity mismatch";
  match t.status with
  | Unsat ->
    record_solve t;
    Simplex.Infeasible
  | Sat ->
    Kernel.load_cost t.k c t.nvars;
    (match run_phase t with
    | `Unbounded ->
      record_solve t;
      Simplex.Unbounded
    | `Optimal ->
      let x = Array.make t.nvars 0. in
      Kernel.solution_into t.k ~nvars:t.nvars ~x;
      let objective = clean (Kernel.objective t.k) in
      record_solve t;
      Simplex.Optimal { Simplex.x; objective })

(* The zero-allocation warm path: same state machine as [reoptimize],
   but the solution lands in the caller-owned [x] (objective in
   [x.(nvars)]) and the verdict is a constant constructor — a warm
   solve allocates zero words, telemetry included. *)
let reoptimize_into_impl t ~c ~x =
  if Array.length c <> t.nvars then
    invalid_arg "Linprog.Solver.reoptimize_into: objective arity mismatch";
  if Array.length x < t.nvars + 1 then
    invalid_arg "Linprog.Solver.reoptimize_into: x must have nvars + 1 slots";
  match t.status with
  | Unsat ->
    record_solve t;
    Infeasible
  | Sat ->
    Kernel.load_cost t.k c t.nvars;
    (match run_phase t with
    | `Unbounded ->
      record_solve t;
      Unbounded
    | `Optimal ->
      Kernel.solution_into t.k ~nvars:t.nvars ~x;
      Kernel.objective_into t.k x t.nvars;
      let v = Array.unsafe_get x t.nvars in
      if v = 0. then Array.unsafe_set x t.nvars 0.;
      record_solve t;
      Optimal)

(* Allocation-accounting wrappers around the entry points. The
   disabled path is the plain call — one atomic load, no closure. *)
let create ~nvars ~constrs =
  if not (Telemetry.Resource.enabled ()) then create_impl ~nvars ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> create_impl ~nvars ~constrs)
  end

let rebuild t ~constrs =
  if not (Telemetry.Resource.enabled ()) then rebuild_impl t ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> rebuild_impl t ~constrs)
  end

let reoptimize t ~c =
  if not (Telemetry.Resource.enabled ()) then reoptimize_impl t ~c
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () -> record_alloc b0)
      (fun () -> reoptimize_impl t ~c)
  end

(* No [Fun.protect] here: the two closures it would allocate are the
   difference between ~0 and ~60 bytes per accounted warm solve. The
   impl only raises on caller errors (arity), where losing one
   accounting delta is harmless. *)
let reoptimize_into t ~c ~x =
  if not (Telemetry.Resource.enabled ()) then reoptimize_into_impl t ~c ~x
  else begin
    let b0 = Gc.allocated_bytes () in
    let r = reoptimize_into_impl t ~c ~x in
    record_alloc b0;
    r
  end

let solve_many t cs = List.map (fun c -> reoptimize t ~c) cs

let feasible t =
  let sat = t.status = Sat in
  record_solve t;
  sat
