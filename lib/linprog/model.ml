type var = int

type row = { cname : string; terms : (var * float) list; rel : Simplex.relation; rhs : float }

type t = {
  mutable names : string list;  (* reversed registration order *)
  mutable nvars : int;
  mutable rows : row list;      (* reversed *)
  mutable obj : (var * float) list;
}

type solution = { x : float array; objective : float }

type failure = [ `Unbounded | `Infeasible ]

let create () = { names = []; nvars = 0; rows = []; obj = [] }

let variable m name =
  if List.mem name m.names then
    invalid_arg ("Model.variable: duplicate variable name " ^ name);
  let v = m.nvars in
  m.names <- name :: m.names;
  m.nvars <- m.nvars + 1;
  v

let relation_of = function `Le -> Simplex.Le | `Ge -> Simplex.Ge | `Eq -> Simplex.Eq

let add m ~name terms rel rhs =
  m.rows <- { cname = name; terms; rel = relation_of rel; rhs } :: m.rows

let objective m terms = m.obj <- terms

let dense n terms =
  let a = Array.make n 0. in
  List.iter
    (fun (v, coef) ->
      if v < 0 || v >= n then invalid_arg "Model: variable out of range";
      a.(v) <- a.(v) +. coef)
    terms;
  a

let to_simplex m =
  let constrs =
    List.rev_map
      (fun r ->
        Simplex.constr (dense m.nvars r.terms) r.rel r.rhs)
      m.rows
  in
  (dense m.nvars m.obj, constrs)

let solve m =
  let c, constrs = to_simplex m in
  match Simplex.maximize ~c ~constrs with
  | Simplex.Optimal s ->
    Ok { x = s.Simplex.x; objective = s.Simplex.objective }
  | Simplex.Unbounded -> Error `Unbounded
  | Simplex.Infeasible -> Error `Infeasible

let solve_min m =
  let c, constrs = to_simplex m in
  match Simplex.minimize ~c ~constrs with
  | Simplex.Optimal s ->
    Ok { x = s.Simplex.x; objective = s.Simplex.objective }
  | Simplex.Unbounded -> Error `Unbounded
  | Simplex.Infeasible -> Error `Infeasible

let value sol v = sol.x.(v)
let objective_value sol = sol.objective

let var_name m v =
  let names = Array.of_list (List.rev m.names) in
  names.(v)

let num_vars m = m.nvars
let num_constraints m = List.length m.rows
