type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type solution = { x : float array; objective : float }

type outcome = Optimal of solution | Unbounded | Infeasible

let constr coeffs relation rhs = { coeffs; relation; rhs }

let eps = 1e-9

(* The tableau is a flat row-major [Kernel.t] (rhs in the last column;
   [Kernel.basis] tracks the column basic in each row, and artificials
   are disallowed in phase 2 via [Kernel.bar_from]). Each call builds a
   fresh kernel and throws it away — all state stays per-call, so the
   purity/re-entrancy contract documented in docs/ENGINE.md is
   unaffected — but within a call nothing allocates per iteration any
   more (the reduced-cost scratch lives in the kernel; the historical
   implementation rebuilt it with [Array.init] every pivot). *)
type tableau = {
  k : Kernel.t;
  mutable pivots : int;       (* pivot operations over both phases *)
}

(* Telemetry only observes (counters and a per-solve pivot histogram). *)
let solves_counter = Telemetry.Metrics.counter "linprog.solves"
let pivots_counter = Telemetry.Metrics.counter "linprog.pivots"

let pivots_per_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_solve"

(* Bytes allocated inside LP solves while Telemetry.Resource is
   enabled (shared with the warm-start Solver's entry points);
   [linprog.alloc_bytes / linprog.solves] is allocations per solve. *)
let alloc_bytes_counter = Telemetry.Metrics.counter "linprog.alloc_bytes"

let record_solve t =
  Telemetry.Metrics.incr solves_counter;
  Telemetry.Metrics.add pivots_counter t.pivots;
  Telemetry.Metrics.observe_int pivots_per_solve t.pivots

let pivot t ~row ~col =
  t.pivots <- t.pivots + 1;
  Kernel.eliminate t.k ~row ~col

(* One simplex phase: maximise the kernel's loaded cost from the
   current basic feasible solution. Bland's rule: entering =
   lowest-index column with positive reduced cost; leaving = lowest
   basis index among ratio-test ties. *)
let run_phase t =
  let rec loop iter =
    if iter > 10_000 then failwith "Simplex: iteration limit exceeded";
    Kernel.compute_reduced t.k;
    let entering = Kernel.price_bland t.k in
    if entering < 0 then `Optimal
    else begin
      let leave = Kernel.ratio_leave t.k ~col:entering in
      if leave < 0 then `Unbounded
      else begin
        pivot t ~row:leave ~col:entering;
        loop (iter + 1)
      end
    end
  in
  loop 0

(* Remove artificial variables from the basis after phase 1. A basic
   artificial sits at value zero; pivot it out on any eligible column, or
   drop the (redundant) row when no such column exists. *)
let drive_out_artificials t ~first_artificial =
  let k = t.k in
  let i = ref 0 in
  while !i < Kernel.nrows k do
    if Kernel.basis k !i >= first_artificial then begin
      let col = ref (-1) and j = ref 0 in
      while !col < 0 && !j < first_artificial do
        if abs_float (Kernel.get k !i !j) > eps then col := !j;
        incr j
      done;
      if !col >= 0 then begin
        pivot t ~row:!i ~col:!col;
        incr i
      end
      else Kernel.drop_row k !i (* redundant constraint *)
    end
    else incr i
  done

let build_tableau ~nvars ~constrs =
  List.iter
    (fun c ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex: constraint arity mismatch")
    constrs;
  let m = List.length constrs in
  (* normalise right-hand sides to be non-negative *)
  let normalised =
    List.map
      (fun c ->
        if c.rhs < 0. then
          { coeffs = Array.map (fun a -> -.a) c.coeffs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.c.rhs;
          }
        else c)
      constrs
  in
  let n_slack =
    List.length
      (List.filter (fun c -> c.relation <> Eq) normalised)
  in
  let first_slack = nvars in
  let first_artificial = nvars + n_slack in
  (* every row receives an artificial column: Le rows start with their
     slack basic instead, so the artificial is only created when needed *)
  let n_art =
    List.length (List.filter (fun c -> c.relation <> Le) normalised)
  in
  let ncols = first_artificial + n_art in
  let k = Kernel.create ~nrows:m ~ncols in
  let slack = ref first_slack and art = ref first_artificial in
  List.iteri
    (fun i c ->
      for j = 0 to nvars - 1 do
        Kernel.set k i j c.coeffs.(j)
      done;
      Kernel.set k i ncols c.rhs;
      (match c.relation with
      | Le ->
        Kernel.set k i !slack 1.;
        Kernel.set_basis k i !slack;
        incr slack
      | Ge ->
        Kernel.set k i !slack (-1.);
        incr slack;
        Kernel.set k i !art 1.;
        Kernel.set_basis k i !art;
        incr art
      | Eq ->
        Kernel.set k i !art 1.;
        Kernel.set_basis k i !art;
        incr art))
    normalised;
  ({ k; pivots = 0 }, first_artificial)

let maximize_impl ~c ~constrs =
  let nvars = Array.length c in
  let t, first_artificial = build_tableau ~nvars ~constrs in
  (* phase 1: maximise -(sum of artificials) *)
  Kernel.load_phase1_cost t.k ~first_artificial;
  (match run_phase t with
  | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
  | `Optimal -> ());
  if Kernel.objective t.k < -.eps then begin
    record_solve t;
    Infeasible
  end
  else begin
    drive_out_artificials t ~first_artificial;
    Kernel.bar_from t.k first_artificial;
    Kernel.load_cost t.k c nvars;
    let outcome =
      match run_phase t with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let k = t.k in
        let x = Array.make nvars 0. in
        for i = 0 to Kernel.nrows k - 1 do
          let b = Kernel.basis k i in
          if b < nvars then x.(b) <- Kernel.rhs k i
        done;
        Optimal { x; objective = Kernel.objective k }
    in
    record_solve t;
    outcome
  end

(* Allocation-accounting wrapper; the disabled path is the plain call —
   one atomic load, no closure. *)
let maximize ~c ~constrs =
  if not (Telemetry.Resource.enabled ()) then maximize_impl ~c ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Metrics.add alloc_bytes_counter
          (int_of_float (Float.max 0. (Gc.allocated_bytes () -. b0))))
      (fun () -> maximize_impl ~c ~constrs)
  end

let minimize ~c ~constrs =
  match maximize ~c:(Array.map (fun v -> -.v) c) ~constrs with
  | Optimal { x; objective } -> Optimal { x; objective = -.objective }
  | (Unbounded | Infeasible) as o -> o

let feasible ~constrs ~nvars =
  match maximize ~c:(Array.make nvars 0.) ~constrs with
  | Optimal _ -> true
  | Unbounded -> true
  | Infeasible -> false
