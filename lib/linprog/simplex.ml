type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type solution = { x : float array; objective : float }

type outcome = Optimal of solution | Unbounded | Infeasible

let constr coeffs relation rhs = { coeffs; relation; rhs }

let eps = 1e-9

(* Internal tableau: [rows] is an m x (ncols+1) array, last column the
   right-hand side. [basis.(i)] is the column currently basic in row i.
   [allowed.(j)] marks columns permitted to enter the basis (artificials
   are disallowed in phase 2). *)
type tableau = {
  rows : float array array;
  basis : int array;
  ncols : int;                (* structural + slack + artificial columns *)
  mutable nrows : int;        (* rows may be dropped when redundant *)
  allowed : bool array;
  mutable pivots : int;       (* pivot operations over both phases *)
}

(* Telemetry only observes (counters and a per-solve pivot histogram);
   all tableau state stays per-call, so the purity/re-entrancy contract
   documented in docs/ENGINE.md is unaffected. *)
let solves_counter = Telemetry.Metrics.counter "linprog.solves"
let pivots_counter = Telemetry.Metrics.counter "linprog.pivots"

let pivots_per_solve =
  Telemetry.Metrics.histogram ~lo:1. ~growth:2. ~buckets:24
    "linprog.pivots_per_solve"

(* Bytes allocated inside LP solves while Telemetry.Resource is
   enabled (shared with the warm-start Solver's entry points);
   [linprog.alloc_bytes / linprog.solves] is allocations per solve. *)
let alloc_bytes_counter = Telemetry.Metrics.counter "linprog.alloc_bytes"

let record_solve t =
  Telemetry.Metrics.incr solves_counter;
  Telemetry.Metrics.add pivots_counter t.pivots;
  Telemetry.Metrics.observe pivots_per_solve (float_of_int t.pivots)

let pivot t ~row ~col =
  t.pivots <- t.pivots + 1;
  let r = t.rows.(row) in
  let p = r.(col) in
  for j = 0 to t.ncols do
    r.(j) <- r.(j) /. p
  done;
  for i = 0 to t.nrows - 1 do
    if i <> row then begin
      let factor = t.rows.(i).(col) in
      if factor <> 0. then
        for j = 0 to t.ncols do
          t.rows.(i).(j) <- t.rows.(i).(j) -. (factor *. r.(j))
        done
    end
  done;
  t.basis.(row) <- col

(* One simplex phase: maximise [cost . x] from the current basic feasible
   solution. Bland's rule: entering = lowest-index column with positive
   reduced cost; leaving = lowest basis index among ratio-test ties. *)
let run_phase t cost =
  let reduced_costs () =
    (* r_j = c_j - c_B . B^-1 A_j; recomputed from scratch each iteration
       (the LPs here are tiny, robustness beats speed) *)
    Array.init t.ncols (fun j ->
        if not t.allowed.(j) then neg_infinity
        else begin
          let acc = ref cost.(j) in
          for i = 0 to t.nrows - 1 do
            let cb = cost.(t.basis.(i)) in
            if cb <> 0. then acc := !acc -. (cb *. t.rows.(i).(j))
          done;
          !acc
        end)
  in
  let rec loop iter =
    if iter > 10_000 then failwith "Simplex: iteration limit exceeded";
    let r = reduced_costs () in
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if r.(j) > eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let leave = ref (-1) and best = ref infinity in
      for i = 0 to t.nrows - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(t.ncols) /. a in
          if
            ratio < !best -. eps
            || (abs_float (ratio -. !best) <= eps
               && !leave >= 0
               && t.basis.(i) < t.basis.(!leave))
          then begin
            best := ratio;
            leave := i
          end
        end
      done;
      if !leave < 0 then `Unbounded
      else begin
        pivot t ~row:!leave ~col;
        loop (iter + 1)
      end
    end
  in
  loop 0

let objective_value t cost =
  let acc = ref 0. in
  for i = 0 to t.nrows - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then acc := !acc +. (cb *. t.rows.(i).(t.ncols))
  done;
  !acc

let drop_row t i =
  if i < t.nrows - 1 then begin
    t.rows.(i) <- t.rows.(t.nrows - 1);
    t.basis.(i) <- t.basis.(t.nrows - 1)
  end;
  t.nrows <- t.nrows - 1

(* Remove artificial variables from the basis after phase 1. A basic
   artificial sits at value zero; pivot it out on any eligible column, or
   drop the (redundant) row when no such column exists. *)
let drive_out_artificials t ~first_artificial =
  let i = ref 0 in
  while !i < t.nrows do
    if t.basis.(!i) >= first_artificial then begin
      let col = ref (-1) in
      (try
         for j = 0 to first_artificial - 1 do
           if abs_float t.rows.(!i).(j) > eps then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then begin
        pivot t ~row:!i ~col:!col;
        incr i
      end
      else drop_row t !i (* redundant constraint *)
    end
    else incr i
  done

let build_tableau ~nvars ~constrs =
  List.iter
    (fun c ->
      if Array.length c.coeffs <> nvars then
        invalid_arg "Simplex: constraint arity mismatch")
    constrs;
  let m = List.length constrs in
  (* normalise right-hand sides to be non-negative *)
  let normalised =
    List.map
      (fun c ->
        if c.rhs < 0. then
          { coeffs = Array.map (fun a -> -.a) c.coeffs;
            relation =
              (match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.c.rhs;
          }
        else c)
      constrs
  in
  let n_slack =
    List.length
      (List.filter (fun c -> c.relation <> Eq) normalised)
  in
  let first_slack = nvars in
  let first_artificial = nvars + n_slack in
  (* every row receives an artificial column: Le rows start with their
     slack basic instead, so the artificial is only created when needed *)
  let n_art =
    List.length (List.filter (fun c -> c.relation <> Le) normalised)
  in
  let ncols = first_artificial + n_art in
  let rows = Array.make_matrix m (ncols + 1) 0. in
  let basis = Array.make m 0 in
  let slack = ref first_slack and art = ref first_artificial in
  List.iteri
    (fun i c ->
      Array.blit c.coeffs 0 rows.(i) 0 nvars;
      rows.(i).(ncols) <- c.rhs;
      (match c.relation with
      | Le ->
        rows.(i).(!slack) <- 1.;
        basis.(i) <- !slack;
        incr slack
      | Ge ->
        rows.(i).(!slack) <- -1.;
        incr slack;
        rows.(i).(!art) <- 1.;
        basis.(i) <- !art;
        incr art
      | Eq ->
        rows.(i).(!art) <- 1.;
        basis.(i) <- !art;
        incr art))
    normalised;
  let t =
    { rows;
      basis;
      ncols;
      nrows = m;
      allowed = Array.make ncols true;
      pivots = 0;
    }
  in
  (t, first_artificial)

let maximize_impl ~c ~constrs =
  let nvars = Array.length c in
  let t, first_artificial = build_tableau ~nvars ~constrs in
  (* phase 1: maximise -(sum of artificials) *)
  let phase1_cost = Array.make t.ncols 0. in
  for j = first_artificial to t.ncols - 1 do
    phase1_cost.(j) <- -1.
  done;
  (match run_phase t phase1_cost with
  | `Unbounded -> assert false (* phase-1 objective is bounded above by 0 *)
  | `Optimal -> ());
  if objective_value t phase1_cost < -.eps then begin
    record_solve t;
    Infeasible
  end
  else begin
    drive_out_artificials t ~first_artificial;
    for j = first_artificial to t.ncols - 1 do
      t.allowed.(j) <- false
    done;
    let phase2_cost = Array.make t.ncols 0. in
    Array.blit c 0 phase2_cost 0 nvars;
    let outcome =
      match run_phase t phase2_cost with
      | `Unbounded -> Unbounded
      | `Optimal ->
        let x = Array.make nvars 0. in
        for i = 0 to t.nrows - 1 do
          if t.basis.(i) < nvars then x.(t.basis.(i)) <- t.rows.(i).(t.ncols)
        done;
        Optimal { x; objective = objective_value t phase2_cost }
    in
    record_solve t;
    outcome
  end

(* Allocation-accounting wrapper; the disabled path is the plain call —
   one atomic load, no closure. *)
let maximize ~c ~constrs =
  if not (Telemetry.Resource.enabled ()) then maximize_impl ~c ~constrs
  else begin
    let b0 = Gc.allocated_bytes () in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Metrics.add alloc_bytes_counter
          (int_of_float (Float.max 0. (Gc.allocated_bytes () -. b0))))
      (fun () -> maximize_impl ~c ~constrs)
  end

let minimize ~c ~constrs =
  match maximize ~c:(Array.map (fun v -> -.v) c) ~constrs with
  | Optimal { x; objective } -> Optimal { x; objective = -.objective }
  | (Unbounded | Infeasible) as o -> o

let feasible ~constrs ~nvars =
  match maximize ~c:(Array.make nvars 0.) ~constrs with
  | Optimal _ -> true
  | Unbounded -> true
  | Infeasible -> false
