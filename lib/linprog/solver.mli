(** Reusable warm-start simplex engine.

    {!Simplex} is the cold-start reference implementation: every call
    rebuilds its tableau, re-runs phase 1 and allocates per iteration.
    A {!t} amortises all of that across a sweep. Build one per
    constraint system with {!create} (tableau constructed once, phase 1
    run once); then every {!reoptimize} starts phase 2 from the basis
    the previous solve ended on. A basic feasible solution stays
    feasible when only the objective changes, so phase 1 never re-runs
    on an objective sweep and most solves finish in a handful of
    pivots. {!rebuild} reloads the instance with a different constraint
    system in place (no allocation when the structural shape matches)
    and carries the previous optimal basis across when it verifies
    feasible against the new coefficients — the common case for
    sweeps over per-block fading draws, where consecutive systems share
    a binding structure.

    Internals: the numeric core is {!Kernel} — one flat row-major
    [floatarray] tableau with allocation-free elimination, pricing and
    ratio-test loops — and all scratch is preallocated in the instance,
    so a warm {!reoptimize_into} allocates zero words end to end
    (telemetry included). Pricing is Dantzig's most-positive
    reduced-cost rule with an automatic sticky fallback to Bland's rule
    after a run of degenerate pivots (Bland cannot cycle, so
    termination is unconditional), and the ratio test matches the
    reference implementation.

    {b Ownership contract:} an instance is mutable state and is NOT
    re-entrant — never share one between domains. The rate-region layer
    keys instances per (LP shape, domain) via [Domain.DLS]; see the
    "LP solver architecture" section of [docs/ENGINE.md]. {!Simplex}
    keeps its pure per-call contract and remains the reference the
    QCheck suite checks this engine against.

    {b Telemetry:} every recorded solve updates [linprog.solves],
    [linprog.pivots] and [linprog.pivots_per_solve] exactly as the
    reference does, plus [linprog.warm_solves] /
    [linprog.phase1_skipped] / [linprog.pivots_per_warm_solve] for
    solves that started from a previously optimal basis. Row
    eliminations spent refactorising a carried basis are basis
    factorisation, not simplex iterations; they are kept separate in
    [linprog.refactor_eliminations]. *)

type t

val create : nvars:int -> constrs:Simplex.constr list -> t
(** Build a solver for the given constraint system over [nvars]
    non-negative variables and establish a feasible basis (phase 1).
    Raises [Invalid_argument] on an arity mismatch. The phase-1 pivots
    are attributed to the first solve recorded on the instance. *)

val nvars : t -> int

val reoptimize : t -> c:float array -> Simplex.outcome
(** [reoptimize t ~c] maximises [c . x] over the currently loaded
    system, warm-starting from the basis of the previous solve (or the
    phase-1 basis right after {!create}/{!rebuild}). Records one solve
    in telemetry. Returns [Infeasible] immediately when the loaded
    system was proven infeasible. *)

type verdict = Optimal | Unbounded | Infeasible
(** {!reoptimize_into}'s result — constant constructors only, so
    returning one never allocates. *)

val reoptimize_into : t -> c:float array -> x:float array -> verdict
(** Zero-allocation {!reoptimize}: identical pivot path and telemetry,
    but the solution is written into the caller-owned [x] instead of a
    fresh [Simplex.solution]. [x] must have at least [nvars t + 1]
    slots: on [Optimal], [x.(0 .. nvars-1)] receive the optimal point
    (unused variables zeroed, negative zeros normalised) and
    [x.(nvars)] the objective value; on [Unbounded]/[Infeasible] the
    contents of [x] are unspecified. A warm call allocates zero words,
    which is what keeps the [linprog.alloc_bytes] budget at its floor —
    callers running sweeps should preallocate [c] and [x] once and
    reuse them. Raises [Invalid_argument] when [c] or [x] has the
    wrong arity. *)

val solve_many : t -> float array list -> Simplex.outcome list
(** Batch [reoptimize], one outcome per objective, in order — each
    solve warm-starts from its predecessor. *)

val rebuild : t -> constrs:Simplex.constr list -> unit
(** Replace the loaded constraint system in place ([nvars] is fixed at
    {!create}). When the new system has the same structural shape (row
    count and per-row relations after sign normalisation), the previous
    optimal basis is refactorised against the new coefficients and, if
    it verifies feasible, phase 1 is skipped; otherwise (shape change,
    singular basis, or an infeasible carried basis) the tableau is
    reloaded and phase 1 re-runs from scratch. *)

val feasible : t -> bool
(** Whether the currently loaded system has any non-negative solution.
    Records one solve (this is the probe entry point: pair it with
    {!rebuild} to re-test shifted right-hand sides; a successful basis
    carry answers without any phase-1 work). *)
