(** Gaussian (AWGN with path loss) evaluation of Theorems 2–6.

    Setting: per-phase transmit power [P] at every node, unit-power
    circularly-symmetric complex Gaussian noise, reciprocal power gains
    [G_ab, G_ar, G_br], full CSI, and [C(x) = log2 (1 + x)]. As in the
    paper's Section IV we take [|Q| = 1] — with a per-phase power
    constraint a Gaussian input simultaneously maximises every mutual
    information term appearing in the bounds, so time sharing cannot help
    the Gaussian expressions (the one exception is the joint distribution
    [p(3)(xa, xb)] of the HBC outer bound; see {!val-bounds}). *)

type scenario = {
  power : float;        (** per-node, per-phase transmit power P (linear) *)
  gains : Channel.Gains.t;
}

val scenario : power_db:float -> gains:Channel.Gains.t -> scenario
val scenario_lin : power:float -> gains:Channel.Gains.t -> scenario

type link_rates = {
  c_ab : float;   (** C(P G_ab): direct link *)
  c_ar : float;   (** C(P G_ar) *)
  c_br : float;   (** C(P G_br) *)
  c_mac : float;  (** C(P G_ar + P G_br): MAC sum at the relay *)
  c_a_rb : float; (** C(P (G_ar + G_ab)): a heard by r and b jointly *)
  c_b_ra : float; (** C(P (G_br + G_ab)): b heard by r and a jointly *)
}

val link_rates : scenario -> link_rates
(** All six distinct mutual-information values the bounds need. *)

val bounds : Protocol.t -> Bound.kind -> scenario -> Bound.t
(** The bound system of the given protocol.

    - [Dt]: inner = outer (point-to-point capacity both ways).
    - [Mabc]: inner = outer (Theorem 2 is the capacity region).
    - [Tdbc]: inner from Theorem 3, outer from Theorem 4.
    - [Hbc]: inner from Theorem 5. The outer system implements Theorem 6
      evaluated with independent Gaussian inputs in phase 3; the paper
      notes (end of Section IV) that joint Gaussianity is not known to be
      optimal there, so unlike the others this outer bound is a
      {e heuristic} evaluation of the theorem, provided for comparison. *)

val relay_free_outer : Protocol.t -> scenario -> Bound.t
(** The relaxed outer bound from the remarks after Theorems 2, 4 and 6:
    when the relay is not required to decode both messages, the sum-rate
    (relay-decoding) constraint is dropped. For [Dt] this equals the
    ordinary bound. *)
