type t = Dt | Naive | Mabc | Tdbc | Hbc

let all = [ Dt; Naive; Mabc; Tdbc; Hbc ]
let relayed = [ Naive; Mabc; Tdbc; Hbc ]
let coded = [ Mabc; Tdbc; Hbc ]

let name = function
  | Dt -> "DT"
  | Naive -> "NAIVE"
  | Mabc -> "MABC"
  | Tdbc -> "TDBC"
  | Hbc -> "HBC"

let of_string s =
  match String.lowercase_ascii s with
  | "dt" -> Some Dt
  | "naive" | "naive4" -> Some Naive
  | "mabc" -> Some Mabc
  | "tdbc" -> Some Tdbc
  | "hbc" -> Some Hbc
  | _ -> None

let num_phases = function Dt -> 2 | Naive -> 4 | Mabc -> 2 | Tdbc -> 3 | Hbc -> 4

let phase_description t l =
  let bad () = invalid_arg "Protocol.phase_description: phase out of range" in
  match (t, l) with
  | Dt, 1 -> "a -> b"
  | Dt, 2 -> "b -> a"
  | Naive, 1 -> "a -> r"
  | Naive, 2 -> "r -> b"
  | Naive, 3 -> "b -> r"
  | Naive, 4 -> "r -> a"
  | Mabc, 1 -> "a,b -> r (MAC)"
  | Mabc, 2 -> "r -> a,b (broadcast)"
  | Tdbc, 1 -> "a -> r,b"
  | Tdbc, 2 -> "b -> r,a"
  | Tdbc, 3 -> "r -> a,b (broadcast)"
  | Hbc, 1 -> "a -> r,b"
  | Hbc, 2 -> "b -> r,a"
  | Hbc, 3 -> "a,b -> r (MAC)"
  | Hbc, 4 -> "r -> a,b (broadcast)"
  | (Dt | Naive | Mabc | Tdbc | Hbc), _ -> bad ()

let pp fmt t = Format.pp_print_string fmt (name t)
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
