type opt_result = { ra : float; rb : float; deltas : float array }

let sum r = r.ra +. r.rb

(* LP variable layout: x = [ Ra; Rb; d_1; ...; d_L ]. *)
let lp_constraints (b : Bound.t) =
  let l = b.Bound.num_phases in
  let nvars = 2 + l in
  let of_term (t : Bound.term) =
    let coeffs = Array.make nvars 0. in
    coeffs.(0) <- t.Bound.ca;
    coeffs.(1) <- t.Bound.cb;
    Array.iteri (fun i c -> coeffs.(2 + i) <- -.c) t.Bound.per_phase;
    Linprog.Simplex.constr coeffs Linprog.Simplex.Le 0.
  in
  let simplex_row =
    let coeffs = Array.make nvars 0. in
    for i = 2 to nvars - 1 do
      coeffs.(i) <- 1.
    done;
    Linprog.Simplex.constr coeffs Linprog.Simplex.Eq 1.
  in
  (nvars, simplex_row :: List.map of_term b.Bound.terms)

(* Canonical cache key for a bound system: protocol, bound kind and the
   exact (hex-rendered, lossless) constraint coefficients. Two bounds
   built from the same protocol/kind/scenario produce the same key, so
   repeated sweeps over overlapping scenarios share LP solutions. *)
let bound_key (b : Bound.t) =
  let buf = Buffer.create 160 in
  Buffer.add_string buf (Protocol.name b.Bound.protocol);
  Buffer.add_char buf '|';
  Buffer.add_string buf (Bound.kind_name b.Bound.bound_kind);
  Printf.bprintf buf "|%d" b.Bound.num_phases;
  List.iter
    (fun (t : Bound.term) ->
      Printf.bprintf buf "|%h,%h" t.Bound.ca t.Bound.cb;
      Array.iter (fun c -> Printf.bprintf buf ",%h" c) t.Bound.per_phase)
    b.Bound.terms;
  Buffer.contents buf

let weighted_cache : (string * float * float, opt_result) Engine.Memo.t =
  Engine.Memo.create ~name:"rate_region.weighted" ()

let feasibility_cache : (string * float * float, bool) Engine.Memo.t =
  Engine.Memo.create ~name:"rate_region.feasibility" ()

(* Boundary sweeps and their down-closures are cached whole: the warm
   path of a figure pass is dominated not by LP solves (those hit
   [weighted_cache]) but by the sweep's dedup/sort and the convex
   geometry, so caching the finished point lists is what makes repeat
   passes cheap. Both store immutable [Vec2.t] lists, so hits can share
   structure safely. *)
let boundary_cache : (string * int, Numerics.Vec2.t list) Engine.Memo.t =
  Engine.Memo.create ~name:"rate_region.boundary" ()

let polygon_cache : (string * int, Numerics.Vec2.t list) Engine.Memo.t =
  Engine.Memo.create ~name:"rate_region.polygon" ()

(* --- per-domain warm-start solver slots ---------------------------- *)

(* One [Linprog.Solver.t] per (LP shape, domain): the shape — weighted
   sweep vs feasibility probe, phase count, term count — determines the
   tableau layout, so one instance serves every bound system of that
   shape. A sweep over one bound system reoptimises the loaded tableau
   (phase 1 never re-runs); moving to the next block's bound system
   rebuilds in place and carries the optimal basis across. Instances
   live in [Domain.DLS], so pool workers warm-start independently and
   no instance is ever shared between domains (the Solver ownership
   contract). An epoch bumped by [clear_cache] / [Memo.clear_all]
   invalidates every domain's slots, so "cold cache" runs rebuild their
   solvers from scratch. *)

let solver_epoch = Atomic.make 0

let bump_solver_epoch () = Atomic.incr solver_epoch

let () = Engine.Memo.on_clear_all bump_solver_epoch

type solver_slot = {
  solver : Linprog.Solver.t;
  mutable loaded : string; (* bound key of the system currently loaded *)
  c : float array; (* objective buffer, [nvars] slots *)
  x : float array; (* solution buffer for [reoptimize_into], [nvars + 1] *)
}

type slot_table = {
  mutable epoch : int;
  slots : (string, solver_slot) Hashtbl.t;
}

let slots_key =
  Domain.DLS.new_key (fun () ->
      { epoch = Atomic.get solver_epoch; slots = Hashtbl.create 8 })

let domain_slots () =
  let t = Domain.DLS.get slots_key in
  let e = Atomic.get solver_epoch in
  if t.epoch <> e then begin
    Hashtbl.reset t.slots;
    t.epoch <- e
  end;
  t.slots

(* Fetch this domain's slot for [shape], loading [constrs b] when the
   slot holds a different bound system (or none yet). The slot owns the
   [c]/[x] buffers its solver's [reoptimize_into] runs against, so a
   warm sweep iteration allocates nothing on the solve path. *)
let slot_for ~shape ~key ~nvars b constrs =
  let slots = domain_slots () in
  match Hashtbl.find_opt slots shape with
  | Some s ->
    if s.loaded <> key then begin
      Linprog.Solver.rebuild s.solver ~constrs:(constrs b);
      s.loaded <- key
    end;
    s
  | None ->
    let solver = Linprog.Solver.create ~nvars ~constrs:(constrs b) in
    let s =
      { solver;
        loaded = key;
        c = Array.make nvars 0.;
        x = Array.make (nvars + 1) 0.;
      }
    in
    Hashtbl.replace slots shape s;
    s

let clear_cache () =
  Engine.Memo.clear weighted_cache;
  Engine.Memo.clear feasibility_cache;
  Engine.Memo.clear boundary_cache;
  Engine.Memo.clear polygon_cache;
  bump_solver_epoch ()

(* Latency of every LP actually solved (weighted optima and
   feasibility probes alike); memo hits never reach this. *)
let lp_seconds = Telemetry.Metrics.histogram "lp.solve_seconds"

let solve_weighted ~key b ~wa ~wb =
  Engine.Stats.record_lp_solve ();
  Telemetry.Span.with_span ~cat:"lp" "lp.solve"
  @@ fun () ->
  Telemetry.Metrics.time lp_seconds
  @@ fun () ->
  let nvars = 2 + b.Bound.num_phases in
  let shape =
    Printf.sprintf "w|%d|%d" b.Bound.num_phases (List.length b.Bound.terms)
  in
  let slot = slot_for ~shape ~key ~nvars b (fun b -> snd (lp_constraints b)) in
  let c = slot.c in
  Array.fill c 0 nvars 0.;
  c.(0) <- wa;
  c.(1) <- wb;
  match Linprog.Solver.reoptimize_into slot.solver ~c ~x:slot.x with
  | Linprog.Solver.Optimal ->
    let x = slot.x in
    { ra = x.(0); rb = x.(1); deltas = Array.sub x 2 (nvars - 2) }
  | Linprog.Solver.Unbounded ->
    failwith "Rate_region.max_weighted: unbounded bound system"
  | Linprog.Solver.Infeasible ->
    failwith "Rate_region.max_weighted: infeasible bound system"

(* [~key] must be [bound_key b]; sweeps compute it once and reuse it
   across their LPs — building the key is cheap next to a solve but not
   next to a cache hit. *)
let max_weighted_keyed ~key b ~wa ~wb =
  if wa < 0. || wb < 0. || wa +. wb <= 0. then
    invalid_arg "Rate_region.max_weighted: bad weights";
  let r =
    Engine.Memo.find_or_add weighted_cache (key, wa, wb) (fun () ->
        solve_weighted ~key b ~wa ~wb)
  in
  (* fresh deltas so callers can never mutate the cached schedule *)
  { r with deltas = Array.copy r.deltas }

let max_weighted b ~wa ~wb = max_weighted_keyed ~key:(bound_key b) b ~wa ~wb

(* A tiny secondary weight makes the corner lexicographic without
   perturbing the primary optimum at these problem scales. *)
let lex_eps = 1e-7

(* The sum-rate objective is parallel to the region's dominant face
   (slope -1), so the pure (1, 1) optimum is a whole edge whenever
   that face is active and the vertex a warm-started solve lands on
   depends on basis history. The lexicographic tilt selects the unique
   ra-most vertex of that face, making the reported maximizer
   history-independent; the sum itself is unaffected. *)
let max_sum_rate b = max_weighted b ~wa:(1. +. lex_eps) ~wb:1.

let max_ra_keyed ~key b = max_weighted_keyed ~key b ~wa:1. ~wb:lex_eps
let max_rb_keyed ~key b = max_weighted_keyed ~key b ~wa:lex_eps ~wb:1.
let max_ra b = max_ra_keyed ~key:(bound_key b) b
let max_rb b = max_rb_keyed ~key:(bound_key b) b

let probe_achievable ~key b ~ra ~rb =
  Engine.Stats.record_lp_solve ();
  Telemetry.Span.with_span ~cat:"lp" "lp.probe"
  @@ fun () ->
  Telemetry.Metrics.time lp_seconds
  @@ fun () ->
  (* project out the rates: constraints over the durations only *)
  let l = b.Bound.num_phases in
  let constrs b =
    let of_term (t : Bound.term) =
      (* sum_l c_l d_l >= ca ra + cb rb *)
      Linprog.Simplex.constr
        (Array.copy t.Bound.per_phase)
        Linprog.Simplex.Ge
        ((t.Bound.ca *. ra) +. (t.Bound.cb *. rb) -. 1e-9)
    in
    let simplex_row =
      Linprog.Simplex.constr (Array.make l 1.) Linprog.Simplex.Eq 1.
    in
    simplex_row :: List.map of_term b.Bound.terms
  in
  (* probes shift the right-hand side per (ra, rb), so every probe
     rebuilds its slot (the loaded key pins the probed point too). When
     the carried basis survives the new rhs the rebuild skips phase 1
     and [feasible] answers immediately; otherwise this is the
     documented case where phase 1 re-runs. *)
  let shape = Printf.sprintf "p|%d|%d" l (List.length b.Bound.terms) in
  let probe_key = Printf.sprintf "%s|%h|%h" key ra rb in
  let slot = slot_for ~shape ~key:probe_key ~nvars:l b constrs in
  Linprog.Solver.feasible slot.solver

let achievable_keyed ~key b ~ra ~rb =
  if ra < -1e-12 || rb < -1e-12 then false
  else
    Engine.Memo.find_or_add feasibility_cache (key, ra, rb) (fun () ->
        probe_achievable ~key b ~ra ~rb)

let achievable b ~ra ~rb = achievable_keyed ~key:(bound_key b) b ~ra ~rb

(* Reusable per-domain flat buffers: the sweep's weight vector and the
   boundary's deduplicated (x, y) coordinate pairs are staged on
   growable [floatarray] scratch and only materialised into immutable
   values ([float] weights, [Vec2.t] lists) at the end — no per-point
   intermediate allocation in between. *)
let weight_scratch = Domain.DLS.new_key (fun () -> ref (Float.Array.create 128))

let point_scratch = Domain.DLS.new_key (fun () -> ref (Float.Array.create 256))

let scratch key ~cap =
  let buf = Domain.DLS.get key in
  if Float.Array.length !buf < cap then
    buf := Float.Array.create (max cap (2 * Float.Array.length !buf));
  !buf

(* The weight sweep shared by [boundary] and [boundary_with_schedules]:
   the Rb corner, then the interior weights in the legacy (descending-w)
   order, then the Ra corner. The interior LPs fan out over the engine
   pool; chunked-by-index scheduling keeps the order — and therefore the
   downstream dedup — independent of the domain count. *)
let sweep_results ~caller ~key ~weights b =
  if weights < 2 then invalid_arg (caller ^ ": weights < 2");
  let wbuf = scratch weight_scratch ~cap:weights in
  let denom = float_of_int (weights + 1) in
  for i = 0 to weights - 1 do
    Float.Array.unsafe_set wbuf i (float_of_int (i + 1) /. denom)
  done;
  let interior = List.init weights (Float.Array.unsafe_get wbuf) in
  let sweep =
    Engine.Pool.map
      (fun w -> max_weighted_keyed ~key b ~wa:w ~wb:(1. -. w))
      interior
  in
  (max_rb_keyed ~key b :: List.rev sweep) @ [ max_ra_keyed ~key b ]

(* Keep-first dedup of the sweep's rate points on the flat pair buffer:
   slot [2i]/[2i+1] hold the i-th kept (x, y). The distance test is the
   expansion of [Vec2.dist p q < 1e-7], so kept points are exactly the
   ones the historical [Vec2.t]-list dedup kept. Returns the kept
   count; the caller materialises [Vec2.t]s from the buffer once. *)
let dedup_into buf results =
  let kept = ref 0 in
  List.iter
    (fun r ->
      let x = r.ra and y = r.rb in
      let dup = ref false and i = ref 0 in
      while (not !dup) && !i < !kept do
        let dx = x -. Float.Array.unsafe_get buf (2 * !i)
        and dy = y -. Float.Array.unsafe_get buf ((2 * !i) + 1) in
        if sqrt ((dx *. dx) +. (dy *. dy)) < 1e-7 then dup := true;
        incr i
      done;
      if not !dup then begin
        Float.Array.unsafe_set buf (2 * !kept) x;
        Float.Array.unsafe_set buf ((2 * !kept) + 1) y;
        incr kept
      end)
    results;
  !kept

let default_weights = 65

let boundary_keyed ~key ?(weights = default_weights) b =
  Engine.Memo.find_or_add boundary_cache (key, weights) (fun () ->
      Telemetry.Span.with_span ~cat:"region" "region.boundary"
        ~args:[ ("weights", Telemetry.Json.Int weights) ]
      @@ fun () ->
      let all =
        sweep_results ~caller:"Rate_region.boundary" ~key ~weights b
      in
      let buf = scratch point_scratch ~cap:(2 * List.length all) in
      let kept = dedup_into buf all in
      List.init kept (fun i ->
          Numerics.Vec2.make
            (Float.Array.unsafe_get buf (2 * i))
            (Float.Array.unsafe_get buf ((2 * i) + 1)))
      |> List.sort (fun (p : Numerics.Vec2.t) (q : Numerics.Vec2.t) ->
             compare (p.Numerics.Vec2.x, p.Numerics.Vec2.y)
               (q.Numerics.Vec2.x, q.Numerics.Vec2.y)))

let boundary ?weights b = boundary_keyed ~key:(bound_key b) ?weights b

let polygon_keyed ~key ?(weights = default_weights) b =
  Engine.Memo.find_or_add polygon_cache (key, weights) (fun () ->
      Telemetry.Span.with_span ~cat:"region" "region.polygon" (fun () ->
          Numerics.Polygon.down_closure (boundary_keyed ~key ~weights b)))

let polygon ?weights b = polygon_keyed ~key:(bound_key b) ?weights b

let area ?weights b = Numerics.Polygon.area (polygon ?weights b)

let contains_region ?weights big small =
  let key = bound_key big in
  List.for_all
    (fun (p : Numerics.Vec2.t) ->
      achievable_keyed ~key big ~ra:p.Numerics.Vec2.x ~rb:p.Numerics.Vec2.y)
    (boundary ?weights small)

let distance_outside b ~ra ~rb =
  let key = bound_key b in
  if achievable_keyed ~key b ~ra ~rb then 0.
  else
    Numerics.Polygon.distance_to_boundary (polygon_keyed ~key b)
      (Numerics.Vec2.make ra rb)

let max_product ?weights b =
  let pts = boundary ?weights b in
  (* the product is a quadratic along each frontier edge; its interior
     critical point is t* = -(x0 dy + y0 dx) / (2 dx dy) *)
  let edge_best (p : Numerics.Vec2.t) (q : Numerics.Vec2.t) =
    let candidates =
      let dx = q.Numerics.Vec2.x -. p.Numerics.Vec2.x in
      let dy = q.Numerics.Vec2.y -. p.Numerics.Vec2.y in
      let interior =
        if abs_float (dx *. dy) < 1e-15 then []
        else begin
          let t =
            -.((p.Numerics.Vec2.x *. dy) +. (p.Numerics.Vec2.y *. dx))
            /. (2. *. dx *. dy)
          in
          if t > 0. && t < 1. then [ Numerics.Vec2.lerp p q t ] else []
        end
      in
      p :: q :: interior
    in
    Numerics.Float_utils.max_by
      (fun (v : Numerics.Vec2.t) -> v.Numerics.Vec2.x *. v.Numerics.Vec2.y)
      candidates
  in
  match pts with
  | [] -> Numerics.Vec2.zero
  | [ p ] -> p
  | first :: rest ->
    let _, best =
      List.fold_left
        (fun (prev, best) q ->
          let cand = edge_best prev q in
          let better =
            cand.Numerics.Vec2.x *. cand.Numerics.Vec2.y
            > best.Numerics.Vec2.x *. best.Numerics.Vec2.y
          in
          (q, if better then cand else best))
        (first, first) rest
    in
    best

let union_polygon ?weights bounds =
  if bounds = [] then invalid_arg "Rate_region.union_polygon: no regions";
  Numerics.Polygon.down_closure
    (List.concat_map (fun b -> boundary ?weights b) bounds)

let binding_terms ?(eps = 1e-7) (b : Bound.t) r =
  List.filter
    (fun (t : Bound.term) ->
      let lhs = (t.Bound.ca *. r.ra) +. (t.Bound.cb *. r.rb) in
      let rhs = Bound.rate_budget b ~deltas:r.deltas t in
      abs_float (lhs -. rhs) <= eps *. Float.max 1. (abs_float rhs))
    b.Bound.terms

let boundary_with_schedules ?(weights = default_weights) b =
  let all =
    sweep_results ~caller:"Rate_region.boundary_with_schedules"
      ~key:(bound_key b) ~weights b
  in
  (* dedup by rate pair, keeping the first schedule seen for it *)
  let close a b' =
    abs_float (a.ra -. b'.ra) < 1e-7 && abs_float (a.rb -. b'.rb) < 1e-7
  in
  List.fold_left
    (fun acc r -> if List.exists (close r) acc then acc else r :: acc)
    [] all
  |> List.sort (fun a b' -> compare (a.ra, a.rb) (b'.ra, b'.rb))
