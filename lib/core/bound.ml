type kind = Inner | Outer

type term = { ca : float; cb : float; per_phase : float array; label : string }

type t = {
  protocol : Protocol.t;
  bound_kind : kind;
  num_phases : int;
  terms : term list;
}

let kind_name = function Inner -> "inner" | Outer -> "outer"

let term ?(label = "") ~ca ~cb per_phase = { ca; cb; per_phase; label }

let make ~protocol ~bound_kind ~num_phases ~terms =
  List.iter
    (fun t ->
      if Array.length t.per_phase <> num_phases then
        invalid_arg "Bound.make: per-phase coefficient arity mismatch";
      if t.ca < 0. || t.cb < 0. || t.ca +. t.cb <= 0. then
        invalid_arg "Bound.make: bad rate coefficients";
      Array.iter
        (fun c ->
          if c < 0. || Float.is_nan c then
            invalid_arg "Bound.make: negative phase coefficient")
        t.per_phase)
    terms;
  { protocol; bound_kind; num_phases; terms }

let rate_budget t ~deltas term =
  if Array.length deltas <> t.num_phases then
    invalid_arg "Bound.rate_budget: duration arity mismatch";
  let acc = ref 0. in
  Array.iteri (fun l d -> acc := !acc +. (d *. term.per_phase.(l))) deltas;
  !acc

let satisfied t ~deltas ~ra ~rb =
  let total = Numerics.Float_utils.sum deltas in
  if not (Numerics.Float_utils.approx_equal ~eps:1e-6 total 1.) then
    invalid_arg "Bound.satisfied: durations must sum to 1";
  Array.iter
    (fun d -> if d < -1e-12 then invalid_arg "Bound.satisfied: negative duration")
    deltas;
  ra >= -1e-12 && rb >= -1e-12
  && List.for_all
       (fun term ->
         (term.ca *. ra) +. (term.cb *. rb)
         <= rate_budget t ~deltas term +. 1e-9)
       t.terms

let pp fmt t =
  Format.fprintf fmt "%s %s bound (%d phases):@\n" (Protocol.name t.protocol)
    (kind_name t.bound_kind) t.num_phases;
  List.iter
    (fun term ->
      let lhs =
        match (term.ca > 0., term.cb > 0.) with
        | true, true -> "Ra + Rb"
        | true, false -> "Ra"
        | false, true -> "Rb"
        | false, false -> "0"
      in
      Format.fprintf fmt "  %s <=" lhs;
      Array.iteri
        (fun l c ->
          if c > 0. then Format.fprintf fmt " + %.4f d%d" c (l + 1))
        term.per_phase;
      if term.label <> "" then Format.fprintf fmt "   (%s)" term.label;
      Format.fprintf fmt "@\n")
    t.terms
