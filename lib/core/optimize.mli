(** Protocol comparison utilities: optimal sum rates, best-protocol
    selection, and crossover location (the analyses behind the paper's
    Figs. 3 and 4 and its "MABC wins at low SNR / TDBC at high SNR"
    observation). *)

type sum_rate_result = {
  protocol : Protocol.t;
  bound_kind : Bound.kind;
  sum_rate : float;
  ra : float;
  rb : float;
  deltas : float array;
}

val sum_rate : Protocol.t -> Bound.kind -> Gaussian.scenario -> sum_rate_result
(** Optimal sum rate with LP-optimal phase durations. *)

val all_sum_rates : Bound.kind -> Gaussian.scenario -> sum_rate_result list
(** One result per protocol, in {!Protocol.all} order. *)

val best_protocol : Bound.kind -> Gaussian.scenario -> sum_rate_result
(** The protocol with the largest optimal sum rate (ties: earlier in
    {!Protocol.all} wins — so DT is preferred only when strictly best). *)

val crossover_powers_db :
  ?lo_db:float -> ?hi_db:float -> ?samples:int ->
  Protocol.t * Protocol.t -> gains:Channel.Gains.t -> Bound.kind ->
  float list
(** Powers (dB) where the two protocols' optimal inner sum rates cross,
    located by sampling then Brent refinement. Default sweep
    [[-10, 25]] dB with 141 samples. *)

val hbc_strict_advantage :
  Gaussian.scenario -> (float * float * float) option
(** Searches the HBC achievable boundary for a rate pair outside both the
    MABC and the TDBC outer bounds (the paper's headline Fig. 4
    observation). Returns [(ra, rb, margin)] for the most-outside point
    found, where [margin] is the smaller of the distances to the two
    outer-bound regions; [None] when no HBC boundary vertex escapes
    both. *)
