type mi = {
  ab : float;
  ba : float;
  ar : float;
  br : float;
  ra : float;
  rb : float;
  mac_a : float;
  mac_b : float;
  mac_sum : float;
  a_rb : float;
  b_ra : float;
}

let validate m =
  List.iter
    (fun v ->
      if v < 0. || not (Numerics.Float_utils.is_finite v) then
        invalid_arg "Templates.validate: mutual informations must be finite and non-negative")
    [ m.ab; m.ba; m.ar; m.br; m.ra; m.rb; m.mac_a; m.mac_b; m.mac_sum; m.a_rb; m.b_ra ]

let t_ra = Bound.term ~ca:1. ~cb:0.
let t_rb = Bound.term ~ca:0. ~cb:1.
let t_sum = Bound.term ~ca:1. ~cb:1.

let dt m =
  validate m;
  Bound.make ~protocol:Protocol.Dt ~bound_kind:Bound.Inner ~num_phases:2
    ~terms:
      [ t_ra ~label:"a->b direct" [| m.ab; 0. |];
        t_rb ~label:"b->a direct" [| 0.; m.ba |];
      ]

(* The traditional four-phase routing baseline (paper Fig. 1(ii)):
   a->r, r->b, b->r, r->a, every hop a plain point-to-point link. Its
   region is exact — each constraint is a single-hop capacity. *)
let naive m =
  validate m;
  Bound.make ~protocol:Protocol.Naive ~bound_kind:Bound.Inner ~num_phases:4
    ~terms:
      [ t_ra ~label:"hop a->r" [| m.ar; 0.; 0.; 0. |];
        t_ra ~label:"hop r->b" [| 0.; m.rb; 0.; 0. |];
        t_rb ~label:"hop b->r" [| 0.; 0.; m.br; 0. |];
        t_rb ~label:"hop r->a" [| 0.; 0.; 0.; m.ra |];
      ]

(* Theorem 2 — the MABC capacity region. Phase 1 is the MAC at the
   relay, phase 2 the relay broadcast. Cut-sets: S1={a}, S2={b},
   S4={a,b}, S5={a,r}, S6={b,r}. *)
let mabc kind m =
  validate m;
  Bound.make ~protocol:Protocol.Mabc ~bound_kind:kind ~num_phases:2
    ~terms:
      [ t_ra ~label:"S1: a->r MAC" [| m.mac_a; 0. |];
        t_ra ~label:"S5: r->b broadcast" [| 0.; m.rb |];
        t_rb ~label:"S2: b->r MAC" [| m.mac_b; 0. |];
        t_rb ~label:"S6: r->a broadcast" [| 0.; m.ra |];
        t_sum ~label:"S4: relay decodes both" [| m.mac_sum; 0. |];
      ]

(* Theorems 3 (inner) / 4 (outer) for TDBC. *)
let tdbc kind m =
  validate m;
  let terms =
    match kind with
    | Bound.Inner ->
      [ t_ra ~label:"relay decodes wa" [| m.ar; 0.; 0. |];
        t_ra ~label:"b: side info + broadcast" [| m.ab; 0.; m.rb |];
        t_rb ~label:"relay decodes wb" [| 0.; m.br; 0. |];
        t_rb ~label:"a: side info + broadcast" [| 0.; m.ba; m.ra |];
      ]
    | Bound.Outer ->
      [ t_ra ~label:"S1: a -> {r,b}" [| m.a_rb; 0.; 0. |];
        t_ra ~label:"S5: direct + broadcast" [| m.ab; 0.; m.rb |];
        t_rb ~label:"S2: b -> {r,a}" [| 0.; m.b_ra; 0. |];
        t_rb ~label:"S6: direct + broadcast" [| 0.; m.ba; m.ra |];
        t_sum ~label:"S4: relay decodes both" [| m.ar; m.br; 0. |];
      ]
  in
  Bound.make ~protocol:Protocol.Tdbc ~bound_kind:kind ~num_phases:3 ~terms

(* Theorems 5 (inner) / 6 (outer) for HBC; phase 3 is the MAC. The outer
   system evaluates Theorem 6 with independent phase-3 inputs (see the
   Gaussian module's documentation for the caveat). *)
let hbc kind m =
  validate m;
  let terms =
    match kind with
    | Bound.Inner ->
      [ t_ra ~label:"relay decodes wa (ph1+ph3)" [| m.ar; 0.; m.mac_a; 0. |];
        t_ra ~label:"b: side info + broadcast" [| m.ab; 0.; 0.; m.rb |];
        t_rb ~label:"relay decodes wb (ph2+ph3)" [| 0.; m.br; m.mac_b; 0. |];
        t_rb ~label:"a: side info + broadcast" [| 0.; m.ba; 0.; m.ra |];
        t_sum ~label:"relay decodes both" [| m.ar; m.br; m.mac_sum; 0. |];
      ]
    | Bound.Outer ->
      [ t_ra ~label:"S1: a -> {r,b} + ph3 MAC" [| m.a_rb; 0.; m.mac_a; 0. |];
        t_ra ~label:"S5: direct + broadcast" [| m.ab; 0.; 0.; m.rb |];
        t_rb ~label:"S2: b -> {r,a} + ph3 MAC" [| 0.; m.b_ra; m.mac_b; 0. |];
        t_rb ~label:"S6: direct + broadcast" [| 0.; m.ba; 0.; m.ra |];
        t_sum ~label:"S4: relay decodes both" [| m.ar; m.br; m.mac_sum; 0. |];
      ]
  in
  Bound.make ~protocol:Protocol.Hbc ~bound_kind:kind ~num_phases:4 ~terms

let bounds protocol kind m =
  match protocol with
  | Protocol.Dt -> { (dt m) with Bound.bound_kind = kind }
  | Protocol.Naive -> { (naive m) with Bound.bound_kind = kind }
  | Protocol.Mabc -> mabc kind m
  | Protocol.Tdbc -> tdbc kind m
  | Protocol.Hbc -> hbc kind m
