(** Relay selection among multiple candidate relays.

    The paper notes (Section I) that coded bidirectional cooperation
    extends to multiple relaying nodes. The simplest such extension — and
    the one deployed cellular systems actually use — is {e selection}:
    among K candidate relay stations, pick the single relay (and
    protocol, and phase schedule) maximising the objective, per channel
    state. Because each candidate reduces to the single-relay problem,
    the machinery of Theorems 2–6 applies unchanged; this module wraps
    the search. *)

type candidate = {
  relay_id : string;
  gains : Channel.Gains.t;  (** gains of the three links via this relay *)
}

type choice = {
  relay : candidate;
  protocol : Protocol.t;
  sum_rate : float;
  deltas : float array;
}

val candidates_on_line :
  Channel.Pathloss.t -> positions:float list -> candidate list
(** Candidates from relay positions on the a-b segment; ids are
    ["r@0.25"]-style. *)

val best :
  ?protocols:Protocol.t list -> power:float -> candidate list -> choice
(** [best ~power cands] maximises the inner-bound sum rate over
    (candidate, protocol) pairs; ties keep the earlier candidate.
    Raises [Invalid_argument] on an empty candidate list. *)

val selection_gain :
  ?blocks:int -> ?seed:int -> power:float -> candidate list -> float * float
(** Opportunistic selection under independent Rayleigh fading on every
    link of every candidate: returns
    [(mean best-candidate sum rate, mean single-fixed-candidate sum rate)]
    averaged over [blocks] (default 500) fading draws — the selection
    diversity gain is the ratio. The fixed baseline uses the first
    candidate. *)
