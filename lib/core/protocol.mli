(** The four half-duplex decode-and-forward protocols analysed in the
    paper (Fig. 2 there).

    - {b DT}: direct transmission, no relay — phase 1 a->b, phase 2 b->a.
    - {b NAIVE}: the traditional four-phase routing strawman of the
      paper's Fig. 1(ii): a->r, r->b, b->r, r->a. Each hop is a plain
      point-to-point transmission; no network coding, no overheard side
      information. Implemented to quantify how much the coded protocols
      buy (the paper's introductory motivation).
    - {b MABC} (multiple-access broadcast): phase 1 both terminals
      transmit to the relay simultaneously; phase 2 the relay broadcasts
      the XOR. No side information is ever overheard (both terminals are
      transmitting, hence deaf, in phase 1).
    - {b TDBC} (time-division broadcast): phase 1 a alone, phase 2 b
      alone (each overheard by the opposite terminal), phase 3 relay
      broadcast of a binned XOR.
    - {b HBC} (hybrid broadcast): phases 1 and 2 as TDBC, phase 3 a joint
      MAC transmission from both terminals to the relay, phase 4 relay
      broadcast. MABC and TDBC are the special cases [d1 = d2 = 0] and
      [d3 = 0] respectively. *)

type t = Dt | Naive | Mabc | Tdbc | Hbc

val all : t list
(** In presentation order: [DT; NAIVE; MABC; TDBC; HBC]. *)

val relayed : t list
(** The relay protocols (everything but DT). *)

val coded : t list
(** The paper's coded-cooperation protocols: [MABC; TDBC; HBC]. *)

val name : t -> string
val of_string : string -> t option
(** Case-insensitive. *)

val num_phases : t -> int

val phase_description : t -> int -> string
(** [phase_description p l] describes phase [l] (1-based) of protocol
    [p], e.g. ["a,b -> r (MAC)"]. Raises [Invalid_argument] for an
    out-of-range phase. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
