(** Data generators for every figure and table in the paper's evaluation
    (see DESIGN.md's per-experiment index). Each generator returns plain
    data so the bench harness, the CLI and the examples can render it
    however they like (terminal plot, CSV, markdown table). *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

type table = {
  table_id : string;
  table_title : string;
  headers : string list;
  rows : string list list;
}

val fig3 :
  ?power_db:float -> ?exponent:float -> ?samples:int -> unit -> figure
(** FIG3 — the paper's Fig. 3: optimal achievable sum rates of DT, MABC,
    TDBC and HBC at [power_db] (default 15 dB), [G_ab = 0] dB, with the
    relay swept along the a–b line under path-loss exponent [exponent]
    (default 3). X axis: relay position in (0, 1). Expected shape:
    HBC >= max(MABC, TDBC) everywhere with a band of strict advantage. *)

val fig3_snr : ?gains:Channel.Gains.t -> ?samples:int -> unit -> figure
(** Companion sweep: optimal sum rates versus transmit power (dB) at the
    paper's Fig. 4 gains. Shows the MABC/TDBC crossover. *)

val fig4 : power_db:float -> ?gains:Channel.Gains.t -> unit -> figure
(** FIG4A/B — the paper's Fig. 4 at the given power (0 dB for the top
    panel, 10 dB for the bottom): achievable-region boundaries of the
    four protocols plus the TDBC and MABC outer bounds. Series points are
    region boundary vertices [(Ra, Rb)]. Default gains
    [G_ab = 0, G_ar = 5, G_br = 7] dB. *)

val gap_table :
  ?powers_db:float list -> ?gains:Channel.Gains.t -> unit -> table
(** TAB-GAP: inner vs outer optimal sum rate and relative gap for TDBC
    and HBC at several powers (the paper's "bounds do not differ
    significantly" claim, Section I). *)

val crossover_table : ?gains:Channel.Gains.t -> unit -> table
(** TAB-XOVER: crossover powers between protocol pairs on [-10, 25] dB
    ("MABC dominates at low SNR, TDBC at high SNR"). *)

val hbc_witness_table :
  ?powers_db:float list -> ?gains:Channel.Gains.t -> unit -> table
(** TAB-HBC: for each power, an HBC-achievable rate pair lying outside
    both the MABC and TDBC outer bounds, with its escape margin
    (Section IV's closing observation). *)

val coding_gain_table :
  ?powers_db:float list -> ?gains:Channel.Gains.t -> unit -> table
(** Extension artifact quantifying the paper's Fig. 1 motivation: the
    naive four-phase routing baseline versus the coded protocols — how
    much does network coding plus side information buy? *)

val discrete_table : ?p_range:float list -> unit -> table
(** Extension (not in the paper): optimal sum rates of the three relay
    protocols on the all-BSC network as the link noise sweeps, evaluated
    with uniform inputs. *)

val all_figures : unit -> figure list
val all_tables : unit -> table list
