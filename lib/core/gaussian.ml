type scenario = { power : float; gains : Channel.Gains.t }

let scenario ~power_db ~gains =
  { power = Numerics.Float_utils.db_to_lin power_db; gains }

let scenario_lin ~power ~gains =
  if power < 0. then invalid_arg "Gaussian.scenario_lin: negative power";
  { power; gains }

type link_rates = {
  c_ab : float;
  c_ar : float;
  c_br : float;
  c_mac : float;
  c_a_rb : float;
  c_b_ra : float;
}

(* The six SNR products are batched through one in-place
   [Float_utils.capacities_into] pass over a per-domain scratch buffer
   (bit-identical to six [Channel.Awgn.c] calls; see its contract).
   DLS keeps the scratch un-shared between pool workers. *)
let link_scratch = Domain.DLS.new_key (fun () -> Float.Array.create 6)

let link_rates s =
  let p = s.power in
  let g = s.gains in
  let buf = Domain.DLS.get link_scratch in
  Float.Array.unsafe_set buf 0 (p *. g.Channel.Gains.g_ab);
  Float.Array.unsafe_set buf 1 (p *. g.Channel.Gains.g_ar);
  Float.Array.unsafe_set buf 2 (p *. g.Channel.Gains.g_br);
  Float.Array.unsafe_set buf 3 (p *. (g.Channel.Gains.g_ar +. g.Channel.Gains.g_br));
  Float.Array.unsafe_set buf 4 (p *. (g.Channel.Gains.g_ar +. g.Channel.Gains.g_ab));
  Float.Array.unsafe_set buf 5 (p *. (g.Channel.Gains.g_br +. g.Channel.Gains.g_ab));
  Numerics.Float_utils.capacities_into ~src:buf ~dst:buf ~n:6;
  { c_ab = Float.Array.unsafe_get buf 0;
    c_ar = Float.Array.unsafe_get buf 1;
    c_br = Float.Array.unsafe_get buf 2;
    c_mac = Float.Array.unsafe_get buf 3;
    c_a_rb = Float.Array.unsafe_get buf 4;
    c_b_ra = Float.Array.unsafe_get buf 5;
  }

(* With Gaussian inputs and reciprocal gains the relay broadcast is heard
   at rate C(P G_ar) by a and C(P G_br) by b, and the MAC conditional
   terms equal the single-user ones. *)
let mi_of_scenario s =
  let r = link_rates s in
  { Templates.ab = r.c_ab;
    ba = r.c_ab;
    ar = r.c_ar;
    br = r.c_br;
    ra = r.c_ar;
    rb = r.c_br;
    mac_a = r.c_ar;
    mac_b = r.c_br;
    mac_sum = r.c_mac;
    a_rb = r.c_a_rb;
    b_ra = r.c_b_ra;
  }

let bounds protocol kind s = Templates.bounds protocol kind (mi_of_scenario s)

let is_sum_term (t : Bound.term) = t.Bound.ca > 0. && t.Bound.cb > 0.

let relay_free_outer protocol s =
  let b = bounds protocol Bound.Outer s in
  { b with Bound.terms = List.filter (fun t -> not (is_sum_term t)) b.Bound.terms }
