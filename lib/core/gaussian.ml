type scenario = { power : float; gains : Channel.Gains.t }

let scenario ~power_db ~gains =
  { power = Numerics.Float_utils.db_to_lin power_db; gains }

let scenario_lin ~power ~gains =
  if power < 0. then invalid_arg "Gaussian.scenario_lin: negative power";
  { power; gains }

type link_rates = {
  c_ab : float;
  c_ar : float;
  c_br : float;
  c_mac : float;
  c_a_rb : float;
  c_b_ra : float;
}

let link_rates s =
  let p = s.power in
  let g = s.gains in
  let c = Channel.Awgn.c in
  { c_ab = c (p *. g.Channel.Gains.g_ab);
    c_ar = c (p *. g.Channel.Gains.g_ar);
    c_br = c (p *. g.Channel.Gains.g_br);
    c_mac = c (p *. (g.Channel.Gains.g_ar +. g.Channel.Gains.g_br));
    c_a_rb = c (p *. (g.Channel.Gains.g_ar +. g.Channel.Gains.g_ab));
    c_b_ra = c (p *. (g.Channel.Gains.g_br +. g.Channel.Gains.g_ab));
  }

(* With Gaussian inputs and reciprocal gains the relay broadcast is heard
   at rate C(P G_ar) by a and C(P G_br) by b, and the MAC conditional
   terms equal the single-user ones. *)
let mi_of_scenario s =
  let r = link_rates s in
  { Templates.ab = r.c_ab;
    ba = r.c_ab;
    ar = r.c_ar;
    br = r.c_br;
    ra = r.c_ar;
    rb = r.c_br;
    mac_a = r.c_ar;
    mac_b = r.c_br;
    mac_sum = r.c_mac;
    a_rb = r.c_a_rb;
    b_ra = r.c_b_ra;
  }

let bounds protocol kind s = Templates.bounds protocol kind (mi_of_scenario s)

let is_sum_term (t : Bound.term) = t.Bound.ca > 0. && t.Bound.cb > 0.

let relay_free_outer protocol s =
  let b = bounds protocol Bound.Outer s in
  { b with Bound.terms = List.filter (fun t -> not (is_sum_term t)) b.Bound.terms }
