type network = {
  ch_ab : Infotheory.Dmc.t;
  ch_ar : Infotheory.Dmc.t;
  ch_br : Infotheory.Dmc.t;
  mac_r : Infotheory.Mac.t;
}

let make ~ch_ab ~ch_ar ~ch_br ~mac_r =
  let na = Infotheory.Dmc.num_inputs ch_ab in
  if Infotheory.Dmc.num_inputs ch_ar <> na then
    invalid_arg "Discrete.make: a's alphabets differ between links";
  let nb = Infotheory.Dmc.num_inputs ch_br in
  if Infotheory.Mac.num_inputs1 mac_r <> na || Infotheory.Mac.num_inputs2 mac_r <> nb
  then invalid_arg "Discrete.make: MAC alphabets do not match the links";
  { ch_ab; ch_ar; ch_br; mac_r }

let bsc_network ~p_ab ~p_ar ~p_br ~p_mac =
  let noisy_xor =
    Infotheory.Mac.create
      (Array.init 2 (fun x1 ->
           Array.init 2 (fun x2 ->
               let clean = x1 lxor x2 in
               Array.init 2 (fun y ->
                   if y = clean then 1. -. p_mac else p_mac))))
  in
  make
    ~ch_ab:(Infotheory.Channels.bsc p_ab)
    ~ch_ar:(Infotheory.Channels.bsc p_ar)
    ~ch_br:(Infotheory.Channels.bsc p_br)
    ~mac_r:noisy_xor

type inputs = {
  p_a : Infotheory.Pmf.t;
  p_b : Infotheory.Pmf.t;
  p_r : Infotheory.Pmf.t;
}

let uniform_inputs net =
  { p_a = Infotheory.Pmf.uniform (Infotheory.Dmc.num_inputs net.ch_ar);
    p_b = Infotheory.Pmf.uniform (Infotheory.Dmc.num_inputs net.ch_br);
    p_r = Infotheory.Pmf.uniform (Infotheory.Dmc.num_inputs net.ch_ar);
  }

(* One transmitter heard over two independent-noise links: the joint
   channel X -> (Y1, Y2) with W(y1,y2|x) = W1(y1|x) W2(y2|x). *)
let joint_observation ch1 ch2 =
  let n = Infotheory.Dmc.num_inputs ch1 in
  if Infotheory.Dmc.num_inputs ch2 <> n then
    invalid_arg "Discrete: joint observation input mismatch";
  let ny1 = Infotheory.Dmc.num_outputs ch1 in
  let ny2 = Infotheory.Dmc.num_outputs ch2 in
  Infotheory.Dmc.create
    (Array.init n (fun x ->
         Array.init (ny1 * ny2) (fun k ->
             Infotheory.Dmc.transition ch1 x (k / ny2)
             *. Infotheory.Dmc.transition ch2 x (k mod ny2))))

let mi_values net ins =
  let mi = Infotheory.Dmc.mutual_information in
  let mac = Infotheory.Mac.rate_terms net.mac_r ins.p_a ins.p_b in
  (* reciprocity: the relay broadcast reaches a through ch_ar and b
     through ch_br, driven by the relay's input distribution *)
  { Templates.ab = mi net.ch_ab ins.p_a;
    ba = mi net.ch_ab ins.p_b;
    ar = mi net.ch_ar ins.p_a;
    br = mi net.ch_br ins.p_b;
    ra = mi net.ch_ar ins.p_r;
    rb = mi net.ch_br ins.p_r;
    mac_a = mac.Infotheory.Mac.i1_given_2;
    mac_b = mac.Infotheory.Mac.i2_given_1;
    mac_sum = mac.Infotheory.Mac.i_joint;
    a_rb = mi (joint_observation net.ch_ar net.ch_ab) ins.p_a;
    b_ra = mi (joint_observation net.ch_br net.ch_ab) ins.p_b;
  }

let bounds protocol kind net ins =
  Templates.bounds protocol kind (mi_values net ins)

let max_sum_rate_binary ?(grid = 11) protocol kind net =
  let binary ch = Infotheory.Dmc.num_inputs ch = 2 in
  if not (binary net.ch_ab && binary net.ch_ar && binary net.ch_br) then
    invalid_arg "Discrete.max_sum_rate_binary: network is not binary";
  let sum_rate (qa, qb, qr) =
    let ins =
      { p_a = Infotheory.Pmf.binary qa;
        p_b = Infotheory.Pmf.binary qb;
        p_r = Infotheory.Pmf.binary qr;
      }
    in
    let b = bounds protocol kind net ins in
    (Rate_region.sum (Rate_region.max_sum_rate b), ins)
  in
  let candidates lo hi =
    Array.to_list (Numerics.Float_utils.linspace lo hi grid)
  in
  let search qs =
    (* exhaustive over the (small) grid cube *)
    List.fold_left
      (fun (best_v, best_ins, best_q) qa ->
        List.fold_left
          (fun (best_v, best_ins, best_q) qb ->
            List.fold_left
              (fun (best_v, best_ins, best_q) qr ->
                let v, ins = sum_rate (qa, qb, qr) in
                if v > best_v then (v, ins, (qa, qb, qr))
                else (best_v, best_ins, best_q))
              (best_v, best_ins, best_q) qs)
          (best_v, best_ins, best_q) qs)
      (neg_infinity, uniform_inputs net, (0.5, 0.5, 0.5))
      qs
  in
  let _, _, (qa, qb, qr) = search (candidates 0.02 0.98) in
  (* one refinement pass around the best cell *)
  let refine q = candidates (Float.max 0.01 (q -. 0.1)) (Float.min 0.99 (q +. 0.1)) in
  let refined =
    List.fold_left
      (fun (best_v, best_ins) qa' ->
        List.fold_left
          (fun (best_v, best_ins) qb' ->
            List.fold_left
              (fun (best_v, best_ins) qr' ->
                let v, ins = sum_rate (qa', qb', qr') in
                if v > best_v then (v, ins) else (best_v, best_ins))
              (best_v, best_ins) (refine qr))
          (best_v, best_ins) (refine qb))
      (neg_infinity, uniform_inputs net)
      (refine qa)
  in
  refined

let time_shared_region ?weights protocol kind net inputs_list =
  if inputs_list = [] then
    invalid_arg "Discrete.time_shared_region: no input distributions";
  Rate_region.union_polygon ?weights
    (List.map (fun ins -> bounds protocol kind net ins) inputs_list)

let bec_network ~e_ab ~e_ar ~e_br ~e_mac =
  List.iter
    (fun e ->
      if e < 0. || e > 1. then invalid_arg "Discrete.bec_network: bad erasure")
    [ e_ab; e_ar; e_br; e_mac ];
  let erasure_xor =
    (* output 0/1 = the XOR, output 2 = erasure *)
    Infotheory.Mac.create
      (Array.init 2 (fun x1 ->
           Array.init 2 (fun x2 ->
               let clean = x1 lxor x2 in
               Array.init 3 (fun y ->
                   if y = 2 then e_mac
                   else if y = clean then 1. -. e_mac
                   else 0.))))
  in
  make
    ~ch_ab:(Infotheory.Channels.bec e_ab)
    ~ch_ar:(Infotheory.Channels.bec e_ar)
    ~ch_br:(Infotheory.Channels.bec e_br)
    ~mac_r:erasure_xor

let quaternary_network ~p =
  if p < 0. || p > 1. then invalid_arg "Discrete.quaternary_network: bad p";
  let uniform_error =
    Infotheory.Dmc.create
      (Array.init 4 (fun x ->
           Array.init 4 (fun y -> if y = x then 1. -. p else p /. 3.)))
  in
  let mod4_mac =
    Infotheory.Mac.create
      (Array.init 4 (fun x1 ->
           Array.init 4 (fun x2 ->
               let clean = (x1 + x2) mod 4 in
               Array.init 4 (fun y ->
                   if y = clean then 1. -. p else p /. 3.))))
  in
  make ~ch_ab:uniform_error ~ch_ar:uniform_error ~ch_br:uniform_error
    ~mac_r:mod4_mac
