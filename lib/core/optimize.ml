type sum_rate_result = {
  protocol : Protocol.t;
  bound_kind : Bound.kind;
  sum_rate : float;
  ra : float;
  rb : float;
  deltas : float array;
}

(* Scenario-level cache: a scenario is a plain record of floats, so
   (protocol, kind, scenario) is a canonical key without rendering the
   bound system at all. On a warm pass this skips bound construction
   and the per-LP key hashing entirely. *)
let sum_rate_cache :
    (Protocol.t * Bound.kind * Gaussian.scenario, sum_rate_result)
    Engine.Memo.t =
  Engine.Memo.create ~name:"optimize.sum_rate" ()

let sum_rate protocol kind scenario =
  let r =
    Engine.Memo.find_or_add sum_rate_cache (protocol, kind, scenario)
      (fun () ->
        Telemetry.Span.with_span ~cat:"optimize" "optimize.sum_rate"
          ~args:
            [ ("protocol", Telemetry.Json.String (Protocol.name protocol));
              ("bound", Telemetry.Json.String (Bound.kind_name kind));
            ]
        @@ fun () ->
        let b = Gaussian.bounds protocol kind scenario in
        let r = Rate_region.max_sum_rate b in
        { protocol;
          bound_kind = kind;
          sum_rate = Rate_region.sum r;
          ra = r.Rate_region.ra;
          rb = r.Rate_region.rb;
          deltas = r.Rate_region.deltas;
        })
  in
  (* fresh deltas so callers can never mutate the cached schedule *)
  { r with deltas = Array.copy r.deltas }

let all_sum_rates kind scenario =
  Engine.Pool.map (fun p -> sum_rate p kind scenario) Protocol.all

let best_protocol kind scenario =
  match all_sum_rates kind scenario with
  | [] -> assert false (* Protocol.all is non-empty *)
  | first :: rest ->
    List.fold_left
      (fun best r -> if r.sum_rate > best.sum_rate +. 1e-12 then r else best)
      first rest

let crossover_powers_db ?(lo_db = -10.) ?(hi_db = 25.) ?(samples = 141)
    (p1, p2) ~gains kind =
  let diff power_db =
    let s = Gaussian.scenario ~power_db ~gains in
    (sum_rate p1 kind s).sum_rate -. (sum_rate p2 kind s).sum_rate
  in
  Numerics.Root.crossings ~f:diff ~lo:lo_db ~hi:hi_db ~samples

let hbc_strict_advantage_uncached scenario =
  Telemetry.Span.with_span ~cat:"optimize" "optimize.hbc_advantage"
  @@ fun () ->
  let hbc = Gaussian.bounds Protocol.Hbc Bound.Inner scenario in
  let mabc_outer = Gaussian.bounds Protocol.Mabc Bound.Outer scenario in
  let tdbc_outer = Gaussian.bounds Protocol.Tdbc Bound.Outer scenario in
  let candidates = Rate_region.boundary ~weights:129 hbc in
  (* build each outer polygon once, not once per candidate *)
  let mabc_poly = Rate_region.polygon mabc_outer in
  let tdbc_poly = Rate_region.polygon tdbc_outer in
  let distance bound poly ~ra ~rb =
    if Rate_region.achievable bound ~ra ~rb then 0.
    else
      Numerics.Polygon.distance_to_boundary poly (Numerics.Vec2.make ra rb)
  in
  let outside =
    Engine.Pool.map
      (fun (p : Numerics.Vec2.t) ->
        let ra = p.Numerics.Vec2.x and rb = p.Numerics.Vec2.y in
        let d_mabc = distance mabc_outer mabc_poly ~ra ~rb in
        let d_tdbc = distance tdbc_outer tdbc_poly ~ra ~rb in
        if d_mabc > 1e-9 && d_tdbc > 1e-9 then
          Some (ra, rb, Float.min d_mabc d_tdbc)
        else None)
      candidates
    |> List.filter_map Fun.id
  in
  match outside with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun ((_, _, m_best) as best) ((_, _, m) as cand) ->
           if m > m_best then cand else best)
         first rest)

(* The full advantage search (a 129-weight sweep plus two outer-bound
   polygons plus per-candidate feasibility probes) is deterministic in
   the scenario, so its verdict is cached whole. *)
let hbc_advantage_cache :
    (Gaussian.scenario, (float * float * float) option) Engine.Memo.t =
  Engine.Memo.create ~name:"optimize.hbc_advantage" ()

let hbc_strict_advantage scenario =
  Engine.Memo.find_or_add hbc_advantage_cache scenario (fun () ->
      hbc_strict_advantage_uncached scenario)
