(** Rate regions induced by a bound system, computed exactly by linear
    programming.

    For a bound system [B] (see {!Bound}), the achievable set
    [{(Ra, Rb) : exists Delta in simplex, all constraints hold}] is the
    projection of a polytope and hence a convex polygon in the positive
    quadrant, down-closed by construction. Its boundary is traced by
    maximising [w Ra + (1-w) Rb] over a sweep of weights — each LP also
    yields the optimising phase schedule. *)

type opt_result = {
  ra : float;
  rb : float;
  deltas : float array;  (** optimal phase durations (sum to 1) *)
}

val sum : opt_result -> float
(** [ra +. rb]. *)

val lp_constraints : Bound.t -> int * Linprog.Simplex.constr list
(** The raw LP behind every query on this region: variable count and
    constraint rows over [x = [Ra; Rb; d_1; ...; d_L]] (the bound's
    terms as [<=] rows plus the duration simplex equality). Exposed so
    harnesses (the bench's cold-vs-warm LP comparison) can drive
    {!Linprog.Simplex} / {!Linprog.Solver} on the exact production
    system; ordinary callers never need it. *)

val max_weighted : Bound.t -> wa:float -> wb:float -> opt_result
(** Maximise [wa Ra + wb Rb]; weights must be non-negative, not both 0.
    Raises [Failure] if the LP misbehaves (cannot happen for bound
    systems built by {!Gaussian} — they are bounded and feasible).

    Solutions are memoized in a process-wide thread-safe cache keyed on
    the bound's canonical coefficient signature and the weight pair
    (see [docs/ENGINE.md]); repeated sweeps over overlapping scenarios
    reuse LP solutions instead of re-solving. The cache never changes
    results — only whether the simplex solver actually runs. *)

val clear_cache : unit -> unit
(** Drop all memoized LP solutions and feasibility probes (useful for
    timing cold paths; never needed for correctness). *)

val max_sum_rate : Bound.t -> opt_result
(** The optimal sum rate and the durations achieving it (the quantity
    plotted in the paper's Fig. 3). *)

val max_ra : Bound.t -> opt_result
(** Lexicographic: maximise Ra, then Rb (the region's rightmost corner). *)

val max_rb : Bound.t -> opt_result

val achievable : Bound.t -> ra:float -> rb:float -> bool
(** Exact membership test for the rate pair (an LP feasibility probe over
    the phase durations, memoized like {!max_weighted}). *)

val boundary : ?weights:int -> Bound.t -> Numerics.Vec2.t list
(** [boundary b] is the list of Pareto-frontier vertices obtained from a
    sweep of [weights] (default 65) weight vectors, deduplicated, ordered
    by increasing Ra. *)

val polygon : ?weights:int -> Bound.t -> Numerics.Vec2.t list
(** The full down-closed region polygon (counter-clockwise, includes the
    origin and the axis intercepts) — suitable for area, containment and
    plotting. *)

val area : ?weights:int -> Bound.t -> float

val contains_region : ?weights:int -> Bound.t -> Bound.t -> bool
(** [contains_region big small]: every boundary vertex of [small] is
    achievable under [big] (exact for convex regions). *)

val distance_outside : Bound.t -> ra:float -> rb:float -> float
(** 0 when the pair is achievable; otherwise the Euclidean distance from
    the pair to the region's polygon — used to quantify by how much an
    HBC point escapes the MABC/TDBC outer bounds. *)

val max_product : ?weights:int -> Bound.t -> Numerics.Vec2.t
(** The proportional-fair operating point: the rate pair on the Pareto
    frontier maximising [Ra * Rb] (equivalently [log Ra + log Rb]).
    Exact up to the boundary discretisation: the product is maximised in
    closed form on every frontier edge. *)

val union_polygon : ?weights:int -> Bound.t list -> Numerics.Vec2.t list
(** Down-closed convex hull of the union of several regions — the
    time-sharing operation behind the |Q| > 1 form of the theorems
    (Fenchel–Bunt caps useful |Q| at 5): e.g. the discrete bounds
    evaluated at several input distributions and then time-shared.
    Raises [Invalid_argument] on an empty list. *)

val binding_terms : ?eps:float -> Bound.t -> opt_result -> Bound.term list
(** The constraints tight (within [eps], default 1e-7) at the given
    operating point — i.e. which cut-set/decoding step limits the
    protocol there. *)

val boundary_with_schedules : ?weights:int -> Bound.t -> opt_result list
(** Like {!boundary} but keeps, for every Pareto vertex, the phase
    durations achieving it — what a scheduler actually needs to operate
    at that point. Ordered by increasing Ra. *)
