(** Symbolic rate-bound systems.

    For a fixed input distribution (the Gaussian evaluation takes
    [|Q| = 1] as in the paper), every bound in Theorems 2–6 has the form

    {[ ca * Ra + cb * Rb <= sum_l per_phase.(l) * Delta_l ]}

    with non-negative coefficients: mutual-information terms scale
    linearly with the phase durations. A bound system is such a list of
    constraints together with the simplex [sum Delta = 1, Delta >= 0];
    the achievable region it induces in the [(Ra, Rb)] plane — after
    projecting out the phase durations — is a convex polytope, which is
    why the whole evaluation reduces to small linear programs. *)

type kind = Inner | Outer
(** [Inner]: an achievable region (Theorems 2, 3, 5).
    [Outer]: a converse bound (Theorems 2, 4, 6). For MABC the two
    coincide — Theorem 2 is the capacity region. *)

type term = {
  ca : float;                (** coefficient of Ra (0 or 1 here) *)
  cb : float;                (** coefficient of Rb *)
  per_phase : float array;   (** bits/use contributed by each phase *)
  label : string;            (** which cut / decoding step this encodes *)
}

type t = {
  protocol : Protocol.t;
  bound_kind : kind;
  num_phases : int;
  terms : term list;
}

val kind_name : kind -> string

val make : protocol:Protocol.t -> bound_kind:kind -> num_phases:int ->
  terms:term list -> t
(** Validates that every term has [num_phases] coefficients, all
    non-negative, and [ca, cb >= 0] with [ca +. cb > 0]. *)

val term : ?label:string -> ca:float -> cb:float -> float array -> term

val rate_budget : t -> deltas:float array -> term -> float
(** [rate_budget t ~deltas term] is the right-hand side
    [sum_l per_phase.(l) * deltas.(l)]. *)

val satisfied : t -> deltas:float array -> ra:float -> rb:float -> bool
(** Checks all constraints at the given durations and rate pair
    (with a 1e-9 slack). [deltas] must sum to 1 within 1e-6. *)

val pp : Format.formatter -> t -> unit
