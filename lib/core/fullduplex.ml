let bounds (s : Gaussian.scenario) =
  let r = Gaussian.link_rates s in
  let ra = Bound.term ~ca:1. ~cb:0. in
  let rb = Bound.term ~ca:0. ~cb:1. in
  let rsum = Bound.term ~ca:1. ~cb:1. in
  Bound.make ~protocol:Protocol.Mabc ~bound_kind:Bound.Inner ~num_phases:1
    ~terms:
      [ ra ~label:"FD: a->r MAC" [| r.Gaussian.c_ar |];
        ra ~label:"FD: r->b broadcast" [| r.Gaussian.c_br |];
        rb ~label:"FD: b->r MAC" [| r.Gaussian.c_br |];
        rb ~label:"FD: r->a broadcast" [| r.Gaussian.c_ar |];
        rsum ~label:"FD: relay decodes both" [| r.Gaussian.c_mac |];
      ]

let sum_rate s = Rate_region.sum (Rate_region.max_sum_rate (bounds s))

let penalty_table ?(powers_db = [ 0.; 5.; 10.; 15. ])
    ?(gains = Channel.Gains.paper_fig4) () =
  let rows =
    List.map
      (fun power_db ->
        let s = Gaussian.scenario ~power_db ~gains in
        let fd = sum_rate s in
        let best_hd = Optimize.best_protocol Bound.Inner s in
        [ Printf.sprintf "%g" power_db;
          Printf.sprintf "%.4f" fd;
          Printf.sprintf "%s (%.4f)"
            (Protocol.name best_hd.Optimize.protocol)
            best_hd.Optimize.sum_rate;
          Printf.sprintf "%.1f%%"
            (100. *. (1. -. (best_hd.Optimize.sum_rate /. Float.max fd 1e-12)));
        ])
      powers_db
  in
  { Figures.table_id = "fd-penalty";
    table_title =
      "Half-duplex penalty: full-duplex DF (Rankov-Wittneben) vs the best \
       half-duplex protocol";
    headers = [ "P (dB)"; "full duplex"; "best half duplex"; "penalty" ];
    rows;
  }
