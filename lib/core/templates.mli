(** Protocol bound templates, shared between the Gaussian and the
    discrete evaluations.

    Theorems 2–6 have the same *structure* for any memoryless channel:
    only the per-phase mutual-information values differ. This module
    builds the {!Bound.t} systems from those values. *)

type mi = {
  ab : float;       (** I(Xa; Yb), a transmitting to b, single user *)
  ba : float;       (** I(Xb; Ya), b transmitting to a *)
  ar : float;       (** I(Xa; Yr), a alone to relay *)
  br : float;       (** I(Xb; Yr), b alone to relay *)
  ra : float;       (** I(Xr; Ya), relay broadcast heard by a *)
  rb : float;       (** I(Xr; Yb), relay broadcast heard by b *)
  mac_a : float;    (** I(Xa; Yr | Xb) in a MAC phase *)
  mac_b : float;    (** I(Xb; Yr | Xa) in a MAC phase *)
  mac_sum : float;  (** I(Xa, Xb; Yr) in a MAC phase *)
  a_rb : float;     (** I(Xa; Yr, Yb), a heard jointly by r and b *)
  b_ra : float;     (** I(Xb; Yr, Ya) *)
}
(** In the Gaussian case [ab = ba], [ar = mac_a], [br = mac_b],
    [ra = ar] and [rb = br] hold by reciprocity and Gaussian optimality,
    but discrete networks with asymmetric input distributions may break
    all of these equalities. *)

val validate : mi -> unit
(** All values must be finite and non-negative. *)

val dt : mi -> Bound.t
val naive : mi -> Bound.t
val mabc : Bound.kind -> mi -> Bound.t
val tdbc : Bound.kind -> mi -> Bound.t
val hbc : Bound.kind -> mi -> Bound.t

val bounds : Protocol.t -> Bound.kind -> mi -> Bound.t
