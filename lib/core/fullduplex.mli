(** The full-duplex decode-and-forward reference point.

    The paper's protocols exist because of the half-duplex constraint; it
    cites Rankov–Wittneben (ISIT 2006, reference [9]) for the achievable
    region when all nodes are full duplex. There the relay receives the
    two-user MAC while simultaneously broadcasting the network-coded
    message, so there is no time splitting at all and the region is

    {[ Ra <= min (C (P G_ar), C (P G_br))
       Rb <= min (C (P G_br), C (P G_ar))
       Ra + Rb <= C (P G_ar + P G_br)      (relay decodes both) ]}

    (idealised: perfect self-interference cancellation, decode-and-
    forward, direct link ignored as in [9]'s DF scheme). Comparing it to
    the half-duplex protocols isolates what the half-duplex constraint
    costs. *)

val bounds : Gaussian.scenario -> Bound.t
(** A single-"phase" bound system ([Delta_1 = 1]). The [Bound.t] is
    tagged with {!Protocol.Mabc} (its full-duplex analogue) purely for
    bookkeeping — do not feed it to the simulators, whose schedules are
    per-protocol. *)

val sum_rate : Gaussian.scenario -> float

val penalty_table :
  ?powers_db:float list -> ?gains:Channel.Gains.t -> unit -> Figures.table
(** Half-duplex penalty: full-duplex DF sum rate versus the best
    half-duplex protocol, per power. *)
