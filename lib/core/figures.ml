type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

type table = {
  table_id : string;
  table_title : string;
  headers : string list;
  rows : string list list;
}

let fmt_f v = Printf.sprintf "%.4f" v

(* Every generator runs under a span so a trace of a figure pass shows
   one bar per artifact with the LP / region work nested beneath it. *)
let span name f = Telemetry.Span.with_span ~cat:"figures" name f

let fig3 ?(power_db = 15.) ?(exponent = 3.) ?(samples = 37) () =
  span "figures.fig3" @@ fun () ->
  let pl = Channel.Pathloss.make ~exponent () in
  let positions =
    Array.to_list (Numerics.Float_utils.linspace 0.05 0.95 samples)
  in
  let sum_rate_at protocol d =
    let gains = Channel.Pathloss.gains_on_line pl ~relay_position:d in
    let s = Gaussian.scenario ~power_db ~gains in
    (Optimize.sum_rate protocol Bound.Inner s).Optimize.sum_rate
  in
  (* one pool task per position, each evaluating every protocol *)
  let per_position =
    Engine.Pool.map
      (fun d -> List.map (fun p -> sum_rate_at p d) Protocol.all)
      positions
  in
  let series =
    List.mapi
      (fun pi p ->
        { label = Protocol.name p;
          points =
            List.map2 (fun d rates -> (d, List.nth rates pi)) positions
              per_position;
        })
      Protocol.all
  in
  { id = "fig3";
    title =
      Printf.sprintf
        "Achievable sum rates vs relay position (P=%g dB, Gab=0 dB, alpha=%g)"
        power_db exponent;
    xlabel = "relay position d (distance from a)";
    ylabel = "sum rate Ra+Rb (bits/use)";
    series;
  }

let fig3_snr ?(gains = Channel.Gains.paper_fig4) ?(samples = 36) () =
  span "figures.fig3_snr" @@ fun () ->
  let powers = Array.to_list (Numerics.Float_utils.linspace (-10.) 25. samples) in
  let per_power =
    Engine.Pool.map
      (fun power_db ->
        let s = Gaussian.scenario ~power_db ~gains in
        List.map
          (fun p -> (Optimize.sum_rate p Bound.Inner s).Optimize.sum_rate)
          Protocol.all)
      powers
  in
  let series =
    List.mapi
      (fun pi p ->
        { label = Protocol.name p;
          points =
            List.map2 (fun power_db rates -> (power_db, List.nth rates pi))
              powers per_power;
        })
      Protocol.all
  in
  { id = "fig3-snr";
    title = "Achievable sum rates vs transmit power (Fig. 4 gains)";
    xlabel = "P (dB)";
    ylabel = "sum rate Ra+Rb (bits/use)";
    series;
  }

let boundary_points b =
  List.map
    (fun (p : Numerics.Vec2.t) -> (p.Numerics.Vec2.x, p.Numerics.Vec2.y))
    (Rate_region.boundary b)

let fig4 ~power_db ?(gains = Channel.Gains.paper_fig4) () =
  span "figures.fig4" @@ fun () ->
  let s = Gaussian.scenario ~power_db ~gains in
  let inner p =
    { label = Protocol.name p ^ " inner";
      points = boundary_points (Gaussian.bounds p Bound.Inner s);
    }
  in
  let outer p =
    { label = Protocol.name p ^ " outer";
      points = boundary_points (Gaussian.bounds p Bound.Outer s);
    }
  in
  { id = Printf.sprintf "fig4-%gdB" power_db;
    title =
      Printf.sprintf
        "Achievable rate regions and outer bounds (P=%g dB, Gab=0 Gar=5 Gbr=7 dB)"
        power_db;
    xlabel = "Ra (bits/use)";
    ylabel = "Rb (bits/use)";
    series =
      [ inner Protocol.Dt;
        inner Protocol.Mabc;
        (* Theorem 2: MABC outer = inner = capacity *)
        inner Protocol.Tdbc;
        outer Protocol.Tdbc;
        inner Protocol.Hbc;
        outer Protocol.Hbc;
      ];
  }

let gap_table ?(powers_db = [ 0.; 5.; 10.; 15. ]) ?(gains = Channel.Gains.paper_fig4)
    () =
  span "figures.gap_table" @@ fun () ->
  let jobs =
    List.concat_map
      (fun power_db ->
        List.map (fun p -> (power_db, p)) [ Protocol.Tdbc; Protocol.Hbc ])
      powers_db
  in
  let rows =
    Engine.Pool.map
      (fun (power_db, p) ->
        let s = Gaussian.scenario ~power_db ~gains in
        let inner = (Optimize.sum_rate p Bound.Inner s).Optimize.sum_rate in
        let outer = (Optimize.sum_rate p Bound.Outer s).Optimize.sum_rate in
        let gap =
          Float.max 0. ((outer -. inner) /. Float.max outer 1e-12 *. 100.)
        in
        [ Printf.sprintf "%g" power_db;
          Protocol.name p;
          fmt_f inner;
          fmt_f outer;
          Printf.sprintf "%.2f%%" gap;
        ])
      jobs
  in
  { table_id = "gap";
    table_title = "Inner vs outer optimal sum rates (TDBC: Thm 3/4, HBC: Thm 5/6)";
    headers = [ "P (dB)"; "protocol"; "inner"; "outer"; "rel. gap" ];
    rows;
  }

let crossover_table ?(gains = Channel.Gains.paper_fig4) () =
  span "figures.crossover_table" @@ fun () ->
  let pairs =
    [ (Protocol.Mabc, Protocol.Tdbc);
      (Protocol.Mabc, Protocol.Dt);
      (Protocol.Tdbc, Protocol.Dt);
    ]
  in
  let rows =
    List.map
      (fun (p1, p2) ->
        let xs =
          Optimize.crossover_powers_db (p1, p2) ~gains Bound.Inner
        in
        let rendered =
          if xs = [] then "none in [-10, 25] dB"
          else String.concat ", " (List.map (Printf.sprintf "%.2f dB") xs)
        in
        [ Protocol.name p1 ^ " vs " ^ Protocol.name p2; rendered ])
      pairs
  in
  (* HBC never crosses the others (it contains both as special cases);
     report the band where it is STRICTLY better instead *)
  let hbc_band =
    let strict power_db =
      let s = Gaussian.scenario ~power_db ~gains in
      let sum p = (Optimize.sum_rate p Bound.Inner s).Optimize.sum_rate in
      sum Protocol.Hbc
      -. Float.max (sum Protocol.Mabc) (sum Protocol.Tdbc)
      > 1e-4
    in
    let samples = Array.to_list (Numerics.Float_utils.linspace (-10.) 25. 141) in
    let flags = Engine.Pool.map strict samples in
    let inside =
      List.filter_map
        (fun (p, ok) -> if ok then Some p else None)
        (List.combine samples flags)
    in
    match inside with
    | [] -> "never strict in [-10, 25] dB"
    | _ ->
      Printf.sprintf "strict advantage for P in [%.2f, %.2f] dB"
        (List.fold_left Float.min infinity inside)
        (List.fold_left Float.max neg_infinity inside)
  in
  let rows = rows @ [ [ "HBC vs max(MABC, TDBC)"; hbc_band ] ] in
  { table_id = "crossover";
    table_title = "Sum-rate crossover powers (Fig. 4 gains)";
    headers = [ "protocol pair"; "crossover P" ];
    rows;
  }

let hbc_witness_table ?(powers_db = [ 0.; 5.; 10. ])
    ?(gains = Channel.Gains.paper_fig4) () =
  span "figures.hbc_witness_table" @@ fun () ->
  let rows =
    List.map
      (fun power_db ->
        let s = Gaussian.scenario ~power_db ~gains in
        match Optimize.hbc_strict_advantage s with
        | Some (ra, rb, margin) ->
          [ Printf.sprintf "%g" power_db;
            fmt_f ra;
            fmt_f rb;
            fmt_f margin;
            "yes";
          ]
        | None ->
          [ Printf.sprintf "%g" power_db; "-"; "-"; "-"; "no" ])
      powers_db
  in
  { table_id = "hbc-witness";
    table_title =
      "HBC-achievable pairs outside BOTH the MABC and TDBC outer bounds";
    headers = [ "P (dB)"; "Ra"; "Rb"; "margin"; "escapes?" ];
    rows;
  }

let coding_gain_table ?(powers_db = [ 0.; 5.; 10.; 15. ])
    ?(gains = Channel.Gains.paper_fig4) () =
  span "figures.coding_gain_table" @@ fun () ->
  let rows =
    List.map
      (fun power_db ->
        let s = Gaussian.scenario ~power_db ~gains in
        let sum p = (Optimize.sum_rate p Bound.Inner s).Optimize.sum_rate in
        let naive = sum Protocol.Naive in
        let best_coded =
          List.fold_left
            (fun acc p -> Float.max acc (sum p))
            0. Protocol.coded
        in
        [ Printf.sprintf "%g" power_db;
          fmt_f (sum Protocol.Dt);
          fmt_f naive;
          fmt_f best_coded;
          Printf.sprintf "+%.1f%%" (100. *. ((best_coded /. naive) -. 1.));
        ])
      powers_db
  in
  { table_id = "coding-gain";
    table_title =
      "Coded cooperation vs the naive 4-phase routing baseline (Fig. 1)";
    headers =
      [ "P (dB)"; "DT"; "NAIVE"; "best coded"; "gain over NAIVE" ];
    rows;
  }

let discrete_table ?(p_range = [ 0.01; 0.05; 0.1; 0.2 ]) () =
  span "figures.discrete_table" @@ fun () ->
  let rows =
    List.concat_map
      (fun p ->
        let net =
          (* direct link noisier than the relay links, mirroring the
             Gaussian geometry Gab <= Gar <= Gbr *)
          Discrete.bsc_network ~p_ab:(Float.min 0.45 (3. *. p)) ~p_ar:(1.5 *. p)
            ~p_br:p ~p_mac:(1.5 *. p)
        in
        let ins = Discrete.uniform_inputs net in
        List.map
          (fun proto ->
            let b = Discrete.bounds proto Bound.Inner net ins in
            let r = Rate_region.max_sum_rate b in
            [ Printf.sprintf "%.2f" p;
              Protocol.name proto;
              fmt_f (Rate_region.sum r);
            ])
          Protocol.relayed)
      p_range
  in
  { table_id = "discrete-bsc";
    table_title =
      "Discrete (all-BSC) network: optimal sum rates, uniform inputs";
    headers = [ "relay-link p"; "protocol"; "sum rate" ];
    rows;
  }

let all_figures () =
  [ fig3 (); fig3_snr (); fig4 ~power_db:0. (); fig4 ~power_db:10. () ]

let all_tables () =
  [ gap_table ();
    crossover_table ();
    hbc_witness_table ();
    coding_gain_table ();
    discrete_table ();
  ]
