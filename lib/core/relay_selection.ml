type candidate = { relay_id : string; gains : Channel.Gains.t }

type choice = {
  relay : candidate;
  protocol : Protocol.t;
  sum_rate : float;
  deltas : float array;
}

let candidates_on_line pl ~positions =
  List.map
    (fun d ->
      { relay_id = Printf.sprintf "r@%.2f" d;
        gains = Channel.Pathloss.gains_on_line pl ~relay_position:d;
      })
    positions

let best ?(protocols = Protocol.all) ~power cands =
  if cands = [] then invalid_arg "Relay_selection.best: no candidates";
  if protocols = [] then invalid_arg "Relay_selection.best: no protocols";
  let evaluate cand =
    let s = Gaussian.scenario_lin ~power ~gains:cand.gains in
    List.map
      (fun protocol ->
        let r = Optimize.sum_rate protocol Bound.Inner s in
        { relay = cand;
          protocol;
          sum_rate = r.Optimize.sum_rate;
          deltas = r.Optimize.deltas;
        })
      protocols
  in
  let all = List.concat_map evaluate cands in
  match all with
  | [] -> assert false (* both inputs checked non-empty *)
  | first :: rest ->
    List.fold_left
      (fun acc c -> if c.sum_rate > acc.sum_rate +. 1e-12 then c else acc)
      first rest

let selection_gain ?(blocks = 500) ?(seed = 7) ~power cands =
  if cands = [] then invalid_arg "Relay_selection.selection_gain: no candidates";
  if blocks <= 0 then invalid_arg "Relay_selection.selection_gain: blocks <= 0";
  let processes =
    List.map
      (fun cand -> Channel.Fading.create ~rng_seed:(seed + Hashtbl.hash cand.relay_id) ~mean:cand.gains ())
      cands
  in
  let best_acc = ref 0. and fixed_acc = ref 0. in
  for _ = 1 to blocks do
    let realised =
      List.map2
        (fun cand fading -> { cand with gains = Channel.Fading.draw fading })
        cands processes
    in
    let best_rate =
      List.fold_left
        (fun acc cand ->
          Float.max acc (best ~power [ cand ]).sum_rate)
        0. realised
    in
    best_acc := !best_acc +. best_rate;
    (match realised with
    | fixed :: _ -> fixed_acc := !fixed_acc +. (best ~power [ fixed ]).sum_rate
    | [] -> assert false (* cands checked non-empty *))
  done;
  let n = float_of_int blocks in
  (!best_acc /. n, !fixed_acc /. n)
