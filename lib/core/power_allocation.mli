(** Per-phase power allocation (an ablation of the paper's equal-power
    assumption).

    Section IV assumes every node transmits at power [P] during each of
    its phases — a {e peak} power constraint. Under an {e average
    energy} constraint, a node that is silent for part of the block may
    concentrate its energy into its active phases: a node active for a
    fraction [f] of the block transmits at [P / f]. Because the boosted
    power depends on the phase durations, the problem is no longer a
    linear program; this module optimises the durations by simplex-grid
    search with local refinement, evaluating a small exact LP in
    [(Ra, Rb)] at every candidate schedule.

    Restrictions (documented, deliberate): inner bounds only, and a node
    active in several phases (HBC terminals) spreads its energy at
    constant power across them. *)

type constraint_kind =
  | Peak            (** power [P] whenever transmitting — the paper's model *)
  | Average_energy  (** energy [P * block]: power [P / active_fraction] *)

type result = {
  sum_rate : float;
  ra : float;
  rb : float;
  deltas : float array;
  node_powers : float * float * float;
      (** realised transmit powers of (a, b, r) during their active
          phases *)
}

val sum_rate :
  ?resolution:int -> ?refinements:int -> Protocol.t -> Gaussian.scenario ->
  constraint_kind -> result
(** [sum_rate p s kind] maximises [Ra + Rb]. [resolution] (default 16)
    is the simplex grid density per round; [refinements] (default 2)
    the number of local-refinement rounds. Under [Peak] the result
    matches {!Optimize.sum_rate} up to grid error (a library
    self-check). *)

val boost_table :
  ?powers_db:float list -> ?gains:Channel.Gains.t -> unit -> Figures.table
(** Extension artifact: sum rates under the peak versus average-energy
    constraint for each relay protocol, and the relative gain from
    energy banking. *)
