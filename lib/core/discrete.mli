(** Discrete-memoryless evaluation of the bounds (Theorems 2–6 as stated,
    before the Gaussian specialisation).

    A discrete bidirectional relay network consists of three single-user
    links (each a {!Infotheory.Dmc.t}, used when exactly one node
    transmits) and a two-user MAC to the relay (used in the MABC phase 1
    and HBC phase 3). Links are reciprocal, as in the paper. The paper
    never evaluates this case numerically — this module exists because
    the theorems are stated for DMCs and a downstream user of the library
    may care about, say, binary-modulated networks. *)

type network = {
  ch_ab : Infotheory.Dmc.t;  (** a <-> b direct link *)
  ch_ar : Infotheory.Dmc.t;  (** a <-> r *)
  ch_br : Infotheory.Dmc.t;  (** b <-> r *)
  mac_r : Infotheory.Mac.t;  (** (a, b) -> r joint channel *)
}

val make : ch_ab:Infotheory.Dmc.t -> ch_ar:Infotheory.Dmc.t ->
  ch_br:Infotheory.Dmc.t -> mac_r:Infotheory.Mac.t -> network
(** Validates input-alphabet consistency: the MAC user alphabets must
    match the single-user link input alphabets of a and b. *)

val bsc_network :
  p_ab:float -> p_ar:float -> p_br:float -> p_mac:float -> network
(** All-binary network: the three links are BSCs and the relay MAC is
    the noisy-XOR channel [Yr = Xa xor Xb xor Bern(p_mac)] — the natural
    binary caricature of superposition where the relay can at best learn
    the XOR, which is exactly what it needs to forward. *)

type inputs = {
  p_a : Infotheory.Pmf.t;  (** input distribution of terminal a *)
  p_b : Infotheory.Pmf.t;
  p_r : Infotheory.Pmf.t;  (** relay broadcast input distribution *)
}

val uniform_inputs : network -> inputs

val mi_values : network -> inputs -> Templates.mi
(** All mutual-information terms of the bound templates for the given
    (product) input distributions. The joint-observation terms
    [I(Xa; Yr, Yb)] use the product channel of the two independent-noise
    links. *)

val bounds : Protocol.t -> Bound.kind -> network -> inputs -> Bound.t

val max_sum_rate_binary :
  ?grid:int -> Protocol.t -> Bound.kind -> network -> float * inputs
(** For all-binary networks: grid search over Bernoulli input parameters
    (default an 11-point grid per node, refined once) maximising the
    optimal sum rate; returns the best sum rate and the inputs achieving
    it. Raises [Invalid_argument] when some alphabet is not binary. *)

val time_shared_region :
  ?weights:int -> Protocol.t -> Bound.kind -> network -> inputs list ->
  Numerics.Vec2.t list
(** The |Q| > 1 evaluation: the down-closed convex hull of the regions
    obtained at each input tuple (time sharing across them). Raises
    [Invalid_argument] on an empty list. *)

val bec_network :
  e_ab:float -> e_ar:float -> e_br:float -> e_mac:float -> network
(** All-erasure network: BEC links and an erasure-XOR MAC at the relay
    ([Yr] is the XOR or an erasure). Binary inputs, ternary outputs. *)

val quaternary_network : p:float -> network
(** A 4-ary (QPSK-like) network: every link is a uniform-error channel
    over a 4-symbol alphabet (correct with probability [1 - p], each
    wrong symbol with [p / 3]); the relay MAC observes the modulo-4 sum
    through the same noise. Exercises non-binary alphabets end to end. *)
