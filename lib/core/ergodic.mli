(** Fading performance of the protocols.

    Section IV of the paper works with quasi-static fading and full CSI:
    within each block the nodes know the realised gains and can pick the
    LP-optimal phase schedule for that block. Two standard long-run
    figures of merit follow:

    - the {b ergodic} (long-run average) optimal sum rate
      [E_G max_{Delta} (Ra + Rb)], achieved by per-block adaptation;
    - the {b outage probability} of a schedule fixed in advance: the
      chance that a target rate pair is infeasible at the realised
      gains, and the resulting [epsilon]-outage rate.

    All expectations are Monte-Carlo averages over an explicit fading
    process, so they are deterministic given the seed. *)

type estimate = {
  mean : float;
  ci95 : float * float;  (** normal-approximation confidence interval *)
  blocks : int;
}

val ergodic_sum_rate :
  ?blocks:int -> Channel.Fading.t -> power:float -> Protocol.t -> estimate
(** [ergodic_sum_rate fading ~power p] estimates the full-CSI adaptive
    sum rate of protocol [p] over [blocks] (default 2000) fading draws. *)

val outage_probability :
  ?blocks:int -> Channel.Fading.t -> power:float -> Protocol.t ->
  ra:float -> rb:float -> estimate
(** Probability that the rate pair is infeasible (no phase schedule
    supports it) at the realised gains — the quasi-static outage of a
    rate-(ra, rb) service. *)

val epsilon_outage_sum_rate :
  ?blocks:int -> ?tol:float -> Channel.Fading.t -> power:float ->
  Protocol.t -> epsilon:float -> float
(** The largest symmetric-service sum rate [2 r] such that the pair
    [(r, r)] has outage probability at most [epsilon], found by
    bisection on [r]. *)

val outage_figure :
  ?blocks:int -> ?samples:int -> ?power_db:float ->
  ?mean_gains:Channel.Gains.t -> ?seed:int -> unit -> Figures.figure
(** Extension artifact: outage probability of a symmetric rate pair
    [(r, r)] versus the target sum rate [2 r], one series per protocol,
    under Rayleigh fading. The better protocol shifts the outage curve
    right. *)

val ergodic_table :
  ?blocks:int -> ?powers_db:float list -> ?mean_gains:Channel.Gains.t ->
  ?seed:int -> unit -> Figures.table
(** Extension artifact: ergodic sum rates of all four protocols under
    Rayleigh fading with the Fig. 4 mean gains. *)
