type estimate = { mean : float; ci95 : float * float; blocks : int }

let estimate_of_samples samples =
  { mean = Numerics.Stats.mean samples;
    ci95 = Numerics.Stats.confidence_interval_95 samples;
    blocks = Array.length samples;
  }

let sample_blocks ?(blocks = 2000) fading f =
  if blocks <= 0 then invalid_arg "Ergodic: blocks must be positive";
  Array.init blocks (fun _ -> f (Channel.Fading.draw fading))

let ergodic_sum_rate ?blocks fading ~power protocol =
  let samples =
    sample_blocks ?blocks fading (fun gains ->
        let s = Gaussian.scenario_lin ~power ~gains in
        (Optimize.sum_rate protocol Bound.Inner s).Optimize.sum_rate)
  in
  estimate_of_samples samples

let outage_probability ?blocks fading ~power protocol ~ra ~rb =
  if ra < 0. || rb < 0. then invalid_arg "Ergodic.outage_probability: negative rate";
  let samples =
    sample_blocks ?blocks fading (fun gains ->
        let s = Gaussian.scenario_lin ~power ~gains in
        let b = Gaussian.bounds protocol Bound.Inner s in
        if Rate_region.achievable b ~ra ~rb then 0. else 1.)
  in
  estimate_of_samples samples

let epsilon_outage_sum_rate ?blocks ?(tol = 1e-3) fading ~power protocol
    ~epsilon =
  if epsilon < 0. || epsilon > 1. then
    invalid_arg "Ergodic.epsilon_outage_sum_rate: epsilon outside [0,1]";
  (* outage grows with the target rate, so bisect on the symmetric rate.
     Draws are redrawn per evaluation; that noise is below [tol] for the
     default block counts, and determinism comes from the fading seed. *)
  let outage r =
    (outage_probability ?blocks fading ~power protocol ~ra:r ~rb:r).mean
  in
  (* bracket: 0 has no outage (always achievable); find an upper end *)
  let rec upper r = if outage r > epsilon || r > 64. then r else upper (2. *. r) in
  let hi = upper 0.25 in
  let rec bisect lo hi =
    if hi -. lo < tol then lo
    else
      let mid = (lo +. hi) /. 2. in
      if outage mid <= epsilon then bisect mid hi else bisect lo mid
  in
  2. *. bisect 0. hi

let ergodic_table ?(blocks = 1000) ?(powers_db = [ 0.; 5.; 10. ])
    ?(mean_gains = Channel.Gains.paper_fig4) ?(seed = 2024) () =
  let rows =
    List.concat_map
      (fun power_db ->
        let power = Numerics.Float_utils.db_to_lin power_db in
        List.map
          (fun protocol ->
            (* a fresh process per cell keeps cells independent of
               evaluation order *)
            let fading =
              Channel.Fading.create ~rng_seed:seed ~mean:mean_gains ()
            in
            let e = ergodic_sum_rate ~blocks fading ~power protocol in
            let lo, hi = e.ci95 in
            [ Printf.sprintf "%g" power_db;
              Protocol.name protocol;
              Printf.sprintf "%.4f" e.mean;
              Printf.sprintf "[%.4f, %.4f]" lo hi;
            ])
          Protocol.all)
      powers_db
  in
  { Figures.table_id = "ergodic";
    table_title =
      "Ergodic (full-CSI adaptive) sum rates under Rayleigh fading, \
       Fig. 4 mean gains";
    headers = [ "P (dB)"; "protocol"; "ergodic sum rate"; "95% CI" ];
    rows;
  }

let outage_figure ?(blocks = 800) ?(samples = 15) ?(power_db = 10.)
    ?(mean_gains = Channel.Gains.paper_fig4) ?(seed = 81) () =
  let power = Numerics.Float_utils.db_to_lin power_db in
  (* sweep targets up to the static-channel optimum of the best protocol *)
  let s_static = Gaussian.scenario_lin ~power ~gains:mean_gains in
  let top =
    (Optimize.best_protocol Bound.Inner s_static).Optimize.sum_rate
  in
  let targets = Numerics.Float_utils.linspace (0.05 *. top) top samples in
  let series =
    List.map
      (fun protocol ->
        let fading = Channel.Fading.create ~rng_seed:seed ~mean:mean_gains () in
        let points =
          Array.to_list
            (Array.map
               (fun sum_target ->
                 let r = sum_target /. 2. in
                 let o =
                   outage_probability ~blocks fading ~power protocol ~ra:r
                     ~rb:r
                 in
                 (sum_target, o.mean))
               targets)
        in
        { Figures.label = Protocol.name protocol; points })
      Protocol.all
  in
  { Figures.id = "outage";
    title =
      Printf.sprintf
        "Outage probability vs symmetric target sum rate (P=%g dB, Rayleigh)"
        power_db;
    xlabel = "target sum rate 2r (bits/use)";
    ylabel = "P(outage)";
    series;
  }
