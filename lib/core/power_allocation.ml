type constraint_kind = Peak | Average_energy

type result = {
  sum_rate : float;
  ra : float;
  rb : float;
  deltas : float array;
  node_powers : float * float * float;
}

(* which nodes transmit in each phase of each protocol *)
type node = A | B | R

let transmitters protocol phase =
  match (protocol, phase) with
  | Protocol.Dt, 0 -> [ A ]
  | Protocol.Dt, 1 -> [ B ]
  | Protocol.Naive, 0 -> [ A ]
  | Protocol.Naive, 1 -> [ R ]
  | Protocol.Naive, 2 -> [ B ]
  | Protocol.Naive, 3 -> [ R ]
  | Protocol.Mabc, 0 -> [ A; B ]
  | Protocol.Mabc, 1 -> [ R ]
  | Protocol.Tdbc, 0 -> [ A ]
  | Protocol.Tdbc, 1 -> [ B ]
  | Protocol.Tdbc, 2 -> [ R ]
  | Protocol.Hbc, 0 -> [ A ]
  | Protocol.Hbc, 1 -> [ B ]
  | Protocol.Hbc, 2 -> [ A; B ]
  | Protocol.Hbc, 3 -> [ R ]
  | (Protocol.Dt | Protocol.Naive | Protocol.Mabc | Protocol.Tdbc | Protocol.Hbc), _
    -> invalid_arg "Power_allocation.transmitters: phase out of range"

let active_fraction protocol deltas node =
  let acc = ref 0. in
  Array.iteri
    (fun l d -> if List.mem node (transmitters protocol l) then acc := !acc +. d)
    deltas;
  !acc

(* power of [node] during its active phases *)
let node_power kind protocol (s : Gaussian.scenario) deltas node =
  match kind with
  | Peak -> s.Gaussian.power
  | Average_energy ->
    let f = active_fraction protocol deltas node in
    if f <= 1e-12 then 0. (* never transmits: power is irrelevant *)
    else s.Gaussian.power /. f

(* the inner-bound constraints for fixed durations and per-node powers,
   as (ca, cb, budget) rows; mirrors Templates with per-phase powers *)
let constraint_rows protocol (s : Gaussian.scenario) kind deltas =
  let g = s.Gaussian.gains in
  let gab = g.Channel.Gains.g_ab
  and gar = g.Channel.Gains.g_ar
  and gbr = g.Channel.Gains.g_br in
  let pa = node_power kind protocol s deltas A in
  let pb = node_power kind protocol s deltas B in
  let pr = node_power kind protocol s deltas R in
  let c = Channel.Awgn.c in
  let d l = deltas.(l) in
  match protocol with
  | Protocol.Dt ->
    [ (1., 0., d 0 *. c (pa *. gab)); (0., 1., d 1 *. c (pb *. gab)) ]
  | Protocol.Naive ->
    [ (1., 0., d 0 *. c (pa *. gar));
      (1., 0., d 1 *. c (pr *. gbr));
      (0., 1., d 2 *. c (pb *. gbr));
      (0., 1., d 3 *. c (pr *. gar));
    ]
  | Protocol.Mabc ->
    [ (1., 0., d 0 *. c (pa *. gar));
      (1., 0., d 1 *. c (pr *. gbr));
      (0., 1., d 0 *. c (pb *. gbr));
      (0., 1., d 1 *. c (pr *. gar));
      (1., 1., d 0 *. c ((pa *. gar) +. (pb *. gbr)));
    ]
  | Protocol.Tdbc ->
    [ (1., 0., d 0 *. c (pa *. gar));
      (1., 0., (d 0 *. c (pa *. gab)) +. (d 2 *. c (pr *. gbr)));
      (0., 1., d 1 *. c (pb *. gbr));
      (0., 1., (d 1 *. c (pb *. gab)) +. (d 2 *. c (pr *. gar)));
    ]
  | Protocol.Hbc ->
    [ (1., 0., (d 0 +. d 2) *. c (pa *. gar));
      (1., 0., (d 0 *. c (pa *. gab)) +. (d 3 *. c (pr *. gbr)));
      (0., 1., (d 1 +. d 2) *. c (pb *. gbr));
      (0., 1., (d 1 *. c (pb *. gab)) +. (d 3 *. c (pr *. gar)));
      ( 1.,
        1.,
        (d 0 *. c (pa *. gar))
        +. (d 1 *. c (pb *. gbr))
        +. (d 2 *. c ((pa *. gar) +. (pb *. gbr))) );
    ]

(* maximise Ra + Rb over the fixed-schedule polygon *)
let rates_for rows =
  let constrs =
    List.map
      (fun (ca, cb, budget) ->
        Linprog.Simplex.constr [| ca; cb |] Linprog.Simplex.Le budget)
      rows
  in
  match Linprog.Simplex.maximize ~c:[| 1.; 1. |] ~constrs with
  | Linprog.Simplex.Optimal sol ->
    (sol.Linprog.Simplex.x.(0), sol.Linprog.Simplex.x.(1))
  | Linprog.Simplex.Unbounded | Linprog.Simplex.Infeasible ->
    (0., 0.) (* budgets are finite and non-negative; cannot happen *)

let evaluate protocol s kind deltas =
  let ra, rb = rates_for (constraint_rows protocol s kind deltas) in
  (ra +. rb, ra, rb)

(* enumerate compositions of [k] into [parts] non-negative integers *)
let iter_compositions ~parts ~k f =
  let counts = Array.make parts 0 in
  let rec go idx remaining =
    if idx = parts - 1 then begin
      counts.(idx) <- remaining;
      f counts
    end
    else
      for v = 0 to remaining do
        counts.(idx) <- v;
        go (idx + 1) (remaining - v)
      done
  in
  go 0 k

let sum_rate ?(resolution = 20) ?(refinements = 4) protocol s kind =
  if resolution < 2 then invalid_arg "Power_allocation.sum_rate: resolution < 2";
  let parts = Protocol.num_phases protocol in
  (* search over the simplex: first globally at [resolution], then
     refined grids centred on the incumbent with shrinking radius *)
  let best = ref (neg_infinity, 0., 0., Array.make parts (1. /. float_of_int parts)) in
  let consider deltas =
    let sum, ra, rb = evaluate protocol s kind deltas in
    let best_sum, _, _, _ = !best in
    if sum > best_sum then best := (sum, ra, rb, Array.copy deltas)
  in
  iter_compositions ~parts ~k:resolution (fun counts ->
      consider
        (Array.map (fun c -> float_of_int c /. float_of_int resolution) counts));
  for round = 1 to refinements do
    let _, _, _, centre = !best in
    (* shrink the whole grid toward the incumbent: candidates
       (1 - rho) centre + rho grid stay exactly on the simplex *)
    let rho = 0.4 ** float_of_int round in
    iter_compositions ~parts ~k:resolution (fun counts ->
        let cand =
          Array.mapi
            (fun i c ->
              ((1. -. rho) *. centre.(i))
              +. (rho *. float_of_int c /. float_of_int resolution))
            counts
        in
        consider cand)
  done;
  let sum, ra, rb, deltas = !best in
  { sum_rate = sum;
    ra;
    rb;
    deltas;
    node_powers =
      ( node_power kind protocol s deltas A,
        node_power kind protocol s deltas B,
        node_power kind protocol s deltas R );
  }

let boost_table ?(powers_db = [ 0.; 10. ]) ?(gains = Channel.Gains.paper_fig4)
    () =
  let rows =
    List.concat_map
      (fun power_db ->
        let s = Gaussian.scenario ~power_db ~gains in
        List.map
          (fun protocol ->
            let peak = sum_rate protocol s Peak in
            let avg = sum_rate protocol s Average_energy in
            [ Printf.sprintf "%g" power_db;
              Protocol.name protocol;
              Printf.sprintf "%.4f" peak.sum_rate;
              Printf.sprintf "%.4f" avg.sum_rate;
              Printf.sprintf "+%.1f%%"
                (100. *. ((avg.sum_rate /. Float.max peak.sum_rate 1e-12) -. 1.));
            ])
          Protocol.relayed)
      powers_db
  in
  { Figures.table_id = "power-boost";
    table_title =
      "Peak (paper) vs average-energy power constraint: energy banking gain";
    headers = [ "P (dB)"; "protocol"; "peak"; "avg-energy"; "gain" ];
    rows;
  }
