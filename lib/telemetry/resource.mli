(** GC and allocation accounting for resource attribution.

    Probes read the runtime's own monotone counters ([Gc.quick_stat],
    [Gc.allocated_bytes]) — no heap walk, so a sample costs tens of
    nanoseconds — but all call sites are still gated behind {!enabled}
    so the layer is a single atomic load and branch while it stays off
    (the same contract as {!Span}).

    Tracking is observation-only: enabling it never changes computed
    results, only what gets recorded. With tracking on, {!Span.with_span}
    attaches a per-span delta ([gc.minor_words], [gc.major_collections],
    [gc.alloc_bytes], …) to each recorded event, LP entry points
    aggregate [linprog.alloc_bytes], and {!account} folds a scope's
    totals into the process-wide [gc.*] registry counters.

    Per-span deltas overlap (a parent's delta includes its children's),
    so only {!account} — intended to wrap a command's workload exactly
    once — feeds the global counters; span deltas stay on the events. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run the thunk with tracking forced on/off, restoring the previous
    state afterwards (also on exceptions). *)

type sample
(** An opaque point-in-time reading of the current domain's GC state. *)

val sample : unit -> sample

type delta = {
  minor_words : float;        (** words allocated in the minor heap *)
  major_words : float;        (** words allocated directly on the major heap *)
  promoted_words : float;     (** words promoted minor → major *)
  minor_collections : int;
  major_collections : int;    (** completed major cycles *)
  alloc_bytes : float;        (** total bytes allocated ([Gc.allocated_bytes] delta) *)
}

val delta_since : sample -> delta
(** Consumption between the sample and now; every field is clamped at
    zero. Readings are per-domain in OCaml 5, so pair sample and delta
    on the same domain. *)

val measure : (unit -> 'a) -> 'a * delta
(** [measure f] runs [f] and returns its result together with the GC
    delta across the call. Unconditional — does not consult {!enabled}. *)

val account : (unit -> 'a) -> 'a
(** Run the thunk and fold its GC delta into the registry counters
    [gc.minor_words], [gc.major_words], [gc.promoted_words],
    [gc.minor_collections], [gc.major_collections] and [gc.alloc_bytes]
    (also on exceptions). The counters are registered at module
    initialisation, so they appear (as 0) in every metrics dump.
    Unconditional; callers gate on {!enabled}. *)

val span_args : delta -> (string * Json.t) list
(** Render a delta as span-event arguments ([gc.minor_words], …). *)
