(** Minimal JSON values: enough to emit metrics/trace files and to
    validate them in tests, with zero external dependencies.

    Rendering is deterministic (object fields keep their given order),
    non-finite floats render as [null] so the output is always valid
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (what the CLI writes to files). *)

val parse : string -> (t, string) result
(** Strict parser for the grammar [to_string] emits, plus standard JSON
    it does not (escapes, [\uXXXX], exponents). On failure the [Error]
    carries a message with a byte offset. Numbers without [.], [e] or
    [E] parse as [Int] when they fit, [Float] otherwise. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj], [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)
