(** Minimal JSON values: enough to emit metrics/trace files and to
    validate them in tests, with zero external dependencies.

    Rendering is deterministic (object fields keep their given order),
    non-finite floats render as [null] so the output is always valid
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering (what the CLI writes to files). *)

val parse : string -> (t, string) result
(** Parser for the grammar [to_string] emits, plus standard JSON it
    does not: all simple escapes, [\uXXXX] with exactly four hex
    digits (surrogate pairs combine into one supplementary code point,
    encoded as 4-byte UTF-8; a lone surrogate is kept as-is, WTF-8
    style), and exponent literals. Numbers must start with ['-'] or a
    digit; those without [.], [e] or [E] parse as [Int] when they fit,
    [Float] otherwise. On failure the [Error] carries a message with a
    byte offset. Strings parsed from [to_string] output round-trip
    exactly (the property tests assert parse∘print identity). *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [Obj], [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)
