let event_args (e : Span.event) =
  (if e.Span.parent = "" then []
   else [ ("parent", Json.String e.Span.parent) ])
  @ e.Span.args

let event_json (e : Span.event) =
  let base =
    [ ("name", Json.String e.Span.name);
      ("cat", Json.String e.Span.cat);
      ("ph", Json.String "X");
      ("ts", Json.Float (e.Span.ts *. 1e6));
      ("dur", Json.Float (e.Span.dur *. 1e6));
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Span.tid);
    ]
  in
  match event_args e with
  | [] -> Json.Obj base
  | args -> Json.Obj (base @ [ ("args", Json.Obj args) ])

let chrome_trace events =
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_trace_string events = Json.to_string_pretty (chrome_trace events)

let jsonl events =
  String.concat ""
    (List.map
       (fun (e : Span.event) ->
         Json.to_string
           (Json.Obj
              ([ ("name", Json.String e.Span.name);
                 ("cat", Json.String e.Span.cat);
                 ("ts", Json.Float e.Span.ts);
                 ("dur", Json.Float e.Span.dur);
                 ("tid", Json.Int e.Span.tid);
               ]
              @
              match event_args e with
              | [] -> []
              | args -> [ ("args", Json.Obj args) ]))
         ^ "\n")
       events)

let text events =
  let b = Buffer.create 512 in
  List.iter
    (fun (e : Span.event) ->
      Printf.bprintf b "%10.3f ms %8.3f ms  tid %d  %-10s %s%s\n"
        (1000. *. e.Span.ts) (1000. *. e.Span.dur) e.Span.tid
        ("[" ^ e.Span.cat ^ "]")
        e.Span.name
        (if e.Span.parent = "" then ""
         else " (in " ^ e.Span.parent ^ ")"))
    events;
  Buffer.contents b
