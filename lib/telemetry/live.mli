(** Reader side of the [bidir-live/1] live-file schema: parse, fold
    and render — the engine behind [bidir top].

    A {!state} folds live-file lines in order: heartbeat counter
    deltas sum into running totals, histogram digests replace the
    previous cumulative digest, the latest progress record wins, and
    warn/error log records accumulate into a bounded recent-warnings
    ring (O(1) per record). Unknown record types are skipped (forward
    compatibility); unparseable lines — and records missing a required
    field, e.g. a truncated heartbeat without [seq] or a counter
    without [delta] — are counted as parse errors and applied not at
    all, never partially.

    {!render} and {!to_json} are pure functions of the state — all
    timing comes from the file's own timestamps, never the wall clock
    — so [bidir top --once] produces a deterministic frame for CI. *)

type state

type progress = {
  pr_t : float;
  pr_name : string;
  pr_completed : int;
  pr_total : int;
  pr_rate : float;
  pr_ci : float option;
  pr_ci_target : float option;
  pr_eta : float option;
}

type digest = {
  di_count : int;
  di_sum : float;
  di_p50 : float;
  di_p90 : float;
  di_p99 : float;
}

val create : unit -> state

val feed_line : state -> string -> unit
(** Fold one line (blank lines are skipped). *)

val feed_string : state -> string -> unit
(** Fold every line of a chunk of file contents. *)

val schema : state -> string option
(** The schema declared by the [start] record, once seen. *)

val started_at : state -> float option
val last_t : state -> float
val elapsed : state -> float
(** [last_t - started_at]; 0 before the start record. *)

val heartbeats : state -> int
val finished : state -> bool
(** The [final] record has been seen. *)

val dropped : state -> int
(** Dropped-event count from the [final] record (0 until then). *)

val records : state -> int
(** Records parsed and applied successfully. *)

val parse_errors : state -> int
(** Lines that failed to parse as JSON, plus records whose required
    fields ([record], and per type e.g. [completed]/[total], [delta],
    [count], [seq], [dropped_events]) were missing or ill-typed. *)

val monotone : state -> bool
(** No progress record ever went backwards and heartbeat sequence
    numbers strictly increased — the invariants CI validates. *)

val progress : state -> progress option
val counters : state -> (string * int) list
(** Name-sorted running totals of the heartbeat counter deltas. *)

val digests : state -> (string * digest) list
(** Name-sorted latest cumulative digests. *)

val warnings : state -> (float * string * string) list
(** Most recent warn/error records, newest first, capped at 8:
    [(t, level, message)]. *)

val render : state -> string
(** Multi-line dashboard frame: progress bar + ETA, throughput, CI
    half-width vs target, latency digests, pool busy/idle, GC totals,
    recent warnings. Deterministic for a given file. *)

val to_json : state -> Json.t
(** The same frame as a JSON object (for [bidir top --once --json]). *)
