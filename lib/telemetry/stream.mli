(** Live telemetry streaming: a bounded MPSC ring of telemetry events
    drained into an append-only JSONL "live file" by periodic
    heartbeats.

    Everything observability produced so far (spans, snapshots,
    flamegraphs, resource deltas) materialises only after a command
    exits; this module is the in-flight plane. Producers on any domain
    {!emit} events — progress records, log records, ad-hoc counter
    deltas and histogram digests — into a lock-free bounded ring.
    Emission is gated like {!Resource}: while streaming is off it costs
    a single atomic load, so instrumentation can stay permanently in
    hot paths. When the ring is full the event is dropped and counted
    ([telemetry.stream.dropped_events]) rather than blocking a
    producer.

    A {!Writer} drains the ring into a JSONL file under the
    [bidir-live/1] schema. The file starts with a [start] record, then
    carries event records interleaved with [heartbeat] records, and
    ends with a [final] flush record. Each heartbeat serialises the
    metrics registry as {e deltas against the previous heartbeat}
    (changed counters only; cumulative digests of histograms whose
    count moved), so the file stays small however long the run is.
    Streaming is observation-only: command outputs are byte-identical
    with it on or off, at any domain count.

    Record shapes (one JSON object per line):
    {v
    {"schema":"bidir-live/1","record":"start","t":T,"interval":S}
    {"record":"progress","t":T,"name":N,"completed":C,"total":M,
     "rate":R,"ci":HW|null,"ci_target":W|null,"eta":E|null}
    {"record":"log","t":T,"level":L,"msg":S,"span":P,"domain":D}
    {"record":"counter","t":T,"name":N,"delta":D}
    {"record":"digest","t":T,"name":N,"count":C,"sum":S,
     "p50":A,"p90":B,"p99":C}
    {"record":"heartbeat","t":T,"seq":K,"counters":{name:delta,...},
     "histograms":{name:{"count","sum","p50","p90","p99"},...}}
    {"record":"final","t":T,"heartbeats":K,"events":N,
     "dropped_events":D}
    v} *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_name : string -> level option

val level_rank : level -> int
(** Debug = 0 … Error = 3. *)

type progress = {
  p_t : float;                     (** absolute unix time *)
  p_name : string;                 (** "campaign", "figures", … *)
  p_completed : int;
  p_total : int;
  p_rate : float;                  (** units per second; 0 when unknown *)
  p_ci_half_width : float option;  (** widest 95% half-width so far *)
  p_ci_target : float option;
  p_eta_seconds : float option;
}

type logrec = {
  l_t : float;
  l_level : level;
  l_msg : string;
  l_span : string;  (** "/"-joined span path, [""] outside any span *)
  l_domain : int;
}

type event =
  | Progress of progress
  | Log of logrec
  | Counter_delta of { cd_t : float; cd_name : string; cd_delta : int }
  | Digest of {
      dg_t : float;
      dg_name : string;
      dg_count : int;
      dg_sum : float;
      dg_p50 : float;
      dg_p90 : float;
      dg_p99 : float;
    }

val event_to_json : event -> Json.t
(** The event's live-file record (shapes above). *)

(* ------------------------------------------------------------------ *)
(* The ring                                                            *)
(* ------------------------------------------------------------------ *)

val capacity : int
(** Ring size in events (8192). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run the thunk with streaming forced on or off; the previous state
    is restored afterwards, also on exceptions. *)

val emit : event -> bool
(** Push one event. [false] when streaming is off (no cost, nothing
    counted) or when the ring was full (the event is dropped and
    [telemetry.stream.dropped_events] incremented). Safe from any
    domain; per-producer FIFO order is preserved. *)

val note_progress :
  name:string -> completed:int -> total:int -> ?rate:float ->
  ?ci_half_width:float -> ?ci_target:float -> ?eta_seconds:float ->
  unit -> unit
(** Emit a {!Progress} event stamped with the current time. A no-op
    while streaming is off. *)

val drain : unit -> event list
(** Pop every event currently in the ring, oldest first. Single
    consumer only (the writer, or a test standing in for it); spins
    briefly on a slot that a producer has claimed but not yet
    written. *)

val dropped_events : unit -> int
(** Current value of the [telemetry.stream.dropped_events] counter. *)

(* ------------------------------------------------------------------ *)
(* The writer                                                          *)
(* ------------------------------------------------------------------ *)

module Writer : sig
  type t

  val create : ?interval:float -> path:string -> unit -> t
  (** Truncate [path] and write the [start] record. [interval] (default
      0) is the minimum seconds between heartbeats: {!pulse} before it
      elapses is a no-op, and 0 means every pulse flushes. *)

  val pulse : t -> unit
  (** Heartbeat if the interval has elapsed since the last one. *)

  val heartbeat : t -> unit
  (** Unconditional flush: drain the ring, write the buffered event
      records, then a [heartbeat] record carrying the registry delta
      since the previous heartbeat, and flush the channel so a tailing
      reader sees it. Observes [telemetry.stream.flush_seconds] and
      increments [telemetry.stream.heartbeats]. *)

  val heartbeats : t -> int

  val close : t -> unit
  (** Final flush (one last heartbeat) followed by the [final] record,
      whose event/drop totals count from this writer's creation;
      idempotent. *)
end

(* ------------------------------------------------------------------ *)
(* The process-wide live writer                                        *)
(* ------------------------------------------------------------------ *)

(** CLI convenience: one current writer wired by [--live FILE], pulsed
    from instrumented layers (the campaign runner, [figures all], the
    network solver) without threading a handle through them. Main
    domain only. *)

val open_live : ?interval:float -> string -> unit
(** Close any current live writer, open a new one on this path and turn
    streaming on. *)

val live_path : unit -> string option

val pulse_live : unit -> unit
(** Run the pulse hook (the SLO watchdog installs itself there), then
    pulse the current writer if any. Cheap when nothing is wired. *)

val close_live : unit -> unit
(** Close the current writer (final flush) and turn streaming off. *)

val set_pulse_hook : (unit -> unit) -> unit
(** Replace the hook run by every {!pulse_live}. {!Log} installs its
    SLO watchdog here at module initialisation. *)
