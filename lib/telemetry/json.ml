type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-finite floats have no JSON representation; render as null so the
   document always parses. "%.17g" round-trips every finite double. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level v =
  let nl pad =
    match indent with
    | None -> ()
    | Some step ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (step * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        emit buf ~indent ~level:(level + 1) item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        escape_string buf k;
        Buffer.add_char buf ':';
        if indent <> None then Buffer.add_char buf ' ';
        emit buf ~indent ~level:(level + 1) item)
      fields;
    nl level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 v;
  Buffer.contents buf

let to_string v = render ~indent:None v
let to_string_pretty v = render ~indent:(Some 2) v ^ "\n"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

exception Fail of string * int

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Fail (msg, !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = input.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = input.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           (* exactly four hex digits ([int_of_string "0x…"] would also
              accept underscores and sign characters) *)
           let read_hex4 () =
             if !pos + 4 > n then fail "truncated \\u escape";
             let v = ref 0 in
             for _ = 1 to 4 do
               let d =
                 match input.[!pos] with
                 | '0' .. '9' as c -> Char.code c - Char.code '0'
                 | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
                 | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
                 | _ -> fail "bad \\u escape"
               in
               v := (!v lsl 4) lor d;
               advance ()
             done;
             !v
           in
           let code = read_hex4 () in
           let code =
             (* a high surrogate followed by [\uDC00-\uDFFF] combines
                into one supplementary code point (so "😀" is
                U+1F600); a lone surrogate stays as-is (WTF-8), matching
                the parser's otherwise lenient handling of raw bytes *)
             if
               code >= 0xD800 && code <= 0xDBFF
               && !pos + 1 < n
               && input.[!pos] = '\\'
               && input.[!pos + 1] = 'u'
             then begin
               let saved = !pos in
               pos := !pos + 2;
               let low = read_hex4 () in
               if low >= 0xDC00 && low <= 0xDFFF then
                 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
               else begin
                 pos := saved;
                 code
               end
             end
             else code
           in
           add_utf8 buf code
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    (* a JSON number starts with '-' or a digit; '+', '.', 'e' may only
       appear later (OCaml's [of_string] would accept "+1" and ".5") *)
    (match peek () with
    | Some ('-' | '0' .. '9') -> ()
    | _ -> fail "expected a value");
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar input.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected a value";
    let s = String.sub input start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s
    in
    if is_float then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Fail (msg, at) ->
    Error (Printf.sprintf "%s at offset %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let equal (a : t) (b : t) = a = b
