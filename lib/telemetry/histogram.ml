type t = {
  lo : float;
  growth : float;
  log_growth : float;
  nbuckets : int;
  counts : int Atomic.t array;
  total : int Atomic.t;
  sum_cell : float Atomic.t;
  min_cell : float Atomic.t;
  max_cell : float Atomic.t;
  (* Integer-sample aggregates, kept apart from the float cells: an
     [int Atomic.t] updates with fetch-and-add / immediate CAS, so
     [observe_int] never allocates (a [float Atomic.t] boxes every
     store). Accessors combine both sides; [max_int]/[min_int] mark
     "no integer sample yet". *)
  int_sum : int Atomic.t;
  int_min : int Atomic.t;
  int_max : int Atomic.t;
}

let create ?(lo = 1e-6) ?(growth = Float.pow 2. 0.25) ?(buckets = 128) () =
  if lo <= 0. then invalid_arg "Histogram.create: lo <= 0";
  if growth <= 1. then invalid_arg "Histogram.create: growth <= 1";
  if buckets < 2 then invalid_arg "Histogram.create: buckets < 2";
  { lo;
    growth;
    log_growth = log growth;
    nbuckets = buckets;
    counts = Array.init buckets (fun _ -> Atomic.make 0);
    total = Atomic.make 0;
    sum_cell = Atomic.make 0.;
    min_cell = Atomic.make infinity;
    max_cell = Atomic.make neg_infinity;
    int_sum = Atomic.make 0;
    int_min = Atomic.make max_int;
    int_max = Atomic.make min_int;
  }

let num_buckets t = t.nbuckets

let bucket_lower_bound t i =
  if i <= 0 then 0. else t.lo *. Float.pow t.growth (float_of_int (i - 1))

(* log-based index with a comparison fix-up so exact bucket boundaries
   always land in the bucket they open, despite float log error *)
let bucket_index t v =
  if Float.is_nan v || v < t.lo then 0
  else begin
    let raw =
      1 + int_of_float (Float.floor (log (v /. t.lo) /. t.log_growth))
    in
    let i = max 1 (min (t.nbuckets - 1) raw) in
    let i = if i > 1 && v < bucket_lower_bound t i then i - 1 else i in
    let i =
      if i < t.nbuckets - 1 && v >= bucket_lower_bound t (i + 1) then i + 1
      else i
    in
    i
  end

let rec atomic_add_float cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (cur +. x)) then
    atomic_add_float cell x

let rec atomic_update cell better x =
  let cur = Atomic.get cell in
  if better x cur && not (Atomic.compare_and_set cell cur x) then
    atomic_update cell better x

(* Non-finite and negative samples are clamped to 0 before recording:
   they still count (into the underflow bucket) but can no longer poison
   [sum]/[mean] with NaN/inf or drag [min] below the histogram's domain.
   Genuine small values in [0, lo) keep their true value in min/max/sum
   and only lose bucket resolution. *)
let observe t v =
  let v = if not (Float.is_finite v) || v < 0. then 0. else v in
  Atomic.incr t.counts.(bucket_index t v);
  Atomic.incr t.total;
  atomic_add_float t.sum_cell v;
  atomic_update t.min_cell ( < ) v;
  atomic_update t.max_cell ( > ) v

let rec atomic_min_int cell x =
  let cur = Atomic.get cell in
  if x < cur && not (Atomic.compare_and_set cell cur x) then
    atomic_min_int cell x

let rec atomic_max_int cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then
    atomic_max_int cell x

(* Allocation-free [observe] for non-negative integer samples (pivot
   counts, event totals): the bucket index is [bucket_index]'s
   arithmetic hand-inlined on unboxed locals, and all aggregate cells
   are int atomics. Negative samples clamp to 0 like [observe]. Buckets
   and aggregates agree exactly with [observe (float_of_int n)] for any
   sample that fits a float (|n| < 2^53). *)
let observe_int t n =
  let n = if n < 0 then 0 else n in
  let v = float_of_int n in
  let i =
    if v < t.lo then 0
    else begin
      let raw =
        1 + int_of_float (Float.floor (log (v /. t.lo) /. t.log_growth))
      in
      let i = max 1 (min (t.nbuckets - 1) raw) in
      let i =
        if i > 1 && v < t.lo *. Float.pow t.growth (float_of_int (i - 1)) then
          i - 1
        else i
      in
      if
        i < t.nbuckets - 1
        && v >= t.lo *. Float.pow t.growth (float_of_int i)
      then i + 1
      else i
    end
  in
  Atomic.incr (Array.unsafe_get t.counts i);
  Atomic.incr t.total;
  ignore (Atomic.fetch_and_add t.int_sum n : int);
  atomic_min_int t.int_min n;
  atomic_max_int t.int_max n

let underflow_count t = Atomic.get t.counts.(0)

let count t = Atomic.get t.total
let sum t = Atomic.get t.sum_cell +. float_of_int (Atomic.get t.int_sum)
let mean t = if count t = 0 then 0. else sum t /. float_of_int (count t)

let min_value t =
  if count t = 0 then 0.
  else begin
    let fm = Atomic.get t.min_cell in
    let im = Atomic.get t.int_min in
    if im = max_int then fm else Float.min fm (float_of_int im)
  end

let max_value t =
  if count t = 0 then 0.
  else begin
    let fm = Atomic.get t.max_cell in
    let im = Atomic.get t.int_max in
    if im = min_int then fm else Float.max fm (float_of_int im)
  end

let quantile t p =
  let n = count t in
  if n = 0 then 0.
  else begin
    let target =
      max 1 (min n (int_of_float (Float.ceil (p *. float_of_int n))))
    in
    let rec find i acc =
      if i >= t.nbuckets - 1 then t.nbuckets - 1
      else begin
        let acc = acc + Atomic.get t.counts.(i) in
        if acc >= target then i else find (i + 1) acc
      end
    in
    let i = find 0 0 in
    let estimate =
      if i = 0 then t.lo
      else if i = t.nbuckets - 1 then bucket_lower_bound t i
      else sqrt (bucket_lower_bound t i *. bucket_lower_bound t (i + 1))
    in
    Float.min (max_value t) (Float.max (min_value t) estimate)
  end

let percentiles t = (quantile t 0.5, quantile t 0.9, quantile t 0.99)

let same_geometry a b =
  a.lo = b.lo && a.growth = b.growth && a.nbuckets = b.nbuckets

(* Combined float+int extremes with the empty sentinels preserved
   (unlike [min_value]/[max_value], which report 0 on empty). *)
let raw_min t =
  let fm = Atomic.get t.min_cell in
  let im = Atomic.get t.int_min in
  if im = max_int then fm else Float.min fm (float_of_int im)

let raw_max t =
  let fm = Atomic.get t.max_cell in
  let im = Atomic.get t.int_max in
  if im = min_int then fm else Float.max fm (float_of_int im)

let merge a b =
  if not (same_geometry a b) then
    invalid_arg "Histogram.merge: geometry mismatch";
  let t = create ~lo:a.lo ~growth:a.growth ~buckets:a.nbuckets () in
  for i = 0 to t.nbuckets - 1 do
    Atomic.set t.counts.(i) (Atomic.get a.counts.(i) + Atomic.get b.counts.(i))
  done;
  Atomic.set t.total (count a + count b);
  Atomic.set t.sum_cell (sum a +. sum b);
  Atomic.set t.min_cell (Float.min (raw_min a) (raw_min b));
  Atomic.set t.max_cell (Float.max (raw_max a) (raw_max b));
  t

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Atomic.set t.total 0;
  Atomic.set t.sum_cell 0.;
  Atomic.set t.min_cell infinity;
  Atomic.set t.max_cell neg_infinity;
  Atomic.set t.int_sum 0;
  Atomic.set t.int_min max_int;
  Atomic.set t.int_max min_int

let bucket_counts t = Array.map Atomic.get t.counts

let nonzero_buckets t =
  let acc = ref [] in
  for i = t.nbuckets - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then acc := (bucket_lower_bound t i, c) :: !acc
  done;
  !acc

let to_json t =
  let p50, p90, p99 = percentiles t in
  Json.Obj
    [ ("count", Json.Int (count t));
      ("sum", Json.Float (sum t));
      ("mean", Json.Float (mean t));
      ("min", Json.Float (min_value t));
      ("max", Json.Float (max_value t));
      ("p50", Json.Float p50);
      ("p90", Json.Float p90);
      ("p99", Json.Float p99);
      ("buckets",
       Json.List
         (List.map
            (fun (lb, c) -> Json.List [ Json.Float lb; Json.Int c ])
            (nonzero_buckets t)));
    ]

let copy t =
  let c = create ~lo:t.lo ~growth:t.growth ~buckets:t.nbuckets () in
  for i = 0 to t.nbuckets - 1 do
    Atomic.set c.counts.(i) (Atomic.get t.counts.(i))
  done;
  Atomic.set c.total (Atomic.get t.total);
  Atomic.set c.sum_cell (Atomic.get t.sum_cell);
  Atomic.set c.min_cell (Atomic.get t.min_cell);
  Atomic.set c.max_cell (Atomic.get t.max_cell);
  Atomic.set c.int_sum (Atomic.get t.int_sum);
  Atomic.set c.int_min (Atomic.get t.int_min);
  Atomic.set c.int_max (Atomic.get t.int_max);
  c

(* Full-state serialisation (geometry + every non-empty bucket by
   index), as opposed to [to_json]'s human-oriented summary: this is
   what snapshots persist, and [of_json_state] restores a histogram that
   is indistinguishable from the captured one. Since [observe] clamps,
   all recorded state is finite, so the JSON always round-trips. *)
let to_json_state t =
  let cells = ref [] in
  for i = t.nbuckets - 1 downto 0 do
    let c = Atomic.get t.counts.(i) in
    if c > 0 then cells := Json.List [ Json.Int i; Json.Int c ] :: !cells
  done;
  let base =
    [ ("lo", Json.Float t.lo);
      ("growth", Json.Float t.growth);
      ("buckets", Json.Int t.nbuckets);
      ("count", Json.Int (count t));
      ("sum", Json.Float (sum t));
      ("counts", Json.List !cells);
    ]
  in
  let extremes =
    if count t = 0 then []
    else [ ("min", Json.Float (raw_min t)); ("max", Json.Float (raw_max t)) ]
  in
  Json.Obj (base @ extremes)

let of_json_state j =
  let ( let* ) r f = Result.bind r f in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "histogram state: missing %S" name)
  in
  let as_float name = function
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "histogram state: %S is not a number" name)
  in
  let as_int name = function
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "histogram state: %S is not an integer" name)
  in
  let* lo = Result.bind (field "lo") (as_float "lo") in
  let* growth = Result.bind (field "growth") (as_float "growth") in
  let* nbuckets = Result.bind (field "buckets") (as_int "buckets") in
  let* total = Result.bind (field "count") (as_int "count") in
  let* s = Result.bind (field "sum") (as_float "sum") in
  let* t =
    match create ~lo ~growth ~buckets:nbuckets () with
    | t -> Ok t
    | exception Invalid_argument m -> Error m
  in
  let* () =
    match Json.member "counts" j with
    | Some (Json.List cells) ->
      List.fold_left
        (fun acc cell ->
          let* () = acc in
          match cell with
          | Json.List [ Json.Int i; Json.Int c ] when i >= 0 && i < nbuckets ->
            Atomic.set t.counts.(i) c;
            Ok ()
          | _ -> Error "histogram state: malformed bucket cell")
        (Ok ()) cells
    | _ -> Error "histogram state: missing \"counts\" list"
  in
  Atomic.set t.total total;
  Atomic.set t.sum_cell s;
  if total > 0 then begin
    let* mn = Result.bind (field "min") (as_float "min") in
    let* mx = Result.bind (field "max") (as_float "max") in
    Atomic.set t.min_cell mn;
    Atomic.set t.max_cell mx;
    Ok t
  end
  else Ok t
