(** Post-hoc analysis of a recorded span buffer.

    Rebuilds the span instance tree from {!Span.events} output — events
    name their parent span, and the concrete parent *instance* is
    recovered as the innermost same-named event whose interval contains
    the child's — then attributes each instance its {e self time}: its
    own duration minus the summed durations of its direct children,
    clamped at zero (pool chunks run concurrently, so enclosed child
    time can exceed the parent's wall clock).

    On a single-domain trace, self time telescopes exactly: the sum of
    all self times equals the summed duration of the root spans. *)

type node = {
  event : Span.event;
  path : string list;  (** root-first chain of span names, own name last *)
  self : float;        (** self time in seconds, [>= 0] *)
}

type t

val analyze : Span.event list -> t
(** Expects the list as returned by {!Span.events} (any order works;
    instance matching uses intervals, not ordering). *)

val nodes : t -> node list
val paths : t -> string list list
(** The [path] of every instance, in input order. Prefix-closed: each
    proper prefix of a path is itself some instance's path. *)

val root_dur : t -> float
(** Summed duration of instances with no enclosing parent. *)

val total_self : t -> float
(** Summed self time of every instance. *)

val collapsed : ?focus:string -> t -> string
(** Flamegraph collapsed-stack export: one line per distinct path,
    [a;b;c N] where [N] is the path's total self time in integer
    microseconds (zero-weight paths are dropped). Lines are sorted, so
    output is deterministic for a fixed trace. Feed to [flamegraph.pl]
    or load into speedscope. [?focus] keeps only paths containing the
    given span name, re-rooted at its first occurrence. *)

val self_by_name : ?focus:string -> t -> (string * float * int) list
(** Self time aggregated per span name: [(name, self_seconds, count)],
    sorted by descending self time (ties by name). [?focus] restricts
    to instances whose path contains the given name. *)

val report : ?focus:string -> ?top:int -> t -> string
(** Human-readable top-N self-time table (default [top = 10]). *)
