type counter = { cell : int Atomic.t }

type entry = C of counter | H of Histogram.t

let lock = Mutex.create ()
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C c) -> c
      | Some (H _) ->
        invalid_arg
          (Printf.sprintf "Metrics.counter: %S is registered as a histogram"
             name)
      | None ->
        let c = { cell = Atomic.make 0 } in
        Hashtbl.add registry name (C c);
        c)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n : int)
let value c = Atomic.get c.cell

let histogram ?lo ?growth ?buckets name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (H h) -> h
      | Some (C _) ->
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S is registered as a counter"
             name)
      | None ->
        let h = Histogram.create ?lo ?growth ?buckets () in
        Hashtbl.add registry name (H h);
        h)

let observe = Histogram.observe
let observe_int = Histogram.observe_int

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () -> Histogram.observe h (Unix.gettimeofday () -. t0))
    f

let sorted_entries () =
  with_lock (fun () ->
      Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () =
  List.filter_map
    (function name, C c -> Some (name, value c) | _, H _ -> None)
    (sorted_entries ())

let histograms () =
  List.filter_map
    (function name, H h -> Some (name, h) | _, C _ -> None)
    (sorted_entries ())

let reset () =
  List.iter
    (fun (_, entry) ->
      match entry with
      | C c -> Atomic.set c.cell 0
      | H h -> Histogram.reset h)
    (sorted_entries ())

let to_json () =
  Json.Obj
    [ ("counters",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters ())));
      ("histograms",
       Json.Obj
         (List.map (fun (n, h) -> (n, Histogram.to_json h)) (histograms ())));
    ]

let to_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun (n, v) -> Printf.bprintf b "%-40s %d\n" n v)
    (counters ());
  List.iter
    (fun (n, h) ->
      let p50, p90, p99 = Histogram.percentiles h in
      Printf.bprintf b
        "%-40s count=%d mean=%.3g p50=%.3g p90=%.3g p99=%.3g\n" n
        (Histogram.count h) (Histogram.mean h) p50 p90 p99)
    (histograms ());
  Buffer.contents b
