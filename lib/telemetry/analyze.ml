(* Post-hoc analysis of a recorded span buffer: reconstruct the
   instance tree, attribute self time (own duration minus enclosed
   child durations) and export flamegraph collapsed stacks.

   Events only name their parent *span* — several instances of that
   span may exist, so the concrete parent instance is recovered by
   interval containment: among the events carrying the parent's name
   whose [ts, ts+dur] interval encloses the child's, pick the
   innermost (latest start, then shortest duration, then same
   domain). A small slack absorbs clock granularity: a child's
   recorded interval can poke past its parent's by the cost of the
   two timestamp reads. *)

type node = {
  event : Span.event;
  path : string list;  (* root-first chain of span names, incl. own *)
  self : float;        (* seconds; >= 0 *)
}

type t = {
  nodes : node list;        (* in Span.events order *)
  root_dur : float;         (* summed duration of root instances *)
  total_self : float;       (* summed self time of all instances *)
}

let slack = 5e-6

let contains (p : Span.event) (e : Span.event) =
  p.Span.ts -. slack <= e.Span.ts
  && e.Span.ts +. e.Span.dur <= p.Span.ts +. p.Span.dur +. slack

let analyze events =
  let evs = Array.of_list events in
  let n = Array.length evs in
  let by_name : (string, int list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Span.event) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_name e.Span.name) in
      Hashtbl.replace by_name e.Span.name (i :: prev))
    evs;
  let parent_idx =
    Array.mapi
      (fun i (e : Span.event) ->
        if e.Span.parent = "" then -1
        else begin
          let best = ref (-1) in
          List.iter
            (fun j ->
              if j <> i then begin
                let p = evs.(j) in
                if contains p e then begin
                  match !best with
                  | -1 -> best := j
                  | b ->
                    let q = evs.(b) in
                    let better =
                      p.Span.ts > q.Span.ts +. slack
                      || (Float.abs (p.Span.ts -. q.Span.ts) <= slack
                          && (p.Span.dur < q.Span.dur
                              || (p.Span.dur = q.Span.dur
                                  && p.Span.tid = e.Span.tid
                                  && q.Span.tid <> e.Span.tid)))
                    in
                    if better then best := j
                end
              end)
            (Option.value ~default:[]
               (Hashtbl.find_opt by_name e.Span.parent));
          !best
        end)
      evs
  in
  (* Root-first name path per instance, memoised. A cycle can only
     arise from identical intervals mutually claiming each other; the
     depth budget breaks it by rooting the chain. *)
  let paths = Array.make n [] in
  let done_ = Array.make n false in
  let rec path depth i =
    if done_.(i) then paths.(i)
    else begin
      let p =
        if parent_idx.(i) < 0 || depth > n then [ evs.(i).Span.name ]
        else path (depth + 1) parent_idx.(i) @ [ evs.(i).Span.name ]
      in
      paths.(i) <- p;
      done_.(i) <- true;
      p
    end
  in
  let children_dur = Array.make n 0. in
  Array.iteri
    (fun i _ ->
      let p = parent_idx.(i) in
      if p >= 0 then children_dur.(p) <- children_dur.(p) +. evs.(i).Span.dur)
    evs;
  let nodes =
    List.init n (fun i ->
        { event = evs.(i);
          path = path 0 i;
          (* pool chunks run concurrently, so enclosed child time can
             exceed the parent's wall time — clamp at zero *)
          self = Float.max 0. (evs.(i).Span.dur -. children_dur.(i));
        })
  in
  let root_dur = ref 0. and total_self = ref 0. in
  Array.iteri
    (fun i (e : Span.event) ->
      if parent_idx.(i) < 0 then root_dur := !root_dur +. e.Span.dur)
    evs;
  List.iter (fun nd -> total_self := !total_self +. nd.self) nodes;
  { nodes; root_dur = !root_dur; total_self = !total_self }

let nodes t = t.nodes
let root_dur t = t.root_dur
let total_self t = t.total_self
let paths t = List.map (fun nd -> nd.path) t.nodes

(* [--focus NAME]: keep only paths containing NAME, trimmed to start at
   its first occurrence. *)
let focus_path name path =
  let rec drop = function
    | [] -> None
    | x :: _ as l when x = name -> Some l
    | _ :: rest -> drop rest
  in
  drop path

let collapsed ?focus t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun nd ->
      let kept =
        match focus with
        | None -> Some nd.path
        | Some name -> focus_path name nd.path
      in
      match kept with
      | None -> ()
      | Some path ->
        let us = int_of_float (Float.round (nd.self *. 1e6)) in
        if us > 0 then begin
          let key = String.concat ";" path in
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
          Hashtbl.replace tbl key (prev + us)
        end)
    t.nodes;
  let lines = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let lines = List.sort compare lines in
  let b = Buffer.create 1024 in
  List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k v)) lines;
  Buffer.contents b

let self_by_name ?focus t =
  let tbl : (string, float * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun nd ->
      let kept =
        match focus with
        | None -> true
        | Some name -> List.mem name nd.path
      in
      if kept then begin
        let name = nd.event.Span.name in
        let s, c = Option.value ~default:(0., 0) (Hashtbl.find_opt tbl name) in
        Hashtbl.replace tbl name (s +. nd.self, c + 1)
      end)
    t.nodes;
  let rows = Hashtbl.fold (fun k (s, c) acc -> (k, s, c) :: acc) tbl [] in
  List.sort
    (fun (na, sa, _) (nb, sb, _) ->
      match compare sb sa with 0 -> compare na nb | c -> c)
    rows

let report ?focus ?(top = 10) t =
  let rows = self_by_name ?focus t in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let denom = if t.total_self > 0. then t.total_self else 1. in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "self-time by span (top %d of %d; root wall %.3f s)\n"
       (List.length shown) (List.length rows) t.root_dur);
  Buffer.add_string b
    (Printf.sprintf "  %-36s %10s %8s %6s\n" "span" "self(ms)" "count" "%");
  List.iter
    (fun (name, self, count) ->
      Buffer.add_string b
        (Printf.sprintf "  %-36s %10.3f %8d %5.1f%%\n" name (self *. 1e3)
           count (100. *. self /. denom)))
    shown;
  Buffer.contents b
