type level = Stream.level = Debug | Info | Warn | Error

let rank = Stream.level_rank

(* minimum rank emitted at all / rendered on stderr (4 = stderr off) *)
let min_rank = Atomic.make (rank Info)
let stderr_rank = Atomic.make (rank Warn)

let set_level l = Atomic.set min_rank (rank l)

let level () =
  match Atomic.get min_rank with
  | 0 -> Debug
  | 1 -> Info
  | 2 -> Warn
  | _ -> Error

let set_stderr = function
  | None -> Atomic.set stderr_rank 4
  | Some l -> Atomic.set stderr_rank (rank l)

let debug_c = Metrics.counter "telemetry.log.debug"
let info_c = Metrics.counter "telemetry.log.info"
let warn_c = Metrics.counter "telemetry.log.warn"
let error_c = Metrics.counter "telemetry.log.error"
let suppressed_c = Metrics.counter "telemetry.log.suppressed"

let level_counter = function
  | Debug -> debug_c
  | Info -> info_c
  | Warn -> warn_c
  | Error -> error_c

(* Per-callsite rate limiting: last emission time per key. The table is
   shared across domains, so guard it — logging is never on a path hot
   enough for this mutex to matter (the unlimited case skips it). *)
let rate_lock = Mutex.create ()
let last_emitted : (string, float) Hashtbl.t = Hashtbl.create 32

let rate_allow ~rate key now =
  Mutex.lock rate_lock;
  let allowed =
    match Hashtbl.find_opt last_emitted key with
    | Some last when now -. last < rate -> false
    | _ ->
      Hashtbl.replace last_emitted key now;
      true
  in
  Mutex.unlock rate_lock;
  allowed

let span_path () = String.concat "/" (List.rev (Span.context ()))

let emit_record ?rate ?key lvl msg =
  if rank lvl >= Atomic.get min_rank then begin
    let now = Unix.gettimeofday () in
    let allowed =
      match rate with
      | None -> true
      | Some r -> rate_allow ~rate:r (Option.value ~default:msg key) now
    in
    if not allowed then Metrics.incr suppressed_c
    else begin
      Metrics.incr (level_counter lvl);
      let span = span_path () in
      if rank lvl >= Atomic.get stderr_rank then
        Printf.eprintf "[%s] %s%s\n%!" (Stream.level_name lvl)
          (if span = "" then "" else span ^ ": ")
          msg;
      ignore
        (Stream.emit
           (Stream.Log
              { Stream.l_t = now;
                l_level = lvl;
                l_msg = msg;
                l_span = span;
                l_domain = (Domain.self () :> int);
              })
          : bool)
    end
  end

let logf ?rate ?key lvl fmt =
  Printf.ksprintf (emit_record ?rate ?key lvl) fmt

let debug ?rate ?key fmt = logf ?rate ?key Debug fmt
let info ?rate ?key fmt = logf ?rate ?key Info fmt
let warn ?rate ?key fmt = logf ?rate ?key Warn fmt
let error ?rate ?key fmt = logf ?rate ?key Error fmt

(* ------------------------------------------------------------------ *)
(* SLO watchdog                                                        *)
(* ------------------------------------------------------------------ *)

type stat = Value | Sum | Mean | Count | P50 | P90 | P99

let stat_name = function
  | Value -> "value"
  | Sum -> "sum"
  | Mean -> "mean"
  | Count -> "count"
  | P50 -> "p50"
  | P90 -> "p90"
  | P99 -> "p99"

let stat_of_name = function
  | "value" -> Some Value
  | "sum" -> Some Sum
  | "mean" -> Some Mean
  | "count" -> Some Count
  | "p50" -> Some P50
  | "p90" -> Some P90
  | "p99" -> Some P99
  | _ -> None

type slo = {
  slo_metric : string;
  slo_stat : stat;
  slo_warn : float;
  slo_error : float option;
}

let parse_slo s =
  match String.split_on_char ':' s with
  | [ metric; stat; warn ] | [ metric; stat; warn; _ ]
    when metric = "" || stat = "" || warn = "" ->
    Stdlib.Error (Printf.sprintf "empty field in SLO %S" s)
  | [ metric; stat; warn ] | [ metric; stat; warn; _ ]
    when stat_of_name stat = None ->
    ignore metric;
    ignore warn;
    Error
      (Printf.sprintf "unknown stat %S (value|sum|mean|count|p50|p90|p99)"
         stat)
  | [ metric; stat; warn ] -> (
    match (stat_of_name stat, float_of_string_opt warn) with
    | Some st, Some w ->
      Ok { slo_metric = metric; slo_stat = st; slo_warn = w; slo_error = None }
    | _ -> Stdlib.Error (Printf.sprintf "bad threshold in SLO %S" s))
  | [ metric; stat; warn; err ] -> (
    match
      (stat_of_name stat, float_of_string_opt warn, float_of_string_opt err)
    with
    | Some st, Some w, Some e ->
      Ok
        { slo_metric = metric;
          slo_stat = st;
          slo_warn = w;
          slo_error = Some e;
        }
    | _ -> Stdlib.Error (Printf.sprintf "bad threshold in SLO %S" s))
  | _ ->
    Stdlib.Error
      (Printf.sprintf "SLO %S is not metric:stat:warn[:error]" s)

let installed : slo list ref = ref []

(* last observed severity per SLO (0 ok, 1 warn, 2 error): only
   transitions produce records, so a persistent breach logs once *)
let breach_state : (string, int) Hashtbl.t = Hashtbl.create 8

let set_slos l =
  installed := l;
  Hashtbl.reset breach_state

let slos () = !installed

let current_value slo =
  match
    List.find_opt (fun (n, _) -> n = slo.slo_metric) (Metrics.counters ())
  with
  | Some (_, v) -> (
    match slo.slo_stat with
    | Value | Sum | Count -> Some (float_of_int v)
    | Mean | P50 | P90 | P99 -> None)
  | None -> (
    match
      List.find_opt (fun (n, _) -> n = slo.slo_metric) (Metrics.histograms ())
    with
    | None -> None
    | Some (_, h) ->
      if Histogram.count h = 0 then None
      else
        Some
          (match slo.slo_stat with
          | Value | Sum -> Histogram.sum h
          | Mean -> Histogram.mean h
          | Count -> float_of_int (Histogram.count h)
          | P50 -> Histogram.quantile h 0.5
          | P90 -> Histogram.quantile h 0.9
          | P99 -> Histogram.quantile h 0.99))

let watch () =
  List.iter
    (fun slo ->
      match current_value slo with
      | None -> ()
      | Some v ->
        let severity =
          if (match slo.slo_error with Some e -> v >= e | None -> false) then 2
          else if v >= slo.slo_warn then 1
          else 0
        in
        let key = slo.slo_metric ^ ":" ^ stat_name slo.slo_stat in
        let prev = Option.value ~default:0 (Hashtbl.find_opt breach_state key) in
        if severity <> prev then begin
          Hashtbl.replace breach_state key severity;
          match severity with
          | 2 ->
            error "slo %s = %g breaches error threshold %g" key v
              (Option.value ~default:nan slo.slo_error)
          | 1 -> warn "slo %s = %g exceeds warn threshold %g" key v slo.slo_warn
          | _ -> info "slo %s recovered (%g)" key v
        end)
    !installed

(* every [Stream.pulse_live] evaluates the watchdog *)
let () = Stream.set_pulse_hook watch
