(** Structured leveled logging over the telemetry plane.

    Every record carries its level, the current {!Span.context} path
    (root-first, "/"-joined — populated while tracing is on) and the id
    of the emitting domain. Records below {!level} are discarded at the
    callsite; surviving records go to two sinks: a text line on stderr
    (for records at or above the stderr threshold) and a {!Stream.Log}
    event on the live stream when streaming is on — so a tailing
    [bidir top] sees warnings as they happen.

    Per-callsite rate limiting: passing [~rate:s] (with an optional
    explicit [~key]; the message itself is the key by default) drops
    repeats of the same key arriving within [s] seconds, counting them
    in [telemetry.log.suppressed] instead of emitting. Hot loops can
    therefore log unconditionally.

    The SLO watchdog turns registry thresholds into log records:
    {!set_slos} installs a list of [metric, stat, warn, error?]
    tuples, and {!watch} — run automatically on every
    {!Stream.pulse_live} — evaluates each against the live registry,
    emitting a warn/error record when a threshold is first breached
    and an info record when the metric recovers. Only {e transitions}
    log, so a persistently-breached SLO does not spam the stream. *)

type level = Stream.level = Debug | Info | Warn | Error

val set_level : level -> unit
(** Minimum level that gets emitted at all (default [Info]). *)

val level : unit -> level

val set_stderr : level option -> unit
(** Minimum level rendered as a text line on stderr, or [None] to
    silence the stderr sink entirely (default [Some Warn]). *)

val logf :
  ?rate:float -> ?key:string -> level ->
  ('a, unit, string, unit) format4 -> 'a
(** [logf ~rate ~key lvl fmt …] formats and emits one record. With
    [rate], repeats of [key] (default: the formatted message) within
    [rate] seconds are suppressed and counted. *)

val debug : ?rate:float -> ?key:string -> ('a, unit, string, unit) format4 -> 'a
val info : ?rate:float -> ?key:string -> ('a, unit, string, unit) format4 -> 'a
val warn : ?rate:float -> ?key:string -> ('a, unit, string, unit) format4 -> 'a
val error : ?rate:float -> ?key:string -> ('a, unit, string, unit) format4 -> 'a

(* ------------------------------------------------------------------ *)
(* SLO watchdog                                                        *)
(* ------------------------------------------------------------------ *)

type stat = Value | Sum | Mean | Count | P50 | P90 | P99
(** Which statistic of the metric to compare. [Value]/[Sum] read a
    counter's value or a histogram's sum; the rest are histogram-only
    ([Value] on a histogram also reads its sum). *)

val stat_name : stat -> string
val stat_of_name : string -> stat option

type slo = {
  slo_metric : string;       (** registry name, e.g. [lp.solve_seconds] *)
  slo_stat : stat;
  slo_warn : float;          (** warn at or above this *)
  slo_error : float option;  (** escalate to error at or above this *)
}

val parse_slo : string -> (slo, string) result
(** ["metric:stat:warn"] or ["metric:stat:warn:error"] — e.g.
    ["campaign.pool_idle_seconds:sum:5"],
    ["lp.solve_seconds:p99:0.05:0.5"]. *)

val set_slos : slo list -> unit
(** Replace the installed SLOs and forget previous breach states. *)

val slos : unit -> slo list

val watch : unit -> unit
(** Evaluate every installed SLO against the registry and log breach /
    recovery transitions. A metric that is absent (or an empty
    histogram) is skipped. Installed as the {!Stream} pulse hook, so
    it runs on every {!Stream.pulse_live}. *)
