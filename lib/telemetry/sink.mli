(** Sinks: render collected span events (and the metrics registry) into
    concrete output formats.

    A sink is a pure [event list -> string] formatter, so new formats
    plug in without touching collection. Three are provided:

    - {!chrome_trace_string}: Chrome trace-event JSON ("X" complete
      events, microsecond timestamps) — load the file in Perfetto
      (https://ui.perfetto.dev) or chrome://tracing;
    - {!jsonl}: one JSON object per span per line, for ad-hoc tooling;
    - {!text}: an indented human-readable listing. *)

val chrome_trace : Span.event list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Each span maps to
    one complete ("ph":"X") event; the domain id becomes the [tid], the
    logical parent span (which may live on another domain) is carried in
    [args.parent]. *)

val chrome_trace_string : Span.event list -> string

val jsonl : Span.event list -> string

val text : Span.event list -> string
