(* Fold [bidir-live/1] records into a dashboard state. The renderer
   deliberately uses only timestamps carried by the file, so the same
   file always renders the same frame — `bidir top --once` output is
   diffable in CI. *)

type progress = {
  pr_t : float;
  pr_name : string;
  pr_completed : int;
  pr_total : int;
  pr_rate : float;
  pr_ci : float option;
  pr_ci_target : float option;
  pr_eta : float option;
}

type digest = {
  di_count : int;
  di_sum : float;
  di_p50 : float;
  di_p90 : float;
  di_p99 : float;
}

type state = {
  mutable schema : string option;
  mutable started_at : float option;
  mutable last_t : float;
  mutable heartbeats : int;
  mutable last_seq : int;
  mutable finished : bool;
  mutable dropped : int;
  mutable records : int;
  mutable parse_errors : int;
  mutable monotone : bool;
  mutable progress : progress option;
  counters : (string, int) Hashtbl.t;
  digests : (string, digest) Hashtbl.t;
  (* bounded ring of recent warn/error records: [warn_pos] is the next
     slot to overwrite, [warn_count] the number of live entries. O(1)
     per record, so a pathological file with thousands of warnings
     folds in linear time. *)
  warn_buf : (float * string * string) array;
  mutable warn_pos : int;
  mutable warn_count : int;
}

let max_warnings = 8

let create () =
  { schema = None;
    started_at = None;
    last_t = 0.;
    heartbeats = 0;
    last_seq = 0;
    finished = false;
    dropped = 0;
    records = 0;
    parse_errors = 0;
    monotone = true;
    progress = None;
    counters = Hashtbl.create 32;
    digests = Hashtbl.create 16;
    warn_buf = Array.make max_warnings (0., "", "");
    warn_pos = 0;
    warn_count = 0;
  }

let push_warning st w =
  st.warn_buf.(st.warn_pos) <- w;
  st.warn_pos <- (st.warn_pos + 1) mod max_warnings;
  if st.warn_count < max_warnings then st.warn_count <- st.warn_count + 1

(* ------------------------------------------------------------------ *)
(* Folding                                                             *)
(* ------------------------------------------------------------------ *)

let num = function
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | _ -> None

let integer = function Some (Json.Int i) -> Some i | _ -> None
let str = function Some (Json.String s) -> Some s | _ -> None

let fnum ?(default = 0.) j k = Option.value ~default (num (Json.member k j))

let opt_num j k = num (Json.member k j)

(* A record missing a required field (or carrying it with the wrong
   type) is counted as a parse error and skipped whole — silently
   defaulting e.g. a heartbeat's counter deltas to 0 would corrupt the
   running totals a truncated writer leaves behind. Every required
   field is read (and may raise) before the first state mutation of
   its record, so an invalid record never applies partially. *)
exception Invalid_record

let rint j k =
  match integer (Json.member k j) with
  | Some i -> i
  | None -> raise Invalid_record

let rstr j k =
  match str (Json.member k j) with
  | Some s -> s
  | None -> raise Invalid_record

let digest_of_json j =
  { di_count = rint j "count";
    di_sum = fnum j "sum";
    di_p50 = fnum j "p50";
    di_p90 = fnum j "p90";
    di_p99 = fnum j "p99";
  }

let apply_record st j =
  match Json.member "record" j with
  | Some (Json.String kind) -> (
    match kind with
    | "start" ->
      st.schema <- str (Json.member "schema" j);
      st.started_at <- opt_num j "t"
    | "progress" ->
      let completed = rint j "completed" and total = rint j "total" in
      let p =
        { pr_t = fnum j "t";
          pr_name = Option.value ~default:"" (str (Json.member "name" j));
          pr_completed = completed;
          pr_total = total;
          pr_rate = fnum j "rate";
          pr_ci = opt_num j "ci";
          pr_ci_target = opt_num j "ci_target";
          pr_eta = opt_num j "eta";
        }
      in
      (match st.progress with
      | Some prev
        when prev.pr_name = p.pr_name && p.pr_completed < prev.pr_completed ->
        st.monotone <- false
      | _ -> ());
      st.progress <- Some p
    | "log" ->
      let level = Option.value ~default:"info" (str (Json.member "level" j)) in
      if level = "warn" || level = "error" then
        let msg = Option.value ~default:"" (str (Json.member "msg" j)) in
        push_warning st (fnum j "t", level, msg)
    | "counter" ->
      let name = rstr j "name" in
      let delta = rint j "delta" in
      let prev = Option.value ~default:0 (Hashtbl.find_opt st.counters name) in
      Hashtbl.replace st.counters name (prev + delta)
    | "digest" ->
      let name = rstr j "name" in
      let d = digest_of_json j in
      Hashtbl.replace st.digests name d
    | "heartbeat" ->
      let seq = rint j "seq" in
      (* validate the embedded digests before touching any state *)
      let digest_updates =
        match Json.member "histograms" j with
        | Some (Json.Obj fields) ->
          List.map (fun (name, v) -> (name, digest_of_json v)) fields
        | _ -> []
      in
      st.heartbeats <- st.heartbeats + 1;
      if seq <= st.last_seq then st.monotone <- false;
      st.last_seq <- seq;
      (match Json.member "counters" j with
      | Some (Json.Obj fields) ->
        List.iter
          (fun (name, v) ->
            match v with
            | Json.Int d ->
              let prev =
                Option.value ~default:0 (Hashtbl.find_opt st.counters name)
              in
              Hashtbl.replace st.counters name (prev + d)
            | _ -> ())
          fields
      | _ -> ());
      List.iter
        (fun (name, d) -> Hashtbl.replace st.digests name d)
        digest_updates
    | "final" ->
      let dropped = rint j "dropped_events" in
      st.finished <- true;
      st.dropped <- dropped
    | _ -> () (* unknown record types: forward compatibility *))
  | _ -> raise Invalid_record (* missing or non-string "record" field *)

let feed_record st j =
  match apply_record st j with
  | () ->
    st.records <- st.records + 1;
    (match opt_num j "t" with
    | Some t -> st.last_t <- Float.max st.last_t t
    | None -> ())
  | exception Invalid_record -> st.parse_errors <- st.parse_errors + 1

let feed_line st line =
  let line = String.trim line in
  if line <> "" then
    match Json.parse line with
    | Ok j -> feed_record st j
    | Error _ -> st.parse_errors <- st.parse_errors + 1

let feed_string st text = List.iter (feed_line st) (String.split_on_char '\n' text)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let schema st = st.schema
let started_at st = st.started_at
let last_t st = st.last_t

let elapsed st =
  match st.started_at with
  | Some t0 -> Float.max 0. (st.last_t -. t0)
  | None -> 0.

let heartbeats st = st.heartbeats
let finished st = st.finished
let dropped st = st.dropped
let records st = st.records
let parse_errors st = st.parse_errors
let monotone st = st.monotone
let progress st = st.progress

let sorted tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters st = sorted st.counters
let digests st = sorted st.digests

let warnings st =
  List.init st.warn_count (fun i ->
      st.warn_buf.((st.warn_pos - 1 - i + (2 * max_warnings)) mod max_warnings))

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let bar frac width =
  let frac = Float.max 0. (Float.min 1. frac) in
  let k = int_of_float ((frac *. float_of_int width) +. 0.5) in
  String.make k '#' ^ String.make (width - k) '.'

let seconds s =
  if s >= 3600. then Printf.sprintf "%.1f h" (s /. 3600.)
  else if s >= 60. then Printf.sprintf "%.1f min" (s /. 60.)
  else Printf.sprintf "%.1f s" s

(* the latency table: every *_seconds digest except the pool busy/idle
   pair (rendered as their own utilization line) *)
let pool_busy = "engine.pool.busy_seconds"
let pool_idle = "engine.pool.idle_seconds"

let is_latency name =
  let suffix = "_seconds" in
  String.length name >= String.length suffix
  && String.sub name
       (String.length name - String.length suffix)
       (String.length suffix)
     = suffix
  && name <> pool_busy && name <> pool_idle

let render st =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "bidir live %s— %d heartbeats, %d records, %d dropped%s%s"
    (match st.schema with Some s -> Printf.sprintf "(%s) " s | None -> "")
    st.heartbeats st.records st.dropped
    (if st.parse_errors > 0 then
       Printf.sprintf ", %d unparseable lines" st.parse_errors
     else "")
    (if st.finished then " — finished" else " — running");
  line "elapsed     %s" (seconds (elapsed st));
  (match st.progress with
  | None -> line "progress    (none yet)"
  | Some p ->
    let pct =
      if p.pr_total > 0 then
        100. *. float_of_int p.pr_completed /. float_of_int p.pr_total
      else 0.
    in
    line "progress    %s  %d/%d (%.1f%%)" p.pr_name p.pr_completed p.pr_total
      pct;
    line "            [%s]"
      (bar (float_of_int p.pr_completed /. float_of_int (max 1 p.pr_total)) 40);
    line "throughput  %.2f/s%s" p.pr_rate
      (match p.pr_eta with
      | Some eta -> Printf.sprintf "   eta %s" (seconds eta)
      | None -> "");
    match p.pr_ci with
    | Some hw ->
      line "ci          half-width %.6g%s" hw
        (match p.pr_ci_target with
        | Some t -> Printf.sprintf " (target %.6g)" t
        | None -> "")
    | None -> ());
  let ds = digests st in
  let latencies = List.filter (fun (n, _) -> is_latency n) ds in
  if latencies <> [] then begin
    line "latencies   %-34s %8s %10s %10s %10s" "" "n" "p50" "p90" "p99";
    List.iter
      (fun (name, d) ->
        line "            %-34s %8d %10.3g %10.3g %10.3g" name d.di_count
          d.di_p50 d.di_p90 d.di_p99)
      latencies
  end;
  (match (List.assoc_opt pool_busy ds, List.assoc_opt pool_idle ds) with
  | Some busy, Some idle ->
    let total = busy.di_sum +. idle.di_sum in
    line "pool        busy %s, idle %s%s" (seconds busy.di_sum)
      (seconds idle.di_sum)
      (if total > 0. then
         Printf.sprintf " (%.1f%% idle)" (100. *. idle.di_sum /. total)
       else "")
  | _ -> ());
  let counter name = Option.value ~default:0 (Hashtbl.find_opt st.counters name) in
  let alloc = counter "gc.alloc_bytes" in
  let minor = counter "gc.minor_collections" in
  let major = counter "gc.major_collections" in
  if alloc > 0 || minor > 0 || major > 0 then
    line "gc          alloc %.1f MB, minor %d, major %d"
      (float_of_int alloc /. 1e6)
      minor major;
  (match warnings st with
  | [] -> line "warnings    (none)"
  | ws ->
    line "warnings    (%d recent)" (List.length ws);
    List.iter
      (fun (t, level, msg) ->
        line "  %s [%s] %s"
          (match st.started_at with
          | Some t0 -> Printf.sprintf "%8.1fs" (Float.max 0. (t -. t0))
          | None -> Printf.sprintf "%8.1fs" t)
          level msg)
      ws);
  Buffer.contents b

let to_json st =
  let opt f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [ ("schema", opt (fun s -> Json.String s) st.schema);
      ("started_at", opt (fun t -> Json.Float t) st.started_at);
      ("last_t", Json.Float st.last_t);
      ("elapsed", Json.Float (elapsed st));
      ("heartbeats", Json.Int st.heartbeats);
      ("records", Json.Int st.records);
      ("parse_errors", Json.Int st.parse_errors);
      ("finished", Json.Bool st.finished);
      ("monotone", Json.Bool st.monotone);
      ("dropped_events", Json.Int st.dropped);
      ( "progress",
        opt
          (fun p ->
            Json.Obj
              [ ("name", Json.String p.pr_name);
                ("completed", Json.Int p.pr_completed);
                ("total", Json.Int p.pr_total);
                ("rate", Json.Float p.pr_rate);
                ("ci", opt (fun f -> Json.Float f) p.pr_ci);
                ("ci_target", opt (fun f -> Json.Float f) p.pr_ci_target);
                ("eta", opt (fun f -> Json.Float f) p.pr_eta);
              ])
          st.progress );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters st)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, d) ->
               ( k,
                 Json.Obj
                   [ ("count", Json.Int d.di_count);
                     ("sum", Json.Float d.di_sum);
                     ("p50", Json.Float d.di_p50);
                     ("p90", Json.Float d.di_p90);
                     ("p99", Json.Float d.di_p99);
                   ] ))
             (digests st)) );
      ( "warnings",
        Json.List
          (List.map
             (fun (t, level, msg) ->
               Json.Obj
                 [ ("t", Json.Float t);
                   ("level", Json.String level);
                   ("msg", Json.String msg);
                 ])
             (warnings st)) );
    ]
