let schema = "bidir-snapshot/1"

type t = {
  label : string;
  created_at : float;
  counters : (string * int) list;
  histograms : (string * Histogram.t) list;
}

let capture ?(label = "") () =
  { label;
    created_at = Unix.gettimeofday ();
    counters = Metrics.counters ();
    histograms =
      List.map (fun (n, h) -> (n, Histogram.copy h)) (Metrics.histograms ());
  }

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let to_json t =
  Json.Obj
    [ ("schema", Json.String schema);
      ("label", Json.String t.label);
      ("created_at", Json.Float t.created_at);
      ("counters",
       Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) t.counters));
      ("histograms",
       Json.Obj
         (List.map (fun (n, h) -> (n, Histogram.to_json_state h)) t.histograms));
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Json.member "schema" j with
    | Some (Json.String s) when s = schema -> Ok ()
    | Some (Json.String s) ->
      Error (Printf.sprintf "snapshot: unsupported schema %S (want %S)" s schema)
    | _ -> Error "snapshot: missing \"schema\""
  in
  let label =
    match Json.member "label" j with Some (Json.String s) -> s | _ -> ""
  in
  let created_at =
    match Json.member "created_at" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.
  in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match v with
          | Json.Int i -> Ok ((n, i) :: acc)
          | _ -> Error (Printf.sprintf "snapshot: counter %S is not an int" n))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "snapshot: missing \"counters\" object"
  in
  let* histograms =
    match Json.member "histograms" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (n, v) ->
          let* acc = acc in
          match Histogram.of_json_state v with
          | Ok h -> Ok ((n, h) :: acc)
          | Error m -> Error (Printf.sprintf "snapshot: histogram %S: %s" n m))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "snapshot: missing \"histograms\" object"
  in
  Ok { label; created_at; counters; histograms }

let of_string s = Result.bind (Json.parse s) of_json

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty (to_json t)))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Diffing                                                             *)
(* ------------------------------------------------------------------ *)

type rule =
  | Exact
  | Time_band of float
  | Budget
  | Ignore

type policy = kind:[ `Counter | `Histogram ] -> string -> rule

let time_metric name =
  let suffix s = String.length name >= String.length s
                 && String.sub name (String.length name - String.length s)
                      (String.length s) = s
  and prefix p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p
  in
  suffix "_seconds" || suffix ".seconds" || prefix "phase."

(* Work budgets: counters that measure how much work was spent rather
   than what was computed. Spending less is an improvement, never a
   violation; spending more fails the gate. Their per-solve
   distributions are informational only — the budget counter already
   gates the totals, and any pivot-path improvement would reshape the
   distribution without regressing anything. *)
let budget_counters =
  [ "linprog.pivots"; "linprog.refactor_eliminations";
    "network.assignment_pivots"; "linprog.alloc_bytes";
    (* flat-kernel element updates (pivot row scale + eliminations):
       the FLOP-scale work budget behind linprog.pivots *)
    "linprog.kernel_row_ops";
    (* live streaming must never lose events on the check workload:
       0 = 0 passes, and any drop regresses one-sided *)
    "telemetry.stream.dropped_events" ]

(* Informational distributions: per-solve pivot histograms (the budget
   counters already gate their totals) and the pool's per-map
   chunk-balance ratio (pure scheduling noise). *)
let ignored_histograms =
  [ "linprog.pivots_per_solve"; "linprog.pivots_per_warm_solve";
    "engine.pool.chunk_imbalance";
    (* heartbeat flush timing: pure wall-clock noise whose sample count
       tracks the heartbeat schedule, not the computation *)
    "telemetry.stream.flush_seconds" ]

(* Counters whose value depends on wall-clock timing rather than the
   computation (rate-limiter suppression counts). *)
let ignored_counters = [ "telemetry.log.suppressed" ]

(* Seconds-valued resource budgets: gated one-sided on their sum, like
   Budget counters, but with slack for scheduler noise. Checked before
   the [_seconds] time-band rule — a count-exact mean band would flag
   an *improvement* in pool idle time as drift. *)
let budget_histograms = [ "campaign.pool_idle_seconds" ]

let default_policy ?(tolerance = 0.5) () : policy =
 fun ~kind name ->
  let prefix p = String.length name >= String.length p
                 && String.sub name 0 (String.length p) = p
  in
  match kind with
  | `Counter ->
    if List.mem name budget_counters then Budget
    else if List.mem name ignored_counters then Ignore
      (* gc.* totals move with any code change — unactionable across
         commits; linprog.alloc_bytes above is the gated slice *)
    else if prefix "gc." then Ignore
    else Exact
  | `Histogram ->
    if List.mem name budget_histograms then Budget
    else if List.mem name ignored_histograms then Ignore
    else if time_metric name then Time_band tolerance
    else Exact

type value =
  | Counter of int
  | Hist of { count : int; sum : float; mean : float; min_v : float; max_v : float }

type status = Match | Within_band | Drift | Missing | New

type comparison = {
  metric : string;
  rule : rule;
  baseline : value option;
  current : value option;
  status : status;
  detail : string;
}

type diff = {
  base_label : string;
  cur_label : string;
  comparisons : comparison list;
}

let hist_value h =
  Hist
    { count = Histogram.count h;
      sum = Histogram.sum h;
      mean = Histogram.mean h;
      min_v = Histogram.min_value h;
      max_v = Histogram.max_value h;
    }

let pct x = 100. *. x

let compare_counters rule a b =
  match rule with
  | Ignore -> (Match, "ignored by policy")
  | Budget ->
    (* budget counters gate one-sided: staying at or under the baseline
       passes (an improvement is reported, not flagged), exceeding it
       is a regression *)
    if a = b then (Match, "")
    else if b < a then
      ( Within_band,
        Printf.sprintf "budget improved: %d -> %d (%+d)" a b (b - a) )
    else
      ( Drift,
        Printf.sprintf "budget exceeded: %d -> %d (%+d)" a b (b - a) )
  | Exact | Time_band _ ->
    (* counters are deterministic by design: any drift is a violation,
       whatever band the name would get as a histogram *)
    if a = b then (Match, "")
    else
      ( Drift,
        Printf.sprintf "counter changed: %d -> %d (%+d)" a b (b - a) )

let compare_histograms rule a b =
  match rule with
  | Ignore -> (Match, "ignored by policy")
  | Budget ->
    (* seconds-valued resource budgets (pool idle time): one-sided on
       the summed value, with both relative and absolute slack so
       scheduler noise doesn't flap the gate *)
    let sa = Histogram.sum a and sb = Histogram.sum b in
    let allowed = Float.max (0.5 *. Float.abs sa) 1e-3 in
    if sa = sb then (Match, "")
    else if sb < sa then
      ( Within_band,
        Printf.sprintf "budget improved: %.3g -> %.3g s" sa sb )
    else if sb -. sa <= allowed then
      ( Within_band,
        Printf.sprintf "budget within slack: %.3g -> %.3g s" sa sb )
    else
      ( Drift,
        Printf.sprintf "budget exceeded: %.3g -> %.3g s (+%.3g)" sa sb
          (sb -. sa) )
  | Exact ->
    if not (Histogram.same_geometry a b) then
      (Drift, "histogram geometry changed")
    else if Histogram.bucket_counts a <> Histogram.bucket_counts b then
      ( Drift,
        Printf.sprintf "histogram distribution changed (count %d -> %d)"
          (Histogram.count a) (Histogram.count b) )
    else if
      Histogram.sum a <> Histogram.sum b
      || Histogram.min_value a <> Histogram.min_value b
      || Histogram.max_value a <> Histogram.max_value b
    then (Drift, "histogram sum/min/max changed")
    else (Match, "")
  | Time_band tol ->
    if Histogram.count a <> Histogram.count b then
      ( Drift,
        Printf.sprintf "sample count changed: %d -> %d" (Histogram.count a)
          (Histogram.count b) )
    else if Histogram.count a = 0 then (Match, "")
    else begin
      let ma = Histogram.mean a and mb = Histogram.mean b in
      (* small absolute slack so micro-histograms (means of a few tens
         of microseconds) don't flap on scheduler noise *)
      let allowed = Float.max (tol *. Float.abs ma) 5e-5 in
      if ma = mb then (Match, "")
      else if Float.abs (mb -. ma) <= allowed then
        ( Within_band,
          Printf.sprintf "mean %.3g -> %.3g s (%+.1f%%, band %.0f%%)" ma mb
            (pct ((mb -. ma) /. Float.max (Float.abs ma) 1e-12))
            (pct tol) )
      else
        ( Drift,
          Printf.sprintf
            "mean %.3g -> %.3g s (%+.1f%% exceeds %.0f%% band)" ma mb
            (pct ((mb -. ma) /. Float.max (Float.abs ma) 1e-12))
            (pct tol) )
    end

type entry = C of int | H of Histogram.t

let lookup snap metric =
  match List.assoc_opt metric snap.counters with
  | Some v -> Some (C v)
  | None -> (
    match List.assoc_opt metric snap.histograms with
    | Some h -> Some (H h)
    | None -> None)

let entry_value = function C v -> Counter v | H h -> hist_value h
let entry_kind = function C _ -> `Counter | H _ -> `Histogram

let diff ?policy base cur =
  let policy = match policy with Some p -> p | None -> default_policy () in
  let names l = List.map fst l in
  let all_names =
    List.sort_uniq compare
      (names base.counters @ names cur.counters @ names base.histograms
      @ names cur.histograms)
  in
  let comparisons =
    List.map
      (fun metric ->
        match (lookup base metric, lookup cur metric) with
        | Some (C a), Some (C b) ->
          let rule = policy ~kind:`Counter metric in
          let status, detail = compare_counters rule a b in
          { metric; rule; baseline = Some (Counter a);
            current = Some (Counter b); status; detail }
        | Some (H a), Some (H b) ->
          let rule = policy ~kind:`Histogram metric in
          let status, detail = compare_histograms rule a b in
          { metric; rule; baseline = Some (hist_value a);
            current = Some (hist_value b); status; detail }
        | Some a, Some b ->
          (* registered as a counter on one side, a histogram on the
             other: a kind change is always structural drift *)
          { metric; rule = Exact; baseline = Some (entry_value a);
            current = Some (entry_value b); status = Drift;
            detail = "metric kind changed" }
        | Some a, None ->
          let rule = policy ~kind:(entry_kind a) metric in
          let status, detail =
            match rule with
            | Ignore -> (Match, "ignored by policy")
            | _ -> (Missing, "present in baseline, absent in current run")
          in
          { metric; rule; baseline = Some (entry_value a); current = None;
            status; detail }
        | None, Some b ->
          { metric; rule = policy ~kind:(entry_kind b) metric;
            baseline = None; current = Some (entry_value b); status = New;
            detail = "absent in baseline (new metric)" }
        | None, None -> assert false)
      all_names
  in
  { base_label = base.label; cur_label = cur.label; comparisons }

let violation c = match c.status with Drift | Missing -> true | _ -> false
let violations d = List.filter violation d.comparisons
let ok d = violations d = []

let identical d =
  List.for_all (fun c -> c.status = Match) d.comparisons
