(* Live telemetry streaming. The ring is a classic bounded MPSC queue
   built from an array of atomic slots: producers CAS-claim a tail
   ticket, then publish the event into their slot; the single consumer
   reads [head], spins on a claimed-but-unwritten slot, clears it and
   advances. Fullness is checked conservatively against the consumer's
   published [head] before claiming, so a producer can never overwrite
   an unconsumed slot — at worst it drops an event the consumer was
   just about to make room for, and drops are what the
   [telemetry.stream.dropped_events] counter exists to expose. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type progress = {
  p_t : float;
  p_name : string;
  p_completed : int;
  p_total : int;
  p_rate : float;
  p_ci_half_width : float option;
  p_ci_target : float option;
  p_eta_seconds : float option;
}

type logrec = {
  l_t : float;
  l_level : level;
  l_msg : string;
  l_span : string;
  l_domain : int;
}

type event =
  | Progress of progress
  | Log of logrec
  | Counter_delta of { cd_t : float; cd_name : string; cd_delta : int }
  | Digest of {
      dg_t : float;
      dg_name : string;
      dg_count : int;
      dg_sum : float;
      dg_p50 : float;
      dg_p90 : float;
      dg_p99 : float;
    }

let opt_float = function None -> Json.Null | Some f -> Json.Float f

let event_to_json = function
  | Progress p ->
    Json.Obj
      [ ("record", Json.String "progress");
        ("t", Json.Float p.p_t);
        ("name", Json.String p.p_name);
        ("completed", Json.Int p.p_completed);
        ("total", Json.Int p.p_total);
        ("rate", Json.Float p.p_rate);
        ("ci", opt_float p.p_ci_half_width);
        ("ci_target", opt_float p.p_ci_target);
        ("eta", opt_float p.p_eta_seconds);
      ]
  | Log l ->
    Json.Obj
      [ ("record", Json.String "log");
        ("t", Json.Float l.l_t);
        ("level", Json.String (level_name l.l_level));
        ("msg", Json.String l.l_msg);
        ("span", Json.String l.l_span);
        ("domain", Json.Int l.l_domain);
      ]
  | Counter_delta c ->
    Json.Obj
      [ ("record", Json.String "counter");
        ("t", Json.Float c.cd_t);
        ("name", Json.String c.cd_name);
        ("delta", Json.Int c.cd_delta);
      ]
  | Digest d ->
    Json.Obj
      [ ("record", Json.String "digest");
        ("t", Json.Float d.dg_t);
        ("name", Json.String d.dg_name);
        ("count", Json.Int d.dg_count);
        ("sum", Json.Float d.dg_sum);
        ("p50", Json.Float d.dg_p50);
        ("p90", Json.Float d.dg_p90);
        ("p99", Json.Float d.dg_p99);
      ]

(* ------------------------------------------------------------------ *)
(* The ring                                                            *)
(* ------------------------------------------------------------------ *)

let capacity = 8192

let slots : event option Atomic.t array =
  Array.init capacity (fun _ -> Atomic.make None)

(* [tail] is the next ticket to claim (producers CAS it); [head] is the
   next slot to consume, written only by the consumer. Both grow
   without bound; slot = ticket mod capacity. *)
let tail = Atomic.make 0
let head = Atomic.make 0

let streaming = Atomic.make false

let enabled () = Atomic.get streaming
let set_enabled b = Atomic.set streaming b

let with_enabled b f =
  let old = Atomic.get streaming in
  Atomic.set streaming b;
  Fun.protect ~finally:(fun () -> Atomic.set streaming old) f

let events_c = Metrics.counter "telemetry.stream.events"
let dropped_c = Metrics.counter "telemetry.stream.dropped_events"
let heartbeats_c = Metrics.counter "telemetry.stream.heartbeats"
let flush_seconds = Metrics.histogram "telemetry.stream.flush_seconds"

let dropped_events () = Metrics.value dropped_c

let rec push ev =
  let t = Atomic.get tail in
  if t - Atomic.get head >= capacity then begin
    Metrics.incr dropped_c;
    false
  end
  else if Atomic.compare_and_set tail t (t + 1) then begin
    (* the slot is ours: the consumer cleared it to [None] before
       advancing [head] past [t - capacity], and no other producer can
       claim ticket [t] *)
    Atomic.set slots.(t mod capacity) (Some ev);
    Metrics.incr events_c;
    true
  end
  else push ev

let emit ev = if Atomic.get streaming then push ev else false

let note_progress ~name ~completed ~total ?(rate = 0.) ?ci_half_width
    ?ci_target ?eta_seconds () =
  if Atomic.get streaming then
    ignore
      (push
         (Progress
            { p_t = Unix.gettimeofday ();
              p_name = name;
              p_completed = completed;
              p_total = total;
              p_rate = rate;
              p_ci_half_width = ci_half_width;
              p_ci_target = ci_target;
              p_eta_seconds = eta_seconds;
            })
        : bool)

let drain () =
  let acc = ref [] in
  let continue = ref true in
  while !continue do
    let h = Atomic.get head in
    if h >= Atomic.get tail then continue := false
    else begin
      let slot = slots.(h mod capacity) in
      (* a producer that claimed this ticket may not have published its
         event yet; the window is a few instructions, so spin *)
      let rec take () =
        match Atomic.get slot with
        | Some ev -> ev
        | None ->
          Domain.cpu_relax ();
          take ()
      in
      let ev = take () in
      Atomic.set slot None;
      Atomic.set head (h + 1);
      acc := ev :: !acc
    end
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* The writer                                                          *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  type t = {
    oc : out_channel;
    interval : float;
    mutable last_hb : float;
    mutable seq : int;
    mutable closed : bool;
    (* counter values when the writer opened, so the final record
       reports this run's totals even if the process streamed before *)
    events_base : int;
    dropped_base : int;
    (* registry state at the previous heartbeat, for delta encoding *)
    prev_counters : (string, int) Hashtbl.t;
    prev_hist_counts : (string, int) Hashtbl.t;
  }

  let write_line w json =
    output_string w.oc (Json.to_string json);
    output_char w.oc '\n'

  let create ?(interval = 0.) ~path () =
    let oc = open_out path in
    let w =
      { oc;
        interval;
        last_hb = neg_infinity;
        seq = 0;
        closed = false;
        events_base = Metrics.value events_c;
        dropped_base = Metrics.value dropped_c;
        prev_counters = Hashtbl.create 64;
        prev_hist_counts = Hashtbl.create 32;
      }
    in
    write_line w
      (Json.Obj
         [ ("schema", Json.String "bidir-live/1");
           ("record", Json.String "start");
           ("t", Json.Float (Unix.gettimeofday ()));
           ("interval", Json.Float interval);
         ]);
    flush oc;
    w

  (* the registry serialised as deltas against the previous heartbeat:
     counters whose value moved (as the increment), histograms whose
     count moved (as a cumulative digest — quantiles don't subtract) *)
  let registry_delta w =
    let counters =
      List.filter_map
        (fun (name, v) ->
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt w.prev_counters name)
          in
          if v = prev then None
          else begin
            Hashtbl.replace w.prev_counters name v;
            Some (name, Json.Int (v - prev))
          end)
        (Metrics.counters ())
    in
    let histograms =
      List.filter_map
        (fun (name, h) ->
          let c = Histogram.count h in
          let prev =
            Option.value ~default:0 (Hashtbl.find_opt w.prev_hist_counts name)
          in
          if c = prev then None
          else begin
            Hashtbl.replace w.prev_hist_counts name c;
            let p50, p90, p99 = Histogram.percentiles h in
            Some
              ( name,
                Json.Obj
                  [ ("count", Json.Int c);
                    ("sum", Json.Float (Histogram.sum h));
                    ("p50", Json.Float p50);
                    ("p90", Json.Float p90);
                    ("p99", Json.Float p99);
                  ] )
          end)
        (Metrics.histograms ())
    in
    (counters, histograms)

  let heartbeat w =
    if not w.closed then
      Metrics.time flush_seconds @@ fun () ->
      List.iter (fun ev -> write_line w (event_to_json ev)) (drain ());
      let counters, histograms = registry_delta w in
      w.seq <- w.seq + 1;
      write_line w
        (Json.Obj
           [ ("record", Json.String "heartbeat");
             ("t", Json.Float (Unix.gettimeofday ()));
             ("seq", Json.Int w.seq);
             ("counters", Json.Obj counters);
             ("histograms", Json.Obj histograms);
           ]);
      Metrics.incr heartbeats_c;
      w.last_hb <- Unix.gettimeofday ();
      flush w.oc

  let pulse w =
    if (not w.closed) && Unix.gettimeofday () -. w.last_hb >= w.interval then
      heartbeat w

  let heartbeats w = w.seq

  let close w =
    if not w.closed then begin
      heartbeat w;
      w.closed <- true;
      write_line w
        (Json.Obj
           [ ("record", Json.String "final");
             ("t", Json.Float (Unix.gettimeofday ()));
             ("heartbeats", Json.Int w.seq);
             ("events", Json.Int (Metrics.value events_c - w.events_base));
             ("dropped_events",
              Json.Int (Metrics.value dropped_c - w.dropped_base));
           ]);
      flush w.oc;
      close_out_noerr w.oc
    end
end

(* ------------------------------------------------------------------ *)
(* The process-wide live writer                                        *)
(* ------------------------------------------------------------------ *)

let live : (string * Writer.t) option ref = ref None
let pulse_hook = ref (fun () -> ())

let set_pulse_hook f = pulse_hook := f

let close_live () =
  (match !live with
  | Some (_, w) -> Writer.close w
  | None -> ());
  live := None;
  set_enabled false

let open_live ?interval path =
  close_live ();
  live := Some (path, Writer.create ?interval ~path ());
  set_enabled true

let live_path () = Option.map fst !live

let pulse_live () =
  !pulse_hook ();
  match !live with Some (_, w) -> Writer.pulse w | None -> ()
