(** Point-in-time captures of the whole {!Metrics} registry, their JSON
    persistence, and structural diffing under a per-metric tolerance
    policy — the primitive behind baseline files and the CLI regression
    gate ([bidir check]).

    A snapshot records every registered counter value and a full copy of
    every histogram (geometry and all bucket cells, not just summary
    percentiles), plus a label and capture time. Because histograms are
    persisted losslessly, [capture ()] and [load] of its saved form are
    indistinguishable, and diffing is exact where the underlying data
    is exact.

    Diffing classifies each metric by a {!policy}:
    - deterministic metrics (all counters, and value-distribution
      histograms such as [netsim.queue_depth]) must match {e exactly} —
      any drift is reported as a correctness signal;
    - wall-time histograms ([lp.solve_seconds],
      [engine.pool.chunk_seconds], [phase.*] — any name ending in
      [_seconds] or starting with [phase.]) must keep an identical
      sample count but only need their mean within a relative band. *)

type t = {
  label : string;
  created_at : float;        (** unix seconds at capture *)
  counters : (string * int) list;           (** name-sorted *)
  histograms : (string * Histogram.t) list; (** name-sorted, private copies *)
}

val capture : ?label:string -> unit -> t
(** Capture the current state of the {!Metrics} registry. The contained
    histograms are copies: later observations don't mutate the capture. *)

val schema : string
(** Schema tag written into (and required from) the JSON form,
    ["bidir-snapshot/1"]. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val of_string : string -> (t, string) result
(** Parse then {!of_json}. *)

val save : string -> t -> unit
(** Write the pretty-printed JSON form to a file. *)

val load : string -> (t, string) result
(** Read a file saved by {!save}. [Error] on IO failure, parse failure
    or schema mismatch. *)

(** {1 Diffing} *)

type rule =
  | Exact
      (** Counters: values equal. Histograms: same geometry, identical
          bucket counts, and equal sum/min/max. *)
  | Time_band of float
      (** Histograms only (counters under this rule still compare
          exactly): sample count must match exactly; means may differ by
          the given relative fraction (plus a 50 µs absolute slack for
          micro-histograms). *)
  | Budget
      (** Resources spent rather than values computed: gated one-sided.
          At or under the baseline passes — a decrease is reported as an
          improvement ({!Within_band}) — while exceeding the baseline is
          {!Drift}. Counters (simplex pivots, basis refactorisations,
          [linprog.alloc_bytes]) compare their exact values; histograms
          ([campaign.pool_idle_seconds]) compare their summed value with
          50% relative / 1 ms absolute slack for scheduler noise. *)
  | Ignore
      (** Always passes; the metric still appears in the report. *)

type policy = kind:[ `Counter | `Histogram ] -> string -> rule

val default_policy : ?tolerance:float -> unit -> policy
(** Counters are [Exact], except the work budgets [linprog.pivots],
    [linprog.refactor_eliminations], [network.assignment_pivots] and
    [linprog.alloc_bytes], which are [Budget] (a regression fails the
    gate; an improvement passes without a baseline refresh), and the
    [gc.*] process totals, which are [Ignore] (they move with any code
    change; the gated slice is [linprog.alloc_bytes]). Histograms:
    [campaign.pool_idle_seconds] is [Budget] (one-sided on its sum);
    names ending in [_seconds] / [.seconds] or starting with [phase.]
    get [Time_band tolerance] (default 0.5, i.e. ±50%) — this covers
    the [engine.pool.*_seconds] utilization histograms; the per-solve
    pivot distributions ([linprog.pivots_per_solve],
    [linprog.pivots_per_warm_solve]) and the scheduling-noise ratio
    [engine.pool.chunk_imbalance] are [Ignore]; every other histogram
    is [Exact]. *)

type value =
  | Counter of int
  | Hist of { count : int; sum : float; mean : float; min_v : float; max_v : float }

type status =
  | Match        (** identical under the rule *)
  | Within_band  (** differs, but inside a [Time_band] — not a violation *)
  | Drift        (** violation: outside the rule's tolerance *)
  | Missing      (** violation: in the baseline, absent from the current run *)
  | New          (** in the current run only — reported but not a violation *)

type comparison = {
  metric : string;
  rule : rule;
  baseline : value option;  (** [None] iff [status = New] *)
  current : value option;   (** [None] iff [status = Missing] *)
  status : status;
  detail : string;          (** human explanation; [""] on exact match *)
}

type diff = {
  base_label : string;
  cur_label : string;
  comparisons : comparison list;  (** one per metric name, sorted *)
}

val diff : ?policy:policy -> t -> t -> diff
(** [diff base current] compares every metric present in either
    snapshot. Defaults to {!default_policy}[ ()]. *)

val violation : comparison -> bool
(** [Drift] or [Missing]. *)

val violations : diff -> comparison list

val ok : diff -> bool
(** No violations (the regression gate's pass condition). *)

val identical : diff -> bool
(** Every comparison is an exact [Match] — the "empty diff": what
    diffing a snapshot against a reload of itself yields. *)
