(** Process-wide registry of named counters and histograms.

    Lookup-or-create is serialised by a mutex; the returned handles are
    lock-free to update, so the intended pattern is to resolve handles
    once (at module initialisation or per phase) and update them on the
    hot path. Names are dotted paths ([lp.solve_seconds],
    [engine.cache_hits]); snapshots render them sorted, so output is
    deterministic. *)

type counter

val counter : string -> counter
(** Get or create the counter registered under this name. Raises
    [Invalid_argument] when the name is already a histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram :
  ?lo:float -> ?growth:float -> ?buckets:int -> string -> Histogram.t
(** Get or create a histogram (geometry arguments as
    {!Histogram.create}; they apply only on first creation). Raises
    [Invalid_argument] when the name is already a counter. *)

val observe : Histogram.t -> float -> unit

val observe_int : Histogram.t -> int -> unit
(** Allocation-free integer observation — see
    {!Histogram.observe_int}. *)

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration in seconds (also
    on exceptions). *)

val counters : unit -> (string * int) list
(** Name-sorted snapshot of every registered counter. *)

val histograms : unit -> (string * Histogram.t) list
(** Name-sorted; the histograms are the live registered instances. *)

val reset : unit -> unit
(** Zero every counter and reset every histogram. Registrations (and
    handles already held by callers) stay valid. *)

val to_json : unit -> Json.t
(** [{ "counters": {...}, "histograms": {...} }], names sorted. *)

val to_text : unit -> string
(** Human-readable dump: one line per counter, one per histogram with
    count/mean/p50/p90/p99. *)
