(* GC and allocation accounting. All numbers come from the runtime's
   own monotone counters ([Gc.quick_stat] reads live counters without
   walking the heap; [Gc.allocated_bytes] is this domain's cumulative
   allocation), so sampling is cheap enough for per-span use — but it
   is still gated behind [enabled] so the default cost of the layer is
   one atomic load at every probe site. *)

type sample = {
  s_minor_words : float;
  s_major_words : float;
  s_promoted_words : float;
  s_minor_collections : int;
  s_major_collections : int;
  s_alloc_bytes : float;
}

type delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
  alloc_bytes : float;
}

let tracking = Atomic.make false

let enabled () = Atomic.get tracking
let set_enabled b = Atomic.set tracking b

let with_enabled b f =
  let old = Atomic.get tracking in
  Atomic.set tracking b;
  Fun.protect ~finally:(fun () -> Atomic.set tracking old) f

let sample () =
  let q = Gc.quick_stat () in
  (* [quick_stat]'s minor_words only advances at collection boundaries
     on OCaml 5; [Gc.minor_words] reads the live allocation pointer, so
     small allocations are visible without waiting for a minor GC. *)
  { s_minor_words = Gc.minor_words ();
    s_major_words = q.Gc.major_words;
    s_promoted_words = q.Gc.promoted_words;
    s_minor_collections = q.Gc.minor_collections;
    s_major_collections = q.Gc.major_collections;
    s_alloc_bytes = Gc.allocated_bytes ();
  }

let delta_since s0 =
  let s1 = sample () in
  (* the runtime counters are monotone, but clamp anyway so a delta can
     never go negative (e.g. across a [Gc.counters] reset) *)
  let dfloat a b = Float.max 0. (b -. a) in
  { minor_words = dfloat s0.s_minor_words s1.s_minor_words;
    major_words = dfloat s0.s_major_words s1.s_major_words;
    promoted_words = dfloat s0.s_promoted_words s1.s_promoted_words;
    minor_collections = max 0 (s1.s_minor_collections - s0.s_minor_collections);
    major_collections = max 0 (s1.s_major_collections - s0.s_major_collections);
    alloc_bytes = dfloat s0.s_alloc_bytes s1.s_alloc_bytes;
  }

let measure f =
  let s0 = sample () in
  let r = f () in
  (r, delta_since s0)

(* ------------------------------------------------------------------ *)
(* Registry aggregation                                                *)
(* ------------------------------------------------------------------ *)

(* Registered at module initialisation so the [gc.*] keys appear in
   every metrics dump (value 0 until something is accounted). *)
let minor_words_c = Metrics.counter "gc.minor_words"
let major_words_c = Metrics.counter "gc.major_words"
let promoted_words_c = Metrics.counter "gc.promoted_words"
let minor_collections_c = Metrics.counter "gc.minor_collections"
let major_collections_c = Metrics.counter "gc.major_collections"
let alloc_bytes_c = Metrics.counter "gc.alloc_bytes"

let add_to_registry d =
  Metrics.add minor_words_c (int_of_float d.minor_words);
  Metrics.add major_words_c (int_of_float d.major_words);
  Metrics.add promoted_words_c (int_of_float d.promoted_words);
  Metrics.add minor_collections_c d.minor_collections;
  Metrics.add major_collections_c d.major_collections;
  Metrics.add alloc_bytes_c (int_of_float d.alloc_bytes)

let account f =
  let s0 = sample () in
  Fun.protect ~finally:(fun () -> add_to_registry (delta_since s0)) f

(* ------------------------------------------------------------------ *)
(* Span argument rendering                                             *)
(* ------------------------------------------------------------------ *)

let span_args d =
  [ ("gc.minor_words", Json.Float d.minor_words);
    ("gc.major_words", Json.Float d.major_words);
    ("gc.minor_collections", Json.Int d.minor_collections);
    ("gc.major_collections", Json.Int d.major_collections);
    ("gc.alloc_bytes", Json.Float d.alloc_bytes);
  ]
