type event = {
  name : string;
  cat : string;
  ts : float;
  dur : float;
  tid : int;
  parent : string;
  args : (string * Json.t) list;
}

let tracing = Atomic.make false
let epoch = Atomic.make 0.

let buf_lock = Mutex.create ()
let buf : event list ref = ref []

let stack_key : string list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let enabled () = Atomic.get tracing

let start () =
  Mutex.lock buf_lock;
  buf := [];
  Mutex.unlock buf_lock;
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set tracing true

let stop () = Atomic.set tracing false

let record ev =
  Mutex.lock buf_lock;
  buf := ev :: !buf;
  Mutex.unlock buf_lock

let tid () = (Domain.self () :> int)

let with_span ?(cat = "app") ?(args = []) name f =
  if not (Atomic.get tracing) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> "" | p :: _ -> p in
    Domain.DLS.set stack_key (name :: stack);
    let res0 = if Resource.enabled () then Some (Resource.sample ()) else None in
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Unix.gettimeofday () in
        Domain.DLS.set stack_key stack;
        let args =
          match res0 with
          | None -> args
          | Some s0 -> args @ Resource.span_args (Resource.delta_since s0)
        in
        record
          { name;
            cat;
            ts = t0 -. Atomic.get epoch;
            dur = t1 -. t0;
            tid = tid ();
            parent;
            args;
          })
      f
  end

let instant ?(cat = "app") ?(args = []) name =
  if Atomic.get tracing then begin
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> "" | p :: _ -> p in
    record
      { name;
        cat;
        ts = Unix.gettimeofday () -. Atomic.get epoch;
        dur = 0.;
        tid = tid ();
        parent;
        args;
      }
  end

let context () = Domain.DLS.get stack_key

let with_context ctx f =
  let old = Domain.DLS.get stack_key in
  Domain.DLS.set stack_key ctx;
  Fun.protect ~finally:(fun () -> Domain.DLS.set stack_key old) f

let events () =
  Mutex.lock buf_lock;
  let evs = !buf in
  Mutex.unlock buf_lock;
  List.sort
    (fun a b -> compare (a.ts, a.dur, a.name) (b.ts, b.dur, b.name))
    evs
