(** Fixed-geometry log-bucket histograms.

    A histogram owns [buckets] counters over geometric value ranges:
    bucket [0] is the underflow range [(-inf, lo)], bucket [i] for
    [0 < i < buckets - 1] covers [[lo * growth^(i-1), lo * growth^i)],
    and the last bucket is the overflow range. Observations touch only
    atomic cells, so any number of domains may observe concurrently and
    histograms with the same geometry merge exactly (bucket-wise).

    Quantiles are estimated from bucket boundaries (geometric midpoint
    of the covering bucket) and clamped to the observed [min, max] — so
    a single-sample histogram reports that sample exactly, and every
    estimate lies within one [growth] factor of the true value. *)

type t

val create : ?lo:float -> ?growth:float -> ?buckets:int -> unit -> t
(** [lo] is the lower bound of the first finite bucket (default 1e-6 —
    a microsecond when observing seconds), [growth] the bucket width
    ratio (default [2^0.25], about 19% resolution), [buckets] the total
    bucket count including under/overflow (default 128, spanning about
    [1e-6 .. 3e3] at the defaults). Raises [Invalid_argument] on
    [lo <= 0], [growth <= 1] or [buckets < 2]. *)

val observe : t -> float -> unit
(** Record one sample. Lock-free; safe from any domain.

    Samples outside the histogram's domain are clamped rather than
    recorded raw: a NaN, infinite or negative sample is recorded as
    [0.] (it lands in the underflow bucket and contributes 0 to
    [sum]/[min]/[max]), so invalid inputs are counted but can never
    poison the mean with NaN or drag [min] negative. Genuine small
    samples in [[0, lo)] also land in the underflow bucket but keep
    their true value in [sum]/[min]/[max]; {!quantile} estimates for
    that bucket clamp to the observed minimum. All recorded state is
    therefore finite. *)

val observe_int : t -> int -> unit
(** Record one non-negative integer sample without allocating a single
    word: bucket, count, sum, min and max all live in int atomic cells
    on this path, so it is safe inside allocation-budgeted hot loops
    (the LP solver's per-solve pivot accounting). Negative samples
    clamp to 0 like {!observe}. For any [n] representable in a float,
    [observe_int t n] and [observe t (float_of_int n)] are
    indistinguishable through every accessor. *)

val underflow_count : t -> int
(** Samples that landed in the underflow bucket — sub-[lo] values plus
    clamped invalid (NaN/infinite/negative) observations. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float
val max_value : t -> float
(** Smallest / largest observed sample; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [[0, 1]]; 0 when empty. *)

val percentiles : t -> float * float * float
(** [(p50, p90, p99)]. *)

val merge : t -> t -> t
(** Fresh histogram with bucket-wise summed counts. Counts, min and max
    merge exactly (so merging is associative and commutative on them);
    sums are float additions. Raises [Invalid_argument] when the two
    geometries differ. *)

val reset : t -> unit

val same_geometry : t -> t -> bool

val bucket_index : t -> float -> int
(** The bucket a value lands in; total ordering and the invariant
    [bucket_lower_bound t i <= v < bucket_lower_bound t (i+1)] hold
    even at exact bucket boundaries. *)

val bucket_lower_bound : t -> int -> float
(** Lower bound of bucket [i]; 0 for the underflow bucket. *)

val num_buckets : t -> int

val bucket_counts : t -> int array
(** Snapshot of all bucket counters. *)

val nonzero_buckets : t -> (float * int) list
(** [(lower_bound, count)] for every non-empty bucket, ascending. *)

val to_json : t -> Json.t
(** Object with count/sum/mean/min/max/p50/p90/p99 and the non-empty
    buckets as [[lower_bound, count]] pairs. *)

val copy : t -> t
(** Fresh histogram with the same geometry and an identical point-in-time
    copy of all cells (used by snapshots so later observations on the
    live instance don't mutate the capture). *)

val to_json_state : t -> Json.t
(** Full-state serialisation: geometry ([lo]/[growth]/[buckets]),
    [count]/[sum] ([min]/[max] when non-empty) and every non-empty
    bucket as [[index, count]]. Unlike {!to_json} this loses nothing:
    {!of_json_state} restores an indistinguishable histogram. *)

val of_json_state : Json.t -> (t, string) result
(** Inverse of {!to_json_state}. Fails with a message on missing or
    ill-typed fields and on invalid geometry. *)
