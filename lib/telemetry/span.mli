(** Hierarchical wall-clock spans with domain-local span stacks.

    Tracing is globally off by default and {!with_span} costs a single
    atomic load and branch while it stays off — instrumentation can be
    left permanently in hot paths. When tracing is on, each span records
    its name, category, start offset (relative to {!start}), duration,
    the id of the domain it ran on, and the name of its parent span —
    the innermost enclosing span *on the same logical context*, which is
    maintained in a [Domain.DLS] stack.

    A parallel pool propagates the logical hierarchy across domains by
    capturing {!context} before fanning out and installing it with
    {!with_context} inside each worker task; spans the task opens then
    report the span that launched the fan-out as their parent, even
    though they ran on a different domain. *)

type event = {
  name : string;
  cat : string;           (** coarse grouping: "lp", "pool", "figures"… *)
  ts : float;             (** seconds since {!start} *)
  dur : float;            (** wall-clock seconds *)
  tid : int;              (** id of the domain the span ran on *)
  parent : string;        (** name of the enclosing span, [""] at root *)
  args : (string * Json.t) list;
}

val enabled : unit -> bool

val start : unit -> unit
(** Drop previously collected events, restart the trace clock and turn
    collection on. *)

val stop : unit -> unit
(** Turn collection off; collected events remain readable. *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string ->
  (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; when tracing is on, it pushes [name]
    onto this domain's span stack for the duration and records one event
    (also when [f] raises). When tracing is off it is [f ()]. When
    {!Resource.enabled} also holds, the event's [args] additionally carry
    the span's GC delta ([gc.minor_words], [gc.major_collections],
    [gc.alloc_bytes], …); note that a parent span's delta includes its
    children's. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** Record a zero-duration marker event at the current time. *)

val context : unit -> string list
(** This domain's current span stack, innermost first. *)

val with_context : string list -> (unit -> 'a) -> 'a
(** Run the thunk with the span stack replaced by the given context
    (restored afterwards, also on exceptions). Used to carry a logical
    parent across domain boundaries. *)

val events : unit -> event list
(** Collected events sorted by start time (ties by duration then name),
    so the listing is stable for a fixed set of spans. *)
