type 'a t = {
  cells : 'a array array;
  glyph : 'a -> char;
  x_axis : float array;
  y_axis : float array;
  title : string;
  xlabel : string;
  ylabel : string;
  legend : (char * string) list;
}

let validate t =
  if Array.length t.cells <> Array.length t.y_axis then
    invalid_arg "Heatmap: row count does not match the y axis";
  Array.iter
    (fun row ->
      if Array.length row <> Array.length t.x_axis then
        invalid_arg "Heatmap: column count does not match the x axis")
    t.cells

let render t =
  validate t;
  let rows = Array.length t.y_axis and cols = Array.length t.x_axis in
  let buf = Buffer.create 2048 in
  if t.title <> "" then begin
    Buffer.add_string buf t.title;
    Buffer.add_char buf '\n'
  end;
  for row = rows - 1 downto 0 do
    (* label the top, middle and bottom rows *)
    let label =
      if row = rows - 1 || row = 0 || row = rows / 2 then
        Printf.sprintf "%10.3f |" t.y_axis.(row)
      else Printf.sprintf "%10s |" ""
    in
    Buffer.add_string buf label;
    for col = 0 to cols - 1 do
      Buffer.add_char buf (t.glyph t.cells.(row).(col));
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf
    (Printf.sprintf "%10s +%s\n" "" (String.make (2 * cols) '-'));
  Buffer.add_string buf
    (Printf.sprintf "%10s %-*.3f%*.3f\n" "" (max 1 cols) t.x_axis.(0)
       (max 1 cols) t.x_axis.(cols - 1));
  if t.xlabel <> "" then Buffer.add_string buf (Printf.sprintf "%10s %s\n" "" t.xlabel);
  if t.ylabel <> "" then Buffer.add_string buf (Printf.sprintf "y: %s\n" t.ylabel);
  List.iter
    (fun (c, label) -> Buffer.add_string buf (Printf.sprintf "  %c %s\n" c label))
    t.legend;
  Buffer.contents buf

let tabulate ~f ~glyph ~x_axis ~y_axis ~title ~xlabel ~ylabel ~legend =
  let t =
    { cells =
        Array.map
          (fun y -> Array.map (fun x -> f ~x ~y) x_axis)
          y_axis;
      glyph;
      x_axis;
      y_axis;
      title;
      xlabel;
      ylabel;
      legend;
    }
  in
  validate t;
  t
