type series = { label : string; points : (float * float) list }

type config = {
  width : int;
  height : int;
  title : string;
  xlabel : string;
  ylabel : string;
  connect : bool;
}

let default_config =
  { width = 72; height = 20; title = ""; xlabel = ""; ylabel = ""; connect = true }

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let ranges ~zero_origin series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> None
  | _ ->
    let fold f = List.fold_left f in
    let x_min = fold Float.min infinity xs and x_max = fold Float.max neg_infinity xs in
    let y_min = fold Float.min infinity ys and y_max = fold Float.max neg_infinity ys in
    let x_min = if zero_origin then Float.min 0. x_min else x_min in
    let y_min = if zero_origin then Float.min 0. y_min else y_min in
    let pad lo hi = if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    let x_min, x_max = pad x_min x_max and y_min, y_max = pad y_min y_max in
    Some ((x_min, x_max), (y_min, y_max))

let render_with ~zero_origin ?(config = default_config) series =
  match ranges ~zero_origin series with
  | None -> "(no data)"
  | Some ((x_min, x_max), (y_min, y_max)) ->
    let c = Canvas.create ~width:config.width ~height:config.height in
    let to_cell_x x =
      int_of_float
        (Float.round
           ((x -. x_min) /. (x_max -. x_min) *. float_of_int (config.width - 1)))
    in
    let to_cell_y y =
      int_of_float
        (Float.round
           ((y -. y_min) /. (y_max -. y_min) *. float_of_int (config.height - 1)))
    in
    List.iteri
      (fun i s ->
        let marker = markers.(i mod Array.length markers) in
        let cells =
          List.map (fun (x, y) -> (to_cell_x x, to_cell_y y)) s.points
        in
        (if config.connect then
           let rec connect = function
             | (x0, y0) :: ((x1, y1) :: _ as rest) ->
               Canvas.line c ~x0 ~y0 ~x1 ~y1 '.';
               connect rest
             | _ -> ()
           in
           connect cells);
        List.iter (fun (x, y) -> Canvas.plot c ~x ~y marker) cells)
      series;
    let buf = Buffer.create 4096 in
    if config.title <> "" then begin
      Buffer.add_string buf config.title;
      Buffer.add_char buf '\n'
    end;
    (* y-axis labels on the left of each canvas row *)
    let body = String.split_on_char '\n' (Canvas.render c) in
    let label_for_row row =
      (* row 0 is the top *)
      let frac = float_of_int (config.height - 1 - row) /. float_of_int (config.height - 1) in
      y_min +. (frac *. (y_max -. y_min))
    in
    List.iteri
      (fun row line ->
        let label =
          if row = 0 || row = config.height - 1 || row = (config.height - 1) / 2
          then Printf.sprintf "%10.3f |" (label_for_row row)
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      body;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make config.width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s %-*.3f%*.3f\n" "" (config.width / 2) x_min
         (config.width - (config.width / 2))
         x_max);
    if config.xlabel <> "" then
      Buffer.add_string buf
        (Printf.sprintf "%10s %s\n" "" config.xlabel);
    if config.ylabel <> "" then
      Buffer.add_string buf (Printf.sprintf "y: %s\n" config.ylabel);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" markers.(i mod Array.length markers) s.label))
      series;
    Buffer.contents buf

let render ?config series = render_with ~zero_origin:false ?config series
let render_xy ?config series = render_with ~zero_origin:true ?config series
