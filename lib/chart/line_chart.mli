(** Multi-series line charts rendered to a string for the terminal. *)

type series = { label : string; points : (float * float) list }

type config = {
  width : int;     (** plot area width in cells (default 72) *)
  height : int;    (** plot area height (default 20) *)
  title : string;
  xlabel : string;
  ylabel : string;
  connect : bool;  (** draw segments between consecutive points *)
}

val default_config : config

val render : ?config:config -> series list -> string
(** Draws all series on shared axes with automatic ranges, one marker
    character per series (in order: [*], [+], [o], [x], [#], [@]), a
    legend, and numeric axis ticks. Empty input or all-empty series
    yields a short placeholder string. *)

val render_xy : ?config:config -> series list -> string
(** Like {!render} but forces the x and y scales to start at 0 — the
    natural frame for rate regions. *)
