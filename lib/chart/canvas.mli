(** A character-cell drawing surface for terminal plots. *)

type t

val create : width:int -> height:int -> t
(** Blank canvas ([width], [height] in character cells, both >= 1). *)

val width : t -> int
val height : t -> int

val plot : t -> x:int -> y:int -> char -> unit
(** Sets a cell; (0,0) is the bottom-left corner. Out-of-range
    coordinates are ignored (clipping), so callers can draw freely. *)

val get : t -> x:int -> y:int -> char

val hline : t -> y:int -> char -> unit
val vline : t -> x:int -> char -> unit

val line : t -> x0:int -> y0:int -> x1:int -> y1:int -> char -> unit
(** Bresenham segment. *)

val render : t -> string
(** Rows top-to-bottom, newline-separated, trailing blanks trimmed. *)
