(** Categorical heatmaps: a character per cell, for "which option wins
    where" maps over a 2-D parameter plane. *)

type 'a t = {
  cells : 'a array array;       (** [cells.(row).(col)]; row 0 is the bottom *)
  glyph : 'a -> char;           (** cell renderer *)
  x_axis : float array;         (** column coordinates (increasing) *)
  y_axis : float array;         (** row coordinates (increasing) *)
  title : string;
  xlabel : string;
  ylabel : string;
  legend : (char * string) list;
}

val render : 'a t -> string
(** Bottom-left origin; y tick labels on the left edge, x range under
    the frame, legend below. Raises [Invalid_argument] when the cell
    grid and the axes disagree. *)

val tabulate :
  f:(x:float -> y:float -> 'a) -> glyph:('a -> char) ->
  x_axis:float array -> y_axis:float array -> title:string ->
  xlabel:string -> ylabel:string -> legend:(char * string) list -> 'a t
(** Evaluate [f] on the grid. *)
