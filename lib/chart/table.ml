let normalise ~headers ~rows =
  let n = List.length headers in
  List.map
    (fun row ->
      let len = List.length row in
      if len > n then invalid_arg "Table: row longer than header"
      else row @ List.init (n - len) (fun _ -> ""))
    rows

let widths ~headers ~rows =
  let n = List.length headers in
  let w = Array.make n 0 in
  List.iter
    (fun row -> List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row)
    (headers :: rows);
  w

let render ~headers ~rows =
  let rows = normalise ~headers ~rows in
  let w = widths ~headers ~rows in
  let buf = Buffer.create 1024 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (w.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Array.iteri
    (fun i width ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make width '-'))
    w;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let render_markdown ~headers ~rows =
  let rows = normalise ~headers ~rows in
  let buf = Buffer.create 1024 in
  let emit_row row =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " row);
    Buffer.add_string buf " |\n"
  in
  emit_row headers;
  emit_row (List.map (fun _ -> "---") headers);
  List.iter emit_row rows;
  Buffer.contents buf

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_csv ~headers ~rows =
  let rows = normalise ~headers ~rows in
  let line row = String.concat "," (List.map csv_field row) ^ "\n" in
  String.concat "" (List.map line (headers :: rows))
