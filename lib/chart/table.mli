(** Aligned text and markdown tables. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned plain-text table with a header rule. Rows shorter than
    the header are padded with empty cells; longer rows raise
    [Invalid_argument]. *)

val render_markdown : headers:string list -> rows:string list list -> string

val render_csv : headers:string list -> rows:string list list -> string
(** RFC-4180-ish: fields containing commas, quotes or newlines are
    quoted, quotes doubled. *)
