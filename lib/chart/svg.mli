(** Standalone SVG rendering of line charts — publication-style output
    for the reproduced figures (the terminal charts' vector twin). *)

type config = {
  width : int;        (** pixel width of the whole document *)
  height : int;
  title : string;
  xlabel : string;
  ylabel : string;
  zero_origin : bool; (** anchor both axes at 0 (rate regions) *)
}

val default_config : config

val render : ?config:config -> Line_chart.series list -> string
(** A complete [<svg>] document: axes with tick labels, one colored
    polyline + point markers per series, and a legend. Empty input
    yields a small valid document with a "no data" note. *)

val write_file : path:string -> ?config:config -> Line_chart.series list -> unit
(** {!render} to a file. *)
