type t = { w : int; h : int; cells : Bytes.t }

let create ~width ~height =
  if width < 1 || height < 1 then invalid_arg "Canvas.create: empty canvas";
  { w = width; h = height; cells = Bytes.make (width * height) ' ' }

let width t = t.w
let height t = t.h

let plot t ~x ~y c =
  if x >= 0 && x < t.w && y >= 0 && y < t.h then
    (* row 0 of the byte buffer is the top of the screen *)
    Bytes.set t.cells (((t.h - 1 - y) * t.w) + x) c

let get t ~x ~y =
  if x < 0 || x >= t.w || y < 0 || y >= t.h then ' '
  else Bytes.get t.cells (((t.h - 1 - y) * t.w) + x)

let hline t ~y c =
  for x = 0 to t.w - 1 do
    plot t ~x ~y c
  done

let vline t ~x c =
  for y = 0 to t.h - 1 do
    plot t ~x ~y c
  done

let line t ~x0 ~y0 ~x1 ~y1 c =
  let dx = abs (x1 - x0) and dy = -abs (y1 - y0) in
  let sx = if x0 < x1 then 1 else -1 and sy = if y0 < y1 then 1 else -1 in
  let rec go x y err =
    plot t ~x ~y c;
    if x <> x1 || y <> y1 then begin
      let e2 = 2 * err in
      let x', err' = if e2 >= dy then (x + sx, err + dy) else (x, err) in
      let y', err'' = if e2 <= dx then (y + sy, err' + dx) else (y, err') in
      go x' y' err''
    end
  in
  go x0 y0 (dx + dy)

let render t =
  let buf = Buffer.create (t.w * t.h) in
  for row = 0 to t.h - 1 do
    let line = Bytes.sub_string t.cells (row * t.w) t.w in
    (* trim trailing blanks for cleaner output *)
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    Buffer.add_string buf (String.sub line 0 !len);
    if row < t.h - 1 then Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
