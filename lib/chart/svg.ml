type config = {
  width : int;
  height : int;
  title : string;
  xlabel : string;
  ylabel : string;
  zero_origin : bool;
}

let default_config =
  { width = 640;
    height = 420;
    title = "";
    xlabel = "";
    ylabel = "";
    zero_origin = false;
  }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(config = default_config) series =
  let buf = Buffer.create 8192 in
  let w = config.width and h = config.height in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n"
       w h w h);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" w h);
  let points = List.concat_map (fun s -> s.Line_chart.points) series in
  (match points with
  | [] ->
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\">no data</text>\n"
         (w / 2) (h / 2))
  | _ ->
    (* plot area inside margins *)
    let ml, mr, mt, mb = (60, 140, 36, 52) in
    let pw = w - ml - mr and ph = h - mt - mb in
    let xs = List.map fst points and ys = List.map snd points in
    let fold f = List.fold_left f in
    let x_min = fold Float.min infinity xs and x_max = fold Float.max neg_infinity xs in
    let y_min = fold Float.min infinity ys and y_max = fold Float.max neg_infinity ys in
    let x_min = if config.zero_origin then Float.min 0. x_min else x_min in
    let y_min = if config.zero_origin then Float.min 0. y_min else y_min in
    let pad lo hi = if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    let x_min, x_max = pad x_min x_max and y_min, y_max = pad y_min y_max in
    let sx x = float_of_int ml +. ((x -. x_min) /. (x_max -. x_min) *. float_of_int pw) in
    let sy y =
      float_of_int (mt + ph) -. ((y -. y_min) /. (y_max -. y_min) *. float_of_int ph)
    in
    (* frame + ticks *)
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"none\" \
          stroke=\"#444\"/>\n"
         ml mt pw ph);
    let ticks = 5 in
    for i = 0 to ticks - 1 do
      let fx = float_of_int i /. float_of_int (ticks - 1) in
      let xv = x_min +. (fx *. (x_max -. x_min)) in
      let yv = y_min +. (fx *. (y_max -. y_min)) in
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\" \
            fill=\"#444\">%.3g</text>\n"
           (sx xv) (mt + ph + 16) xv);
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%.1f\" text-anchor=\"end\" \
            fill=\"#444\">%.3g</text>\n"
           (ml - 6) (sy yv +. 4.) yv);
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%d\" x2=\"%.1f\" y2=\"%d\" \
            stroke=\"#ddd\"/>\n"
           (sx xv) mt (sx xv) (mt + ph));
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" \
            stroke=\"#ddd\"/>\n"
           ml (sy yv) (ml + pw) (sy yv))
    done;
    (* series *)
    List.iteri
      (fun i s ->
        let color = palette.(i mod Array.length palette) in
        let pts =
          String.concat " "
            (List.map
               (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (sx x) (sy y))
               s.Line_chart.points)
        in
        if s.Line_chart.points <> [] then begin
          Buffer.add_string buf
            (Printf.sprintf
               "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
                stroke-width=\"1.8\"/>\n"
               pts color);
          List.iter
            (fun (x, y) ->
              Buffer.add_string buf
                (Printf.sprintf
                   "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.4\" fill=\"%s\"/>\n"
                   (sx x) (sy y) color))
            s.Line_chart.points
        end;
        (* legend entry *)
        let ly = mt + 10 + (i * 18) in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"%s\" \
              stroke-width=\"2\"/>\n"
             (ml + pw + 12) ly (ml + pw + 34) ly color);
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%d\" y=\"%d\" fill=\"#222\">%s</text>\n"
             (ml + pw + 40) (ly + 4)
             (escape s.Line_chart.label)))
      series;
    if config.title <> "" then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"20\" text-anchor=\"middle\" font-size=\"14\" \
            fill=\"#000\">%s</text>\n"
           (w / 2) (escape config.title));
    if config.xlabel <> "" then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%d\" y=\"%d\" text-anchor=\"middle\" fill=\"#222\">%s</text>\n"
           (ml + (pw / 2)) (h - 12) (escape config.xlabel));
    if config.ylabel <> "" then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"16\" y=\"%d\" text-anchor=\"middle\" fill=\"#222\" \
            transform=\"rotate(-90 16 %d)\">%s</text>\n"
           (mt + (ph / 2)) (mt + (ph / 2)) (escape config.ylabel)));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file ~path ?config series =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?config series))
