module S = Telemetry.Snapshot
module J = Telemetry.Json

let status_name = function
  | S.Match -> "ok"
  | S.Within_band -> "within-band"
  | S.Drift -> "DRIFT"
  | S.Missing -> "MISSING"
  | S.New -> "new"

let rule_name = function
  | S.Exact -> "exact"
  | S.Time_band tol -> Printf.sprintf "band ±%.0f%%" (100. *. tol)
  | S.Budget -> "budget"
  | S.Ignore -> "ignore"

let value_string = function
  | None -> "-"
  | Some (S.Counter v) -> string_of_int v
  | Some (S.Hist { count; mean; _ }) ->
    if count = 0 then "empty" else Printf.sprintf "n=%d mean=%.3g" count mean

let delta_string (c : S.comparison) =
  match (c.S.baseline, c.S.current) with
  | Some (S.Counter a), Some (S.Counter b) ->
    if a = b then "" else Printf.sprintf "%+d" (b - a)
  | Some (S.Hist { count = na; mean = ma; _ }),
    Some (S.Hist { count = nb; mean = mb; _ }) ->
    if na <> nb then Printf.sprintf "%+d samples" (nb - na)
    else if ma = mb then ""
    else if Float.abs ma > 1e-12 then
      Printf.sprintf "%+.1f%% mean" (100. *. ((mb -. ma) /. Float.abs ma))
    else Printf.sprintf "%+.3g mean" (mb -. ma)
  | _ -> ""

(* Violations first (they're what the reader came for), then band-level
   drift, then everything else; alphabetical within each class. *)
let report_order a b =
  let weight c =
    match c.S.status with
    | S.Drift | S.Missing -> 0
    | S.Within_band -> 1
    | S.New -> 2
    | S.Match -> 3
  in
  match compare (weight a) (weight b) with
  | 0 -> compare a.S.metric b.S.metric
  | n -> n

let render_text (d : S.diff) =
  let comparisons = List.sort report_order d.S.comparisons in
  let rows =
    List.map
      (fun (c : S.comparison) ->
        [ c.S.metric;
          rule_name c.S.rule;
          value_string c.S.baseline;
          value_string c.S.current;
          delta_string c;
          status_name c.S.status;
        ])
      comparisons
  in
  let table =
    Chart.Table.render
      ~headers:[ "metric"; "rule"; "baseline"; "current"; "delta"; "verdict" ]
      ~rows
  in
  let viols = S.violations d in
  let summary =
    if viols = [] then
      Printf.sprintf "OK: %d metrics compared, no violations%s\n"
        (List.length comparisons)
        (let banded =
           List.length
             (List.filter (fun c -> c.S.status = S.Within_band) comparisons)
         in
         if banded = 0 then "" else Printf.sprintf " (%d within band)" banded)
    else
      Printf.sprintf "REGRESSION: %d violation%s in %d metrics:\n%s"
        (List.length viols)
        (if List.length viols = 1 then "" else "s")
        (List.length comparisons)
        (String.concat ""
           (List.map
              (fun (c : S.comparison) ->
                Printf.sprintf "  %s %s: %s\n" (status_name c.S.status)
                  c.S.metric c.S.detail)
              viols))
  in
  table ^ "\n" ^ summary

let comparison_json (c : S.comparison) =
  let value = function
    | None -> J.Null
    | Some (S.Counter v) -> J.Obj [ ("kind", J.String "counter"); ("value", J.Int v) ]
    | Some (S.Hist { count; sum; mean; min_v; max_v }) ->
      J.Obj
        [ ("kind", J.String "histogram");
          ("count", J.Int count);
          ("sum", J.Float sum);
          ("mean", J.Float mean);
          ("min", J.Float min_v);
          ("max", J.Float max_v);
        ]
  in
  J.Obj
    [ ("metric", J.String c.S.metric);
      ("rule", J.String (rule_name c.S.rule));
      ("baseline", value c.S.baseline);
      ("current", value c.S.current);
      ("delta", J.String (delta_string c));
      ("status", J.String (status_name c.S.status));
      ("violation", J.Bool (S.violation c));
      ("detail", J.String c.S.detail);
    ]

let to_json (d : S.diff) =
  J.Obj
    [ ("schema", J.String "bidir-regression-report/1");
      ("baseline_label", J.String d.S.base_label);
      ("current_label", J.String d.S.cur_label);
      ("ok", J.Bool (S.ok d));
      ("violations", J.Int (List.length (S.violations d)));
      ("comparisons",
       J.List (List.map comparison_json (List.sort report_order d.S.comparisons)));
    ]
