(** Rendering of {!Telemetry.Snapshot} diffs as regression reports.

    Both renderings list one row per compared metric — violations first,
    then within-band drift, then new/unchanged metrics — with the rule
    applied, baseline and current values, delta and verdict. *)

val render_text : Telemetry.Snapshot.diff -> string
(** Aligned table plus a one-paragraph summary: either
    ["OK: N metrics compared, ..."] or ["REGRESSION: ..."] naming each
    violated metric with its explanation. *)

val to_json : Telemetry.Snapshot.diff -> Telemetry.Json.t
(** Machine-readable form ([bidir-regression-report/1]): overall [ok]
    flag, violation count, and the full per-metric comparison list. *)
