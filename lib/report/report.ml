module Regression = Regression

let to_chart_series (s : Bidir.Figures.series) =
  { Chart.Line_chart.label = s.Bidir.Figures.label;
    points = s.Bidir.Figures.points;
  }

let render_figure ?(width = 72) ?(height = 20) (f : Bidir.Figures.figure) =
  let config =
    { Chart.Line_chart.default_config with
      Chart.Line_chart.width;
      height;
      title = Printf.sprintf "[%s] %s" f.Bidir.Figures.id f.Bidir.Figures.title;
      xlabel = f.Bidir.Figures.xlabel;
      ylabel = f.Bidir.Figures.ylabel;
    }
  in
  let series = List.map to_chart_series f.Bidir.Figures.series in
  let is_region =
    String.length f.Bidir.Figures.id >= 4
    && String.sub f.Bidir.Figures.id 0 4 = "fig4"
  in
  if is_region then Chart.Line_chart.render_xy ~config series
  else Chart.Line_chart.render ~config series

let render_table (t : Bidir.Figures.table) =
  Printf.sprintf "[%s] %s\n%s" t.Bidir.Figures.table_id
    t.Bidir.Figures.table_title
    (Chart.Table.render ~headers:t.Bidir.Figures.headers
       ~rows:t.Bidir.Figures.rows)

let figure_svg (f : Bidir.Figures.figure) =
  let is_region =
    String.length f.Bidir.Figures.id >= 4
    && String.sub f.Bidir.Figures.id 0 4 = "fig4"
  in
  let config =
    { Chart.Svg.default_config with
      Chart.Svg.title = f.Bidir.Figures.title;
      xlabel = f.Bidir.Figures.xlabel;
      ylabel = f.Bidir.Figures.ylabel;
      zero_origin = is_region;
    }
  in
  Chart.Svg.render ~config (List.map to_chart_series f.Bidir.Figures.series)

let figure_csv (f : Bidir.Figures.figure) =
  let rows =
    List.concat_map
      (fun (s : Bidir.Figures.series) ->
        List.map
          (fun (x, y) ->
            [ s.Bidir.Figures.label;
              Printf.sprintf "%.6f" x;
              Printf.sprintf "%.6f" y;
            ])
          s.Bidir.Figures.points)
      f.Bidir.Figures.series
  in
  Chart.Table.render_csv ~headers:[ "series"; "x"; "y" ] ~rows

let table_csv (t : Bidir.Figures.table) =
  Chart.Table.render_csv ~headers:t.Bidir.Figures.headers
    ~rows:t.Bidir.Figures.rows

let render_all () =
  let figures = List.map render_figure (Bidir.Figures.all_figures ()) in
  let tables = List.map render_table (Bidir.Figures.all_tables ()) in
  String.concat "\n" (figures @ tables)

let protocol_map ?(positions = 33) ?(powers = 15)
    ?(power_range_db = (-10., 20.)) ?(exponent = 3.) () =
  let lo_db, hi_db = power_range_db in
  let pl = Channel.Pathloss.make ~exponent () in
  let glyph p =
    match p with
    | Bidir.Protocol.Dt -> 'D'
    | Bidir.Protocol.Naive -> 'N'
    | Bidir.Protocol.Mabc -> 'M'
    | Bidir.Protocol.Tdbc -> 'T'
    | Bidir.Protocol.Hbc -> 'H'
  in
  let best ~x ~y =
    let gains = Channel.Pathloss.gains_on_line pl ~relay_position:x in
    let s = Bidir.Gaussian.scenario ~power_db:y ~gains in
    (Bidir.Optimize.best_protocol Bidir.Bound.Inner s).Bidir.Optimize.protocol
  in
  let map =
    Chart.Heatmap.tabulate ~f:best ~glyph
      ~x_axis:(Numerics.Float_utils.linspace 0.05 0.95 positions)
      ~y_axis:(Numerics.Float_utils.linspace lo_db hi_db powers)
      ~title:
        (Printf.sprintf
           "Best protocol by relay position and power (alpha=%g, Gab=0 dB)"
           exponent)
      ~xlabel:"relay position d" ~ylabel:"P (dB)"
      ~legend:
        (List.map
           (fun p -> (glyph p, Bidir.Protocol.name p))
           Bidir.Protocol.all)
  in
  Chart.Heatmap.render map
