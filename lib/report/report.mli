(** Rendering of {!Bidir.Figures} data for terminals and files. *)

module Regression : module type of Regression
(** Text/JSON rendering of {!Telemetry.Snapshot} regression diffs. *)

val render_figure : ?width:int -> ?height:int -> Bidir.Figures.figure -> string
(** Terminal line chart. Figures whose id starts with ["fig4"] (rate
    regions) are drawn with zero-anchored axes. *)

val render_table : Bidir.Figures.table -> string
(** Aligned text table with its title. *)

val figure_svg : Bidir.Figures.figure -> string
(** Standalone SVG document of the figure (vector twin of
    {!render_figure}). *)

val figure_csv : Bidir.Figures.figure -> string
(** Long-format CSV: [series,x,y]. *)

val table_csv : Bidir.Figures.table -> string

val render_all : unit -> string
(** Every figure and table of the paper reproduction, concatenated — the
    full evaluation in one string. *)

val protocol_map :
  ?positions:int -> ?powers:int -> ?power_range_db:float * float ->
  ?exponent:float -> unit -> string
(** A "which protocol wins where" heatmap over the relay-position x
    transmit-power plane (path-loss line geometry, inner bounds):
    D = DT, N = NAIVE, M = MABC, T = TDBC, H = HBC (the letter shown is
    the best protocol strictly dominating the others; ties resolve to
    the simplest protocol in {!Bidir.Protocol.all} order). *)
