(** K-pair, R-relay network scenarios.

    The paper's sequels (arXiv:0810.1268, arXiv:1002.0123) extend the
    single-pair, single-relay model to multiple relays and multi-pair
    bi-directional relay networks. A scenario here is the data those
    generalisations need and nothing more: [K] terminal pairs, each with
    its own per-node transmit power, and for every pair the channel
    gains of the three links through each of [R] shared candidate
    relays. Every (pair, relay) combination is a complete single-pair
    instance of the seed theory — {!Bidir.Relay_selection.candidate} —
    so Theorems 2–6 apply per combination unchanged; what is new at the
    network layer is deciding who uses which relay for which fraction
    of the airtime (see {!Assign}). *)

type pair = {
  pair_id : string;
  power : float;  (** per-node, per-phase transmit power (linear) *)
  candidates : Bidir.Relay_selection.candidate array;
      (** one entry per relay, in the scenario's relay order: the gains
          of the a-b / a-r / b-r links when this pair relays through
          that candidate *)
}

type t = {
  relay_ids : string array;  (** shared relay identities, fixed order *)
  pairs : pair array;
}

val make : relay_ids:string array -> pairs:pair list -> t
(** Validates: at least one relay and one pair, positive powers, and
    every pair carrying exactly one candidate per relay with matching
    [relay_id]s (in order). Raises [Invalid_argument] otherwise. *)

val random :
  ?exponent:float -> ?power_db_lo:float -> ?power_db_hi:float ->
  pairs:int -> relays:int -> seed:int -> unit -> t
(** A deterministic random topology: [pairs] terminal pairs and
    [relays] relay nodes placed uniformly in the unit square (positions
    and powers all drawn from one splitmix64 stream seeded with
    [seed]), link gains following the power law [d^-exponent]
    (default 3, distances clamped below at 0.05 so gains stay finite),
    and per-pair powers uniform in [[power_db_lo, power_db_hi]]
    (default [[5, 15]] dB). Equal arguments give byte-identical
    scenarios. *)

val num_pairs : t -> int
val num_relays : t -> int

val restrict_relays : t -> keep:int -> t
(** The same scenario with only the first [keep] relays available
    (1 <= keep <= num_relays) — the monotonicity property tests compare
    assignments across nested relay sets. *)

val scale_power : t -> factor:float -> t
(** Every pair's power multiplied by [factor] (> 0). *)
