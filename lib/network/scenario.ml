type pair = {
  pair_id : string;
  power : float;
  candidates : Bidir.Relay_selection.candidate array;
}

type t = {
  relay_ids : string array;
  pairs : pair array;
}

let make ~relay_ids ~pairs =
  if Array.length relay_ids = 0 then
    invalid_arg "Network.Scenario.make: no relays";
  if pairs = [] then invalid_arg "Network.Scenario.make: no pairs";
  List.iter
    (fun p ->
      if not (p.power > 0.) then
        invalid_arg
          (Printf.sprintf "Network.Scenario.make: pair %s: power must be > 0"
             p.pair_id);
      if Array.length p.candidates <> Array.length relay_ids then
        invalid_arg
          (Printf.sprintf
             "Network.Scenario.make: pair %s: %d candidates for %d relays"
             p.pair_id
             (Array.length p.candidates)
             (Array.length relay_ids));
      Array.iteri
        (fun r (c : Bidir.Relay_selection.candidate) ->
          if c.Bidir.Relay_selection.relay_id <> relay_ids.(r) then
            invalid_arg
              (Printf.sprintf
                 "Network.Scenario.make: pair %s: candidate %d is %S, \
                  expected %S"
                 p.pair_id r c.Bidir.Relay_selection.relay_id relay_ids.(r)))
        p.candidates)
    pairs;
  { relay_ids; pairs = Array.of_list pairs }

(* distances clamped away from 0 so the power-law gain stays finite
   when a node lands on top of another *)
let min_distance = 0.05

let random ?(exponent = 3.) ?(power_db_lo = 5.) ?(power_db_hi = 15.) ~pairs
    ~relays ~seed () =
  if pairs <= 0 then invalid_arg "Network.Scenario.random: pairs must be > 0";
  if relays <= 0 then invalid_arg "Network.Scenario.random: relays must be > 0";
  if not (exponent > 0.) then
    invalid_arg "Network.Scenario.random: exponent must be > 0";
  if power_db_hi < power_db_lo then
    invalid_arg "Network.Scenario.random: empty power range";
  let rng = Prob.Rng.create ~seed in
  let point () =
    let x = Prob.Rng.float rng in
    let y = Prob.Rng.float rng in
    (x, y)
  in
  let gain d = Float.max d min_distance ** -.exponent in
  let dist (x1, y1) (x2, y2) = Float.hypot (x1 -. x2) (y1 -. y2) in
  let relay_ids = Array.init relays (Printf.sprintf "r%02d") in
  let relay_pos = Array.init relays (fun _ -> point ()) in
  let one_pair k =
    let a = point () in
    let b = point () in
    let power_db =
      if power_db_hi = power_db_lo then power_db_lo
      else Prob.Rng.float_range rng ~lo:power_db_lo ~hi:power_db_hi
    in
    let g_ab = gain (dist a b) in
    let candidates =
      Array.mapi
        (fun r pos ->
          { Bidir.Relay_selection.relay_id = relay_ids.(r);
            gains =
              Channel.Gains.make ~g_ab ~g_ar:(gain (dist a pos))
                ~g_br:(gain (dist b pos));
          })
        relay_pos
    in
    { pair_id = Printf.sprintf "p%04d" k;
      power = Numerics.Float_utils.db_to_lin power_db;
      candidates;
    }
  in
  { relay_ids; pairs = Array.init pairs one_pair }

let num_pairs t = Array.length t.pairs
let num_relays t = Array.length t.relay_ids

let restrict_relays t ~keep =
  if keep < 1 || keep > num_relays t then
    invalid_arg "Network.Scenario.restrict_relays: keep out of range";
  { relay_ids = Array.sub t.relay_ids 0 keep;
    pairs =
      Array.map
        (fun p -> { p with candidates = Array.sub p.candidates 0 keep })
        t.pairs;
  }

let scale_power t ~factor =
  if not (factor > 0.) then
    invalid_arg "Network.Scenario.scale_power: factor must be > 0";
  { t with
    pairs = Array.map (fun p -> { p with power = p.power *. factor }) t.pairs;
  }
