(** Relay assignment and airtime scheduling for a {!Scenario}.

    Pairs sharing a relay (and pairs sharing the spectrum through
    different relays) are kept orthogonal in time: pair [k] operating
    through relay [r] receives an airtime share [x_kr] of that relay,
    during which it runs its best single-pair protocol at the
    standalone optimal sum rate [s_kr] (so its carried rate is
    [x_kr * s_kr] — rates scale linearly with airtime exactly as the
    bound systems scale with phase durations). The scheduling
    constraints are

    {[ sum_r x_kr <= 1   (each pair has unit airtime)
       sum_k x_kr <= 1   (each relay has unit airtime)
       x_kr >= 0 ]}

    which couple every pair into one feasibility polytope — a
    transportation / fractional-matching LP. Two solvers:

    - {!Greedy}: each pair independently picks its best (relay,
      protocol) — the network analogue of {!Bidir.Relay_selection.best}
      — and each relay's airtime is split equally among the pairs that
      chose it. Always feasible, fair, no LP.
    - {!Lp}: maximise the aggregate rate [sum_kr s_kr x_kr] over the
      polytope above with the warm-start {!Linprog.Solver}. Because the
      greedy allocation is a feasible point of the same LP, the LP
      optimum is never below the greedy aggregate; the gap between the
      two is the price of uncoordinated selection.

    The standalone rates [s_kr] — one per (pair, relay, protocol)
    triple, maximised over protocols — come from the single-pair
    machinery ({!Bidir.Optimize} via {!Bidir.Relay_selection.best}),
    whose LPs ride the per-shape warm solvers with cross-system basis
    carry: consecutive (pair, relay) systems share binding structure,
    so most solves skip phase 1. At [K = R = 1] both strategies
    degenerate to the seed theory byte-for-byte (share 1.0, rate
    [s_11]); the property suite pins this.

    {b Telemetry}: every {!solve_table} runs under a [network.assign]
    span and lands its duration in [network.assign_seconds]; LP solves
    add their simplex pivots to the [network.assignment_pivots] budget
    counter (gated one-sided by [bidir check]); each pair's achieved
    rate is observed in the [network.pair_sum_rate] histogram. *)

type strategy = Greedy | Lp

val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option
(** Case-insensitive ["greedy"] / ["lp"]. *)

type table = {
  scenario : Scenario.t;
  choices : Bidir.Relay_selection.choice array array;
      (** [choices.(k).(r)]: pair [k]'s best protocol, standalone sum
          rate and phase schedule through relay [r] *)
}

val rate_table : ?protocols:Bidir.Protocol.t list -> Scenario.t -> table
(** Evaluate the standalone optimum of every (pair, relay) combination,
    maximised over [protocols] (default {!Bidir.Protocol.coded}); pairs
    are fanned across {!Engine.Pool} domains (byte-identical results
    for any domain count). Raises [Invalid_argument] on an empty
    protocol list. *)

type link = {
  pair_id : string;
  relay_id : string;
  protocol : Bidir.Protocol.t;
  standalone : float;  (** full-airtime optimal sum rate of the triple *)
  share : float;       (** airtime fraction granted, in (0, 1] *)
  rate : float;        (** [share *. standalone] *)
}

type solution = {
  strategy : strategy;
  links : link list;
      (** allocations with positive share, pair-major in scenario order *)
  per_pair : (string * float) list;
      (** every pair's achieved rate (0 for pairs the LP starves),
          in scenario order *)
  sum_rate : float;    (** aggregate network rate, [sum per_pair] *)
  assignment_pivots : int;
      (** simplex pivots spent on the assignment LP (0 for {!Greedy}) *)
}

val solve_table : strategy -> table -> solution
(** Solve the airtime allocation on an already-evaluated table (cheap:
    the standalone rates dominate the cost, so compare strategies by
    reusing one table). Deterministic: equal tables and strategy give
    byte-identical solutions. *)

val solve :
  ?protocols:Bidir.Protocol.t list -> strategy -> Scenario.t -> solution
(** [rate_table] then [solve_table]. *)

val to_json : solution -> Telemetry.Json.t
(** Deterministic rendering (scenario order, round-trippable floats):
    equal solutions produce byte-identical JSON — the CI smoke compares
    domain counts with [cmp]. *)
