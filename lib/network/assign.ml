type strategy = Greedy | Lp

let strategy_name = function Greedy -> "greedy" | Lp -> "lp"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "greedy" -> Some Greedy
  | "lp" -> Some Lp
  | _ -> None

type table = {
  scenario : Scenario.t;
  choices : Bidir.Relay_selection.choice array array;
}

let rate_table ?(protocols = Bidir.Protocol.coded) (sc : Scenario.t) =
  if protocols = [] then invalid_arg "Network.Assign.rate_table: no protocols";
  Telemetry.Span.with_span ~cat:"network"
    ~args:
      [ ("pairs", Telemetry.Json.Int (Scenario.num_pairs sc));
        ("relays", Telemetry.Json.Int (Scenario.num_relays sc));
      ]
    "network.rate_table"
  @@ fun () ->
  let eval (p : Scenario.pair) =
    Array.map
      (fun cand ->
        Bidir.Relay_selection.best ~protocols ~power:p.Scenario.power [ cand ])
      p.Scenario.candidates
  in
  let choices =
    Array.of_list (Engine.Pool.map eval (Array.to_list sc.Scenario.pairs))
  in
  { scenario = sc; choices }

type link = {
  pair_id : string;
  relay_id : string;
  protocol : Bidir.Protocol.t;
  standalone : float;
  share : float;
  rate : float;
}

type solution = {
  strategy : strategy;
  links : link list;
  per_pair : (string * float) list;
  sum_rate : float;
  assignment_pivots : int;
}

let standalone_of (c : Bidir.Relay_selection.choice) =
  c.Bidir.Relay_selection.sum_rate

(* same strict-improvement rule as [Relay_selection.best]: ties keep
   the earlier relay *)
let greedy_pick row =
  let best = ref 0 in
  Array.iteri
    (fun i c ->
      if standalone_of c > standalone_of row.(!best) +. 1e-12 then best := i)
    row;
  !best

let greedy (t : table) =
  let sc = t.scenario in
  let chosen = Array.map greedy_pick t.choices in
  let load = Array.make (Scenario.num_relays sc) 0 in
  Array.iter (fun r -> load.(r) <- load.(r) + 1) chosen;
  let links =
    Array.to_list
      (Array.mapi
         (fun k r ->
           let choice = t.choices.(k).(r) in
           let share = 1. /. float_of_int load.(r) in
           let standalone = standalone_of choice in
           { pair_id = sc.Scenario.pairs.(k).Scenario.pair_id;
             relay_id = sc.Scenario.relay_ids.(r);
             protocol = choice.Bidir.Relay_selection.protocol;
             standalone;
             share;
             rate = share *. standalone;
           })
         chosen)
  in
  let per_pair = List.map (fun l -> (l.pair_id, l.rate)) links in
  let sum_rate = List.fold_left (fun acc (_, r) -> acc +. r) 0. per_pair in
  { strategy = Greedy; links; per_pair; sum_rate; assignment_pivots = 0 }

let lp (t : table) =
  let sc = t.scenario in
  let np = Scenario.num_pairs sc in
  let nr = Scenario.num_relays sc in
  let nvars = np * nr in
  let idx k r = (k * nr) + r in
  let row f =
    let coeffs = Array.make nvars 0. in
    f coeffs;
    Linprog.Simplex.constr coeffs Linprog.Simplex.Le 1.
  in
  let pair_rows =
    List.init np (fun k ->
        row (fun a ->
            for r = 0 to nr - 1 do
              a.(idx k r) <- 1.
            done))
  in
  let relay_rows =
    List.init nr (fun r ->
        row (fun a ->
            for k = 0 to np - 1 do
              a.(idx k r) <- 1.
            done))
  in
  let c = Array.make nvars 0. in
  for k = 0 to np - 1 do
    for r = 0 to nr - 1 do
      c.(idx k r) <- standalone_of t.choices.(k).(r)
    done
  done;
  let pivots = Telemetry.Metrics.counter "linprog.pivots" in
  let pivots_before = Telemetry.Metrics.value pivots in
  let solver = Linprog.Solver.create ~nvars ~constrs:(pair_rows @ relay_rows) in
  let x =
    match Linprog.Solver.reoptimize solver ~c with
    | Linprog.Simplex.Optimal s -> s.Linprog.Simplex.x
    | Linprog.Simplex.Unbounded | Linprog.Simplex.Infeasible ->
      (* cannot happen: 0 is feasible and every variable is <= 1 *)
      assert false
  in
  let assignment_pivots = Telemetry.Metrics.value pivots - pivots_before in
  Telemetry.Metrics.add
    (Telemetry.Metrics.counter "network.assignment_pivots")
    assignment_pivots;
  let links = ref [] in
  let per_pair = ref [] in
  for k = np - 1 downto 0 do
    let rate = ref 0. in
    for r = nr - 1 downto 0 do
      let share = x.(idx k r) in
      if share > 1e-9 then begin
        let choice = t.choices.(k).(r) in
        let standalone = standalone_of choice in
        links :=
          { pair_id = sc.Scenario.pairs.(k).Scenario.pair_id;
            relay_id = sc.Scenario.relay_ids.(r);
            protocol = choice.Bidir.Relay_selection.protocol;
            standalone;
            share;
            rate = share *. standalone;
          }
          :: !links
      end
    done;
    (* accumulate left-to-right so the float sum has a fixed order *)
    for r = 0 to nr - 1 do
      let share = x.(idx k r) in
      if share > 1e-9 then rate := !rate +. (share *. c.(idx k r))
    done;
    per_pair := (sc.Scenario.pairs.(k).Scenario.pair_id, !rate) :: !per_pair
  done;
  let sum_rate = List.fold_left (fun acc (_, r) -> acc +. r) 0. !per_pair in
  { strategy = Lp;
    links = !links;
    per_pair = !per_pair;
    sum_rate;
    assignment_pivots;
  }

let solve_table strategy (t : table) =
  let sc = t.scenario in
  Telemetry.Span.with_span ~cat:"network"
    ~args:
      [ ("strategy", Telemetry.Json.String (strategy_name strategy));
        ("pairs", Telemetry.Json.Int (Scenario.num_pairs sc));
        ("relays", Telemetry.Json.Int (Scenario.num_relays sc));
      ]
    "network.assign"
  @@ fun () ->
  let solution =
    Telemetry.Metrics.time
      (Telemetry.Metrics.histogram "network.assign_seconds")
      (fun () -> match strategy with Greedy -> greedy t | Lp -> lp t)
  in
  let pair_rates = Telemetry.Metrics.histogram "network.pair_sum_rate" in
  List.iter
    (fun (_, rate) -> Telemetry.Metrics.observe pair_rates rate)
    solution.per_pair;
  solution

let solve ?protocols strategy sc = solve_table strategy (rate_table ?protocols sc)

let to_json s =
  let open Telemetry.Json in
  Obj
    [ ("strategy", String (strategy_name s.strategy));
      ("sum_rate", Float s.sum_rate);
      ("assignment_pivots", Int s.assignment_pivots);
      ("per_pair", Obj (List.map (fun (id, r) -> (id, Float r)) s.per_pair));
      ("links",
       List
         (List.map
            (fun l ->
              Obj
                [ ("pair", String l.pair_id);
                  ("relay", String l.relay_id);
                  ("protocol", String (Bidir.Protocol.name l.protocol));
                  ("standalone", Float l.standalone);
                  ("share", Float l.share);
                  ("rate", Float l.rate);
                ])
            s.links));
    ]
