type observation = {
  values : (string * float) list;
  counts : (string * int) list;
}

type workload = {
  name : string;
  replicate : rep:int -> rng:Prob.Rng.t -> observation;
}

type progress = {
  completed : int;
  target : int;
  elapsed_seconds : float;
  rate : float;
  max_half_width : float option;
  ci_target : float option;
  eta_seconds : float option;
}

type config = {
  seed : int;
  replications : int;
  domains : int;
  batch : int;
  checkpoint : string option;
  resume : bool;
  ci_target : float option;
  on_progress : (progress -> unit) option;
}

let default_config ?(seed = 42) ?(domains = 1) ?(batch = 32) ?checkpoint
    ?(resume = false) ?ci_target ?on_progress ~replications () =
  { seed; replications; domains; batch; checkpoint; resume; ci_target;
    on_progress }

type summary = {
  count : int;
  mean : float;
  ci95 : float * float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type result = {
  workload : string;
  seed : int;
  target : int;
  completed : int;
  stopped_early : bool;
  values : (string * summary) list;
  counters : (string * int) list;
}

(* ------------------------------------------------------------------ *)
(* Accumulators                                                        *)
(* ------------------------------------------------------------------ *)

(* one per value metric; merged strictly in replication order so the
   float additions happen in the same sequence whatever the domain
   count *)
type value_acc = {
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
  hist : Telemetry.Histogram.t;
}

type state = {
  value_accs : (string, value_acc) Hashtbl.t;
  count_accs : (string, int ref) Hashtbl.t;
  mutable completed : int;
}

let fresh_state () =
  { value_accs = Hashtbl.create 8;
    count_accs = Hashtbl.create 8;
    completed = 0;
  }

let value_acc_for st name =
  match Hashtbl.find_opt st.value_accs name with
  | Some a -> a
  | None ->
    let a =
      { n = 0; sum = 0.; sumsq = 0.; lo = infinity; hi = neg_infinity;
        (* finer buckets than the wall-time default: campaign value
           metrics (rates, delays, queue depths) often spread only a
           few percent, and the reported p50/p90/p99 should resolve
           that. Sparse serialisation keeps checkpoints small. *)
        hist = Telemetry.Histogram.create ~lo:1e-6 ~growth:1.02
                 ~buckets:1_400 ();
      }
    in
    Hashtbl.add st.value_accs name a;
    a

let observe_value st name v =
  let a = value_acc_for st name in
  a.n <- a.n + 1;
  a.sum <- a.sum +. v;
  a.sumsq <- a.sumsq +. (v *. v);
  if v < a.lo then a.lo <- v;
  if v > a.hi then a.hi <- v;
  Telemetry.Histogram.observe a.hist v

let observe_count st name v =
  match Hashtbl.find_opt st.count_accs name with
  | Some r -> r := !r + v
  | None -> Hashtbl.add st.count_accs name (ref v)

let accumulate st (obs : observation) =
  List.iter (fun (name, v) -> observe_value st name v) obs.values;
  List.iter (fun (name, v) -> observe_count st name v) obs.counts;
  st.completed <- st.completed + 1

let half_width a =
  if a.n < 2 then infinity
  else
    let fn = float_of_int a.n in
    let var = Float.max 0. ((a.sumsq -. (a.sum *. a.sum /. fn)) /. (fn -. 1.)) in
    1.96 *. sqrt (var /. fn)

let summary_of_acc a =
  let mean = if a.n = 0 then 0. else a.sum /. float_of_int a.n in
  let half = if a.n < 2 then 0. else half_width a in
  let p50, p90, p99 = Telemetry.Histogram.percentiles a.hist in
  { count = a.n;
    mean;
    ci95 = (mean -. half, mean +. half);
    min = (if a.n = 0 then 0. else a.lo);
    max = (if a.n = 0 then 0. else a.hi);
    p50;
    p90;
    p99;
  }

let sorted_bindings tbl extract =
  Hashtbl.fold (fun k v acc -> (k, extract v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                         *)
(* ------------------------------------------------------------------ *)

let schema = "bidir-campaign-checkpoint/1"

let checkpoint_json w (cfg : config) st =
  let open Telemetry.Json in
  let values =
    sorted_bindings st.value_accs (fun a ->
        Obj
          [ ("count", Int a.n);
            ("sum", Float a.sum);
            ("sumsq", Float a.sumsq);
            ("min", Float (if a.n = 0 then 0. else a.lo));
            ("max", Float (if a.n = 0 then 0. else a.hi));
            ("hist", Telemetry.Histogram.to_json_state a.hist);
          ])
  in
  let counts = sorted_bindings st.count_accs (fun r -> Int !r) in
  Obj
    [ ("schema", String schema);
      ("workload", String w.name);
      ("seed", Int cfg.seed);
      ("completed", Int st.completed);
      ("values", Obj values);
      ("counts", Obj counts);
    ]

let write_checkpoint path w cfg st =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Telemetry.Json.to_string_pretty (checkpoint_json w cfg st));
      output_char oc '\n');
  Sys.rename tmp path

let fail fmt = Printf.ksprintf invalid_arg fmt

let get_field path name json =
  match Telemetry.Json.member name json with
  | Some v -> v
  | None -> fail "Campaign: checkpoint %s: missing field %S" path name

let as_int path name = function
  | Telemetry.Json.Int i -> i
  | _ -> fail "Campaign: checkpoint %s: field %S is not an integer" path name

let as_float path name = function
  | Telemetry.Json.Float f -> f
  | Telemetry.Json.Int i -> float_of_int i
  | _ -> fail "Campaign: checkpoint %s: field %S is not a number" path name

let as_string path name = function
  | Telemetry.Json.String s -> s
  | _ -> fail "Campaign: checkpoint %s: field %S is not a string" path name

let as_obj path name = function
  | Telemetry.Json.Obj fields -> fields
  | _ -> fail "Campaign: checkpoint %s: field %S is not an object" path name

let load_checkpoint path w (cfg : config) =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail "Campaign: cannot read checkpoint: %s" msg
  in
  let json =
    match Telemetry.Json.parse text with
    | Ok j -> j
    | Error msg -> fail "Campaign: checkpoint %s: %s" path msg
  in
  let field name = get_field path name json in
  let got_schema = as_string path "schema" (field "schema") in
  if got_schema <> schema then
    fail "Campaign: checkpoint %s: schema %S, expected %S" path got_schema
      schema;
  let got_workload = as_string path "workload" (field "workload") in
  if got_workload <> w.name then
    fail "Campaign: checkpoint %s: workload %S, expected %S" path got_workload
      w.name;
  let got_seed = as_int path "seed" (field "seed") in
  if got_seed <> cfg.seed then
    fail "Campaign: checkpoint %s: seed %d, expected %d" path got_seed cfg.seed;
  let st = fresh_state () in
  st.completed <- as_int path "completed" (field "completed");
  if st.completed < 0 then
    fail "Campaign: checkpoint %s: negative completed count" path;
  List.iter
    (fun (name, v) ->
      let sub f =
        match Telemetry.Json.member f v with
        | Some field -> field
        | None ->
          fail "Campaign: checkpoint %s: missing field %S" path
            (name ^ "." ^ f)
      in
      let hist =
        match Telemetry.Histogram.of_json_state (sub "hist") with
        | Ok h -> h
        | Error msg ->
          fail "Campaign: checkpoint %s: metric %S: %s" path name msg
      in
      Hashtbl.add st.value_accs name
        { n = as_int path "count" (sub "count");
          sum = as_float path "sum" (sub "sum");
          sumsq = as_float path "sumsq" (sub "sumsq");
          lo = as_float path "min" (sub "min");
          hi = as_float path "max" (sub "max");
          hist;
        })
    (as_obj path "values" (field "values"));
  List.iter
    (fun (name, v) -> Hashtbl.add st.count_accs name (ref (as_int path name v)))
    (as_obj path "counts" (field "counts"));
  st

(* ------------------------------------------------------------------ *)
(* The run loop                                                        *)
(* ------------------------------------------------------------------ *)

let validate (cfg : config) =
  if cfg.replications <= 0 then
    invalid_arg "Campaign.run: replications must be positive";
  if cfg.domains < 1 then invalid_arg "Campaign.run: domains must be >= 1";
  if cfg.batch < 1 then invalid_arg "Campaign.run: batch must be >= 1";
  if cfg.resume && cfg.checkpoint = None then
    invalid_arg "Campaign.run: resume requires a checkpoint path";
  (match cfg.ci_target with
  | Some t when t <= 0. ->
    invalid_arg "Campaign.run: ci_target must be positive"
  | _ -> ())

let min_replications_for_stopping = 8

let ci_target_met st = function
  | None -> false
  | Some target ->
    st.completed >= min_replications_for_stopping
    && Hashtbl.length st.value_accs > 0
    && Hashtbl.fold
         (fun _ a acc -> acc && half_width a <= target)
         st.value_accs true

let run (cfg : config) (w : workload) =
  validate cfg;
  let replications_counter = Telemetry.Metrics.counter "campaign.replications" in
  let shard_seconds = Telemetry.Metrics.histogram "campaign.shard_seconds" in
  (* domain-seconds the pool sat idle during this campaign's batch maps
     (fan-out overhead, queue latency, uneven shards) — the number that
     explains a sub-linear --domains speedup. Budget-gated one-sided by
     `bidir check`; empty on sequential (domains = 1) runs. *)
  let pool_idle = Telemetry.Metrics.histogram "campaign.pool_idle_seconds" in
  Telemetry.Span.with_span ~cat:"campaign"
    ~args:[ ("workload", Telemetry.Json.String w.name) ]
    "campaign.run"
  @@ fun () ->
  Engine.Pool.with_idle_sink pool_idle
  @@ fun () ->
  let st =
    match (cfg.resume, cfg.checkpoint) with
    | true, Some path -> load_checkpoint path w cfg
    | _ -> fresh_state ()
  in
  (* replication [i] is always the [i]-th split of the parent: on resume
     the first [completed] children are re-derived and discarded so the
     remaining replications see exactly the substreams they would have
     seen in an uninterrupted run *)
  let parent = Prob.Rng.create ~seed:cfg.seed in
  for _ = 1 to st.completed do
    ignore (Prob.Rng.split parent : Prob.Rng.t)
  done;
  let run_one (rep, rng) =
    Telemetry.Span.with_span ~cat:"campaign"
      ~args:[ ("rep", Telemetry.Json.Int rep) ]
      "campaign.shard"
      (fun () ->
        Telemetry.Metrics.time shard_seconds (fun () ->
            w.replicate ~rep ~rng))
  in
  (* spawn the workers before the first batch so the fan-out spawn cost
     is not attributed to the campaign's first shards *)
  if cfg.domains > 1 then Engine.Pool.prewarm ~domains:cfg.domains ();
  let t_run0 = Unix.gettimeofday () in
  let initial_completed = st.completed in
  let progress_now () =
    let elapsed = Unix.gettimeofday () -. t_run0 in
    let done_here = st.completed - initial_completed in
    let rate =
      if elapsed > 0. && done_here > 0 then float_of_int done_here /. elapsed
      else 0.
    in
    let max_hw =
      Hashtbl.fold
        (fun _ a acc ->
          if a.n < 2 then acc
          else
            let hw = half_width a in
            match acc with
            | None -> Some hw
            | Some m -> Some (Float.max m hw))
        st.value_accs None
    in
    let remaining = max 0 (cfg.replications - st.completed) in
    let eta =
      if rate > 0. then Some (float_of_int remaining /. rate) else None
    in
    { completed = st.completed;
      target = cfg.replications;
      elapsed_seconds = elapsed;
      rate;
      max_half_width = max_hw;
      ci_target = cfg.ci_target;
      eta_seconds = eta;
    }
  in
  let emit_progress () =
    if Option.is_some cfg.on_progress || Telemetry.Stream.enabled () then begin
      let p = progress_now () in
      (match cfg.on_progress with Some f -> f p | None -> ());
      Telemetry.Stream.note_progress ~name:("campaign:" ^ w.name)
        ~completed:p.completed ~total:p.target ~rate:p.rate
        ?ci_half_width:p.max_half_width ?ci_target:p.ci_target
        ?eta_seconds:p.eta_seconds ()
    end;
    (* heartbeat (and SLO watchdog) at every batch boundary *)
    Telemetry.Stream.pulse_live ()
  in
  let stopped_early = ref false in
  (* With no checkpoint, no stopping rule, no progress consumer and no
     live stream, batch boundaries are unobservable — so issue ONE pool
     fan-out over all remaining replications instead of one per batch.
     The RNG split order and the (sequential, replication-order)
     accumulation are identical either way, so the result stays
     byte-identical; only the fan-out count changes. *)
  let fused =
    cfg.checkpoint = None && cfg.ci_target = None
    && Option.is_none cfg.on_progress
    && not (Telemetry.Stream.enabled ())
  in
  if fused then begin
    let remaining = cfg.replications - st.completed in
    if remaining > 0 then begin
      let tasks =
        List.init remaining (fun i -> (st.completed + i, Prob.Rng.split parent))
      in
      let observations = Engine.Pool.map ~domains:cfg.domains run_one tasks in
      List.iter (accumulate st) observations;
      Telemetry.Metrics.add replications_counter remaining
    end
  end
  else
    while st.completed < cfg.replications && not !stopped_early do
      let n = min cfg.batch (cfg.replications - st.completed) in
      let tasks = List.init n (fun i -> (st.completed + i, Prob.Rng.split parent)) in
      let observations = Engine.Pool.map ~domains:cfg.domains run_one tasks in
      List.iter (accumulate st) observations;
      Telemetry.Metrics.add replications_counter n;
      (match cfg.checkpoint with
      | Some path -> write_checkpoint path w cfg st
      | None -> ());
      if ci_target_met st cfg.ci_target then stopped_early := true;
      emit_progress ()
    done;
  (* fold the per-replication counters into the global registry once,
     from the final totals (a resumed run must not double-count the
     replications its checkpoint already covered) *)
  List.iter
    (fun (name, total) ->
      Telemetry.Metrics.add
        (Telemetry.Metrics.counter
           (Printf.sprintf "campaign.%s.%s" w.name name))
        total)
    (sorted_bindings st.count_accs (fun r -> !r));
  { workload = w.name;
    seed = cfg.seed;
    target = cfg.replications;
    completed = st.completed;
    stopped_early = !stopped_early;
    values = sorted_bindings st.value_accs summary_of_acc;
    counters = sorted_bindings st.count_accs (fun r -> !r);
  }

let result_to_json r =
  let open Telemetry.Json in
  let summary s =
    let lo, hi = s.ci95 in
    Obj
      [ ("count", Int s.count);
        ("mean", Float s.mean);
        ("ci95", List [ Float lo; Float hi ]);
        ("min", Float s.min);
        ("max", Float s.max);
        ("p50", Float s.p50);
        ("p90", Float s.p90);
        ("p99", Float s.p99);
      ]
  in
  Obj
    [ ("workload", String r.workload);
      ("seed", Int r.seed);
      ("target", Int r.target);
      ("completed", Int r.completed);
      ("stopped_early", Bool r.stopped_early);
      ("values", Obj (List.map (fun (k, s) -> (k, summary s)) r.values));
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) r.counters));
    ]
