(* every workload-level seed is carved out of the replication's own
   substream, masked to a non-negative int so it is valid for the
   [~seed:int] constructors downstream *)
let draw_seed rng =
  Int64.to_int (Int64.logand (Prob.Rng.next_int64 rng) 0x3FFFFFFFFFFFFFFFL)

let ergodic ?(blocks_per_rep = 200) ?(power_db = 10.)
    ?(mean_gains = Channel.Gains.paper_fig4) ?(protocol = Bidir.Protocol.Tdbc)
    () =
  let power = Numerics.Float_utils.db_to_lin power_db in
  { Runner.name = "ergodic";
    replicate =
      (fun ~rep:_ ~rng ->
        let fading =
          Channel.Fading.create ~rng_seed:(draw_seed rng) ~mean:mean_gains ()
        in
        let est =
          Bidir.Ergodic.ergodic_sum_rate ~blocks:blocks_per_rep fading ~power
            protocol
        in
        { Runner.values = [ ("sum_rate", est.Bidir.Ergodic.mean) ];
          counts = [ ("blocks", est.Bidir.Ergodic.blocks) ];
        });
  }

let runner ?(blocks_per_rep = 20) ?(block_symbols = 500) ?(power_db = 10.)
    ?(mean_gains = Channel.Gains.paper_fig4) ?(protocol = Bidir.Protocol.Tdbc)
    () =
  let power = Numerics.Float_utils.db_to_lin power_db in
  (* schedule fixed at the mean gains: under fading the realised gains
     regularly fall short of the mean, which is what makes this a
     non-trivial outage workload *)
  let opt =
    Bidir.Optimize.sum_rate protocol Bidir.Bound.Inner
      (Bidir.Gaussian.scenario_lin ~power ~gains:mean_gains)
  in
  let mode =
    Netsim.Runner.Fixed
      { deltas = opt.Bidir.Optimize.deltas;
        ra = opt.Bidir.Optimize.ra;
        rb = opt.Bidir.Optimize.rb;
      }
  in
  { Runner.name = "runner";
    replicate =
      (fun ~rep:_ ~rng ->
        let fading_seed = draw_seed rng in
        let payload_seed = draw_seed rng in
        let result =
          Netsim.Runner.run
            { Netsim.Runner.protocol;
              power;
              fading =
                Channel.Fading.create ~rng_seed:fading_seed ~mean:mean_gains ();
              mode;
              block_symbols;
              blocks = blocks_per_rep;
              seed = payload_seed;
            }
        in
        let m = result.Netsim.Runner.metrics in
        { Runner.values =
            [ ("outage_rate", Netsim.Metrics.outage_rate m);
              ("throughput", Netsim.Metrics.throughput m);
            ];
          counts =
            [ ("delivered_bits", Netsim.Metrics.delivered_bits m);
              ("failed_deliveries", Netsim.Metrics.failed_deliveries m);
            ];
        });
  }

let traffic ?(blocks_per_rep = 400) ?(block_symbols = 500) ?(load = 0.85)
    ?(power_db = 10.) ?(gains = Channel.Gains.paper_fig4)
    ?(protocol = Bidir.Protocol.Tdbc) () =
  let power = Numerics.Float_utils.db_to_lin power_db in
  { Runner.name = "traffic";
    replicate =
      (fun ~rep:_ ~rng ->
        let result =
          Netsim.Traffic.run
            { Netsim.Traffic.protocol;
              power;
              gains;
              load;
              block_symbols;
              blocks = blocks_per_rep;
              seed = draw_seed rng;
            }
        in
        { Runner.values =
            [ ("max_queue_bits",
               float_of_int result.Netsim.Traffic.max_queue_bits);
              ("mean_delay_blocks", result.Netsim.Traffic.mean_delay_blocks);
              ("p95_delay_blocks", result.Netsim.Traffic.p95_delay_blocks);
              ("utilisation", result.Netsim.Traffic.utilisation);
            ];
          counts =
            [ ("carried_bits", result.Netsim.Traffic.carried_bits);
              ("offered_bits", result.Netsim.Traffic.offered_bits);
            ];
        });
  }

let network ?(pairs = 24) ?(relays = 3) ?(strategy = Network.Assign.Lp) () =
  if pairs <= 0 then invalid_arg "Workloads.network: pairs must be > 0";
  if relays <= 0 then invalid_arg "Workloads.network: relays must be > 0";
  { Runner.name = "network";
    replicate =
      (fun ~rep:_ ~rng ->
        let scenario =
          Network.Scenario.random ~pairs ~relays ~seed:(draw_seed rng) ()
        in
        let table = Network.Assign.rate_table scenario in
        let solution = Network.Assign.solve_table strategy table in
        (* the greedy allocation reuses the already-evaluated table, so
           the per-replication greedy-vs-LP gap is nearly free *)
        let greedy = Network.Assign.solve_table Network.Assign.Greedy table in
        let gap =
          if solution.Network.Assign.sum_rate > 0. then
            (solution.Network.Assign.sum_rate
            -. greedy.Network.Assign.sum_rate)
            /. solution.Network.Assign.sum_rate
          else 0.
        in
        { Runner.values =
            [ ("greedy_gap", gap);
              ("mean_pair_rate",
               solution.Network.Assign.sum_rate /. float_of_int pairs);
              ("sum_rate", solution.Network.Assign.sum_rate);
            ];
          counts =
            [ ("assignment_pivots",
               solution.Network.Assign.assignment_pivots);
              ("pairs", pairs);
              ("relays", relays);
            ];
        });
  }

let names = [ "ergodic"; "runner"; "traffic"; "network" ]

let by_name name =
  match String.lowercase_ascii name with
  | "ergodic" -> Some (fun () -> ergodic ())
  | "runner" -> Some (fun () -> runner ())
  | "traffic" -> Some (fun () -> traffic ())
  | "network" -> Some (fun () -> network ())
  | _ -> None
