(** Ready-made campaign workloads over the core and netsim layers.

    Each workload derives every seed it needs from the replication's own
    RNG substream, so a campaign over any of them is deterministic in
    the campaign seed alone (and therefore byte-identical across domain
    counts — see {!Campaign}). *)

val ergodic :
  ?blocks_per_rep:int -> ?power_db:float -> ?mean_gains:Channel.Gains.t ->
  ?protocol:Bidir.Protocol.t -> unit -> Runner.workload
(** Per replication: estimate the full-CSI ergodic sum rate over
    [blocks_per_rep] (default 200) Rayleigh-fading blocks with a fresh
    fading process. Values: [sum_rate] (bits/use). Counts: [blocks].
    The campaign mean converges to {!Bidir.Ergodic.ergodic_sum_rate}'s
    analytic long-run value, which the cross-check test exploits.
    Defaults: [power_db = 10], Fig. 4 mean gains, TDBC. *)

val runner :
  ?blocks_per_rep:int -> ?block_symbols:int -> ?power_db:float ->
  ?mean_gains:Channel.Gains.t -> ?protocol:Bidir.Protocol.t -> unit ->
  Runner.workload
(** Per replication: run the block-level simulator for [blocks_per_rep]
    (default 20) blocks of [block_symbols] (default 500) symbols with a
    schedule fixed at the mean gains, under Rayleigh fading — so blocks
    whose realised gains fall short incur outages. Values: [throughput]
    (bits/use), [outage_rate]. Counts: [delivered_bits],
    [failed_deliveries]. *)

val traffic :
  ?blocks_per_rep:int -> ?block_symbols:int -> ?load:float ->
  ?power_db:float -> ?gains:Channel.Gains.t -> ?protocol:Bidir.Protocol.t ->
  unit -> Runner.workload
(** Per replication: drive the queueing layer for [blocks_per_rep]
    (default 400) blocks at offered [load] (default 0.85) of the
    protocol's sum capacity. Values: [mean_delay_blocks],
    [p95_delay_blocks], [utilisation], [max_queue_bits]. Counts:
    [offered_bits], [carried_bits]. *)

val network :
  ?pairs:int -> ?relays:int -> ?strategy:Network.Assign.strategy -> unit ->
  Runner.workload
(** Per replication: draw a random [pairs]-pair, [relays]-relay topology
    (default 24 x 3) from the replication substream, evaluate its
    standalone rate table once, and solve the airtime assignment with
    [strategy] (default LP) {e and} greedily on the same table. Values:
    [sum_rate] (aggregate, bits/use), [mean_pair_rate], [greedy_gap]
    (relative LP-over-greedy improvement). Counts: [assignment_pivots],
    [pairs], [relays]. Sweeping [pairs] into the thousands is the
    intended use — the rate table dominates the cost and fans across
    domains. *)

val by_name : string -> (unit -> Runner.workload) option
(** Default-parameter constructors for the CLI: ["ergodic"], ["runner"],
    ["traffic"], ["network"] (case-insensitive). *)

val names : string list
(** The recognised workload names, in presentation order. *)
