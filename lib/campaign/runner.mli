(** Sharded Monte-Carlo replication campaigns.

    A campaign runs [replications] independent replications of a
    workload and aggregates their observations. Replication [i] always
    receives the [i]-th {!Prob.Rng.split} child of a parent generator
    seeded with [config.seed] — a fixed substream tree, independent of
    how the replications are scheduled — and the per-replication results
    are merged sequentially in replication order. Both choices together
    make the aggregate {e byte-identical} for every domain count: domains
    only decide which core computes a replication, never what is computed
    or in which order floats are added.

    Replications are issued in fixed-size batches ([config.batch],
    independent of the domain count). At each batch boundary the campaign
    optionally writes a JSON checkpoint (value sums, counter totals and
    full histogram state — lossless, since floats render round-trippable)
    and optionally applies a sequential stopping rule: once every value
    metric's 95% confidence half-width is at or below [ci_target], no
    further batches are issued. Because batch boundaries and merge order
    are domain-independent, a resumed or early-stopped campaign is also
    byte-identical across domain counts.

    When batch boundaries are unobservable — no checkpoint, no stopping
    rule, no [on_progress] hook and live streaming off — the runner
    fuses the whole campaign into a single pool fan-out instead of one
    per batch, amortising the per-map fan-out cost across the entire
    run. The RNG split order and the sequential replication-order merge
    are identical on both paths, so fusion never changes the result (a
    property the tests assert byte-for-byte).

    Telemetry: the whole run executes under a [campaign.run] span; each
    replication runs under a [campaign.shard] span and its wall-clock
    seconds land in the [campaign.shard_seconds] histogram. The
    [campaign.replications] counter counts completed replications, and
    every per-replication counter [k] of workload [w] accumulates into
    the global counter [campaign.<w>.<k>]. *)

type observation = {
  values : (string * float) list;
      (** scalar metrics — averaged across replications with 95% CIs *)
  counts : (string * int) list;
      (** counters — summed across replications *)
}

type workload = {
  name : string;
  replicate : rep:int -> rng:Prob.Rng.t -> observation;
      (** Run replication [rep]. Must draw all randomness from [rng]
          (its private substream) and must not mutate shared state:
          replications execute concurrently across domains. *)
}

type progress = {
  completed : int;               (** replications accumulated so far *)
  target : int;                  (** [config.replications] *)
  elapsed_seconds : float;       (** since [run] started (this session;
                                     excludes checkpointed work) *)
  rate : float;                  (** replications per second this
                                     session; 0 until measurable *)
  max_half_width : float option; (** widest 95% CI half-width across
                                     value metrics; [None] until some
                                     metric has two samples *)
  ci_target : float option;      (** [config.ci_target], for display *)
  eta_seconds : float option;    (** remaining / rate *)
}

type config = {
  seed : int;            (** root of the substream tree *)
  replications : int;    (** target replication count, > 0 *)
  domains : int;         (** worker domains, >= 1; affects wall time only *)
  batch : int;           (** replications per scheduling round, >= 1 —
                             checkpoint / stopping-rule granularity,
                             deliberately independent of [domains] *)
  checkpoint : string option;  (** write a resumable JSON checkpoint here
                                   after every batch *)
  resume : bool;         (** load [checkpoint] before running and continue
                             from its completed count *)
  ci_target : float option;
      (** absolute 95% half-width target: stop early once every value
          metric is at least this tight (checked at batch boundaries,
          after a minimum of 8 replications) *)
  on_progress : (progress -> unit) option;
      (** called on the campaign's domain at every batch boundary;
          observation-only (must not mutate campaign state). With a
          hook installed — or the live {!Telemetry.Stream} enabled —
          the runner also emits a [campaign:<workload>] progress event
          and pulses the live writer per batch. *)
}

val default_config :
  ?seed:int -> ?domains:int -> ?batch:int -> ?checkpoint:string ->
  ?resume:bool -> ?ci_target:float -> ?on_progress:(progress -> unit) ->
  replications:int -> unit -> config
(** Defaults: [seed = 42], [domains = 1], [batch = 32], no checkpoint,
    no resume, no stopping rule, no progress hook. *)

type summary = {
  count : int;
  mean : float;
  ci95 : float * float;  (** normal-approximation; degenerate when
                             [count < 2] *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;           (** log-bucket histogram estimates *)
}

type result = {
  workload : string;
  seed : int;
  target : int;          (** requested replications *)
  completed : int;       (** actually run (>= target unless stopped early
                             or resumed past it) *)
  stopped_early : bool;  (** the stopping rule fired before [target] *)
  values : (string * summary) list;  (** name-sorted *)
  counters : (string * int) list;    (** name-sorted *)
}

val run : config -> workload -> result
(** Raises [Invalid_argument] on a malformed configuration ([resume]
    without [checkpoint], non-positive sizes) or a checkpoint that fails
    to load or that was written by a different workload or seed. *)

val result_to_json : result -> Telemetry.Json.t
(** Deterministic rendering (sorted metric names, round-trippable
    floats): equal results produce byte-identical JSON, which is how the
    tests and the CI gate compare domain counts and resumed runs. *)
