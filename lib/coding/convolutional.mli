(** Binary convolutional codes with Viterbi (maximum-likelihood)
    decoding over hard-decision channels.

    A code is defined by its generator polynomials (one per output
    stream) given as bitmasks over the encoder memory; the encoder is
    feed-forward, non-systematic, and terminated by flushing
    [constraint_length - 1] zero bits, so every codeword returns the
    trellis to the zero state. *)

type t

val create : constraint_length:int -> generators:int list -> t
(** [create ~constraint_length:k ~generators] builds a rate [1/n] code
    with [n = length generators]. Each generator is a [k]-bit mask, MSB
    aligned with the newest input bit (e.g. the classic K=3 rate-1/2
    code is [create ~constraint_length:3 ~generators:[0o7; 0o5]]).
    Raises [Invalid_argument] for empty generators, masks wider than
    [k] bits, or [k] outside [2, 16]. *)

val k3_rate_half : unit -> t
(** The (7,5) octal, K = 3, rate-1/2 standard code (free distance 5). *)

val k7_rate_half : unit -> t
(** The (171,133) octal, K = 7, rate-1/2 Voyager/802.11 code
    (free distance 10). *)

val constraint_length : t -> int
val num_streams : t -> int

val rate : t -> message_bits:int -> float
(** Effective rate including the termination tail:
    [message_bits / ((message_bits + k - 1) * n)]. *)

val encode : t -> Bitvec.t -> Bitvec.t
(** Terminated encoding: output length [(len + k - 1) * n]. *)

val decode : t -> Bitvec.t -> Bitvec.t
(** Hard-decision Viterbi decoding (minimum Hamming distance over the
    terminated trellis). Input length must be a multiple of [n] and
    correspond to at least the tail; returns the message bits (tail
    stripped). Raises [Invalid_argument] on impossible lengths. *)
