(** Dense matrices over GF(2), stored as an array of {!Bitvec} rows. *)

type t

val create : rows:int -> cols:int -> t
(** Zero matrix. *)

val init : rows:int -> cols:int -> (int -> int -> bool) -> t
val identity : int -> t
val random : Prob.Rng.t -> rows:int -> cols:int -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> bool
val set : t -> int -> int -> bool -> unit
val copy : t -> t
val equal : t -> t -> bool

val row : t -> int -> Bitvec.t
(** Returns a copy of the row. *)

val mul_vec : t -> Bitvec.t -> Bitvec.t
(** [mul_vec m v] is [m v] over GF(2); [length v = cols m]. *)

val mul : t -> t -> t

val transpose : t -> t

val rank : t -> int
(** Rank over GF(2) via Gaussian elimination. *)

val inverse : t -> t option
(** Inverse of a square matrix, when it exists. *)

val solve : t -> Bitvec.t -> Bitvec.t option
(** [solve m b] finds some [x] with [m x = b] over GF(2), or [None] if
    the system is inconsistent. *)

val random_full_rank : Prob.Rng.t -> rows:int -> cols:int -> t
(** Random matrix of full row rank ([rows <= cols] required); rejection
    sampling, which terminates quickly since random GF(2) matrices are
    full rank with probability > 0.288. *)

val augment : t -> t -> t
(** Horizontal concatenation [A | B]. *)

val pp : Format.formatter -> t -> unit
