let crc16 bits =
  let crc = ref 0xFFFF in
  for i = 0 to Bitvec.length bits - 1 do
    let bit = if Bitvec.get bits i then 1 else 0 in
    let top = (!crc lsr 15) land 1 in
    crc := ((!crc lsl 1) land 0xFFFF) lor 0;
    if top lxor bit = 1 then crc := !crc lxor 0x1021
  done;
  !crc

let crc32 bits =
  let crc = ref 0xFFFFFFFFl in
  for i = 0 to Bitvec.length bits - 1 do
    let bit = if Bitvec.get bits i then 1l else 0l in
    let low = Int32.logand (Int32.logxor !crc bit) 1l in
    crc := Int32.shift_right_logical !crc 1;
    if low = 1l then crc := Int32.logxor !crc 0xEDB88320l
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let append_crc16 payload =
  Bitvec.append payload (Bitvec.of_int ~width:16 (crc16 payload))

let check_crc16 packet =
  let len = Bitvec.length packet in
  if len < 16 then None
  else begin
    let payload = Bitvec.sub packet ~pos:0 ~len:(len - 16) in
    let tag = Bitvec.to_int (Bitvec.sub packet ~pos:(len - 16) ~len:16) in
    if crc16 payload = tag then Some payload else None
  end
