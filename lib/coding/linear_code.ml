type t = { g : Gf2_matrix.t; k : int; n : int }

let create g =
  let k = Gf2_matrix.rows g and n = Gf2_matrix.cols g in
  if k > n then invalid_arg "Linear_code.create: k > n";
  if Gf2_matrix.rank g <> k then
    invalid_arg "Linear_code.create: generator is rank deficient";
  { g; k; n }

let random rng ~k ~n = create (Gf2_matrix.random_full_rank rng ~rows:k ~cols:n)

let systematic_random rng ~k ~n =
  if k > n then invalid_arg "Linear_code.systematic_random: k > n";
  let parity = Gf2_matrix.random rng ~rows:k ~cols:(n - k) in
  create (Gf2_matrix.augment (Gf2_matrix.identity k) parity)

let hamming_7_4 () =
  (* systematic generator of the (7,4) Hamming code *)
  let rows =
    [| "1000110"; "0100101"; "0010011"; "0001111" |]
  in
  create
    (Gf2_matrix.init ~rows:4 ~cols:7 (fun i j -> rows.(i).[j] = '1'))

let repetition n =
  if n < 1 then invalid_arg "Linear_code.repetition: n < 1";
  create (Gf2_matrix.init ~rows:1 ~cols:n (fun _ _ -> true))

let k t = t.k
let n t = t.n
let rate t = float_of_int t.k /. float_of_int t.n

let encode t msg =
  if Bitvec.length msg <> t.k then
    invalid_arg "Linear_code.encode: message length mismatch";
  (* codeword = msg . G, i.e. G^T msg *)
  Gf2_matrix.mul_vec (Gf2_matrix.transpose t.g) msg

let all_messages t f =
  if t.k > 20 then invalid_arg "Linear_code: k too large for exhaustive scan";
  for m = 0 to (1 lsl t.k) - 1 do
    f (Bitvec.of_int ~width:t.k m)
  done

let decode_nearest t received =
  if Bitvec.length received <> t.n then
    invalid_arg "Linear_code.decode_nearest: length mismatch";
  let best = ref (Bitvec.create t.k) and best_d = ref max_int in
  all_messages t (fun msg ->
      let d = Bitvec.hamming_distance (encode t msg) received in
      if d < !best_d then begin
        best := msg;
        best_d := d
      end);
  !best

let decode_exact t received =
  if Bitvec.length received <> t.n then
    invalid_arg "Linear_code.decode_exact: length mismatch";
  (* solve G^T x = received *)
  match Gf2_matrix.solve (Gf2_matrix.transpose t.g) received with
  | None -> None
  | Some x ->
    if Bitvec.equal (encode t x) received then Some x else None

let min_distance t =
  let best = ref max_int in
  all_messages t (fun msg ->
      let w = Bitvec.weight (encode t msg) in
      if w > 0 && w < !best then best := w);
  !best
