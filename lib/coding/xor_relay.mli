(** The relay's network-coding combine (Section II-C of the paper).

    Messages [w_a] and [w_b] live in the additive group
    [L = Z_2^max(|w_a|, |w_b|)]: the shorter message is zero-padded, the
    relay broadcasts [w_r = w_a xor w_b], and each terminal recovers the
    opposite message by xoring its own message back in. *)

val combine : Bitvec.t -> Bitvec.t -> Bitvec.t
(** [combine w_a w_b] pads to the common length and xors. *)

val recover : own:Bitvec.t -> relay:Bitvec.t -> Bitvec.t
(** [recover ~own ~relay] gives the opposite terminal's message (padded
    to the relay word length); requires [length own <= length relay]. *)

val recover_exact : own:Bitvec.t -> relay:Bitvec.t -> expected_len:int ->
  Bitvec.t
(** Like {!recover} but truncates to the opposite message's true length
    [expected_len]. *)
