let pad v len =
  if Bitvec.length v = len then Bitvec.copy v
  else Bitvec.append v (Bitvec.create (len - Bitvec.length v))

let combine wa wb =
  let len = max (Bitvec.length wa) (Bitvec.length wb) in
  Bitvec.xor (pad wa len) (pad wb len)

let recover ~own ~relay =
  let len = Bitvec.length relay in
  if Bitvec.length own > len then
    invalid_arg "Xor_relay.recover: own message longer than relay word";
  Bitvec.xor (pad own len) relay

let recover_exact ~own ~relay ~expected_len =
  let full = recover ~own ~relay in
  if expected_len > Bitvec.length full then
    invalid_arg "Xor_relay.recover_exact: expected length too large";
  Bitvec.sub full ~pos:0 ~len:expected_len
