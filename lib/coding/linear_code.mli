(** Binary linear block codes with generator-matrix encoding and
    (for small codes) exact syndrome or nearest-codeword decoding.

    These are the "random coding" stand-in for the paper's achievability
    arguments: the simulator uses them to move actual bits a -> r -> b
    and to demonstrate the XOR-relaying pipeline end to end. *)

type t

val create : Gf2_matrix.t -> t
(** [create g] builds a code from a full-row-rank k x n generator matrix.
    Raises [Invalid_argument] when [g] is rank deficient. *)

val random : Prob.Rng.t -> k:int -> n:int -> t
(** Random linear code with a full-rank generator; [k <= n]. *)

val systematic_random : Prob.Rng.t -> k:int -> n:int -> t
(** Generator of the form [I | P] with random parity part. *)

val hamming_7_4 : unit -> t
(** The [7,4] Hamming code (distance 3). *)

val repetition : int -> t
(** The [n,1] repetition code. *)

val k : t -> int
val n : t -> int
val rate : t -> float

val encode : t -> Bitvec.t -> Bitvec.t
(** [encode c msg] for a k-bit message gives the n-bit codeword. *)

val decode_nearest : t -> Bitvec.t -> Bitvec.t
(** Maximum-likelihood (minimum-distance) decoding by exhaustive search
    over the [2^k] codewords; intended for small [k] (<= 16). Returns the
    decoded k-bit message. *)

val decode_exact : t -> Bitvec.t -> Bitvec.t option
(** Inverts the encoder when the received word is an exact codeword;
    [None] otherwise. *)

val min_distance : t -> int
(** Exhaustive minimum distance (small codes only). *)
