type t = { r : int; c : int; rows : Bitvec.t array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Gf2_matrix.create: negative size";
  { r = rows; c = cols; rows = Array.init rows (fun _ -> Bitvec.create cols) }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if f i j then Bitvec.set m.rows.(i) j true
    done
  done;
  m

let identity n = init ~rows:n ~cols:n (fun i j -> i = j)

let random rng ~rows ~cols =
  { r = rows; c = cols; rows = Array.init rows (fun _ -> Bitvec.random rng cols) }

let rows m = m.r
let cols m = m.c
let get m i j = Bitvec.get m.rows.(i) j
let set m i j v = Bitvec.set m.rows.(i) j v

let copy m = { m with rows = Array.map Bitvec.copy m.rows }

let equal a b =
  a.r = b.r && a.c = b.c
  && Array.for_all2 (fun x y -> Bitvec.equal x y) a.rows b.rows

let row m i = Bitvec.copy m.rows.(i)

let mul_vec m v =
  if Bitvec.length v <> m.c then invalid_arg "Gf2_matrix.mul_vec: size mismatch";
  let out = Bitvec.create m.r in
  for i = 0 to m.r - 1 do
    (* parity of the AND of row i with v *)
    let acc = ref false in
    for j = 0 to m.c - 1 do
      if Bitvec.get m.rows.(i) j && Bitvec.get v j then acc := not !acc
    done;
    if !acc then Bitvec.set out i true
  done;
  out

let mul a b =
  if a.c <> b.r then invalid_arg "Gf2_matrix.mul: size mismatch";
  init ~rows:a.r ~cols:b.c (fun i j ->
      let acc = ref false in
      for k = 0 to a.c - 1 do
        if Bitvec.get a.rows.(i) k && Bitvec.get b.rows.(k) j then
          acc := not !acc
      done;
      !acc)

let transpose m = init ~rows:m.c ~cols:m.r (fun i j -> get m j i)

(* Row-reduce [m] in place (it must be a private copy); returns the list
   of pivot columns in order. When [aug] is given it receives the same
   row operations (used for inversion / solving). *)
let row_reduce m aug =
  let pivots = ref [] in
  let next_row = ref 0 in
  for col = 0 to m.c - 1 do
    if !next_row < m.r then begin
      (* find a row at or below next_row with a 1 in this column *)
      let pivot = ref (-1) in
      (try
         for i = !next_row to m.r - 1 do
           if Bitvec.get m.rows.(i) col then begin
             pivot := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !pivot >= 0 then begin
        let p = !pivot in
        if p <> !next_row then begin
          let t = m.rows.(p) in
          m.rows.(p) <- m.rows.(!next_row);
          m.rows.(!next_row) <- t;
          match aug with
          | None -> ()
          | Some a ->
            let t = a.rows.(p) in
            a.rows.(p) <- a.rows.(!next_row);
            a.rows.(!next_row) <- t
        end;
        for i = 0 to m.r - 1 do
          if i <> !next_row && Bitvec.get m.rows.(i) col then begin
            Bitvec.xor_into ~dst:m.rows.(i) m.rows.(!next_row);
            match aug with
            | None -> ()
            | Some a -> Bitvec.xor_into ~dst:a.rows.(i) a.rows.(!next_row)
          end
        done;
        pivots := (col, !next_row) :: !pivots;
        incr next_row
      end
    end
  done;
  List.rev !pivots

let rank m =
  let m = copy m in
  List.length (row_reduce m None)

let inverse m =
  if m.r <> m.c then invalid_arg "Gf2_matrix.inverse: non-square";
  let work = copy m in
  let aug = identity m.r in
  let pivots = row_reduce work (Some aug) in
  if List.length pivots = m.r then Some aug else None

let solve m b =
  if Bitvec.length b <> m.r then invalid_arg "Gf2_matrix.solve: size mismatch";
  let work = copy m in
  (* carry b along as a 1-column augmentation *)
  let aug =
    { r = m.r;
      c = 1;
      rows = Array.init m.r (fun i ->
          let v = Bitvec.create 1 in
          if Bitvec.get b i then Bitvec.set v 0 true;
          v);
    }
  in
  let pivots = row_reduce work (Some aug) in
  (* inconsistent iff some zero row of [work] has a non-zero rhs *)
  let pivot_rows = List.map snd pivots in
  let inconsistent = ref false in
  for i = 0 to m.r - 1 do
    if (not (List.mem i pivot_rows)) && Bitvec.get aug.rows.(i) 0 then
      inconsistent := true
  done;
  if !inconsistent then None
  else begin
    let x = Bitvec.create m.c in
    List.iter
      (fun (col, row) -> if Bitvec.get aug.rows.(row) 0 then Bitvec.set x col true)
      pivots;
    Some x
  end

let random_full_rank rng ~rows ~cols =
  if rows > cols then invalid_arg "Gf2_matrix.random_full_rank: rows > cols";
  let rec try_once () =
    let m = random rng ~rows ~cols in
    if rank m = rows then m else try_once ()
  in
  try_once ()

let augment a b =
  if a.r <> b.r then invalid_arg "Gf2_matrix.augment: row mismatch";
  init ~rows:a.r ~cols:(a.c + b.c) (fun i j ->
      if j < a.c then get a i j else get b i (j - a.c))

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "%a@\n" Bitvec.pp m.rows.(i)
  done
