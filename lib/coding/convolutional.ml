type t = {
  k : int;                 (* constraint length *)
  generators : int array;  (* one k-bit mask per output stream *)
  n : int;                 (* streams per input bit *)
}

let popcount =
  let rec count v acc = if v = 0 then acc else count (v lsr 1) (acc + (v land 1)) in
  fun v -> count v 0

let create ~constraint_length ~generators =
  let k = constraint_length in
  if k < 2 || k > 16 then
    invalid_arg "Convolutional.create: constraint length outside [2, 16]";
  if generators = [] then invalid_arg "Convolutional.create: no generators";
  List.iter
    (fun g ->
      if g <= 0 || g >= 1 lsl k then
        invalid_arg "Convolutional.create: generator mask out of range")
    generators;
  { k; generators = Array.of_list generators; n = List.length generators }

let k3_rate_half () = create ~constraint_length:3 ~generators:[ 0o7; 0o5 ]
let k7_rate_half () = create ~constraint_length:7 ~generators:[ 0o171; 0o133 ]

let constraint_length t = t.k
let num_streams t = t.n

let rate t ~message_bits =
  if message_bits <= 0 then invalid_arg "Convolutional.rate: empty message";
  float_of_int message_bits
  /. float_of_int ((message_bits + t.k - 1) * t.n)

(* The encoder register holds the last k bits, newest in the MSB of the
   k-bit window: register = (newest ... oldest). Shifting in bit b:
   register' = (b << (k-1)) | (register >> 1). Output stream j is the
   parity of register' AND generator j. *)
let step t register bit =
  let register = ((if bit then 1 lsl (t.k - 1) else 0) lor (register lsr 1)) in
  let outputs =
    Array.map (fun g -> popcount (register land g) land 1 = 1) t.generators
  in
  (register, outputs)

let encode t msg =
  let len = Bitvec.length msg in
  let total = (len + t.k - 1) * t.n in
  let out = Bitvec.create total in
  let pos = ref 0 in
  let register = ref 0 in
  let feed bit =
    let register', outputs = step t !register bit in
    register := register';
    Array.iter
      (fun b ->
        if b then Bitvec.set out !pos true;
        incr pos)
      outputs
  in
  for i = 0 to len - 1 do
    feed (Bitvec.get msg i)
  done;
  for _ = 1 to t.k - 1 do
    feed false
  done;
  out

let decode t received =
  let n = t.n in
  let total = Bitvec.length received in
  if total mod n <> 0 then
    invalid_arg "Convolutional.decode: length not a multiple of the streams";
  let steps = total / n in
  let tail = t.k - 1 in
  if steps < tail then invalid_arg "Convolutional.decode: shorter than the tail";
  let msg_len = steps - tail in
  let num_states = 1 lsl (t.k - 1) in
  (* path metrics: the register's low k-1 bits identify the state *)
  let inf = max_int / 2 in
  let metric = Array.make num_states inf in
  metric.(0) <- 0;
  (* predecessors.(step).(state) = (previous state, input bit) *)
  let predecessors =
    Array.init steps (fun _ -> Array.make num_states (-1, false))
  in
  let branch_cost register' received_at =
    (* Hamming distance between this transition's outputs and the
       received symbols for the step *)
    let cost = ref 0 in
    Array.iteri
      (fun j g ->
        let bit = popcount (register' land g) land 1 = 1 in
        if bit <> Bitvec.get received (received_at + j) then incr cost)
      t.generators;
    !cost
  in
  for s = 0 to steps - 1 do
    let next = Array.make num_states inf in
    let received_at = s * n in
    for state = 0 to num_states - 1 do
      if metric.(state) < inf then
        List.iter
          (fun bit ->
            (* the full register after shifting [bit] into [state] *)
            let register' =
              (if bit then 1 lsl (t.k - 1) else 0) lor state
            in
            let state' = register' lsr 1 in
            let cost = metric.(state) + branch_cost register' received_at in
            if cost < next.(state') then begin
              next.(state') <- cost;
              predecessors.(s).(state') <- (state, bit)
            end)
          (if s < msg_len then [ false; true ] else [ false ])
    done;
    Array.blit next 0 metric 0 num_states
  done;
  (* terminated trellis: trace back from the zero state *)
  let msg = Bitvec.create msg_len in
  let state = ref 0 in
  for s = steps - 1 downto 0 do
    let prev, bit = predecessors.(s).(!state) in
    if prev < 0 then invalid_arg "Convolutional.decode: broken trellis";
    if s < msg_len && bit then Bitvec.set msg s true;
    state := prev
  done;
  msg
