type t = { hash : Gf2_matrix.t; message_bits : int; bin_bits : int }

let create rng ~message_bits ~bin_bits =
  if bin_bits <= 0 || bin_bits > message_bits then
    invalid_arg "Binning.create: need 0 < bin_bits <= message_bits";
  { hash = Gf2_matrix.random_full_rank rng ~rows:bin_bits ~cols:message_bits;
    message_bits;
    bin_bits;
  }

let message_bits t = t.message_bits
let bin_bits t = t.bin_bits

let bin t w =
  if Bitvec.length w <> t.message_bits then
    invalid_arg "Binning.bin: message length mismatch";
  Gf2_matrix.mul_vec t.hash w

let xor_bins t b1 b2 =
  if Bitvec.length b1 <> t.bin_bits || Bitvec.length b2 <> t.bin_bits then
    invalid_arg "Binning.xor_bins: bin length mismatch";
  Bitvec.xor b1 b2

let decode t ~bin_index ~side_info =
  if Array.length side_info <> t.message_bits then
    invalid_arg "Binning.decode: side information length mismatch";
  if Bitvec.length bin_index <> t.bin_bits then
    invalid_arg "Binning.decode: bin index length mismatch";
  let erased =
    Array.to_list side_info
    |> List.mapi (fun i s -> (i, s))
    |> List.filter_map (fun (i, s) -> if s = None then Some i else None)
  in
  (* residual = bin_index xor H w_known (erased bits treated as zero) *)
  let known = Bitvec.create t.message_bits in
  Array.iteri
    (fun i s -> match s with Some true -> Bitvec.set known i true | _ -> ())
    side_info;
  let residual = Bitvec.xor bin_index (Gf2_matrix.mul_vec t.hash known) in
  match erased with
  | [] -> if Bitvec.weight residual = 0 then Some (Bitvec.copy known) else None
  | _ ->
    let ncols = List.length erased in
    if ncols > t.bin_bits then None
    else begin
      (* solve H_e x = residual over the erased columns *)
      let sub =
        Gf2_matrix.init ~rows:t.bin_bits ~cols:ncols (fun r c ->
            Gf2_matrix.get t.hash r (List.nth erased c))
      in
      if Gf2_matrix.rank sub < ncols then None
      else begin
        match Gf2_matrix.solve sub residual with
        | None -> None
        | Some x ->
          (* a solution may exist yet not reproduce the residual when the
             system is over-determined and inconsistent — verify *)
          if not (Bitvec.equal (Gf2_matrix.mul_vec sub x) residual) then None
          else begin
            let w = Bitvec.copy known in
            List.iteri (fun c i -> Bitvec.set w i (Bitvec.get x c)) erased;
            Some w
          end
      end
    end
