(** Linear binning — the Slepian–Wolf/TDBC relay operation, made
    operational.

    In the paper's TDBC protocol the relay does not retransmit the
    messages: it broadcasts the XOR of {e bin indices}
    [s_a(w_a) xor s_b(w_b)], each bin index far shorter than the
    message, and each terminal recovers the opposite message by
    combining the bin index with the side information it overheard
    directly. With {e linear} binning the bin of a message [w] is
    [H w] for a random full-rank GF(2) matrix [H], and decoding against
    erasure side information (the receiver knows most bits of [w],
    having overheard the direct transmission) is exact linear algebra:
    the bin index pins down the erased bits whenever the erased columns
    of [H] are linearly independent — which holds with high probability
    once the bin is a little longer than the number of erasures. *)

type t
(** A binning scheme: a [bin_bits] x [message_bits] GF(2) hash. *)

val create : Prob.Rng.t -> message_bits:int -> bin_bits:int -> t
(** Random full-row-rank hash; requires
    [0 < bin_bits <= message_bits]. *)

val message_bits : t -> int
val bin_bits : t -> int

val bin : t -> Bitvec.t -> Bitvec.t
(** [bin t w] is the [bin_bits]-long index of [w]'s bin. *)

val decode : t -> bin_index:Bitvec.t -> side_info:bool option array ->
  Bitvec.t option
(** [decode t ~bin_index ~side_info] reconstructs the unique message
    consistent with the bin index and the per-bit side information
    ([Some b] = bit known to be [b], [None] = erased). Returns [None]
    when the erased positions are not resolvable (more erasures than
    bin bits, dependent columns, or inconsistent side information). *)

val xor_bins : t -> Bitvec.t -> Bitvec.t -> Bitvec.t
(** The relay's combine: by linearity
    [xor_bins t (bin wa) (bin wb) = bin (wa xor wb)] — so each terminal
    can subtract its own message's bin before decoding. *)
