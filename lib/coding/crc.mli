(** CRC error detection for simulator packets. *)

val crc16 : Bitvec.t -> int
(** CRC-16/CCITT-FALSE over the bit vector (MSB-first over the bits,
    init 0xFFFF, polynomial 0x1021). *)

val crc32 : Bitvec.t -> int32
(** Standard reflected CRC-32 (polynomial 0xEDB88320) over the bits. *)

val append_crc16 : Bitvec.t -> Bitvec.t
(** Payload followed by its 16 checksum bits. *)

val check_crc16 : Bitvec.t -> Bitvec.t option
(** Validates a vector produced by {!append_crc16}; returns the payload
    when the checksum matches, [None] otherwise. *)
