(** Fixed-length bit vectors over GF(2), packed into bytes. *)

type t

val create : int -> t
(** All-zero vector of the given length; length 0 is allowed. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit

val copy : t -> t
val equal : t -> t -> bool

val xor : t -> t -> t
(** Componentwise GF(2) addition; lengths must agree. This is the
    relay's network-coding combine: [w_r = w_a xor w_b]. *)

val xor_into : dst:t -> t -> unit
(** In-place xor of the second argument into [dst]. *)

val weight : t -> int
(** Hamming weight. *)

val hamming_distance : t -> t -> int

val random : Prob.Rng.t -> int -> t
(** Uniformly random vector of the given length. *)

val of_string : string -> t
(** ["0110"]-style literals; raises [Invalid_argument] on other chars. *)

val to_string : t -> string

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val of_int : width:int -> int -> t
(** Little-endian binary expansion of a non-negative integer. *)

val to_int : t -> int
(** Inverse of {!of_int}; requires length <= 62. *)

val append : t -> t -> t
val sub : t -> pos:int -> len:int -> t

val pp : Format.formatter -> t -> unit
