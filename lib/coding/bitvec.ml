type t = { len : int; data : Bytes.t }

let bytes_needed len = (len + 7) / 8

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; data = Bytes.make (bytes_needed len) '\000' }

let length t = t.len

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check_index t i;
  let byte = Char.code (Bytes.get t.data (i / 8)) in
  byte land (1 lsl (i mod 8)) <> 0

let set t i v =
  check_index t i;
  let pos = i / 8 in
  let byte = Char.code (Bytes.get t.data pos) in
  let mask = 1 lsl (i mod 8) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.data pos (Char.chr (byte land 0xFF))

let copy t = { len = t.len; data = Bytes.copy t.data }

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let xor_into ~dst src =
  if dst.len <> src.len then invalid_arg "Bitvec.xor_into: length mismatch";
  for i = 0 to Bytes.length dst.data - 1 do
    Bytes.set dst.data i
      (Char.chr
         (Char.code (Bytes.get dst.data i)
          lxor Char.code (Bytes.get src.data i)))
  done

let xor a b =
  let r = copy a in
  xor_into ~dst:r b;
  r

let popcount_byte = Array.init 256 (fun b ->
    let rec count b acc = if b = 0 then acc else count (b lsr 1) (acc + (b land 1)) in
    count b 0)

let weight t =
  let acc = ref 0 in
  for i = 0 to Bytes.length t.data - 1 do
    acc := !acc + popcount_byte.(Char.code (Bytes.get t.data i))
  done;
  !acc

let hamming_distance a b = weight (xor a b)

let random rng len =
  let t = create len in
  for i = 0 to len - 1 do
    set t i (Prob.Rng.bool rng)
  done;
  t

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t i true
      | _ -> invalid_arg "Bitvec.of_string: expected only '0' and '1'")
    s;
  t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i v -> if v then set t i true) a;
  t

let to_bool_array t = Array.init t.len (get t)

let of_int ~width n =
  if n < 0 then invalid_arg "Bitvec.of_int: negative";
  if width < 0 || width > 62 then invalid_arg "Bitvec.of_int: bad width";
  let t = create width in
  for i = 0 to width - 1 do
    if (n lsr i) land 1 = 1 then set t i true
  done;
  t

let to_int t =
  if t.len > 62 then invalid_arg "Bitvec.to_int: too wide";
  let acc = ref 0 in
  for i = t.len - 1 downto 0 do
    acc := (!acc lsl 1) lor (if get t i then 1 else 0)
  done;
  !acc

let append a b =
  let t = create (a.len + b.len) in
  for i = 0 to a.len - 1 do
    set t i (get a i)
  done;
  for i = 0 to b.len - 1 do
    set t (a.len + i) (get b i)
  done;
  t

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Bitvec.sub: out of bounds";
  let r = create len in
  for i = 0 to len - 1 do
    set r i (get t (pos + i))
  done;
  r

let pp fmt t = Format.pp_print_string fmt (to_string t)
