(** Small dense float matrices: just enough linear algebra for the
    simplex tableau cross-checks and channel computations. *)

type t
(** Row-major dense matrix. Storage is already flat: one contiguous
    unboxed [float array] indexed [(i * cols) + j] — the same layout
    discipline as the simplex tableau kernel ([Linprog.Kernel], see
    "Flat kernel architecture" in [docs/ENGINE.md]), so no nested-row
    indirection anywhere on these paths. These matrices stay on cold
    paths (cross-checks, channel setup), so accesses keep their bounds
    checks. *)

val create : rows:int -> cols:int -> float -> t
val init : rows:int -> cols:int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** Copies its input; rows must be non-empty and of equal length. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val identity : int -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array

val solve : t -> float array -> float array option
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting; [None] when singular (pivot below 1e-12). *)

val row : t -> int -> float array
val pp : Format.formatter -> t -> unit
