(** Points in the plane; used for rate-region geometry. *)

type t = { x : float; y : float }

val make : float -> float -> t
val zero : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float

val cross : t -> t -> float
(** [cross u v] is the z-component of the 3-D cross product, i.e. the
    signed parallelogram area. *)

val norm : t -> float
val dist : t -> t -> float

val orient : t -> t -> t -> float
(** [orient a b c] is positive when [a], [b], [c] make a counter-clockwise
    turn, negative for clockwise, zero when collinear. *)

val lerp : t -> t -> float -> t
(** [lerp a b t] is the point a fraction [t] of the way from [a] to [b]. *)

val equal : ?eps:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
