let check_bracket name flo fhi =
  if flo *. fhi > 0. then
    invalid_arg (name ^ ": endpoints do not bracket a root")

let bisect ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else begin
    check_bracket "Root.bisect" flo fhi;
    let rec loop lo hi flo n =
      let mid = (lo +. hi) /. 2. in
      if hi -. lo < tol || n = 0 then mid
      else
        let fmid = f mid in
        if fmid = 0. then mid
        else if flo *. fmid < 0. then loop lo mid flo (n - 1)
        else loop mid hi fmid (n - 1)
    in
    loop lo hi flo max_iter
  end

let brent ?(tol = 1e-12) ?(max_iter = 100) ~f lo hi =
  let fa = f lo and fb = f hi in
  if fa = 0. then lo
  else if fb = 0. then hi
  else begin
    check_bracket "Root.brent" fa fb;
    (* State: (a, fa) contrapoint, (b, fb) best iterate, (c, fc) previous. *)
    let a = ref lo and b = ref hi and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa and mflag = ref true and d = ref !a in
    let iter = ref 0 in
    while abs_float !fb > 0. && abs_float (!b -. !a) > tol && !iter < max_iter
    do
      incr iter;
      let s =
        if !fa <> !fc && !fb <> !fc then
          (* inverse quadratic interpolation *)
          (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
          +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
          +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
        else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
      in
      let lo_lim = ((3. *. !a) +. !b) /. 4. in
      let out_of_range =
        (s < Float.min lo_lim !b) || (s > Float.max lo_lim !b)
      in
      let cond =
        out_of_range
        || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.)
        || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.)
        || (!mflag && abs_float (!b -. !c) < tol)
        || ((not !mflag) && abs_float (!c -. !d) < tol)
      in
      let s = if cond then (!a +. !b) /. 2. else s in
      mflag := cond;
      let fs = f s in
      d := !c;
      c := !b;
      fc := !fb;
      if !fa *. fs < 0. then begin
        b := s;
        fb := fs
      end
      else begin
        a := s;
        fa := fs
      end;
      if abs_float !fa < abs_float !fb then begin
        let t = !a in
        a := !b;
        b := t;
        let t = !fa in
        fa := !fb;
        fb := t
      end
    done;
    !b
  end

let crossings ~f ~lo ~hi ~samples =
  if samples < 2 then invalid_arg "Root.crossings: need at least 2 samples";
  let xs = Float_utils.linspace lo hi samples in
  let ys = Array.map f xs in
  let roots = ref [] in
  for i = 0 to samples - 2 do
    let y0 = ys.(i) and y1 = ys.(i + 1) in
    if y0 = 0. then roots := xs.(i) :: !roots
    else if y0 *. y1 < 0. then
      roots := brent ~f xs.(i) xs.(i + 1) :: !roots
  done;
  if ys.(samples - 1) = 0. then roots := xs.(samples - 1) :: !roots;
  List.rev !roots
