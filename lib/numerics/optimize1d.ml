let phi = (sqrt 5. -. 1.) /. 2.

let golden_max ?(tol = 1e-10) ?(max_iter = 200) ~f lo hi =
  if lo > hi then invalid_arg "Optimize1d.golden_max: lo > hi";
  if hi -. lo < tol then (lo, f lo)
  else begin
    let a = ref lo and b = ref hi in
    let c = ref (hi -. (phi *. (hi -. lo))) in
    let d = ref (lo +. (phi *. (hi -. lo))) in
    let fc = ref (f !c) and fd = ref (f !d) in
    let n = ref 0 in
    while !b -. !a > tol && !n < max_iter do
      incr n;
      if !fc > !fd then begin
        (* maximum lies in [a, d]; reuse c as the new d *)
        b := !d;
        d := !c;
        fd := !fc;
        c := !b -. (phi *. (!b -. !a));
        fc := f !c
      end
      else begin
        (* maximum lies in [c, b]; reuse d as the new c *)
        a := !c;
        c := !d;
        fc := !fd;
        d := !a +. (phi *. (!b -. !a));
        fd := f !d
      end
    done;
    let mid = (!a +. !b) /. 2. in
    (mid, f mid)
  end

let golden_min ?tol ?max_iter ~f lo hi =
  let x, v = golden_max ?tol ?max_iter ~f:(fun x -> -.f x) lo hi in
  (x, -.v)

let grid_max ?(refine = 2) ~lo ~hi ~samples f =
  if samples < 2 then invalid_arg "Optimize1d.grid_max: need >= 2 samples";
  let xs = Float_utils.linspace lo hi samples in
  let best = ref 0 and best_v = ref neg_infinity in
  Array.iteri
    (fun i x ->
      let v = f x in
      if v > !best_v then begin
        best := i;
        best_v := v
      end)
    xs;
  let a = xs.(max 0 (!best - 1)) and b = xs.(min (samples - 1) (!best + 1)) in
  let rec polish a b n =
    if n = 0 then golden_max ~f a b
    else
      let x, _ = golden_max ~f a b in
      let w = (b -. a) /. 4. in
      polish (Float.max a (x -. w)) (Float.min b (x +. w)) (n - 1)
  in
  let x, v = polish a b refine in
  if v >= !best_v then (x, v) else (xs.(!best), !best_v)
