(** Piecewise-linear interpolation over sampled series. *)

type t
(** A piecewise-linear function built from (x, y) samples with strictly
    increasing x. *)

val of_samples : (float * float) list -> t
(** Raises [Invalid_argument] if fewer than two samples are given or the
    abscissae are not strictly increasing. *)

val eval : t -> float -> float
(** [eval f x] linearly interpolates; outside the sampled range the
    nearest segment is extrapolated. *)

val domain : t -> float * float

val tabulate : f:(float -> float) -> lo:float -> hi:float -> samples:int -> t
(** [tabulate ~f ~lo ~hi ~samples] samples [f] uniformly and builds the
    interpolant. *)
