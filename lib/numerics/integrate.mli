(** Numerical quadrature: used for averaging rates over fading
    distributions. *)

val trapezoid : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid rule with [n] panels. *)

val simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule; [n] is rounded up to an even panel count. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> lo:float -> hi:float -> (float -> float) ->
  float
(** Adaptive Simpson quadrature with local error control. *)
