let trapezoid ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Integrate.trapezoid: n < 1";
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref ((f lo +. f hi) /. 2.) in
  for i = 1 to n - 1 do
    acc := !acc +. f (lo +. (float_of_int i *. h))
  done;
  !acc *. h

let simpson ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Integrate.simpson: n < 1";
  let n = if n mod 2 = 1 then n + 1 else n in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (lo +. (float_of_int i *. h)))
  done;
  !acc *. h /. 3.

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 30) ~lo ~hi f =
  let simpson_panel a b fa fm fb = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a b fa fm fb whole tol depth =
    let m = (a +. b) /. 2. in
    let lm = (a +. m) /. 2. and rm = (m +. b) /. 2. in
    let flm = f lm and frm = f rm in
    let left = simpson_panel a m fa flm fm in
    let right = simpson_panel m b fm frm fb in
    let delta = left +. right -. whole in
    if depth <= 0 || abs_float delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a m fa flm fm left (tol /. 2.) (depth - 1)
      +. go m b fm frm fb right (tol /. 2.) (depth - 1)
  in
  let fa = f lo and fb = f hi in
  let m = (lo +. hi) /. 2. in
  let fm = f m in
  go lo hi fa fm fb (simpson_panel lo hi fa fm fb) tol max_depth
