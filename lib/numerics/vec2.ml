type t = { x : float; y : float }

let make x y = { x; y }
let zero = { x = 0.; y = 0. }
let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale k a = { x = k *. a.x; y = k *. a.y }
let dot a b = (a.x *. b.x) +. (a.y *. b.y)
let cross a b = (a.x *. b.y) -. (a.y *. b.x)
let norm a = sqrt (dot a a)
let dist a b = norm (sub a b)
let orient a b c = cross (sub b a) (sub c a)

let lerp a b t = add (scale (1. -. t) a) (scale t b)

let equal ?(eps = 1e-12) a b =
  Float_utils.approx_equal ~eps a.x b.x && Float_utils.approx_equal ~eps a.y b.y

let pp fmt a = Format.fprintf fmt "(%g, %g)" a.x a.y
