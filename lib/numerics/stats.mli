(** Descriptive statistics and Monte-Carlo confidence intervals. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased sample variance (n-1 denominator) *)
  std : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** [summarize a] computes all fields in one pass (Welford's algorithm).
    Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased sample variance; 0. for singleton samples. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile a p] is the [p]-quantile ([0 <= p <= 1]) using linear
    interpolation between order statistics. *)

val median : float array -> float

val confidence_interval_95 : float array -> float * float
(** [confidence_interval_95 a] is the normal-approximation 95% confidence
    interval for the mean of the sample. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] partitions the sample range into [bins] equal-width
    cells and returns [(lo, hi, count)] per cell. The final cell is closed
    on the right. *)
