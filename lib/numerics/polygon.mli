(** Convex polygon operations for rate regions.

    A polygon is a list of vertices in counter-clockwise order. Rate
    regions are "down-closed" convex sets in the positive quadrant: if
    [(ra, rb)] is achievable so is any componentwise-smaller pair. *)

val area : Vec2.t list -> float
(** Shoelace area; non-negative for counter-clockwise polygons. *)

val contains : Vec2.t list -> Vec2.t -> bool
(** [contains poly p] tests membership of [p] in the closed convex polygon
    [poly] (CCW order), with a small tolerance on the boundary. *)

val point_segment_distance : Vec2.t -> Vec2.t -> Vec2.t -> float
(** [point_segment_distance p a b] is the Euclidean distance from [p] to
    the segment [a]–[b]. *)

val distance_to_boundary : Vec2.t list -> Vec2.t -> float
(** [distance_to_boundary poly p] is the minimum distance from [p] to any
    edge of [poly]. *)

val down_closure : Vec2.t list -> Vec2.t list
(** [down_closure pts] is the convex hull of [pts] together with their
    axis projections and the origin — the standard closure of an
    achievable-rate set under time sharing and rate reduction. *)

val max_weighted : Vec2.t list -> wx:float -> wy:float -> float
(** [max_weighted poly ~wx ~wy] is [max (wx*x + wy*y)] over the vertices. *)
