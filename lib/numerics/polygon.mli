(** Convex polygon operations for rate regions.

    A polygon is a list of vertices in boundary order — either
    counter-clockwise or clockwise; operations that care about
    orientation normalise internally via the sign of the shoelace area,
    so both windings describe the same point set. Rate regions are
    "down-closed" convex sets in the positive quadrant: if [(ra, rb)]
    is achievable so is any componentwise-smaller pair. *)

val area : Vec2.t list -> float
(** Shoelace area; non-negative whichever way the polygon winds. *)

val contains : Vec2.t list -> Vec2.t -> bool
(** [contains poly p] tests membership of [p] in the closed convex
    polygon [poly], with a small tolerance on the boundary. CCW and CW
    vertex orders give identical answers (the orientation is read off
    the signed area, so a clockwise region no longer reports its
    interior as outside). *)

val point_segment_distance : Vec2.t -> Vec2.t -> Vec2.t -> float
(** [point_segment_distance p a b] is the Euclidean distance from [p] to
    the segment [a]–[b]. *)

val distance_to_boundary : Vec2.t list -> Vec2.t -> float
(** [distance_to_boundary poly p] is the minimum distance from [p] to
    any edge of [poly] — an unsigned quantity, so it is independent of
    the winding direction by construction. *)

val down_closure : Vec2.t list -> Vec2.t list
(** [down_closure pts] is the convex hull of [pts] together with their
    axis projections and the origin — the standard closure of an
    achievable-rate set under time sharing and rate reduction. *)

val max_weighted : Vec2.t list -> wx:float -> wy:float -> float
(** [max_weighted poly ~wx ~wy] is [max (wx*x + wy*y)] over the vertices. *)
