let compare_pts (a : Vec2.t) (b : Vec2.t) =
  match compare a.Vec2.x b.Vec2.x with 0 -> compare a.Vec2.y b.Vec2.y | c -> c

(* Andrew's monotone chain. *)
let convex_hull pts =
  let pts = List.sort_uniq compare_pts pts in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | _ ->
    let half points =
      List.fold_left
        (fun acc p ->
          let rec pop = function
            | b :: a :: rest when Vec2.orient a b p <= 0. -> pop (a :: rest)
            | stack -> stack
          in
          p :: pop acc)
        [] points
    in
    let lower = half pts in
    let upper = half (List.rev pts) in
    (* each chain ends with its starting point of the other chain duplicated *)
    let strip = function [] -> [] | _ :: tl -> tl in
    List.rev_append (strip lower) (List.rev (strip upper))

let is_convex_ccw poly =
  match poly with
  | [] | [ _ ] | [ _; _ ] -> true
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) and c = arr.((i + 2) mod n) in
      if Vec2.orient a b c < -1e-9 then ok := false
    done;
    !ok
