(** Special functions needed by the channel and information-theory
    substrates: the error function family and the Gaussian tail. *)

val erf : float -> float
(** [erf x] is the error function, accurate to roughly 1.2e-7 (Abramowitz &
    Stegun 7.1.26 style rational approximation refined with one extra term). *)

val erfc : float -> float
(** [erfc x = 1 - erf x], computed to avoid cancellation for large [x]. *)

val q_function : float -> float
(** [q_function x] is the Gaussian tail probability
    [P(Z > x)] for a standard normal [Z]. *)

val inv_q : float -> float
(** [inv_q p] is the inverse of {!q_function} on (0, 1), found by bisection.
    Raises [Invalid_argument] outside (0, 1). *)

val gaussian_pdf : float -> float
(** Standard normal density. *)

val gaussian_cdf : float -> float
(** Standard normal cumulative distribution function. *)
