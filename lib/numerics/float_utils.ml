let log2 x = log x /. log 2.

(* Batched AWGN capacity: dst.(i) <- log2 (1 + src.(i)) for the first
   [n] slots. Each element goes through the same [log2 (1. +. x)]
   expression as the scalar path (Channel.Awgn.c), so batching is
   bit-identical to n scalar calls. [src == dst] is fine — slots are
   independent. *)
let capacities_into ~src ~dst ~n =
  if n < 0 || n > Float.Array.length src || n > Float.Array.length dst then
    invalid_arg "Float_utils.capacities_into: bad length";
  for i = 0 to n - 1 do
    let x = Float.Array.unsafe_get src i in
    if x < 0. then invalid_arg "Float_utils.capacities_into: negative SNR";
    Float.Array.unsafe_set dst i (log2 (1. +. x))
  done

let db_to_lin d = 10. ** (d /. 10.)

let lin_to_db x =
  if x <= 0. then invalid_arg "Float_utils.lin_to_db: non-positive ratio";
  10. *. log10 x

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Float_utils.clamp: lo > hi";
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(eps = 1e-9) a b =
  let diff = abs_float (a -. b) in
  diff <= eps || diff <= eps *. Float.max (abs_float a) (abs_float b)

let is_finite x = Float.is_finite x

let linspace a b n =
  if n < 2 then invalid_arg "Float_utils.linspace: need at least 2 samples";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i ->
      if i = n - 1 then b else a +. (step *. float_of_int i))

let logspace a b n =
  Array.map (fun e -> 10. ** e) (linspace a b n)

(* Kahan compensated summation: the correction term [c] accumulates the
   low-order bits lost when adding a small element to a large sum. *)
let sum a =
  let total = ref 0. and c = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !total +. y in
      c := t -. !total -. y;
      total := t)
    a;
  !total

let mean a =
  if Array.length a = 0 then invalid_arg "Float_utils.mean: empty array";
  sum a /. float_of_int (Array.length a)

let max_by f = function
  | [] -> invalid_arg "Float_utils.max_by: empty list"
  | x :: rest ->
    let rec loop best best_v = function
      | [] -> best
      | y :: tl ->
        let v = f y in
        if v > best_v then loop y v tl else loop best best_v tl
    in
    loop x (f x) rest

let fold_range n ~init ~f =
  let rec loop acc i = if i >= n then acc else loop (f acc i) (i + 1) in
  loop init 0
