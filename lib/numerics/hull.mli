(** Convex hulls of planar point sets. *)

val convex_hull : Vec2.t list -> Vec2.t list
(** [convex_hull pts] is the convex hull of [pts] in counter-clockwise
    order starting from the lexicographically smallest point, with
    collinear interior points removed. Degenerate inputs (fewer than three
    distinct points, or all collinear) return the distinct extreme points. *)

val is_convex_ccw : Vec2.t list -> bool
(** [is_convex_ccw poly] checks that consecutive vertex triples never turn
    clockwise (collinear triples are allowed). *)
