type summary = {
  n : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let summarize a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  (* Welford's online algorithm: numerically stable single pass. *)
  let mean = ref 0. and m2 = ref 0. in
  let mn = ref a.(0) and mx = ref a.(0) in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      let delta = x -. !mean in
      mean := !mean +. (delta /. k);
      m2 := !m2 +. (delta *. (x -. !mean));
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    a;
  let variance = if n > 1 then !m2 /. float_of_int (n - 1) else 0. in
  { n; mean = !mean; variance; std = sqrt variance; min = !mn; max = !mx }

let mean a = (summarize a).mean
let variance a = (summarize a).variance
let std a = (summarize a).std

let quantile a p =
  if Array.length a = 0 then invalid_arg "Stats.quantile: empty sample";
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p outside [0,1]";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median a = quantile a 0.5

let confidence_interval_95 a =
  let s = summarize a in
  let half = 1.959963985 *. s.std /. sqrt (float_of_int s.n) in
  (s.mean -. half, s.mean +. half)

let histogram ~bins a =
  if bins < 1 then invalid_arg "Stats.histogram: bins < 1";
  let s = summarize a in
  let width =
    if s.max > s.min then (s.max -. s.min) /. float_of_int bins else 1.
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. s.min) /. width) in
      let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) + 1)
    a;
  Array.mapi
    (fun i c ->
      let lo = s.min +. (float_of_int i *. width) in
      (lo, lo +. width, c))
    counts
