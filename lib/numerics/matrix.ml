type t = { r : int; c : int; data : float array }

let create ~rows ~cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: empty dimension";
  { r = rows; c = cols; data = Array.make (rows * cols) v }

let init ~rows ~cols f =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.init: empty dimension";
  { r = rows;
    c = cols;
    data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols));
  }

let of_rows rows_arr =
  let r = Array.length rows_arr in
  if r = 0 then invalid_arg "Matrix.of_rows: no rows";
  let c = Array.length rows_arr.(0) in
  if c = 0 then invalid_arg "Matrix.of_rows: empty rows";
  Array.iter
    (fun row ->
      if Array.length row <> c then invalid_arg "Matrix.of_rows: ragged rows")
    rows_arr;
  init ~rows:r ~cols:c (fun i j -> rows_arr.(i).(j))

let rows m = m.r
let cols m = m.c
let get m i j = m.data.((i * m.c) + j)
let set m i j v = m.data.((i * m.c) + j) <- v
let copy m = { m with data = Array.copy m.data }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let transpose m = init ~rows:m.c ~cols:m.r (fun i j -> get m j i)

let mul a b =
  if a.c <> b.r then invalid_arg "Matrix.mul: dimension mismatch";
  init ~rows:a.r ~cols:b.c (fun i j ->
      let acc = ref 0. in
      for k = 0 to a.c - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      !acc)

let mul_vec m v =
  if m.c <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init m.r (fun i ->
      let acc = ref 0. in
      for j = 0 to m.c - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let solve a b =
  if a.r <> a.c then invalid_arg "Matrix.solve: non-square matrix";
  if a.r <> Array.length b then invalid_arg "Matrix.solve: size mismatch";
  let n = a.r in
  let m = copy a in
  let x = Array.copy b in
  let singular = ref false in
  (* forward elimination with partial pivoting *)
  for col = 0 to n - 1 do
    if not !singular then begin
      let pivot = ref col in
      for i = col + 1 to n - 1 do
        if abs_float (get m i col) > abs_float (get m !pivot col) then
          pivot := i
      done;
      if abs_float (get m !pivot col) < 1e-12 then singular := true
      else begin
        if !pivot <> col then begin
          for j = 0 to n - 1 do
            let t = get m col j in
            set m col j (get m !pivot j);
            set m !pivot j t
          done;
          let t = x.(col) in
          x.(col) <- x.(!pivot);
          x.(!pivot) <- t
        end;
        for i = col + 1 to n - 1 do
          let factor = get m i col /. get m col col in
          if factor <> 0. then begin
            for j = col to n - 1 do
              set m i j (get m i j -. (factor *. get m col j))
            done;
            x.(i) <- x.(i) -. (factor *. x.(col))
          end
        done
      end
    end
  done;
  if !singular then None
  else begin
    (* back substitution *)
    for i = n - 1 downto 0 do
      let acc = ref x.(i) in
      for j = i + 1 to n - 1 do
        acc := !acc -. (get m i j *. x.(j))
      done;
      x.(i) <- !acc /. get m i i
    done;
    Some x
  end

let row m i = Array.init m.c (fun j -> get m i j)

let pp fmt m =
  for i = 0 to m.r - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.c - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@\n"
  done
