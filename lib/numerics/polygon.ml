let signed_area_2x poly =
  match poly with
  | [] | [ _ ] | [ _; _ ] -> 0.
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      acc := !acc +. Vec2.cross a b
    done;
    !acc

let area poly = abs_float (signed_area_2x poly /. 2.)

let contains poly p =
  match poly with
  | [] -> false
  | [ q ] -> Vec2.dist p q < 1e-9
  | [ a; b ] -> Vec2.dist a p +. Vec2.dist p b -. Vec2.dist a b < 1e-9
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    (* normalise orientation: interior points sit on the left of every
       edge of a CCW polygon and on the right for a CW one, so test
       against the sign of the polygon's signed area (a clockwise
       vertex list used to report every interior point as outside) *)
    let sign = if signed_area_2x poly < 0. then -1. else 1. in
    let ok = ref true in
    for i = 0 to n - 1 do
      let a = arr.(i) and b = arr.((i + 1) mod n) in
      if sign *. Vec2.orient a b p < -1e-9 then ok := false
    done;
    !ok

let point_segment_distance p a b =
  let ab = Vec2.sub b a in
  let len2 = Vec2.dot ab ab in
  if len2 = 0. then Vec2.dist p a
  else
    let t = Float_utils.clamp ~lo:0. ~hi:1. (Vec2.dot (Vec2.sub p a) ab /. len2) in
    Vec2.dist p (Vec2.add a (Vec2.scale t ab))

let distance_to_boundary poly p =
  match poly with
  | [] -> invalid_arg "Polygon.distance_to_boundary: empty polygon"
  | [ q ] -> Vec2.dist p q
  | _ ->
    let arr = Array.of_list poly in
    let n = Array.length arr in
    let best = ref infinity in
    for i = 0 to n - 1 do
      let d = point_segment_distance p arr.(i) arr.((i + 1) mod n) in
      if d < !best then best := d
    done;
    !best

let down_closure pts =
  let projections =
    List.concat_map
      (fun (p : Vec2.t) ->
        [ p; Vec2.make p.Vec2.x 0.; Vec2.make 0. p.Vec2.y ])
      pts
  in
  Hull.convex_hull (Vec2.zero :: projections)

let max_weighted poly ~wx ~wy =
  match poly with
  | [] -> neg_infinity
  | _ ->
    List.fold_left
      (fun acc (p : Vec2.t) ->
        Float.max acc ((wx *. p.Vec2.x) +. (wy *. p.Vec2.y)))
      neg_infinity poly
