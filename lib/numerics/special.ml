(* erfc via the Numerical-Recipes-style Chebyshev fit, good to ~1.2e-7
   everywhere, which is ample for transition probabilities of quantised
   Gaussian channels. *)
let erfc x =
  let z = abs_float x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

let erf x = 1. -. erfc x

let sqrt2 = sqrt 2.

let q_function x = 0.5 *. erfc (x /. sqrt2)

let gaussian_pdf x = exp (-0.5 *. x *. x) /. sqrt (2. *. Float.pi)

let gaussian_cdf x = 1. -. q_function x

let inv_q p =
  if p <= 0. || p >= 1. then invalid_arg "Special.inv_q: p outside (0,1)";
  (* Q is strictly decreasing; bracket generously and bisect. *)
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if q_function mid > p then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
  in
  bisect (-40.) 40. 200
