(** One-dimensional root finding. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f lo hi] finds a root of [f] in [[lo, hi]] by bisection.
    [f lo] and [f hi] must have opposite signs (a zero endpoint is returned
    directly). [tol] (default [1e-10]) bounds the width of the final
    bracket. Raises [Invalid_argument] when the bracket is invalid. *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [brent ~f lo hi] finds a root with Brent's method (inverse quadratic
    interpolation falling back to bisection). Same bracket requirements as
    {!bisect}; typically converges in far fewer evaluations. *)

val crossings :
  f:(float -> float) -> lo:float -> hi:float -> samples:int -> float list
(** [crossings ~f ~lo ~hi ~samples] samples [f] at [samples] points on
    [[lo, hi]] and refines every sign change with {!brent}, returning the
    roots in increasing order. Useful for locating protocol crossover
    points along an SNR sweep. *)
