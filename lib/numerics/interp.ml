type t = { xs : float array; ys : float array }

let of_samples samples =
  if List.length samples < 2 then
    invalid_arg "Interp.of_samples: need at least two samples";
  let xs = Array.of_list (List.map fst samples) in
  let ys = Array.of_list (List.map snd samples) in
  for i = 0 to Array.length xs - 2 do
    if xs.(i) >= xs.(i + 1) then
      invalid_arg "Interp.of_samples: abscissae must be strictly increasing"
  done;
  { xs; ys }

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let eval t x =
  let n = Array.length t.xs in
  (* binary search for the segment containing x *)
  let rec search lo hi =
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.xs.(mid) <= x then search mid hi else search lo mid
  in
  let i =
    if x <= t.xs.(0) then 0
    else if x >= t.xs.(n - 1) then n - 2
    else search 0 (n - 1)
  in
  let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
  let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
  y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))

let tabulate ~f ~lo ~hi ~samples =
  let xs = Float_utils.linspace lo hi samples in
  of_samples (Array.to_list (Array.map (fun x -> (x, f x)) xs))
