(** Basic floating-point helpers shared across the whole code base. *)

val log2 : float -> float
(** [log2 x] is the base-2 logarithm of [x]. *)

val capacities_into : src:floatarray -> dst:floatarray -> n:int -> unit
(** [capacities_into ~src ~dst ~n] writes the AWGN capacity
    [log2 (1. +. src.(i))] into [dst.(i)] for [i < n], allocating
    nothing. Each slot evaluates the exact expression the scalar path
    ([Channel.Awgn.c]) uses, so results are bit-identical to [n]
    scalar calls. In-place use ([src == dst]) is supported. Raises
    [Invalid_argument] when [n] exceeds either buffer or an input SNR
    is negative. *)

val db_to_lin : float -> float
(** [db_to_lin d] converts a power ratio expressed in decibels to the
    corresponding linear ratio, i.e. [10. ** (d /. 10.)]. *)

val lin_to_db : float -> float
(** [lin_to_db x] converts a linear power ratio to decibels. Raises
    [Invalid_argument] if [x <= 0.]. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] restricted to the closed interval [[lo, hi]].
    Raises [Invalid_argument] if [lo > hi]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal ?eps a b] holds when [a] and [b] differ by at most [eps]
    in absolute terms or [eps] relative to the larger magnitude.
    [eps] defaults to [1e-9]. *)

val is_finite : float -> bool
(** [is_finite x] is true when [x] is neither infinite nor NaN. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced samples from [a] to [b]
    inclusive. Raises [Invalid_argument] if [n < 2]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] samples spaced evenly on a log scale between
    [10^a] and [10^b] inclusive. Raises [Invalid_argument] if [n < 2]. *)

val sum : float array -> float
(** [sum a] is the compensated (Kahan) sum of the elements of [a]. *)

val mean : float array -> float
(** [mean a] is the arithmetic mean. Raises [Invalid_argument] on an empty
    array. *)

val max_by : ('a -> float) -> 'a list -> 'a
(** [max_by f xs] returns the element of [xs] maximising [f]. Raises
    [Invalid_argument] on an empty list. *)

val fold_range : int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** [fold_range n ~init ~f] folds [f] over [0 .. n-1]. *)
