(** One-dimensional optimisation over a closed interval. *)

val golden_max :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  float * float
(** [golden_max ~f lo hi] maximises a unimodal [f] on [[lo, hi]] by
    golden-section search, returning [(argmax, max)]. *)

val golden_min :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float ->
  float * float
(** Minimisation counterpart of {!golden_max}. *)

val grid_max :
  ?refine:int -> lo:float -> hi:float -> samples:int -> (float -> float) ->
  float * float
(** [grid_max ~lo ~hi ~samples f] evaluates [f] on a uniform grid and then
    runs [refine] (default 2) rounds of golden-section search around the
    best grid cell. Robust for multimodal objectives such as discrete-input
    rate expressions. Returns [(argmax, max)]. *)
