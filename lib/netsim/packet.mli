(** Simulator packets: message payloads with CRC protection. *)

type node_id = A | B | R

val node_name : node_id -> string

type t = {
  src : node_id;
  dst : node_id option; (** [None] = broadcast; [Some n] = addressed *)
  seq : int;            (** per-source sequence number *)
  payload : Coding.Bitvec.t;
  checksum_ok : bool;   (** false once the packet has been corrupted *)
}

val fresh : src:node_id -> ?dst:node_id -> seq:int -> Coding.Bitvec.t -> t
(** [fresh ~src ~seq payload] is a clean packet (payload wrapped with a
    CRC-16); broadcast unless [dst] is given. *)

val payload_bits : t -> int

val corrupt : Prob.Rng.t -> t -> t
(** Flip a handful of random payload bits (what a receiver in outage
    would hand up) — the CRC then fails with overwhelming probability,
    which {!verify} reports. *)

val verify : t -> Coding.Bitvec.t option
(** CRC check; the payload when clean. *)

val xor_payloads : t -> t -> src:node_id -> seq:int -> t
(** The relay's network-coded combine of two packets into one
    (broadcast). *)

val readdress : t -> src:node_id -> dst:node_id -> t
(** Re-send a (clean) packet's payload from a new source to an explicit
    destination — plain store-and-forward routing. Raises
    [Invalid_argument] on a corrupted packet. *)
