let tol = 1e-9

let p2p_success ~power ~gain ~rate =
  rate <= 0. || rate <= Channel.Awgn.c (power *. gain) +. tol

let broadcast_success ~power ~gains ~rates =
  if List.length gains <> List.length rates then
    invalid_arg "Phy.broadcast_success: gains/rates mismatch";
  List.map2 (fun gain rate -> p2p_success ~power ~gain ~rate) gains rates

let mac_success ~power ~gain1 ~gain2 ~rate1 ~rate2 =
  let c = Channel.Awgn.c in
  rate1 <= c (power *. gain1) +. tol
  && rate2 <= c (power *. gain2) +. tol
  && rate1 +. rate2 <= c (power *. (gain1 +. gain2)) +. tol

let combined_success ~parts ~rate =
  let budget =
    List.fold_left
      (fun acc (fraction, mi) ->
        if fraction < -.tol || mi < -.tol then
          invalid_arg "Phy.combined_success: negative part";
        acc +. (fraction *. mi))
      0. parts
  in
  rate <= budget +. tol
