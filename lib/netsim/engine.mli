(** Discrete-event simulation engine with a virtual clock.

    Handlers are thunks scheduled at absolute or relative virtual times;
    running the engine drains the event queue in time order. Time is
    measured in channel uses (symbols) throughout the simulator. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time; 0 before any event has fired. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Raises [Invalid_argument] when scheduling strictly in the past. *)

val schedule_after : t -> delay:float -> (unit -> unit) -> unit
(** Relative scheduling; [delay >= 0]. *)

val run : ?until:float -> t -> unit
(** Fires events in time order until the queue is empty, or until virtual
    time would exceed [until] (remaining events stay queued). Handlers may
    schedule further events. *)

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Fire exactly one event; false when the queue is empty. *)
